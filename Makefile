GO ?= go

.PHONY: all build vet fmt-check test race race-core race-dataplane race-screp race-server race-tenant race-bytecode allocs-gate race-poison serve-smoke trace-smoke tenant-smoke check bench bench-guard bench-smoke bench-dataplane bench-server bench-tenant fuzz-smoke fuzz clean

all: check

build:
	$(GO) build ./...

# fmt-check fails (listing the offenders) when any tracked Go file is not
# gofmt-clean; it never rewrites files.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet: build fmt-check
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-core focuses the race detector on the simulator hot loop (the part
# the event-driven scheduler rewrote); check.sh runs it explicitly so a
# future narrowing of `race` cannot silently drop core coverage.
race-core:
	$(GO) test -race -count 1 ./internal/core

# race-dataplane focuses the race detector on the concurrent execution
# engine — the one package whose correctness claims are about goroutine
# interleavings; like race-core, pinned here so `race` can never silently
# drop it.
race-dataplane:
	$(GO) test -race -count 1 ./internal/dataplane

# allocs-gate is the hot-path allocation regression gate: steady-state
# Submit must perform exactly zero heap allocations per packet and
# SubmitBatch ~zero per chunk (testing.AllocsPerRun counts process-wide
# mallocs, so worker-side regressions are caught too). Deliberately not
# under -race: the race runtime allocates, so those tests self-skip there.
allocs-gate:
	$(GO) test -count 1 -run 'TestSubmitSteadyStateAllocs|TestSubmitBatchSteadyStateAllocs' ./internal/dataplane

# race-poison runs the dataplane suite with poison-on-free compiled in
# (-tags mp5debug) under the race detector: every recycled packet is
# clobbered with sentinels, so a stale reference either races or corrupts
# an equivalence oracle loudly.
race-poison:
	$(GO) test -tags mp5debug -race -count 1 ./internal/dataplane

# race-screp focuses the race detector on the state-compute-replication
# engine — its coherence story is a lock-free stamp-chained replay ring
# shared by all replicas plus a mutex-free order log written inside the
# globally-serialized stateful span; exactly the kind of claim only the
# race detector can falsify.
race-screp:
	$(GO) test -race -count 1 ./internal/screp

# race-server focuses the race detector on the network daemon — listeners,
# the bounded ingress queue, the serial admitter, and the egress-ack path
# all interleave; the loopback soak with differential verification must
# stay race-clean.
race-server:
	$(GO) test -race -count 1 ./internal/server

# race-tenant focuses the race detector on the multi-tenant registry —
# lock-free ByID/Active snapshots racing hot swaps and quota accounting are
# exactly the interleavings the package exists to get right.
race-tenant:
	$(GO) test -race -count 1 ./internal/tenant

# race-bytecode pins a race-enabled pass over the shared bytecode
# compiler/VM — the per-stage executor under every engine — so its
# differential and property suites can never silently leave the race gate.
race-bytecode:
	$(GO) test -race -count 1 ./internal/ir/bytecode

# serve-smoke is the end-to-end daemon soak: build mp5d and mp5load, run a
# fixed-seed closed-loop TCP workload over loopback (zero loss required),
# probe the admin plane, SIGTERM, and require a clean drain with
# differential equivalence at the daemon.
serve-smoke:
	sh scripts/serve_smoke.sh

# tenant-smoke is the end-to-end multi-tenant soak: two tenants with
# different programs and quotas share one daemon, mp5load drives both
# concurrently, alpha is hot-swapped via POST /programs/alpha mid-run, and
# the SIGTERM drain must report per-tenant/per-version equivalence.
tenant-smoke:
	sh scripts/tenant_smoke.sh

# trace-smoke is the end-to-end tracing soak: run the daemon with 1/16 wire
# span sampling and a JSONL span stream, drive a fixed-seed TCP workload,
# check the live trace surface (/stats, /metrics, mp5top), then validate
# the drained span stream with mp5trace (stage sums must reconcile with
# span totals; the exact expected span count must be present).
trace-smoke:
	sh scripts/trace_smoke.sh

# check is the full local gate: build, gofmt, vet, the race-enabled test
# suite, the hot-path allocation gate, the poison-on-free lifecycle pass,
# the deterministic differential-fuzzing smoke, the daemon and tracing
# soaks, and the telemetry-overhead guard benchmark.
check: vet race race-screp allocs-gate race-poison fuzz-smoke serve-smoke trace-smoke tenant-smoke bench-guard

# fuzz-smoke is the deterministic, seeded, time-bounded slice of the
# differential fuzzing harness: MP5_FUZZ_CASES fixed cases (program +
# workload) checked against the single-pipeline reference on every
# order-preserving architecture, plus a run of the committed seed corpus —
# then the same smoke again with the compiled bytecode executor forced on
# every engine.
fuzz-smoke:
	MP5_FUZZ_CASES=40 $(GO) test -run 'TestDifferentialSmoke|FuzzDifferential' ./internal/fuzz
	MP5_FUZZ_CASES=40 MP5_FUZZ_EXECUTOR=bytecode $(GO) test -count 1 -run TestDifferentialSmoke ./internal/fuzz
	MP5_FUZZ_CASES=40 MP5_FUZZ_ENGINE=screp $(GO) test -count 1 -run TestDifferentialSmoke ./internal/fuzz

# fuzz runs open-ended coverage-guided differential fuzzing (ctrl-C to stop;
# see also cmd/mp5fuzz for long offline sweeps with JSONL artifacts).
fuzz:
	$(GO) test -run FuzzDifferential -fuzz FuzzDifferential ./internal/fuzz

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# bench-guard runs the disabled-telemetry guard: BenchmarkTraceDisabled must
# stay within 2% of the seed's BenchmarkSimulatorPacketRate (compare the
# pkts/s metrics; BenchmarkTraceTelemetry shows the enabled-path cost).
bench-guard:
	$(GO) test -bench 'BenchmarkTrace|BenchmarkSimulatorPacketRate' -benchtime 2x -run ^$$ .

# bench-smoke times the event-driven scheduler against the legacy full
# sweep on sparse and dense traces, plus the per-stage executors
# (tree-walking interpreter vs compiled bytecode VM) driven at line rate
# on the same traces, and records the machine-readable perf trajectory in
# BENCH_core.json (acceptance: sparse scheduler speedup ≥ 2x, dense within
# 5% of the sweep, bytecode ≥ 1.5x over the interpreter at dense line
# rate), then refreshes the dataplane scaling curve.
bench-smoke: bench-dataplane bench-server
	$(GO) run ./cmd/mp5bench -core-bench -bench-out BENCH_core.json

# bench-dataplane times the concurrent dataplane at worker counts
# {1, 2, GOMAXPROCS} on a dense line-rate trace against the event-driven
# simulator baseline, cross-checking every worker count against the
# reference first, and records the curve (plus num_cpu/gomaxprocs context)
# in BENCH_dataplane.json.
bench-dataplane:
	$(GO) run ./cmd/mp5bench -dataplane-bench -bench-out BENCH_dataplane.json

# bench-server times the full network path — the closed-loop TCP client
# against an in-process daemon over loopback — at worker counts
# {1, 2, GOMAXPROCS} and records pps plus RTT quantiles in
# BENCH_server.json; the gap to BENCH_dataplane.json prices the wire.
bench-server:
	$(GO) run ./cmd/mp5bench -server-bench -bench-out BENCH_server.json

# bench-tenant refreshes just the noisy-neighbor section of
# BENCH_server.json (victim tenant solo vs with a quota-capped flooding
# co-tenant; the recorded degradation must stay under 10%), preserving the
# -server-bench sections already in the file.
bench-tenant:
	$(GO) run ./cmd/mp5bench -tenant-bench -bench-out BENCH_server.json

clean:
	$(GO) clean ./...
