GO ?= go

.PHONY: all build vet test race check bench bench-guard clean

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full local gate: build, vet, the race-enabled test suite,
# and the telemetry-overhead guard benchmark.
check: vet race bench-guard

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# bench-guard runs the disabled-telemetry guard: BenchmarkTraceDisabled must
# stay within 2% of the seed's BenchmarkSimulatorPacketRate (compare the
# pkts/s metrics; BenchmarkTraceTelemetry shows the enabled-path cost).
bench-guard:
	$(GO) test -bench 'BenchmarkTrace|BenchmarkSimulatorPacketRate' -benchtime 2x -run ^$$ .

clean:
	$(GO) clean ./...
