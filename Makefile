GO ?= go

.PHONY: all build vet test race check bench bench-guard fuzz-smoke fuzz clean

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full local gate: build, vet, the race-enabled test suite,
# the deterministic differential-fuzzing smoke, and the telemetry-overhead
# guard benchmark.
check: vet race fuzz-smoke bench-guard

# fuzz-smoke is the deterministic, seeded, time-bounded slice of the
# differential fuzzing harness: MP5_FUZZ_CASES fixed cases (program +
# workload) checked against the single-pipeline reference on every
# order-preserving architecture, plus a run of the committed seed corpus.
fuzz-smoke:
	MP5_FUZZ_CASES=40 $(GO) test -run 'TestDifferentialSmoke|FuzzDifferential' ./internal/fuzz

# fuzz runs open-ended coverage-guided differential fuzzing (ctrl-C to stop;
# see also cmd/mp5fuzz for long offline sweeps with JSONL artifacts).
fuzz:
	$(GO) test -run FuzzDifferential -fuzz FuzzDifferential ./internal/fuzz

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# bench-guard runs the disabled-telemetry guard: BenchmarkTraceDisabled must
# stay within 2% of the seed's BenchmarkSimulatorPacketRate (compare the
# pkts/s metrics; BenchmarkTraceTelemetry shows the enabled-path cost).
bench-guard:
	$(GO) test -bench 'BenchmarkTrace|BenchmarkSimulatorPacketRate' -benchtime 2x -run ^$$ .

clean:
	$(GO) clean ./...
