package mp5_test

import (
	"io"
	"sync"
	"testing"

	"mp5"
	"mp5/internal/apps"
	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/experiments"
	"mp5/internal/telemetry"
	"mp5/internal/workload"
)

// The Benchmark* functions below regenerate the paper's tables and figures
// (one benchmark per table/figure) and report domain metrics — normalized
// throughput, simulated packets per second — alongside the usual ns/op.
// Each experiment's formatted table is printed once per `go test -bench`
// run via b.Logf; a smaller scale than mp5bench keeps iterations fast.

var benchScale = experiments.Scale{Packets: 10000, Seeds: 1}

var logOnce sync.Map

func logTable(b *testing.B, name string, f func() *experiments.Table) {
	if _, done := logOnce.LoadOrStore(name, true); done {
		return
	}
	b.Logf("\n%s", f().Format())
}

// BenchmarkTable1 regenerates the chip area / clock table (E1).
func BenchmarkTable1(b *testing.B) {
	logTable(b, "table1", experiments.Table1)
	for i := 0; i < b.N; i++ {
		experiments.Table1()
	}
}

// BenchmarkSRAMOverhead regenerates the §4.2 SRAM overhead numbers (E2).
func BenchmarkSRAMOverhead(b *testing.B) {
	logTable(b, "sram", experiments.SRAM)
	for i := 0; i < b.N; i++ {
		experiments.SRAM()
	}
}

// BenchmarkD2Sharding regenerates the dynamic-vs-static sharding
// microbenchmark (E3, §4.3.2).
func BenchmarkD2Sharding(b *testing.B) {
	logTable(b, "d2", func() *experiments.Table { return experiments.D2Sharding(benchScale) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.D2Sharding(experiments.Scale{Packets: 5000, Seeds: 1})
	}
}

// BenchmarkD4Violations regenerates the order-enforcement ablation (E4).
func BenchmarkD4Violations(b *testing.B) {
	logTable(b, "d4", func() *experiments.Table { return experiments.D4Violations(benchScale) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.D4Violations(experiments.Scale{Packets: 5000, Seeds: 1})
	}
}

// BenchmarkD3Steering regenerates the steering-vs-recirculation
// microbenchmark including the worse-than-naive crossover (E5).
func BenchmarkD3Steering(b *testing.B) {
	logTable(b, "d3", func() *experiments.Table { return experiments.D3Steering(benchScale) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.D3Steering(experiments.Scale{Packets: 5000, Seeds: 1})
	}
}

// benchFig7 shares the sweep benchmarks' shape: log the full figure once,
// then time a single representative cell per iteration.
func benchFig7(b *testing.B, name string, table func(experiments.Scale) *experiments.Table, cell experiments.SynthConfig) {
	logTable(b, name, func() *experiments.Table { return table(benchScale) })
	b.ResetTimer()
	var tput float64
	for i := 0; i < b.N; i++ {
		cfg := cell
		cfg.Seed = int64(i)
		r := experiments.RunSynth(cfg)
		tput = r.Throughput
	}
	b.ReportMetric(tput, "tput")
}

// BenchmarkFig7a — throughput vs number of pipelines (E6).
func BenchmarkFig7a(b *testing.B) {
	benchFig7(b, "fig7a", experiments.Fig7a, experiments.SynthConfig{
		Arch: core.ArchMP5, Pipelines: 8, Stateful: 4, Packets: 5000,
	})
}

// BenchmarkFig7b — throughput vs stateful stages (E7).
func BenchmarkFig7b(b *testing.B) {
	benchFig7(b, "fig7b", experiments.Fig7b, experiments.SynthConfig{
		Arch: core.ArchMP5, Pipelines: 4, Stateful: 10, Packets: 5000,
	})
}

// BenchmarkFig7c — throughput vs register size (E8).
func BenchmarkFig7c(b *testing.B) {
	benchFig7(b, "fig7c", experiments.Fig7c, experiments.SynthConfig{
		Arch: core.ArchMP5, Pipelines: 4, Stateful: 4, RegSize: 4096, Packets: 5000,
	})
}

// BenchmarkFig7d — throughput vs packet size (E9).
func BenchmarkFig7d(b *testing.B) {
	benchFig7(b, "fig7d", experiments.Fig7d, experiments.SynthConfig{
		Arch: core.ArchMP5, Pipelines: 4, Stateful: 4, PacketSize: 128, Packets: 5000,
	})
}

// BenchmarkFig8 regenerates the real-application figure (E10–E14) and
// times one flowlet run per iteration.
func BenchmarkFig8(b *testing.B) {
	logTable(b, "fig8", func() *experiments.Table { return experiments.Fig8(benchScale) })
	app := apps.Flowlet()
	prog := app.MustCompile(compiler.TargetMP5)
	trace := workload.Flows(prog, workload.FlowSpec{Packets: 5000, Pipelines: 4, Seed: 1}, app.Bind)
	b.ResetTimer()
	var tput float64
	for i := 0; i < b.N; i++ {
		sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: int64(i)})
		tput = sim.Run(trace).Throughput
	}
	b.ReportMetric(tput, "tput")
}

// --- Component microbenchmarks (not paper artifacts, but useful for
// tracking the reproduction's own performance) ---

// BenchmarkCompileFlowlet measures end-to-end Domino → MP5 compilation.
func BenchmarkCompileFlowlet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(apps.FlowletSource, compiler.Options{Target: compiler.TargetMP5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorPacketRate measures simulated packets per wall-clock
// second for the default configuration.
func BenchmarkSimulatorPacketRate(b *testing.B) {
	prog, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{Packets: 20000, Pipelines: 4, Seed: 1}, 4, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 1})
		sim.Run(trace)
	}
	b.StopTimer()
	pktsPerOp := float64(len(trace))
	b.ReportMetric(pktsPerOp*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkTraceDisabled is the telemetry overhead guard: the exact
// simulator loop of BenchmarkSimulatorPacketRate with Config.Trace unset.
// Telemetry must be pay-for-use — compare against BenchmarkTraceTelemetry
// to see the cost of the full consumer stack, and against the seed's
// BenchmarkSimulatorPacketRate numbers to confirm the disabled path did not
// regress (acceptance: within 2%).
func BenchmarkTraceDisabled(b *testing.B) {
	prog, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{Packets: 20000, Pipelines: 4, Seed: 1}, 4, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 1})
		sim.Run(trace)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkTraceTelemetry runs the same simulation with the full telemetry
// stack attached (metrics, sampler, span builder, JSONL to io.Discard) to
// quantify the enabled-path cost.
func BenchmarkTraceTelemetry(b *testing.B) {
	prog, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{Packets: 20000, Pipelines: 4, Seed: 1}, 4, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := telemetry.NewRegistry()
		metrics := telemetry.NewSimMetrics(reg)
		jsonl := telemetry.NewJSONL(io.Discard)
		sampler := telemetry.NewSampler(1000, 4, jsonl.SampleSink())
		spans := telemetry.NewSpanBuilder(nil)
		sim := core.NewSimulator(prog, core.Config{
			Arch: core.ArchMP5, Pipelines: 4, Seed: 1,
			Trace: telemetry.Tee(metrics.Hook(), jsonl.EventHook(), sampler.Hook(), spans.Hook()),
		})
		sim.Run(trace)
		sampler.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// sparsifyTrace spreads a dense trace into bursts of `burst` packets
// separated by `gap` idle cycles — the bursty arrival shape of the paper's
// skewed experiments, and the case the event-driven scheduler exists for:
// the legacy core walks every idle cycle, the event-driven core jumps them.
func sparsifyTrace(trace []core.Arrival, burst int, gap int64) []core.Arrival {
	out := make([]core.Arrival, len(trace))
	for i, a := range trace {
		a.Cycle += int64(i/burst) * gap
		out[i] = a
	}
	return out
}

func benchCore(b *testing.B, sparse, fullSweep bool) {
	prog, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{Packets: 20000, Pipelines: 4, Seed: 1}, 4, 512)
	if sparse {
		trace = sparsifyTrace(trace, 256, 20000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 1})
		sim.SetFullSweep(fullSweep)
		sim.Run(trace)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkCoreSparseBursty / BenchmarkCoreSparseBurstyFullSweep: the
// sparse-trace pair behind BENCH_core.json's speedup number (make
// bench-smoke, cmd/mp5bench -core-bench). The event-driven scheduler must
// beat the per-cycle sweep by ≥ 2x here.
func BenchmarkCoreSparseBursty(b *testing.B)          { benchCore(b, true, false) }
func BenchmarkCoreSparseBurstyFullSweep(b *testing.B) { benchCore(b, true, true) }

// BenchmarkCoreDense / BenchmarkCoreDenseFullSweep: the full-load pair —
// with every cycle busy the occupancy skip lists must cost ≤ 5% over the
// plain sweeps.
func BenchmarkCoreDense(b *testing.B)          { benchCore(b, false, false) }
func BenchmarkCoreDenseFullSweep(b *testing.B) { benchCore(b, false, true) }

// BenchmarkReferenceExecutor measures the single-pipeline ground-truth
// executor.
func BenchmarkReferenceExecutor(b *testing.B) {
	prog, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{Packets: 20000, Pipelines: 4, Seed: 1}, 4, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp5.Reference(prog, trace)
	}
}

// BenchmarkStageFIFO measures the push/insert/pop cycle of the k-FIFO.
func BenchmarkStageFIFO(b *testing.B) {
	f := core.NewStageFIFO(4, 0)
	p := &core.Packet{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int64(i)
		f.PushPhantom(i%4, id, id, id)
		p.ID = id
		f.Insert(p, id)
		_, fi, _ := f.Head()
		f.PopHead(fi)
	}
}
