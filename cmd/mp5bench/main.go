// Command mp5bench regenerates the paper's evaluation tables and figures
// (Table 1, the §4.2 SRAM overhead, the §4.3.2 D2/D3/D4 microbenchmarks,
// the Figure-7 sensitivity sweeps, and the Figure-8 application runs) as
// aligned text tables.
//
// Usage:
//
//	mp5bench                 # everything at the default scale
//	mp5bench -full           # the paper's scale (10 seeds, longer traces)
//	mp5bench -only fig7a     # one experiment
//	                         # (table1, sram, d2, d3, d4,
//	                         #  fig7a..fig7d, fig8)
//	mp5bench -core-bench -bench-out BENCH_core.json
//	                         # event-driven vs full-sweep scheduler timing
//	mp5bench -dataplane-bench -bench-out BENCH_dataplane.json
//	                         # concurrent dataplane worker-scaling timing
//	mp5bench -server-bench -bench-out BENCH_server.json
//	                         # network daemon loopback-TCP timing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"mp5/internal/apps"
	"mp5/internal/banzai"
	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/equiv"
	"mp5/internal/experiments"
	"mp5/internal/ir"
	"mp5/internal/ir/bytecode"
	"mp5/internal/screp"
	"mp5/internal/workload"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's scale (10 seeds)")
	only := flag.String("only", "", "run a single experiment: table1, sram, d2, d3, d4, fig7a, fig7b, fig7c, fig7d, fig8")
	packets := flag.Int("packets", 0, "override trace length")
	seeds := flag.Int("seeds", 0, "override seed count")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus-text snapshot of the harness metrics to this file when done")
	coreBench := flag.Bool("core-bench", false, "time the event-driven scheduler against the legacy full sweep (sparse and dense traces) and exit")
	dataplaneBench := flag.Bool("dataplane-bench", false, "time the concurrent dataplane across worker counts against the simulator baseline and exit")
	serverBench := flag.Bool("server-bench", false, "time the network daemon over loopback TCP across worker counts and exit")
	tenantBench := flag.Bool("tenant-bench", false, "measure the multi-tenant noisy-neighbor bar (victim pps solo vs with a quota-capped flood) and exit")
	benchOut := flag.String("bench-out", "", "with -core-bench, -dataplane-bench, -server-bench, or -tenant-bench: write the machine-readable results to this JSON file")
	flag.Parse()

	if *coreBench {
		runCoreBench(*benchOut)
		return
	}
	if *dataplaneBench {
		runDataplaneBench(*benchOut)
		return
	}
	if *serverBench {
		runServerBench(*benchOut)
		return
	}
	if *tenantBench {
		runTenantBenchOnly(*benchOut)
		return
	}

	sc := experiments.DefaultScale
	if *full {
		sc = experiments.PaperScale
	}
	if *packets > 0 {
		sc.Packets = *packets
	}
	if *seeds > 0 {
		sc.Seeds = *seeds
	}

	all := map[string]func() *experiments.Table{
		"table1":      experiments.Table1,
		"sram":        experiments.SRAM,
		"d2":          func() *experiments.Table { return experiments.D2Sharding(sc) },
		"d4":          func() *experiments.Table { return experiments.D4Violations(sc) },
		"d3":          func() *experiments.Table { return experiments.D3Steering(sc) },
		"fig7a":       func() *experiments.Table { return experiments.Fig7a(sc) },
		"fig7b":       func() *experiments.Table { return experiments.Fig7b(sc) },
		"fig7c":       func() *experiments.Table { return experiments.Fig7c(sc) },
		"fig7d":       func() *experiments.Table { return experiments.Fig7d(sc) },
		"fig8":        func() *experiments.Table { return experiments.Fig8(sc) },
		"remap":       func() *experiments.Table { return experiments.AblationRemapInterval(sc) },
		"fifocap":     func() *experiments.Table { return experiments.AblationFIFOCapacity(sc) },
		"skew":        func() *experiments.Table { return experiments.AblationSkew(sc) },
		"mitigations": func() *experiments.Table { return experiments.AblationMitigations(sc) },
		"chiplet":     func() *experiments.Table { return experiments.AblationChiplet(sc) },
		"atoms":       experiments.Atoms,
	}
	order := []string{"table1", "sram", "d2", "d4", "d3", "fig7a", "fig7b", "fig7c", "fig7d", "fig8"}
	ablations := []string{"remap", "fifocap", "skew", "mitigations", "chiplet", "atoms"}

	if *only != "" {
		f, ok := all[strings.ToLower(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "mp5bench: unknown experiment %q (choices: %s)\n",
				*only, strings.Join(append(append([]string{}, order...), ablations...), ", "))
			os.Exit(2)
		}
		emit(f)
		writeMetrics(*metricsOut)
		return
	}
	fmt.Printf("MP5 evaluation reproduction — scale: %d packets x %d seeds\n\n", sc.Packets, sc.Seeds)
	for _, name := range order {
		emit(all[name])
	}
	fmt.Println("--- extensions beyond the paper's artifacts ---")
	for _, name := range ablations {
		emit(all[name])
	}
	writeMetrics(*metricsOut)
}

// writeMetrics snapshots the harness-wide telemetry registry (simulations
// run, packets pushed, cycles simulated, per-architecture breakdown) in
// Prometheus text format.
func writeMetrics(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	if err := experiments.Metrics.WriteProm(f); err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
}

// coreScenario is one row of BENCH_core.json: the same trace timed under
// both schedulers.
type coreScenario struct {
	Name           string  `json:"name"`
	Packets        int     `json:"packets"`
	TraceCycles    int64   `json:"trace_cycles"`
	EventNs        int64   `json:"event_ns_per_run"`
	SweepNs        int64   `json:"sweep_ns_per_run"`
	EventPktsPerS  float64 `json:"event_pkts_per_sec"`
	SweepPktsPerS  float64 `json:"sweep_pkts_per_sec"`
	Speedup        float64 `json:"speedup"`
	ResultsMatched bool    `json:"results_matched"`
}

// execScenario is one executor row of BENCH_core.json: the same trace on
// the event-driven scheduler, timed under the tree-walking interpreter and
// under the compiled bytecode VM.
type execScenario struct {
	Name             string  `json:"name"`
	Packets          int     `json:"packets"`
	InterpNs         int64   `json:"interp_ns_per_run"`
	BytecodeNs       int64   `json:"bytecode_ns_per_run"`
	InterpPktsPerS   float64 `json:"interp_pkts_per_sec"`
	BytecodePktsPerS float64 `json:"bytecode_pkts_per_sec"`
	Speedup          float64 `json:"speedup"`
	ResultsMatched   bool    `json:"results_matched"`
}

// coreBenchReport is the BENCH_core.json schema; the perf trajectory is
// tracked from this file onward (sparse speedup must stay ≥ 2x, the dense
// trace within 5% of the sweep, and the bytecode executor ≥ 1.5x over the
// interpreter at dense line rate).
type coreBenchReport struct {
	Benchmark string         `json:"benchmark"`
	Date      string         `json:"date"`
	GoVersion string         `json:"go_version"`
	Scenarios []coreScenario `json:"scenarios"`
	// Executors compares the per-stage executors on the same scenarios
	// (event-driven scheduling for both, only the executor differs).
	Executors []execScenario `json:"executor_scenarios"`
}

// runCoreBench times the event-driven scheduler against the legacy
// full-sweep scheduler on a sparse bursty trace (idle gaps dominate — the
// event-driven design target) and a dense line-rate trace (every cycle
// busy — the no-regression guard), and cross-checks that both produce the
// same Result.
func runCoreBench(outPath string) {
	prog, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	dense := workload.Synthetic(prog, workload.Spec{Packets: 20000, Pipelines: 4, Seed: 1}, 4, 512)
	sparse := make([]core.Arrival, len(dense))
	for i, a := range dense {
		a.Cycle += int64(i/256) * 20000 // bursts of 256 split by 20k idle cycles
		sparse[i] = a
	}
	report := coreBenchReport{
		Benchmark: "core-scheduler",
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Scenarios: []coreScenario{
			timeScenario(prog, "sparse-bursty", sparse),
			timeScenario(prog, "dense-line-rate", dense),
		},
		Executors: []execScenario{
			timeExecScenario(prog, "sparse-bursty", sparse),
			timeExecScenario(prog, "dense-line-rate", dense),
		},
	}
	out, _ := json.MarshalIndent(report, "", "  ")
	out = append(out, '\n')
	if outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	for _, sc := range report.Scenarios {
		fmt.Printf("%-16s event %8.2fms  sweep %8.2fms  speedup %.2fx\n",
			sc.Name, float64(sc.EventNs)/1e6, float64(sc.SweepNs)/1e6, sc.Speedup)
	}
	for _, sc := range report.Executors {
		fmt.Printf("%-16s interp %8.2fms  bytecode %8.2fms  speedup %.2fx\n",
			sc.Name, float64(sc.InterpNs)/1e6, float64(sc.BytecodeNs)/1e6, sc.Speedup)
	}
	fmt.Println("wrote", outPath)
}

// timeExecScenario times the pure per-stage executors at line rate: every
// trace packet is driven back-to-back through the full stage pipeline —
// tree-walking interpreter versus compiled bytecode VM — against a fresh
// Banzai register file per rep. No scheduler sits between packets: the
// event-driven simulator spends ~95% of its wall clock on arbitration and
// event plumbing that is identical under both executors, so only a direct
// drive exposes the executor difference the scenario exists to track. The
// two legs run interleaved (best-of after a warmup rep) to even out host
// noise, and cross-check final register state plus a per-packet header
// checksum — a coarse in-bench replay of the fuzz harness's executor
// differential.
func timeExecScenario(prog *ir.Program, name string, trace []core.Arrival) execScenario {
	bp := bytecode.MustCompile(prog)
	vm := bytecode.NewVM(bp)
	run := func(interpret bool) (time.Duration, [][]int64, int64) {
		regs := banzai.NewRegFile(prog)
		env := ir.NewEnv(prog)
		var sum int64
		start := time.Now()
		for _, a := range trace {
			copy(env.Fields, a.Fields)
			for i := len(a.Fields); i < len(env.Fields); i++ {
				env.Fields[i] = 0
			}
			for i := range env.Temps {
				env.Temps[i] = 0
			}
			if interpret {
				for si := range prog.Stages {
					ir.ExecStage(&prog.Stages[si], env, regs)
				}
			} else {
				for si := range bp.Stages {
					if err := vm.ExecStage(&bp.Stages[si], env, regs); err != nil {
						fmt.Fprintln(os.Stderr, "mp5bench: bytecode exec:", err)
						os.Exit(1)
					}
				}
			}
			for _, f := range env.Fields {
				sum += f
			}
		}
		return time.Since(start), regs.Snapshot(), sum
	}
	const reps = 24 // short legs on a shared box: many reps, keep minima
	bestI := time.Duration(1<<63 - 1)
	bestB := bestI
	var interpRegs, bcRegs [][]int64
	var interpSum, bcSum int64
	for rep := 0; rep <= reps; rep++ { // rep 0 is warmup
		var dI, dB time.Duration
		dI, interpRegs, interpSum = run(true)
		dB, bcRegs, bcSum = run(false)
		if rep == 0 {
			continue
		}
		if dI < bestI {
			bestI = dI
		}
		if dB < bestB {
			bestB = dB
		}
	}
	n := float64(len(trace))
	return execScenario{
		Name:             name,
		Packets:          len(trace),
		InterpNs:         bestI.Nanoseconds(),
		BytecodeNs:       bestB.Nanoseconds(),
		InterpPktsPerS:   n / bestI.Seconds(),
		BytecodePktsPerS: n / bestB.Seconds(),
		Speedup:          bestI.Seconds() / bestB.Seconds(),
		ResultsMatched:   reflect.DeepEqual(interpRegs, bcRegs) && interpSum == bcSum,
	}
}

func timeScenario(prog *ir.Program, name string, trace []core.Arrival) coreScenario {
	run := func(fullSweep bool) (time.Duration, *core.Result) {
		best := time.Duration(1<<63 - 1)
		var res *core.Result
		for rep := 0; rep < 8; rep++ { // rep 0 is warmup
			sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 1})
			sim.SetFullSweep(fullSweep)
			start := time.Now()
			res = sim.Run(trace)
			if d := time.Since(start); rep > 0 && d < best {
				best = d
			}
		}
		return best, res
	}
	eventD, eventR := run(false)
	sweepD, sweepR := run(true)
	n := float64(len(trace))
	return coreScenario{
		Name:           name,
		Packets:        len(trace),
		TraceCycles:    eventR.Cycles,
		EventNs:        eventD.Nanoseconds(),
		SweepNs:        sweepD.Nanoseconds(),
		EventPktsPerS:  n / eventD.Seconds(),
		SweepPktsPerS:  n / sweepD.Seconds(),
		Speedup:        sweepD.Seconds() / eventD.Seconds(),
		ResultsMatched: reflect.DeepEqual(eventR, sweepR),
	}
}

// Execution strategy names recorded on dpScenario rows. Both are omitempty
// additions, so BENCH_dataplane.json files written before the replication
// engine existed still decode: a row with no strategy is a sharded run of
// the original (sole) workload.
const (
	strategySharded    = "sharded"
	strategyReplicated = "screp"
)

// dpScenario is one row of BENCH_dataplane.json: one (workload, strategy,
// worker count) cell, timed on the same dense trace.
type dpScenario struct {
	// Workload names the trace/program pair; Strategy the engine that ran it
	// (sharded = internal/dataplane's D2 index sharding, screp =
	// internal/screp's state-compute replication). Empty values mean the
	// pre-replication schema: the write-heavy workload on the sharded engine.
	Workload      string  `json:"workload,omitempty"`
	Strategy      string  `json:"strategy,omitempty"`
	Workers       int     `json:"workers"`
	NsPerRun      int64   `json:"ns_per_run"`
	PktsPerSec    float64 `json:"pkts_per_sec"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
	SpeedupVsCore float64 `json:"speedup_vs_core"`
	// AllocsPerPkt is the marginal heap allocations per packet at steady
	// state, measured as the malloc-count delta between a double-length and
	// a single-length run over the extra packets — engine construction and
	// pool warmup cancel out. The pooled hot path keeps this near zero.
	AllocsPerPkt float64 `json:"allocs_per_pkt"`
	Matched      bool    `json:"matched"`
}

// dpBenchReport is the BENCH_dataplane.json schema. NumCPU/GoMaxProcs pin
// the hardware context: worker scaling beyond the core count measures
// scheduling overhead, not parallel speedup, so the honest headline on a
// small box is speedup_vs_core (direct execution vs. the cycle-accurate
// simulator on the same trace).
type dpBenchReport struct {
	Benchmark  string `json:"benchmark"`
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// SingleCPU flags a run where GOMAXPROCS or NumCPU is 1: worker
	// scaling numbers then measure scheduling overhead, not parallel
	// speedup, and must not be read as scaling claims.
	SingleCPU      bool         `json:"single_cpu"`
	Packets        int          `json:"packets"`
	CorePktsPerSec float64      `json:"core_pkts_per_sec"`
	Scenarios      []dpScenario `json:"scenarios"`
}

// warnSingleCPU prints the prominent single-CPU warning and reports whether
// it fired — mp5bench must never write scaling numbers from a one-core box
// without complaint.
func warnSingleCPU(bench string) bool {
	if runtime.NumCPU() > 1 && runtime.GOMAXPROCS(0) > 1 {
		return false
	}
	fmt.Fprintf(os.Stderr,
		"WARNING: %s is running with num_cpu=%d gomaxprocs=%d — a single-CPU box.\n"+
			"WARNING: multi-worker rows measure scheduling overhead, NOT parallel speedup;\n"+
			"WARNING: the JSON is flagged \"single_cpu\": true. Re-run on a multi-core box for scaling claims.\n",
		bench, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	return true
}

// dpWorkload is one program/trace pair the strategy sweep times. The two
// committed workloads are chosen to put the sharded-vs-replicated trade on
// the record: heavy per-packet state writes make the replicated engine
// re-apply every store on all replicas (sharding's home turf), while a
// steering-hostile workload whose packets each touch several different
// register arrays makes the sharded admitter resolve and steer every packet
// across owners (replication's home turf — it sprays and pays nothing at
// admission).
type dpWorkload struct {
	name  string
	prog  *ir.Program
	trace []core.Arrival
}

func dpWorkloads() []dpWorkload {
	write, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	// Many small arrays with skewed access: resolution + crossbar steering
	// dominate the sharded engine's per-packet cost, while the deltas the
	// replicated engine must replay stay tiny.
	scatter, err := apps.Synthetic(8, 8, 16)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	return []dpWorkload{
		{
			name:  "write-heavy",
			prog:  write,
			trace: workload.Synthetic(write, workload.Spec{Packets: 20000, Pipelines: 4, Seed: 1}, 4, 512),
		},
		{
			name: "scatter",
			prog: scatter,
			trace: workload.Synthetic(scatter, workload.Spec{
				Packets: 20000, Pipelines: 4, Seed: 1, Pattern: workload.Skewed,
			}, 8, 8),
		},
	}
}

// dpStrategyRun abstracts one engine strategy for the bench loop: a
// recording cross-check run and an untimed-construction timed run.
type dpStrategyRun struct {
	name string
	// check runs once with recording on and reports whether all three
	// oracles held; run constructs a fresh engine and processes the trace
	// (the timed/alloc-counted body).
	check func(prog *ir.Program, trace []core.Arrival, w int, refOrder map[string][]int64) bool
	run   func(prog *ir.Program, trace []core.Arrival, w int)
}

func dpStrategies() []dpStrategyRun {
	return []dpStrategyRun{
		{
			name: strategySharded,
			check: func(prog *ir.Program, trace []core.Arrival, w int, refOrder map[string][]int64) bool {
				eng := dataplane.New(prog, dataplane.Config{
					Workers: w, RecordOutputs: true, RecordAccessOrder: true,
				})
				res := eng.Run(trace)
				return !res.Stalled && res.Completed == res.Injected &&
					equiv.CheckState(prog, eng.FinalRegs(), eng.Outputs(), trace).Equivalent &&
					reflect.DeepEqual(refOrder, eng.AccessOrders())
			},
			run: func(prog *ir.Program, trace []core.Arrival, w int) {
				dataplane.New(prog, dataplane.Config{Workers: w}).Run(trace)
			},
		},
		{
			name: strategyReplicated,
			check: func(prog *ir.Program, trace []core.Arrival, w int, refOrder map[string][]int64) bool {
				eng := screp.New(prog, screp.Config{
					Workers: w, RecordOutputs: true, RecordAccessOrder: true,
				})
				res := eng.Run(trace)
				return !res.Stalled && res.Completed == res.Injected &&
					equiv.CheckState(prog, eng.FinalRegs(), eng.Outputs(), trace).Equivalent &&
					reflect.DeepEqual(refOrder, eng.AccessOrders())
			},
			run: func(prog *ir.Program, trace []core.Arrival, w int) {
				screp.New(prog, screp.Config{Workers: w}).Run(trace)
			},
		},
	}
}

// runDataplaneBench times both concurrent execution strategies — D2 index
// sharding (internal/dataplane) and state-compute replication
// (internal/screp) — on dense line-rate traces at worker counts
// {1, 2, 4, GOMAXPROCS}, against the event-driven simulator on the primary
// workload as the baseline. Every (workload, strategy, workers) cell is
// first cross-checked against the single-pipeline reference (state,
// outputs, C1 order) in a recording run; the timed runs disable recording.
func runDataplaneBench(outPath string) {
	workloads := dpWorkloads()
	strategies := dpStrategies()

	// Core baseline on the primary workload, as before the strategy sweep.
	primary := workloads[0]
	coreBest := time.Duration(1<<63 - 1)
	for rep := 0; rep < 8; rep++ { // rep 0 is warmup
		sim := core.NewSimulator(primary.prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 1})
		start := time.Now()
		sim.Run(primary.trace)
		if d := time.Since(start); rep > 0 && d < coreBest {
			coreBest = d
		}
	}
	corePPS := float64(len(primary.trace)) / coreBest.Seconds()

	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	sort.Ints(counts)
	report := dpBenchReport{
		Benchmark:      "dataplane-scaling",
		Date:           time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		SingleCPU:      warnSingleCPU("dataplane-bench"),
		Packets:        len(primary.trace),
		CorePktsPerSec: corePPS,
	}
	for _, wl := range workloads {
		n := float64(len(wl.trace))
		refOrder := equiv.ReferenceOrder(wl.prog, wl.trace)
		for _, st := range strategies {
			var pps1 float64
			for i, w := range counts {
				if i > 0 && w == counts[i-1] {
					continue // GOMAXPROCS collides with 1 or 2 on small boxes
				}
				matched := st.check(wl.prog, wl.trace, w, refOrder)
				best := time.Duration(1<<63 - 1)
				for rep := 0; rep < 8; rep++ { // rep 0 is warmup
					start := time.Now()
					st.run(wl.prog, wl.trace, w)
					if d := time.Since(start); rep > 0 && d < best {
						best = d
					}
				}
				pps := n / best.Seconds()
				if pps1 == 0 {
					pps1 = pps
				}
				report.Scenarios = append(report.Scenarios, dpScenario{
					Workload:      wl.name,
					Strategy:      st.name,
					Workers:       w,
					NsPerRun:      best.Nanoseconds(),
					PktsPerSec:    pps,
					SpeedupVs1:    pps / pps1,
					SpeedupVsCore: pps / corePPS,
					AllocsPerPkt:  measureDpAllocs(wl.prog, wl.trace, w, st.run),
					Matched:       matched,
				})
			}
		}
	}
	out, _ := json.MarshalIndent(report, "", "  ")
	out = append(out, '\n')
	if outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	fmt.Printf("core baseline    %10.0f pkts/s (%s)\n", corePPS, primary.name)
	for _, sc := range report.Scenarios {
		fmt.Printf("%-12s %-8s workers=%-2d %10.0f pkts/s  vs1 %.2fx  vs core %.2fx  allocs/pkt %.3f  matched=%v\n",
			sc.Workload, sc.Strategy, sc.Workers, sc.PktsPerSec, sc.SpeedupVs1,
			sc.SpeedupVsCore, sc.AllocsPerPkt, sc.Matched)
	}
	for _, wl := range workloads {
		fmt.Printf("winner %-12s %s\n", wl.name, dpWinners(report.Scenarios, wl.name))
	}
	fmt.Println("wrote", outPath)
}

// dpWinners names the faster strategy per worker count for a workload —
// the strategies are only comparable at matched parallelism (the replicated
// engine's one-worker row is a near-overhead-free serial loop, the sharded
// engine's multi-worker rows are where partitioned state pays off).
func dpWinners(rows []dpScenario, workload string) string {
	best := map[int]dpScenario{}
	var order []int
	for _, sc := range rows {
		if sc.Workload != workload {
			continue
		}
		if prev, ok := best[sc.Workers]; !ok {
			best[sc.Workers] = sc
			order = append(order, sc.Workers)
		} else if sc.PktsPerSec > prev.PktsPerSec {
			best[sc.Workers] = sc
		}
	}
	sort.Ints(order)
	var b strings.Builder
	for i, w := range order {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "w%d:%s", w, best[w].Strategy)
	}
	return b.String()
}

// measureDpAllocs measures an engine's marginal heap allocations per
// packet at steady state: the malloc-count delta between a double-length
// and a single-length run, divided by the extra packets — the fixed costs
// (engine construction, worker startup, free-list and scratch warmup)
// cancel out of the subtraction.
func measureDpAllocs(prog *ir.Program, trace []core.Arrival, workers int, run func(*ir.Program, []core.Arrival, int)) float64 {
	count := func(tr []core.Arrival) uint64 {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		run(prog, tr, workers)
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	double := append(append(make([]core.Arrival, 0, 2*len(trace)), trace...), trace...)
	d := float64(count(double)) - float64(count(trace))
	if d < 0 {
		d = 0
	}
	return d / float64(len(trace))
}

func emit(f func() *experiments.Table) {
	start := time.Now()
	t := f()
	fmt.Println(t.Format())
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
}
