// Command mp5bench regenerates the paper's evaluation tables and figures
// (Table 1, the §4.2 SRAM overhead, the §4.3.2 D2/D3/D4 microbenchmarks,
// the Figure-7 sensitivity sweeps, and the Figure-8 application runs) as
// aligned text tables.
//
// Usage:
//
//	mp5bench                 # everything at the default scale
//	mp5bench -full           # the paper's scale (10 seeds, longer traces)
//	mp5bench -only fig7a     # one experiment
//	                         # (table1, sram, d2, d3, d4,
//	                         #  fig7a..fig7d, fig8)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mp5/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's scale (10 seeds)")
	only := flag.String("only", "", "run a single experiment: table1, sram, d2, d3, d4, fig7a, fig7b, fig7c, fig7d, fig8")
	packets := flag.Int("packets", 0, "override trace length")
	seeds := flag.Int("seeds", 0, "override seed count")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus-text snapshot of the harness metrics to this file when done")
	flag.Parse()

	sc := experiments.DefaultScale
	if *full {
		sc = experiments.PaperScale
	}
	if *packets > 0 {
		sc.Packets = *packets
	}
	if *seeds > 0 {
		sc.Seeds = *seeds
	}

	all := map[string]func() *experiments.Table{
		"table1":      experiments.Table1,
		"sram":        experiments.SRAM,
		"d2":          func() *experiments.Table { return experiments.D2Sharding(sc) },
		"d4":          func() *experiments.Table { return experiments.D4Violations(sc) },
		"d3":          func() *experiments.Table { return experiments.D3Steering(sc) },
		"fig7a":       func() *experiments.Table { return experiments.Fig7a(sc) },
		"fig7b":       func() *experiments.Table { return experiments.Fig7b(sc) },
		"fig7c":       func() *experiments.Table { return experiments.Fig7c(sc) },
		"fig7d":       func() *experiments.Table { return experiments.Fig7d(sc) },
		"fig8":        func() *experiments.Table { return experiments.Fig8(sc) },
		"remap":       func() *experiments.Table { return experiments.AblationRemapInterval(sc) },
		"fifocap":     func() *experiments.Table { return experiments.AblationFIFOCapacity(sc) },
		"skew":        func() *experiments.Table { return experiments.AblationSkew(sc) },
		"mitigations": func() *experiments.Table { return experiments.AblationMitigations(sc) },
		"chiplet":     func() *experiments.Table { return experiments.AblationChiplet(sc) },
		"atoms":       experiments.Atoms,
	}
	order := []string{"table1", "sram", "d2", "d4", "d3", "fig7a", "fig7b", "fig7c", "fig7d", "fig8"}
	ablations := []string{"remap", "fifocap", "skew", "mitigations", "chiplet", "atoms"}

	if *only != "" {
		f, ok := all[strings.ToLower(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "mp5bench: unknown experiment %q (choices: %s)\n",
				*only, strings.Join(append(append([]string{}, order...), ablations...), ", "))
			os.Exit(2)
		}
		emit(f)
		writeMetrics(*metricsOut)
		return
	}
	fmt.Printf("MP5 evaluation reproduction — scale: %d packets x %d seeds\n\n", sc.Packets, sc.Seeds)
	for _, name := range order {
		emit(all[name])
	}
	fmt.Println("--- extensions beyond the paper's artifacts ---")
	for _, name := range ablations {
		emit(all[name])
	}
	writeMetrics(*metricsOut)
}

// writeMetrics snapshots the harness-wide telemetry registry (simulations
// run, packets pushed, cycles simulated, per-architecture breakdown) in
// Prometheus text format.
func writeMetrics(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	if err := experiments.Metrics.WriteProm(f); err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
}

func emit(f func() *experiments.Table) {
	start := time.Now()
	t := f()
	fmt.Println(t.Format())
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
}
