package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/ir"
	"mp5/internal/server"
	"mp5/internal/workload"
)

// srvScenario is one row of BENCH_server.json: the daemon driven over
// loopback TCP by the closed-loop client at one worker count. Latency is
// the client-observed send→egress-ack round trip, so it prices the full
// network path (codec, ingress queue, admission, execution, ack).
type srvScenario struct {
	Workers    int     `json:"workers"`
	NsPerRun   int64   `json:"ns_per_run"`
	PktsPerSec float64 `json:"pkts_per_sec"`
	P50Micros  float64 `json:"rtt_p50_us"`
	P99Micros  float64 `json:"rtt_p99_us"`
	Lossless   bool    `json:"lossless"`
}

// traceScenario is one tracing-cost row: the same loopback run with wire
// spans sampled at 1/SampleEvery (0 = tracer absent, the baseline).
type traceScenario struct {
	SampleEvery  int     `json:"sample_every"`
	PktsPerSec   float64 `json:"pkts_per_sec"`
	P50Micros    float64 `json:"rtt_p50_us"`
	P99Micros    float64 `json:"rtt_p99_us"`
	SpansSampled int64   `json:"spans_sampled"`
	SpansDropped int64   `json:"spans_dropped"`
}

// srvBenchReport is the BENCH_server.json schema. The in-process dataplane
// rate from BENCH_dataplane.json is the natural comparison point: the gap
// between the two is the cost of the wire. TraceOverheadPct prices the
// observability layer: the pps delta between the untraced baseline and the
// default 1/1024 sampling, as a percentage of the baseline (the tentpole's
// <2% acceptance bar).
type srvBenchReport struct {
	Benchmark        string          `json:"benchmark"`
	Date             string          `json:"date"`
	GoVersion        string          `json:"go_version"`
	NumCPU           int             `json:"num_cpu"`
	GoMaxProcs       int             `json:"gomaxprocs"`
	SingleCPU        bool            `json:"single_cpu"`
	Packets          int             `json:"packets"`
	Window           int             `json:"window"`
	Scenarios        []srvScenario   `json:"scenarios"`
	TraceScenarios   []traceScenario `json:"trace_scenarios"`
	TraceOverheadPct float64         `json:"trace_overhead_pct"`
	// The noisy-neighbor section (-tenant-bench, also run by -server-bench):
	// the victim tenant's rate solo vs with a quota-capped flooding
	// co-tenant, and the resulting degradation percentage (<10% bar).
	TenantScenarios  []tenantScenario `json:"tenant_scenarios,omitempty"`
	NoisyNeighborPct float64          `json:"noisy_neighbor_pct"`
}

// runServerBench times the full network path — mp5load's client against an
// in-process mp5d server over loopback TCP — at worker counts
// {1, 2, GOMAXPROCS}, reporting achieved pps and RTT quantiles.
func runServerBench(outPath string) {
	prog, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	trace := workload.Synthetic(prog, workload.Spec{Packets: 20000, Pipelines: 4, Seed: 1}, 4, 512)
	const window = 256

	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	sort.Ints(counts)
	report := srvBenchReport{
		Benchmark:  "server-loopback",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		SingleCPU:  warnSingleCPU("server-bench"),
		Packets:    len(trace),
		Window:     window,
	}
	for i, w := range counts {
		if i > 0 && w == counts[i-1] {
			continue // GOMAXPROCS collides with 1 or 2 on small boxes
		}
		var best *server.LoadReport
		for rep := 0; rep < 4; rep++ { // rep 0 is warmup
			lr, _, _, err := oneServerRun(prog, trace, w, window, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mp5bench: workers=%d: %v\n", w, err)
				os.Exit(1)
			}
			if rep > 0 && (best == nil || lr.Elapsed < best.Elapsed) {
				best = lr
			}
		}
		report.Scenarios = append(report.Scenarios, srvScenario{
			Workers:    w,
			NsPerRun:   best.Elapsed.Nanoseconds(),
			PktsPerSec: best.PktsPerSec,
			P50Micros:  best.Latency.Quantile(0.5),
			P99Micros:  best.Latency.Quantile(0.99),
			Lossless:   best.Acked == best.Sent,
		})
	}
	// Tracing cost: the untraced baseline, the default 1/1024 sampling,
	// and a deliberately heavy 1/8, all at GOMAXPROCS workers (no
	// oversubscription — scheduler noise would swamp a percent-level
	// effect). Each variant reports the median of 5 measured reps after a
	// warmup; the headline number is baseline vs default.
	tw := runtime.GOMAXPROCS(0)
	for _, every := range []int{0, 1024, 8} {
		var runs []*server.LoadReport
		var sampled, dropped int64
		for rep := 0; rep < 6; rep++ { // rep 0 is warmup
			lr, sn, dn, err := oneServerRun(prog, trace, tw, window, every)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mp5bench: trace 1/%d: %v\n", every, err)
				os.Exit(1)
			}
			if rep > 0 {
				runs = append(runs, lr)
				sampled, dropped = sn, dn
			}
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Elapsed < runs[j].Elapsed })
		med := runs[len(runs)/2]
		report.TraceScenarios = append(report.TraceScenarios, traceScenario{
			SampleEvery:  every,
			PktsPerSec:   med.PktsPerSec,
			P50Micros:    med.Latency.Quantile(0.5),
			P99Micros:    med.Latency.Quantile(0.99),
			SpansSampled: sampled,
			SpansDropped: dropped,
		})
	}
	base := report.TraceScenarios[0].PktsPerSec
	report.TraceOverheadPct = 100 * (base - report.TraceScenarios[1].PktsPerSec) / base
	report.TenantScenarios, report.NoisyNeighborPct = runTenantBench()

	out, _ := json.MarshalIndent(report, "", "  ")
	out = append(out, '\n')
	if outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	for _, sc := range report.Scenarios {
		fmt.Printf("workers=%-2d       %10.0f pkts/s  p50 %5.0fµs  p99 %5.0fµs  lossless=%v\n",
			sc.Workers, sc.PktsPerSec, sc.P50Micros, sc.P99Micros, sc.Lossless)
	}
	for _, ts := range report.TraceScenarios {
		label := "untraced"
		if ts.SampleEvery > 0 {
			label = fmt.Sprintf("trace 1/%d", ts.SampleEvery)
		}
		fmt.Printf("%-16s %10.0f pkts/s  p50 %5.0fµs  p99 %5.0fµs  spans=%d\n",
			label, ts.PktsPerSec, ts.P50Micros, ts.P99Micros, ts.SpansSampled)
	}
	fmt.Printf("trace overhead   %.2f%% pps at default 1/1024 sampling\n", report.TraceOverheadPct)
	printTenantRows(report.TenantScenarios, report.NoisyNeighborPct)
	fmt.Println("wrote", outPath)
}

// oneServerRun stands up a fresh daemon on an ephemeral loopback port,
// pushes the trace through the closed-loop TCP client, and tears it down.
// sampleEvery > 0 attaches a wire-span tracer (registry-less: pure tracing
// cost, no metric folding beyond the collector) and returns its
// sampled/dropped counts.
func oneServerRun(prog *ir.Program, trace []core.Arrival, workers, window, sampleEvery int) (*server.LoadReport, int64, int64, error) {
	var trc *dataplane.Tracer
	if sampleEvery > 0 {
		trc = dataplane.NewTracer(dataplane.TracerConfig{SampleEvery: sampleEvery})
	}
	s, err := server.New(prog, server.Config{
		Engine:  dataplane.Config{Workers: workers},
		TCPAddr: "127.0.0.1:0",
		Tracer:  trc,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	if err := s.Start(); err != nil {
		return nil, 0, 0, err
	}
	defer s.Shutdown()
	c, err := server.Dial("tcp", s.TCPAddr())
	if err != nil {
		return nil, 0, 0, err
	}
	defer c.Close()
	rep, err := c.Run(trace, server.LoadOptions{Window: window})
	if err != nil {
		return nil, 0, 0, err
	}
	res := s.Shutdown()
	trc.Close()
	if res.Stalled {
		return nil, 0, 0, fmt.Errorf("engine stalled at %d workers", workers)
	}
	return rep, trc.Sampled(), trc.Dropped(), nil
}
