package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/ir"
	"mp5/internal/server"
	"mp5/internal/workload"
)

// srvScenario is one row of BENCH_server.json: the daemon driven over
// loopback TCP by the closed-loop client at one worker count. Latency is
// the client-observed send→egress-ack round trip, so it prices the full
// network path (codec, ingress queue, admission, execution, ack).
type srvScenario struct {
	Workers    int     `json:"workers"`
	NsPerRun   int64   `json:"ns_per_run"`
	PktsPerSec float64 `json:"pkts_per_sec"`
	P50Micros  float64 `json:"rtt_p50_us"`
	P99Micros  float64 `json:"rtt_p99_us"`
	Lossless   bool    `json:"lossless"`
}

// srvBenchReport is the BENCH_server.json schema. The in-process dataplane
// rate from BENCH_dataplane.json is the natural comparison point: the gap
// between the two is the cost of the wire.
type srvBenchReport struct {
	Benchmark  string        `json:"benchmark"`
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Packets    int           `json:"packets"`
	Window     int           `json:"window"`
	Scenarios  []srvScenario `json:"scenarios"`
}

// runServerBench times the full network path — mp5load's client against an
// in-process mp5d server over loopback TCP — at worker counts
// {1, 2, GOMAXPROCS}, reporting achieved pps and RTT quantiles.
func runServerBench(outPath string) {
	prog, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	trace := workload.Synthetic(prog, workload.Spec{Packets: 20000, Pipelines: 4, Seed: 1}, 4, 512)
	const window = 256

	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	sort.Ints(counts)
	report := srvBenchReport{
		Benchmark:  "server-loopback",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Packets:    len(trace),
		Window:     window,
	}
	for i, w := range counts {
		if i > 0 && w == counts[i-1] {
			continue // GOMAXPROCS collides with 1 or 2 on small boxes
		}
		var best *server.LoadReport
		for rep := 0; rep < 4; rep++ { // rep 0 is warmup
			lr, err := oneServerRun(prog, trace, w, window)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mp5bench: workers=%d: %v\n", w, err)
				os.Exit(1)
			}
			if rep > 0 && (best == nil || lr.Elapsed < best.Elapsed) {
				best = lr
			}
		}
		report.Scenarios = append(report.Scenarios, srvScenario{
			Workers:    w,
			NsPerRun:   best.Elapsed.Nanoseconds(),
			PktsPerSec: best.PktsPerSec,
			P50Micros:  best.Latency.Quantile(0.5),
			P99Micros:  best.Latency.Quantile(0.99),
			Lossless:   best.Acked == best.Sent,
		})
	}
	out, _ := json.MarshalIndent(report, "", "  ")
	out = append(out, '\n')
	if outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	for _, sc := range report.Scenarios {
		fmt.Printf("workers=%-2d       %10.0f pkts/s  p50 %5.0fµs  p99 %5.0fµs  lossless=%v\n",
			sc.Workers, sc.PktsPerSec, sc.P50Micros, sc.P99Micros, sc.Lossless)
	}
	fmt.Println("wrote", outPath)
}

// oneServerRun stands up a fresh daemon on an ephemeral loopback port,
// pushes the trace through the closed-loop TCP client, and tears it down.
func oneServerRun(prog *ir.Program, trace []core.Arrival, workers, window int) (*server.LoadReport, error) {
	s, err := server.New(prog, server.Config{
		Engine:  dataplane.Config{Workers: workers},
		TCPAddr: "127.0.0.1:0",
	})
	if err != nil {
		return nil, err
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	defer s.Shutdown()
	c, err := server.Dial("tcp", s.TCPAddr())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	rep, err := c.Run(trace, server.LoadOptions{Window: window})
	if err != nil {
		return nil, err
	}
	res := s.Shutdown()
	if res.Stalled {
		return nil, fmt.Errorf("engine stalled at %d workers", workers)
	}
	return rep, nil
}
