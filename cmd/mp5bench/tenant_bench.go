package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/ir"
	"mp5/internal/server"
	"mp5/internal/workload"
)

// floodQuota caps the flooding tenant's in-flight packets. Small relative
// to the window so the quota — not luck — is what protects the victim.
const floodQuota = 4

// tenantScenario is one noisy-neighbor row of BENCH_server.json: the
// well-behaved tenant's closed-loop TCP rate, measured solo and then with a
// quota-capped UDP tenant flooding the same daemon.
type tenantScenario struct {
	Mode       string  `json:"mode"` // "solo" or "noisy"
	PktsPerSec float64 `json:"pkts_per_sec"`
	P50Micros  float64 `json:"rtt_p50_us"`
	P99Micros  float64 `json:"rtt_p99_us"`
	Lossless   bool    `json:"lossless"`
	// Flood-side accounting (noisy mode only): the offered flood rate
	// (paced at a multiple of the flood's quota entitlement rather than
	// unpaced, so the measurement prices the engine's tenant handling, not
	// the in-process sender's CPU), frames the flooding client pushed, how
	// many the engine admitted on the flood tenant, and how many the
	// admission quota shed without blocking the victim.
	FloodRatePPS   float64 `json:"flood_rate_pps,omitempty"`
	FloodSent      int64   `json:"flood_sent,omitempty"`
	FloodSubmitted int64   `json:"flood_submitted,omitempty"`
	FloodQuotaShed int64   `json:"flood_quota_shed,omitempty"`
}

// runTenantBench measures the noisy-neighbor bar: the victim tenant's
// throughput with a flooding co-tenant must stay within 10% of its solo
// rate (the quota sheds the flood's excess instead of letting it crowd the
// shared window). Returns the two scenario rows and the degradation
// percentage.
func runTenantBench() ([]tenantScenario, float64) {
	prog, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	victim := workload.Synthetic(prog, workload.Spec{Packets: 60000, Pipelines: 4, Seed: 1}, 4, 512)
	flood := workload.Synthetic(prog, workload.Spec{Packets: 5000, Pipelines: 4, Seed: 2}, 4, 512)
	const window = 256
	workers := runtime.GOMAXPROCS(0)

	var rows []tenantScenario
	floodRate := 0.0
	for _, mode := range []string{"solo", "noisy"} {
		var best *server.LoadReport
		var fSent, fSub, fShed int64
		for rep := 0; rep < 6; rep++ { // rep 0 is warmup
			lr, fs, fb, fd, err := oneTenantRun(prog, victim, flood, workers, window, floodRate)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mp5bench: tenant-bench %s: %v\n", mode, err)
				os.Exit(1)
			}
			if rep > 0 && (best == nil || lr.Elapsed < best.Elapsed) {
				best, fSent, fSub, fShed = lr, fs, fb, fd
			}
		}
		rows = append(rows, tenantScenario{
			Mode:           mode,
			PktsPerSec:     best.PktsPerSec,
			P50Micros:      best.Latency.Quantile(0.5),
			P99Micros:      best.Latency.Quantile(0.99),
			Lossless:       best.Acked == best.Sent,
			FloodRatePPS:   floodRate,
			FloodSent:      fSent,
			FloodSubmitted: fSub,
			FloodQuotaShed: fShed,
		})
		// The noisy phase offers roughly 4x what the flood's quota share
		// of the window (floodQuota of 256 slots) entitles it to execute,
		// so the quota must shed most of the offered load.
		floodRate = 4 * float64(floodQuota) / float64(window) * best.PktsPerSec
	}
	degradation := 100 * (rows[0].PktsPerSec - rows[1].PktsPerSec) / rows[0].PktsPerSec
	return rows, degradation
}

// oneTenantRun stands up a fresh two-tenant daemon (victim unlimited,
// flood quota-capped) on ephemeral loopback ports, optionally starts a
// paced UDP blaster on the flood tenant (floodRate > 0), and runs the
// victim's closed-loop TCP trace.
func oneTenantRun(prog *ir.Program, victim, flood []core.Arrival, workers, window int, floodRate float64) (*server.LoadReport, int64, int64, int64, error) {
	s, err := server.NewMulti([]server.TenantProgram{
		{Name: "victim", Prog: prog},
		{Name: "flood", Prog: prog, Quota: floodQuota},
	}, server.Config{
		Engine:  dataplane.Config{Workers: workers, Window: window},
		TCPAddr: "127.0.0.1:0",
		UDPAddr: "127.0.0.1:0",
		Policy:  server.PolicyDrop,
	})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	if err := s.Start(); err != nil {
		return nil, 0, 0, 0, err
	}
	defer s.Shutdown()

	var floodSent int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	if floodRate > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Burst pacing, not per-packet pacing: on small boxes 10k+
			// per-packet sleeps per second are scheduler churn that would be
			// billed to the victim as if it were tenant interference.
			uc, err := server.Dial("udp", s.UDPAddr())
			if err != nil {
				return
			}
			defer uc.Close()
			const burst = 128
			interval := time.Duration(float64(burst) / floodRate * float64(time.Second))
			off := 0
			for {
				end := off + burst
				if end > len(flood) {
					off, end = 0, burst
				}
				rep, err := uc.Run(flood[off:end], server.LoadOptions{Tenant: 1})
				if err != nil {
					return
				}
				floodSent += rep.Sent
				off = end
				select {
				case <-stop:
					return
				case <-time.After(interval):
				}
			}
		}()
	}
	c, err := server.Dial("tcp", s.TCPAddr())
	if err != nil {
		close(stop)
		wg.Wait()
		return nil, 0, 0, 0, err
	}
	defer c.Close()
	rep, err := c.Run(victim, server.LoadOptions{Tenant: 0, Window: window})
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	var fSub, fShed int64
	if tn := s.Tenants().ByName("flood"); tn != nil {
		st := tn.Active().Handle.Stats()
		fSub, fShed = st.Submitted, st.Shed
	}
	if res := s.Shutdown(); res.Stalled {
		return nil, 0, 0, 0, fmt.Errorf("engine stalled at %d workers", workers)
	}
	return rep, floodSent, fSub, fShed, nil
}

// runTenantBenchOnly is the -tenant-bench entry point: run just the
// noisy-neighbor measurement and merge it into an existing BENCH_server.json
// (so -server-bench results are preserved), or write a fresh report.
func runTenantBenchOnly(outPath string) {
	rows, degradation := runTenantBench()
	report := srvBenchReport{
		Benchmark:  "server-loopback",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		SingleCPU:  warnSingleCPU("tenant-bench"),
	}
	if outPath != "" {
		if data, err := os.ReadFile(outPath); err == nil {
			var prev srvBenchReport
			if json.Unmarshal(data, &prev) == nil && prev.Benchmark == report.Benchmark {
				report = prev // keep the -server-bench sections; refresh tenant rows
			}
		}
	}
	report.TenantScenarios = rows
	report.NoisyNeighborPct = degradation

	out, _ := json.MarshalIndent(report, "", "  ")
	out = append(out, '\n')
	if outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mp5bench:", err)
		os.Exit(1)
	}
	printTenantRows(rows, degradation)
	fmt.Println("wrote", outPath)
}

func printTenantRows(rows []tenantScenario, degradation float64) {
	for _, r := range rows {
		extra := ""
		if r.Mode == "noisy" {
			extra = fmt.Sprintf("  flood @%.0f pps: %d sent, %d admitted, %d quota-shed",
				r.FloodRatePPS, r.FloodSent, r.FloodSubmitted, r.FloodQuotaShed)
		}
		fmt.Printf("tenant %-6s    %10.0f pkts/s  p50 %5.0fµs  p99 %5.0fµs  lossless=%v%s\n",
			r.Mode, r.PktsPerSec, r.P50Micros, r.P99Micros, r.Lossless, extra)
	}
	fmt.Printf("noisy neighbor   %.2f%% victim pps degradation (bar: <10%%)\n", degradation)
}
