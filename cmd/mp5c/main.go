// Command mp5c compiles a Domino program for a Banzai single pipeline or
// the MP5 multi-pipeline target and dumps the staged configuration,
// including the MP5 access metadata (resolved index operands, visit
// predicates, sharding decisions).
//
// Usage:
//
//	mp5c [-target banzai|mp5] [-stages N] program.domino
//	mp5c -app flowlet|conga|wfq|sequencer [-target mp5]
package main

import (
	"flag"
	"fmt"
	"os"

	"mp5/internal/apps"
	"mp5/internal/compiler"
)

func main() {
	target := flag.String("target", "mp5", "compilation target: banzai or mp5")
	stages := flag.Int("stages", compiler.DefaultMaxStages, "pipeline stage budget")
	atomDepth := flag.Int("atomdepth", 0, "maximum stateful-atom ALU depth (0 = unconstrained)")
	atoms := flag.Bool("atoms", false, "also print the Banzai atom census")
	app := flag.String("app", "", "compile a built-in application instead of a file (flowlet, conga, wfq, sequencer)")
	flag.Parse()

	var src string
	switch {
	case *app != "":
		a, err := apps.ByName(*app)
		if err != nil {
			fatal(err)
		}
		src = a.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: mp5c [-target banzai|mp5] [-stages N] (program.domino | -app name)")
		os.Exit(2)
	}

	opts := compiler.Options{MaxStages: *stages, MaxAtomDepth: *atomDepth}
	switch *target {
	case "banzai":
		opts.Target = compiler.TargetBanzai
	case "mp5":
		opts.Target = compiler.TargetMP5
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}

	prog, err := compiler.Compile(src, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(prog.Dump())
	if opts.Target == compiler.TargetMP5 {
		fmt.Printf("stateful predicates: %v\n", prog.StatefulPredicates)
	}
	if *atoms {
		for _, rep := range compiler.ClassifyAtoms(prog) {
			fmt.Println(rep)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp5c:", err)
	os.Exit(1)
}
