// Command mp5d runs the MP5 switch daemon: it compiles a packet-processing
// program, wraps the concurrent dataplane in network listeners, and serves
// an open-ended packet stream until SIGTERM/SIGINT, then drains gracefully
// and prints the run summary.
//
// Examples:
//
//	mp5d -app sequencer -workers 4
//	mp5d -synthetic 4 -regsize 512 -listen-tcp 127.0.0.1:9590 -policy drop
//	mp5d -program prog.domino -listen-tcp 127.0.0.1:0 -admin 127.0.0.1:0 -verify
//	mp5d -tenant gold=conga.dm@64 -tenant bronze=wfq.dm -verify
//
// Multi-tenant mode (-tenant, repeatable) loads one program per tenant on
// the shared engine: each tenant gets an isolated register namespace, a
// dense wire id in declaration order (clients stamp it in the frame), an
// optional admission quota (@N in-flight packets), and zero-downtime hot
// swap over the admin plane (POST /programs/{tenant} with new Domino
// source).
//
// The first line printed is machine-parseable ("mp5d: listening tcp=...
// udp=... admin=...") so scripts can bind port 0 and discover the real
// addresses. Exit codes: 0 clean drain, 1 verification mismatch, 3 stall.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mp5/internal/apps"
	"mp5/internal/compiler"
	"mp5/internal/dataplane"
	"mp5/internal/ir"
	"mp5/internal/server"
	"mp5/internal/telemetry"
	"mp5/internal/tenant"
)

// stringList collects a repeatable flag.
type stringList []string

func (l *stringList) String() string { return fmt.Sprint([]string(*l)) }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	app := flag.String("app", "", "built-in application: flowlet, conga, wfq, sequencer")
	programPath := flag.String("program", "", "Domino program file")
	synthetic := flag.Int("synthetic", 0, "use the synthetic program with this many stateful stages")
	regSize := flag.Int("regsize", 512, "register array size for -synthetic")
	workers := flag.Int("workers", 0, "dataplane worker count (0 = GOMAXPROCS)")
	window := flag.Int("window", 0, "admission window: max packets in flight (0 = engine default)")
	seed := flag.Int64("seed", 0, "initial index→worker placement seed (0 = round-robin)")
	tcpAddr := flag.String("listen-tcp", "127.0.0.1:9590", `TCP data-plane listen address ("" disables)`)
	udpAddr := flag.String("listen-udp", "127.0.0.1:9590", `UDP data-plane listen address ("" disables)`)
	adminAddr := flag.String("admin", "127.0.0.1:9591", `HTTP admin-plane listen address ("" disables)`)
	ingressCap := flag.Int("ingress-cap", 0, "ingress queue depth between decoders and the admitter (0 = default 1024)")
	policy := flag.String("policy", "drop", "UDP backpressure policy at a full ingress queue: drop or block")
	verify := flag.Bool("verify", false, "record the admitted order and check equivalence against the single-pipeline reference at drain (memory grows with traffic; soak/debug mode)")
	traceSample := flag.Int("trace-sample", 1024, "sample one packet in N for wire-to-wire spans (0 disables tracing)")
	traceJSONL := flag.String("trace-jsonl", "", "stream sampled wire spans to this JSONL file")
	statsInterval := flag.Duration("stats-interval", 0, "background gauge sampler period (0 = default 250ms)")
	var tenantSpecs stringList
	flag.Var(&tenantSpecs, "tenant", "tenant spec NAME=FILE[@quota] (repeatable; multi-tenant mode)")
	flag.Parse()

	var tenants []server.TenantProgram
	if len(tenantSpecs) > 0 {
		if *app != "" || *synthetic > 0 || *programPath != "" {
			fatal(fmt.Errorf("-tenant is exclusive with -app/-synthetic/-program"))
		}
		var err error
		tenants, err = loadTenants(tenantSpecs, *window)
		if err != nil {
			fatal(err)
		}
	} else {
		tenants = []server.TenantProgram{{Name: "default", Prog: selectProgram(*app, *synthetic, *regSize, *programPath)}}
	}
	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}

	// The registry is shared by the server, engine, and tracer so /metrics
	// serves the whole surface; the tracer's sink (when -trace-jsonl is set)
	// streams raw spans off the collector goroutine.
	reg := telemetry.NewRegistry()
	var trc *dataplane.Tracer
	var spanOut *telemetry.JSONL
	var spanFile *os.File
	if *traceSample > 0 {
		tcfg := dataplane.TracerConfig{SampleEvery: *traceSample, Registry: reg}
		if *traceJSONL != "" {
			f, err := os.Create(*traceJSONL)
			if err != nil {
				fatal(err)
			}
			spanFile = f
			spanOut = telemetry.NewJSONL(f)
			tcfg.Sink = func(sp *dataplane.Span) { spanOut.Object(sp) }
		}
		trc = dataplane.NewTracer(tcfg)
	}

	s, err := server.NewMulti(tenants, server.Config{
		Engine: dataplane.Config{
			Workers: *workers,
			Window:  *window,
			Seed:    *seed,
		},
		TCPAddr:        *tcpAddr,
		UDPAddr:        *udpAddr,
		AdminAddr:      *adminAddr,
		IngressCap:     *ingressCap,
		Policy:         pol,
		Verify:         *verify,
		Registry:       reg,
		Tracer:         trc,
		SampleInterval: *statsInterval,
	})
	if err != nil {
		fatal(err)
	}
	if err := s.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("mp5d: listening tcp=%s udp=%s admin=%s\n", s.TCPAddr(), s.UDPAddr(), s.AdminAddr())
	for _, tn := range s.Tenants().Tenants() {
		v := tn.Active()
		quota := "unlimited"
		if q := tn.Quota(); q != nil {
			quota = fmt.Sprintf("%d in flight", q.Cap())
		}
		fmt.Printf("mp5d: tenant %s id=%d program %s (%d stages, %d registers) quota %s\n",
			tn.Name(), tn.ID(), v.Prog.Name, v.Prog.NumStages(), len(v.Prog.Regs), quota)
	}
	fmt.Printf("mp5d: %d workers, policy %s\n", s.Engine().Workers(), *policy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Printf("mp5d: %v, draining\n", got)

	res := s.Shutdown()
	fmt.Printf("packets            %d admitted, %d completed, %d shed at ingress\n",
		res.Injected, res.Completed, s.Dropped())
	fmt.Printf("throughput         %.0f packets/sec (%.2f ms serving)\n",
		res.PktsPerSec, float64(res.Elapsed.Microseconds())/1000)
	fmt.Printf("shard moves        %d\n", res.ShardMoves)
	if trc != nil {
		trc.Close()
		fmt.Printf("trace              %d spans sampled (1/%d), %d dropped at the collector\n",
			trc.Sampled(), *traceSample, trc.Dropped())
		for _, st := range trc.StageStats() {
			fmt.Printf("  %-12s %8d spans  p50 %8.1fµs  p99 %8.1fµs\n",
				st.Stage, st.Count, st.P50us, st.P99us)
		}
		if spanOut != nil {
			if err := spanOut.Flush(); err != nil {
				fatal(err)
			}
			if err := spanFile.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace              spans written to %s\n", *traceJSONL)
		}
	}
	if res.Stalled {
		fmt.Fprintf(os.Stderr, "mp5d: engine stalled (%d of %d packets completed)\n",
			res.Completed, res.Injected)
		os.Exit(3)
	}
	if *verify {
		rep, orderOK, err := s.VerifyRecorded()
		if err != nil {
			fatal(err)
		}
		// Per-version detail first when more than one program version saw
		// traffic; the aggregate line below stays the machine-parseable bar.
		// The aggregate report is one version's, so the total packet count
		// comes from summing the per-version verdicts.
		total := rep.PacketsCompared
		if tvs, err := s.VerifyTenants(); err == nil && len(tvs) > 1 {
			total = 0
			for _, tv := range tvs {
				verdict := "OK"
				if !tv.Report.Equivalent || !tv.OrderOK {
					verdict = "FAILED"
				}
				fmt.Printf("  tenant %-12s v%d  %7d packets  %s\n", tv.Tenant, tv.Version, tv.Packets, verdict)
				total += tv.Packets
			}
		}
		switch {
		case !rep.Equivalent:
			fmt.Printf("equivalence        FAILED: %d mismatches, e.g. %v\n",
				len(rep.Mismatches), rep.Mismatches[0])
			os.Exit(1)
		case !orderOK:
			fmt.Println("equivalence        FAILED: C1 access order diverges from the reference")
			os.Exit(1)
		default:
			fmt.Printf("equivalence        OK (%d packets, all registers, C1 order)\n",
				total)
		}
	}
}

// selectProgram mirrors mp5sim's program selection so a daemon and a load
// generator launched with the same flags agree on the header-field shape.
func selectProgram(app string, synthetic, regSize int, programPath string) *ir.Program {
	switch {
	case app != "":
		a, err := apps.ByName(app)
		if err != nil {
			fatal(err)
		}
		return a.MustCompile(compiler.TargetMP5)
	case synthetic > 0:
		prog, err := apps.Synthetic(synthetic, regSize, compiler.DefaultMaxStages)
		if err != nil {
			fatal(err)
		}
		return prog
	case programPath != "":
		data, err := os.ReadFile(programPath)
		if err != nil {
			fatal(err)
		}
		prog, err := compiler.Compile(string(data), compiler.Options{Target: compiler.TargetMP5})
		if err != nil {
			fatal(err)
		}
		return prog
	}
	fmt.Fprintln(os.Stderr, "usage: mp5d (-app NAME | -synthetic N | -program FILE) [flags]")
	os.Exit(2)
	return nil
}

// loadTenants parses, validates, and compiles the -tenant specs up front —
// every rejection is a one-line error before any listener binds.
func loadTenants(specs []string, window int) ([]server.TenantProgram, error) {
	parsed := make([]tenant.Spec, 0, len(specs))
	for _, arg := range specs {
		sp, err := tenant.ParseSpec(arg)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, sp)
	}
	if err := tenant.ValidateSpecs(parsed, window); err != nil {
		return nil, err
	}
	out := make([]server.TenantProgram, 0, len(parsed))
	for _, sp := range parsed {
		data, err := os.ReadFile(sp.File)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %v", sp.Name, err)
		}
		prog, err := compiler.Compile(string(data), compiler.Options{Target: compiler.TargetMP5})
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %s: %v", sp.Name, sp.File, err)
		}
		out = append(out, server.TenantProgram{Name: sp.Name, Prog: prog, Quota: sp.Quota})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp5d:", err)
	os.Exit(1)
}
