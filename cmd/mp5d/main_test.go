package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mp5/internal/apps"
)

// writeProg drops Domino source into the test dir and returns its path.
func writeProg(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadTenants covers the up-front multi-program config validation:
// every malformed spec, duplicate name, missing file, and unparsable
// program is rejected with a one-line error before anything binds.
func TestLoadTenants(t *testing.T) {
	conga := writeProg(t, "conga.dm", apps.CongaSource)
	wfq := writeProg(t, "wfq.dm", apps.WFQSource)
	broken := writeProg(t, "broken.dm", "int x[4] = {")

	tenants, err := loadTenants([]string{"gold=" + conga + "@64", "bronze=" + wfq}, 256)
	if err != nil {
		t.Fatalf("valid specs rejected: %v", err)
	}
	if len(tenants) != 2 || tenants[0].Name != "gold" || tenants[0].Quota != 64 ||
		tenants[1].Name != "bronze" || tenants[1].Quota != 0 {
		t.Fatalf("loaded tenants wrong: %+v", tenants)
	}
	if tenants[0].Prog == nil || tenants[1].Prog == nil {
		t.Fatal("programs not compiled")
	}

	cases := []struct {
		name  string
		specs []string
		want  string
	}{
		{"malformed spec", []string{"noequals"}, "want NAME=FILE"},
		{"empty name", []string{"=" + conga}, "empty tenant name"},
		{"empty file", []string{"gold="}, "empty program file"},
		{"bad quota", []string{"gold=" + conga + "@zero"}, "not a positive integer"},
		{"duplicate names", []string{"gold=" + conga, "gold=" + wfq}, "duplicate tenant name"},
		{"quota at window", []string{"gold=" + conga + "@256"}, "never bind"},
		{"missing file", []string{"gold=" + filepath.Join(t.TempDir(), "nope.dm")}, "no such file"},
		{"unparsable program", []string{"gold=" + broken}, broken},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := loadTenants(tc.specs, 256)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("loadTenants(%v): want error containing %q, got %v", tc.specs, tc.want, err)
			}
			if err != nil && strings.Contains(err.Error(), "\n") {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
}
