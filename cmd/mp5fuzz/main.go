// Command mp5fuzz runs long offline differential-fuzzing sweeps: random
// Domino programs under random workloads, each checked against the
// single-pipeline reference on every order-preserving architecture, on the
// simulator's full-sweep scheduler, and on the concurrent goroutine
// dataplane (final state, packet outputs, and C1 access order). Failures
// are minimized and written as JSONL artifacts that -repro replays.
//
// Examples:
//
//	mp5fuzz -cases 5000 -out failures.jsonl
//	mp5fuzz -cases 200 -archs mp5 -packets 2000 -k 8
//	mp5fuzz -repro failures.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mp5/internal/core"
	"mp5/internal/fuzz"
	"mp5/internal/ir"
)

var archNames = map[string]core.Arch{
	"mp5":          core.ArchMP5,
	"mp5-nod4":     core.ArchMP5NoD4,
	"ideal":        core.ArchIdeal,
	"naive":        core.ArchNaive,
	"static-shard": core.ArchStaticShard,
	"recirc":       core.ArchRecirc,
}

// artifact is one JSONL failure record: everything needed to reproduce the
// failing run (the case pins the minimized program source verbatim).
type artifact struct {
	Type   string `json:"type"`
	Engine string `json:"engine,omitempty"`
	Arch   string `json:"arch"`
	// Executor records which stage executor diverged (bytecode or interp;
	// also carried inside Failure) so artifact triage can split compiler
	// bugs from engine bugs at a glance.
	Executor  string        `json:"executor,omitempty"`
	Case      *fuzz.Case    `json:"case"`
	Failure   *fuzz.Failure `json:"failure"`
	Minimized bool          `json:"minimized"`
}

func main() {
	cases := flag.Int("cases", 1000, "number of random cases to sweep")
	seed := flag.Int64("seed", 1, "base seed (case i derives its seeds from seed+i)")
	packets := flag.Int("packets", 600, "packets per case")
	size := flag.Int("size", 0, "program size knob 1-8 (0 varies per case)")
	k := flag.Int("k", 0, "pipelines (0 varies over 2,4,8)")
	archList := flag.String("archs", "mp5,ideal,naive,static-shard",
		"comma-separated architectures to check against the reference")
	out := flag.String("out", "", "write JSONL failure artifacts to this file")
	shrinkBudget := flag.Int("shrink", 80, "shrink budget in candidate runs per failure (0 disables)")
	repro := flag.String("repro", "", "replay failure artifacts from this JSONL file instead of sweeping")
	executor := flag.String("executor", "", "force the engine sweep's stage executor: bytecode or interp (empty: bytecode, plus the built-in cross-executor runs)")
	engine := flag.String("engine", "", "restrict the sweep (or -repro replay) to one engine family: core, core-sweep, bytecode, dataplane, dataplane-mt, or screp (empty: all)")
	verbose := flag.Bool("v", false, "log every Nth case")
	flag.Parse()

	switch *executor {
	case "", fuzz.ExecBytecode, fuzz.ExecInterp:
	default:
		fatal(fmt.Errorf("unknown executor %q (want %q or %q)", *executor, fuzz.ExecBytecode, fuzz.ExecInterp))
	}
	switch *engine {
	case "", fuzz.EngineCore, fuzz.EngineSweep, fuzz.EngineBytecode,
		fuzz.EngineDataplane, fuzz.EngineMultiTenant, fuzz.EngineScrep:
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	var archs []core.Arch
	for _, name := range strings.Split(*archList, ",") {
		a, ok := archNames[strings.TrimSpace(name)]
		if !ok {
			fatal(fmt.Errorf("unknown architecture %q", name))
		}
		archs = append(archs, a)
	}

	var sink *json.Encoder
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = json.NewEncoder(f)
	}

	if *repro != "" {
		os.Exit(reproduce(*repro, archs, *engine))
	}

	failures := 0
	for i := 0; i < *cases; i++ {
		s := *seed + int64(i)
		c := &fuzz.Case{
			ProgSeed:  int64(ir.Mix64(uint64(s))),
			Size:      pick(*size, int(s%8)+1),
			WorkSeed:  int64(ir.Mix64(uint64(s) ^ 0x9e37)),
			Packets:   *packets,
			Pipelines: pick(*k, []int{2, 4, 8}[s%3]),
			Executor:  *executor,
		}
		fails := fuzz.RunEngines(c, archs, *engine)
		if *verbose && i%100 == 0 {
			fmt.Fprintf(os.Stderr, "mp5fuzz: case %d/%d, %d failures\n", i, *cases, failures)
		}
		for _, f := range fails {
			failures++
			rec := artifact{Type: "failure", Engine: f.Engine, Arch: f.Arch.String(), Executor: f.Executor, Case: c, Failure: f}
			if f.Reason != "compile" && *shrinkBudget > 0 {
				if min, mf := fuzz.ShrinkFailure(c, f, *shrinkBudget); mf != nil {
					rec.Case, rec.Failure, rec.Minimized = min, mf, true
				}
			}
			// Pin the program so the artifact replays without the
			// generator.
			if rec.Case.Source == "" {
				pinned := *rec.Case
				pinned.Source = pinned.SourceText()
				rec.Case = &pinned
			}
			fmt.Fprintf(os.Stderr, "mp5fuzz: case %d FAILED:\n%v\n", i, rec.Failure)
			if sink != nil {
				if err := sink.Encode(rec); err != nil {
					fatal(err)
				}
			}
		}
	}
	fmt.Printf("mp5fuzz: %d cases, %d failures\n", *cases, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// reproduce replays every artifact in path and reports whether each still
// fails; exit status 1 if any does (the bug is still live), 0 if all pass.
// A non-empty engine restricts each replay to that engine family (e.g.
// -engine=screp re-checks only the replication legs of each artifact).
func reproduce(path string, fallback []core.Arch, engine string) int {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line, live, total := 0, 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec artifact
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			fatal(fmt.Errorf("%s:%d: %v", path, line, err))
		}
		if rec.Case == nil {
			continue
		}
		archs := fallback
		if a, ok := archNames[rec.Arch]; ok {
			archs = []core.Arch{a}
		}
		total++
		fails := fuzz.RunEngines(rec.Case, archs, engine)
		if len(fails) > 0 {
			live++
			fmt.Printf("artifact %d: still failing\n%v\n", total, fails[0])
		} else {
			fmt.Printf("artifact %d: passes now\n", total)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("mp5fuzz: %d artifacts replayed, %d still failing\n", total, live)
	if live > 0 {
		return 1
	}
	return 0
}

// pick returns the flag value when set, else the varying default.
func pick(flagVal, varying int) int {
	if flagVal > 0 {
		return flagVal
	}
	return varying
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp5fuzz:", err)
	os.Exit(1)
}
