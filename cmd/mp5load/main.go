// Command mp5load is the wire-level load generator for mp5d: it builds the
// same seeded arrival traces the offline tools use (so the daemon's program
// sees the exact field shapes it expects), pushes them over TCP (closed
// loop, egress-acked, lossless) or UDP (open loop, paced or full blast),
// and reports the achieved rate and round-trip latency quantiles.
//
// Examples:
//
//	mp5load -tcp 127.0.0.1:9590 -synthetic 4 -regsize 512 -packets 50000
//	mp5load -udp 127.0.0.1:9590 -synthetic 4 -rate 200000 -pattern skewed
//	mp5load -tcp 127.0.0.1:9590 -app sequencer -window 512
//
// On TCP any unacked packet is loss in lossless mode: mp5load prints the
// shortfall and exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"

	"mp5/internal/apps"
	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/ir"
	"mp5/internal/server"
	"mp5/internal/workload"
)

func main() {
	tcpAddr := flag.String("tcp", "", "daemon TCP address (closed loop, acked)")
	udpAddr := flag.String("udp", "", "daemon UDP address (open loop, ackless)")
	app := flag.String("app", "", "built-in application: flowlet, conga, wfq, sequencer")
	programPath := flag.String("program", "", "Domino program file (drives it with random fields)")
	synthetic := flag.Int("synthetic", 0, "synthetic program with this many stateful stages")
	regSize := flag.Int("regsize", 512, "register array size for -synthetic")
	packets := flag.Int("packets", 20000, "trace length")
	k := flag.Int("k", core.DefaultPipelines, "pipeline count the trace is shaped for")
	seed := flag.Int64("seed", 1, "workload seed")
	pattern := flag.String("pattern", "uniform", "access pattern for -synthetic: uniform or skewed")
	rate := flag.Float64("rate", 0, "target send rate in packets/sec (0 = as fast as the transport admits)")
	window := flag.Int("window", 256, "closed-loop window: max unacked packets on TCP")
	tenantID := flag.Int("tenant", 0, "tenant wire id stamped on every frame (0 = the daemon's first tenant)")
	flag.Parse()

	if *tenantID < 0 || *tenantID > 0xFFFF {
		fmt.Fprintln(os.Stderr, "mp5load: -tenant must be a uint16 wire id")
		os.Exit(2)
	}

	if (*tcpAddr == "") == (*udpAddr == "") {
		fmt.Fprintln(os.Stderr, "usage: mp5load (-tcp ADDR | -udp ADDR) (-app NAME | -synthetic N | -program FILE) [flags]")
		os.Exit(2)
	}
	network, addr := "tcp", *tcpAddr
	if *udpAddr != "" {
		network, addr = "udp", *udpAddr
	}

	prog, trace := buildTrace(*app, *synthetic, *regSize, *programPath, *packets, *k, *seed, *pattern)
	fmt.Printf("mp5load: %s → %s %s (%d packets, seed %d, tenant %d)\n", prog.Name, network, addr, len(trace), *seed, *tenantID)

	c, err := server.Dial(network, addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	rep, runErr := c.Run(trace, server.LoadOptions{Tenant: uint16(*tenantID), Window: *window, RatePPS: *rate})

	fmt.Printf("sent               %d packets in %.2f ms\n", rep.Sent, float64(rep.Elapsed.Microseconds())/1000)
	if network == "tcp" {
		fmt.Printf("acked              %d packets (%d lost)\n", rep.Acked, rep.Sent-rep.Acked)
	}
	fmt.Printf("throughput         %.0f packets/sec\n", rep.PktsPerSec)
	if rep.Latency != nil && rep.Latency.Total() > 0 {
		fmt.Printf("rtt                p50 %.0f µs, p99 %.0f µs\n",
			rep.Latency.Quantile(0.5), rep.Latency.Quantile(0.99))
	}
	if runErr != nil {
		fatal(runErr)
	}
}

// buildTrace mirrors mp5sim's program/trace selection so the generated
// packets carry exactly the fields the daemon's program declares.
func buildTrace(app string, synthetic, regSize int, programPath string, packets, k int, seed int64, pattern string) (*ir.Program, []core.Arrival) {
	switch {
	case app != "":
		a, err := apps.ByName(app)
		if err != nil {
			fatal(err)
		}
		prog := a.MustCompile(compiler.TargetMP5)
		return prog, workload.Flows(prog, workload.FlowSpec{
			Packets: packets, Pipelines: k, Seed: seed,
		}, a.Bind)
	case synthetic > 0:
		prog, err := apps.Synthetic(synthetic, regSize, compiler.DefaultMaxStages)
		if err != nil {
			fatal(err)
		}
		pat := workload.Uniform
		if pattern == "skewed" {
			pat = workload.Skewed
		}
		return prog, workload.Synthetic(prog, workload.Spec{
			Packets: packets, Pipelines: k, Pattern: pat, Seed: seed,
		}, synthetic, regSize)
	case programPath != "":
		data, err := os.ReadFile(programPath)
		if err != nil {
			fatal(err)
		}
		prog, err := compiler.Compile(string(data), compiler.Options{Target: compiler.TargetMP5})
		if err != nil {
			fatal(err)
		}
		return prog, workload.RandomFields(prog, workload.Spec{
			Packets: packets, Pipelines: k, Seed: seed,
		})
	}
	fmt.Fprintln(os.Stderr, "usage: mp5load (-tcp ADDR | -udp ADDR) (-app NAME | -synthetic N | -program FILE) [flags]")
	os.Exit(2)
	return nil, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp5load:", err)
	os.Exit(1)
}
