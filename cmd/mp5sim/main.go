// Command mp5sim runs one simulation of a packet-processing program on a
// chosen switch architecture and prints the throughput, queueing, ordering
// and equivalence results.
//
// Examples:
//
//	mp5sim -app sequencer -arch mp5 -k 4 -packets 50000
//	mp5sim -synthetic 4 -regsize 512 -pattern skewed -arch recirculation
//	mp5sim -program prog.domino -arch mp5 -k 8 -verify
//	mp5sim -app sequencer -engine dataplane -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"

	"mp5/internal/apps"
	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/equiv"
	"mp5/internal/ir"
	"mp5/internal/screp"
	"mp5/internal/telemetry"
	"mp5/internal/viz"
	"mp5/internal/workload"
)

var archNames = map[string]core.Arch{
	"mp5":           core.ArchMP5,
	"mp5-nod4":      core.ArchMP5NoD4,
	"ideal":         core.ArchIdeal,
	"naive":         core.ArchNaive,
	"static-shard":  core.ArchStaticShard,
	"recirculation": core.ArchRecirc,
	"recirc":        core.ArchRecirc,
}

func main() {
	app := flag.String("app", "", "built-in application: flowlet, conga, wfq, sequencer")
	programPath := flag.String("program", "", "Domino program file (uses a synthetic uniform workload over its fields)")
	synthetic := flag.Int("synthetic", 0, "use the synthetic program with this many stateful stages")
	regSize := flag.Int("regsize", 512, "register array size for -synthetic")
	pattern := flag.String("pattern", "uniform", "access pattern for -synthetic: uniform or skewed")
	pktSize := flag.Int("pktsize", 64, "packet size in bytes for -synthetic")
	archName := flag.String("arch", "mp5", "architecture: mp5, mp5-nod4, ideal, naive, static-shard, recirculation")
	k := flag.Int("k", core.DefaultPipelines, "number of pipelines")
	packets := flag.Int("packets", 20000, "trace length")
	seed := flag.Int64("seed", 1, "workload and sharding seed")
	verify := flag.Bool("verify", true, "check functional equivalence against the single-pipeline reference")
	traceN := flag.Int("trace", 0, "print the first N simulator events (admissions, executions, steering, queueing, egress)")
	timelineN := flag.Int("timeline", 0, "render a pipeline-occupancy grid for the first N cycles")
	crossLat := flag.Int64("crosslat", 0, "inter-pipeline link latency in cycles (chiplet exploration)")
	traceJSONL := flag.String("trace-jsonl", "", "write the event stream, per-interval samples, and the run summary as JSONL to this file")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus-text metrics snapshot to this file at the end of the run")
	sampleInterval := flag.Int64("sample-interval", 0, "time-series sampling interval in cycles (0 disables; defaults to 1000 when -trace-jsonl or -metrics-out is set)")
	topIndices := flag.Int("top-indices", 0, "print the N hottest register indices (by resolution count) after the run")
	fullSweep := flag.Bool("full-sweep", false, "use the legacy per-cycle scheduler instead of the event-driven one (debugging aid; observable behaviour is identical, sparse traces run slower)")
	engineName := flag.String("engine", "sim", "execution engine: sim (cycle-accurate simulator), dataplane (concurrent sharded engine), or screp (state-compute replication; both concurrent engines ignore -arch and the event-stream flags)")
	workers := flag.Int("workers", 0, "worker count for -engine=dataplane or -engine=screp (0 = GOMAXPROCS)")
	flag.Parse()

	if *engineName != "sim" && *engineName != "dataplane" && *engineName != "screp" {
		fatal(fmt.Errorf("unknown engine %q (want sim, dataplane or screp)", *engineName))
	}
	arch, ok := archNames[*archName]
	if !ok {
		fatal(fmt.Errorf("unknown architecture %q", *archName))
	}

	var prog *ir.Program
	var trace []core.Arrival
	switch {
	case *app != "":
		a, err := apps.ByName(*app)
		if err != nil {
			fatal(err)
		}
		prog = a.MustCompile(compiler.TargetMP5)
		trace = workload.Flows(prog, workload.FlowSpec{
			Packets: *packets, Pipelines: *k, Seed: *seed,
		}, a.Bind)
	case *synthetic > 0:
		var err error
		prog, err = apps.Synthetic(*synthetic, *regSize, compiler.DefaultMaxStages)
		if err != nil {
			fatal(err)
		}
		pat := workload.Uniform
		if *pattern == "skewed" {
			pat = workload.Skewed
		}
		trace = workload.Synthetic(prog, workload.Spec{
			Packets: *packets, Pipelines: *k, Pattern: pat,
			PacketSize: *pktSize, Seed: *seed,
		}, *synthetic, *regSize)
	case *programPath != "":
		data, err := os.ReadFile(*programPath)
		if err != nil {
			fatal(err)
		}
		prog, err = compiler.Compile(string(data), compiler.Options{Target: compiler.TargetMP5})
		if err != nil {
			fatal(err)
		}
		trace = randomFieldTrace(prog, *packets, *k, *seed)
	default:
		fmt.Fprintln(os.Stderr, "usage: mp5sim (-app NAME | -synthetic N | -program FILE) [flags]")
		os.Exit(2)
	}

	if *engineName == "dataplane" {
		os.Exit(runDataplane(prog, trace, *workers, *verify, *metricsOut))
	}
	if *engineName == "screp" {
		os.Exit(runScrep(prog, trace, *workers, *verify, *metricsOut))
	}

	cfg := core.Config{
		Arch: arch, Pipelines: *k, Seed: *seed,
		CrossLatency:  *crossLat,
		RecordOutputs: *verify, RecordAccessOrder: true,
	}
	var hooks []func(core.Event)
	if *traceN > 0 {
		remaining := *traceN
		hooks = append(hooks, func(e core.Event) {
			if remaining > 0 {
				fmt.Println(e)
				remaining--
			}
		})
	}
	var timeline *viz.Timeline
	if *timelineN > 0 {
		timeline = viz.NewTimeline(prog.NumStages(), *k, 0, *timelineN)
		hooks = append(hooks, timeline.Hook())
	}

	// Telemetry: JSONL event/sample/span stream, metrics registry, and
	// the span builder are all pure Trace consumers.
	if *sampleInterval < 0 {
		fatal(fmt.Errorf("-sample-interval must be non-negative, got %d", *sampleInterval))
	}
	telemetryOn := *traceJSONL != "" || *metricsOut != "" || *sampleInterval > 0
	interval := *sampleInterval
	if telemetryOn && interval == 0 {
		interval = 1000
	}
	var (
		jsonl   *telemetry.JSONL
		jsonlF  *os.File
		reg     *telemetry.Registry
		metrics *telemetry.SimMetrics
		sampler *telemetry.Sampler
		spans   *telemetry.SpanBuilder
	)
	if telemetryOn {
		reg = telemetry.NewRegistry()
		metrics = telemetry.NewSimMetrics(reg)
		hooks = append(hooks, metrics.Hook())
		if *traceJSONL != "" {
			f, err := os.Create(*traceJSONL)
			if err != nil {
				fatal(err)
			}
			jsonlF = f
			jsonl = telemetry.NewJSONL(f)
			hooks = append(hooks, jsonl.EventHook())
			sampler = telemetry.NewSampler(interval, *k, jsonl.SampleSink())
		} else {
			sampler = telemetry.NewSampler(interval, *k, nil)
		}
		spans = telemetry.NewSpanBuilder(nil)
		hooks = append(hooks, sampler.Hook(), spans.Hook())
	}
	if len(hooks) > 0 {
		cfg.Trace = viz.Tee(hooks...)
	}
	sim := core.NewSimulator(prog, cfg)
	sim.SetFullSweep(*fullSweep)
	res := sim.Run(trace)
	if timeline != nil {
		fmt.Print(timeline.Render())
	}

	fmt.Printf("program            %s (%d stages, %d resolution, %d registers)\n",
		prog.Name, prog.NumStages(), prog.ResolutionStages, len(prog.Regs))
	fmt.Printf("architecture       %v, %d pipelines\n", arch, *k)
	fmt.Printf("packets            %d injected, %d completed, %d dropped\n",
		res.Injected, res.Completed,
		res.Injected-res.Completed)
	fmt.Printf("throughput         %.3f of offered rate\n", res.Throughput)
	fmt.Printf("cycles             %d (arrivals span %d)\n", res.Cycles, res.LastArrival-res.FirstArrival+1)
	fmt.Printf("max queue depth    %d (ingress %d)\n", res.MaxFIFODepth, res.MaxIngressDepth)
	fmt.Printf("shard moves        %d\n", res.ShardMoves)
	fmt.Printf("recirculations     %d (%.2f per packet)\n", res.Recirculations,
		float64(res.Recirculations)/float64(max64(res.Injected, 1)))
	fmt.Printf("C1 violations      %d packets (%.2f%%)\n", res.C1Violating, 100*res.ViolationFraction)
	fmt.Printf("reordered egress   %d packets\n", res.Reordered)

	if telemetryOn {
		sampler.Close()
		summary := spans.Summary()
		spans.FillHistogram(metrics.Latency)
		fmt.Printf("latency            mean %.1f, p50 %d, p99 %d, max %d cycles\n",
			summary.Mean, summary.P50, summary.P99, summary.Max)
		fmt.Printf("latency breakdown  queue wait %.1f + service %.1f cycles (mean)\n",
			summary.MeanQueueWait, summary.MeanService)
		if bad := metrics.Reconcile(res); len(bad) > 0 {
			fmt.Fprintln(os.Stderr, "mp5sim: telemetry/result reconciliation failed:")
			for _, m := range bad {
				fmt.Fprintln(os.Stderr, "  "+m)
			}
			os.Exit(1)
		}
		if jsonl != nil {
			jsonl.Object(struct {
				Type    string                   `json:"type"`
				Result  *core.Result             `json:"result"`
				Latency telemetry.LatencySummary `json:"latency"`
			}{"run", res, summary})
			if err := jsonl.Flush(); err != nil {
				fatal(err)
			}
			if err := jsonlF.Close(); err != nil {
				fatal(err)
			}
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatal(err)
			}
			if err := reg.WriteProm(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	if *topIndices > 0 {
		hot := sim.Shard().TopIndices(*topIndices)
		fmt.Printf("top %d hot indices (by resolutions):\n", len(hot))
		for rank, h := range hot {
			idx := fmt.Sprint(h.Idx)
			if h.Idx < 0 {
				idx = "*" // unsharded: whole array
			}
			fmt.Printf("  %2d. r%d[%s]  %d accesses  (pipe %d)\n",
				rank+1, h.Reg, idx, h.Count, h.Pipe)
		}
	}

	if res.Stalled {
		// A stalled run exceeded its cycle budget with packets still in
		// flight; print the loss breakdown so scripts can diagnose it.
		fmt.Fprintf(os.Stderr, "mp5sim: run stalled after %d cycles (%d of %d packets completed)\n",
			res.Cycles, res.Completed, res.Injected)
		fmt.Fprintf(os.Stderr, "  drops: data=%d insert=%d ingress=%d starved=%d phantom=%d (in flight: %d)\n",
			res.DroppedData, res.DroppedInsert, res.DroppedIngress, res.DroppedStarved,
			res.DroppedPhantom, res.Injected-res.Completed-res.PacketDrops())
		os.Exit(3)
	}

	if *verify {
		if res.Completed != res.Injected {
			fmt.Println("equivalence        skipped (packet loss; see Sec 3.5.1)")
			return
		}
		rep := equiv.Check(prog, sim, trace)
		if rep.Equivalent {
			fmt.Printf("equivalence        OK (%d packets, all registers)\n", rep.PacketsCompared)
		} else {
			fmt.Printf("equivalence        FAILED: %d mismatches, e.g. %v\n",
				len(rep.Mismatches), rep.Mismatches[0])
			os.Exit(1)
		}
	}
}

// runDataplane executes the trace on the concurrent goroutine engine instead
// of the cycle-accurate simulator and prints the analogous summary. Verify
// checks both state/output equivalence and the per-slot C1 access order
// against the single-pipeline reference. Returns the process exit code.
func runDataplane(prog *ir.Program, trace []core.Arrival, workers int, verify bool, metricsOut string) int {
	cfg := dataplane.Config{
		Workers:           workers,
		RecordOutputs:     verify,
		RecordAccessOrder: verify,
		RecordEgressOrder: true,
	}
	var reg *telemetry.Registry
	if metricsOut != "" {
		reg = telemetry.NewRegistry()
		cfg.Metrics = dataplane.NewMetrics(reg)
	}
	eng := dataplane.New(prog, cfg)
	res := eng.Run(trace)

	fmt.Printf("program            %s (%d stages, %d resolution, %d registers)\n",
		prog.Name, prog.NumStages(), prog.ResolutionStages, len(prog.Regs))
	fmt.Printf("engine             dataplane, %d workers (GOMAXPROCS %d)\n",
		res.Workers, runtime.GOMAXPROCS(0))
	fmt.Printf("packets            %d injected, %d completed\n", res.Injected, res.Completed)
	fmt.Printf("throughput         %.0f packets/sec (%.2f ms elapsed)\n",
		res.PktsPerSec, float64(res.Elapsed.Microseconds())/1000)
	fmt.Printf("crossbar           %d steers, %d parks, %d wasted visits\n",
		res.Steers, res.Parks, res.Wasted)
	fmt.Printf("shard moves        %d\n", res.ShardMoves)
	fmt.Printf("reordered egress   %d packets\n", res.Reordered)
	if res.Latency != nil && res.Latency.Total() > 0 {
		fmt.Printf("latency            p50 %.0f µs, p99 %.0f µs\n",
			res.Latency.Quantile(0.5), res.Latency.Quantile(0.99))
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := reg.WriteProm(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if res.Stalled {
		fmt.Fprintf(os.Stderr, "mp5sim: dataplane stalled (%d of %d packets completed)\n",
			res.Completed, res.Injected)
		return 3
	}
	if verify {
		if res.Completed != res.Injected {
			fmt.Println("equivalence        skipped (packet loss)")
			return 0
		}
		rep := equiv.CheckState(prog, eng.FinalRegs(), eng.Outputs(), trace)
		if !rep.Equivalent {
			fmt.Printf("equivalence        FAILED: %d mismatches, e.g. %v\n",
				len(rep.Mismatches), rep.Mismatches[0])
			return 1
		}
		if !reflect.DeepEqual(equiv.ReferenceOrder(prog, trace), eng.AccessOrders()) {
			fmt.Println("equivalence        FAILED: C1 access order diverges from the reference")
			return 1
		}
		fmt.Printf("equivalence        OK (%d packets, all registers, C1 order)\n", rep.PacketsCompared)
	}
	return 0
}

// runScrep executes the trace on the state-compute-replication engine and
// prints the analogous summary; in place of the sharded engine's crossbar
// columns it reports the replication overhead (published deltas, replayed
// writes). Verify holds it to the same state/output and C1-order oracles.
func runScrep(prog *ir.Program, trace []core.Arrival, workers int, verify bool, metricsOut string) int {
	cfg := screp.Config{
		Workers:           workers,
		RecordOutputs:     verify,
		RecordAccessOrder: verify,
		RecordEgressOrder: true,
	}
	var reg *telemetry.Registry
	if metricsOut != "" {
		reg = telemetry.NewRegistry()
		cfg.Metrics = screp.NewMetrics(reg)
	}
	eng := screp.New(prog, cfg)
	res := eng.Run(trace)

	fmt.Printf("program            %s (%d stages, %d resolution, %d registers)\n",
		prog.Name, prog.NumStages(), prog.ResolutionStages, len(prog.Regs))
	fmt.Printf("engine             screp (state-compute replication), %d replicas (GOMAXPROCS %d)\n",
		res.Workers, runtime.GOMAXPROCS(0))
	fmt.Printf("packets            %d injected, %d completed\n", res.Injected, res.Completed)
	fmt.Printf("throughput         %.0f packets/sec (%.2f ms elapsed)\n",
		res.PktsPerSec, float64(res.Elapsed.Microseconds())/1000)
	fmt.Printf("replication        %d deltas published, %d writes replayed (%.2f per packet)\n",
		res.DeltasPublished, res.WritesReplayed,
		float64(res.WritesReplayed)/float64(max64(res.Injected, 1)))
	fmt.Printf("reordered egress   %d packets\n", res.Reordered)
	if res.Latency != nil && res.Latency.Total() > 0 {
		fmt.Printf("latency            p50 %.0f µs, p99 %.0f µs\n",
			res.Latency.Quantile(0.5), res.Latency.Quantile(0.99))
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := reg.WriteProm(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if res.Stalled {
		fmt.Fprintf(os.Stderr, "mp5sim: screp stalled (%d of %d packets completed)\n",
			res.Completed, res.Injected)
		return 3
	}
	if verify {
		if res.Completed != res.Injected {
			fmt.Println("equivalence        skipped (packet loss)")
			return 0
		}
		rep := equiv.CheckState(prog, eng.FinalRegs(), eng.Outputs(), trace)
		if !rep.Equivalent {
			fmt.Printf("equivalence        FAILED: %d mismatches, e.g. %v\n",
				len(rep.Mismatches), rep.Mismatches[0])
			return 1
		}
		if !reflect.DeepEqual(equiv.ReferenceOrder(prog, trace), eng.AccessOrders()) {
			fmt.Println("equivalence        FAILED: C1 access order diverges from the reference")
			return 1
		}
		fmt.Printf("equivalence        OK (%d packets, all registers, C1 order)\n", rep.PacketsCompared)
	}
	return 0
}

// randomFieldTrace drives an arbitrary user program with uniformly random
// header fields at line rate.
func randomFieldTrace(prog *ir.Program, packets, k int, seed int64) []core.Arrival {
	spec := workload.Spec{Packets: packets, Pipelines: k, Seed: seed}
	return workload.RandomFields(prog, spec)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp5sim:", err)
	os.Exit(1)
}
