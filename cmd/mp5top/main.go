// Command mp5top is a live terminal dashboard for a running mp5d: it polls
// the admin plane's /stats snapshot and renders throughput, queue depths,
// per-worker utilization, and the sampled wire-span stage latencies —
// "top" for the daemon's dataplane.
//
// Examples:
//
//	mp5top                             # watch 127.0.0.1:9591 at 1s
//	mp5top -admin 127.0.0.1:9591 -interval 500ms
//	mp5top -once                       # one plain snapshot (script-friendly)
//
// The refresh loop redraws in place with ANSI escapes; -once prints a
// single frame without any and exits, which is what the smoke scripts use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mp5/internal/dataplane"
	"mp5/internal/server"
)

func main() {
	admin := flag.String("admin", "127.0.0.1:9591", "mp5d admin-plane address to poll")
	interval := flag.Duration("interval", time.Second, "poll/redraw period")
	once := flag.Bool("once", false, "print one snapshot without screen control and exit")
	flag.Parse()

	url := "http://" + *admin + "/stats"
	if *once {
		st, err := poll(url)
		if err != nil {
			fatal(err)
		}
		os.Stdout.WriteString(render(st, nil))
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	var prev *server.StatsSnapshot
	// ANSI: clear screen once, then home-cursor + clear-to-end per frame so
	// the display updates without scrolling.
	fmt.Print("\x1b[2J")
	for {
		st, err := poll(url)
		frame := ""
		if err != nil {
			frame = fmt.Sprintf("mp5top: %s unreachable: %v\n", *admin, err)
		} else {
			frame = render(st, prev)
			prev = st
		}
		fmt.Print("\x1b[H\x1b[0J" + frame)
		select {
		case <-sig:
			fmt.Println()
			return
		case <-tick.C:
		}
	}
}

func poll(url string) (*server.StatsSnapshot, error) {
	c := http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /stats: %s", resp.Status)
	}
	var st server.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// render draws one frame. prev (the previous snapshot) feeds the deltas the
// server cannot compute for us — per-worker busy fraction over the poll
// interval; nil prev (first frame, -once) falls back to lifetime averages.
func render(st, prev *server.StatsSnapshot) string {
	var b strings.Builder
	status := strings.ToUpper(st.Status)
	fmt.Fprintf(&b, "mp5d %s  program=%s  workers=%d  up %s  [%s]\n\n",
		time.Unix(0, st.NowUnixNs).Format("15:04:05"), st.Program, st.Workers,
		fmtDur(st.UptimeSec), status)

	fmt.Fprintf(&b, "rates   rx %9.0f pps   ack %9.0f pps   egress %9.0f pps\n",
		st.RxPPS, st.AckPPS, st.EgressPPS)
	fmt.Fprintf(&b, "totals  rx tcp %d  udp %d   acks %d   drops %d   decode errs %d   aborts %d\n",
		st.RxTCP, st.RxUDP, st.Acks, st.IngressDropped, st.DecodeErrors, st.SubmitAborts)
	fmt.Fprintf(&b, "engine  submitted %d   completed %d   in-flight %d   steers %d   parks %d   moves %d\n\n",
		st.Submitted, st.Completed, st.InFlight, st.Steers, st.Parks, st.ShardMoves)

	fmt.Fprintf(&b, "queues  ingress %s   window %s   tickets pending %d (deepest slot %d)\n\n",
		bar(st.Ingress.Depth, st.Ingress.Cap), bar(st.Window.Depth, st.Window.Cap),
		st.TicketsPending, st.TicketsMax)

	fmt.Fprintf(&b, "%-8s %-14s %8s %10s %10s %6s\n",
		"worker", "mailbox", "parked", "processed", "egressed", "busy")
	for i, w := range st.WorkerStats {
		busy := lifetimeBusy(w, st.UptimeSec)
		if prev != nil && i < len(prev.WorkerStats) {
			dt := float64(st.NowUnixNs-prev.NowUnixNs) / 1e9
			if dt > 0 {
				busy = float64(w.BusyNs-prev.WorkerStats[i].BusyNs) / 1e9 / dt
			}
		}
		fmt.Fprintf(&b, "%-8d %-14s %8d %10d %10d %5.1f%%\n",
			w.ID, bar(w.Mailbox, w.MailboxCap), w.Parked, w.Processed, w.Egressed, 100*busy)
	}

	// Replication section: present only when the daemon fronts a
	// state-compute-replication engine (the sharded daemon never emits it).
	if len(st.Replication) > 0 {
		fmt.Fprintf(&b, "\n%-8s %10s %10s %8s %12s\n",
			"replica", "executed", "applied", "lag", "replay wait")
		for _, rs := range st.Replication {
			fmt.Fprintf(&b, "%-8d %10d %10d %8d %12s\n",
				rs.ID, rs.Executed, rs.Applied, rs.Lag,
				time.Duration(rs.ReplayWaitNs).Round(time.Microsecond))
		}
	}

	if len(st.Stages) > 0 {
		fmt.Fprintf(&b, "\nwire spans (sampled %d, dropped %d)\n", st.TraceSampled, st.TraceDropped)
		fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s\n", "stage", "count", "p50 µs", "p90 µs", "p99 µs")
		for _, sg := range st.Stages {
			fmt.Fprintf(&b, "%-14s %10d %10.1f %10.1f %10.1f\n",
				sg.Stage, sg.Count, sg.P50us, sg.P90us, sg.P99us)
		}
	}
	return b.String()
}

// lifetimeBusy is the -once/first-frame fallback utilization: cumulative
// busy time over uptime.
func lifetimeBusy(w dataplane.WorkerStat, uptimeSec float64) float64 {
	if uptimeSec <= 0 {
		return 0
	}
	return float64(w.BusyNs) / 1e9 / uptimeSec
}

// bar renders a depth/cap occupancy as "[##....] d/c".
func bar(depth, capacity int) string {
	const width = 6
	fill := 0
	if capacity > 0 {
		fill = depth * width / capacity
		if depth > 0 && fill == 0 {
			fill = 1
		}
		if fill > width {
			fill = width
		}
	}
	return fmt.Sprintf("[%s%s] %d/%d",
		strings.Repeat("#", fill), strings.Repeat(".", width-fill), depth, capacity)
}

func fmtDur(sec float64) string {
	d := time.Duration(sec * float64(time.Second)).Round(time.Second)
	return d.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp5top:", err)
	os.Exit(1)
}
