// Command mp5trace validates and summarizes a wire-span JSONL stream (the
// -trace-jsonl output of mp5d): every span's per-stage durations must sum
// to its recorded total within a small slack, segments must be
// non-negative, and the lifecycle must be complete. It prints per-stage
// aggregates and exits nonzero on any violation — the machine half of the
// tracing smoke test.
//
// Usage:
//
//	mp5trace spans.jsonl
//	mp5d ... -trace-jsonl /dev/stdout | mp5trace -
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mp5/internal/dataplane"
)

func main() {
	slackUs := flag.Int64("slack-us", 1000, "allowed gap between a span's stage sum and its total, µs")
	minSpans := flag.Int("min-spans", 1, "fail unless at least this many spans are present")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mp5trace [flags] SPANS.jsonl  (- for stdin)")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	var (
		spans   int
		byStage = map[string][]int64{}
		totals  []int64
		bad     int
		sc      = bufio.NewScanner(in)
	)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var sp dataplane.Span
		if err := json.Unmarshal(raw, &sp); err != nil {
			fmt.Fprintf(os.Stderr, "mp5trace: line %d: %v\n", line, err)
			bad++
			continue
		}
		if sp.Type != "wire_span" {
			continue // foreign record in a mixed stream
		}
		spans++
		var sum int64
		for _, r := range sp.Stages {
			if r.Ns < 0 {
				fmt.Fprintf(os.Stderr, "mp5trace: pkt %d: negative %s segment %dns\n", sp.ID, r.Stage, r.Ns)
				bad++
			}
			sum += r.Ns
			byStage[r.Stage] = append(byStage[r.Stage], r.Ns)
		}
		if gap := sp.TotalNs - sum; gap < 0 || gap > *slackUs*1000 {
			fmt.Fprintf(os.Stderr, "mp5trace: pkt %d: stage sum %dns vs total %dns (gap %dns)\n",
				sp.ID, sum, sp.TotalNs, sp.TotalNs-sum)
			bad++
		}
		totals = append(totals, sp.TotalNs)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	fmt.Printf("mp5trace: %d spans\n", spans)
	stages := make([]string, 0, len(byStage))
	for st := range byStage {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	for _, st := range stages {
		p50, p99 := quantiles(byStage[st])
		fmt.Printf("  %-14s %8d segments  p50 %8.1fµs  p99 %8.1fµs\n",
			st, len(byStage[st]), float64(p50)/1e3, float64(p99)/1e3)
	}
	if len(totals) > 0 {
		p50, p99 := quantiles(totals)
		fmt.Printf("  %-14s %8d spans     p50 %8.1fµs  p99 %8.1fµs\n",
			"total", len(totals), float64(p50)/1e3, float64(p99)/1e3)
	}
	if spans < *minSpans {
		fmt.Fprintf(os.Stderr, "mp5trace: only %d spans (want >= %d)\n", spans, *minSpans)
		os.Exit(1)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "mp5trace: %d violations\n", bad)
		os.Exit(1)
	}
}

func quantiles(xs []int64) (p50, p99 int64) {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2], s[len(s)*99/100]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp5trace:", err)
	os.Exit(1)
}
