package mp5_test

import (
	"fmt"

	"mp5"
)

// ExampleCompile compiles a tiny stateful program for the MP5 target and
// inspects the compiler's decisions.
func ExampleCompile() {
	src := `
struct Packet { int flow; int seq; };
int counter [64] = {0};
void seqr (struct Packet p) {
    counter[p.flow % 64] = counter[p.flow % 64] + 1;
    p.seq = counter[p.flow % 64];
}`
	prog, err := mp5.Compile(src, mp5.CompileOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("stages:", prog.NumStages())
	fmt.Println("resolution stages:", prog.ResolutionStages)
	fmt.Println("counter sharded:", prog.Regs[0].Sharded)
	// Output:
	// stages: 4
	// resolution stages: 2
	// counter sharded: true
}

// ExampleNewSimulator runs a compiled program on a 4-pipeline MP5 switch
// and verifies functional equivalence against the single-pipeline
// reference.
func ExampleNewSimulator() {
	src := `
struct Packet { int flow; int seq; };
int counter [64] = {0};
void seqr (struct Packet p) {
    counter[p.flow % 64] = counter[p.flow % 64] + 1;
    p.seq = counter[p.flow % 64];
}`
	prog, _ := mp5.Compile(src, mp5.CompileOptions{})
	trace := mp5.RandomFieldTrace(prog, mp5.TraceSpec{
		Packets: 2000, Pipelines: 4, Seed: 1,
	})
	sim := mp5.NewSimulator(prog, mp5.Config{
		Arch: mp5.ArchMP5, Pipelines: 4, Seed: 1, RecordOutputs: true,
	})
	res := sim.Run(trace)
	rep := mp5.Check(prog, sim, trace)
	fmt.Println("completed:", res.Completed)
	fmt.Println("violations:", res.C1Violating)
	fmt.Println("equivalent:", rep.Equivalent)
	// Output:
	// completed: 2000
	// violations: 0
	// equivalent: true
}

// ExampleClassifyAtoms reports the Banzai atom each stateful stage of the
// WFQ application requires.
func ExampleClassifyAtoms() {
	app, _ := mp5.AppByName("wfq")
	prog := app.MP5()
	for _, rep := range mp5.ClassifyAtoms(prog) {
		fmt.Println(rep.Kind, rep.Regs)
	}
	// Output:
	// RAW [last_finish]
}

// ExampleProgram_InstallTable routes packets through a control-plane match
// table on the single-pipeline reference.
func ExampleProgram_InstallTable() {
	src := `
struct Packet { int dst; int port; };
table route (1) = 255;
void f (struct Packet p) {
    p.port = route(p.dst);
}`
	prog, _ := mp5.Compile(src, mp5.CompileOptions{})
	_ = prog.InstallTable("route", 7, 42)

	trace := []mp5.Arrival{{Cycle: 0, Port: 0, Size: 64, Fields: []int64{42, 0}}}
	_, outs := mp5.Reference(prog, trace)
	fmt.Println("port:", outs[0][prog.FieldIndex("port")])
	// Output:
	// port: 7
}
