// Flowlet: run flowlet switching (the paper's first §4.4 application) on
// MP5 under a realistic workload — web-search flow sizes, bimodal packet
// sizes — sweeping the pipeline count, and verify both line-rate
// processing and functional equivalence at every point (Figure 8a).
package main

import (
	"fmt"
	"log"

	"mp5"
)

func main() {
	app, err := mp5.AppByName("flowlet")
	if err != nil {
		log.Fatal(err)
	}
	prog := app.MP5()
	fmt.Printf("flowlet: %d stages, %d resolution; stateful predicates: %v\n",
		prog.NumStages(), prog.ResolutionStages, prog.StatefulPredicates)

	fmt.Println("pipelines  throughput  max-queue  shard-moves  equivalent")
	for _, k := range []int{1, 2, 4, 8} {
		trace := mp5.FlowTrace(prog, mp5.FlowTraceSpec{
			Packets:   20000,
			Pipelines: k,
			Seed:      11,
		}, app.Bind)
		sim := mp5.NewSimulator(prog, mp5.Config{
			Arch: mp5.ArchMP5, Pipelines: k, Seed: 11,
			RecordOutputs: true,
		})
		res := sim.Run(trace)
		rep := mp5.Check(prog, sim, trace)
		fmt.Printf("%9d  %10.3f  %9d  %11d  %v\n",
			k, res.Throughput, res.MaxFIFODepth, res.ShardMoves, rep.Equivalent)
		if !rep.Equivalent {
			log.Fatalf("pipeline count %d broke equivalence: %v", k, rep.Mismatches)
		}
	}
	fmt.Println("\nflowlet tables (last_time, saved_hop) are sharded per-index across")
	fmt.Println("pipelines and re-balanced every 100 cycles; realistic packet sizes")
	fmt.Println("leave enough headroom that every pipeline count runs at line rate.")
}
