// Heavyhitter: the motivating example of design principle D2 (§3.1) — a
// per-source counter table under a skewed (heavy-tail) access pattern.
// The example contrasts four designs on the same trace:
//
//   - naive:        all state in one pipeline (the shared-memory strawman)
//   - static-shard: state sharded randomly at compile time, never moved
//   - mp5:          dynamic sharding, re-balanced every 100 cycles
//   - ideal:        no HOL blocking + LPT bin-packing (upper bound)
//
// All four preserve functional equivalence (they all use phantom-packet
// order enforcement or stricter); only their throughput differs.
package main

import (
	"fmt"
	"log"

	"mp5"
)

func main() {
	// One counter table with 512 entries, read-modify-written by every
	// packet — the DDoS/heavy-hitter counting shape from the paper.
	prog, err := mp5.SyntheticProgram(1, 512)
	if err != nil {
		log.Fatal(err)
	}

	trace := mp5.SyntheticTrace(prog, mp5.TraceSpec{
		Packets:   40000,
		Pipelines: 4,
		Pattern:   mp5.Skewed, // 95% of packets hit 30% of counters
		Seed:      3,
	}, 1, 512)

	fmt.Println("architecture  throughput  max-queue  shard-moves  equivalent")
	for _, arch := range []mp5.Arch{mp5.ArchNaive, mp5.ArchStaticShard, mp5.ArchMP5, mp5.ArchIdeal} {
		sim := mp5.NewSimulator(prog, mp5.Config{
			Arch: arch, Pipelines: 4, Seed: 3,
			RecordOutputs: true,
		})
		res := sim.Run(trace)
		rep := mp5.Check(prog, sim, trace)
		fmt.Printf("%-12v  %10.3f  %9d  %11d  %v\n",
			arch, res.Throughput, res.MaxFIFODepth, res.ShardMoves, rep.Equivalent)
		if !rep.Equivalent {
			log.Fatalf("%v broke functional equivalence: %v", arch, rep.Mismatches)
		}
	}
	fmt.Println("\nnaive serializes every packet through pipeline 0 (~1/k line rate);")
	fmt.Println("sharding recovers parallelism, and dynamic re-balancing tracks the")
	fmt.Println("skewed counters that static placement gets wrong.")
}
