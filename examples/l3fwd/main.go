// L3 forwarding: the classic RMT match-action shape on MP5. A
// control-plane routing table maps destinations to next-hop ports; a
// register array counts packets per port. The match lookup is stateless
// and read-only, so MP5 replicates the table in every pipeline and — since
// the counter's index flows through the lookup — the compiler hoists the
// whole match into the address-resolution stages (Figure 5's "Match"
// box), keeping the counters sharded across pipelines.
package main

import (
	"fmt"
	"log"

	"mp5"
)

const src = `
struct Packet { int dst; int port; };

table route (1) = 255;
int portcount [256] = {0};

void l3 (struct Packet p) {
    p.port = route(p.dst);
    portcount[p.port % 256] = portcount[p.port % 256] + 1;
}
`

func main() {
	prog, err := mp5.Compile(src, mp5.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Control plane: install a route for 1024 destinations across 32
	// next-hop ports before the run (the paper's §2.2.1 assumption:
	// identical control-plane state on both switches, configured once).
	for dst := int64(0); dst < 1024; dst++ {
		if err := prog.InstallTable("route", dst%32, dst); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("compiled %q: %d stages (%d resolution); counter sharded: %v; table entries: %d\n",
		prog.Name, prog.NumStages(), prog.ResolutionStages,
		prog.Regs[0].Sharded, len(prog.TableEntries))

	trace := mp5.RandomFieldTrace(prog, mp5.TraceSpec{Packets: 20000, Pipelines: 4, Seed: 5})
	// Constrain destinations so most hit the table; the rest take the
	// miss default (port 255).
	dstF := prog.FieldIndex("dst")
	for i := range trace {
		trace[i].Fields[dstF] = (trace[i].Fields[dstF] * 7) % 1100
	}

	sim := mp5.NewSimulator(prog, mp5.Config{
		Arch: mp5.ArchMP5, Pipelines: 4, Seed: 5, RecordOutputs: true,
	})
	res := sim.Run(trace)
	rep := mp5.Check(prog, sim, trace)
	fmt.Printf("throughput=%.3f  completed=%d/%d  equivalent=%v\n",
		res.Throughput, res.Completed, res.Injected, rep.Equivalent)
	if !rep.Equivalent {
		log.Fatalf("mismatches: %v", rep.Mismatches)
	}

	counters := sim.FinalRegs()[prog.RegIndex("portcount")]
	var hits, misses int64
	for port, n := range counters {
		if port == 255 {
			misses += n
		} else {
			hits += n
		}
	}
	fmt.Printf("routed: %d packets across 32 ports; %d misses on the default port\n", hits, misses)
}
