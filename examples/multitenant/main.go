// Multitenant: footnote 1 of the paper — "MP5 programs a subset m of k
// pipelines with the same program... thus creating multiple independent
// logical MP5, each with varying number of parallel pipelines."
//
// A physical 8-pipeline switch is partitioned into two independent logical
// MP5 switches: the network sequencer on 2 pipelines and flowlet switching
// on 6. Each logical switch is simulated with its own pipeline count and
// its own share of the port space; both must preserve functional
// equivalence independently.
package main

import (
	"fmt"
	"log"

	"mp5"
)

func main() {
	const physicalPipelines = 8
	partitions := []struct {
		app   string
		pipes int
	}{
		{"sequencer", 2},
		{"flowlet", 6},
	}

	total := 0
	for _, part := range partitions {
		total += part.pipes
	}
	if total != physicalPipelines {
		log.Fatal("partition does not cover the switch")
	}

	fmt.Printf("one %d-pipeline switch partitioned into %d logical MP5 instances:\n\n",
		physicalPipelines, len(partitions))
	for _, part := range partitions {
		app, err := mp5.AppByName(part.app)
		if err != nil {
			log.Fatal(err)
		}
		prog := app.MP5()
		// Each logical switch receives the line rate of its pipeline
		// share and its own slice of the port space.
		trace := mp5.FlowTrace(prog, mp5.FlowTraceSpec{
			Packets:   20000,
			Pipelines: part.pipes,
			Ports:     64 * part.pipes / physicalPipelines,
			Seed:      int64(31 + part.pipes),
		}, app.Bind)
		sim := mp5.NewSimulator(prog, mp5.Config{
			Arch:          mp5.ArchMP5,
			Pipelines:     part.pipes,
			Ports:         64 * part.pipes / physicalPipelines,
			Seed:          7,
			RecordOutputs: true,
		})
		res := sim.Run(trace)
		rep := mp5.Check(prog, sim, trace)
		fmt.Printf("  %-9s on %d pipelines: throughput=%.3f  maxq=%d  equivalent=%v\n",
			part.app, part.pipes, res.Throughput, res.MaxFIFODepth, rep.Equivalent)
		if !rep.Equivalent {
			log.Fatalf("%s lost functional equivalence", part.app)
		}
	}
	fmt.Println("\nlogical switches share nothing — no state, no FIFOs, no phantom")
	fmt.Println("channels — so each is exactly an independent MP5 with a smaller k.")
}
