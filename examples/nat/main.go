// NAT: the paper's §3.4 re-ordering scenario and its fix. A stateful
// firewall/NAT processes some packets of each flow statefully (connection
// table updates) while the rest pass through stateless. MP5 prioritizes
// stateless packets over queued stateful ones (Invariant 2), which can
// reorder packets *within a flow* — poison for TCP. The paper's remedy is
// a dummy stateful operation in the final stage, indexed by flow id, so
// phantom ordering forces per-flow in-order egress.
//
// This example measures per-flow reordering with and without the ordering
// stage, and shows functional equivalence holds either way.
package main

import (
	"fmt"
	"log"

	"mp5"
)

// A connection-table shape: 10% of packets (SYN-like) update per-flow
// state; the rest are forwarded statelessly.
const natSrc = `
struct Packet { int flow; int syn; int established; };

int conntrack [256] = {0};

void nat (struct Packet p) {
    if (p.syn == 1) {
        conntrack[p.flow % 256] = conntrack[p.flow % 256] + 1;
    }
    p.established = p.syn;
}
`

func perFlowReorderings(egress []int64, flowOf map[int64]int64) int {
	suffixMin := map[int64]int64{}
	n := 0
	for i := len(egress) - 1; i >= 0; i-- {
		id := egress[i]
		f := flowOf[id]
		if m, ok := suffixMin[f]; ok && id > m {
			n++
		}
		if m, ok := suffixMin[f]; !ok || id < m {
			suffixMin[f] = id
		}
	}
	return n
}

func run(withGuard bool) {
	prog, err := mp5.Compile(natSrc, mp5.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if withGuard {
		if err := mp5.AddOrderingStage(prog, 1024, "flow"); err != nil {
			log.Fatal(err)
		}
	}

	// Build a trace by hand: heavy flows whose SYN-like packets contend
	// on a handful of hot conntrack entries, at line rate for 4 pipes.
	const packets = 30000
	trace := mp5.RandomFieldTrace(prog, mp5.TraceSpec{
		Packets: packets, Pipelines: 4, Seed: 21,
	})
	flowF := prog.FieldIndex("flow")
	synF := prog.FieldIndex("syn")
	flowOf := map[int64]int64{}
	for i := range trace {
		flow := trace[i].Fields[flowF] % 16 // few fat flows → visible ordering
		trace[i].Fields[flowF] = flow
		trace[i].Fields[synF] = 0
		if i%10 == 0 {
			trace[i].Fields[synF] = 1 // every 10th packet is stateful
		}
		flowOf[int64(i)] = flow
	}

	sim := mp5.NewSimulator(prog, mp5.Config{
		Arch: mp5.ArchMP5, Pipelines: 4, Seed: 21, RecordOutputs: true,
	})
	res := sim.Run(trace)
	rep := mp5.Check(prog, sim, trace)

	label := "without ordering stage"
	if withGuard {
		label = "with ordering stage   "
	}
	fmt.Printf("%s  throughput=%.3f  per-flow reorderings=%d  equivalent=%v\n",
		label, res.Throughput, perFlowReorderings(sim.EgressOrder(), flowOf), rep.Equivalent)
	if !rep.Equivalent {
		log.Fatal("functional equivalence must hold in both configurations")
	}
}

func main() {
	fmt.Println("NAT-style mixed stateless/stateful flows on a 4-pipeline MP5 switch:")
	run(false)
	run(true)
	fmt.Println("\nstateless packets overtaking queued stateful neighbours reorder flows;")
	fmt.Println("the dummy final-stage state access (Sec 3.4) restores per-flow order,")
	fmt.Println("because phantoms are always queued in arrival order.")
}
