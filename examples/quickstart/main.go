// Quickstart: compile a tiny stateful Domino program, run it on a
// 4-pipeline MP5 switch at line rate, and verify functional equivalence
// against the logical single-pipeline switch.
package main

import (
	"fmt"
	"log"

	"mp5"
)

// A per-source-IP packet counter — the paper's canonical stateful example
// (heavy-hitter / DDoS-style counting, §3.1).
const src = `
struct Packet {
    int srcip;
    int count;
};

int counters [1024] = {0};

void count (struct Packet p) {
    counters[p.srcip % 1024] = counters[p.srcip % 1024] + 1;
    p.count = counters[p.srcip % 1024];
}
`

func main() {
	prog, err := mp5.Compile(src, mp5.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d stages (%d resolution), register sharded: %v\n",
		prog.Name, prog.NumStages(), prog.ResolutionStages, prog.Regs[0].Sharded)

	// Offer 20k minimum-size packets at line rate for 4 pipelines.
	trace := mp5.RandomFieldTrace(prog, mp5.TraceSpec{
		Packets:   20000,
		Pipelines: 4,
		Seed:      1,
	})

	sim := mp5.NewSimulator(prog, mp5.Config{
		Arch:              mp5.ArchMP5,
		Pipelines:         4,
		Seed:              1,
		RecordOutputs:     true,
		RecordAccessOrder: true,
	})
	res := sim.Run(trace)

	fmt.Printf("throughput: %.3f of line rate; %d/%d packets; max queue %d; %d shard moves\n",
		res.Throughput, res.Completed, res.Injected, res.MaxFIFODepth, res.ShardMoves)
	fmt.Printf("C1 violations: %d (must be 0 on MP5)\n", res.C1Violating)

	// Functional equivalence (§2.2.1): final registers and every packet's
	// final header must match a single pipeline processing the same
	// trace serially.
	rep := mp5.Check(prog, sim, trace)
	if !rep.Equivalent {
		log.Fatalf("not equivalent: %v", rep.Mismatches)
	}
	fmt.Printf("functional equivalence: OK (%d packets compared)\n", rep.PacketsCompared)

	// For contrast: the same trace on a legacy recirculating switch.
	legacy := mp5.NewSimulator(prog, mp5.Config{
		Arch: mp5.ArchRecirc, Pipelines: 4, Seed: 1, RecordAccessOrder: true,
	})
	lres := legacy.Run(trace)
	fmt.Printf("legacy recirculating switch: throughput %.3f, C1 violations %.1f%%\n",
		lres.Throughput, 100*lres.ViolationFraction)
}
