// Sequencer: the paper's running correctness example (§2.3.1, Example 2).
// A network sequencer stamps every packet of an ordered group with a
// monotonically increasing sequence number — exactly the program where
// state-access *order* is visible in packet state, so any C1 violation
// shows up as misnumbered packets.
//
// The example runs the NOPaxos-style sequencer on (a) MP5 and (b) a
// legacy multi-pipeline switch with recirculation, then compares both
// against the single-pipeline reference.
package main

import (
	"fmt"
	"log"

	"mp5"
)

func main() {
	app, err := mp5.AppByName("sequencer")
	if err != nil {
		log.Fatal(err)
	}
	prog := app.MP5()

	trace := mp5.FlowTrace(prog, mp5.FlowTraceSpec{
		Packets:   30000,
		Pipelines: 4,
		Seed:      7,
	}, app.Bind)

	// Ground truth: the logical single-pipeline switch.
	refRegs, refOut := mp5.Reference(prog, trace)

	seqField := prog.FieldIndex("seq")
	for _, arch := range []mp5.Arch{mp5.ArchMP5, mp5.ArchRecirc} {
		sim := mp5.NewSimulator(prog, mp5.Config{
			Arch: arch, Pipelines: 4, Seed: 7,
			RecordOutputs: true, RecordAccessOrder: true,
		})
		res := sim.Run(trace)

		// Count packets whose stamped sequence number differs from
		// the single-pipeline execution.
		misnumbered := 0
		for id, out := range sim.Outputs() {
			if out[seqField] != refOut[id][seqField] {
				misnumbered++
			}
		}
		fmt.Printf("%-14v throughput=%.3f  violations=%.1f%%  misnumbered=%d/%d  drops=%d\n",
			arch, res.Throughput, 100*res.ViolationFraction,
			misnumbered, res.Completed, res.Injected-res.Completed)

		if arch == mp5.ArchMP5 {
			if misnumbered != 0 || res.C1Violating != 0 {
				log.Fatal("MP5 must sequence exactly like a single pipeline")
			}
			// Registers must match too.
			final := sim.FinalRegs()
			for i, want := range refRegs[0] {
				if final[0][i] != want {
					log.Fatalf("counter[%d]: got %d want %d", i, final[0][i], want)
				}
			}
			fmt.Println("               MP5 sequencing is exact: every group counter and every stamp matches")
		}
	}
}
