module mp5

go 1.22
