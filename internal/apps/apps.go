// Package apps provides the stateful packet-processing programs evaluated
// in the paper (§4.4) — flowlet switching, CONGA leaf selection, STFQ rank
// computation for weighted fair queuing, and the NOPaxos-style network
// sequencer — written in this repository's Domino subset, together with
// workload binders that map flow-level traces onto each program's header
// fields, and the synthetic program generator used by the sensitivity
// experiments (§4.3).
package apps

import (
	"fmt"
	"strings"

	"mp5/internal/compiler"
	"mp5/internal/ir"
	"mp5/internal/workload"
)

// App bundles a program with the workload binder that drives it.
type App struct {
	// Name is the application's short name (flowlet, conga, wfq,
	// sequencer).
	Name string
	// Source is the Domino program text.
	Source string
	// Bind fills a packet's header fields from the flow engine.
	Bind workload.Binder
}

// Compile compiles the application for the given target.
func (a *App) Compile(target compiler.Target) (*ir.Program, error) {
	return compiler.Compile(a.Source, compiler.Options{Target: target})
}

// MustCompile compiles and panics on error (the sources are constants).
func (a *App) MustCompile(target compiler.Target) *ir.Program {
	p, err := a.Compile(target)
	if err != nil {
		panic(fmt.Sprintf("apps: %s: %v", a.Name, err))
	}
	return p
}

// MP5 compiles the application for the MP5 multi-pipeline target.
func (a *App) MP5() *ir.Program { return a.MustCompile(compiler.TargetMP5) }

// SinglePipeline compiles the application for a plain Banzai pipeline.
func (a *App) SinglePipeline() *ir.Program { return a.MustCompile(compiler.TargetBanzai) }

// FlowletSource is flowlet switching [Sinha et al., HotNets'04] as
// published in the Domino examples: pick a fresh next hop when the
// inter-packet gap within a flow exceeds the flowlet threshold.
const FlowletSource = `
#define NUM_FLOWLETS 8000
#define THRESHOLD 5
#define NUM_HOPS 10

struct Packet {
    int sport;
    int dport;
    int new_hop;
    int arrival;
    int next_hop;
    int id;
};

int last_time [NUM_FLOWLETS] = {0};
int saved_hop [NUM_FLOWLETS] = {0};

void flowlet (struct Packet pkt) {
    pkt.new_hop = hash3(pkt.sport, pkt.dport, pkt.arrival) % NUM_HOPS;
    pkt.id = hash2(pkt.sport, pkt.dport) % NUM_FLOWLETS;
    if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {
        saved_hop[pkt.id] = pkt.new_hop;
    }
    last_time[pkt.id] = pkt.arrival;
    pkt.next_hop = saved_hop[pkt.id];
}
`

// CongaSource is CONGA's per-destination best-path table [Alizadeh et al.,
// SIGCOMM'14]: remember the least-utilized path towards each destination
// leaf, refreshing the utilization when the current best path reports in.
const CongaSource = `
#define NUM_DSTS 256

struct Packet {
    int dst;
    int util;
    int path_id;
};

int best_path_util [NUM_DSTS] = {100};
int best_path [NUM_DSTS] = {0};

void conga (struct Packet p) {
    if (p.util < best_path_util[p.dst % NUM_DSTS]) {
        best_path_util[p.dst % NUM_DSTS] = p.util;
        best_path[p.dst % NUM_DSTS] = p.path_id;
    } else if (p.path_id == best_path[p.dst % NUM_DSTS]) {
        best_path_util[p.dst % NUM_DSTS] = p.util;
    }
}
`

// WFQSource is the start-time fair queueing rank computation used for
// priority computation in programmable packet scheduling [Sivaraman et
// al., SIGCOMM'16]: rank = max(virtual time, per-flow last finish time).
const WFQSource = `
#define NUM_FLOWS 1024

struct Packet {
    int flow;
    int len;
    int virtual_time;
    int rank;
};

int last_finish [NUM_FLOWS] = {0};

void wfq (struct Packet p) {
    if (last_finish[p.flow % NUM_FLOWS] > p.virtual_time) {
        p.rank = last_finish[p.flow % NUM_FLOWS];
    } else {
        p.rank = p.virtual_time;
    }
    last_finish[p.flow % NUM_FLOWS] = p.rank + p.len;
}
`

// SequencerSource is the network sequencer of NOPaxos [Li et al.,
// OSDI'16]: stamp each packet of an ordered group with a monotonically
// increasing sequence number.
const SequencerSource = `
#define NUM_GROUPS 64

struct Packet {
    int group;
    int seq;
};

int counter [NUM_GROUPS] = {0};

void sequencer (struct Packet p) {
    counter[p.group % NUM_GROUPS] = counter[p.group % NUM_GROUPS] + 1;
    p.seq = counter[p.group % NUM_GROUPS];
}
`

// set assigns a named field, panicking on unknown names (programming error).
func set(prog map[string]int, fields []int64, name string, v int64) {
	i, ok := prog[name]
	if !ok {
		panic("apps: unknown field " + name)
	}
	fields[i] = v
}

func fieldMap(p *ir.Program) map[string]int {
	m := make(map[string]int, len(p.Fields))
	for i, f := range p.Fields {
		m[f] = i
	}
	return m
}

// Flowlet returns the flowlet-switching application.
func Flowlet() *App {
	app := &App{Name: "flowlet", Source: FlowletSource}
	prog := app.MustCompile(compiler.TargetBanzai)
	fm := fieldMap(prog)
	app.Bind = func(f *workload.Flow, p *workload.PktCtx, fields []int64) {
		set(fm, fields, "sport", f.SrcPort)
		set(fm, fields, "dport", f.DstPort)
		set(fm, fields, "arrival", p.Cycle)
	}
	return app
}

// Conga returns the CONGA application. Utilization reports arrive with the
// data packets: util is a random path load sample, path_id the path the
// packet travelled.
func Conga() *App {
	app := &App{Name: "conga", Source: CongaSource}
	prog := app.MustCompile(compiler.TargetBanzai)
	fm := fieldMap(prog)
	app.Bind = func(f *workload.Flow, p *workload.PktCtx, fields []int64) {
		set(fm, fields, "dst", int64(ir.Hash2(f.DstPort, 7)%256))
		set(fm, fields, "util", int64(p.Rng.Intn(100)))
		set(fm, fields, "path_id", int64(p.Rng.Intn(10)))
	}
	return app
}

// WFQ returns the weighted-fair-queuing rank computation.
func WFQ() *App {
	app := &App{Name: "wfq", Source: WFQSource}
	prog := app.MustCompile(compiler.TargetBanzai)
	fm := fieldMap(prog)
	app.Bind = func(f *workload.Flow, p *workload.PktCtx, fields []int64) {
		set(fm, fields, "flow", f.ID)
		set(fm, fields, "len", int64(p.Size))
		set(fm, fields, "virtual_time", p.Cycle)
	}
	return app
}

// Sequencer returns the network-sequencer application; flows map onto
// ordered groups.
func Sequencer() *App {
	app := &App{Name: "sequencer", Source: SequencerSource}
	prog := app.MustCompile(compiler.TargetBanzai)
	fm := fieldMap(prog)
	app.Bind = func(f *workload.Flow, p *workload.PktCtx, fields []int64) {
		set(fm, fields, "group", f.ID%16)
	}
	return app
}

// All returns the four §4.4 applications in the paper's order.
func All() []*App {
	return []*App{Flowlet(), Conga(), WFQ(), Sequencer()}
}

// ByName looks up one application.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// SyntheticSource builds the sensitivity-experiment program: one register
// array per stateful stage, each read-modify-written at an index carried in
// a dedicated header field (so the workload generator controls the access
// pattern exactly), with an optional stateless escape hatch: when
// p.stateless is set the packet skips every state access.
func SyntheticSource(statefulStages, regSize int) string {
	var b strings.Builder
	b.WriteString("struct Packet {\n    int stateless;\n")
	for i := 0; i < statefulStages; i++ {
		fmt.Fprintf(&b, "    int h%d;\n", i)
	}
	b.WriteString("};\n\n")
	for i := 0; i < statefulStages; i++ {
		fmt.Fprintf(&b, "int reg%d [%d] = {0};\n", i, regSize)
	}
	b.WriteString("\nvoid synth (struct Packet p) {\n")
	b.WriteString("    if (p.stateless == 0) {\n")
	for i := 0; i < statefulStages; i++ {
		fmt.Fprintf(&b, "        reg%d[p.h%d %% %d] = reg%d[p.h%d %% %d] + 1;\n",
			i, i, regSize, i, i, regSize)
	}
	b.WriteString("    }\n}\n")
	return b.String()
}

// Synthetic compiles the sensitivity program for MP5.
func Synthetic(statefulStages, regSize, maxStages int) (*ir.Program, error) {
	return compiler.Compile(SyntheticSource(statefulStages, regSize),
		compiler.Options{Target: compiler.TargetMP5, MaxStages: maxStages})
}
