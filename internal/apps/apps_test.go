package apps

import (
	"strings"
	"testing"

	"mp5/internal/compiler"
)

// TestAllAppsCompileBothTargets: every built-in application must compile
// for both the single-pipeline and MP5 targets within the default stage
// budget.
func TestAllAppsCompileBothTargets(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			if _, err := a.Compile(compiler.TargetBanzai); err != nil {
				t.Fatalf("banzai: %v", err)
			}
			prog, err := a.Compile(compiler.TargetMP5)
			if err != nil {
				t.Fatalf("mp5: %v", err)
			}
			if prog.NumStages() > compiler.DefaultMaxStages {
				t.Errorf("%d stages exceed the %d-stage budget",
					prog.NumStages(), compiler.DefaultMaxStages)
			}
			if len(prog.Accesses) == 0 {
				t.Error("application has no stateful accesses")
			}
			if a.Bind == nil {
				t.Error("missing workload binder")
			}
		})
	}
}

// TestStatefulPredicateCensus: the paper notes three of the four §4.4
// applications have predicates that cannot be resolved preemptively; only
// the sequencer is fully resolvable.
func TestStatefulPredicateCensus(t *testing.T) {
	want := map[string]bool{
		"flowlet":   true,
		"conga":     true,
		"wfq":       true,
		"sequencer": false,
	}
	n := 0
	for _, a := range All() {
		prog := a.MP5()
		if prog.StatefulPredicates != want[a.Name] {
			t.Errorf("%s: StatefulPredicates = %v, want %v",
				a.Name, prog.StatefulPredicates, want[a.Name])
		}
		if prog.StatefulPredicates {
			n++
		}
	}
	if n != 3 {
		t.Errorf("%d of 4 applications have stateful predicates, paper says 3", n)
	}
}

// TestShardingCensus: flowlet, wfq and the sequencer shard per-index;
// conga's mutually-entangled arrays must be pinned and co-located.
func TestShardingCensus(t *testing.T) {
	for _, a := range All() {
		prog := a.MP5()
		for _, r := range prog.Regs {
			wantSharded := a.Name != "conga"
			if r.Sharded != wantSharded {
				t.Errorf("%s register %s: sharded=%v, want %v",
					a.Name, r.Name, r.Sharded, wantSharded)
			}
		}
		if a.Name == "conga" {
			if prog.Regs[0].Stage != prog.Regs[1].Stage {
				t.Errorf("conga arrays not co-located: stages %d vs %d",
					prog.Regs[0].Stage, prog.Regs[1].Stage)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"flowlet", "conga", "wfq", "sequencer"} {
		a, err := ByName(name)
		if err != nil || a.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSyntheticSourceShape(t *testing.T) {
	src := SyntheticSource(3, 128)
	for _, want := range []string{"int h0;", "int h2;", "reg0 [128]", "reg2", "p.stateless == 0"} {
		if !strings.Contains(src, want) {
			t.Errorf("synthetic source lacks %q:\n%s", want, src)
		}
	}
	prog, err := Synthetic(3, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Regs) != 3 {
		t.Fatalf("registers = %d", len(prog.Regs))
	}
	// Each array must be sharded and serialized into its own stage.
	stages := map[int]bool{}
	for _, r := range prog.Regs {
		if !r.Sharded {
			t.Errorf("%s not sharded", r.Name)
		}
		if stages[r.Stage] {
			t.Errorf("stage %d reused by two sharded arrays", r.Stage)
		}
		stages[r.Stage] = true
	}
}

func TestSyntheticZeroStages(t *testing.T) {
	prog, err := Synthetic(0, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Accesses) != 0 {
		t.Error("stateless synthetic program has accesses")
	}
}

// TestSyntheticStageBudget: 30 independent arrays cannot be serialized
// into a 16-stage budget, so the compiler must take the §3.3 conservative
// fallback — unshard and co-locate — rather than fail (the accesses are
// data-independent, so they can legally share a stage when pinned).
func TestSyntheticStageBudget(t *testing.T) {
	prog, err := Synthetic(30, 64, 16)
	if err != nil {
		t.Fatalf("conservative fallback should keep this compilable: %v", err)
	}
	sharded := 0
	for _, r := range prog.Regs {
		if r.Sharded {
			sharded++
		}
	}
	if sharded == len(prog.Regs) {
		t.Error("stage budget exceeded yet every array stayed sharded")
	}
	if prog.NumStages() > 16 {
		t.Errorf("%d stages exceed the budget", prog.NumStages())
	}
}
