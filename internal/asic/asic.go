// Package asic is an analytic area/timing/SRAM cost model for MP5's
// hardware additions, replacing the paper's Synopsys DC + 15 nm NanGate
// synthesis flow (§4.2). The model is parameterised by the same quantities
// the paper reports — per-stage k×k crossbars for the 512-bit data channel
// and the 48-bit phantom channel, depth-8 per-pipeline FIFOs, and steering/
// sharding logic — and its constants are calibrated so the twelve Table-1
// corners reproduce within ~10%. The structural claims the paper draws from
// the table (area quadratic in the pipeline count, linear in stage count,
// ≥1 GHz at every corner, and an 0.5–4% overhead against a 300–700 mm²
// commercial die) are properties of the model's form, not of the fit.
package asic

import "math"

// Params are the technology/configuration constants of the cost model.
type Params struct {
	// DataBits is the packet header vector width carried between
	// stages (paper: 512 bits).
	DataBits int
	// PhantomBits is the phantom descriptor width (paper: 48 bits).
	PhantomBits int
	// FIFODepth is the per-pipeline FIFO depth per stage (paper: 8,
	// sufficient to avoid tail drops in §4.4).
	FIFODepth int
	// CrossbarMM2 is mm² per (bit × port²) of crossbar: both channels
	// contribute width × k² of it per stage.
	CrossbarMM2 float64
	// FIFOMM2 is mm² per bit of FIFO storage (k × depth × width per
	// stage).
	FIFOMM2 float64
	// LogicMM2PerPipe is mm² of steering + dynamic-sharding logic per
	// pipeline per stage.
	LogicMM2PerPipe float64
	// Timing model: critical path in ns is BaseNs plus logarithmic
	// crossbar fan-in/fan-out terms and a linear wire term in k.
	BaseNs       float64
	PerLog2KNs   float64
	PerLog2SNs   float64
	WirePerPipNs float64
}

// DefaultParams returns the constants calibrated against Table 1 of the
// paper (15 nm open-source process).
func DefaultParams() Params {
	return Params{
		DataBits:        512,
		PhantomBits:     48,
		FIFODepth:       8,
		CrossbarMM2:     2.2e-5,
		FIFOMM2:         2.0e-7,
		LogicMM2PerPipe: 0.002,
		BaseNs:          0.52,
		PerLog2KNs:      0.055,
		PerLog2SNs:      0.015,
		WirePerPipNs:    0.002,
	}
}

// Area returns the silicon area (mm²) of MP5's additions — crossbars,
// FIFOs, steering and sharding logic — for k pipelines and s stages.
// The dominant term is the crossbar, quadratic in k and linear in s,
// matching the observation in §4.2.
func (p Params) Area(k, s int) float64 {
	crossbar := p.CrossbarMM2 * float64(p.DataBits+p.PhantomBits) * float64(k*k)
	fifos := p.FIFOMM2 * float64(k*p.FIFODepth*p.DataBits)
	logic := p.LogicMM2PerPipe * float64(k)
	return float64(s) * (crossbar + fifos + logic)
}

// CriticalPathNs returns the modelled critical path through a stage
// boundary (crossbar traversal + FIFO head selection).
func (p Params) CriticalPathNs(k, s int) float64 {
	return p.BaseNs +
		p.PerLog2KNs*math.Log2(float64(max(2, k))) +
		p.PerLog2SNs*math.Log2(float64(max(2, s))) +
		p.WirePerPipNs*float64(k)
}

// ClockGHz returns the maximum clock rate for the configuration.
func (p Params) ClockGHz(k, s int) float64 {
	return 1.0 / p.CriticalPathNs(k, s)
}

// MeetsGigahertz reports whether the configuration reaches the 1 GHz clock
// of state-of-the-art switch pipelines.
func (p Params) MeetsGigahertz(k, s int) bool { return p.ClockGHz(k, s) >= 1.0 }

// OverheadPercent returns the area as a percentage of a commercial switch
// ASIC die of the given size (the paper cites 300–700 mm²).
func (p Params) OverheadPercent(k, s int, dieMM2 float64) float64 {
	return 100 * p.Area(k, s) / dieMM2
}

// SRAM overhead model (§4.2): per register index MP5 stores the pipeline
// number (6 bits), the packet access counter (16 bits, reset every ~100
// cycles), and the in-flight counter (8 bits).
const (
	PipeNumberBits    = 6
	AccessCounterBits = 16
	InflightBits      = 8
	BitsPerIndex      = PipeNumberBits + AccessCounterBits + InflightBits
)

// SRAMOverheadBytes returns MP5's per-pipeline SRAM overhead for a program
// with the given number of stateful stages and register entries per stage
// (the index-to-pipeline map replica plus counters).
func SRAMOverheadBytes(statefulStages, entriesPerStage int) int {
	bits := statefulStages * entriesPerStage * BitsPerIndex
	return (bits + 7) / 8
}

// Table1Row is one cell of the paper's Table 1.
type Table1Row struct {
	Pipelines int
	Stages    int
	AreaMM2   float64
	ClockGHz  float64
	GHzOK     bool
}

// Table1 evaluates the model over the paper's grid (k ∈ {2,4,8},
// s ∈ {4,8,12,16}) or any other supplied grid.
func Table1(p Params, ks, ss []int) []Table1Row {
	var rows []Table1Row
	for _, k := range ks {
		for _, s := range ss {
			rows = append(rows, Table1Row{
				Pipelines: k,
				Stages:    s,
				AreaMM2:   p.Area(k, s),
				ClockGHz:  p.ClockGHz(k, s),
				GHzOK:     p.MeetsGigahertz(k, s),
			})
		}
	}
	return rows
}

// PaperTable1 holds the published Table-1 area numbers (mm²) for
// calibration checks, keyed by [pipelines][stages].
var PaperTable1 = map[int]map[int]float64{
	2: {4: 0.21, 8: 0.42, 12: 0.63, 16: 0.81},
	4: {4: 0.84, 8: 1.68, 12: 2.52, 16: 3.36},
	8: {4: 3.2, 8: 6.4, 12: 9.6, 16: 12.8},
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
