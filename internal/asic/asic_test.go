package asic

import (
	"math"
	"testing"
)

// TestCalibrationAgainstPaperTable1: every published cell must reproduce
// within 12% (the model is analytic, not a synthesis run).
func TestCalibrationAgainstPaperTable1(t *testing.T) {
	p := DefaultParams()
	for k, row := range PaperTable1 {
		for s, want := range row {
			got := p.Area(k, s)
			if rel := math.Abs(got-want) / want; rel > 0.12 {
				t.Errorf("area(k=%d,s=%d) = %.3f mm², paper %.3f (off %.1f%%)",
					k, s, got, want, 100*rel)
			}
		}
	}
}

// TestAreaScaling: quadratic in pipelines, linear in stages (§4.2's "key
// take away").
func TestAreaScaling(t *testing.T) {
	p := DefaultParams()
	// Linear in stages.
	r1 := p.Area(4, 8) / p.Area(4, 4)
	if math.Abs(r1-2.0) > 1e-9 {
		t.Errorf("stage scaling = %.3f, want exactly 2 (linear)", r1)
	}
	// Approximately quadratic in pipelines (crossbar dominates).
	r2 := p.Area(8, 16) / p.Area(4, 16)
	if r2 < 3.5 || r2 > 4.1 {
		t.Errorf("pipeline scaling = %.3f, want ≈4 (quadratic)", r2)
	}
}

// TestGigahertzAllPaperCorners: the paper reports ≥1 GHz everywhere.
func TestGigahertzAllPaperCorners(t *testing.T) {
	p := DefaultParams()
	for _, k := range []int{2, 4, 8} {
		for _, s := range []int{4, 8, 12, 16} {
			if !p.MeetsGigahertz(k, s) {
				t.Errorf("k=%d s=%d: %.2f GHz < 1", k, s, p.ClockGHz(k, s))
			}
		}
	}
}

// TestOverheadPercent: for the Tofino-like corner (4 pipelines, 16 stages)
// the paper computes 0.5–1% of a 300–700 mm² die; for 8 pipelines, 2–4%.
func TestOverheadPercent(t *testing.T) {
	p := DefaultParams()
	lo := p.OverheadPercent(4, 16, 700)
	hi := p.OverheadPercent(4, 16, 300)
	if lo < 0.3 || hi > 1.5 {
		t.Errorf("4-pipe overhead = %.2f%%..%.2f%%, paper says 0.5–1%%", lo, hi)
	}
	lo8 := p.OverheadPercent(8, 16, 700)
	hi8 := p.OverheadPercent(8, 16, 300)
	if lo8 < 1.5 || hi8 > 5 {
		t.Errorf("8-pipe overhead = %.2f%%..%.2f%%, paper says 2–4%%", lo8, hi8)
	}
}

// TestSRAMOverhead: §4.2's example — 10 stateful stages with 1000 entries
// each at 30 bits/index is "about 35 KB per pipeline".
func TestSRAMOverhead(t *testing.T) {
	if BitsPerIndex != 30 {
		t.Fatalf("BitsPerIndex = %d, want 30 (6+16+8)", BitsPerIndex)
	}
	got := SRAMOverheadBytes(10, 1000)
	if got != 37500 {
		t.Errorf("SRAM overhead = %d bytes, want 37500 (≈35 KB, §4.2)", got)
	}
}

func TestTable1Grid(t *testing.T) {
	p := DefaultParams()
	rows := Table1(p, []int{2, 4, 8}, []int{4, 8, 12, 16})
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.AreaMM2 <= 0 || r.ClockGHz <= 0 {
			t.Errorf("nonsense row %+v", r)
		}
		if !r.GHzOK {
			t.Errorf("row %+v misses 1 GHz", r)
		}
	}
}

// TestClockDegradesWithScale: the §3.5.3 scalability discussion — the
// crossbar eventually limits clock as pipelines multiply.
func TestClockDegradesWithScale(t *testing.T) {
	p := DefaultParams()
	if p.ClockGHz(64, 16) >= p.ClockGHz(8, 16) {
		t.Error("clock should degrade as the crossbar widens")
	}
}
