// Package banzai models the Banzai machine (Sivaraman et al., SIGCOMM'16)
// that MP5 builds on: a single feed-forward pipeline of match-action stages
// with atomic per-stage state operations. It provides the register file and
// the serial reference executor that defines functional equivalence (§2.2.1
// of the MP5 paper): the final register state and per-packet header state a
// logical single-pipelined switch would produce.
package banzai

import (
	"fmt"

	"mp5/internal/ir"
	"mp5/internal/ir/bytecode"
)

// RegFile is a flat register store holding every register array of one
// program, plus its read-only match tables (replicated from the program's
// control-plane configuration). It implements ir.RegStore. Indices are
// reduced modulo the array size (non-negative), matching the
// dataplane-safe semantics of the instruction interpreter.
type RegFile struct {
	arrays   [][]int64
	tables   []map[[3]int64]int64
	defaults []int64
}

// NewRegFile allocates and initializes a register file for program p,
// replicating p's match-table entries (the control-plane state the paper
// assumes is installed identically before the run, §2.2.1).
func NewRegFile(p *ir.Program) *RegFile {
	rf := &RegFile{arrays: make([][]int64, len(p.Regs))}
	for i := range p.Regs {
		r := &p.Regs[i]
		a := make([]int64, r.Size)
		for j := range a {
			a[j] = r.InitialValue(j)
		}
		rf.arrays[i] = a
	}
	rf.tables = make([]map[[3]int64]int64, len(p.Tables))
	rf.defaults = make([]int64, len(p.Tables))
	for i := range p.Tables {
		rf.tables[i] = make(map[[3]int64]int64)
		rf.defaults[i] = p.Tables[i].Default
	}
	for _, e := range p.TableEntries {
		rf.tables[e.Table][e.Keys] = e.Value
	}
	return rf
}

// ClampIndex reduces an arbitrary index into [0, size): the dataplane-safe
// wrap used by every register store in this repository, so the reference
// executor and the MP5 simulator agree on out-of-range accesses.
func ClampIndex(idx int, size int) int {
	if size <= 0 {
		return 0
	}
	m := idx % size
	if m < 0 {
		m += size
	}
	return m
}

// ReadReg implements ir.RegStore.
func (rf *RegFile) ReadReg(reg, idx int) int64 {
	a := rf.arrays[reg]
	return a[ClampIndex(idx, len(a))]
}

// WriteReg implements ir.RegStore.
func (rf *RegFile) WriteReg(reg, idx int, v int64) {
	a := rf.arrays[reg]
	a[ClampIndex(idx, len(a))] = v
}

// LookupTable implements ir.RegStore: exact match against a read-only
// match table, with the table's default on a miss.
func (rf *RegFile) LookupTable(tbl int, keys [3]int64) int64 {
	if v, ok := rf.tables[tbl][keys]; ok {
		return v
	}
	return rf.defaults[tbl]
}

// Array returns the backing slice of register array reg (live, not a copy).
func (rf *RegFile) Array(reg int) []int64 { return rf.arrays[reg] }

// Snapshot deep-copies the register state.
func (rf *RegFile) Snapshot() [][]int64 {
	out := make([][]int64, len(rf.arrays))
	for i, a := range rf.arrays {
		out[i] = append([]int64(nil), a...)
	}
	return out
}

// Machine models a single Banzai pipeline executing a compiled program
// serially: packets are processed to completion in arrival order, which is
// exactly the behaviour of a single pipeline (each stage holds one packet,
// state effects of packet n are visible to packet n+1; the interleaving of
// different packets across different stages cannot be observed because no
// state is shared across stages).
type Machine struct {
	prog *ir.Program
	regs *RegFile
	// bc and vm hold the bytecode-compiled form of prog and the operand
	// stack that runs it; nil when the machine was switched to the
	// tree-walking interpreter with Interpret (the semantic oracle mode
	// internal/equiv pins).
	bc *bytecode.Program
	vm *bytecode.VM
	// AccessLog, when enabled with RecordAccesses, appends the packet id
	// of every stateful-stage visit per register array, defining the
	// reference access order for C1 checking.
	accessLog map[int][]int64
	recording bool
	// indexedLog, when enabled with RecordIndexedAccesses, refines the
	// log to individual register slots — keys "r<reg>[<idx>]" with the
	// clamped index — matching the granularity of the simulator's
	// EvAccess trace events (see internal/fuzz's order oracle).
	indexedLog map[string][]int64
}

// NewMachine builds a reference machine for program p with freshly
// initialized register state. Stages execute through the bytecode VM;
// call Interpret to force the tree-walking interpreter instead.
func NewMachine(p *ir.Program) *Machine {
	bc := bytecode.MustCompile(p)
	return &Machine{prog: p, regs: NewRegFile(p), bc: bc, vm: bytecode.NewVM(bc)}
}

// Interpret switches the machine to the tree-walking ir interpreter.
// internal/equiv uses this to keep the interpreter as the semantic ground
// truth that the compiled executors are differenced against.
func (m *Machine) Interpret() {
	m.bc, m.vm = nil, nil
}

// execStage runs stage si through the active executor.
func (m *Machine) execStage(si int, env *ir.Env) {
	if m.bc != nil {
		if err := m.vm.ExecStage(&m.bc.Stages[si], env, m.regs); err != nil {
			panic("banzai: " + err.Error()) // compiled code is never corrupt
		}
		return
	}
	ir.ExecStage(&m.prog.Stages[si], env, m.regs)
}

// execStageObserved runs stage si through the active executor with C1
// access observation.
func (m *Machine) execStageObserved(si int, env *ir.Env, obs ir.AccessObserver) {
	if m.bc != nil {
		if err := m.vm.ExecStageObserved(&m.bc.Stages[si], env, m.regs, obs); err != nil {
			panic("banzai: " + err.Error())
		}
		return
	}
	ir.ExecStageObserved(&m.prog.Stages[si], env, m.regs, obs)
}

// Program returns the compiled program the machine runs.
func (m *Machine) Program() *ir.Program { return m.prog }

// Regs exposes the machine's register file.
func (m *Machine) Regs() *RegFile { return m.regs }

// RecordAccesses turns on per-register access-order logging.
func (m *Machine) RecordAccesses() {
	m.recording = true
	m.accessLog = map[int][]int64{}
}

// AccessLog returns the recorded access order per register array id:
// the packet ids that visited the array's stage, in processing order.
func (m *Machine) AccessLog() map[int][]int64 { return m.accessLog }

// RecordIndexedAccesses turns on per-slot access-order logging: the exact
// sequence of packet ids touching each individual register index, which on
// a single pipeline is by construction the arrival order. This is the C1
// reference order the differential fuzzing oracle compares against.
func (m *Machine) RecordIndexedAccesses() {
	m.indexedLog = map[string][]int64{}
}

// IndexedAccessLog returns the per-slot access order, keyed "r<reg>[<idx>]"
// with indices clamped the same way the register file clamps them.
func (m *Machine) IndexedAccessLog() map[string][]int64 { return m.indexedLog }

// AccessKey renders the canonical per-slot state name shared by the
// reference log and the simulator's EvAccess events.
func AccessKey(reg, idx int) string {
	return fmt.Sprintf("r%d[%d]", reg, idx)
}

// Process runs one packet through all pipeline stages and returns its
// final environment. id is the packet's arrival sequence number (used only
// for access logging). The caller owns env; fields are updated in place.
func (m *Machine) Process(id int64, env *ir.Env) {
	for si := range m.prog.Stages {
		st := &m.prog.Stages[si]
		if m.recording && st.Stateful() {
			m.logStageVisit(id, env, si)
		}
		if m.indexedLog != nil && st.Stateful() {
			m.processStageIndexed(id, env, si)
			continue
		}
		m.execStage(si, env)
	}
}

// processStageIndexed executes one stage through the observed execution
// path, appending id to each distinct register slot the packet effectively
// accesses (predicate held; index clamped).
func (m *Machine) processStageIndexed(id int64, env *ir.Env, si int) {
	var seen map[string]bool
	m.execStageObserved(si, env, func(reg int, idx int64, write bool) {
		key := AccessKey(reg, ClampIndex(int(idx), m.prog.Regs[reg].Size))
		if seen[key] {
			return
		}
		if seen == nil {
			seen = map[string]bool{}
		}
		seen[key] = true
		m.indexedLog[key] = append(m.indexedLog[key], id)
	})
}

// logStageVisit records which register arrays the packet actually touches
// in stage si, honouring instruction predicates, so the reference log is
// comparable with MP5's runtime log.
func (m *Machine) logStageVisit(id int64, env *ir.Env, si int) {
	seen := map[int]bool{}
	for _, in := range m.prog.Stages[si].Instrs {
		if !in.Op.IsStateful() || seen[in.Reg] {
			continue
		}
		if !in.Pred.IsNone() {
			truth := env.Load(in.Pred) != 0
			if truth == in.PredNeg {
				continue
			}
		}
		seen[in.Reg] = true
		m.accessLog[in.Reg] = append(m.accessLog[in.Reg], id)
	}
}

// Run processes a batch of packet environments in order (index = arrival
// order) and returns them after processing.
func (m *Machine) Run(envs []*ir.Env) []*ir.Env {
	for i, e := range envs {
		m.Process(int64(i), e)
	}
	return envs
}

// String summarizes the machine configuration.
func (m *Machine) String() string {
	return fmt.Sprintf("banzai{program=%s stages=%d regs=%d}",
		m.prog.Name, len(m.prog.Stages), len(m.prog.Regs))
}
