package banzai

import (
	"testing"
	"testing/quick"

	"mp5/internal/compiler"
	"mp5/internal/ir"
)

func TestClampIndex(t *testing.T) {
	cases := []struct{ idx, size, want int }{
		{0, 4, 0}, {3, 4, 3}, {4, 4, 0}, {5, 4, 1},
		{-1, 4, 3}, {-4, 4, 0}, {-5, 4, 3},
		{7, 1, 0}, {0, 0, 0}, {9, -3, 0},
	}
	for _, c := range cases {
		if got := ClampIndex(c.idx, c.size); got != c.want {
			t.Errorf("ClampIndex(%d, %d) = %d, want %d", c.idx, c.size, got, c.want)
		}
	}
	prop := func(idx int, size uint8) bool {
		s := int(size)
		got := ClampIndex(idx, s)
		if s <= 0 {
			return got == 0
		}
		return got >= 0 && got < s
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegFileInitAndAccess(t *testing.T) {
	prog := &ir.Program{
		Fields: []string{"x"},
		Regs: []ir.RegInfo{
			{Name: "a", Size: 3, Init: []int64{5}},
			{Name: "b", Size: 4, Init: []int64{1, 2}},
		},
	}
	rf := NewRegFile(prog)
	for i := 0; i < 3; i++ {
		if rf.ReadReg(0, i) != 5 {
			t.Errorf("a[%d] = %d, want 5 (fill rule)", i, rf.ReadReg(0, i))
		}
	}
	want := []int64{1, 2, 0, 0}
	for i, w := range want {
		if rf.ReadReg(1, i) != w {
			t.Errorf("b[%d] = %d, want %d", i, rf.ReadReg(1, i), w)
		}
	}
	rf.WriteReg(1, 6, 9) // clamps to index 2
	if rf.ReadReg(1, 2) != 9 {
		t.Error("clamped write missed")
	}
	snap := rf.Snapshot()
	rf.WriteReg(0, 0, 100)
	if snap[0][0] != 5 {
		t.Error("snapshot aliases live storage")
	}
}

const seqSrc = `
struct Packet { int seq; };
int count [1] = {0};
void counter (struct Packet p) {
    count[0] = count[0] + 1;
    p.seq = count[0];
}
`

func TestMachineSerialSemantics(t *testing.T) {
	prog, err := compiler.Compile(seqSrc, compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog)
	m.RecordAccesses()
	seqField := prog.FieldIndex("seq")
	for i := 0; i < 10; i++ {
		env := ir.NewEnv(prog)
		m.Process(int64(i), env)
		if env.Fields[seqField] != int64(i+1) {
			t.Fatalf("packet %d stamped %d", i, env.Fields[seqField])
		}
	}
	if got := m.Regs().Array(0)[0]; got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	log := m.AccessLog()[0]
	if len(log) != 10 {
		t.Fatalf("access log has %d entries", len(log))
	}
	for i, id := range log {
		if id != int64(i) {
			t.Fatalf("access order %v not serial", log)
		}
	}
}

// TestAccessLogHonoursPredicates: a predicated-off register op must not be
// logged as an access (the log defines the C1 reference order).
func TestAccessLogHonoursPredicates(t *testing.T) {
	src := `
struct Packet { int x; };
int r [4] = {0};
void f (struct Packet p) {
    if (p.x > 10) {
        r[p.x % 4] = p.x;
    }
}
`
	prog, err := compiler.Compile(src, compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog)
	m.RecordAccesses()
	for i, x := range []int64{5, 20, 7, 30} {
		env := ir.NewEnv(prog)
		env.Fields[0] = x
		m.Process(int64(i), env)
	}
	log := m.AccessLog()[0]
	if len(log) != 2 || log[0] != 1 || log[1] != 3 {
		t.Fatalf("access log = %v, want [1 3] (only predicate-true packets)", log)
	}
}

// TestIndexedAccessLog: the per-slot log refines the per-array log — keys
// carry the clamped index, predicated-off ops are skipped, and every slot's
// sequence is strictly ascending (serial machine = arrival order).
func TestIndexedAccessLog(t *testing.T) {
	src := `
struct Packet { int x; };
int r [4] = {0};
void f (struct Packet p) {
    if (p.x > 10) {
        r[p.x % 4] = r[p.x % 4] + 1;
    }
}
`
	prog, err := compiler.Compile(src, compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog)
	m.RecordIndexedAccesses()
	// x values: packets 1 (x=21, slot 1), 3 (x=30, slot 2), 4 (x=25,
	// slot 1); packets 0 and 2 are predicated off.
	for i, x := range []int64{5, 21, 7, 30, 25} {
		env := ir.NewEnv(prog)
		env.Fields[0] = x
		m.Process(int64(i), env)
	}
	log := m.IndexedAccessLog()
	want := map[string][]int64{
		AccessKey(0, 1): {1, 4},
		AccessKey(0, 2): {3},
	}
	if len(log) != len(want) {
		t.Fatalf("log keys %v, want %v", log, want)
	}
	for k, seq := range want {
		got := log[k]
		if len(got) != len(seq) {
			t.Fatalf("%s = %v, want %v", k, got, seq)
		}
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("%s = %v, want %v", k, got, seq)
			}
		}
	}
}

func TestMachineString(t *testing.T) {
	prog, _ := compiler.Compile(seqSrc, compiler.Options{Target: compiler.TargetBanzai})
	m := NewMachine(prog)
	if m.String() == "" || m.Program() != prog {
		t.Error("accessors broken")
	}
}

// TestRunBatch exercises the batch helper.
func TestRunBatch(t *testing.T) {
	prog, _ := compiler.Compile(seqSrc, compiler.Options{Target: compiler.TargetBanzai})
	m := NewMachine(prog)
	envs := make([]*ir.Env, 5)
	for i := range envs {
		envs[i] = ir.NewEnv(prog)
	}
	m.Run(envs)
	if m.Regs().Array(0)[0] != 5 {
		t.Fatalf("count = %d", m.Regs().Array(0)[0])
	}
}
