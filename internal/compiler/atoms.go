package compiler

import (
	"fmt"
	"sort"

	"mp5/internal/ir"
)

// AtomKind classifies a stateful atom — the fused read-modify-write a
// single Banzai stage must execute atomically — following the atom
// templates of the Domino paper (Sivaraman et al., SIGCOMM'16, Table 4):
// progressively more capable (and more expensive) stateful ALUs.
type AtomKind int

const (
	// AtomRead only reads the register (e.g. route lookups).
	AtomRead AtomKind = iota
	// AtomWrite only writes packet-derived values.
	AtomWrite
	// AtomReadWrite reads and writes without arithmetic between
	// (value refresh: last_time[i] = now).
	AtomReadWrite
	// AtomRAW is read-add-write: reg = reg + packet/const.
	AtomRAW
	// AtomPRAW is a predicated RAW: the update is guarded, and the
	// guard may itself depend on the register value.
	AtomPRAW
	// AtomIfElseRAW chooses between two updates with complementary
	// predicates.
	AtomIfElseRAW
	// AtomSub is RAW whose arithmetic includes subtraction of or from
	// the register value.
	AtomSub
	// AtomNested has multi-level predication (predicates derived from
	// other predicates).
	AtomNested
	// AtomPairs updates two register arrays together in one stage
	// (CONGA-style entangled state).
	AtomPairs
)

var atomNames = map[AtomKind]string{
	AtomRead: "Read", AtomWrite: "Write", AtomReadWrite: "ReadWrite",
	AtomRAW: "RAW", AtomPRAW: "PRAW", AtomIfElseRAW: "IfElseRAW",
	AtomSub: "Sub", AtomNested: "Nested", AtomPairs: "Pairs",
}

// String names the atom kind.
func (k AtomKind) String() string {
	if s, ok := atomNames[k]; ok {
		return s
	}
	return fmt.Sprintf("atom(%d)", int(k))
}

// AtomReport describes one stateful stage's atom.
type AtomReport struct {
	// Stage is the pipeline stage the atom occupies.
	Stage int
	// Regs are the register arrays fused into the atom.
	Regs []string
	// Kind is the most capable template the atom requires.
	Kind AtomKind
	// Depth is the longest ALU dependency chain inside the atom (the
	// number of dependent operations between reading the register and
	// the last write), a proxy for the circuit depth the stage's 1 GHz
	// clock budget must cover.
	Depth int
}

// String renders the report row.
func (r AtomReport) String() string {
	return fmt.Sprintf("stage %d: %v atom, depth %d, regs %v", r.Stage, r.Kind, r.Depth, r.Regs)
}

// ClassifyAtoms analyses each stateful stage of a compiled program and
// reports the atom template it requires. It is a post-compilation analysis:
// the program's stages already group each register's reads, writes, and the
// computation between them.
func ClassifyAtoms(prog *ir.Program) []AtomReport {
	var reports []AtomReport
	for si := range prog.Stages {
		st := &prog.Stages[si]
		regs := st.RegsUsed()
		if len(regs) == 0 {
			continue
		}
		reports = append(reports, classifyStage(prog, si, regs))
	}
	sort.Slice(reports, func(a, b int) bool { return reports[a].Stage < reports[b].Stage })
	return reports
}

func classifyStage(prog *ir.Program, si int, regs []int) AtomReport {
	st := &prog.Stages[si]
	rep := AtomReport{Stage: si}
	for _, r := range regs {
		rep.Regs = append(rep.Regs, prog.Regs[r].Name)
	}

	var hasRead, hasWrite, hasSub, hasArith bool
	predTemps := map[int]bool{}
	readDsts := map[int]bool{}
	// writeUsesRead: some write's value depends on a register read from
	// this stage (read-modify-write).
	writeUsesRead := false
	// Transitive dependents of register reads within the stage.
	derived := map[int]bool{}
	for _, in := range st.Instrs {
		reads := func(o ir.Operand) bool {
			return o.Kind == ir.KindTemp && derived[o.ID]
		}
		dependsOnRead := reads(in.A) || reads(in.B) || reads(in.C) || reads(in.Idx) || reads(in.Pred)
		switch in.Op {
		case ir.OpRdReg:
			hasRead = true
			if in.Dst.Kind == ir.KindTemp {
				readDsts[in.Dst.ID] = true
				derived[in.Dst.ID] = true
			}
		case ir.OpWrReg:
			hasWrite = true
			if reads(in.A) || reads(in.Idx) {
				writeUsesRead = true
			}
			if !in.Pred.IsNone() && in.Pred.Kind == ir.KindTemp {
				predTemps[in.Pred.ID] = true
			}
		default:
			if dependsOnRead && in.Dst.Kind == ir.KindTemp {
				derived[in.Dst.ID] = true
				hasArith = true
				if in.Op == ir.OpSub || in.Op == ir.OpNeg {
					hasSub = true
				}
			}
			if !in.Pred.IsNone() && in.Pred.Kind == ir.KindTemp {
				predTemps[in.Pred.ID] = true
			}
		}
	}

	// Predicate structure: count distinct predicate temps used by the
	// stage's instructions, and whether any predicate is itself derived
	// from a register read (stateful guard).
	statefulPred := false
	for id := range predTemps {
		if derived[id] {
			statefulPred = true
		}
	}

	switch {
	case len(regs) > 1:
		rep.Kind = AtomPairs
	case len(predTemps) >= 2:
		rep.Kind = AtomNested
	case hasSub:
		rep.Kind = AtomSub
	case statefulPred || (len(predTemps) == 1 && writeUsesRead):
		rep.Kind = AtomPRAW
	case len(predTemps) == 1:
		rep.Kind = AtomIfElseRAW
	case writeUsesRead && hasArith:
		rep.Kind = AtomRAW
	case hasRead && hasWrite:
		rep.Kind = AtomReadWrite
	case hasWrite:
		rep.Kind = AtomWrite
	default:
		rep.Kind = AtomRead
	}
	rep.Depth = stageDepth(st)
	return rep
}

// stageDepth computes the longest dependency chain among a stage's
// instructions (each instruction costs one level).
func stageDepth(st *ir.Stage) int {
	writer := map[int]int{} // temp id → instr index
	for i, in := range st.Instrs {
		if in.Dst.Kind == ir.KindTemp {
			writer[in.Dst.ID] = i
		}
	}
	depth := make([]int, len(st.Instrs))
	maxDepth := 0
	for i, in := range st.Instrs {
		d := 1
		for _, o := range []ir.Operand{in.A, in.B, in.C, in.Idx, in.Pred} {
			if o.Kind != ir.KindTemp {
				continue
			}
			if w, ok := writer[o.ID]; ok && w < i && depth[w]+1 > d {
				d = depth[w] + 1
			}
		}
		depth[i] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	return maxDepth
}

// CheckAtomBudget verifies that no stateful atom exceeds the given ALU
// depth (a Banzai machine exposes atoms of a fixed pipeline-synthesizable
// depth; the Domino paper found depth ≤ 3–4 covers its algorithm suite).
func CheckAtomBudget(prog *ir.Program, maxDepth int) error {
	if maxDepth <= 0 {
		return nil
	}
	for _, rep := range ClassifyAtoms(prog) {
		if rep.Depth > maxDepth {
			return fmt.Errorf("compiler: stage %d %v atom needs depth %d, machine provides %d",
				rep.Stage, rep.Kind, rep.Depth, maxDepth)
		}
	}
	return nil
}
