package compiler

import (
	"strings"
	"testing"
)

func classify(t *testing.T, src string) []AtomReport {
	t.Helper()
	prog, err := Compile(src, Options{Target: TargetMP5})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return ClassifyAtoms(prog)
}

func TestClassifyRAW(t *testing.T) {
	reps := classify(t, `
struct Packet { int x; };
int c [16] = {0};
void f (struct Packet p) {
    c[p.x % 16] = c[p.x % 16] + 1;
}`)
	if len(reps) != 1 || reps[0].Kind != AtomRAW {
		t.Fatalf("reports = %v, want one RAW atom", reps)
	}
	if reps[0].Depth < 2 {
		t.Errorf("RAW depth = %d, want >= 2 (read, add)", reps[0].Depth)
	}
}

func TestClassifyWriteOnly(t *testing.T) {
	reps := classify(t, `
struct Packet { int x; };
int last [16] = {0};
void f (struct Packet p) {
    last[p.x % 16] = p.x;
}`)
	if len(reps) != 1 || reps[0].Kind != AtomWrite {
		t.Fatalf("reports = %v, want Write", reps)
	}
}

func TestClassifyReadOnly(t *testing.T) {
	reps := classify(t, `
struct Packet { int x; int o; };
int tbl [16] = {7};
void f (struct Packet p) {
    p.o = tbl[p.x % 16];
}`)
	if len(reps) != 1 || reps[0].Kind != AtomRead {
		t.Fatalf("reports = %v, want Read", reps)
	}
}

func TestClassifySub(t *testing.T) {
	reps := classify(t, `
struct Packet { int x; };
int tokens [16] = {100};
void f (struct Packet p) {
    tokens[p.x % 16] = tokens[p.x % 16] - 1;
}`)
	if len(reps) != 1 || reps[0].Kind != AtomSub {
		t.Fatalf("reports = %v, want Sub", reps)
	}
}

func TestClassifyPRAW(t *testing.T) {
	// Stateful guard over a read-modify-write: predicated RAW.
	reps := classify(t, `
struct Packet { int x; int v; };
int hi [16] = {0};
void f (struct Packet p) {
    if (p.v > hi[p.x % 16]) {
        hi[p.x % 16] = p.v;
    }
}`)
	if len(reps) != 1 || reps[0].Kind != AtomPRAW {
		t.Fatalf("reports = %v, want PRAW", reps)
	}
}

func TestClassifyPairs(t *testing.T) {
	reps := classify(t, congaProgram)
	if len(reps) != 1 || reps[0].Kind != AtomPairs {
		t.Fatalf("reports = %v, want one Pairs atom for conga", reps)
	}
	if len(reps[0].Regs) != 2 {
		t.Errorf("pairs atom spans %v", reps[0].Regs)
	}
}

func TestClassifyFlowlet(t *testing.T) {
	reps := classify(t, flowletProgram)
	if len(reps) != 2 {
		t.Fatalf("flowlet should have 2 atoms, got %v", reps)
	}
	// last_time: unconditional read + unconditional write (value
	// refresh). saved_hop: conditional write + unconditional read.
	kinds := map[AtomKind]bool{}
	for _, r := range reps {
		kinds[r.Kind] = true
	}
	if !kinds[AtomReadWrite] {
		t.Errorf("expected a ReadWrite atom (last_time refresh): %v", reps)
	}
}

func TestAtomBudgetEnforced(t *testing.T) {
	src := `
struct Packet { int x; };
int c [16] = {0};
void f (struct Packet p) {
    c[p.x % 16] = ((c[p.x % 16] * 3 + 1) * 5 + 2) * 7;
}`
	if _, err := Compile(src, Options{Target: TargetMP5, MaxAtomDepth: 2}); err == nil {
		t.Fatal("deep atom accepted under a depth-2 budget")
	} else if !strings.Contains(err.Error(), "depth") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := Compile(src, Options{Target: TargetMP5, MaxAtomDepth: 16}); err != nil {
		t.Fatalf("budget 16 should fit: %v", err)
	}
	if _, err := Compile(src, Options{Target: TargetMP5}); err != nil {
		t.Fatalf("unconstrained compile failed: %v", err)
	}
}

func TestAtomReportString(t *testing.T) {
	reps := classify(t, seqProgram)
	if len(reps) != 1 {
		t.Fatal("sequencer should have one atom")
	}
	s := reps[0].String()
	if !strings.Contains(s, "RAW") || !strings.Contains(s, "counter") {
		t.Errorf("report rendering: %q", s)
	}
}

func TestAtomKindNames(t *testing.T) {
	for k := AtomRead; k <= AtomPairs; k++ {
		if strings.HasPrefix(k.String(), "atom(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
