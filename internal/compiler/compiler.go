package compiler

import (
	"errors"
	"fmt"

	"mp5/internal/domino"
	"mp5/internal/ir"
)

// ErrStageBudget marks compilation failures caused purely by the pipeline
// depth budget: the program is valid, it just needs more stages than the
// target has. Callers that generate programs (internal/fuzz) distinguish
// this resource exhaustion from genuine compile errors via errors.Is.
var ErrStageBudget = errors.New("stage budget exceeded")

// Target selects the compilation target.
type Target int

const (
	// TargetBanzai compiles for a plain single Banzai pipeline: no
	// resolution stages, no access metadata, arrays unsharded.
	TargetBanzai Target = iota
	// TargetMP5 applies the PVSM-to-PVSM transformation and emits the
	// access metadata MP5's runtime needs for preemptive address
	// resolution, steering, and phantom generation.
	TargetMP5
)

// String names the target.
func (t Target) String() string {
	switch t {
	case TargetBanzai:
		return "banzai"
	case TargetMP5:
		return "mp5"
	}
	return fmt.Sprintf("target(%d)", int(t))
}

// DefaultMaxStages matches the paper's default switch configuration
// (§4.3.1: a 64-port switch with 16 pipeline stages).
const DefaultMaxStages = 16

// Options configures a compilation.
type Options struct {
	// Target is the machine model to compile for (default TargetBanzai).
	Target Target
	// MaxStages is the pipeline depth budget (default DefaultMaxStages).
	MaxStages int
	// MaxAtomDepth, when positive, bounds the ALU depth of every
	// stateful atom (the machine's stateful ALUs are synthesized at a
	// fixed depth; see ClassifyAtoms). Zero means unconstrained.
	MaxAtomDepth int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxStages == 0 {
		out.MaxStages = DefaultMaxStages
	}
	return out
}

// Compile parses and compiles Domino source.
func Compile(src string, opts Options) (*ir.Program, error) {
	f, err := domino.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileFile(f, opts)
}

// CompileFile compiles a parsed Domino file.
func CompileFile(f *domino.File, opts Options) (*ir.Program, error) {
	opts = opts.withDefaults()
	t, err := preprocess(f)
	if err != nil {
		return nil, err
	}
	pv := buildPVSM(t)

	prog := &ir.Program{
		Name:     f.FuncName,
		Fields:   t.fields,
		NumTemps: t.numTemps,
		Regs:     append([]ir.RegInfo(nil), t.regs...),
		Tables:   append([]ir.TableInfo(nil), t.tables...),
	}

	switch opts.Target {
	case TargetBanzai:
		if pv.numLevels > opts.MaxStages {
			return nil, fmt.Errorf("compiler: program needs %d stages, target has %d: %w",
				pv.numLevels, opts.MaxStages, ErrStageBudget)
		}
		prog.Stages = stagesFromLevels(t, pv.level, pv.numLevels)
		prog.ResolutionStages = 0
		assignRegStages(prog, t, pv.level)
	case TargetMP5:
		res, err := transform(t, pv, opts.MaxStages)
		if err != nil {
			return nil, err
		}
		prog.Stages = stagesFromLevels(t, res.level, res.numLevels)
		prog.ResolutionStages = res.resolutionStages
		prog.Accesses = res.accesses
		prog.StatefulPredicates = res.statefulPredicates
		assignRegStages(prog, t, res.level)
		for r := range prog.Regs {
			prog.Regs[r].Sharded = res.sharded[r]
		}
	default:
		return nil, fmt.Errorf("compiler: unknown target %v", opts.Target)
	}

	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: internal error: %w", err)
	}
	if err := CheckAtomBudget(prog, opts.MaxAtomDepth); err != nil {
		return nil, err
	}
	return prog, nil
}

// assignRegStages records, per register array, the stage its (fused)
// accesses were placed in. Arrays never accessed keep Stage = -1.
func assignRegStages(prog *ir.Program, t *tac, level []int) {
	for r := range prog.Regs {
		prog.Regs[r].Stage = -1
	}
	for i := range t.instrs {
		in := &t.instrs[i]
		if in.Op.IsStateful() {
			prog.Regs[in.Reg].Stage = level[i]
		}
	}
}

// MustCompile compiles src and panics on error. For tests, examples, and
// the built-in application programs.
func MustCompile(src string, opts Options) *ir.Program {
	p, err := Compile(src, opts)
	if err != nil {
		panic(err)
	}
	return p
}
