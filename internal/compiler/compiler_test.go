package compiler

import (
	"fmt"
	"math/rand"
	"testing"

	"mp5/internal/banzai"
	"mp5/internal/ir"
)

const fig3Program = `
struct Packet {
    int h1;
    int h2;
    int h3;
    int val;
    int mux;
};

int reg1 [4] = {2,4,8,16};
int reg2 [4] = {1,3,5,7};
int reg3 [4] = {0};

void func (struct Packet p) {
    p.val = (p.mux == 1)
        ? reg1[p.h1%4]
        : reg2[p.h2%4];

    reg3[p.h3%4] = (p.mux == 1)
        ? reg3[p.h3%4] * p.val
        : reg3[p.h3%4] + p.val;
}
`

const flowletProgram = `
#define NUM_FLOWLETS 800
#define THRESHOLD 5
#define NUM_HOPS 10

struct Packet {
    int sport;
    int dport;
    int new_hop;
    int arrival;
    int next_hop;
    int id;
};

int last_time [NUM_FLOWLETS] = {0};
int saved_hop [NUM_FLOWLETS] = {0};

void flowlet (struct Packet pkt) {
    pkt.new_hop = hash3(pkt.sport, pkt.dport, pkt.arrival) % NUM_HOPS;
    pkt.id = hash2(pkt.sport, pkt.dport) % NUM_FLOWLETS;
    if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {
        saved_hop[pkt.id] = pkt.new_hop;
    }
    last_time[pkt.id] = pkt.arrival;
    pkt.next_hop = saved_hop[pkt.id];
}
`

const congaProgram = `
struct Packet {
    int dst;
    int util;
    int path_id;
};

int best_path_util [256] = {100};
int best_path [256] = {0};

void conga (struct Packet p) {
    if (p.util < best_path_util[p.dst]) {
        best_path_util[p.dst] = p.util;
        best_path[p.dst] = p.path_id;
    } else if (p.path_id == best_path[p.dst]) {
        best_path_util[p.dst] = p.util;
    }
}
`

const seqProgram = `
struct Packet {
    int group;
    int seq;
};

int counter [64] = {0};

void sequencer (struct Packet p) {
    counter[p.group % 64] = counter[p.group % 64] + 1;
    p.seq = counter[p.group % 64];
}
`

func compileBoth(t *testing.T, src string) (ban, mp *ir.Program) {
	t.Helper()
	var err error
	ban, err = Compile(src, Options{Target: TargetBanzai})
	if err != nil {
		t.Fatalf("banzai compile: %v", err)
	}
	mp, err = Compile(src, Options{Target: TargetMP5})
	if err != nil {
		t.Fatalf("mp5 compile: %v", err)
	}
	return ban, mp
}

func TestCompileFig3Structure(t *testing.T) {
	_, mp := compileBoth(t, fig3Program)

	if mp.ResolutionStages < 2 {
		t.Errorf("ResolutionStages = %d, want >= 2 (hoisted slice + phantom-gen stage)", mp.ResolutionStages)
	}
	if len(mp.Accesses) != 3 {
		t.Fatalf("accesses = %d, want 3:\n%s", len(mp.Accesses), mp.Dump())
	}
	for _, r := range mp.Regs {
		if !r.Sharded {
			t.Errorf("register %s not sharded; fig3 indices are header-derived", r.Name)
		}
	}
	// reg1 and reg2 both feed p.val and would naturally share a stage;
	// the transformer must serialize sharded arrays into distinct stages.
	stageOf := map[string]int{}
	for _, r := range mp.Regs {
		stageOf[r.Name] = r.Stage
	}
	if stageOf["reg1"] == stageOf["reg2"] {
		t.Errorf("reg1 and reg2 share stage %d; sharded arrays must be serialized\n%s",
			stageOf["reg1"], mp.Dump())
	}
	if stageOf["reg3"] <= stageOf["reg1"] || stageOf["reg3"] <= stageOf["reg2"] {
		t.Errorf("reg3 stage %d must come after reg1 (%d) and reg2 (%d)",
			stageOf["reg3"], stageOf["reg1"], stageOf["reg2"])
	}
	// reg1's access is predicated on mux==1 and resolvable; reg2's is the
	// negation; reg3's is unconditional.
	preds := map[int]ir.Access{}
	for _, a := range mp.Accesses {
		preds[a.Reg] = a
	}
	r1 := preds[mp.RegIndex("reg1")]
	r2 := preds[mp.RegIndex("reg2")]
	r3 := preds[mp.RegIndex("reg3")]
	if !r1.PredResolvable || r1.Pred.IsNone() {
		t.Errorf("reg1 access = %+v, want resolvable conditional", r1)
	}
	if !r2.PredResolvable || r2.Pred.IsNone() {
		t.Errorf("reg2 access = %+v, want resolvable conditional", r2)
	}
	if !r3.PredResolvable || !r3.Pred.IsNone() {
		t.Errorf("reg3 access = %+v, want unconditional", r3)
	}
}

func TestCompileFlowletStructure(t *testing.T) {
	_, mp := compileBoth(t, flowletProgram)
	lt := mp.RegIndex("last_time")
	sh := mp.RegIndex("saved_hop")
	if !mp.Regs[lt].Sharded || !mp.Regs[sh].Sharded {
		t.Errorf("flowlet arrays must both be sharded (index = hash of 5-tuple):\n%s", mp.Dump())
	}
	if mp.Regs[lt].Stage == mp.Regs[sh].Stage {
		t.Errorf("last_time and saved_hop share a stage; must be serialized")
	}
	if mp.Regs[lt].Stage >= mp.Regs[sh].Stage {
		t.Errorf("saved_hop (stage %d) depends on last_time (stage %d); wrong order",
			mp.Regs[sh].Stage, mp.Regs[lt].Stage)
	}
	// saved_hop mixes a conditional write with an unconditional read: the
	// stage visit is unconditional (hence exactly resolvable), but the
	// write predicate is stateful, so the program counts among the
	// paper's "three of four applications" with stateful predicates.
	for _, a := range mp.Accesses {
		if !a.PredResolvable || !a.Pred.IsNone() {
			t.Errorf("flowlet access %+v: want unconditional exact visit", a)
		}
	}
	if !mp.StatefulPredicates {
		t.Errorf("flowlet must report stateful predicates (saved_hop write guard reads last_time)")
	}
}

func TestCompileCongaPinned(t *testing.T) {
	_, mp := compileBoth(t, congaProgram)
	// CONGA's arrays are mutually entangled (best_path_util's second
	// write is predicated on best_path's value and vice versa), so they
	// fuse into one cluster: serialization is impossible and both arrays
	// must be pinned (unsharded) in the same stage.
	bpu := mp.RegIndex("best_path_util")
	bp := mp.RegIndex("best_path")
	if mp.Regs[bpu].Sharded || mp.Regs[bp].Sharded {
		t.Errorf("conga arrays must be pinned (mutual stateful dependence):\n%s", mp.Dump())
	}
	if mp.Regs[bpu].Stage != mp.Regs[bp].Stage {
		t.Errorf("pinned conga arrays must be co-located: stages %d vs %d",
			mp.Regs[bpu].Stage, mp.Regs[bp].Stage)
	}
	if !mp.StatefulPredicates {
		t.Errorf("conga must report stateful predicates")
	}
}

func TestCompileSequencerStructure(t *testing.T) {
	_, mp := compileBoth(t, seqProgram)
	c := mp.RegIndex("counter")
	if !mp.Regs[c].Sharded {
		t.Errorf("sequencer counter should be sharded")
	}
	for _, a := range mp.Accesses {
		if !a.PredResolvable {
			t.Errorf("sequencer access should be resolvable (paper: 1 of 4 apps fully resolvable)")
		}
	}
	if mp.StatefulPredicates {
		t.Errorf("sequencer has no stateful predicates")
	}
}

func TestStatefulIndexPinsArray(t *testing.T) {
	src := `
struct Packet { int x; };
int ptr [4] = {0};
int data [16] = {0};
void f (struct Packet p) {
    data[ptr[0]] = p.x;
    ptr[0] = (ptr[0] + 1) % 16;
}`
	_, err := Compile(src, Options{Target: TargetMP5})
	if err != nil {
		t.Fatalf("mp5 compile: %v", err)
	}
	mp := MustCompile(src, Options{Target: TargetMP5})
	d := mp.RegIndex("data")
	if mp.Regs[d].Sharded {
		t.Errorf("data is indexed by register state; must be unsharded (§3.3 fallback)")
	}
}

// runSerial executes prog on the packets serially and returns the final
// register snapshot and output field values.
func runSerial(prog *ir.Program, pkts [][]int64) ([][]int64, [][]int64) {
	m := banzai.NewMachine(prog)
	outs := make([][]int64, len(pkts))
	for i, fields := range pkts {
		env := ir.NewEnv(prog)
		copy(env.Fields, fields)
		m.Process(int64(i), env)
		outs[i] = append([]int64(nil), env.Fields...)
	}
	return m.Regs().Snapshot(), outs
}

// TestTransformPreservesSemantics: the MP5-compiled program, executed
// serially, must produce exactly the same final registers and packet
// headers as the Banzai-compiled program, for all four applications and
// the paper's running example.
func TestTransformPreservesSemantics(t *testing.T) {
	programs := map[string]string{
		"fig3":      fig3Program,
		"flowlet":   flowletProgram,
		"conga":     congaProgram,
		"sequencer": seqProgram,
	}
	rng := rand.New(rand.NewSource(42))
	for name, src := range programs {
		t.Run(name, func(t *testing.T) {
			ban, mp := compileBoth(t, src)
			pkts := make([][]int64, 500)
			for i := range pkts {
				fields := make([]int64, len(ban.Fields))
				for j := range fields {
					fields[j] = int64(rng.Intn(1000))
				}
				pkts[i] = fields
			}
			regsB, outB := runSerial(ban, pkts)
			regsM, outM := runSerial(mp, pkts)
			for r := range regsB {
				for i := range regsB[r] {
					if regsB[r][i] != regsM[r][i] {
						t.Fatalf("register %s[%d]: banzai=%d mp5=%d",
							ban.Regs[r].Name, i, regsB[r][i], regsM[r][i])
					}
				}
			}
			for p := range outB {
				for f := range outB[p] {
					if outB[p][f] != outM[p][f] {
						t.Fatalf("packet %d field %s: banzai=%d mp5=%d",
							p, ban.Fields[f], outB[p][f], outM[p][f])
					}
				}
			}
		})
	}
}

// genRandomProgram emits a random but valid Domino program exercising
// conditionals, ternaries, builtins, and multiple register arrays with
// header-derived indices.
func genRandomProgram(rng *rand.Rand) string {
	nFields := 2 + rng.Intn(4)
	nRegs := 1 + rng.Intn(3)
	src := "struct Packet {"
	for i := 0; i < nFields; i++ {
		src += fmt.Sprintf(" int f%d;", i)
	}
	src += " };\n"
	sizes := make([]int, nRegs)
	for i := 0; i < nRegs; i++ {
		sizes[i] = []int{2, 4, 8, 16}[rng.Intn(4)]
		src += fmt.Sprintf("int r%d[%d] = {%d};\n", i, sizes[i], rng.Intn(10))
	}
	field := func() string { return fmt.Sprintf("p.f%d", rng.Intn(nFields)) }
	regRef := func() string {
		r := rng.Intn(nRegs)
		return fmt.Sprintf("r%d[%s %% %d]", r, field(), sizes[r])
	}
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 {
			switch rng.Intn(3) {
			case 0:
				return fmt.Sprintf("%d", rng.Intn(20))
			case 1:
				return field()
			default:
				return regRef()
			}
		}
		switch rng.Intn(6) {
		case 0:
			op := []string{"+", "-", "*", "&", "|", "^"}[rng.Intn(6)]
			return fmt.Sprintf("(%s %s %s)", expr(depth-1), op, expr(depth-1))
		case 1:
			op := []string{"==", "!=", "<", ">", "<=", ">="}[rng.Intn(6)]
			return fmt.Sprintf("(%s %s %s)", expr(depth-1), op, expr(depth-1))
		case 2:
			return fmt.Sprintf("(%s ? %s : %s)", expr(depth-1), expr(depth-1), expr(depth-1))
		case 3:
			return fmt.Sprintf("hash2(%s, %s) %% 16", field(), field())
		case 4:
			return fmt.Sprintf("max(%s, %s)", expr(depth-1), expr(depth-1))
		default:
			return expr(depth - 1)
		}
	}
	src += "void f (struct Packet p) {\n"
	nStmts := 1 + rng.Intn(5)
	var stmt func(depth int) string
	stmt = func(depth int) string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("    %s = %s;\n", field(), expr(2))
		case 1:
			return fmt.Sprintf("    %s = %s;\n", regRef(), expr(2))
		default:
			s := fmt.Sprintf("    if (%s) {\n    %s    }", expr(1), stmt(depth-1))
			if depth > 0 && rng.Intn(2) == 0 {
				s += fmt.Sprintf(" else {\n    %s    }", stmt(depth-1))
			}
			return s + "\n"
		}
	}
	for i := 0; i < nStmts; i++ {
		src += stmt(1)
	}
	src += "}\n"
	return src
}

// TestTransformPreservesSemanticsRandom is the property-based version of
// the semantics test: 200 random programs, each run on 100 random packets.
func TestTransformPreservesSemanticsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		src := genRandomProgram(rng)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v\nprogram:\n%s", trial, r, src)
				}
			}()
			Compile(src, Options{Target: TargetBanzai, MaxStages: 64})
			Compile(src, Options{Target: TargetMP5, MaxStages: 64})
		}()
		ban, err := Compile(src, Options{Target: TargetBanzai, MaxStages: 64})
		if err != nil {
			t.Fatalf("trial %d: banzai compile failed:\n%s\n%v", trial, src, err)
		}
		mp, err := Compile(src, Options{Target: TargetMP5, MaxStages: 64})
		if err != nil {
			t.Fatalf("trial %d: mp5 compile failed:\n%s\n%v", trial, src, err)
		}
		pkts := make([][]int64, 100)
		for i := range pkts {
			fields := make([]int64, len(ban.Fields))
			for j := range fields {
				fields[j] = int64(rng.Intn(64))
			}
			pkts[i] = fields
		}
		regsB, outB := runSerial(ban, pkts)
		regsM, outM := runSerial(mp, pkts)
		for r := range regsB {
			for i := range regsB[r] {
				if regsB[r][i] != regsM[r][i] {
					t.Fatalf("trial %d: register r%d[%d]: banzai=%d mp5=%d\nprogram:\n%s\nbanzai:\n%s\nmp5:\n%s",
						trial, r, i, regsB[r][i], regsM[r][i], src, ban.Dump(), mp.Dump())
				}
			}
		}
		for p := range outB {
			for f := range outB[p] {
				if outB[p][f] != outM[p][f] {
					t.Fatalf("trial %d: packet %d field %d: banzai=%d mp5=%d\nprogram:\n%s",
						trial, p, f, outB[p][f], outM[p][f], src)
				}
			}
		}
	}
}

func TestStageBudgetEnforced(t *testing.T) {
	// A chain of dependent register accesses needs one stage each; with
	// MaxStages=2 the compile must fail cleanly.
	src := `
struct Packet { int x; };
int a[4] = {0};
int b[4] = {0};
int c[4] = {0};
void f (struct Packet p) {
    p.x = a[p.x % 4];
    p.x = b[p.x % 4];
    p.x = c[p.x % 4];
}`
	if _, err := Compile(src, Options{Target: TargetMP5, MaxStages: 2}); err == nil {
		t.Fatal("compile succeeded with impossible stage budget")
	}
	if _, err := Compile(src, Options{Target: TargetMP5, MaxStages: 16}); err != nil {
		t.Fatalf("compile failed with adequate budget: %v", err)
	}
}

func TestStatelessProgram(t *testing.T) {
	src := `
struct Packet { int a; int b; };
void f (struct Packet p) {
    p.b = p.a * 2 + 1;
}`
	mp := MustCompile(src, Options{Target: TargetMP5})
	if len(mp.Accesses) != 0 {
		t.Errorf("stateless program has %d accesses", len(mp.Accesses))
	}
	if got := len(mp.StatefulStages()); got != 0 {
		t.Errorf("stateless program has %d stateful stages", got)
	}
}

func TestAccessesInStageOrder(t *testing.T) {
	_, mp := compileBoth(t, flowletProgram)
	for i := 1; i < len(mp.Accesses); i++ {
		if mp.Accesses[i].Stage < mp.Accesses[i-1].Stage {
			t.Fatalf("accesses out of stage order: %+v", mp.Accesses)
		}
	}
}
