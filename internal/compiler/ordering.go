package compiler

import (
	"fmt"

	"mp5/internal/ir"
)

// OrderGuardName is the register array AddOrderingStage appends.
const OrderGuardName = "__order_guard"

// AddOrderingStage appends the paper's re-ordering fix (§3.4, "Handling
// starvation and packet re-ordering") to an MP5-compiled program: a dummy
// stateful operation in a new final pipeline stage, indexed by the hash of
// the given flow-identifying header fields. Every packet then generates a
// phantom for the guard, and since phantoms are queued in arrival order,
// packets of one flow leave the processing pipeline in arrival order even
// when stateless-over-stateful prioritization would otherwise reorder them.
//
// size is the guard table size (flows hash onto it); fields must name
// existing header fields. The program is modified in place.
func AddOrderingStage(prog *ir.Program, size int, fields ...string) error {
	if prog.ResolutionStages == 0 {
		return fmt.Errorf("compiler: ordering stage requires an MP5-compiled program")
	}
	if size <= 0 {
		return fmt.Errorf("compiler: ordering guard needs a positive size")
	}
	if len(fields) == 0 || len(fields) > 3 {
		return fmt.Errorf("compiler: ordering guard takes 1–3 flow fields, got %d", len(fields))
	}
	if prog.RegIndex(OrderGuardName) >= 0 {
		return fmt.Errorf("compiler: program already has an ordering stage")
	}
	ops := make([]ir.Operand, 3)
	for i := range ops {
		ops[i] = ir.Const(0)
	}
	for i, name := range fields {
		f := prog.FieldIndex(name)
		if f < 0 {
			return fmt.Errorf("compiler: unknown flow field %q", name)
		}
		ops[i] = ir.Field(f)
	}

	// Resolution-stage index computation: idx = hash3(f...) % size.
	hashT := ir.Temp(prog.NumTemps)
	idxT := ir.Temp(prog.NumTemps + 1)
	tickT := ir.Temp(prog.NumTemps + 2)
	prog.NumTemps += 3
	res0 := &prog.Stages[0]
	res0.Instrs = append(res0.Instrs,
		ir.Instr{Op: ir.OpHash3, Dst: hashT, A: ops[0], B: ops[1], C: ops[2], Reg: -1},
		ir.Instr{Op: ir.OpMod, Dst: idxT, A: hashT, B: ir.Const(int64(size)), Reg: -1},
	)

	// New final stage: a counting touch of the guard entry. The value is
	// never read by the program; the access exists purely to force a
	// phantom per packet per flow.
	regID := len(prog.Regs)
	prog.Regs = append(prog.Regs, ir.RegInfo{
		Name:    OrderGuardName,
		ID:      regID,
		Size:    size,
		Stage:   len(prog.Stages),
		Sharded: true,
	})
	prog.Stages = append(prog.Stages, ir.Stage{Instrs: []ir.Instr{
		{Op: ir.OpRdReg, Dst: tickT, Reg: regID, Idx: idxT},
		{Op: ir.OpAdd, Dst: tickT, A: tickT, B: ir.Const(1), Reg: -1},
		{Op: ir.OpWrReg, Reg: regID, Idx: idxT, A: tickT},
	}})
	prog.Accesses = append(prog.Accesses, ir.Access{
		Reg:            regID,
		Stage:          len(prog.Stages) - 1,
		Idx:            idxT,
		PredResolvable: true,
	})
	return prog.Validate()
}
