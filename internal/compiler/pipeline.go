package compiler

import (
	"sort"

	"mp5/internal/ir"
)

// pvsm is the Pipelined Virtual Switch Machine: the TAC annotated with a
// dependency graph, stateful clusters, and a level (stage) per instruction,
// with no resource limits applied yet.
type pvsm struct {
	t *tac
	// deps[i] lists instruction indices i depends on (RAW/WAR/WAW).
	deps [][]int
	// cluster[i] is the stateful-cluster id of instruction i, or -1.
	cluster []int
	// clusterRegs[c] lists the register-array ids cluster c touches.
	clusterRegs [][]int
	// level[i] is the stage assigned to instruction i.
	level []int
	// numLevels is the pipeline depth.
	numLevels int
}

// location is a dependency-analysis storage key.
type location struct {
	kind ir.OperandKind // KindField or KindTemp; KindNone encodes registers
	id   int            // field/temp id, or register-array id
}

func regLoc(reg int) location { return location{kind: ir.KindNone, id: reg} }

func opLoc(o ir.Operand) (location, bool) {
	if o.Kind == ir.KindField || o.Kind == ir.KindTemp {
		return location{kind: o.Kind, id: o.ID}, true
	}
	return location{}, false
}

// instrReads returns the locations instruction i reads.
func instrReads(in *ir.Instr) []location {
	var locs []location
	add := func(o ir.Operand) {
		if l, ok := opLoc(o); ok {
			locs = append(locs, l)
		}
	}
	add(in.A)
	add(in.B)
	add(in.C)
	add(in.Idx)
	add(in.Pred)
	if in.Op == ir.OpRdReg {
		locs = append(locs, regLoc(in.Reg))
	}
	return locs
}

// instrWrites returns the locations instruction i writes.
func instrWrites(in *ir.Instr) []location {
	if in.Op == ir.OpWrReg {
		return []location{regLoc(in.Reg)}
	}
	if l, ok := opLoc(in.Dst); ok {
		return []location{l}
	}
	return nil
}

// buildDeps computes the dependency edges over the TAC: read-after-write,
// write-after-write and write-after-read on every field, temp and register
// array (register dependencies are tracked at whole-array granularity,
// which is what forces atomic fusion later).
func buildDeps(t *tac) [][]int {
	n := len(t.instrs)
	deps := make([][]int, n)
	lastWrite := map[location]int{}
	lastReads := map[location][]int{}
	addDep := func(i, j int) {
		if j < 0 || j == i {
			return
		}
		for _, d := range deps[i] {
			if d == j {
				return
			}
		}
		deps[i] = append(deps[i], j)
	}
	for i := range t.instrs {
		in := &t.instrs[i]
		for _, l := range instrReads(in) {
			if w, ok := lastWrite[l]; ok {
				addDep(i, w) // RAW
			}
			lastReads[l] = append(lastReads[l], i)
		}
		for _, l := range instrWrites(in) {
			if w, ok := lastWrite[l]; ok {
				addDep(i, w) // WAW
			}
			for _, r := range lastReads[l] {
				addDep(i, r) // WAR
			}
			lastWrite[l] = i
			lastReads[l] = nil
		}
	}
	return deps
}

// buildClusters groups instructions into atomic stateful clusters: for each
// register array R, every read/write of R plus every instruction on a
// dependency path from a read of R to a write of R must share a stage
// (Banzai's "atomic state operations" — the read-modify-write finishes
// within one stage). Overlapping clusters are merged; a merged cluster that
// touches several arrays forces those arrays to be co-located (§3.3's
// conservative fallback when serialization is impossible).
func buildClusters(t *tac, deps [][]int) (cluster []int, clusterRegs [][]int) {
	n := len(t.instrs)

	// reach[i][j]: j transitively depends on i. O(n^2/64) bitsets.
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	for i := range reach {
		reach[i] = make([]uint64, words)
	}
	set := func(bs []uint64, j int) { bs[j/64] |= 1 << (uint(j) % 64) }
	get := func(bs []uint64, j int) bool { return bs[j/64]&(1<<(uint(j)%64)) != 0 }
	// Process in order: deps point backwards, so when handling j all
	// reach sets of its deps are complete for predecessors; propagate
	// forward instead: for j, mark j reachable from each dep and union.
	for j := 0; j < n; j++ {
		for _, d := range deps[j] {
			set(reach[d], j)
		}
	}
	// Transitive closure via reverse topological order (indices are
	// already topologically ordered since deps point backwards).
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			if get(reach[i], j) {
				for w := 0; w < words; w++ {
					reach[i][w] |= reach[j][w]
				}
			}
		}
	}

	// Union-find over instructions.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Seed: all instructions touching one register array share a stage.
	for r := range t.regs {
		first := -1
		for i := range t.instrs {
			in := &t.instrs[i]
			if in.Op.IsStateful() && in.Reg == r {
				if first < 0 {
					first = i
				} else {
					union(first, i)
				}
			}
		}
	}

	// Fixed point over two closure rules.
	//
	// Rule 1 (sandwich): any instruction on a dependency path between
	// two members of the same component joins that component — it would
	// otherwise need a stage strictly between two equal stages.
	//
	// Rule 2 (cycle merge): two components that reach each other (A has
	// a member reaching a member of B, and vice versa, possibly through
	// different instructions) must merge: the condensed stage graph
	// would otherwise contain a cycle, which a feed-forward pipeline
	// cannot realize.
	stateful := make([]bool, n)
	for i := range t.instrs {
		stateful[i] = t.instrs[i].Op.IsStateful()
	}
	for {
		changed := false
		// Gather current stateful components.
		members := map[int][]int{}
		for i := 0; i < n; i++ {
			if !stateful[i] {
				continue
			}
			members[find(i)] = append(members[find(i)], i)
		}
		// Rule 2: merge mutually-reachable components.
		roots := make([]int, 0, len(members))
		for r := range members {
			roots = append(roots, r)
		}
		sort.Ints(roots)
		compReaches := func(a, b int) bool {
			for _, x := range members[a] {
				for _, y := range members[b] {
					if get(reach[x], y) {
						return true
					}
				}
			}
			return false
		}
		for i := 0; i < len(roots); i++ {
			for j := i + 1; j < len(roots); j++ {
				a, b := roots[i], roots[j]
				if find(a) == find(b) {
					continue
				}
				if compReaches(a, b) && compReaches(b, a) {
					union(a, b)
					changed = true
				}
			}
		}
		// Rule 1: pull sandwiched instructions into components.
		if !changed {
			for m := 0; m < n; m++ {
				for root, mem := range members {
					if find(m) == find(root) {
						continue
					}
					fromC, toC := false, false
					for _, a := range mem {
						if get(reach[a], m) {
							fromC = true
						}
						if get(reach[m], a) {
							toC = true
						}
						if fromC && toC {
							break
						}
					}
					if fromC && toC {
						union(m, root)
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Components containing stateful instructions become clusters.
	isStatefulRoot := map[int]bool{}
	for i := 0; i < n; i++ {
		if stateful[i] {
			isStatefulRoot[find(i)] = true
		}
	}
	cluster = make([]int, n)
	for i := range cluster {
		cluster[i] = -1
	}
	rootToCluster := map[int]int{}
	for i := range t.instrs {
		root := find(i)
		if !isStatefulRoot[root] {
			continue
		}
		c, ok := rootToCluster[root]
		if !ok {
			c = len(clusterRegs)
			rootToCluster[root] = c
			clusterRegs = append(clusterRegs, nil)
		}
		cluster[i] = c
		if in := &t.instrs[i]; in.Op.IsStateful() {
			found := false
			for _, r := range clusterRegs[c] {
				if r == in.Reg {
					found = true
				}
			}
			if !found {
				clusterRegs[c] = append(clusterRegs[c], in.Reg)
			}
		}
	}
	for c := range clusterRegs {
		sort.Ints(clusterRegs[c])
	}
	return cluster, clusterRegs
}

// levelize assigns each instruction a stage: the longest dependency path to
// it, with all instructions of one cluster forced to the cluster's maximum
// level. preassigned, when non-nil, gives minimum levels for hoisted
// resolution code; floor is the minimum level for all other instructions;
// clusterMin gives per-cluster minimum levels (used to serialize sharded
// register arrays into distinct stages).
func levelize(t *tac, deps [][]int, cluster []int, preassigned map[int]int, floor int, clusterMin map[int]int) []int {
	n := len(t.instrs)
	level := make([]int, n)
	// Iterate to a fixed point: cluster fusion can raise members, which
	// can raise their dependents, which can raise other clusters.
	for iter := 0; ; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			want := floor
			if pre, ok := preassigned[i]; ok {
				want = pre
			}
			for _, d := range deps[i] {
				ld := level[d] + 1
				if cluster[i] >= 0 && cluster[d] == cluster[i] {
					ld = level[d] // same cluster: same stage
				}
				if ld > want {
					want = ld
				}
			}
			if want > level[i] {
				level[i] = want
				changed = true
			}
		}
		// Fuse clusters upward.
		maxLvl := map[int]int{}
		for c, m := range clusterMin {
			maxLvl[c] = m
		}
		for i := 0; i < n; i++ {
			if c := cluster[i]; c >= 0 && level[i] > maxLvl[c] {
				maxLvl[c] = level[i]
			}
		}
		for i := 0; i < n; i++ {
			if c := cluster[i]; c >= 0 {
				if _, pinned := preassigned[i]; !pinned && level[i] < maxLvl[c] {
					level[i] = maxLvl[c]
					changed = true
				}
			}
		}
		if !changed {
			return level
		}
		if iter > 4*n+16 {
			panic("compiler: levelize failed to converge")
		}
	}
}

// buildPVSM runs dependency analysis, clustering, and levelling on the TAC.
func buildPVSM(t *tac) *pvsm {
	deps := buildDeps(t)
	cluster, clusterRegs := buildClusters(t, deps)
	level := levelize(t, deps, cluster, nil, 0, nil)
	p := &pvsm{t: t, deps: deps, cluster: cluster, clusterRegs: clusterRegs, level: level}
	p.numLevels = 0
	for _, l := range level {
		if l+1 > p.numLevels {
			p.numLevels = l + 1
		}
	}
	if p.numLevels == 0 {
		p.numLevels = 1
	}
	return p
}

// stagesFromLevels packages the levelled TAC into ir.Stages, preserving
// original instruction order within a stage.
func stagesFromLevels(t *tac, level []int, numLevels int) []ir.Stage {
	stages := make([]ir.Stage, numLevels)
	for i := range t.instrs {
		s := level[i]
		stages[s].Instrs = append(stages[s].Instrs, t.instrs[i])
	}
	return stages
}
