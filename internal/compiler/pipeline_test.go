package compiler

import (
	"testing"

	"mp5/internal/domino"
	"mp5/internal/ir"
)

func preprocessSrc(t *testing.T, src string) *tac {
	t.Helper()
	f, err := domino.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tc, err := preprocess(f)
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	return tc
}

func TestPreprocessSSA(t *testing.T) {
	// Every temp must be written exactly once (SSA), and fields must be
	// written only by trailing write-back moves.
	tc := preprocessSrc(t, `
struct Packet { int a; int b; };
int r [4] = {0};
void f (struct Packet p) {
    p.a = p.a + 1;
    if (p.a > 2) { p.b = p.a * 2; } else { p.b = 3; }
    r[p.b % 4] = p.a;
    p.a = p.b - 1;
}`)
	writes := map[int]int{}
	for i, in := range tc.instrs {
		if in.Dst.Kind == ir.KindTemp {
			writes[in.Dst.ID]++
		}
		if in.Dst.Kind == ir.KindField && i < tc.writebackStart {
			t.Errorf("field written before write-back section: instr %d %v", i, in)
		}
	}
	for id, n := range writes {
		if n != 1 {
			t.Errorf("temp t%d written %d times (SSA violated)", id, n)
		}
	}
}

func TestPreprocessCSE(t *testing.T) {
	// The same index expression appearing three times must lower to one
	// temp (this is what makes the access index resolvable).
	tc := preprocessSrc(t, `
struct Packet { int x; };
int r [8] = {0};
void f (struct Packet p) {
    r[p.x % 8] = r[p.x % 8] + r[p.x % 8];
}`)
	mods := 0
	for _, in := range tc.instrs {
		if in.Op == ir.OpMod {
			mods++
		}
	}
	if mods != 1 {
		t.Errorf("p.x %% 8 lowered %d times, want 1 (CSE)", mods)
	}
}

func TestBuildDepsRAWandWAR(t *testing.T) {
	tc := preprocessSrc(t, `
struct Packet { int a; };
int r [2] = {0};
void f (struct Packet p) {
    p.a = r[0] + 1;
    r[0] = p.a;
}`)
	deps := buildDeps(tc)
	// Find the read and write of r.
	rd, wr := -1, -1
	for i, in := range tc.instrs {
		if in.Op == ir.OpRdReg {
			rd = i
		}
		if in.Op == ir.OpWrReg {
			wr = i
		}
	}
	if rd < 0 || wr < 0 {
		t.Fatal("missing register ops")
	}
	has := func(i, j int) bool {
		for _, d := range deps[i] {
			if d == j {
				return true
			}
		}
		return false
	}
	if !has(wr, rd) {
		t.Errorf("write must depend on the read (WAR on the array + RAW via the value)")
	}
}

func TestClusterFusesReadModifyWrite(t *testing.T) {
	tc := preprocessSrc(t, `
struct Packet { int x; };
int c [4] = {0};
void f (struct Packet p) {
    c[p.x % 4] = c[p.x % 4] * 3 + 1;
}`)
	deps := buildDeps(tc)
	cluster, regs := buildClusters(tc, deps)
	if len(regs) != 1 {
		t.Fatalf("clusters = %d, want 1", len(regs))
	}
	// The read, the multiply, the add, and the write must share the
	// cluster (atomic read-modify-write).
	members := 0
	for i, c := range cluster {
		if c == 0 {
			members++
			_ = i
		}
	}
	if members < 4 {
		t.Errorf("cluster has %d members, want >= 4 (rd, mul, add, wr)", members)
	}
	level := levelize(tc, deps, cluster, nil, 0, nil)
	var lvl = -1
	for i, c := range cluster {
		if c != 0 {
			continue
		}
		if lvl < 0 {
			lvl = level[i]
		} else if level[i] != lvl {
			t.Errorf("cluster members on levels %d and %d; must fuse", lvl, level[i])
		}
	}
}

func TestLevelizeRespectsDependencies(t *testing.T) {
	tc := preprocessSrc(t, `
struct Packet { int a; int b; };
int r1 [2] = {0};
int r2 [2] = {0};
void f (struct Packet p) {
    p.a = r1[p.a % 2];
    r2[p.b % 2] = p.a;
}`)
	deps := buildDeps(tc)
	cluster, _ := buildClusters(tc, deps)
	level := levelize(tc, deps, cluster, nil, 0, nil)
	for i, ds := range deps {
		for _, d := range ds {
			sameCluster := cluster[i] >= 0 && cluster[i] == cluster[d]
			if sameCluster {
				if level[i] != level[d] {
					t.Errorf("same-cluster instrs %d,%d on different levels", i, d)
				}
			} else if level[i] <= level[d] {
				t.Errorf("instr %d (level %d) depends on %d (level %d)", i, level[i], d, level[d])
			}
		}
	}
	// r2's cluster must come after r1's (data dependency through p.a).
	var l1, l2 = -1, -1
	for i, in := range tc.instrs {
		if in.Op.IsStateful() && in.Reg == 0 {
			l1 = level[i]
		}
		if in.Op.IsStateful() && in.Reg == 1 {
			l2 = level[i]
		}
	}
	if l2 <= l1 {
		t.Errorf("r2 (level %d) must follow r1 (level %d)", l2, l1)
	}
}

func TestClusterMinForcesSerialization(t *testing.T) {
	tc := preprocessSrc(t, `
struct Packet { int a; int b; };
int r1 [2] = {0};
int r2 [2] = {0};
void f (struct Packet p) {
    r1[p.a % 2] = p.a;
    r2[p.b % 2] = p.b;
}`)
	deps := buildDeps(tc)
	cluster, regs := buildClusters(tc, deps)
	if len(regs) != 2 {
		t.Fatalf("clusters = %d", len(regs))
	}
	// Without constraints both clusters share a level; with clusterMin
	// the second is pushed down.
	free := levelize(tc, deps, cluster, nil, 0, nil)
	var lv [2]int
	for i, in := range tc.instrs {
		if in.Op.IsStateful() {
			lv[in.Reg] = free[i]
		}
	}
	if lv[0] != lv[1] {
		t.Fatalf("independent writes should level together, got %v", lv)
	}
	forced := levelize(tc, deps, cluster, nil, 0, map[int]int{1: lv[0] + 1})
	for i, in := range tc.instrs {
		if in.Op.IsStateful() && in.Reg == 1 && forced[i] != lv[0]+1 {
			t.Errorf("clusterMin ignored: level %d", forced[i])
		}
	}
}

// TestTransformHoistKeepsResolutionStateless: nothing stateful may end up
// in the resolution prefix, for a spread of programs.
func TestTransformHoistKeepsResolutionStateless(t *testing.T) {
	for _, src := range []string{fig3Program, flowletProgram, congaProgram, seqProgram} {
		prog := MustCompile(src, Options{Target: TargetMP5})
		for si := 0; si < prog.ResolutionStages; si++ {
			for _, in := range prog.Stages[si].Instrs {
				if in.Op.IsStateful() {
					t.Errorf("stateful op in resolution stage %d: %v", si, in)
				}
			}
		}
		// The final resolution stage is the phantom-generation stage
		// and must carry no ALU work of its own.
		if n := len(prog.Stages[prog.ResolutionStages-1].Instrs); n != 0 {
			t.Errorf("phantom-generation stage has %d instructions", n)
		}
	}
}

// TestSlices checks backward-slice computation directly.
func TestSlices(t *testing.T) {
	tc := preprocessSrc(t, `
struct Packet { int a; int b; };
int r [4] = {0};
void f (struct Packet p) {
    p.b = r[0];
    r[(p.a * 3 + p.b) % 4] = 1;
}`)
	writer := tempWriters(tc)
	// The write's index depends on p.b, which came from a register
	// read: the slice must be stateful.
	for _, in := range tc.instrs {
		if in.Op == ir.OpWrReg {
			_, pure := sliceOf(tc, writer, in.Idx)
			if pure {
				t.Error("index slice through a register read reported stateless")
			}
		}
	}
	// And the whole-program compile must therefore pin the array.
	prog := MustCompile(`
struct Packet { int a; int b; };
int r [4] = {0};
void f (struct Packet p) {
    p.b = r[0];
    r[(p.a * 3 + p.b) % 4] = 1;
}`, Options{Target: TargetMP5})
	if prog.Regs[0].Sharded {
		t.Error("array with stateful index computation must be pinned")
	}
}
