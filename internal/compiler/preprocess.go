// Package compiler lowers Domino programs to staged Banzai/MP5 pipeline
// configurations, mirroring the paper's compiler workflow (Figure 5):
//
//	Domino source
//	  → Preprocessing   (AST → predicated three-address code)
//	  → Pipelining      (TAC → PVSM: dependency levelling, stateful fusion)
//	  → PVSM-to-PVSM    (MP5 only: preemptive address resolution, §3.3)
//	  → Code generation (resource checks → ir.Program)
package compiler

import (
	"fmt"

	"mp5/internal/domino"
	"mp5/internal/ir"
)

// tac is the preprocessed program: a flat predicated three-address code in
// SSA form. Temporaries are single-assignment; packet fields are read only
// as initial values and written only by the trailing write-back moves, so
// instructions can be reordered freely subject to data dependencies.
type tac struct {
	file     *domino.File
	fields   []string
	regs     []ir.RegInfo
	tables   []ir.TableInfo
	instrs   []ir.Instr
	numTemps int
	// writebackStart is the index of the first field write-back move.
	writebackStart int
}

// preprocessor carries the state of the AST → TAC lowering.
type preprocessor struct {
	t *tac
	// fieldVal maps field id → the operand currently holding its value.
	fieldVal []ir.Operand
	regID    map[string]int
	fieldID  map[string]int
	tableID  map[string]int
	// cse value-numbers pure instructions: identical (op, operands)
	// re-use the temp of the first occurrence. This is what unifies
	// repeated index expressions (e.g. p.h3 % 4 written three times)
	// into a single resolvable temp.
	cse map[cseKey]ir.Operand
}

// cseKey identifies a pure computation for value numbering. reg
// distinguishes lookups of different match tables (0 otherwise).
type cseKey struct {
	op      ir.Op
	a, b, c ir.Operand
	reg     int
}

// preprocess lowers the parsed file to SSA TAC with if-conversion:
// branches become predicated instructions, field assignments become
// select-based merges, and register writes carry the branch predicate.
func preprocess(f *domino.File) (*tac, error) {
	t := &tac{file: f, fields: append([]string(nil), f.FieldNames...)}
	p := &preprocessor{
		t:       t,
		regID:   make(map[string]int, len(f.Regs)),
		fieldID: make(map[string]int, len(f.FieldNames)),
		tableID: make(map[string]int, len(f.Tables)),
		cse:     make(map[cseKey]ir.Operand),
	}
	for i, name := range f.FieldNames {
		p.fieldID[name] = i
	}
	for i, r := range f.Regs {
		t.regs = append(t.regs, ir.RegInfo{
			Name: r.Name, ID: i, Size: r.Size,
			Init: append([]int64(nil), r.Init...),
			// Sharded is decided by the MP5 transformer; a plain
			// Banzai compilation leaves arrays unsharded.
			Sharded: false,
			Stage:   -1,
		})
		p.regID[r.Name] = i
	}
	for i, tb := range f.Tables {
		t.tables = append(t.tables, ir.TableInfo{
			Name: tb.Name, ID: i, Keys: tb.Keys, Default: tb.Default,
		})
		p.tableID[tb.Name] = i
	}
	p.fieldVal = make([]ir.Operand, len(f.FieldNames))
	for i := range p.fieldVal {
		p.fieldVal[i] = ir.Field(i)
	}
	if err := p.stmts(f.Body, ir.None()); err != nil {
		return nil, err
	}
	t.writebackStart = len(t.instrs)
	for i, v := range p.fieldVal {
		if v.Kind == ir.KindField && v.ID == i {
			continue // never reassigned
		}
		t.emit(ir.Instr{Op: ir.OpMov, Dst: ir.Field(i), A: v, Reg: -1})
	}
	return t, nil
}

func (t *tac) emit(in ir.Instr) ir.Operand {
	switch in.Op {
	case ir.OpRdReg, ir.OpWrReg, ir.OpLookup:
		// Reg carries the register-array or match-table id.
	default:
		in.Reg = -1
	}
	t.instrs = append(t.instrs, in)
	return in.Dst
}

func (t *tac) newTemp() ir.Operand {
	op := ir.Temp(t.numTemps)
	t.numTemps++
	return op
}

// emitPure emits a pure (stateless, unpredicated) instruction with value
// numbering: a second occurrence of the same computation re-uses the temp
// of the first. Pure instructions always execute, so reuse across branches
// is safe.
func (p *preprocessor) emitPure(op ir.Op, a, b, c ir.Operand) ir.Operand {
	key := cseKey{op: op, a: a, b: b, c: c}
	if v, ok := p.cse[key]; ok {
		return v
	}
	dst := p.t.newTemp()
	p.t.emit(ir.Instr{Op: op, Dst: dst, A: a, B: b, C: c})
	p.cse[key] = dst
	return dst
}

// emitPureTable emits a value-numbered match-table lookup. Tables are
// read-only in the data plane, so lookups are pure and freely hoistable
// (the Figure-5 "Match" evaluation moves into the resolution stages when
// it feeds a register index or visit predicate).
func (p *preprocessor) emitPureTable(tbl int, a, b, c ir.Operand) ir.Operand {
	key := cseKey{op: ir.OpLookup, a: a, b: b, c: c, reg: tbl}
	if v, ok := p.cse[key]; ok {
		return v
	}
	dst := p.t.newTemp()
	p.t.emit(ir.Instr{Op: ir.OpLookup, Dst: dst, A: a, B: b, C: c, Reg: tbl})
	p.cse[key] = dst
	return dst
}

// and combines two predicate values; None means "always".
func (p *preprocessor) and(a, b ir.Operand) ir.Operand {
	if a.IsNone() {
		return b
	}
	if b.IsNone() {
		return a
	}
	return p.emitPure(ir.OpLAnd, a, b, ir.None())
}

// not returns a temp holding the negation of predicate value c.
func (p *preprocessor) not(c ir.Operand) ir.Operand {
	return p.emitPure(ir.OpNot, c, ir.None(), ir.None())
}

func (p *preprocessor) stmts(ss []domino.Stmt, ctx ir.Operand) error {
	for _, s := range ss {
		if err := p.stmt(s, ctx); err != nil {
			return err
		}
	}
	return nil
}

func (p *preprocessor) stmt(s domino.Stmt, ctx ir.Operand) error {
	switch st := s.(type) {
	case *domino.AssignStmt:
		return p.assign(st, ctx)
	case *domino.IfStmt:
		cond, err := p.expr(st.Cond, ctx)
		if err != nil {
			return err
		}
		thenCtx := p.and(ctx, cond)
		if err := p.stmts(st.Then, thenCtx); err != nil {
			return err
		}
		if len(st.Else) > 0 {
			elseCtx := p.and(ctx, p.not(cond))
			if err := p.stmts(st.Else, elseCtx); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("compiler: unknown statement %T", s)
}

func (p *preprocessor) assign(st *domino.AssignStmt, ctx ir.Operand) error {
	switch lhs := st.LHS.(type) {
	case *domino.FieldExpr:
		v, err := p.expr(st.RHS, ctx)
		if err != nil {
			return err
		}
		id := p.fieldID[lhs.Name]
		if ctx.IsNone() {
			p.fieldVal[id] = v
			return nil
		}
		// Conditional field assignment becomes a select merge (phi).
		p.fieldVal[id] = p.emitPure(ir.OpSelect, ctx, v, p.fieldVal[id])
		return nil
	case *domino.RegExpr:
		idx, err := p.expr(lhs.Idx, ctx)
		if err != nil {
			return err
		}
		v, err := p.expr(st.RHS, ctx)
		if err != nil {
			return err
		}
		p.t.emit(ir.Instr{
			Op: ir.OpWrReg, Reg: p.regID[lhs.Name], Idx: idx, A: v, Pred: ctx,
		})
		return nil
	}
	return fmt.Errorf("compiler: bad assignment target %T", st.LHS)
}

// expr lowers an expression under predicate context ctx, returning the
// operand holding its value. Register reads are predicated by ctx so that
// the MP5 transformer can derive access predicates; when the predicate is
// false the destination temp holds a stale value, which is safe because
// every consumer is itself gated (or blended away) by the same predicate.
func (p *preprocessor) expr(e domino.Expr, ctx ir.Operand) (ir.Operand, error) {
	switch x := e.(type) {
	case *domino.NumExpr:
		return ir.Const(x.Val), nil
	case *domino.FieldExpr:
		return p.fieldVal[p.fieldID[x.Name]], nil
	case *domino.RegExpr:
		idx, err := p.expr(x.Idx, ctx)
		if err != nil {
			return ir.None(), err
		}
		dst := p.t.newTemp()
		p.t.emit(ir.Instr{
			Op: ir.OpRdReg, Dst: dst, Reg: p.regID[x.Name], Idx: idx, Pred: ctx,
		})
		return dst, nil
	case *domino.UnaryExpr:
		v, err := p.expr(x.X, ctx)
		if err != nil {
			return ir.None(), err
		}
		switch x.Op {
		case domino.TokBang:
			return p.emitPure(ir.OpNot, v, ir.None(), ir.None()), nil
		case domino.TokMinus:
			return p.emitPure(ir.OpNeg, v, ir.None(), ir.None()), nil
		default:
			return ir.None(), fmt.Errorf("compiler: unknown unary op %s", x.Op)
		}
	case *domino.BinExpr:
		// && and || are evaluated without short-circuiting: Banzai
		// atoms evaluate both sides in hardware anyway.
		l, err := p.expr(x.L, ctx)
		if err != nil {
			return ir.None(), err
		}
		r, err := p.expr(x.R, ctx)
		if err != nil {
			return ir.None(), err
		}
		op, ok := binOps[x.Op]
		if !ok {
			return ir.None(), fmt.Errorf("compiler: unknown binary op %s", x.Op)
		}
		return p.emitPure(op, l, r, ir.None()), nil
	case *domino.CondExpr:
		cond, err := p.expr(x.Cond, ctx)
		if err != nil {
			return ir.None(), err
		}
		thenCtx := p.and(ctx, cond)
		tv, err := p.expr(x.Then, thenCtx)
		if err != nil {
			return ir.None(), err
		}
		// The negated context is only materialized if the else arm
		// reads a register (the only place the predicate matters).
		elseCtx := ctx
		if domino.ExprUsesReg(x.Else) {
			elseCtx = p.and(ctx, p.not(cond))
		}
		ev, err := p.expr(x.Else, elseCtx)
		if err != nil {
			return ir.None(), err
		}
		return p.emitPure(ir.OpSelect, cond, tv, ev), nil
	case *domino.CallExpr:
		args := make([]ir.Operand, 3)
		for i := range args {
			args[i] = ir.None()
		}
		for i, a := range x.Args {
			v, err := p.expr(a, ctx)
			if err != nil {
				return ir.None(), err
			}
			args[i] = v
		}
		if tbl, isTable := p.tableID[x.Name]; isTable {
			return p.emitPureTable(tbl, args[0], args[1], args[2]), nil
		}
		ops := map[string]ir.Op{
			"hash2": ir.OpHash2, "hash3": ir.OpHash3,
			"max": ir.OpMax, "min": ir.OpMin,
		}
		op, ok := ops[x.Name]
		if !ok {
			return ir.None(), fmt.Errorf("compiler: unknown builtin %q", x.Name)
		}
		return p.emitPure(op, args[0], args[1], args[2]), nil
	}
	return ir.None(), fmt.Errorf("compiler: unknown expression %T", e)
}

var binOps = map[domino.TokKind]ir.Op{
	domino.TokPlus: ir.OpAdd, domino.TokMinus: ir.OpSub,
	domino.TokStar: ir.OpMul, domino.TokSlash: ir.OpDiv,
	domino.TokPercent: ir.OpMod, domino.TokAmp: ir.OpAnd,
	domino.TokPipe: ir.OpOr, domino.TokCaret: ir.OpXor,
	domino.TokShl: ir.OpShl, domino.TokShr: ir.OpShr,
	domino.TokEq: ir.OpEq, domino.TokNe: ir.OpNe,
	domino.TokLt: ir.OpLt, domino.TokLe: ir.OpLe,
	domino.TokGt: ir.OpGt, domino.TokGe: ir.OpGe,
	domino.TokAndAnd: ir.OpLAnd, domino.TokOrOr: ir.OpLOr,
}
