package compiler

import (
	"strings"
	"testing"

	"mp5/internal/banzai"
	"mp5/internal/ir"
)

// l3Src: the classic RMT shape — match a header against a control-plane
// table, then count per table-result. The register index flows through the
// lookup, so the whole match must hoist into the resolution stages
// (Figure 5's "Match: packet headers" box).
const l3Src = `
struct Packet { int dst; int port; };

table route (1) = 99;
int portcount [128] = {0};

void l3 (struct Packet p) {
    p.port = route(p.dst);
    portcount[p.port % 128] = portcount[p.port % 128] + 1;
}
`

func TestParseAndCompileTables(t *testing.T) {
	prog := MustCompile(l3Src, Options{Target: TargetMP5})
	if len(prog.Tables) != 1 {
		t.Fatalf("tables = %d", len(prog.Tables))
	}
	tb := prog.Tables[0]
	if tb.Name != "route" || tb.Keys != 1 || tb.Default != 99 {
		t.Fatalf("table = %+v", tb)
	}
	// The counter must stay sharded: the lookup is stateless, so the
	// index slice is preemptively resolvable.
	if !prog.Regs[0].Sharded {
		t.Fatalf("portcount not sharded despite stateless match lookup:\n%s", prog.Dump())
	}
	// And the lookup itself must sit in the resolution prefix.
	found := false
	for si := 0; si < prog.ResolutionStages; si++ {
		for _, in := range prog.Stages[si].Instrs {
			if in.Op == ir.OpLookup {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("match lookup not hoisted into resolution stages:\n%s", prog.Dump())
	}
	if !strings.Contains(prog.Dump(), "table tbl0 route(1 keys)") {
		t.Errorf("dump lacks table line:\n%s", prog.Dump())
	}
}

func TestTableExecution(t *testing.T) {
	prog := MustCompile(l3Src, Options{Target: TargetMP5})
	if err := prog.InstallTable("route", 7, 1000); err != nil {
		t.Fatal(err)
	}
	if err := prog.InstallTable("route", 12, 2000); err != nil {
		t.Fatal(err)
	}
	m := banzai.NewMachine(prog)
	portF := prog.FieldIndex("port")
	for i, c := range []struct {
		dst  int64
		port int64
	}{
		{1000, 7}, {2000, 12}, {3000, 99}, // last one misses → default
	} {
		env := ir.NewEnv(prog)
		env.Fields[prog.FieldIndex("dst")] = c.dst
		m.Process(int64(i), env)
		if env.Fields[portF] != c.port {
			t.Errorf("dst %d routed to port %d, want %d", c.dst, env.Fields[portF], c.port)
		}
	}
	counts := m.Regs().Array(0)
	if counts[7] != 1 || counts[12] != 1 || counts[99] != 1 {
		t.Errorf("per-port counters wrong: [7]=%d [12]=%d [99]=%d",
			counts[7], counts[12], counts[99])
	}
}

func TestTableCSE(t *testing.T) {
	src := `
struct Packet { int dst; int a; int b; };
table route (1) = 0;
void f (struct Packet p) {
    p.a = route(p.dst);
    p.b = route(p.dst) + 1;
}
`
	prog := MustCompile(src, Options{Target: TargetMP5})
	lookups := 0
	for _, st := range prog.Stages {
		for _, in := range st.Instrs {
			if in.Op == ir.OpLookup {
				lookups++
			}
		}
	}
	if lookups != 1 {
		t.Errorf("identical lookups lowered %d times, want 1 (CSE)", lookups)
	}
}

func TestMultiKeyTable(t *testing.T) {
	src := `
struct Packet { int sip; int dip; int proto; int act; };
table acl (3) = 1;
void f (struct Packet p) {
    p.act = acl(p.sip, p.dip, p.proto);
}
`
	prog := MustCompile(src, Options{Target: TargetMP5})
	if err := prog.InstallTable("acl", 0, 10, 20, 6); err != nil {
		t.Fatal(err)
	}
	m := banzai.NewMachine(prog)
	env := ir.NewEnv(prog)
	env.Fields[0], env.Fields[1], env.Fields[2] = 10, 20, 6
	m.Process(0, env)
	if env.Fields[3] != 0 {
		t.Errorf("3-key match failed: act = %d", env.Fields[3])
	}
	env2 := ir.NewEnv(prog)
	env2.Fields[0], env2.Fields[1], env2.Fields[2] = 10, 20, 17
	m.Process(1, env2)
	if env2.Fields[3] != 1 {
		t.Errorf("miss should hit default 1, got %d", env2.Fields[3])
	}
}

func TestInstallTableErrors(t *testing.T) {
	prog := MustCompile(l3Src, Options{Target: TargetMP5})
	if err := prog.InstallTable("nope", 1, 2); err == nil {
		t.Error("unknown table accepted")
	}
	if err := prog.InstallTable("route", 1, 2, 3); err == nil {
		t.Error("wrong key count accepted")
	}
}

func TestTableParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"zero keys", `struct Packet { int x; }; table t(0); void f (struct Packet p) { p.x = 1; }`, "key count"},
		{"four keys", `struct Packet { int x; }; table t(4); void f (struct Packet p) { p.x = 1; }`, "key count"},
		{"bad arity", `struct Packet { int x; }; table t(2); void f (struct Packet p) { p.x = t(1); }`, "matches 2 keys"},
		{"dup", `struct Packet { int x; }; table t(1); table t(1); void f (struct Packet p) { p.x = 1; }`, "duplicate table"},
		{"builtin clash", `struct Packet { int x; }; table max(1); void f (struct Packet p) { p.x = 1; }`, "shadows a builtin"},
		{"field clash", `struct Packet { int x; }; table x(1); void f (struct Packet p) { p.x = 1; }`, "collides"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, Options{Target: TargetMP5})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}
