package compiler

import (
	"fmt"
	"sort"

	"mp5/internal/ir"
)

// transformResult is the output of the PVSM-to-PVSM transformer.
type transformResult struct {
	level              []int
	numLevels          int
	resolutionStages   int
	accesses           []ir.Access
	sharded            []bool // per register array
	statefulPredicates bool
}

// sliceOf returns the backward slice of operand o: the set of instruction
// indices that (transitively) produce o's value. Fields and constants are
// pure inputs and terminate the slice. The returned map is nil for None
// operands. ok is false when the slice contains a register read, i.e. the
// value cannot be resolved preemptively in a stateless manner (§3.3).
func sliceOf(t *tac, writer map[int]int, o ir.Operand) (slice map[int]bool, stateless bool) {
	slice = map[int]bool{}
	stateless = true
	var visit func(op ir.Operand)
	var visitInstr func(i int)
	visitInstr = func(i int) {
		if slice[i] {
			return
		}
		slice[i] = true
		in := &t.instrs[i]
		if in.Op == ir.OpRdReg {
			stateless = false
		}
		visit(in.A)
		visit(in.B)
		visit(in.C)
		visit(in.Idx)
		visit(in.Pred)
	}
	visit = func(op ir.Operand) {
		if op.Kind != ir.KindTemp {
			return
		}
		if w, ok := writer[op.ID]; ok {
			visitInstr(w)
		}
	}
	visit(o)
	return slice, stateless
}

// tempWriters maps temp id → the instruction index that writes it.
// Temps are single-assignment by construction of the preprocessor.
func tempWriters(t *tac) map[int]int {
	w := map[int]int{}
	for i := range t.instrs {
		if d := t.instrs[i].Dst; d.Kind == ir.KindTemp {
			w[d.ID] = i
		}
	}
	return w
}

// regAccessInfo is the per-register analysis extracted from a cluster.
type regAccessInfo struct {
	reg     int
	cluster int
	idx     ir.Operand // common index operand, or None
	idxOK   bool       // identical across all stateful instrs
	idxPure bool       // index slice is stateless
	// visitAlways reports that the packet visits the array's stage
	// unconditionally (either truly unconditional, or conservatively
	// because the visit predicate cannot be resolved preemptively).
	visitAlways bool
	// predExact reports whether the visit decision is preemptively
	// exact. When false, MP5 conservatively emits phantoms for both
	// branches (§3.3), potentially wasting a cycle.
	predExact bool
	pred      ir.Operand // visit predicate when !visitAlways
	predNeg   bool
	idxSlice  map[int]bool
	predSlice map[int]bool
	// statefulPred reports a register op guarded by a state-dependent
	// predicate (program-level statistic matching the paper's §4.4 note).
	statefulPred bool
}

func sameOperand(a, b ir.Operand) bool {
	return a.Kind == b.Kind && a.Val == b.Val && a.ID == b.ID
}

// analyzeAccesses inspects every stateful cluster and derives, per register
// array, the index operand, visit predicate, and their resolvability.
func analyzeAccesses(t *tac, p *pvsm) []regAccessInfo {
	writer := tempWriters(t)
	var infos []regAccessInfo
	for c, regs := range p.clusterRegs {
		for _, r := range regs {
			info := regAccessInfo{reg: r, cluster: c, idxOK: true}
			var preds []predKey
			hasUncond := false
			first := true
			for i := range t.instrs {
				in := &t.instrs[i]
				if !in.Op.IsStateful() || in.Reg != r {
					continue
				}
				if first {
					info.idx = in.Idx
					first = false
				} else if !sameOperand(info.idx, in.Idx) {
					info.idxOK = false
				}
				if in.Pred.IsNone() {
					hasUncond = true
				} else {
					preds = append(preds, predKey{in.Pred, in.PredNeg})
					if _, pure := sliceOf(t, writer, in.Pred); !pure {
						info.statefulPred = true
					}
				}
			}
			if info.idxOK {
				info.idxSlice, info.idxPure = sliceOf(t, writer, info.idx)
			}
			switch {
			case hasUncond || len(preds) == 0:
				// At least one op always runs: the visit is
				// unconditional and therefore exactly known.
				info.visitAlways = true
				info.predExact = true
				info.predSlice = map[int]bool{}
			case allSamePred(preds):
				slice, pure := sliceOf(t, writer, preds[0].op)
				if pure {
					info.pred = preds[0].op
					info.predNeg = preds[0].neg
					info.predExact = true
					info.predSlice = slice
				} else {
					// Stateful predicate: conservatively
					// visit always (phantom regardless).
					info.visitAlways = true
					info.predExact = false
					info.predSlice = map[int]bool{}
				}
			default:
				// Mixed predicates across the array's ops:
				// conservatively visit always.
				info.visitAlways = true
				info.predExact = false
				info.predSlice = map[int]bool{}
			}
			infos = append(infos, info)
		}
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].reg < infos[b].reg })
	return infos
}

// predKey identifies a predicate (operand + polarity).
type predKey struct {
	op  ir.Operand
	neg bool
}

func allSamePred(preds []predKey) bool {
	for _, p := range preds[1:] {
		if !sameOperand(p.op, preds[0].op) || p.neg != preds[0].neg {
			return false
		}
	}
	return true
}

// transform applies MP5's PVSM-to-PVSM transformation (Figure 5):
//
//  1. Decide shardability per register array. An array is sharded unless
//     (a) its cluster co-locates several arrays (serialization impossible),
//     (b) its stateful instructions disagree on the index operand, or
//     (c) the index computation is itself stateful (§3.3 fallback).
//  2. Hoist the stateless backward slices of sharded indices and
//     resolvable predicates into leading resolution stages, followed by
//     one map-lookup/phantom-generation stage.
//  3. Re-level the remaining code after the resolution prefix, and
//     serialize sharded arrays into distinct stages, spilling to the
//     unsharded fallback when maxStages would be exceeded.
func transform(t *tac, p *pvsm, maxStages int) (*transformResult, error) {
	infos := analyzeAccesses(t, p)
	sharded := make([]bool, len(t.regs))
	multiReg := make([]bool, len(p.clusterRegs))
	for c, regs := range p.clusterRegs {
		multiReg[c] = len(regs) > 1
	}
	byReg := map[int]*regAccessInfo{}
	for i := range infos {
		info := &infos[i]
		byReg[info.reg] = info
		sharded[info.reg] = !multiReg[info.cluster] && info.idxOK && info.idxPure
	}

	// Hoist set: index slices of sharded arrays, predicate slices of
	// preemptively-resolvable conditional accesses.
	hoist := map[int]bool{}
	for i := range infos {
		info := &infos[i]
		if sharded[info.reg] {
			for j := range info.idxSlice {
				hoist[j] = true
			}
		}
		if info.predExact && !info.visitAlways {
			for j := range info.predSlice {
				hoist[j] = true
			}
		}
	}

	// Level the hoisted subgraph on its own (its dependencies are closed
	// within itself plus pure inputs).
	preassigned := map[int]int{}
	resLevels := 0
	if len(hoist) > 0 {
		hl := map[int]int{}
		var lvl func(i int) int
		lvl = func(i int) int {
			if v, ok := hl[i]; ok {
				return v
			}
			hl[i] = 0 // break accidental cycles defensively
			max := 0
			for _, d := range p.deps[i] {
				if hoist[d] {
					if l := lvl(d) + 1; l > max {
						max = l
					}
				}
			}
			hl[i] = max
			return max
		}
		for i := range hoist {
			lvl(i)
		}
		for i, l := range hl {
			preassigned[i] = l
			if l+1 > resLevels {
				resLevels = l + 1
			}
		}
	}
	// One extra stage performs the index-to-pipeline map lookup and
	// phantom generation (runtime behaviour keyed off the Access list).
	resolutionStages := resLevels + 1

	clusterMin := map[int]int{}
	var level []int
	for round := 0; ; round++ {
		if round > 4*len(t.regs)+16 {
			return nil, fmt.Errorf("compiler: stage serialization did not converge")
		}
		level = levelize(t, p.deps, p.cluster, preassigned, resolutionStages, clusterMin)
		numLevels := 0
		for _, l := range level {
			if l+1 > numLevels {
				numLevels = l + 1
			}
		}
		// Find a level shared by more than one sharded cluster.
		conflictLevel, conflictClusters := findShardedConflict(t, p, level, sharded)
		if conflictLevel < 0 {
			// Done: check the stage budget.
			if numLevels > maxStages {
				return nil, fmt.Errorf("compiler: program needs %d stages, target has %d: %w", numLevels, maxStages, ErrStageBudget)
			}
			res := &transformResult{
				level:            level,
				numLevels:        numLevels,
				resolutionStages: resolutionStages,
				sharded:          sharded,
			}
			for i := range infos {
				if infos[i].statefulPred {
					res.statefulPredicates = true
				}
			}
			res.accesses = buildAccessList(t, p, infos, sharded, level)
			return res, nil
		}
		if numLevels+len(conflictClusters)-1 > maxStages {
			// Not enough stages to serialize: fall back to
			// unsharded co-location for the arrays at this level.
			for _, c := range conflictClusters {
				for _, r := range p.clusterRegs[c] {
					sharded[r] = false
				}
			}
			continue
		}
		// Serialize: push every conflicting cluster after the first to
		// its own later stage.
		for n, c := range conflictClusters[1:] {
			if m := conflictLevel + n + 1; clusterMin[c] < m {
				clusterMin[c] = m
			}
		}
	}
}

// findShardedConflict returns the first level occupied by more than one
// stateful cluster where at least one of them is sharded (a sharded array
// must have its stage to itself: the packet can only be in one pipeline per
// stage, and a sharded index may live in any of them). Returns the clusters
// in cluster-id order, or (-1, nil) when no such level exists.
func findShardedConflict(t *tac, p *pvsm, level []int, sharded []bool) (int, []int) {
	byLevel := map[int][]int{}
	seen := map[[2]int]bool{}
	isSharded := func(c int) bool {
		for _, r := range p.clusterRegs[c] {
			if sharded[r] {
				return true
			}
		}
		return false
	}
	for i := range t.instrs {
		c := p.cluster[i]
		if c < 0 {
			continue
		}
		key := [2]int{level[i], c}
		if !seen[key] {
			seen[key] = true
			byLevel[level[i]] = append(byLevel[level[i]], c)
		}
	}
	var levels []int
	for l, cs := range byLevel {
		if len(cs) < 2 {
			continue
		}
		for _, c := range cs {
			if isSharded(c) {
				levels = append(levels, l)
				break
			}
		}
	}
	if len(levels) == 0 {
		return -1, nil
	}
	sort.Ints(levels)
	cs := byLevel[levels[0]]
	sort.Ints(cs)
	return levels[0], cs
}

// buildAccessList derives the per-register Access entries in stage order.
func buildAccessList(t *tac, p *pvsm, infos []regAccessInfo, sharded []bool, level []int) []ir.Access {
	// Stage of each cluster = level of any member instruction.
	clusterStage := map[int]int{}
	for i := range t.instrs {
		if c := p.cluster[i]; c >= 0 {
			clusterStage[c] = level[i]
		}
	}
	var accs []ir.Access
	for i := range infos {
		info := &infos[i]
		a := ir.Access{
			Reg:   info.reg,
			Stage: clusterStage[info.cluster],
		}
		if sharded[info.reg] {
			a.Idx = info.idx
		}
		a.PredResolvable = info.predExact
		if info.predExact && !info.visitAlways {
			a.Pred = info.pred
			a.PredNeg = info.predNeg
		}
		accs = append(accs, a)
	}
	sort.SliceStable(accs, func(a, b int) bool {
		if accs[a].Stage != accs[b].Stage {
			return accs[a].Stage < accs[b].Stage
		}
		return accs[a].Reg < accs[b].Reg
	})
	return accs
}
