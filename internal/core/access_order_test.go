package core_test

import (
	"math/rand"
	"testing"

	"mp5/internal/banzai"
	"mp5/internal/core"
	"mp5/internal/equiv"
)

// accessOrderSrc contends on two register arrays with data-dependent
// indices and a branch-guarded read-modify-write, so both the dedupe logic
// and predicate handling of the EvAccess path are exercised.
const accessOrderSrc = `
struct Packet { int a; int b; int seq; };
int gate [64] = {0};
int count [4] = {0};
void f (struct Packet p) {
    gate[p.a % 64] = gate[p.a % 64] + 1;
    if (p.b % 2 == 1) {
        count[p.b % 4] = count[p.b % 4] + 1;
        p.seq = count[p.b % 4];
    }
}
`

// accessOrderRun simulates accessOrderSrc on arch and returns the per-slot
// access order reconstructed from EvAccess events, the reference order, and
// the run result.
func accessOrderRun(t *testing.T, arch core.Arch) (got, want map[string][]int64, res *core.Result) {
	t.Helper()
	prog := compileMP5(t, accessOrderSrc)
	tr := lineRateTrace(prog, 6000, 4, 11)
	rng := rand.New(rand.NewSource(7))
	a, b := prog.FieldIndex("a"), prog.FieldIndex("b")
	for i := range tr {
		tr[i].Fields[a] = int64(rng.Intn(1024))
		tr[i].Fields[b] = int64(rng.Intn(1024))
	}
	got = map[string][]int64{}
	sim := core.NewSimulator(prog, core.Config{
		Arch: arch, Pipelines: 4, Seed: 1,
		Trace: func(e core.Event) {
			if e.Kind == core.EvAccess {
				key := banzai.AccessKey(e.Reg, e.Idx)
				got[key] = append(got[key], e.PktID)
			}
		},
	})
	return got, equiv.ReferenceOrder(prog, tr), sim.Run(tr)
}

// TestAccessEventsMatchReference: on MP5 (D4 on) the access order
// reconstructed from EvAccess events must equal the single-pipeline
// reference order exactly, slot by slot — the event stream is a faithful C1
// witness.
func TestAccessEventsMatchReference(t *testing.T) {
	for _, arch := range []core.Arch{core.ArchMP5, core.ArchIdeal, core.ArchNaive} {
		got, want, res := accessOrderRun(t, arch)
		if res.Completed != res.Injected {
			t.Fatalf("%v: loss (%d of %d)", arch, res.Completed, res.Injected)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d slots accessed, reference has %d", arch, len(got), len(want))
		}
		for key, ref := range want {
			seq := got[key]
			if len(seq) != len(ref) {
				t.Fatalf("%v: %s saw %d accesses, reference %d", arch, key, len(seq), len(ref))
			}
			for i := range ref {
				if seq[i] != ref[i] {
					t.Fatalf("%v: %s position %d: packet %d, reference %d",
						arch, key, i, seq[i], ref[i])
				}
			}
		}
	}
}

// TestAccessEventsExposeNoD4: with D4 ablated the same workload must show
// order divergence in the EvAccess stream — otherwise the oracle could
// never falsify anything.
func TestAccessEventsExposeNoD4(t *testing.T) {
	got, want, res := accessOrderRun(t, core.ArchMP5NoD4)
	if res.Completed != res.Injected {
		t.Fatalf("loss (%d of %d)", res.Completed, res.Injected)
	}
	diverged := false
	for key, ref := range want {
		seq := got[key]
		if len(seq) != len(ref) {
			diverged = true
			break
		}
		for i := range ref {
			if seq[i] != ref[i] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("no-D4 run reproduced the reference order; oracle is blind")
	}
}

// TestAccessEventsDeduped: a packet touching one slot several times within
// one stage execution (read + write of a read-modify-write) emits exactly
// one EvAccess for it.
func TestAccessEventsDeduped(t *testing.T) {
	prog := compileMP5(t, accessOrderSrc)
	tr := lineRateTrace(prog, 100, 2, 3)
	type visit struct {
		pkt   int64
		stage int
		reg   int
		idx   int
	}
	seen := map[visit]int{}
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 2,
		Trace: func(e core.Event) {
			if e.Kind == core.EvAccess {
				seen[visit{e.PktID, e.Stage, e.Reg, e.Idx}]++
			}
		},
	})
	sim.Run(tr)
	if len(seen) == 0 {
		t.Fatal("no access events")
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("packet %d stage %d r%d[%d]: %d events, want 1", v.pkt, v.stage, v.reg, v.idx, n)
		}
	}
}
