package core_test

import (
	"testing"

	"mp5/internal/core"
	"mp5/internal/equiv"
	"mp5/internal/workload"
)

// TestCrossLatencyPreservesEquivalence: any inter-pipeline link latency
// must leave functional equivalence and C1 intact — early data parks until
// its phantom lands.
func TestCrossLatencyPreservesEquivalence(t *testing.T) {
	for _, lat := range []int64{1, 2, 4, 8} {
		prog, trace := synthSetup(t, 4, 64, 4, 4000, workload.Skewed, 31)
		sim := core.NewSimulator(prog, core.Config{
			Arch: core.ArchMP5, Pipelines: 4, Seed: 3,
			CrossLatency:  lat,
			RecordOutputs: true, RecordAccessOrder: true,
		})
		res := sim.Run(trace)
		if res.Stalled {
			t.Fatalf("latency %d: stalled", lat)
		}
		if res.Completed != res.Injected {
			t.Fatalf("latency %d: completed %d of %d", lat, res.Completed, res.Injected)
		}
		if res.C1Violating != 0 {
			t.Fatalf("latency %d: %d C1 violations", lat, res.C1Violating)
		}
		if rep := equiv.Check(prog, sim, trace); !rep.Equivalent {
			t.Fatalf("latency %d: not equivalent: %v", lat, rep.Mismatches[:min(3, len(rep.Mismatches))])
		}
	}
}

// TestCrossLatencyZeroUnchanged: CrossLatency 0 must behave byte-for-byte
// like the original single-die model.
func TestCrossLatencyZeroUnchanged(t *testing.T) {
	prog, trace := synthSetup(t, 4, 64, 4, 4000, workload.Uniform, 7)
	a := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 3})
	b := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 3, CrossLatency: 0})
	ra, rb := a.Run(trace), b.Run(trace)
	if ra.Cycles != rb.Cycles || ra.Throughput != rb.Throughput || ra.MaxFIFODepth != rb.MaxFIFODepth {
		t.Fatalf("zero-latency runs diverge: %+v vs %+v", ra, rb)
	}
}

// TestCrossLatencyAddsLatencyNotLoss: slower links raise packet latency
// but (at admissible load) lose nothing.
func TestCrossLatencyAddsLatencyNotLoss(t *testing.T) {
	prog, trace := synthSetup(t, 4, 512, 4, 6000, workload.Uniform, 9)
	var prevLat float64
	for i, lat := range []int64{0, 4, 8} {
		sim := core.NewSimulator(prog, core.Config{
			Arch: core.ArchMP5, Pipelines: 4, Seed: 3, CrossLatency: lat,
		})
		res := sim.Run(trace)
		if res.Completed != res.Injected {
			t.Fatalf("latency %d: loss", lat)
		}
		if i > 0 && res.MeanLatency <= prevLat {
			t.Errorf("mean latency did not grow with link latency: %.1f after %.1f", res.MeanLatency, prevLat)
		}
		prevLat = res.MeanLatency
	}
}

// TestCrossLatencyNoD4: the no-D4 variant also routes its (un-ordered)
// data through the slow crossbar without stalling or losing packets.
func TestCrossLatencyNoD4(t *testing.T) {
	prog, trace := synthSetup(t, 2, 64, 4, 3000, workload.Uniform, 15)
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5NoD4, Pipelines: 4, Seed: 3, CrossLatency: 3,
	})
	res := sim.Run(trace)
	if res.Stalled || res.Completed != res.Injected {
		t.Fatalf("no-D4 with slow crossbar: %+v", res)
	}
}

// TestLatencyStats sanity-checks the new latency accounting.
func TestLatencyStats(t *testing.T) {
	prog, trace := synthSetup(t, 2, 512, 4, 3000, workload.Uniform, 4)
	sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 1})
	res := sim.Run(trace)
	minPossible := float64(prog.NumStages())
	if res.MeanLatency < minPossible {
		t.Errorf("mean latency %.1f below pipeline depth %v", res.MeanLatency, minPossible)
	}
	if res.P99Latency < int64(res.MeanLatency) || res.MaxLatency < res.P99Latency {
		t.Errorf("latency ordering broken: mean %.1f p99 %d max %d",
			res.MeanLatency, res.P99Latency, res.MaxLatency)
	}
}
