package core

import (
	"fmt"

	"mp5/internal/sharding"
)

// Arch selects the switch architecture to simulate.
type Arch int

const (
	// ArchMP5 is the full design: D1 homogeneity, D2 dynamic sharding,
	// D3 crossbar steering, D4 phantom-packet order enforcement.
	ArchMP5 Arch = iota
	// ArchMP5NoD4 is MP5 without preemptive order enforcement: packets
	// steer to sharded state and queue in arrival-timestamped FIFOs, but
	// nothing holds a place for delayed packets, so C1 can be violated
	// (the §4.3.2 D4 ablation).
	ArchMP5NoD4
	// ArchIdeal removes MP5's practical limitations (§3.5.2): no
	// head-of-line blocking (per-index order enforcement instead of one
	// logical FIFO) and LPT bin-packing instead of the Figure-6
	// heuristic. The sensitivity figures' upper-bound baseline.
	ArchIdeal
	// ArchNaive maps every register and every stateful packet to
	// pipeline 0 (the shared-memory strawman in D1's discussion);
	// correctness is preserved, parallelism is not.
	ArchNaive
	// ArchStaticShard is MP5 with the index-to-pipeline map frozen at
	// its random initial assignment (the §4.3.2 D2 ablation).
	ArchStaticShard
	// ArchRecirc models today's multi-pipeline switches (§2.3): static
	// port-to-pipeline mapping, statically sharded state, and packet
	// re-circulation through the whole pipeline to reach remote state.
	ArchRecirc
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case ArchMP5:
		return "mp5"
	case ArchMP5NoD4:
		return "mp5-nod4"
	case ArchIdeal:
		return "ideal"
	case ArchNaive:
		return "naive"
	case ArchStaticShard:
		return "static-shard"
	case ArchRecirc:
		return "recirculation"
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// Defaults matching the paper's simulator configuration (§4.3.1).
const (
	DefaultPorts         = 64
	DefaultPipelines     = 4
	DefaultRemapInterval = 100
	DefaultRecircDelay   = 1
)

// Config parameterizes a simulation.
type Config struct {
	// Arch is the architecture variant (default ArchMP5).
	Arch Arch
	// Pipelines is k, the number of parallel pipelines.
	Pipelines int
	// Ports is N, the number of input ports (used for the static
	// port-to-pipeline mapping of the recirculation baseline).
	Ports int
	// FIFOCap bounds each per-stage sub-FIFO (entries); 0 means
	// unbounded, the paper's adaptive sizing that avoids drops.
	FIFOCap int
	// RemapInterval is the dynamic-sharding period in cycles
	// (default 100, per §4.3.1).
	RemapInterval int64
	// Seed drives the initial random sharding assignment.
	Seed int64
	// ShardPolicy overrides the initial index placement; when zero the
	// architecture picks its natural default (round-robin for MP5,
	// random for the static and recirculation baselines, single-pipe
	// for naive).
	ShardPolicy sharding.Policy
	// shardPolicySet records an explicit policy choice.
	ShardPolicySet bool
	// RecircDelay is the extra latency (cycles) of re-entering a
	// pipeline input beyond draining the current pipeline.
	RecircDelay int64
	// RecircIngressCap bounds each pipeline's ingress buffer in the
	// recirculation baseline (today's switches drop on ingress overflow
	// rather than queueing without bound); 0 uses the default of 64.
	// Set negative for an unbounded ingress.
	RecircIngressCap int
	// StarveThreshold, when positive, drops an incoming stateless
	// packet in favour of a queued stateful packet whose head-of-FIFO
	// wait exceeds the threshold (§3.4, handling starvation).
	StarveThreshold int64
	// ECNThreshold, when positive, marks a data packet entering a
	// stage FIFO whose occupancy exceeds the threshold — the §3.4
	// congestion-notification suggestion for back-pressuring senders
	// before pipeline FIFOs overflow.
	ECNThreshold int
	// CrossLatency adds extra cycles to every inter-pipeline crossing
	// (data steering and the phantom channel alike), modelling the
	// chiplet-boundary links of §3.5.3's disaggregated-digital-logic
	// discussion. Data packets that outrun their (slower-path) phantom
	// park in the crossbar buffer until the placeholder lands, so C1
	// is preserved at any latency. 0 models a single die.
	CrossLatency int64
	// RecordAccessOrder logs the per-(register,index) access order for
	// C1-violation accounting.
	RecordAccessOrder bool
	// RecordOutputs retains each packet's final header fields for
	// functional-equivalence checking.
	RecordOutputs bool
	// Interpret forces stage execution through the tree-walking ir
	// interpreter instead of the compiled bytecode VM. The interpreter is
	// the semantic oracle; the differential fuzz harness runs it against
	// the default compiled path.
	Interpret bool
	// MaxCycles aborts a stuck run; 0 derives a generous bound.
	MaxCycles int64
	// Trace, when non-nil, receives every simulator event (admissions,
	// stage executions, steering, queueing, egress, drops) in
	// deterministic order — the hook behind mp5sim -trace and the
	// engine-invariant tests.
	Trace func(Event)
}

func (c Config) withDefaults() Config {
	if c.Pipelines == 0 {
		c.Pipelines = DefaultPipelines
	}
	if c.Ports == 0 {
		c.Ports = DefaultPorts
	}
	if c.RemapInterval == 0 {
		c.RemapInterval = DefaultRemapInterval
	}
	if c.RecircDelay == 0 {
		c.RecircDelay = DefaultRecircDelay
	}
	switch {
	case c.RecircIngressCap == 0:
		c.RecircIngressCap = 64
	case c.RecircIngressCap < 0:
		c.RecircIngressCap = 0 // unbounded
	}
	if !c.ShardPolicySet {
		switch c.Arch {
		case ArchNaive:
			c.ShardPolicy = sharding.PolicySinglePipe
		case ArchStaticShard, ArchRecirc:
			c.ShardPolicy = sharding.PolicyRandom
		default:
			c.ShardPolicy = sharding.PolicyRoundRobin
		}
	}
	return c
}

// dynamicSharding reports whether the architecture re-runs the remap
// algorithm during the run.
func (c Config) dynamicSharding() bool {
	switch c.Arch {
	case ArchMP5, ArchMP5NoD4, ArchIdeal:
		return true
	}
	return false
}

// Result summarizes one simulation run.
type Result struct {
	Arch      Arch
	Pipelines int

	// Injected counts offered packets; Completed counts packets that
	// egressed; the drop counters split the difference.
	Injected        int64
	Completed       int64
	DroppedData     int64
	DroppedPhantom  int64
	DroppedInsert   int64
	DroppedIngress  int64
	DroppedStarved  int64
	Recirculations  int64
	ShardMoves      int64
	WastedVisits    int64 // conservative-phantom visits whose predicate was false
	DeadPhantomPops int64
	MarkedECN       int64 // packets congestion-marked at FIFO entry
	ParkedEarly     int64 // data packets that beat their phantom and parked (CrossLatency > 0)

	// Timing (cycles).
	FirstArrival int64
	LastArrival  int64
	FirstDone    int64
	LastDone     int64
	Cycles       int64
	Stalled      bool

	// Queueing.
	MaxFIFODepth    int
	MaxFIFOPerStage []int
	MaxIngressDepth int

	// Latency (cycles from arrival to egress, completed packets only).
	MeanLatency float64
	MaxLatency  int64
	P99Latency  int64

	// Ordering.
	C1Violating       int64   // packets that overtook an earlier arrival on a shared state
	ViolationFraction float64 // C1Violating / Completed
	Reordered         int64   // packets egressing after a later-arriving packet egressed

	// Throughput is the achieved packet rate normalized to the offered
	// rate (1.0 = line rate sustained).
	Throughput float64
}

// PacketDrops totals the packet-death counters: exactly the packets that
// were injected but never completed (phantom drops are placeholder losses,
// not packet deaths — the affected data packet is counted in DroppedInsert
// when it later misses the directory).
func (r *Result) PacketDrops() int64 {
	return r.DroppedData + r.DroppedInsert + r.DroppedIngress + r.DroppedStarved
}

// String renders the headline numbers. The drops total includes every drop
// counter — ingress overflows and phantom losses were previously omitted,
// under-reporting loss for the recirculation and bounded-FIFO configs.
func (r *Result) String() string {
	return fmt.Sprintf("%s k=%d: tput=%.3f completed=%d/%d drops=%d maxq=%d viol=%.1f%% recircs=%d",
		r.Arch, r.Pipelines, r.Throughput, r.Completed, r.Injected,
		r.PacketDrops()+r.DroppedPhantom, r.MaxFIFODepth,
		100*r.ViolationFraction, r.Recirculations)
}
