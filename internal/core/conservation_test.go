package core_test

import (
	"testing"

	"mp5/internal/core"
	"mp5/internal/workload"
)

// The tests in this file check the trace stream's conservation laws: every
// packet the Result claims to have seen appears in the events, every loss
// has a cause-tagged EvDrop, and the event counts reconcile exactly with
// the Result counters — including under configurations that force each
// drop cause.

// conservationConfigs spans the architectures and the pressure knobs that
// exercise every drop path (phantom overflow, directory miss, data-FIFO
// overflow, ingress overflow, starvation).
func conservationConfigs() map[string]core.Config {
	return map[string]core.Config{
		"mp5":            {Arch: core.ArchMP5, Pipelines: 4, Seed: 2},
		"mp5-tiny-fifo":  {Arch: core.ArchMP5, Pipelines: 4, Seed: 2, FIFOCap: 2},
		"nod4-tiny-fifo": {Arch: core.ArchMP5NoD4, Pipelines: 4, Seed: 2, FIFOCap: 2},
		"mp5-starve":     {Arch: core.ArchMP5, Pipelines: 4, Seed: 2, StarveThreshold: 4},
		"recirc-tiny":    {Arch: core.ArchRecirc, Pipelines: 4, Seed: 2, RecircIngressCap: 2},
		"ideal":          {Arch: core.ArchIdeal, Pipelines: 4, Seed: 2},
	}
}

func TestTraceConservation(t *testing.T) {
	for name, cfg := range conservationConfigs() {
		t.Run(name, func(t *testing.T) {
			prog, trace := synthSetup(t, 3, 64, 4, 3000, workload.Skewed, 41)
			var events []core.Event
			cfg.Trace = func(e core.Event) { events = append(events, e) }
			sim := core.NewSimulator(prog, cfg)
			res := sim.Run(trace)

			admits := map[int64]int{}
			egress := map[int64]int{}
			drops := map[int64]core.DropCause{}
			dropEvents := map[core.DropCause]int64{}
			var phantomDrops, shardMoves int64
			lastCycle := int64(-1)
			for _, e := range events {
				if e.Cycle < lastCycle {
					t.Fatalf("event stream went backwards: cycle %d after %d", e.Cycle, lastCycle)
				}
				lastCycle = e.Cycle
				switch e.Kind {
				case core.EvAdmit:
					admits[e.PktID]++
				case core.EvEgress:
					egress[e.PktID]++
				case core.EvDrop:
					if _, dup := drops[e.PktID]; dup {
						t.Fatalf("packet %d dropped twice", e.PktID)
					}
					if e.Cause == core.CauseNone {
						t.Fatalf("packet %d dropped with no cause", e.PktID)
					}
					drops[e.PktID] = e.Cause
					dropEvents[e.Cause]++
				case core.EvPhantomDrop:
					phantomDrops++
				case core.EvShardMove:
					shardMoves++
				}
			}

			// One egress per completed packet, and no packet both
			// egresses and drops.
			for id, n := range egress {
				if n != 1 {
					t.Errorf("packet %d egressed %d times", id, n)
				}
				if cause, ok := drops[id]; ok {
					t.Errorf("packet %d egressed and dropped (%v)", id, cause)
				}
			}
			// Every admitted packet resolves one way; ingress-dropped
			// packets (recirc) never get an admit event.
			for id := range admits {
				if egress[id] == 0 && drops[id] == core.CauseNone {
					t.Errorf("admitted packet %d neither egressed nor dropped", id)
				}
			}
			for id, cause := range drops {
				if cause == core.CauseIngress {
					if admits[id] != 0 {
						t.Errorf("ingress-dropped packet %d was admitted", id)
					}
				} else if admits[id] == 0 {
					t.Errorf("dropped packet %d (%v) never admitted", id, cause)
				}
			}

			// Event counts reconcile exactly with the Result.
			if got := int64(len(egress)); got != res.Completed {
				t.Errorf("egress events %d != Completed %d", got, res.Completed)
			}
			offered := int64(len(admits)) + dropEvents[core.CauseIngress]
			if offered != res.Injected {
				t.Errorf("unique admits + ingress drops = %d != Injected %d", offered, res.Injected)
			}
			for cause, want := range map[core.DropCause]int64{
				core.CauseData:    res.DroppedData,
				core.CauseInsert:  res.DroppedInsert,
				core.CauseIngress: res.DroppedIngress,
				core.CauseStarved: res.DroppedStarved,
			} {
				if dropEvents[cause] != want {
					t.Errorf("%v drop events %d != Result %d", cause, dropEvents[cause], want)
				}
			}
			if phantomDrops != res.DroppedPhantom {
				t.Errorf("phantom-drop events %d != DroppedPhantom %d", phantomDrops, res.DroppedPhantom)
			}
			if shardMoves != res.ShardMoves {
				t.Errorf("shard-move events %d != ShardMoves %d", shardMoves, res.ShardMoves)
			}
			// The conservation law itself.
			if res.Completed+res.PacketDrops() != res.Injected {
				t.Errorf("Completed %d + drops %d != Injected %d",
					res.Completed, res.PacketDrops(), res.Injected)
			}
		})
	}
}

// TestTraceConservationForcesDrops makes sure the pressure configs above
// actually exercise the drop paths they are named for — otherwise the
// conservation test would pass vacuously.
func TestTraceConservationForcesDrops(t *testing.T) {
	run := func(cfg core.Config) *core.Result {
		prog, trace := synthSetup(t, 3, 64, 4, 3000, workload.Skewed, 41)
		sim := core.NewSimulator(prog, cfg)
		return sim.Run(trace)
	}
	if r := run(core.Config{Arch: core.ArchMP5NoD4, Pipelines: 4, Seed: 2, FIFOCap: 2}); r.DroppedData == 0 {
		t.Error("no-D4 with tiny FIFOs produced no data drops")
	}
	if r := run(core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 2, FIFOCap: 2}); r.DroppedPhantom == 0 && r.DroppedInsert == 0 {
		t.Error("MP5 with tiny FIFOs produced no phantom or insert drops")
	}
	if r := run(core.Config{Arch: core.ArchRecirc, Pipelines: 4, Seed: 2, RecircIngressCap: 2}); r.DroppedIngress == 0 {
		t.Error("recirc with a tiny ingress buffer produced no ingress drops")
	}
}
