package core
