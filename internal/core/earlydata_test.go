package core_test

import (
	"testing"

	"mp5/internal/core"
	"mp5/internal/workload"
)

// TestEarlyDataArrival covers the CrossLatency > 0 paths where a data
// packet outruns its phantom placeholder: every phantom takes the full
// worst-case channel latency, while same-pipeline data skips the crossbar
// entirely, so with a slow crossbar the data side can reach its visit stage
// first. Three things can then happen: the packet parks in the crossbar
// buffer until its phantom lands (then inserts normally), the phantom turns
// out to have been dropped (the data packet must die with CauseInsert, not
// hang), or the packet dies upstream and its already-queued phantom must be
// popped as dead so it stops blocking the FIFO head.
func TestEarlyDataArrival(t *testing.T) {
	type tcase struct {
		name   string
		stages int
		regs   int
		k      int
		cfg    core.Config
		check  func(t *testing.T, res *core.Result, events []core.Event)
	}
	cases := []tcase{
		{
			// All visits are same-pipe with k=1, so every stateful packet
			// beats its phantom by exactly CrossLatency cycles and must
			// park, then insert once the placeholder lands — no drops.
			name: "park-then-insert", stages: 2, regs: 8, k: 1,
			cfg: core.Config{Arch: core.ArchMP5, Pipelines: 1, Seed: 3, CrossLatency: 4},
			check: func(t *testing.T, res *core.Result, events []core.Event) {
				if res.ParkedEarly == 0 {
					t.Fatal("no packet parked despite CrossLatency > 0 on same-pipe visits")
				}
				if res.Completed != res.Injected {
					t.Fatalf("parked packets lost: completed %d of %d", res.Completed, res.Injected)
				}
				if res.DroppedInsert != 0 || res.DroppedPhantom != 0 {
					t.Fatalf("unexpected drops: insert=%d phantom=%d", res.DroppedInsert, res.DroppedPhantom)
				}
				// Every parked packet still enqueues: phantoms precede
				// their data packet's enqueue at the same (stage, pipe).
				enq := map[int64]bool{}
				for _, e := range events {
					if e.Kind == core.EvEnqueue {
						enq[e.PktID] = true
					}
				}
				if int64(len(enq)) != res.Injected {
					t.Fatalf("%d of %d packets enqueued", len(enq), res.Injected)
				}
			},
		},
		{
			// Overloaded single hot state with tiny FIFOs: phantoms
			// overflow, and each affected data packet must later miss the
			// directory and die with CauseInsert — exactly once, and the
			// two id sets must coincide (single-visit program).
			name: "phantom-drop-kills-data", stages: 1, regs: 1, k: 4,
			cfg: core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 3, CrossLatency: 2, FIFOCap: 2},
			check: func(t *testing.T, res *core.Result, events []core.Event) {
				if res.DroppedPhantom == 0 {
					t.Fatal("scenario drops no phantoms — tighten it")
				}
				phantomDropped := map[int64]bool{}
				insertDropped := map[int64]bool{}
				for _, e := range events {
					switch {
					case e.Kind == core.EvPhantomDrop:
						phantomDropped[e.PktID] = true
					case e.Kind == core.EvDrop && e.Cause == core.CauseInsert:
						if insertDropped[e.PktID] {
							t.Fatalf("packet %d insert-dropped twice", e.PktID)
						}
						insertDropped[e.PktID] = true
					}
				}
				for id := range phantomDropped {
					if !insertDropped[id] {
						t.Fatalf("packet %d lost its phantom but never died", id)
					}
				}
				for id := range insertDropped {
					if !phantomDropped[id] {
						t.Fatalf("packet %d insert-dropped without a phantom drop", id)
					}
				}
				if res.DroppedInsert != int64(len(insertDropped)) {
					t.Fatalf("DroppedInsert=%d, %d drop events", res.DroppedInsert, len(insertDropped))
				}
			},
		},
		{
			// Two stateful stages with contention: packets die at their
			// first visit while their second-stage phantoms are already
			// queued (often at the head, blocking D4). Dead-phantom pops
			// must clear them so later packets keep flowing — the run must
			// neither stall nor violate C1.
			name: "dead-phantom-unblocks-head", stages: 2, regs: 16, k: 4,
			cfg: core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 3, CrossLatency: 2, FIFOCap: 2},
			check: func(t *testing.T, res *core.Result, events []core.Event) {
				if res.DeadPhantomPops == 0 {
					t.Fatal("scenario pops no dead phantoms — tighten it")
				}
				if res.Stalled {
					t.Fatal("dead phantoms blocked the pipeline")
				}
				if res.Completed == 0 || res.Completed == res.Injected {
					t.Fatalf("want a lossy-but-flowing run, got %d of %d", res.Completed, res.Injected)
				}
				if res.C1Violating != 0 {
					t.Fatalf("%d C1 violations", res.C1Violating)
				}
				// Dead pops are not traced directly; the structural
				// witness is that queued service resumed after drops
				// happened (a blocked head would freeze its FIFO while
				// the dropped packet's phantom sat at the front): some
				// later-id packet must enqueue and egress after the
				// first drop.
				var firstDropID int64 = -1
				witness := false
				for _, e := range events {
					if firstDropID < 0 && e.Kind == core.EvDrop {
						firstDropID = e.PktID
					}
					if firstDropID >= 0 && e.Kind == core.EvEgress && e.PktID > firstDropID {
						witness = true
						break
					}
				}
				if !witness {
					t.Fatal("no later packet egressed after the first drop — heads stayed blocked")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, trace := synthSetup(t, tc.stages, tc.regs, tc.k, 2000, workload.Skewed, 13)
			var events []core.Event
			tc.cfg.RecordAccessOrder = true
			tc.cfg.RecordOutputs = true
			tc.cfg.Trace = func(e core.Event) { events = append(events, e) }
			sim := core.NewSimulator(prog, tc.cfg)
			res := sim.Run(trace)
			tc.check(t, res, events)
			// Whatever the path, the switch must fully drain its
			// transient bookkeeping afterwards.
			dead, left, pending, inserts, live := sim.BookkeepingLive()
			if dead != 0 || left != 0 || pending != 0 || inserts != 0 || live != 0 {
				t.Fatalf("bookkeeping not drained: deadIDs=%d phantomsLeft=%d phantomPending=%d pendingInserts=%d live=%d",
					dead, left, pending, inserts, live)
			}
		})
	}
}
