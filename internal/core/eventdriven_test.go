package core_test

import (
	"reflect"
	"testing"

	"mp5/internal/core"
	"mp5/internal/ir"
	"mp5/internal/workload"
)

// observables bundles everything the two schedulers must agree on bit for
// bit: the result summary, the full trace-event stream, packet outputs,
// egress order, per-state access order, and final register state.
type observables struct {
	res    core.Result
	events []core.Event
	out    map[int64][]int64
	egress []int64
	access map[string][]int64
	regs   [][]int64
}

// runObserved executes one simulation and collects its observables.
// fullSweep selects the legacy per-cycle scheduler (the pre-event-driven
// core, kept as the in-repo equivalence oracle).
func runObserved(prog *ir.Program, cfg core.Config, trace []core.Arrival, fullSweep bool) observables {
	var events []core.Event
	cfg.RecordOutputs = true
	cfg.RecordAccessOrder = true
	cfg.Trace = func(e core.Event) { events = append(events, e) }
	sim := core.NewSimulator(prog, cfg)
	sim.SetFullSweep(fullSweep)
	res := sim.Run(trace)
	return observables{
		res:    *res,
		events: events,
		out:    sim.Outputs(),
		egress: sim.EgressOrder(),
		access: sim.AccessOrders(),
		regs:   sim.FinalRegs(),
	}
}

// sparsify spreads a dense trace into bursts separated by long idle gaps —
// the bursty shape where the event-driven scheduler's fast-forward matters.
// Cycle order is preserved: offsets grow monotonically with the index.
func sparsify(trace []core.Arrival, burst int, gap int64) []core.Arrival {
	out := make([]core.Arrival, len(trace))
	for i, a := range trace {
		a.Cycle += int64(i/burst) * gap
		out[i] = a
	}
	return out
}

// TestEventDrivenMatchesFullSweep is the tentpole equivalence gate: the
// event-driven scheduler (occupancy skip lists + live-entity counter + idle
// fast-forward) must be observationally identical to the legacy full-sweep
// scheduler on every architecture and feature knob, on dense and on sparse
// traces alike. Any divergence — one event, one counter, one output word —
// fails.
func TestEventDrivenMatchesFullSweep(t *testing.T) {
	cases := []struct {
		name   string
		cfg    core.Config
		stages int
		regs   int
	}{
		{"mp5-skewed", core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 3}, 4, 64},
		{"mp5-k1", core.Config{Arch: core.ArchMP5, Pipelines: 1, Seed: 3}, 2, 32},
		{"mp5-crosslat-fifocap", core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 5, CrossLatency: 3, FIFOCap: 8}, 3, 32},
		{"mp5-starve-ecn", core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 7, StarveThreshold: 8, ECNThreshold: 4}, 2, 64},
		{"nod4-fifocap", core.Config{Arch: core.ArchMP5NoD4, Pipelines: 4, Seed: 3, FIFOCap: 4}, 3, 64},
		{"ideal", core.Config{Arch: core.ArchIdeal, Pipelines: 4, Seed: 3}, 3, 64},
		{"naive", core.Config{Arch: core.ArchNaive, Pipelines: 2, Seed: 3}, 2, 32},
		{"static-shard", core.Config{Arch: core.ArchStaticShard, Pipelines: 4, Seed: 9}, 3, 64},
		{"recirc", core.Config{Arch: core.ArchRecirc, Pipelines: 4, Seed: 3, RecircIngressCap: 16}, 3, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, dense := synthSetup(t, tc.stages, tc.regs, tc.cfg.Pipelines, 1500, workload.Skewed, tc.cfg.Seed)
			traces := map[string][]core.Arrival{
				"dense":  dense,
				"sparse": sparsify(dense, 64, 5000),
			}
			for shape, trace := range traces {
				event := runObserved(prog, tc.cfg, trace, false)
				sweep := runObserved(prog, tc.cfg, trace, true)
				if !reflect.DeepEqual(event.res, sweep.res) {
					t.Fatalf("%s: results diverge:\nevent: %+v\nsweep: %+v", shape, event.res, sweep.res)
				}
				if len(event.events) != len(sweep.events) {
					t.Fatalf("%s: event counts diverge: %d vs %d", shape, len(event.events), len(sweep.events))
				}
				for i := range event.events {
					if event.events[i] != sweep.events[i] {
						t.Fatalf("%s: event %d diverges: %v vs %v", shape, i, event.events[i], sweep.events[i])
					}
				}
				if !reflect.DeepEqual(event.out, sweep.out) {
					t.Fatalf("%s: outputs diverge", shape)
				}
				if !reflect.DeepEqual(event.egress, sweep.egress) {
					t.Fatalf("%s: egress order diverges", shape)
				}
				if !reflect.DeepEqual(event.access, sweep.access) {
					t.Fatalf("%s: access orders diverge", shape)
				}
				if !reflect.DeepEqual(event.regs, sweep.regs) {
					t.Fatalf("%s: final registers diverge", shape)
				}
			}
		})
	}
}

// TestSparseTraceCyclesUnchanged pins the semantics of fast-forwarding:
// jumping over idle gaps must not change the cycle accounting — Result
// carries the same Cycles/FirstDone/LastDone a per-cycle walk produces.
func TestSparseTraceCyclesUnchanged(t *testing.T) {
	prog, dense := synthSetup(t, 3, 64, 4, 800, workload.Uniform, 11)
	trace := sparsify(dense, 32, 20000)
	cfg := core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 3}
	ev := runObserved(prog, cfg, trace, false)
	sw := runObserved(prog, cfg, trace, true)
	if ev.res.Cycles != sw.res.Cycles || ev.res.LastDone != sw.res.LastDone {
		t.Fatalf("cycle accounting diverges: event %d/%d, sweep %d/%d",
			ev.res.Cycles, ev.res.LastDone, sw.res.Cycles, sw.res.LastDone)
	}
	if ev.res.Completed != ev.res.Injected {
		t.Fatalf("sparse run lost packets: %d of %d", ev.res.Completed, ev.res.Injected)
	}
}

// TestBookkeepingDrained is the leak regression: after a drop-heavy run —
// tiny FIFOs force phantom overflows, insert misses, and dead-phantom pops —
// every transient bookkeeping structure must be empty. Before this fix,
// deadIDs entries survived forever (and the write-only phantomDropped map
// grew without bound) on long-lived simulator instances.
func TestBookkeepingDrained(t *testing.T) {
	for _, lat := range []int64{0, 3} {
		prog, trace := synthSetup(t, 3, 16, 4, 3000, workload.Skewed, 17)
		sim := core.NewSimulator(prog, core.Config{
			Arch: core.ArchMP5, Pipelines: 4, Seed: 3,
			FIFOCap: 2, CrossLatency: lat,
		})
		res := sim.Run(trace)
		if res.Stalled {
			t.Fatalf("lat=%d: stalled", lat)
		}
		if res.PacketDrops() == 0 || res.DroppedPhantom == 0 {
			t.Fatalf("lat=%d: scenario not drop-heavy (drops=%d phantom=%d) — tighten it",
				lat, res.PacketDrops(), res.DroppedPhantom)
		}
		dead, left, pending, inserts, live := sim.BookkeepingLive()
		if dead != 0 || left != 0 || pending != 0 || inserts != 0 || live != 0 {
			t.Fatalf("lat=%d: bookkeeping not drained: deadIDs=%d phantomsLeft=%d phantomPending=%d pendingInserts=%d live=%d",
				lat, dead, left, pending, inserts, live)
		}
	}
}

// TestRetryOrderDeterministic locks in the pendingInserts retry-order fix:
// with CrossLatency > 0 many packets park and retry in the same cycle, and
// the retry order is observable through same-cycle event interleaving (and
// through ECN marks under contention). Two runs of the same seed must
// produce byte-identical event streams. Before the fix the snapshot ranged
// over a Go map, so this flaked.
func TestRetryOrderDeterministic(t *testing.T) {
	prog, trace := synthSetup(t, 3, 16, 4, 2500, workload.Skewed, 23)
	cfg := core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 3,
		CrossLatency: 4, FIFOCap: 3, ECNThreshold: 2,
	}
	a := runObserved(prog, cfg, trace, false)
	if a.res.ParkedEarly == 0 {
		t.Fatal("scenario exercises no early-data parking — tighten it")
	}
	for run := 0; run < 3; run++ {
		b := runObserved(prog, cfg, trace, false)
		if len(a.events) != len(b.events) {
			t.Fatalf("run %d: event counts diverge: %d vs %d", run, len(a.events), len(b.events))
		}
		for i := range a.events {
			if a.events[i] != b.events[i] {
				t.Fatalf("run %d: event %d diverges: %v vs %v", run, i, a.events[i], b.events[i])
			}
		}
		if !reflect.DeepEqual(a.res, b.res) {
			t.Fatalf("run %d: results diverge:\n%+v\n%+v", run, a.res, b.res)
		}
	}
}
