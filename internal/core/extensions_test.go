package core_test

import (
	"testing"

	"mp5/internal/apps"
	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/equiv"
	"mp5/internal/workload"
)

// perFlowReorderings counts, per flow, packets that egressed before an
// earlier-arriving packet of the same flow.
func perFlowReorderings(egress []int64, flowOf map[int64]int64) int {
	lastSeen := map[int64]int64{} // flow → highest id seen so far... we need inversions
	suffixMin := map[int64]int64{}
	// Walk backwards per flow computing suffix minima.
	n := 0
	type rec struct {
		id   int64
		flow int64
	}
	var seq []rec
	for _, id := range egress {
		seq = append(seq, rec{id, flowOf[id]})
	}
	for i := len(seq) - 1; i >= 0; i-- {
		f := seq[i].flow
		if m, ok := suffixMin[f]; ok && seq[i].id > m {
			n++
		}
		if m, ok := suffixMin[f]; !ok || seq[i].id < m {
			suffixMin[f] = seq[i].id
		}
	}
	_ = lastSeen
	return n
}

// TestOrderingStageRestoresPerFlowOrder: with stateless packets bypassing
// queued stateful ones, per-flow reordering appears; the §3.4 dummy
// ordering stage eliminates it without breaking equivalence.
func TestOrderingStageRestoresPerFlowOrder(t *testing.T) {
	build := func(withGuard bool) (reordered int, equivalent bool) {
		// A NAT/firewall shape: flows (identified by h0) mix stateful
		// packets with stateless ones, so stateless priority reorders
		// packets *within* a flow (§3.4).
		p, err := apps.Synthetic(1, 64, 16)
		if err != nil {
			t.Fatal(err)
		}
		if withGuard {
			if err := compiler.AddOrderingStage(p, 256, "h0"); err != nil {
				t.Fatal(err)
			}
		}
		trace := workload.Synthetic(p, workload.Spec{
			Packets: 8000, Pipelines: 4, Seed: 13, StatelessFraction: 0.5,
			Pattern: workload.Skewed,
		}, 1, 64)
		sim := core.NewSimulator(p, core.Config{
			Arch: core.ArchMP5, Pipelines: 4, Seed: 3, RecordOutputs: true,
		})
		res := sim.Run(trace)
		if res.Stalled || res.Completed != res.Injected {
			t.Fatalf("run broken: %+v", res)
		}
		h0 := p.FieldIndex("h0")
		flowOf := map[int64]int64{}
		for i, a := range trace {
			flowOf[int64(i)] = a.Fields[h0]
		}
		rep := equiv.Check(p, sim, trace)
		return perFlowReorderings(sim.EgressOrder(), flowOf), rep.Equivalent
	}

	without, okWithout := build(false)
	if without == 0 {
		t.Fatal("expected per-flow reordering without the guard (stateless priority)")
	}
	if !okWithout {
		t.Fatal("reordering must not break functional equivalence")
	}
	with, okWith := build(true)
	if with != 0 {
		t.Fatalf("ordering stage left %d per-flow reorderings", with)
	}
	if !okWith {
		t.Fatal("ordering stage broke functional equivalence")
	}
	t.Logf("per-flow reorderings: %d without guard, %d with", without, with)
}

// TestECNMarking: with a small threshold on a congested program, packets
// get marked; with no threshold, none are.
func TestECNMarking(t *testing.T) {
	prog, err := apps.Synthetic(1, 1, 16) // global counter at line rate: deep queue
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: 8000, Pipelines: 4, Seed: 5,
	}, 1, 1)
	marked := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 1, ECNThreshold: 8,
	})
	res := marked.Run(trace)
	if res.MarkedECN == 0 {
		t.Fatal("no ECN marks despite a saturated FIFO")
	}
	if res.MarkedECN > res.Completed {
		t.Fatalf("marks %d exceed packets %d (must count distinct packets)", res.MarkedECN, res.Completed)
	}
	unmarked := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 1,
	})
	if r := unmarked.Run(trace); r.MarkedECN != 0 {
		t.Fatalf("marks without a threshold: %d", r.MarkedECN)
	}
	// An uncongested workload stays unmarked even with a threshold.
	light, err := apps.Synthetic(1, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	lightTrace := workload.Synthetic(light, workload.Spec{
		Packets: 8000, Pipelines: 4, Seed: 5, PacketSize: 512,
	}, 1, 512)
	calm := core.NewSimulator(light, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 1, ECNThreshold: 8,
	})
	if r := calm.Run(lightTrace); r.MarkedECN != 0 {
		t.Errorf("light load marked %d packets", r.MarkedECN)
	}
}

// TestStarvationGuard: with stateless priority, a saturated stateful queue
// starves; the guard trades stateless drops for bounded stateful waits.
func TestStarvationGuard(t *testing.T) {
	prog, err := apps.Synthetic(1, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: 12000, Pipelines: 4, Seed: 9, StatelessFraction: 0.6,
	}, 1, 1)
	noGuard := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 2,
	})
	rn := noGuard.Run(trace)
	guarded := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 2, StarveThreshold: 64,
	})
	rg := guarded.Run(trace)
	if rg.DroppedStarved == 0 {
		t.Fatal("guard never fired despite starvation pressure")
	}
	if rn.DroppedStarved != 0 {
		t.Fatal("drops without a guard configured")
	}
	if rg.Completed+rg.DroppedStarved != rg.Injected {
		t.Fatalf("accounting: %d + %d != %d", rg.Completed, rg.DroppedStarved, rg.Injected)
	}
	// The guard must reduce the worst stateful queueing (FIFO drains
	// faster when stateless arrivals yield).
	if rg.MaxFIFODepth >= rn.MaxFIFODepth {
		t.Errorf("guard did not reduce max queue: %d vs %d", rg.MaxFIFODepth, rn.MaxFIFODepth)
	}
}

// TestOrderingStageOnRealApp: the guard composes with a real program.
func TestOrderingStageOnRealApp(t *testing.T) {
	app, err := apps.ByName("wfq")
	if err != nil {
		t.Fatal(err)
	}
	prog := app.MP5()
	if err := compiler.AddOrderingStage(prog, 1024, "flow"); err != nil {
		t.Fatal(err)
	}
	trace := workload.Flows(prog, workload.FlowSpec{Packets: 4000, Pipelines: 4, Seed: 3}, app.Bind)
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 3, RecordOutputs: true,
	})
	res := sim.Run(trace)
	if res.Completed != res.Injected {
		t.Fatalf("loss: %+v", res)
	}
	if rep := equiv.Check(prog, sim, trace); !rep.Equivalent {
		t.Fatalf("guard broke wfq equivalence: %v", rep.Mismatches)
	}
}

// TestOrderingStageErrors covers the guard's input validation.
func TestOrderingStageErrors(t *testing.T) {
	app, _ := apps.ByName("wfq")
	prog := app.MP5()
	if err := compiler.AddOrderingStage(prog, 0, "flow"); err == nil {
		t.Error("zero size accepted")
	}
	if err := compiler.AddOrderingStage(prog, 64, "nope"); err == nil {
		t.Error("unknown field accepted")
	}
	if err := compiler.AddOrderingStage(prog, 64); err == nil {
		t.Error("no fields accepted")
	}
	single := app.SinglePipeline()
	if err := compiler.AddOrderingStage(single, 64, "flow"); err == nil {
		t.Error("single-pipeline program accepted")
	}
	if err := compiler.AddOrderingStage(prog, 64, "flow"); err != nil {
		t.Fatalf("first guard rejected: %v", err)
	}
	if err := compiler.AddOrderingStage(prog, 64, "flow"); err == nil {
		t.Error("second guard accepted")
	}
}
