// Package core implements the MP5 multi-pipeline switch simulator: the
// crossbar-connected pipelines, per-stage k-FIFO structures, the phantom
// channel, packet steering, and the dynamic-sharding runtime — plus the
// paper's baseline architectures (no-D4, recirculation, naive single-pipe
// state, static sharding, and the ideal upper bound).
package core

import "fmt"

// fifoEntry is one slot in a stage FIFO: either a data packet or a phantom
// placeholder awaiting its data packet (§3.2).
type fifoEntry struct {
	ts    int64 // ordering timestamp = packet arrival sequence number
	data  *Packet
	pktID int64 // packet this entry belongs to (phantom: the awaited packet)
	enq   int64 // cycle the entry was enqueued (starvation accounting)
}

func (e *fifoEntry) isPhantom() bool { return e.data == nil }

// ring is a growable ring buffer with stable sequence addressing: entry seq
// s stays addressable at the same logical position while entries ahead of
// it are popped, which is what the phantom directory needs for insert().
type ring struct {
	buf     []fifoEntry
	start   int   // position of headSeq in buf
	n       int   // live entries
	headSeq int64 // sequence number of the head entry
}

func (r *ring) len() int { return r.n }

func (r *ring) posOf(seq int64) int {
	off := int(seq - r.headSeq)
	if off < 0 || off >= r.n {
		panic(fmt.Sprintf("core: fifo seq %d outside [%d,%d)", seq, r.headSeq, r.headSeq+int64(r.n)))
	}
	return (r.start + off) % len(r.buf)
}

// at returns the entry stored at sequence seq.
func (r *ring) at(seq int64) *fifoEntry { return &r.buf[r.posOf(seq)] }

func (r *ring) head() *fifoEntry {
	if r.n == 0 {
		panic("core: head of empty fifo")
	}
	return &r.buf[r.start]
}

// push appends an entry and returns its sequence number.
func (r *ring) push(e fifoEntry) int64 {
	if r.n == len(r.buf) {
		grown := make([]fifoEntry, max(4, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.start+i)%len(r.buf)]
		}
		r.buf = grown
		r.start = 0
	}
	seq := r.headSeq + int64(r.n)
	r.buf[(r.start+r.n)%len(r.buf)] = e
	r.n++
	return seq
}

// popHead removes and returns the head entry.
func (r *ring) popHead() fifoEntry {
	e := *r.head()
	r.buf[r.start] = fifoEntry{}
	r.start = (r.start + 1) % len(r.buf)
	r.n--
	r.headSeq++
	return e
}

// entryPos locates a phantom in the directory.
type entryPos struct {
	fifo int
	seq  int64
}

// StageFIFO is the per-stage buffering structure of MP5 (§3.2): k physical
// ring-buffer FIFOs (one per source pipeline) operating as a single logical
// FIFO, plus the phantom directory indexed by packet id.
//
//   - Push adds a data or phantom packet to the tail of one sub-FIFO,
//     dropping it when the sub-FIFO is at capacity.
//   - Insert replaces a phantom (located via the directory) with its data
//     packet; a directory miss drops the data packet.
//   - Pop inspects the k heads and selects the smallest timestamp; a
//     phantom head blocks (returns blocked=true) so that later packets
//     cannot overtake the awaited one.
type StageFIFO struct {
	rings []ring
	dir   map[int64]entryPos
	cap   int // per-sub-FIFO capacity; 0 = unbounded
	depth int // current total entries
	maxD  int // high-water mark
}

// NewStageFIFO builds a k-FIFO with the given per-sub-FIFO capacity
// (0 = unbounded, the paper's adaptive sizing for loss-free sensitivity
// experiments).
func NewStageFIFO(k, capacity int) *StageFIFO {
	return &StageFIFO{
		rings: make([]ring, k),
		dir:   make(map[int64]entryPos),
		cap:   capacity,
	}
}

// Len returns the total number of queued entries (data + phantom).
func (f *StageFIFO) Len() int { return f.depth }

// MaxDepth returns the high-water mark of total queued entries.
func (f *StageFIFO) MaxDepth() int { return f.maxD }

func (f *StageFIFO) bump(d int) {
	f.depth += d
	if f.depth > f.maxD {
		f.maxD = f.depth
	}
}

// PushPhantom enqueues a phantom for packet pktID arriving from srcPipe.
// It returns false (drop) when the sub-FIFO is full.
func (f *StageFIFO) PushPhantom(srcPipe int, ts, pktID, now int64) bool {
	r := &f.rings[srcPipe]
	if f.cap > 0 && r.len() >= f.cap {
		return false
	}
	seq := r.push(fifoEntry{ts: ts, pktID: pktID, enq: now})
	f.dir[pktID] = entryPos{fifo: srcPipe, seq: seq}
	f.bump(1)
	return true
}

// PushData enqueues a data packet directly (used by the no-D4 baseline,
// which has no phantoms). Returns false (drop) when the sub-FIFO is full.
func (f *StageFIFO) PushData(srcPipe int, p *Packet, now int64) bool {
	r := &f.rings[srcPipe]
	if f.cap > 0 && r.len() >= f.cap {
		return false
	}
	r.push(fifoEntry{ts: p.ID, data: p, pktID: p.ID, enq: now})
	f.bump(1)
	return true
}

// Insert replaces packet p's phantom with p itself. Returns false when the
// directory has no entry for p (its phantom was dropped): the caller drops
// the data packet (§3.4, handling packet drops).
func (f *StageFIFO) Insert(p *Packet, now int64) bool {
	pos, ok := f.dir[p.ID]
	if !ok {
		return false
	}
	delete(f.dir, p.ID)
	e := f.rings[pos.fifo].at(pos.seq)
	if !e.isPhantom() || e.pktID != p.ID {
		panic("core: directory points at a non-phantom entry")
	}
	e.data = p
	e.enq = now
	return true
}

// Head returns the entry with the smallest timestamp among the k sub-FIFO
// heads, along with its sub-FIFO index. ok is false when all sub-FIFOs are
// empty.
func (f *StageFIFO) Head() (e *fifoEntry, fifo int, ok bool) {
	for i := range f.rings {
		r := &f.rings[i]
		if r.len() == 0 {
			continue
		}
		h := r.head()
		if !ok || h.ts < e.ts {
			e, fifo, ok = h, i, true
		}
	}
	return e, fifo, ok
}

// PopHead removes the head of the given sub-FIFO (after the caller selected
// it via Head) and returns the entry.
func (f *StageFIFO) PopHead(fifo int) fifoEntry {
	e := f.rings[fifo].popHead()
	if e.isPhantom() {
		delete(f.dir, e.pktID)
	}
	f.bump(-1)
	return e
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
