package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingBasic(t *testing.T) {
	var r ring
	for i := 0; i < 100; i++ {
		seq := r.push(fifoEntry{ts: int64(i), pktID: int64(i)})
		if seq != int64(i) {
			t.Fatalf("push %d returned seq %d", i, seq)
		}
	}
	if r.len() != 100 {
		t.Fatalf("len = %d", r.len())
	}
	for i := 0; i < 100; i++ {
		if got := r.at(int64(i)).ts; got != int64(i) {
			t.Fatalf("at(%d).ts = %d", i, got)
		}
	}
	for i := 0; i < 100; i++ {
		e := r.popHead()
		if e.ts != int64(i) {
			t.Fatalf("pop %d gave ts %d", i, e.ts)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len after drain = %d", r.len())
	}
}

func TestRingStableAddressingAcrossPops(t *testing.T) {
	var r ring
	for i := 0; i < 10; i++ {
		r.push(fifoEntry{ts: int64(i)})
	}
	r.popHead()
	r.popHead()
	// Sequence 5 must still address the same entry.
	if got := r.at(5).ts; got != 5 {
		t.Fatalf("at(5).ts = %d after pops", got)
	}
	// Push enough to force growth, then re-check.
	for i := 10; i < 50; i++ {
		r.push(fifoEntry{ts: int64(i)})
	}
	if got := r.at(5).ts; got != 5 {
		t.Fatalf("at(5).ts = %d after growth", got)
	}
	if got := r.at(49).ts; got != 49 {
		t.Fatalf("at(49).ts = %d after growth", got)
	}
}

func TestStageFIFOPhantomBlocksPop(t *testing.T) {
	f := NewStageFIFO(2, 0)
	// Phantom for packet 1 in fifo 0; data packet 2 in fifo 1.
	if !f.PushPhantom(0, 1, 1, 0) {
		t.Fatal("phantom push failed")
	}
	p2 := &Packet{ID: 2}
	if !f.PushData(1, p2, 0) {
		t.Fatal("data push failed")
	}
	// Head must be the phantom (smaller ts) — pop is blocked.
	h, fi, ok := f.Head()
	if !ok || !h.isPhantom() || fi != 0 {
		t.Fatalf("head = %+v fifo %d", h, fi)
	}
	// Data for packet 1 arrives: insert replaces the phantom.
	p1 := &Packet{ID: 1}
	if !f.Insert(p1, 0) {
		t.Fatal("insert failed")
	}
	h, fi, _ = f.Head()
	if h.isPhantom() || h.data != p1 {
		t.Fatalf("head after insert = %+v", h)
	}
	e := f.PopHead(fi)
	if e.data != p1 {
		t.Fatal("pop did not return packet 1")
	}
	h, fi, _ = f.Head()
	if h.data != p2 {
		t.Fatal("packet 2 not next")
	}
	f.PopHead(fi)
	if f.Len() != 0 {
		t.Fatalf("len = %d", f.Len())
	}
}

func TestStageFIFOInsertMissDrops(t *testing.T) {
	f := NewStageFIFO(1, 0)
	if f.Insert(&Packet{ID: 9}, 0) {
		t.Fatal("insert with no phantom must fail (drop)")
	}
}

func TestStageFIFOCapacity(t *testing.T) {
	f := NewStageFIFO(1, 2)
	if !f.PushPhantom(0, 1, 1, 0) || !f.PushPhantom(0, 2, 2, 0) {
		t.Fatal("pushes under capacity failed")
	}
	if f.PushPhantom(0, 3, 3, 0) {
		t.Fatal("push over capacity succeeded")
	}
	// Insert into a full FIFO still works: it replaces in place.
	if !f.Insert(&Packet{ID: 1}, 0) {
		t.Fatal("insert into full fifo failed")
	}
}

func TestStageFIFOMinTimestampAcrossFifos(t *testing.T) {
	f := NewStageFIFO(3, 0)
	f.PushData(2, &Packet{ID: 30}, 0)
	f.PushData(0, &Packet{ID: 10}, 0)
	f.PushData(1, &Packet{ID: 20}, 0)
	f.PushData(0, &Packet{ID: 40}, 0)
	want := []int64{10, 20, 30, 40}
	for _, w := range want {
		h, fi, ok := f.Head()
		if !ok {
			t.Fatalf("empty before draining %d", w)
		}
		if h.ts != w {
			t.Fatalf("head ts = %d, want %d", h.ts, w)
		}
		f.PopHead(fi)
	}
}

func TestStageFIFODirectoryAfterPop(t *testing.T) {
	f := NewStageFIFO(1, 0)
	f.PushPhantom(0, 5, 5, 0)
	_, fi, _ := f.Head()
	f.PopHead(fi) // popping a phantom clears its directory entry
	if f.Insert(&Packet{ID: 5}, 0) {
		t.Fatal("insert found a directory entry for a popped phantom")
	}
}

// TestStageFIFOLogicalOrderProperty: regardless of the interleaving of
// pushes across sub-FIFOs, draining via Head/PopHead yields entries in
// global timestamp order, provided each sub-FIFO receives ascending
// timestamps (which the architecture guarantees per source pipeline).
func TestStageFIFOLogicalOrderProperty(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%7) + 1
		rng := rand.New(rand.NewSource(seed))
		f := NewStageFIFO(k, 0)
		n := 50 + rng.Intn(100)
		// Assign ascending global timestamps to random sub-FIFOs.
		for ts := 0; ts < n; ts++ {
			f.PushData(rng.Intn(k), &Packet{ID: int64(ts)}, 0)
		}
		prev := int64(-1)
		for f.Len() > 0 {
			h, fi, ok := f.Head()
			if !ok || h.ts <= prev {
				return false
			}
			prev = h.ts
			f.PopHead(fi)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStageFIFODepthTracking checks the high-water mark accounting.
func TestStageFIFODepthTracking(t *testing.T) {
	f := NewStageFIFO(2, 0)
	for i := 0; i < 5; i++ {
		f.PushPhantom(i%2, int64(i), int64(i), 0)
	}
	for i := 0; i < 5; i++ {
		f.Insert(&Packet{ID: int64(i)}, 0)
	}
	for f.Len() > 0 {
		_, fi, _ := f.Head()
		f.PopHead(fi)
	}
	if f.MaxDepth() != 5 {
		t.Fatalf("MaxDepth = %d, want 5", f.MaxDepth())
	}
}
