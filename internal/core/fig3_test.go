package core_test

import (
	"testing"

	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/equiv"
	"mp5/internal/workload"
)

// fig3Program is the paper's running example (Figure 3), with reg3
// initialized to 2 so that the multiplicative updates distinguish
// processing orders (the paper's walkthrough multiplies reg1[1]=4 into
// reg3[2] for packets A–D and adds reg2[3]=7 for packet E; with a zero
// initial value every order collapses to the same result).
const fig3Program = `
struct Packet {
    int h1;
    int h2;
    int h3;
    int val;
    int mux;
};

int reg1 [4] = {2,4,8,16};
int reg2 [4] = {1,3,5,7};
int reg3 [4] = {2,2,2,2};

void func (struct Packet p) {
    p.val = (p.mux == 1)
        ? reg1[p.h1%4]
        : reg2[p.h2%4];

    reg3[p.h3%4] = (p.mux == 1)
        ? reg3[p.h3%4] * p.val
        : reg3[p.h3%4] + p.val;
}
`

// fig3Trace builds the example's packet sequence: A, B (t=0, ports 1,2),
// C, D (t=1), E (t=2). A–D access reg1[1] and reg3[2] (mux=1); E accesses
// reg2[3] and reg3[2] (mux=0).
func fig3Trace() []core.Arrival {
	mk := func(cycle int64, port int, h1, h2, h3, mux int64) core.Arrival {
		return core.Arrival{
			Cycle: cycle, Port: port, Size: 64,
			// fields: h1 h2 h3 val mux
			Fields: []int64{h1, h2, h3, 0, mux},
		}
	}
	return []core.Arrival{
		mk(0, 1, 1, 1, 2, 1), // A
		mk(0, 2, 1, 1, 2, 1), // B
		mk(1, 1, 1, 1, 2, 1), // C
		mk(1, 2, 1, 1, 2, 1), // D
		mk(2, 1, 1, 3, 2, 0), // E
	}
}

// TestFigure3Walkthrough replays the paper's worked example on a
// 2-pipelined MP5 and checks the exact serial result: reg3[2] must be
// 2*4*4*4*4 + 7 = 519, the value a single Banzai pipeline produces when
// A,B,C,D multiply by reg1[1]=4 in arrival order and E adds reg2[3]=7
// last. Without order enforcement the paper shows E can overtake D and
// produce ((2*4*4*4)+7)*4 = 540 instead.
func TestFigure3Walkthrough(t *testing.T) {
	prog, err := compiler.Compile(fig3Program, compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		t.Fatal(err)
	}
	trace := fig3Trace()

	refRegs, _ := equiv.Reference(prog, trace)
	reg3 := prog.RegIndex("reg3")
	if got := refRegs[reg3][2]; got != 519 {
		t.Fatalf("reference reg3[2] = %d, want 519 (2*4^4 + 7)", got)
	}

	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 2,
		RecordOutputs: true, RecordAccessOrder: true,
	})
	res := sim.Run(trace)
	if res.Completed != 5 {
		t.Fatalf("completed %d of 5", res.Completed)
	}
	if got := sim.FinalRegs()[reg3][2]; got != 519 {
		t.Fatalf("MP5 reg3[2] = %d, want 519 (C1 enforced)", got)
	}
	if res.C1Violating != 0 {
		t.Fatalf("violations: %d", res.C1Violating)
	}
	if rep := equiv.Check(prog, sim, trace); !rep.Equivalent {
		t.Fatalf("not equivalent: %v", rep.Mismatches)
	}
}

// TestFigure3AccessOrderExact: the per-state access sequences on MP5 must
// equal arrival order exactly (A,B,C,D for reg1[1]; A,B,C,D,E for
// reg3[2]; E for reg2[3]).
func TestFigure3AccessOrderExact(t *testing.T) {
	prog, err := compiler.Compile(fig3Program, compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		t.Fatal(err)
	}
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 2, RecordAccessOrder: true,
	})
	sim.Run(fig3Trace())
	orders := sim.AccessOrders()
	want := map[string][]int64{
		keyFor(prog.RegIndex("reg1"), 1): {0, 1, 2, 3},
		keyFor(prog.RegIndex("reg2"), 3): {4},
		keyFor(prog.RegIndex("reg3"), 2): {0, 1, 2, 3, 4},
	}
	for k, w := range want {
		got := orders[k]
		if len(got) != len(w) {
			t.Fatalf("%s order = %v, want %v (all orders: %v)", k, got, w, orders)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("%s order = %v, want %v", k, got, w)
			}
		}
	}
	// No other state may have been touched.
	if len(orders) != len(want) {
		t.Fatalf("unexpected state accesses: %v", orders)
	}
}

func keyFor(reg, idx int) string {
	return "r" + itoa(reg) + "[" + itoa(idx) + "]"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// TestDegenerateSinglePipeline: with k=1 every architecture collapses to a
// single pipeline and must match the reference exactly — including the
// baselines that are otherwise incorrect or lossy.
func TestDegenerateSinglePipeline(t *testing.T) {
	prog, trace := synthSetup(t, 3, 64, 1, 3000, workload.Skewed, 17)
	for _, arch := range []core.Arch{
		core.ArchMP5, core.ArchMP5NoD4, core.ArchIdeal,
		core.ArchNaive, core.ArchStaticShard, core.ArchRecirc,
	} {
		sim := core.NewSimulator(prog, core.Config{
			Arch: arch, Pipelines: 1, Seed: 1,
			RecordOutputs: true, RecordAccessOrder: true,
		})
		res := sim.Run(trace)
		if res.Completed != res.Injected {
			t.Fatalf("%v: completed %d of %d", arch, res.Completed, res.Injected)
		}
		if res.C1Violating != 0 {
			t.Errorf("%v: %d violations impossible with one pipeline", arch, res.C1Violating)
		}
		if res.Recirculations != 0 {
			t.Errorf("%v: %d recirculations with one pipeline", arch, res.Recirculations)
		}
		if rep := equiv.Check(prog, sim, trace); !rep.Equivalent {
			t.Fatalf("%v k=1 not equivalent: %v", arch, rep.Mismatches)
		}
	}
}

// TestAccessOrderMatchesReferenceExactly: beyond counting violations, the
// MP5 per-state access sequences must equal the reference executor's
// sequences element by element.
func TestAccessOrderMatchesReferenceExactly(t *testing.T) {
	prog, trace := synthSetup(t, 4, 64, 4, 4000, workload.Skewed, 23)
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 2, RecordAccessOrder: true,
	})
	res := sim.Run(trace)
	if res.Completed != res.Injected {
		t.Fatalf("loss: %+v", res)
	}
	for key, seq := range sim.AccessOrders() {
		for i := 1; i < len(seq); i++ {
			if seq[i] <= seq[i-1] {
				t.Fatalf("%s access sequence not strictly in arrival order at %d: %v",
					key, i, seq[max(0, i-3):min(len(seq), i+3)])
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
