package core

import "mp5/internal/ir"

// Arrival describes one packet offered to the switch. Traces are generated
// by the workload package and must be sorted by (Cycle, Port) — the paper's
// §2.2.1 tie-break admits the smaller port first.
type Arrival struct {
	// Cycle is the arrival time in pipeline clock cycles.
	Cycle int64
	// Port is the input port (0-based).
	Port int
	// Size is the wire size in bytes (affects only arrival spacing,
	// which the generator has already applied; recorded for stats).
	Size int
	// Fields holds the initial packet header field values, in the
	// program's field order.
	Fields []int64
}

// visitAcc is one register access a packet performs during a stage visit.
type visitAcc struct {
	reg int
	// idx is the resolved register index for sharded arrays, or -1 for
	// array-level (unsharded) accesses.
	idx int
}

// visit is one stateful stage visit: the stage, the destination pipeline
// (resolved against the index-to-pipeline map at address-resolution time),
// and the accesses performed there.
type visit struct {
	stage int
	pipe  int
	accs  []visitAcc
}

// Packet is one in-flight packet inside the simulator.
type Packet struct {
	// ID is the arrival sequence number; it doubles as the FIFO
	// ordering timestamp (packets and their phantoms inherit it).
	ID int64
	// Port and Size echo the arrival record.
	Port int
	Size int
	// ArrivalCycle is when the packet arrived at the switch.
	ArrivalCycle int64
	// Env carries the header fields and PHV metadata (temps).
	Env *ir.Env

	// visits lists the resolved stateful stage visits in stage order;
	// nextVisit points at the first not-yet-performed one. accsBuf is
	// the flat backing array the visits' access lists sub-slice.
	visits    []visit
	accsBuf   []visitAcc
	nextVisit int

	// pipe is the pipeline the packet currently occupies; srcPipe is
	// where it was before its most recent crossbar steering (the
	// sub-FIFO it lands in is indexed by source pipeline).
	pipe    int
	srcPipe int

	// resolved is set once the packet passed the address-resolution
	// stage (visits are valid from then on).
	resolved bool

	// ecnMarked records a congestion mark applied at FIFO entry
	// (Config.ECNThreshold).
	ecnMarked bool

	// parked records that the packet outran its phantom to its visit
	// stage and waited in the crossbar buffer (counted once per packet in
	// Result.ParkedEarly, however many retry cycles it parks for).
	parked bool

	// Recirculation-baseline state: frozen marks that execution stopped
	// at resumeStage because the state lives in another pipeline; the
	// packet physically drains and re-enters the target pipeline.
	frozen      bool
	resumeStage int
	recircs     int
}

// pendingVisit returns the next unperformed visit, or nil.
func (p *Packet) pendingVisit() *visit {
	if p.nextVisit < len(p.visits) {
		return &p.visits[p.nextVisit]
	}
	return nil
}

// visitAt returns the pending visit if it is for stage s, else nil.
func (p *Packet) visitAt(s int) *visit {
	if v := p.pendingVisit(); v != nil && v.stage == s {
		return v
	}
	return nil
}

// stateless reports whether the packet has no unperformed stateful visits.
func (p *Packet) stateless() bool { return p.nextVisit >= len(p.visits) }

// ECNMarked reports whether the packet received a congestion mark.
func (p *Packet) ECNMarked() bool { return p.ecnMarked }
