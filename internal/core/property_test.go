package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mp5/internal/core"
	"mp5/internal/workload"
)

// TestSimulatorDeterminism: the same program, trace, and config must
// reproduce identical results run after run — the property the
// functional-equivalence methodology rests on.
func TestSimulatorDeterminism(t *testing.T) {
	for _, arch := range []core.Arch{
		core.ArchMP5, core.ArchMP5NoD4, core.ArchIdeal,
		core.ArchNaive, core.ArchStaticShard, core.ArchRecirc,
	} {
		prog, trace := synthSetup(t, 3, 128, 4, 3000, workload.Skewed, 55)
		run := func() (*core.Result, []int64) {
			sim := core.NewSimulator(prog, core.Config{
				Arch: arch, Pipelines: 4, Seed: 5, RecordAccessOrder: true,
			})
			r := sim.Run(trace)
			return r, append([]int64(nil), sim.EgressOrder()...)
		}
		r1, e1 := run()
		r2, e2 := run()
		if fmt.Sprintf("%+v", resultComparable(r1)) != fmt.Sprintf("%+v", resultComparable(r2)) {
			t.Fatalf("%v: results differ:\n%+v\n%+v", arch, r1, r2)
		}
		if len(e1) != len(e2) {
			t.Fatalf("%v: egress lengths differ", arch)
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("%v: egress order diverges at %d", arch, i)
			}
		}
	}
}

// resultComparable strips the slice field so Result values compare with ==.
func resultComparable(r *core.Result) core.Result {
	c := *r
	c.MaxFIFOPerStage = nil
	return c
}

// TestConservationProperty: across random configurations, every injected
// packet is either completed or accounted to exactly one drop counter.
func TestConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	archs := []core.Arch{
		core.ArchMP5, core.ArchMP5NoD4, core.ArchIdeal,
		core.ArchNaive, core.ArchStaticShard, core.ArchRecirc,
	}
	for trial := 0; trial < 20; trial++ {
		arch := archs[rng.Intn(len(archs))]
		k := []int{1, 2, 3, 4, 8}[rng.Intn(5)]
		stages := 1 + rng.Intn(4)
		size := []int{1, 8, 64, 512}[rng.Intn(4)]
		fifoCap := []int{0, 0, 2, 8}[rng.Intn(4)]
		lat := []int64{0, 0, 1, 3}[rng.Intn(4)]
		starve := []int64{0, 0, 32}[rng.Intn(3)]
		prog, trace := synthSetup(t, stages, size, k, 2000, workload.Pattern(rng.Intn(2)), int64(trial))
		sim := core.NewSimulator(prog, core.Config{
			Arch: arch, Pipelines: k, Seed: int64(trial),
			FIFOCap: fifoCap, CrossLatency: lat, StarveThreshold: starve,
		})
		res := sim.Run(trace)
		if res.Stalled {
			t.Fatalf("trial %d (%v k=%d st=%d sz=%d cap=%d lat=%d): stalled",
				trial, arch, k, stages, size, fifoCap, lat)
		}
		accounted := res.Completed + res.DroppedData + res.DroppedInsert +
			res.DroppedIngress + res.DroppedStarved
		if accounted != res.Injected {
			t.Fatalf("trial %d (%v k=%d cap=%d): %d accounted of %d injected (%+v)",
				trial, arch, k, fifoCap, accounted, res.Injected, res)
		}
		if res.Throughput < 0 || res.Throughput > 1.2 {
			t.Fatalf("trial %d: nonsense throughput %f", trial, res.Throughput)
		}
	}
}

// TestUnsortedTraceRejected: the simulator refuses traces that violate the
// (cycle, port) arrival order contract.
func TestUnsortedTraceRejected(t *testing.T) {
	prog, trace := synthSetup(t, 1, 8, 2, 10, workload.Uniform, 1)
	trace[3], trace[4] = trace[4], trace[3]
	// Force a genuine order violation regardless of what the swap did.
	trace[3].Cycle = trace[4].Cycle + 10
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted trace accepted")
		}
	}()
	core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 2}).Run(trace)
}

// TestEmptyTrace: a zero-packet run terminates immediately with a sane
// zero Result.
func TestEmptyTrace(t *testing.T) {
	prog, _ := synthSetup(t, 1, 8, 2, 10, workload.Uniform, 1)
	sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 2})
	res := sim.Run(nil)
	if res.Injected != 0 || res.Completed != 0 || res.Stalled {
		t.Fatalf("empty run: %+v", res)
	}
}
