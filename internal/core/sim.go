package core

import (
	"fmt"
	"sort"

	"mp5/internal/banzai"
	"mp5/internal/ir"
	"mp5/internal/ir/bytecode"
	"mp5/internal/sharding"
	"mp5/internal/stats"
)

// accessKey identifies one state for ordering purposes: a sharded register
// index, or a whole unsharded array (idx = -1).
type accessKey struct {
	reg int
	idx int
}

// phantomEv is a scheduled phantom-channel delivery (Invariant 1: phantoms
// are never queued before their destination stage, so delivery time is
// generation time plus the stage distance).
type phantomEv struct {
	stage   int
	pipe    int
	srcPipe int
	ts      int64
	pktID   int64
}

// crossEv is a data packet in flight across an inter-pipeline link.
type crossEv struct {
	stage int
	pkt   *Packet
}

// pktStage keys per-(packet, stage) phantom bookkeeping.
type pktStage struct {
	id    int64
	stage int
}

// stageState is the per-(stage, pipeline) runtime state.
type stageState struct {
	// inline is the packet delivered this cycle on the pass-through
	// path (same pipeline, no state access here).
	inline *Packet
	// out is the packet emitted by this stage this cycle, delivered to
	// the next stage at the start of the next cycle.
	out *Packet
	// fifo buffers stateful visitors (nil for stateless stages and in
	// ideal mode).
	fifo *StageFIFO
	// idealQ replaces the FIFO in ideal mode: selection is by per-index
	// eligibility instead of a single logical FIFO.
	idealQ []*Packet
}

// pktQueue is an amortized O(1) FIFO of packets.
type pktQueue struct {
	items []*Packet
	head  int
}

func (q *pktQueue) len() int { return len(q.items) - q.head }
func (q *pktQueue) push(p *Packet) {
	q.items = append(q.items, p)
}
func (q *pktQueue) pop() *Packet {
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append([]*Packet(nil), q.items[q.head:]...)
		q.head = 0
	}
	return p
}
func (q *pktQueue) peek() *Packet { return q.items[q.head] }

// recircEntry is a packet waiting to re-enter a pipeline input.
type recircEntry struct {
	p     *Packet
	ready int64
}

// Simulator is a deterministic cycle-accurate model of one MP5 (or
// baseline) switch instance running one compiled program.
type Simulator struct {
	cfg  Config
	prog *ir.Program
	k    int // pipelines
	S    int // stages
	// resStage is the final address-resolution stage (phantom
	// generation happens when a packet is processed there).
	resStage int

	shard *sharding.Map
	regs  []*banzai.RegFile
	st    [][]stageState // [stage][pipe]

	// bc and vm are the bytecode-compiled program and its operand stack;
	// nil when cfg.Interpret pins the tree-walking interpreter. The
	// simulator is single-goroutine, so one VM serves every pipeline.
	bc *bytecode.Program
	vm *bytecode.VM

	// phantoms and crossings are cyclic schedules indexed by delivery
	// cycle modulo their length; delays are bounded by the pipeline
	// depth plus the crossbar latency, so a slot always drains before
	// it is reused (and its backing array is recycled).
	phantoms  [][]phantomEv
	crossings [][]crossEv
	// phantomPending tracks, per (packet, stage), a phantom still on the
	// (slower) phantom channel, so early data arrivals can wait for
	// their placeholder instead of being miscounted as drops.
	phantomPending map[pktStage]bool
	// pendingInserts holds data packets that arrived at their visit
	// stage before their phantom (possible only with CrossLatency > 0).
	pendingInserts map[pktStage]*Packet

	ingress     pktQueue      // global ingress (sprayed architectures)
	pipeIngress []pktQueue    // per-pipe ingress (recirculation)
	pipeRecirc  []pktQueue    // per-pipe recirculation queue (priority)
	recircWait  []recircEntry // packets between pipeline passes

	pendingOrder map[accessKey][]int64 // ideal-mode eligibility fronts
	deadIDs      map[int64]bool        // dropped packets with live phantoms
	// phantomsLeft counts, per packet, phantom placeholders not yet
	// consumed (by a successful insert, a push overflow, or a dead pop);
	// when a dead packet's count hits zero its deadIDs entry is pruned,
	// so neither map grows with run length.
	phantomsLeft map[int64]int

	// live counts every entity still inside the switch: data packets
	// from ingress admission to egress or abandonment, plus phantom
	// placeholders from scheduling to consumption. It replaces the
	// former per-cycle idle() sweep over all queues and slots with an
	// O(1) check.
	live int64
	// occ[i] is the number of entries (inline packets, FIFO entries
	// including phantom placeholders, ideal-queue packets) currently in
	// stage i across all pipelines; processStages skips stages at zero.
	occ []int
	// outCnt[i] is the number of pipelines of stage i holding an emitted
	// packet; deliverOutputs skips stages at zero.
	outCnt []int
	// work records whether the current cycle mutated simulator state; a
	// workless cycle proves every cycle until the next scheduled event
	// is workless too, so Run fast-forwards s.now instead of stepping.
	work bool
	// sprayNext is the pipeline the uniform spray (D1) considers first on
	// the next admission cycle. Starting every cycle at pipe 0 would bias
	// sub-line-rate traffic toward the low pipelines; rotating the start
	// keeps per-pipe admissions near-uniform as §3.1 assumes.
	sprayNext int
	// fullSweep disables the occupancy skip lists and the idle
	// fast-forward, restoring the pre-event-driven per-cycle sweeps.
	// Testing aid: the equivalence gate runs both schedulers and
	// compares event streams, results, and outputs bit for bit.
	fullSweep bool

	accessLog   map[accessKey][]int64
	outputs     map[int64][]int64
	egressOrder []int64
	latencies   []int64

	// statefulStage marks stages carrying register accesses; used to skip
	// the observed (EvAccess-emitting) execution path on stateless stages.
	statefulStage []bool
	// accessSeen dedupes EvAccess emission per (reg, clamped idx) within
	// one stage execution; reused across executions to avoid allocation.
	accessSeen map[accessKey]bool

	res Result
	now int64
}

// NewSimulator builds a simulator for an MP5-compiled program (the program
// must carry access metadata, i.e. compiled with TargetMP5 — baselines also
// consume that metadata for steering and state placement).
func NewSimulator(prog *ir.Program, cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	if err := prog.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid program: %v", err))
	}
	if len(prog.Accesses) > 0 && prog.ResolutionStages == 0 {
		panic("core: stateful program lacks resolution stages; compile with TargetMP5")
	}
	s := &Simulator{
		cfg:            cfg,
		prog:           prog,
		k:              cfg.Pipelines,
		S:              prog.NumStages(),
		resStage:       prog.ResolutionStages - 1,
		shard:          sharding.New(prog, cfg.Pipelines, cfg.ShardPolicy, cfg.Seed),
		phantoms:       make([][]phantomEv, prog.NumStages()+int(cfg.CrossLatency)+2),
		crossings:      make([][]crossEv, cfg.CrossLatency+2),
		phantomPending: make(map[pktStage]bool),
		pendingInserts: make(map[pktStage]*Packet),
		pendingOrder:   make(map[accessKey][]int64),
		deadIDs:        make(map[int64]bool),
		phantomsLeft:   make(map[int64]int),
	}
	s.regs = make([]*banzai.RegFile, s.k)
	for j := 0; j < s.k; j++ {
		s.regs[j] = banzai.NewRegFile(prog)
	}
	if !cfg.Interpret {
		s.bc = bytecode.MustCompile(prog)
		s.vm = bytecode.NewVM(s.bc)
	}
	s.st = make([][]stageState, s.S)
	s.occ = make([]int, s.S)
	s.outCnt = make([]int, s.S)
	s.statefulStage = make([]bool, s.S)
	for _, a := range prog.Accesses {
		s.statefulStage[a.Stage] = true
	}
	s.accessSeen = make(map[accessKey]bool)
	for i := range s.st {
		s.st[i] = make([]stageState, s.k)
		if s.statefulStage[i] && cfg.Arch != ArchIdeal && cfg.Arch != ArchRecirc {
			for j := range s.st[i] {
				s.st[i][j].fifo = NewStageFIFO(s.k, cfg.FIFOCap)
			}
		}
	}
	if cfg.Arch == ArchRecirc {
		s.pipeIngress = make([]pktQueue, s.k)
		s.pipeRecirc = make([]pktQueue, s.k)
	}
	if cfg.RecordAccessOrder {
		s.accessLog = make(map[accessKey][]int64)
	}
	if cfg.RecordOutputs {
		s.outputs = make(map[int64][]int64)
	}
	s.res.Arch = cfg.Arch
	s.res.Pipelines = s.k
	s.res.MaxFIFOPerStage = make([]int, s.S)
	return s
}

// usePhantoms reports whether the architecture enforces D4 via phantoms.
func (s *Simulator) usePhantoms() bool {
	switch s.cfg.Arch {
	case ArchMP5, ArchNaive, ArchStaticShard:
		return true
	}
	return false
}

// Run executes the simulation over the arrival trace (must be sorted by
// Cycle, ties by Port) and returns the result summary.
func (s *Simulator) Run(arrivals []Arrival) *Result {
	for i := 1; i < len(arrivals); i++ {
		a, b := arrivals[i-1], arrivals[i]
		if b.Cycle < a.Cycle || (b.Cycle == a.Cycle && b.Port < a.Port) {
			panic("core: arrival trace not sorted by (cycle, port)")
		}
	}
	s.res.Injected = int64(len(arrivals))
	if len(arrivals) > 0 {
		s.res.FirstArrival = arrivals[0].Cycle
		s.res.LastArrival = arrivals[len(arrivals)-1].Cycle
		s.now = arrivals[0].Cycle
	}
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = s.res.LastArrival + 100000 + s.res.Injected*int64(4*s.S+8)
	}

	ai := 0
	for {
		// live == 0 is the former idle() sweep over every queue, slot,
		// and schedule, maintained incrementally at admit, schedule,
		// consume, egress, and abandon sites.
		if ai == len(arrivals) && s.live == 0 {
			break
		}
		if s.now > maxCycles {
			s.res.Stalled = true
			break
		}
		s.work = false
		s.deliverPhantoms()
		s.deliverCrossings()
		s.deliverOutputs()
		ai = s.admitArrivals(arrivals, ai)
		s.processStages()
		s.maybeRemap()
		if s.work || s.fullSweep {
			s.now++
		} else {
			// Nothing changed this cycle, so nothing can change until
			// the next scheduled event: every per-cycle behaviour is a
			// function of simulator state (unchanged) and of s.now only
			// through the event schedules accounted for below.
			s.now = s.nextEventCycle(arrivals, ai, maxCycles)
		}
	}
	s.finalize()
	return &s.res
}

// SetFullSweep forces the legacy scheduler: visit every (stage, pipeline)
// slot every cycle and never fast-forward across workless cycles. The
// observable behaviour (events, results, outputs, state) is identical to
// the event-driven scheduler by construction; tests compare the two, and
// mp5sim -full-sweep exposes it for debugging. Must be called before Run.
func (s *Simulator) SetFullSweep(on bool) { s.fullSweep = on }

// nextEventCycle returns the earliest future cycle at which anything can
// happen: the next due arrival, the next scheduled phantom or crossing
// delivery, the next recirculation re-entry, or the next dynamic-sharding
// boundary (Remap mutates its counters even when the switch is quiet).
// With no event pending it jumps to maxCycles+1, which the loop head turns
// into the same stalled result the per-cycle scheduler would reach.
func (s *Simulator) nextEventCycle(arrivals []Arrival, ai int, maxCycles int64) int64 {
	next := maxCycles + 1
	consider := func(c int64) {
		if c > s.now && c < next {
			next = c
		}
	}
	if ai < len(arrivals) {
		consider(arrivals[ai].Cycle)
	}
	// The cyclic schedules hold at most one delivery per slot and drain
	// before slot reuse, so a non-empty slot maps to exactly one future
	// cycle within one wrap of the schedule.
	n := int64(len(s.phantoms))
	for slot := range s.phantoms {
		if len(s.phantoms[slot]) > 0 {
			d := (int64(slot) - s.now%n + n) % n
			if d == 0 {
				d = n
			}
			consider(s.now + d)
		}
	}
	n = int64(len(s.crossings))
	for slot := range s.crossings {
		if len(s.crossings[slot]) > 0 {
			d := (int64(slot) - s.now%n + n) % n
			if d == 0 {
				d = n
			}
			consider(s.now + d)
		}
	}
	for i := range s.recircWait {
		consider(s.recircWait[i].ready)
	}
	if s.cfg.dynamicSharding() {
		consider(s.now - s.now%s.cfg.RemapInterval + s.cfg.RemapInterval)
	}
	if next <= s.now {
		next = s.now + 1 // defensive: never stall the clock
	}
	return next
}

// deliverPhantoms lands phantom-channel deliveries scheduled for this cycle
// (before data deliveries, so inserts find their placeholders), then
// retries data packets that had outrun their phantoms.
func (s *Simulator) deliverPhantoms() {
	slot := int(s.now % int64(len(s.phantoms)))
	if evs := s.phantoms[slot]; len(evs) > 0 {
		s.phantoms[slot] = evs[:0]
		s.work = true
		for _, ev := range evs {
			if s.cfg.CrossLatency > 0 {
				delete(s.phantomPending, pktStage{ev.pktID, ev.stage})
			}
			st := &s.st[ev.stage][ev.pipe]
			if st.fifo.PushPhantom(ev.srcPipe, ev.ts, ev.pktID, s.now) {
				s.occ[ev.stage]++
				s.emit(EvPhantom, ev.pktID, ev.stage, ev.pipe)
			} else {
				s.res.DroppedPhantom++
				s.emit(EvPhantomDrop, ev.pktID, ev.stage, ev.pipe)
				s.phantomConsumed(ev.pktID)
			}
			s.noteFIFODepth(ev.stage, st)
		}
	}
	if len(s.pendingInserts) > 0 {
		// Snapshot first: a retry that is still early re-parks itself.
		// The snapshot is sorted by (packet id, stage) — ranging over
		// the map directly made the retry order, and with it the order
		// of same-cycle insert/drop events, nondeterministic across
		// runs of the same seed.
		retry := make([]pktStage, 0, len(s.pendingInserts))
		for key := range s.pendingInserts {
			retry = append(retry, key)
		}
		sort.Slice(retry, func(a, b int) bool {
			if retry[a].id != retry[b].id {
				return retry[a].id < retry[b].id
			}
			return retry[a].stage < retry[b].stage
		})
		for _, key := range retry {
			p := s.pendingInserts[key]
			delete(s.pendingInserts, key)
			s.arriveAtVisit(p, key.stage)
		}
	}
}

// phantomConsumed retires one of a packet's outstanding phantom
// placeholders (successful insert, push overflow, or dead pop). When the
// last one goes, the packet's bookkeeping — including a deadIDs entry if
// it was dropped mid-flight — is pruned.
func (s *Simulator) phantomConsumed(pktID int64) {
	s.live--
	n := s.phantomsLeft[pktID] - 1
	if n > 0 {
		s.phantomsLeft[pktID] = n
		return
	}
	delete(s.phantomsLeft, pktID)
	delete(s.deadIDs, pktID)
}

// deliverCrossings lands data packets whose inter-pipeline link traversal
// (Config.CrossLatency) completes this cycle.
func (s *Simulator) deliverCrossings() {
	slot := int(s.now % int64(len(s.crossings)))
	evs := s.crossings[slot]
	if len(evs) == 0 {
		return
	}
	s.crossings[slot] = evs[:0]
	s.work = true
	for _, ev := range evs {
		s.arriveAtVisit(ev.pkt, ev.stage)
	}
}

// deliverOutputs moves every stage's emitted packet into the next stage
// (crossbar steering happens here) or to egress.
func (s *Simulator) deliverOutputs() {
	for i := s.S - 1; i >= 0; i-- {
		if s.outCnt[i] == 0 && !s.fullSweep {
			continue
		}
		for j := 0; j < s.k; j++ {
			st := &s.st[i][j]
			if st.out == nil {
				continue
			}
			p := st.out
			st.out = nil
			s.outCnt[i]--
			s.work = true
			s.route(p, i+1)
		}
	}
}

// route places packet p into stage (or egress when stage == S).
func (s *Simulator) route(p *Packet, stage int) {
	if stage == s.S {
		s.egress(p)
		return
	}
	if s.cfg.Arch == ArchRecirc {
		// No crossbar: the packet continues in its pipeline.
		st := &s.st[stage][p.pipe]
		if st.inline != nil {
			panic("core: inline slot collision (recirc)")
		}
		st.inline = p
		s.occ[stage]++
		return
	}
	if v := p.visitAt(stage); v != nil {
		crossing := v.pipe != p.pipe
		p.srcPipe = p.pipe
		p.pipe = v.pipe
		if crossing {
			s.emit(EvSteer, p.ID, stage, v.pipe)
		}
		if crossing && s.cfg.CrossLatency > 0 {
			slot := int((s.now + s.cfg.CrossLatency) % int64(len(s.crossings)))
			s.crossings[slot] = append(s.crossings[slot], crossEv{stage: stage, pkt: p})
			return
		}
		s.arriveAtVisit(p, stage)
		return
	}
	st := &s.st[stage][p.pipe]
	if st.inline != nil {
		panic("core: inline slot collision")
	}
	st.inline = p
	s.occ[stage]++
}

// arriveAtVisit lands a data packet at its stateful visit stage: ECN
// marking, then the architecture's buffering discipline. With a slow
// crossbar a packet can beat its phantom here; it parks until the
// placeholder lands or is known dropped.
func (s *Simulator) arriveAtVisit(p *Packet, stage int) {
	st := &s.st[stage][p.pipe]
	if th := s.cfg.ECNThreshold; th > 0 {
		depth := len(st.idealQ)
		if st.fifo != nil {
			depth = st.fifo.Len()
		}
		if depth > th && !p.ecnMarked {
			s.res.MarkedECN++
			p.ecnMarked = true
			s.work = true
		}
	}
	switch s.cfg.Arch {
	case ArchMP5NoD4:
		s.work = true
		if st.fifo.PushData(p.srcPipe, p, s.now) {
			s.occ[stage]++
			s.emit(EvEnqueue, p.ID, stage, p.pipe)
		} else {
			s.res.DroppedData++
			s.abandon(p, CauseData)
		}
	case ArchIdeal:
		st.idealQ = append(st.idealQ, p)
		s.occ[stage]++
		s.work = true
		s.emit(EvEnqueue, p.ID, stage, p.pipe)
		if d := len(st.idealQ); d > s.res.MaxFIFOPerStage[stage] {
			s.res.MaxFIFOPerStage[stage] = d
			if d > s.res.MaxFIFODepth {
				s.res.MaxFIFODepth = d
			}
		}
	default:
		if st.fifo.Insert(p, s.now) {
			// The data packet replaces its placeholder in place:
			// stage occupancy is unchanged, the phantom is consumed.
			s.work = true
			s.phantomConsumed(p.ID)
			s.emit(EvEnqueue, p.ID, stage, p.pipe)
			break
		}
		key := pktStage{p.ID, stage}
		switch {
		case s.phantomPending[key]:
			// The phantom is still on the (slower) phantom
			// channel: wait in the crossbar buffer. Re-parking a
			// retried packet is not work — nothing can change
			// until its phantom's scheduled delivery.
			if !p.parked {
				p.parked = true
				s.res.ParkedEarly++
			}
			s.pendingInserts[key] = p
		default:
			s.work = true
			s.res.DroppedInsert++
			s.abandon(p, CauseInsert)
		}
	}
	s.noteFIFODepth(stage, st)
}

func (s *Simulator) noteFIFODepth(stage int, st *stageState) {
	if st.fifo == nil {
		return
	}
	if d := st.fifo.Len(); d > s.res.MaxFIFOPerStage[stage] {
		s.res.MaxFIFOPerStage[stage] = d
		if d > s.res.MaxFIFODepth {
			s.res.MaxFIFODepth = d
		}
	}
}

// admitArrivals moves due arrivals into ingress queues and fills free
// stage-0 slots (one packet per pipeline per cycle).
func (s *Simulator) admitArrivals(arrivals []Arrival, ai int) int {
	for ai < len(arrivals) && arrivals[ai].Cycle <= s.now {
		a := &arrivals[ai]
		p := &Packet{
			ID:           int64(ai),
			Port:         a.Port,
			Size:         a.Size,
			ArrivalCycle: a.Cycle,
			Env:          ir.NewEnv(s.prog),
		}
		copy(p.Env.Fields, a.Fields)
		s.work = true
		if s.cfg.Arch == ArchRecirc {
			pipe := a.Port * s.k / s.cfg.Ports
			if pipe >= s.k {
				pipe = s.k - 1
			}
			if cap := s.cfg.RecircIngressCap; cap > 0 && s.pipeIngress[pipe].len() >= cap {
				// Ingress buffer overflow: today's switches
				// drop rather than queue without bound.
				s.res.DroppedIngress++
				s.emitDrop(p.ID, -1, pipe, CauseIngress)
			} else {
				p.pipe = pipe
				s.pipeIngress[pipe].push(p)
				s.live++
			}
		} else {
			s.ingress.push(p)
			s.live++
		}
		ai++
	}
	if s.cfg.Arch == ArchRecirc {
		// Re-admit recirculated packets whose delay elapsed. The
		// recirculation port has priority over fresh arrivals, as on
		// production switches — otherwise re-circulated packets sit
		// behind an ever-growing arrival backlog.
		kept := s.recircWait[:0]
		for _, e := range s.recircWait {
			if e.ready <= s.now {
				s.pipeRecirc[e.p.pipe].push(e.p)
				s.work = true
			} else {
				kept = append(kept, e)
			}
		}
		s.recircWait = kept
		for j := 0; j < s.k; j++ {
			q := &s.pipeIngress[j]
			if d := q.len() + s.pipeRecirc[j].len(); d > s.res.MaxIngressDepth {
				s.res.MaxIngressDepth = d
			}
			if s.st[0][j].inline != nil {
				continue
			}
			switch {
			case s.pipeRecirc[j].len() > 0:
				s.st[0][j].inline = s.pipeRecirc[j].pop()
				s.occ[0]++
				s.work = true
				s.emit(EvAdmit, s.st[0][j].inline.ID, 0, j)
			case q.len() > 0:
				s.st[0][j].inline = q.pop()
				s.occ[0]++
				s.work = true
				s.emit(EvAdmit, s.st[0][j].inline.ID, 0, j)
			}
		}
		return ai
	}
	if d := s.ingress.len(); d > s.res.MaxIngressDepth {
		s.res.MaxIngressDepth = d
	}
	// Uniform spray (D1): free pipelines pick up arrivals in order,
	// round-robin from where the previous admission cycle left off.
	start := s.sprayNext
	for t := 0; t < s.k && s.ingress.len() > 0; t++ {
		j := (start + t) % s.k
		if s.st[0][j].inline == nil {
			p := s.ingress.pop()
			p.pipe = j
			s.st[0][j].inline = p
			s.occ[0]++
			s.work = true
			s.emit(EvAdmit, p.ID, 0, j)
			s.sprayNext = (j + 1) % s.k
		}
	}
	return ai
}

// processStages runs every (stage, pipeline) slot for one cycle: serve at
// most one packet — the inline pass-through packet if present (Invariant 2:
// stateless packets are never queued and take priority), else an eligible
// queued stateful packet.
func (s *Simulator) processStages() {
	for i := 0; i < s.S; i++ {
		if s.occ[i] == 0 && !s.fullSweep {
			continue // no inline packet, FIFO entry, or ideal-queue entry
		}
		for j := 0; j < s.k; j++ {
			s.processSlot(i, j)
		}
	}
}

func (s *Simulator) processSlot(stage, pipe int) {
	st := &s.st[stage][pipe]
	if s.cfg.Arch == ArchRecirc {
		s.processRecircSlot(stage, pipe, st)
		return
	}

	// Starvation guard (§3.4): drop an incoming truly-stateless packet
	// in favour of a long-waiting queued stateful packet.
	if st.inline != nil && s.cfg.StarveThreshold > 0 && st.fifo != nil && st.inline.stateless() {
		if h, _, ok := st.fifo.Head(); ok && !h.isPhantom() && s.now-h.enq > s.cfg.StarveThreshold {
			s.res.DroppedStarved++
			s.abandon(st.inline, CauseStarved)
			st.inline = nil
			s.occ[stage]--
			s.work = true
		}
	}

	var serve *Packet
	fromQueue := false
	switch {
	case st.inline != nil:
		serve = st.inline
		st.inline = nil
		s.occ[stage]--
	case s.cfg.Arch == ArchIdeal && len(st.idealQ) > 0:
		serve = s.popIdeal(st)
		fromQueue = serve != nil
		if fromQueue {
			s.occ[stage]--
		}
	case st.fifo != nil:
		for {
			h, fi, ok := st.fifo.Head()
			if !ok {
				break
			}
			if h.isPhantom() {
				if len(s.deadIDs) > 0 && s.deadIDs[h.pktID] {
					// The awaited packet was dropped
					// upstream: clear the placeholder.
					// (PopHead zeroes the slot h points at,
					// so retire the popped copy's id.)
					dead := st.fifo.PopHead(fi)
					s.occ[stage]--
					s.work = true
					s.res.DeadPhantomPops++
					s.phantomConsumed(dead.pktID)
					continue
				}
				break // D4: block until the data packet arrives
			}
			e := st.fifo.PopHead(fi)
			s.occ[stage]--
			serve = e.data
			fromQueue = true
			break
		}
	}
	if serve == nil {
		return
	}
	s.work = true
	s.emit(EvExec, serve.ID, stage, pipe)
	if fromQueue {
		s.accountVisitExecution(serve, stage, pipe)
	}
	s.execStage(serve, stage, pipe)
	if fromQueue {
		s.completeVisit(serve, stage)
	}
	if stage == s.resStage && !serve.resolved {
		s.resolve(serve, pipe)
	}
	st.out = serve
	s.outCnt[stage]++
}

// execStage runs one stage's instructions for packet p on pipeline pipe
// through the active executor (bytecode VM by default, tree-walking
// interpreter under Config.Interpret). When a trace hook is attached and
// the stage is stateful, execution goes through the observed path so every
// effective register access (predicate held, index resolved to its
// concrete clamped value) emits one EvAccess event per distinct
// (register, index) the packet touches. The event stream therefore
// reconstructs the exact per-state access order — the ground truth for
// checking C1 against the single-pipeline reference. Both executors honor
// the same observation contract, so the trace is executor-independent.
func (s *Simulator) execStage(p *Packet, stage, pipe int) {
	st := &s.prog.Stages[stage]
	if s.cfg.Trace == nil || !s.statefulStage[stage] {
		if s.bc != nil {
			if err := s.vm.ExecStage(&s.bc.Stages[stage], p.Env, s.regs[pipe]); err != nil {
				panic("core: " + err.Error()) // compiled code is never corrupt
			}
			return
		}
		ir.ExecStage(st, p.Env, s.regs[pipe])
		return
	}
	seen := s.accessSeen
	obs := func(reg int, idx int64, write bool) {
		key := accessKey{reg, banzai.ClampIndex(int(idx), s.prog.Regs[reg].Size)}
		if seen[key] {
			return
		}
		seen[key] = true
		s.cfg.Trace(Event{
			Cycle: s.now, Kind: EvAccess, PktID: p.ID,
			Stage: stage, Pipe: pipe, Reg: key.reg, Idx: key.idx,
		})
	}
	if s.bc != nil {
		if err := s.vm.ExecStageObserved(&s.bc.Stages[stage], p.Env, s.regs[pipe], obs); err != nil {
			panic("core: " + err.Error())
		}
	} else {
		ir.ExecStageObserved(st, p.Env, s.regs[pipe], obs)
	}
	clear(seen)
}

// accountVisitExecution counts conservative-phantom visits whose stateful
// work is predicated off (§3.3's wasted cycle).
func (s *Simulator) accountVisitExecution(p *Packet, stage, pipe int) {
	any := false
	for _, in := range s.prog.Stages[stage].Instrs {
		if !in.Op.IsStateful() {
			continue
		}
		if in.Pred.IsNone() {
			any = true
			break
		}
		truth := p.Env.Load(in.Pred) != 0
		if truth != in.PredNeg {
			any = true
			break
		}
	}
	if !any {
		s.res.WastedVisits++
	}
}

// completeVisit finishes the packet's pending visit at this stage:
// in-flight counters drop, access order is logged, eligibility fronts pop.
func (s *Simulator) completeVisit(p *Packet, stage int) {
	v := p.pendingVisit()
	if v == nil || v.stage != stage {
		panic("core: queued packet served at wrong stage")
	}
	for _, a := range v.accs {
		s.shard.NoteDone(a.reg, a.idx)
		key := accessKey{a.reg, a.idx}
		if s.accessLog != nil {
			s.accessLog[key] = append(s.accessLog[key], p.ID)
		}
		if s.cfg.Arch == ArchIdeal {
			s.popPendingOrder(key, p.ID)
		}
	}
	p.nextVisit++
}

// popIdeal selects, among queued packets, the smallest-id packet whose every
// access is at the front of its per-index pending order (per-index order
// enforcement with no head-of-line blocking — the ideal design of §3.5.2).
func (s *Simulator) popIdeal(st *stageState) *Packet {
	best := -1
	for i, p := range st.idealQ {
		v := p.pendingVisit()
		ok := true
		for _, a := range v.accs {
			q := s.pendingOrder[accessKey{a.reg, a.idx}]
			if len(q) == 0 || q[0] != p.ID {
				ok = false
				break
			}
		}
		if ok && (best < 0 || p.ID < st.idealQ[best].ID) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	p := st.idealQ[best]
	st.idealQ = append(st.idealQ[:best], st.idealQ[best+1:]...)
	return p
}

// popPendingOrder removes id from the front of key's eligibility list.
func (s *Simulator) popPendingOrder(key accessKey, id int64) {
	q := s.pendingOrder[key]
	if len(q) == 0 || q[0] != id {
		panic("core: ideal eligibility order corrupted")
	}
	if len(q) == 1 {
		delete(s.pendingOrder, key)
	} else {
		s.pendingOrder[key] = q[1:]
	}
}

// removePendingOrder removes id from anywhere in key's list (drop path).
func (s *Simulator) removePendingOrder(key accessKey, id int64) {
	q := s.pendingOrder[key]
	for i, v := range q {
		if v == id {
			s.pendingOrder[key] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// resolve performs preemptive address resolution for packet p (processed in
// the final resolution stage of pipeline pipe): evaluate resolvable
// predicates, clamp indices, look up the index-to-pipeline map, bump
// counters, build the visit list, and emit phantoms over the phantom
// channel (one per stateful stage visit).
func (s *Simulator) resolve(p *Packet, pipe int) {
	p.resolved = true
	s.emit(EvResolve, p.ID, s.resStage, pipe)
	if n := len(s.prog.Accesses); n > 0 {
		// One flat allocation each for the visit list and the access
		// records; same-stage access groups sub-slice accsBuf (which
		// never reallocates, so the sub-slices stay valid).
		p.visits = make([]visit, 0, n)
		p.accsBuf = make([]visitAcc, 0, n)
	}
	for ai := range s.prog.Accesses {
		a := &s.prog.Accesses[ai]
		if a.PredResolvable && !a.Pred.IsNone() {
			truth := p.Env.Load(a.Pred) != 0
			if truth == a.PredNeg {
				continue // resolved: this access will not happen
			}
		}
		idx := -1
		if s.shard.Sharded(a.Reg) {
			idx = banzai.ClampIndex(int(p.Env.Load(a.Idx)), s.prog.Regs[a.Reg].Size)
		}
		dest := s.shard.PipeOf(a.Reg, maxIdx(idx))
		s.shard.NoteResolved(a.Reg, maxIdx(idx))
		p.accsBuf = append(p.accsBuf, visitAcc{reg: a.Reg, idx: idx})
		n := len(p.visits)
		if n > 0 && p.visits[n-1].stage == a.Stage {
			if p.visits[n-1].pipe != dest {
				panic("core: co-located accesses resolved to different pipelines")
			}
			p.visits[n-1].accs = p.accsBuf[len(p.accsBuf)-len(p.visits[n-1].accs)-1:]
		} else {
			p.visits = append(p.visits, visit{
				stage: a.Stage, pipe: dest,
				accs: p.accsBuf[len(p.accsBuf)-1:],
			})
		}
		if s.cfg.Arch == ArchIdeal {
			s.insertPendingOrder(accessKey{a.Reg, idx}, p.ID)
		}
	}
	if s.usePhantoms() {
		for _, v := range p.visits {
			// With a slow crossbar (CrossLatency > 0) every phantom
			// takes the worst-case path — the phantom channel is
			// pipelined to constant depth — so phantoms still land
			// in generation order globally. A same-pipe phantom
			// arriving "late" only parks its (earlier) data packet
			// briefly; a crossing phantom arriving after another
			// flow's service would break C1.
			at := s.now + int64(v.stage-s.resStage) + s.cfg.CrossLatency
			slot := int(at % int64(len(s.phantoms)))
			s.phantoms[slot] = append(s.phantoms[slot], phantomEv{
				stage: v.stage, pipe: v.pipe, srcPipe: pipe,
				ts: p.ID, pktID: p.ID,
			})
			s.live++
			s.phantomsLeft[p.ID]++
			if s.cfg.CrossLatency > 0 {
				// Pending-phantom bookkeeping only matters when
				// data can outrun its phantom (slow crossbar).
				s.phantomPending[pktStage{p.ID, v.stage}] = true
			}
		}
	}
}

// insertPendingOrder inserts id into key's list keeping ascending order
// (resolutions of different pipelines can interleave within a cycle).
func (s *Simulator) insertPendingOrder(key accessKey, id int64) {
	q := s.pendingOrder[key]
	i := len(q)
	for i > 0 && q[i-1] > id {
		i--
	}
	q = append(q, 0)
	copy(q[i+1:], q[i:])
	q[i] = id
	s.pendingOrder[key] = q
}

// maxIdx maps the array-level marker (-1) to slot 0 for the sharding map.
func maxIdx(idx int) int {
	if idx < 0 {
		return 0
	}
	return idx
}

// abandon drops packet p mid-flight: releases its in-flight counters,
// eligibility entries, and marks its id dead so later phantom placeholders
// get cleared instead of blocking forever.
func (s *Simulator) abandon(p *Packet, cause DropCause) {
	s.emitDrop(p.ID, -1, p.pipe, cause)
	for vi := p.nextVisit; vi < len(p.visits); vi++ {
		for _, a := range p.visits[vi].accs {
			s.shard.NoteDone(a.reg, a.idx)
			if s.cfg.Arch == ArchIdeal {
				s.removePendingOrder(accessKey{a.reg, a.idx}, p.ID)
			}
		}
	}
	p.nextVisit = len(p.visits)
	s.live--
	if s.usePhantoms() && s.phantomsLeft[p.ID] > 0 {
		// Only packets with outstanding placeholders need a dead-id
		// marker; phantomConsumed prunes it when the last one is popped.
		s.deadIDs[p.ID] = true
	}
}

// processRecircSlot models a legacy pipeline stage: strictly inline, one
// packet per cycle, executing only the not-yet-executed stage span and
// freezing when the needed state lives in another pipeline.
func (s *Simulator) processRecircSlot(stage, pipe int, st *stageState) {
	p := st.inline
	if p == nil {
		return
	}
	st.inline = nil
	s.occ[stage]--
	s.work = true
	s.emit(EvExec, p.ID, stage, pipe)
	if !p.frozen && stage >= p.resumeStage {
		if v := p.visitAt(stage); v != nil && v.pipe != pipe {
			// State lives elsewhere: stop executing; the packet
			// drains and re-circulates (§2.3).
			p.frozen = true
			p.resumeStage = stage
		} else {
			s.execStage(p, stage, pipe)
			if v != nil {
				s.completeVisit(p, stage)
			}
			if stage == s.resStage && !p.resolved {
				s.resolve(p, pipe)
			}
		}
	}
	st.out = p
	s.outCnt[stage]++
}

// egress handles a packet leaving the last stage: completion, or (for the
// recirculation baseline) re-injection towards its next pipeline.
func (s *Simulator) egress(p *Packet) {
	if s.cfg.Arch == ArchRecirc && !p.stateless() {
		v := p.pendingVisit()
		p.frozen = false
		p.pipe = v.pipe
		p.recircs++
		s.res.Recirculations++
		s.emit(EvSteer, p.ID, -1, v.pipe)
		s.recircWait = append(s.recircWait, recircEntry{p: p, ready: s.now + s.cfg.RecircDelay})
		return
	}
	s.res.Completed++
	s.live--
	s.emit(EvEgress, p.ID, s.S-1, p.pipe)
	if s.res.Completed == 1 {
		s.res.FirstDone = s.now
	}
	s.res.LastDone = s.now
	s.egressOrder = append(s.egressOrder, p.ID)
	s.latencies = append(s.latencies, s.now-p.ArrivalCycle)
	if s.outputs != nil {
		s.outputs[p.ID] = append([]int64(nil), p.Env.Fields...)
	}
}

// maybeRemap runs the dynamic-sharding step on its period and applies the
// resulting state movements (atomic within the cycle, §3.4).
func (s *Simulator) maybeRemap() {
	if !s.cfg.dynamicSharding() || s.now == 0 || s.now%s.cfg.RemapInterval != 0 {
		return
	}
	var moves []sharding.Move
	if s.cfg.Arch == ArchIdeal {
		moves = s.shard.RemapLPT()
	} else {
		moves = s.shard.Remap()
	}
	for _, m := range moves {
		s.regs[m.To].Array(m.Reg)[m.Idx] = s.regs[m.From].Array(m.Reg)[m.Idx]
		s.emit(EvShardMove, int64(m.Idx), m.Reg, m.To)
	}
	s.res.ShardMoves += int64(len(moves))
}

// finalize computes the derived statistics.
func (s *Simulator) finalize() {
	s.res.Cycles = s.now
	offeredSpan := s.res.LastArrival - s.res.FirstArrival + 1
	doneSpan := s.res.LastDone - s.res.FirstDone + 1
	if s.res.Injected > 0 && s.res.Completed > 0 && offeredSpan > 0 && doneSpan > 0 {
		offeredRate := float64(s.res.Injected) / float64(offeredSpan)
		achievedRate := float64(s.res.Completed) / float64(doneSpan)
		s.res.Throughput = achievedRate / offeredRate
	}
	if len(s.latencies) > 0 {
		// One counting pass plus a histogram quantile instead of the
		// former full sort. Unit-width buckets (max < 64Ki) make the
		// P99 exact; wider runs are approximate within max/64Ki cycles.
		var sum, maxL int64
		for _, l := range s.latencies {
			sum += l
			if l > maxL {
				maxL = l
			}
		}
		s.res.MeanLatency = float64(sum) / float64(len(s.latencies))
		s.res.MaxLatency = maxL
		n := int(maxL) + 1
		if n > 1<<16 {
			n = 1 << 16
		}
		h := stats.NewHistogram(0, float64(maxL)+1, n)
		for _, l := range s.latencies {
			h.Add(float64(l))
		}
		p99 := int64(h.Quantile(0.99))
		if p99 > maxL {
			p99 = maxL
		}
		s.res.P99Latency = p99
	}
	s.res.Reordered = CountOvertakers(s.egressOrder)
	if s.accessLog != nil {
		violators := map[int64]bool{}
		for _, seq := range s.accessLog {
			markViolators(seq, violators)
		}
		s.res.C1Violating = int64(len(violators))
		if s.res.Completed > 0 {
			s.res.ViolationFraction = float64(s.res.C1Violating) / float64(s.res.Completed)
		}
	}
}

// CountOvertakers counts ids that appear before some smaller id in the
// sequence (packets that egressed ahead of an earlier arrival). Exported so
// other execution engines (the concurrent dataplane) can report egress
// reordering with the same definition as the simulator.
func CountOvertakers(seq []int64) int64 {
	var n int64
	minSuffix := int64(1<<63 - 1)
	for i := len(seq) - 1; i >= 0; i-- {
		if seq[i] > minSuffix {
			n++
		}
		if seq[i] < minSuffix {
			minSuffix = seq[i]
		}
	}
	return n
}

// markViolators adds to set every id that accessed the state before some
// smaller id that had already been resolved to access it (condition C1:
// same state, same order as arrival order).
func markViolators(seq []int64, set map[int64]bool) {
	minSuffix := int64(1<<63 - 1)
	for i := len(seq) - 1; i >= 0; i-- {
		if seq[i] > minSuffix {
			set[seq[i]] = true
		}
		if seq[i] < minSuffix {
			minSuffix = seq[i]
		}
	}
}

// AccessLog exposes the recorded per-state access order (RecordAccessOrder).
func (s *Simulator) AccessLog() map[accessKey][]int64 { return s.accessLog }

// AccessOrderByReg flattens the access log to register granularity,
// comparable with the reference machine's log: per register, the packet ids
// in access order, merged across indices by position in time is NOT
// meaningful — so this returns per-(reg,idx) sequences keyed canonically.
func (s *Simulator) AccessOrders() map[string][]int64 {
	out := make(map[string][]int64, len(s.accessLog))
	for k, v := range s.accessLog {
		out[fmt.Sprintf("r%d[%d]", k.reg, k.idx)] = append([]int64(nil), v...)
	}
	return out
}

// Outputs returns the recorded per-packet final header fields
// (RecordOutputs).
func (s *Simulator) Outputs() map[int64][]int64 { return s.outputs }

// EgressOrder returns packet ids in egress order.
func (s *Simulator) EgressOrder() []int64 { return s.egressOrder }

// FinalRegs returns the merged register state: for each array, each index's
// value read from the pipeline currently holding its active copy.
func (s *Simulator) FinalRegs() [][]int64 {
	out := make([][]int64, len(s.prog.Regs))
	for r := range s.prog.Regs {
		size := s.prog.Regs[r].Size
		vals := make([]int64, size)
		if s.shard.Sharded(r) {
			for i := 0; i < size; i++ {
				vals[i] = s.regs[s.shard.PipeOf(r, i)].Array(r)[i]
			}
		} else {
			copy(vals, s.regs[s.shard.PipeOf(r, 0)].Array(r))
		}
		out[r] = vals
	}
	return out
}

// Shard exposes the sharding map (tests and diagnostics).
func (s *Simulator) Shard() *sharding.Map { return s.shard }

// BookkeepingLive reports the sizes of the transient bookkeeping maps and
// the live-entity counter after a run. All must be zero once the switch has
// drained — the regression guard for the former deadIDs/phantomDropped
// leaks.
func (s *Simulator) BookkeepingLive() (deadIDs, phantomsLeft, phantomPending, pendingInserts int, live int64) {
	return len(s.deadIDs), len(s.phantomsLeft), len(s.phantomPending), len(s.pendingInserts), s.live
}

// SortedAccessKeys lists the access-log keys in deterministic order.
func (s *Simulator) SortedAccessKeys() []string {
	keys := make([]string, 0, len(s.accessLog))
	for k := range s.accessLog {
		keys = append(keys, fmt.Sprintf("r%d[%d]", k.reg, k.idx))
	}
	sort.Strings(keys)
	return keys
}
