package core_test

import (
	"math/rand"
	"testing"

	"mp5/internal/apps"
	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/equiv"
	"mp5/internal/ir"
	"mp5/internal/workload"
)

// counterProgram is Example 1 from §2.3.1: a global packet counter that
// also stamps the count into the packet (the network-sequencer shape of
// Example 2, so ordering mistakes become visible in packet state).
const counterProgram = `
struct Packet { int seq; };
int count [1] = {0};
void counter (struct Packet p) {
    count[0] = count[0] + 1;
    p.seq = count[0];
}
`

func compileMP5(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := compiler.Compile(src, compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// lineRateTrace offers n minimum-size packets at line rate for k pipelines
// with single-field-programs in mind; fields are zero.
func lineRateTrace(prog *ir.Program, n, k int, seed int64) []core.Arrival {
	rng := rand.New(rand.NewSource(seed))
	arr := make([]core.Arrival, n)
	for i := range arr {
		arr[i] = core.Arrival{
			Cycle:  int64(i / k),
			Port:   rng.Intn(64),
			Size:   64,
			Fields: make([]int64, len(prog.Fields)),
		}
	}
	// sort ports within each cycle ascending (required order).
	for i := 1; i < len(arr); i++ {
		j := i
		for j > 0 && arr[j-1].Cycle == arr[j].Cycle && arr[j-1].Port > arr[j].Port {
			arr[j-1], arr[j] = arr[j], arr[j-1]
			j--
		}
	}
	return arr
}

// TestSequencerEquivalence is the paper's running correctness example: on
// MP5, a global sequencer must stamp packets exactly as a single pipeline
// would, despite parallel pipelines.
func TestSequencerEquivalence(t *testing.T) {
	prog := compileMP5(t, counterProgram)
	for _, k := range []int{1, 2, 4, 8} {
		trace := lineRateTrace(prog, 400, k, int64(k))
		sim := core.NewSimulator(prog, core.Config{
			Arch: core.ArchMP5, Pipelines: k,
			RecordOutputs: true, RecordAccessOrder: true,
		})
		res := sim.Run(trace)
		if res.Completed != res.Injected {
			t.Fatalf("k=%d: completed %d of %d", k, res.Completed, res.Injected)
		}
		rep := equiv.Check(prog, sim, trace)
		if !rep.Equivalent {
			t.Fatalf("k=%d: not equivalent: %v", k, rep.Mismatches)
		}
		if res.C1Violating != 0 {
			t.Fatalf("k=%d: %d C1 violations with D4 on", k, res.C1Violating)
		}
		// A global counter serializes on one pipeline: the count must
		// be exactly the packet count.
		if got := sim.FinalRegs()[0][0]; got != res.Injected {
			t.Fatalf("k=%d: count = %d, want %d", k, got, res.Injected)
		}
	}
}

// TestGlobalCounterRateLimit: a single shared state caps throughput at one
// pipeline's rate (§3.5.2's fundamental limit), so at line rate for k>1 the
// normalized throughput should approach 1/k.
func TestGlobalCounterRateLimit(t *testing.T) {
	prog := compileMP5(t, counterProgram)
	k := 4
	trace := lineRateTrace(prog, 4000, k, 1)
	sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: k})
	res := sim.Run(trace)
	want := 1.0 / float64(k)
	if res.Throughput < want*0.8 || res.Throughput > want*1.2 {
		t.Fatalf("throughput = %.3f, want about %.3f", res.Throughput, want)
	}
}

// synthSetup compiles the sensitivity program and generates its trace.
func synthSetup(t *testing.T, statefulStages, regSize, k, packets int, pattern workload.Pattern, seed int64) (*ir.Program, []core.Arrival) {
	t.Helper()
	prog, err := apps.Synthetic(statefulStages, regSize, 16)
	if err != nil {
		t.Fatalf("synthetic compile: %v", err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: packets, Pipelines: k, Pattern: pattern, Seed: seed,
	}, statefulStages, regSize)
	return prog, trace
}

// TestMP5EquivalenceSynthetic: the headline invariant — MP5 is functionally
// equivalent to the single pipeline across architectures that enforce C1,
// patterns, and pipeline counts.
func TestMP5EquivalenceSynthetic(t *testing.T) {
	for _, arch := range []core.Arch{core.ArchMP5, core.ArchNaive, core.ArchStaticShard, core.ArchIdeal} {
		for _, k := range []int{2, 4} {
			for _, pat := range []workload.Pattern{workload.Uniform, workload.Skewed} {
				prog, trace := synthSetup(t, 4, 64, k, 3000, pat, 42)
				sim := core.NewSimulator(prog, core.Config{
					Arch: arch, Pipelines: k, Seed: 7,
					RecordOutputs: true, RecordAccessOrder: true,
				})
				res := sim.Run(trace)
				if res.Stalled {
					t.Fatalf("%v k=%d %v: stalled", arch, k, pat)
				}
				if res.Completed != res.Injected {
					t.Fatalf("%v k=%d %v: completed %d of %d",
						arch, k, pat, res.Completed, res.Injected)
				}
				if res.C1Violating != 0 {
					t.Fatalf("%v k=%d %v: %d C1 violations",
						arch, k, pat, res.C1Violating)
				}
				rep := equiv.Check(prog, sim, trace)
				if !rep.Equivalent {
					t.Fatalf("%v k=%d %v: not equivalent: %v",
						arch, k, pat, rep.Mismatches[:min(3, len(rep.Mismatches))])
				}
			}
		}
	}
}

// TestNoD4ViolatesC1: without preemptive order enforcement, contention must
// produce C1 violations (the §4.3.2 D4 ablation reports 14–26%).
func TestNoD4ViolatesC1(t *testing.T) {
	prog, trace := synthSetup(t, 4, 512, 4, 20000, workload.Skewed, 11)
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5NoD4, Pipelines: 4, Seed: 7, RecordAccessOrder: true,
	})
	res := sim.Run(trace)
	if res.Stalled {
		t.Fatal("stalled")
	}
	if res.C1Violating == 0 {
		t.Fatal("no C1 violations without D4 under skewed contention; ablation would be vacuous")
	}
	t.Logf("no-D4 violation fraction: %.1f%%", 100*res.ViolationFraction)
}

// TestRecirculation: the legacy baseline recirculates to reach remote
// state, reducing throughput and violating C1 under contention.
func TestRecirculation(t *testing.T) {
	prog, trace := synthSetup(t, 4, 512, 4, 20000, workload.Uniform, 3)
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchRecirc, Pipelines: 4, Seed: 7, RecordAccessOrder: true,
	})
	res := sim.Run(trace)
	if res.Stalled {
		t.Fatal("stalled")
	}
	if res.Completed+res.DroppedIngress != res.Injected {
		t.Fatalf("accounting: completed %d + ingress drops %d != injected %d",
			res.Completed, res.DroppedIngress, res.Injected)
	}
	if res.Recirculations == 0 {
		t.Fatal("no recirculations despite sharded remote state")
	}
	if res.C1Violating == 0 {
		t.Fatal("recirculation produced zero C1 violations under contention")
	}
	mp5 := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 7})
	mres := mp5.Run(trace)
	if res.Throughput >= mres.Throughput {
		t.Fatalf("recirculation throughput %.3f not below MP5 %.3f", res.Throughput, mres.Throughput)
	}
	t.Logf("recirc: %.2f recircs/pkt, tput %.3f vs MP5 %.3f",
		float64(res.Recirculations)/float64(res.Injected), res.Throughput, mres.Throughput)
}

// TestIdealAtLeastMP5: removing HOL blocking and using LPT sharding must
// not hurt throughput.
func TestIdealAtLeastMP5(t *testing.T) {
	prog, trace := synthSetup(t, 4, 512, 4, 20000, workload.Skewed, 5)
	mp5 := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 7})
	ideal := core.NewSimulator(prog, core.Config{Arch: core.ArchIdeal, Pipelines: 4, Seed: 7})
	rm := mp5.Run(trace)
	ri := ideal.Run(trace)
	if ri.Throughput < rm.Throughput*0.98 {
		t.Fatalf("ideal %.3f below MP5 %.3f", ri.Throughput, rm.Throughput)
	}
}

// TestStatelessLineRate: a stateless program must sustain line rate on any
// number of pipelines with zero queueing (D1 alone suffices).
func TestStatelessLineRate(t *testing.T) {
	src := `
struct Packet { int a; int b; };
void f (struct Packet p) { p.b = p.a * 3 + 1; }
`
	prog := compileMP5(t, src)
	for _, k := range []int{1, 4, 8} {
		trace := lineRateTrace(prog, 2000, k, int64(k))
		sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: k, RecordOutputs: true})
		res := sim.Run(trace)
		if res.Throughput < 0.99 {
			t.Fatalf("k=%d: stateless throughput %.3f", k, res.Throughput)
		}
		if res.MaxFIFODepth != 0 {
			t.Fatalf("k=%d: stateless program queued packets", k)
		}
		rep := equiv.Check(prog, sim, trace)
		if !rep.Equivalent {
			t.Fatalf("k=%d: %v", k, rep.Mismatches)
		}
	}
}

// TestRealAppsEquivalence runs the four §4.4 applications end to end on
// MP5 with realistic flow workloads and checks functional equivalence.
func TestRealAppsEquivalence(t *testing.T) {
	for _, app := range apps.All() {
		t.Run(app.Name, func(t *testing.T) {
			prog := app.MustCompile(compiler.TargetMP5)
			trace := workload.Flows(prog, workload.FlowSpec{
				Packets: 5000, Pipelines: 4, Seed: 99,
			}, app.Bind)
			sim := core.NewSimulator(prog, core.Config{
				Arch: core.ArchMP5, Pipelines: 4, Seed: 1,
				RecordOutputs: true, RecordAccessOrder: true,
			})
			res := sim.Run(trace)
			if res.Stalled {
				t.Fatal("stalled")
			}
			if res.Completed != res.Injected {
				t.Fatalf("completed %d of %d", res.Completed, res.Injected)
			}
			if res.C1Violating != 0 {
				t.Fatalf("%d C1 violations", res.C1Violating)
			}
			rep := equiv.Check(prog, sim, trace)
			if !rep.Equivalent {
				t.Fatalf("not equivalent: %v", rep.Mismatches[:min(3, len(rep.Mismatches))])
			}
			if res.Throughput < 0.95 {
				t.Errorf("throughput %.3f below line rate for realistic sizes", res.Throughput)
			}
		})
	}
}

// TestBoundedFIFODrops: with tiny FIFOs at an overloaded stage, phantom and
// insert drops must occur, the run must still terminate, and zombie
// phantoms must be cleaned up.
func TestBoundedFIFODrops(t *testing.T) {
	prog := compileMP5(t, counterProgram)
	k := 4
	trace := lineRateTrace(prog, 4000, k, 2)
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: k, FIFOCap: 4,
	})
	res := sim.Run(trace)
	if res.Stalled {
		t.Fatal("stalled")
	}
	if res.DroppedPhantom == 0 || res.DroppedInsert == 0 {
		t.Fatalf("expected drops with FIFOCap=4: phantom=%d insert=%d",
			res.DroppedPhantom, res.DroppedInsert)
	}
	if res.Completed+res.DroppedInsert != res.Injected {
		t.Fatalf("accounting: completed %d + dropped %d != injected %d",
			res.Completed, res.DroppedInsert, res.Injected)
	}
}

// TestDynamicShardingMoves: under a skewed workload the remap heuristic
// must actually move state between pipelines.
func TestDynamicShardingMoves(t *testing.T) {
	prog, trace := synthSetup(t, 4, 512, 4, 20000, workload.Skewed, 8)
	sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 7})
	res := sim.Run(trace)
	if res.ShardMoves == 0 {
		t.Fatal("dynamic sharding made zero moves under a skewed workload")
	}
}

// TestDynamicBeatsStaticSkewed: the D2 ablation direction — dynamic
// sharding must beat frozen random sharding under a churning skewed load.
func TestDynamicBeatsStaticSkewed(t *testing.T) {
	prog, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: 30000, Pipelines: 4, Pattern: workload.Skewed,
		ChurnInterval: 2000, Seed: 21,
	}, 4, 512)
	dyn := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 5})
	sta := core.NewSimulator(prog, core.Config{Arch: core.ArchStaticShard, Pipelines: 4, Seed: 5})
	rd := dyn.Run(trace)
	rs := sta.Run(trace)
	if rd.Throughput <= rs.Throughput {
		t.Fatalf("dynamic %.3f not above static %.3f under skewed+churn", rd.Throughput, rs.Throughput)
	}
	t.Logf("dynamic %.3f vs static %.3f (%.2fx)", rd.Throughput, rs.Throughput, rd.Throughput/rs.Throughput)
}

// TestStatelessPriorityReordering: mixing stateless packets into a
// congested stateful flow produces egress reordering (stateless packets
// overtake queued stateful ones) — the §3.4 re-ordering discussion.
func TestStatelessPriorityReordering(t *testing.T) {
	prog, err := apps.Synthetic(1, 1, 16) // single shared counter: heavy contention
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: 8000, Pipelines: 4, Seed: 13, StatelessFraction: 0.5,
	}, 1, 1)
	sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 3})
	res := sim.Run(trace)
	if res.Reordered == 0 {
		t.Fatal("expected egress reordering when stateless packets bypass queued stateful ones")
	}
}

// TestEquivalenceRandomPrograms is the property-style end-to-end check:
// random synthetic configurations stay functionally equivalent on MP5.
func TestEquivalenceRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		stages := 1 + rng.Intn(5)
		size := []int{1, 4, 64, 512}[rng.Intn(4)]
		k := []int{2, 3, 4, 8}[rng.Intn(4)]
		pat := workload.Pattern(rng.Intn(2))
		prog, trace := synthSetup(t, stages, size, k, 2000, pat, int64(trial))
		sim := core.NewSimulator(prog, core.Config{
			Arch: core.ArchMP5, Pipelines: k, Seed: int64(trial),
			RecordOutputs: true, RecordAccessOrder: true,
		})
		res := sim.Run(trace)
		if res.Stalled || res.Completed != res.Injected || res.C1Violating != 0 {
			t.Fatalf("trial %d (stages=%d size=%d k=%d %v): %+v",
				trial, stages, size, k, pat, res)
		}
		if rep := equiv.Check(prog, sim, trace); !rep.Equivalent {
			t.Fatalf("trial %d: not equivalent: %v", trial, rep.Mismatches[:min(3, len(rep.Mismatches))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
