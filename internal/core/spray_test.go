package core_test

import (
	"testing"

	"mp5/internal/core"
	"mp5/internal/workload"
)

// TestSprayUniformAtSubLineRate: D1's uniform spray must stay uniform when
// the switch is under-loaded. With one arrival per cycle and k free
// pipelines, a spray that restarts its scan at pipe 0 every cycle sends
// essentially all traffic to pipe 0; the rotating round-robin start must
// spread admissions near-evenly instead.
func TestSprayUniformAtSubLineRate(t *testing.T) {
	const k = 4
	prog, trace := synthSetup(t, 1, 64, k, 2000, workload.Uniform, 7)
	for i := range trace {
		trace[i].Cycle = int64(i) // sub-line rate: one arrival per cycle
	}
	admits := make([]int, k)
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: k, Seed: 1,
		Trace: func(e core.Event) {
			if e.Kind == core.EvAdmit {
				admits[e.Pipe]++
			}
		},
	})
	res := sim.Run(trace)
	if res.Injected != int64(len(trace)) || res.Completed != res.Injected {
		t.Fatalf("lossy run: %+v", res)
	}
	min, max := admits[0], admits[0]
	for _, n := range admits[1:] {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	// Strict round-robin over always-free pipelines gives a spread of at
	// most 1; allow a little slack for cycles where a pipe's inline slot
	// was momentarily busy.
	if max-min > k {
		t.Fatalf("per-pipe admits %v: spread %d exceeds %d", admits, max-min, k)
	}
	want := len(trace) / k
	for j, n := range admits {
		if n < want*9/10 || n > want*11/10 {
			t.Fatalf("pipe %d admitted %d packets, want ~%d (all: %v)", j, n, want, admits)
		}
	}
}
