package core_test

import (
	"math/rand"
	"testing"

	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/equiv"
)

const l3SimSrc = `
struct Packet { int dst; int port; };

table route (1) = 63;
int portcount [64] = {0};

void l3 (struct Packet p) {
    p.port = route(p.dst);
    portcount[p.port % 64] = portcount[p.port % 64] + 1;
}
`

// TestTablesOnMP5Equivalence: a match-table-driven program runs on the
// multi-pipeline switch with the table replicated in every pipeline, and
// stays functionally equivalent — including sharding the counter register
// by the table's output.
func TestTablesOnMP5Equivalence(t *testing.T) {
	prog, err := compiler.Compile(l3SimSrc, compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		t.Fatal(err)
	}
	// Control plane: route 256 destinations over 16 next-hop ports.
	for d := int64(0); d < 256; d++ {
		if err := prog.InstallTable("route", d%16, d); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(77))
	trace := make([]core.Arrival, 8000)
	dstF := prog.FieldIndex("dst")
	for i := range trace {
		fields := make([]int64, len(prog.Fields))
		// 1/8 of traffic misses the table (dst >= 256 → default 63).
		fields[dstF] = int64(rng.Intn(288))
		trace[i] = core.Arrival{
			Cycle: int64(i / 4), Port: rng.Intn(64), Size: 64, Fields: fields,
		}
	}
	sortTrace(trace)

	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 9,
		RecordOutputs: true, RecordAccessOrder: true,
	})
	res := sim.Run(trace)
	if res.Completed != res.Injected || res.C1Violating != 0 {
		t.Fatalf("run broken: %+v", res)
	}
	if rep := equiv.Check(prog, sim, trace); !rep.Equivalent {
		t.Fatalf("not equivalent: %v", rep.Mismatches[:min(3, len(rep.Mismatches))])
	}
	// The counters must add up, with misses accumulated on port 63.
	final := sim.FinalRegs()[prog.RegIndex("portcount")]
	var sum int64
	for _, v := range final {
		sum += v
	}
	if sum != res.Injected {
		t.Fatalf("counter sum %d != %d packets", sum, res.Injected)
	}
	if final[63] == 0 {
		t.Error("no traffic hit the miss default")
	}
}

func sortTrace(arr []core.Arrival) {
	for i := 1; i < len(arr); i++ {
		j := i
		for j > 0 && (arr[j-1].Cycle > arr[j].Cycle ||
			(arr[j-1].Cycle == arr[j].Cycle && arr[j-1].Port > arr[j].Port)) {
			arr[j-1], arr[j] = arr[j], arr[j-1]
			j--
		}
	}
}
