package core

import "fmt"

// EventKind classifies simulator trace events (Config.Trace).
type EventKind int

const (
	// EvAdmit: a packet entered stage 0 of a pipeline.
	EvAdmit EventKind = iota
	// EvExec: a stage processed a packet this cycle (at most one per
	// (stage, pipeline, cycle) — Banzai's "one packet per stage").
	EvExec
	// EvResolve: preemptive address resolution completed for a packet.
	EvResolve
	// EvPhantom: a phantom landed in a stage FIFO.
	EvPhantom
	// EvEnqueue: a data packet entered a stage FIFO (insert/push) or
	// ideal queue.
	EvEnqueue
	// EvSteer: a packet started an inter-pipeline crossing.
	EvSteer
	// EvEgress: a packet left the last stage.
	EvEgress
	// EvDrop: a packet was dropped (FIFO overflow, directory miss,
	// ingress overflow, or starvation-guard policy). The event's Cause
	// field names the reason; EvDrop fires exactly once per dropped
	// packet, so EvAdmit-ed ids partition into EvEgress and EvDrop.
	EvDrop
	// EvPhantomDrop: a phantom placeholder overflowed its stage FIFO.
	// The data packet is still in flight (it will later miss the
	// directory and count an EvDrop with CauseInsert), so this kind is
	// separate from EvDrop to keep the one-death-per-packet invariant.
	EvPhantomDrop
	// EvShardMove: the dynamic-sharding remap migrated one register
	// entry between pipelines. Field mapping: Stage carries the register
	// id, PktID the index, Pipe the destination pipeline.
	EvShardMove
	// EvAccess: a stateful instruction actually executed (its predicate
	// held) on a concrete register slot. Reg and Idx carry the register
	// array id and the clamped index; one event fires per distinct
	// (register, index) a packet touches during one stage execution.
	// This is the raw material for reconstructing the per-state access
	// order and checking correctness condition C1 directly — the
	// reference order being arrival order (see internal/fuzz).
	EvAccess
)

var eventNames = map[EventKind]string{
	EvAdmit: "admit", EvExec: "exec", EvResolve: "resolve",
	EvPhantom: "phantom", EvEnqueue: "enqueue", EvSteer: "steer",
	EvEgress: "egress", EvDrop: "drop",
	EvPhantomDrop: "phantom-drop", EvShardMove: "shard-move",
	EvAccess: "access",
}

// String names the event kind.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// DropCause classifies EvDrop events; the names mirror the Result drop
// counters so an event stream reconciles with the end-of-run summary.
type DropCause int

const (
	// CauseNone: the event is not a drop.
	CauseNone DropCause = iota
	// CauseData: a stage sub-FIFO overflowed on a data push
	// (Result.DroppedData; only the no-D4 baseline pushes data).
	CauseData
	// CauseInsert: the phantom directory had no placeholder for the
	// arriving data packet — its phantom was dropped earlier
	// (Result.DroppedInsert).
	CauseInsert
	// CauseIngress: a per-pipeline ingress buffer overflowed in the
	// recirculation baseline (Result.DroppedIngress).
	CauseIngress
	// CauseStarved: the starvation guard sacrificed an incoming
	// stateless packet for a long-waiting queued one
	// (Result.DroppedStarved).
	CauseStarved
)

var causeNames = map[DropCause]string{
	CauseData: "data", CauseInsert: "insert",
	CauseIngress: "ingress", CauseStarved: "starved",
}

// String names the drop cause ("" for CauseNone).
func (c DropCause) String() string {
	if s, ok := causeNames[c]; ok {
		return s
	}
	if c == CauseNone {
		return ""
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// Event is one simulator occurrence, delivered synchronously to
// Config.Trace in deterministic order within a cycle.
type Event struct {
	Cycle int64
	Kind  EventKind
	// PktID identifies the packet (phantoms carry their data packet's
	// id; EvShardMove carries the migrated index).
	PktID int64
	// Stage and Pipe locate the event; -1 when not applicable.
	// EvShardMove reuses Stage for the register id and Pipe for the
	// destination pipeline.
	Stage int
	Pipe  int
	// Cause is set on EvDrop events only.
	Cause DropCause
	// Reg and Idx are set on EvAccess events only: the register array id
	// and the clamped register index the stateful instruction used.
	Reg int
	Idx int
}

// String renders the event.
func (e Event) String() string {
	if e.Kind == EvDrop && e.Cause != CauseNone {
		return fmt.Sprintf("c%d %v pkt=%d stage=%d pipe=%d cause=%v",
			e.Cycle, e.Kind, e.PktID, e.Stage, e.Pipe, e.Cause)
	}
	if e.Kind == EvAccess {
		return fmt.Sprintf("c%d %v pkt=%d stage=%d pipe=%d r%d[%d]",
			e.Cycle, e.Kind, e.PktID, e.Stage, e.Pipe, e.Reg, e.Idx)
	}
	return fmt.Sprintf("c%d %v pkt=%d stage=%d pipe=%d", e.Cycle, e.Kind, e.PktID, e.Stage, e.Pipe)
}

// emit delivers an event to the trace hook, if any.
func (s *Simulator) emit(kind EventKind, pktID int64, stage, pipe int) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(Event{Cycle: s.now, Kind: kind, PktID: pktID, Stage: stage, Pipe: pipe})
}

// emitDrop delivers an EvDrop event carrying its cause.
func (s *Simulator) emitDrop(pktID int64, stage, pipe int, cause DropCause) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(Event{Cycle: s.now, Kind: EvDrop, PktID: pktID, Stage: stage, Pipe: pipe, Cause: cause})
}
