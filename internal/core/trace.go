package core

import "fmt"

// EventKind classifies simulator trace events (Config.Trace).
type EventKind int

const (
	// EvAdmit: a packet entered stage 0 of a pipeline.
	EvAdmit EventKind = iota
	// EvExec: a stage processed a packet this cycle (at most one per
	// (stage, pipeline, cycle) — Banzai's "one packet per stage").
	EvExec
	// EvResolve: preemptive address resolution completed for a packet.
	EvResolve
	// EvPhantom: a phantom landed in a stage FIFO.
	EvPhantom
	// EvEnqueue: a data packet entered a stage FIFO (insert/push) or
	// ideal queue.
	EvEnqueue
	// EvSteer: a packet started an inter-pipeline crossing.
	EvSteer
	// EvEgress: a packet left the last stage.
	EvEgress
	// EvDrop: a packet was dropped (FIFO overflow, directory miss,
	// ingress overflow, or starvation-guard policy).
	EvDrop
)

var eventNames = map[EventKind]string{
	EvAdmit: "admit", EvExec: "exec", EvResolve: "resolve",
	EvPhantom: "phantom", EvEnqueue: "enqueue", EvSteer: "steer",
	EvEgress: "egress", EvDrop: "drop",
}

// String names the event kind.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one simulator occurrence, delivered synchronously to
// Config.Trace in deterministic order within a cycle.
type Event struct {
	Cycle int64
	Kind  EventKind
	// PktID identifies the packet (phantoms carry their data packet's
	// id).
	PktID int64
	// Stage and Pipe locate the event; -1 when not applicable.
	Stage int
	Pipe  int
}

// String renders the event.
func (e Event) String() string {
	return fmt.Sprintf("c%d %v pkt=%d stage=%d pipe=%d", e.Cycle, e.Kind, e.PktID, e.Stage, e.Pipe)
}

// emit delivers an event to the trace hook, if any.
func (s *Simulator) emit(kind EventKind, pktID int64, stage, pipe int) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(Event{Cycle: s.now, Kind: kind, PktID: pktID, Stage: stage, Pipe: pipe})
}
