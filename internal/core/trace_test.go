package core_test

import (
	"testing"

	"mp5/internal/core"
	"mp5/internal/workload"
)

// collectEvents runs one simulation with the trace hook attached.
func collectEvents(t *testing.T, arch core.Arch, lat int64) ([]core.Event, *core.Result) {
	t.Helper()
	prog, trace := synthSetup(t, 3, 64, 4, 3000, workload.Skewed, 41)
	var events []core.Event
	sim := core.NewSimulator(prog, core.Config{
		Arch: arch, Pipelines: 4, Seed: 2, CrossLatency: lat,
		Trace: func(e core.Event) { events = append(events, e) },
	})
	res := sim.Run(trace)
	return events, res
}

// TestInvariantOnePacketPerStagePerCycle: Banzai's core structural rule,
// checked from the outside through the event stream.
func TestInvariantOnePacketPerStagePerCycle(t *testing.T) {
	for _, arch := range []core.Arch{core.ArchMP5, core.ArchMP5NoD4, core.ArchIdeal, core.ArchRecirc} {
		events, _ := collectEvents(t, arch, 0)
		type slot struct {
			cycle int64
			stage int
			pipe  int
		}
		seen := map[slot]int64{}
		for _, e := range events {
			if e.Kind != core.EvExec {
				continue
			}
			k := slot{e.Cycle, e.Stage, e.Pipe}
			if prev, ok := seen[k]; ok {
				t.Fatalf("%v: stage %d pipe %d executed packets %d and %d in cycle %d",
					arch, e.Stage, e.Pipe, prev, e.PktID, e.Cycle)
			}
			seen[k] = e.PktID
		}
		if len(seen) == 0 {
			t.Fatalf("%v: no exec events", arch)
		}
	}
}

// TestInvariantFeedForward: a packet's executed stages are strictly
// increasing (within each pipeline pass), and execution times are strictly
// increasing — packets never move backwards (D3's feed-forward rule).
func TestInvariantFeedForward(t *testing.T) {
	events, _ := collectEvents(t, core.ArchMP5, 0)
	lastStage := map[int64]int{}
	lastCycle := map[int64]int64{}
	for _, e := range events {
		if e.Kind != core.EvExec {
			continue
		}
		if s, ok := lastStage[e.PktID]; ok {
			if e.Stage <= s {
				t.Fatalf("packet %d moved from stage %d to %d", e.PktID, s, e.Stage)
			}
			if e.Cycle <= lastCycle[e.PktID] {
				t.Fatalf("packet %d executed twice in cycle %d", e.PktID, e.Cycle)
			}
		}
		lastStage[e.PktID] = e.Stage
		lastCycle[e.PktID] = e.Cycle
	}
}

// TestInvariantPhantomBeforeData: in MP5, every data enqueue at a stage is
// preceded by that packet's phantom landing at the same stage — at any
// crossbar latency.
func TestInvariantPhantomBeforeData(t *testing.T) {
	for _, lat := range []int64{0, 3} {
		events, res := collectEvents(t, core.ArchMP5, lat)
		if res.Completed != res.Injected {
			t.Fatalf("latency %d: loss", lat)
		}
		type key struct {
			id    int64
			stage int
		}
		phantomAt := map[key]int64{}
		for _, e := range events {
			switch e.Kind {
			case core.EvPhantom:
				phantomAt[key{e.PktID, e.Stage}] = e.Cycle
			case core.EvEnqueue:
				ph, ok := phantomAt[key{e.PktID, e.Stage}]
				if !ok {
					t.Fatalf("latency %d: packet %d enqueued at stage %d with no phantom",
						lat, e.PktID, e.Stage)
				}
				if ph > e.Cycle {
					t.Fatalf("latency %d: packet %d phantom landed at %d after data at %d",
						lat, e.PktID, ph, e.Cycle)
				}
			}
		}
	}
}

// TestInvariantLifecycle: every admitted packet either egresses or drops,
// exactly once; resolution happens exactly once per packet.
func TestInvariantLifecycle(t *testing.T) {
	for _, arch := range []core.Arch{core.ArchMP5, core.ArchRecirc} {
		events, res := collectEvents(t, arch, 0)
		egress := map[int64]int{}
		drops := map[int64]int{}
		resolved := map[int64]int{}
		admitted := map[int64]bool{}
		for _, e := range events {
			switch e.Kind {
			case core.EvAdmit:
				admitted[e.PktID] = true
			case core.EvEgress:
				egress[e.PktID]++
			case core.EvDrop:
				drops[e.PktID]++
			case core.EvResolve:
				resolved[e.PktID]++
			}
		}
		for id := range admitted {
			if egress[id]+drops[id] != 1 {
				t.Fatalf("%v: packet %d egressed %d times, dropped %d times",
					arch, id, egress[id], drops[id])
			}
			if resolved[id] != 1 {
				t.Fatalf("%v: packet %d resolved %d times", arch, id, resolved[id])
			}
		}
		if int64(len(egress)) != res.Completed {
			t.Fatalf("%v: %d egress events vs %d completed", arch, len(egress), res.Completed)
		}
	}
}

// TestInvariantSteerTargetsVisits: every steer event lands the packet in a
// pipeline where it subsequently executes the steered-to stage.
func TestInvariantSteerTargetsVisits(t *testing.T) {
	events, _ := collectEvents(t, core.ArchMP5, 0)
	type steer struct {
		id    int64
		stage int
		pipe  int
	}
	pending := map[int64]steer{}
	for _, e := range events {
		switch e.Kind {
		case core.EvSteer:
			pending[e.PktID] = steer{e.PktID, e.Stage, e.Pipe}
		case core.EvExec:
			if st, ok := pending[e.PktID]; ok && e.Stage == st.stage {
				if e.Pipe != st.pipe {
					t.Fatalf("packet %d steered to pipe %d but executed stage %d in pipe %d",
						e.PktID, st.pipe, e.Stage, e.Pipe)
				}
				delete(pending, e.PktID)
			}
		}
	}
}

// TestTraceDisabledByDefault ensures the hook has no effect when unset
// (results identical with and without tracing).
func TestTraceDisabledByDefault(t *testing.T) {
	prog, trace := synthSetup(t, 2, 64, 4, 2000, workload.Uniform, 3)
	plain := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 1})
	traced := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 1,
		Trace: func(core.Event) {},
	})
	rp, rt := plain.Run(trace), traced.Run(trace)
	if rp.Throughput != rt.Throughput || rp.Cycles != rt.Cycles {
		t.Fatalf("tracing changed behaviour: %+v vs %+v", rp, rt)
	}
}

// TestEventStrings smoke-checks the renderings.
func TestEventStrings(t *testing.T) {
	e := core.Event{Cycle: 3, Kind: core.EvExec, PktID: 7, Stage: 2, Pipe: 1}
	if e.String() == "" || core.EvEgress.String() != "egress" {
		t.Error("event rendering broken")
	}
}
