// Package dataplane executes compiled MP5 programs on a real goroutine
// topology instead of simulating one: one worker goroutine per pipeline,
// channel crossbars between pipelines, and actual shared-nothing register
// shards. Where internal/core models the architecture cycle by cycle, this
// package *is* the architecture, mapped onto cores:
//
//   - D1 (processing homogeneity): every worker runs the full program;
//     stateless packets are sprayed round-robin across workers.
//   - D2 (dynamically sharded state): each register index is owned by
//     exactly one worker, which holds the only live copy in its private
//     register file; a Figure-6-style remap migrates hot indices between
//     workers while their ticket queues are empty.
//   - D3 (crossbar steering): a packet whose next stateful stage resolved
//     to another pipeline is forwarded over that worker's mailbox channel.
//   - D4 (phantom order enforcement): at admission, a serial admitter
//     enqueues one ticket per resolved state slot in arrival order — the
//     execution-engine equivalent of the phantom placeholder. A worker may
//     only perform an access while the packet's ticket is at the head of
//     every slot queue of the visit; otherwise the packet parks on the
//     owning worker until the blocking ticket is retired.
//
// Correctness (condition C1) follows by construction: per-slot ticket
// queues are admission-ordered, accesses retire tickets in queue order, and
// the earliest in-flight packet always holds the head ticket of every slot
// it still needs — so the engine is deadlock-free and every slot observes
// accesses in arrival order, which implies functional equivalence with the
// single-pipeline reference (checked differentially in internal/fuzz).
package dataplane

import (
	"runtime"
	"time"

	"mp5/internal/stats"
	"mp5/internal/telemetry"
)

// Latency histogram shape shared by the per-worker histograms and the
// merged drain-time result: microseconds in [0, 65536) at 8 µs resolution.
const (
	latLo      = 0
	latHi      = 1 << 16
	latBuckets = 1 << 13
)

// Config parameterizes an Engine.
type Config struct {
	// Workers is the number of pipeline workers k (one goroutine each);
	// 0 defaults to runtime.GOMAXPROCS(0).
	Workers int
	// Window bounds the number of in-flight packets (admitted but not yet
	// egressed). It is the admission-control semaphore that keeps every
	// mailbox overflow-free by construction; 0 defaults to 256.
	Window int
	// RemapInterval is the number of admissions between dynamic-sharding
	// remap passes (D2); 0 defaults to 256, negative disables remapping.
	RemapInterval int
	// Seed selects the initial index→worker placement: 0 keeps the plain
	// round-robin assignment (the simulator's MP5 default); any other
	// value deterministically shuffles the balanced round-robin owner set
	// of every sharded array, so distinct daemons can start from distinct
	// placements without biasing load toward low-numbered workers.
	// Unsharded arrays always home at stage mod k. Placement never affects
	// functional correctness (C1 ticketing is placement-independent), only
	// steering and remap trajectories.
	Seed int64
	// Interpret forces stage execution (admitter resolution stages and
	// worker stages alike) through the tree-walking ir interpreter
	// instead of the compiled bytecode VM. The interpreter is the
	// semantic oracle; the differential fuzz harness runs it against the
	// default compiled path.
	Interpret bool
	// RecordOutputs retains each packet's final header fields (required
	// for equivalence checking via equiv.CheckState).
	RecordOutputs bool
	// RecordAccessOrder logs the per-slot effective access order, keyed
	// like the simulator's EvAccess stream (required for C1 checking).
	RecordAccessOrder bool
	// RecordEgressOrder retains the wall-clock egress sequence so Result
	// can report Reordered (adds one mutex acquisition per egress).
	RecordEgressOrder bool
	// StallTimeout aborts the run when no packet egresses for this long
	// while packets are in flight (a liveness watchdog so differential
	// tests fail with Stalled instead of hanging); 0 defaults to 10s.
	StallTimeout time.Duration
	// Metrics, when non-nil, receives concurrent counter updates from the
	// admitter and every worker (nil disables with zero overhead).
	Metrics *Metrics
	// Tracer, when non-nil, receives sampled wire-to-wire spans: the
	// engine stamps window-wait, admit, crossbar, exec, ticket-wait, and
	// egress segments on packets submitted with a span (SubmitTraced) and
	// hands finished spans to the tracer's collector. Nil disables tracing
	// with nil-check-only overhead on the hot path.
	Tracer *Tracer
	// OnEgress, when non-nil, runs on the egressing worker's goroutine
	// with the packet id, after outputs are recorded and before the window
	// token is released. Keep it fast: a callback that blocks stalls that
	// worker and, through the admission window, eventually the whole
	// stream (the server uses it to send per-packet acks in lossless
	// mode, which is exactly the backpressure it wants).
	OnEgress func(id int64)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.RemapInterval == 0 {
		c.RemapInterval = 256
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 10 * time.Second
	}
	return c
}

// Metrics is the telemetry surface of the engine: plain registry counters,
// updated concurrently by the admitter and all workers (telemetry.Counter
// is atomic, so a shared Metrics is safe across engines and goroutines).
type Metrics struct {
	Admitted   *telemetry.Counter
	Egressed   *telemetry.Counter
	Steers     *telemetry.Counter
	Parks      *telemetry.Counter
	Wasted     *telemetry.Counter
	ShardMoves *telemetry.Counter
	Stalls     *telemetry.Counter
	QuotaShed  *telemetry.Counter
}

// NewMetrics registers the engine's counters on r (nil r yields all-nil
// counters, the disabled state).
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Admitted:   r.NewCounter("dataplane_admitted_total", "packets admitted into the dataplane"),
		Egressed:   r.NewCounter("dataplane_egressed_total", "packets that completed all stages"),
		Steers:     r.NewCounter("dataplane_steers_total", "inter-worker crossbar forwards"),
		Parks:      r.NewCounter("dataplane_parks_total", "packets parked waiting for a head ticket"),
		Wasted:     r.NewCounter("dataplane_wasted_visits_total", "conservative tickets whose predicate was false at execution"),
		ShardMoves: r.NewCounter("dataplane_shard_moves_total", "register indices migrated between workers"),
		Stalls:     r.NewCounter("dataplane_stalls_total", "runs aborted by the liveness watchdog"),
		QuotaShed:  r.NewCounter("dataplane_quota_shed_total", "packets shed because the tenant admission quota was exhausted"),
	}
}

// Result summarizes one Engine.Run.
type Result struct {
	Workers   int
	Injected  int64
	Completed int64
	// Steers counts crossbar forwards; Parks counts ticket waits; Wasted
	// counts conservative tickets whose access predicate evaluated false;
	// ShardMoves counts D2 migrations.
	Steers     int64
	Parks      int64
	Wasted     int64
	ShardMoves int64
	// Reordered counts packets that egressed after a later-arriving packet
	// (wall-clock reordering the concurrent engine introduces; only
	// populated with Config.RecordEgressOrder).
	Reordered int64
	// Stalled reports a watchdog abort: no egress progress for
	// StallTimeout with packets still in flight.
	Stalled bool
	// Elapsed is the wall-clock run time; PktsPerSec = Completed/Elapsed.
	Elapsed    time.Duration
	PktsPerSec float64
	// Latency is the merged per-worker admission-to-egress latency
	// histogram in microseconds. Each worker records into a private
	// histogram during the run and the engine merges them at drain time —
	// the intended share-nothing concurrency pattern for stats.Histogram.
	Latency *stats.Histogram
}
