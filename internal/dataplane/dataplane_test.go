package dataplane

import (
	"reflect"
	"testing"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/equiv"
	"mp5/internal/ir"
	"mp5/internal/telemetry"
	"mp5/internal/workload"
)

// workerCounts are the topologies every equivalence test sweeps — the
// acceptance criterion requires at least three.
var workerCounts = []int{1, 2, 4}

// runChecked drives the engine over the trace and fails the test unless the
// run is loss-free and matches the single-pipeline reference on outputs,
// final registers, and per-slot access order (C1).
func runChecked(t *testing.T, prog *ir.Program, arrivals []core.Arrival, cfg Config) *Result {
	t.Helper()
	cfg.RecordOutputs = true
	cfg.RecordAccessOrder = true
	cfg.RecordEgressOrder = true
	e := New(prog, cfg)
	res := e.Run(arrivals)
	if res.Stalled {
		t.Fatalf("workers=%d: engine stalled (%d of %d completed)", cfg.Workers, res.Completed, res.Injected)
	}
	if res.Completed != res.Injected || res.Injected != int64(len(arrivals)) {
		t.Fatalf("workers=%d: %d of %d completed (trace %d)", cfg.Workers, res.Completed, res.Injected, len(arrivals))
	}
	if rep := equiv.CheckState(prog, e.FinalRegs(), e.Outputs(), arrivals); !rep.Equivalent {
		t.Fatalf("workers=%d: not equivalent to reference:\n%s", cfg.Workers, rep)
	}
	want := equiv.ReferenceOrder(prog, arrivals)
	got := e.AccessOrders()
	if !reflect.DeepEqual(want, got) {
		for k, w := range want {
			if !reflect.DeepEqual(w, got[k]) {
				t.Fatalf("workers=%d: access order of %s diverged:\nwant %v\ngot  %v", cfg.Workers, k, w, got[k])
			}
		}
		for k := range got {
			if _, ok := want[k]; !ok {
				t.Fatalf("workers=%d: spurious access sequence for %s: %v", cfg.Workers, k, got[k])
			}
		}
		t.Fatalf("workers=%d: access orders diverged", cfg.Workers)
	}
	return res
}

func TestSyntheticEquivalence(t *testing.T) {
	prog, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []workload.Pattern{workload.Uniform, workload.Skewed} {
		for _, k := range workerCounts {
			t.Run(pattern.String()+"/"+string(rune('0'+k)), func(t *testing.T) {
				arrivals := workload.Synthetic(prog, workload.Spec{
					Packets: 3000, Pipelines: 4, Seed: 7, Pattern: pattern,
				}, 4, 64)
				runChecked(t, prog, arrivals, Config{Workers: k})
			})
		}
	}
}

// TestAppEquivalence checks every bundled application — including the ones
// with stateful (non-resolvable) predicates, which exercise conservative
// tickets and wasted visits.
func TestAppEquivalence(t *testing.T) {
	for _, app := range apps.All() {
		prog := app.MP5()
		arrivals := workload.RandomFields(prog, workload.Spec{
			Packets: 2000, Pipelines: 4, Seed: 11,
		})
		for _, k := range workerCounts {
			t.Run(app.Name+"/"+string(rune('0'+k)), func(t *testing.T) {
				res := runChecked(t, prog, arrivals, Config{Workers: k})
				if prog.StatefulPredicates && res.Wasted == 0 && k > 0 {
					// Conservative tickets exist; at least some should be
					// wasted under random fields. Informational only —
					// not all predicate shapes go false on this trace.
					t.Logf("%s: no wasted visits despite stateful predicates", app.Name)
				}
			})
		}
	}
}

// TestStatelessSpray runs a register-free program: every packet is sprayed
// (D1) and no packet should ever steer or park.
func TestStatelessSpray(t *testing.T) {
	prog, err := apps.Synthetic(0, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Accesses) != 0 {
		t.Fatalf("expected a stateless program, got %d accesses", len(prog.Accesses))
	}
	arrivals := workload.RandomFields(prog, workload.Spec{Packets: 1000, Pipelines: 4, Seed: 3})
	res := runChecked(t, prog, arrivals, Config{Workers: 4})
	if res.Steers != 0 || res.Parks != 0 {
		t.Fatalf("stateless run steered %d / parked %d packets", res.Steers, res.Parks)
	}
}

// TestRemapMigratesState forces frequent remaps on a skewed trace and checks
// that migrations actually happen — and that equivalence survives them.
func TestRemapMigratesState(t *testing.T) {
	prog, err := apps.Synthetic(2, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{
		Packets: 4000, Pipelines: 4, Seed: 5,
		Pattern: workload.Skewed, ChurnInterval: 64,
	}, 2, 64)
	res := runChecked(t, prog, arrivals, Config{Workers: 4, RemapInterval: 32})
	if res.ShardMoves == 0 {
		t.Fatal("no shard migrations on a churning skewed trace with RemapInterval=32")
	}
}

// TestRemapDisabled makes sure a negative interval really pins the initial
// placement.
func TestRemapDisabled(t *testing.T) {
	prog, err := apps.Synthetic(2, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{
		Packets: 2000, Pipelines: 4, Seed: 5, Pattern: workload.Skewed,
	}, 2, 64)
	res := runChecked(t, prog, arrivals, Config{Workers: 4, RemapInterval: -1})
	if res.ShardMoves != 0 {
		t.Fatalf("remap disabled but %d migrations happened", res.ShardMoves)
	}
}

// TestWindowOne serializes the whole engine through a single in-flight
// packet — the degenerate topology that shakes out window accounting.
func TestWindowOne(t *testing.T) {
	prog, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 500, Pipelines: 2, Seed: 9}, 2, 16)
	runChecked(t, prog, arrivals, Config{Workers: 2, Window: 1})
}

func TestEmptyTrace(t *testing.T) {
	prog, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, Config{Workers: 2, RecordOutputs: true})
	res := e.Run(nil)
	if res.Injected != 0 || res.Completed != 0 || res.Stalled {
		t.Fatalf("empty trace: %+v", res)
	}
	if len(e.Outputs()) != 0 {
		t.Fatalf("empty trace produced outputs")
	}
}

// TestMetrics reconciles the engine's telemetry counters with its Result.
func TestMetrics(t *testing.T) {
	prog, err := apps.Synthetic(2, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 1500, Pipelines: 4, Seed: 13}, 2, 32)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	res := runChecked(t, prog, arrivals, Config{Workers: 4, Metrics: m})
	if m.Admitted.Value() != res.Injected {
		t.Fatalf("admitted counter %d != injected %d", m.Admitted.Value(), res.Injected)
	}
	if m.Egressed.Value() != res.Completed {
		t.Fatalf("egressed counter %d != completed %d", m.Egressed.Value(), res.Completed)
	}
	if m.Steers.Value() != res.Steers || m.Parks.Value() != res.Parks ||
		m.Wasted.Value() != res.Wasted || m.ShardMoves.Value() != res.ShardMoves {
		t.Fatalf("counters diverge from result: %+v vs %+v", m, res)
	}
	if res.Latency.Total() != int(res.Completed) {
		t.Fatalf("latency histogram holds %d samples for %d completions", res.Latency.Total(), res.Completed)
	}
}

// TestLatencyMergeAcrossWorkers checks the per-worker histogram drain: the
// merged histogram must account for every packet exactly once even when all
// workers egress packets.
func TestLatencyMergeAcrossWorkers(t *testing.T) {
	prog, err := apps.Synthetic(0, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.RandomFields(prog, workload.Spec{Packets: 800, Pipelines: 4, Seed: 21})
	e := New(prog, Config{Workers: 4, RecordOutputs: true})
	res := e.Run(arrivals)
	if res.Latency.Total() != len(arrivals) {
		t.Fatalf("merged latency total %d, want %d", res.Latency.Total(), len(arrivals))
	}
	perWorker := 0
	for _, w := range e.workers {
		perWorker += w.lat.Total()
	}
	if perWorker != len(arrivals) {
		t.Fatalf("per-worker totals sum to %d, want %d", perWorker, len(arrivals))
	}
}
