package dataplane

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mp5/internal/banzai"
	"mp5/internal/core"
	"mp5/internal/ir"
	"mp5/internal/stats"
)

// regShard is the admitter's view of one register array's placement: which
// worker owns each index (the live copy) and how often each index was
// resolved in the current remap window. Owned exclusively by the admitter
// goroutine; workers learn placements only through resolved visits.
type regShard struct {
	sharded bool
	size    int
	// owner[i] is the worker holding the live copy of index i; unsharded
	// arrays use owner[0] as the whole-array home (stage mod k, so arrays
	// sharing a stage share a worker, as sharding.New does).
	owner []int
	// count[i] counts resolutions since the last remap (§3.4).
	count []int64
}

// Engine runs compiled MP5 programs on a real goroutine topology (see the
// package comment for the architecture map). The topology — workers,
// crossbar mailboxes, the admission-window semaphore — is shared; every
// loaded program gets its own isolated Handle (registers, ticket queues,
// shard map, frame pool, optional admission quota), so one engine can serve
// N tenant programs side by side and hot-add new program versions while
// traffic flows.
//
// It executes either a pre-materialized trace (Run) or an open-ended packet
// stream (Start/Submit/Drain — Run is implemented on top of the streaming
// mode). An Engine is single-use: construct with New (one program) or
// NewMulti+AddProgram, drive one trace or stream, then read the post-run
// accessors. The single-program accessors (Submit, Outputs, FinalRegs,
// AccessOrders, ShardMap, …) operate on the default handle — the first
// program added — so a one-program engine behaves exactly as before the
// multi-tenant refactor.
type Engine struct {
	cfg Config
	k   int

	workers []*worker

	// hMu guards the handle list: AddProgram publishes (possibly mid-run,
	// from any goroutine — the hot-swap path), the admitter snapshots it
	// for remap, samplers for TicketDepths. def is the first handle added;
	// immutable once set.
	hMu      sync.Mutex
	handles  []*Handle
	hScratch []*Handle // admitter-only remap snapshot buffer
	def      *Handle

	// winCap/winUsed/winAvail form the admission-control semaphore: one
	// token per in-flight packet, shared by every handle (per-tenant limits
	// layer on top as Quotas). The serial admitter takes tokens with one
	// atomic CAS per batch (not per packet); egressing workers return them
	// with an atomic decrement plus a non-blocking signal on winAvail. The
	// single-slot signal channel cannot lose a wakeup: the admitter is the
	// only acquirer and re-checks winUsed after every wake, and a retained
	// signal merely causes one spurious re-check. Because every in-flight
	// packet occupies at most one mailbox slot (a coalesced batch occupies
	// one slot for many packets) and mailboxes are sized to Window, crossbar
	// sends can never block — the window bound is what makes the topology
	// deadlock-free.
	winCap   int64
	winUsed  atomic.Int64
	winAvail chan struct{}

	quit  chan struct{} // closed by Run after the trace drains
	abort chan struct{} // closed by the watchdog on a stall
	done  chan struct{} // closed when completed == injected

	doneOnce  sync.Once
	abortOnce sync.Once
	wg        sync.WaitGroup

	// started flips when Start launches the topology; startT anchors the
	// run's elapsed time. wdStop/wdWg manage the watchdog goroutine.
	started bool
	startT  time.Time
	wdStop  chan struct{}
	wdWg    sync.WaitGroup

	// total holds the final injected count, -1 while admission is still
	// running (workers poll it to detect the last egress).
	total     atomic.Int64
	completed atomic.Int64
	// submitted counts admissions across all handles — the dense global
	// packet-id space. Written only by the (serial) admitter, read
	// atomically by the watchdog and health probes.
	submitted atomic.Int64
	steers    atomic.Int64
	wasted    atomic.Int64
	parks     atomic.Int64
	stalled   atomic.Bool
	// shardMoves and spray are admitter-local (serial).
	shardMoves int64
	spray      int64

	// placeMu guards cross-goroutine snapshots of the owner arrays
	// (ShardMap): remap's rare owner writes take it; the admitter's hot
	// owner reads do not need it (remap runs on the admitter goroutine).
	placeMu sync.Mutex

	// outs[id] is the packet's final header state, written once by the
	// egressing worker and read after all workers joined. Run preallocates
	// the slice from the trace length; the streaming mode, which cannot
	// size it up front, records into per-worker maps merged by Outputs
	// after the workers join (no egress lock either way).
	outs [][]int64
	// egSeq hands out egress sequence numbers; each worker records
	// (seq, id) pairs privately and Drain merges them into egressOrder
	// after the workers join — the sharded replacement for a global
	// egress mutex.
	egSeq       atomic.Int64
	egressOrder []int64

	// Admitter-only scratch, reused across SubmitBatch chunks and remap
	// passes so the hot path allocates nothing. chunk holds the packets of
	// the batch being admitted, tkSlots the slots with buffered tickets
	// (slotState.pend), xbuf the per-worker dispatch batches under
	// assembly (their backing slices come from batchPool and are returned
	// by the draining worker), remapAgg the per-worker load aggregation.
	chunk    []*packet
	tkSlots  []*slotState
	xbuf     []*pktBatch
	remapAgg []int64
	// batchPool recycles the []*packet slices that ride xbarMsg batches
	// between the admitter and the workers.
	batchPool sync.Pool

	met *Metrics
	trc *Tracer

	// testBeforeExec, when set, runs on the owning worker right before a
	// visit executes — the white-box hook the stall test uses to wedge a
	// packet and exercise the watchdog. testAfterTicket runs on the
	// admitter after tickets are issued but before dispatch — the hook the
	// abort-retirement tests use to kill the engine at the worst moment.
	testBeforeExec  func(*packet)
	testAfterTicket func()
}

// NewMulti builds an engine with no programs loaded. Call AddProgram at
// least once before Start; the first program added becomes the default
// handle behind the single-program API (Submit, Outputs, …).
func NewMulti(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:      cfg,
		k:        cfg.Workers,
		winCap:   int64(cfg.Window),
		winAvail: make(chan struct{}, 1),
		quit:     make(chan struct{}),
		abort:    make(chan struct{}),
		done:     make(chan struct{}),
		met:      cfg.Metrics,
		trc:      cfg.Tracer,
	}
	e.chunk = make([]*packet, 0, cfg.Window)
	e.xbuf = make([]*pktBatch, cfg.Workers)
	e.remapAgg = make([]int64, cfg.Workers)
	e.total.Store(-1)
	if e.met == nil {
		e.met = &Metrics{} // all-nil counters: every update is a no-op
	}
	for i := 0; i < e.k; i++ {
		e.workers = append(e.workers, newWorker(e, i))
	}
	return e
}

// New builds a single-program engine for prog — NewMulti plus one unlimited
// default handle. The program must carry MP5 resolution metadata (compile
// with TargetMP5): state accesses without resolution stages cannot be
// ticketed preemptively.
func New(prog *ir.Program, cfg Config) *Engine {
	e := NewMulti(cfg)
	e.AddProgram("default", prog, nil)
	return e
}

// AddProgram loads a program onto the engine under its own isolated Handle
// (registers, ticket queues, shard placement, frame pool) with an optional
// admission quota (nil = unlimited). Safe to call while the engine is
// running and serving other handles — the hot-swap path: the handle is
// fully built before it is published, in-flight packets of other handles
// are untouched, and the new handle's state starts from the program's
// declared initial values. The first AddProgram sets the default handle.
func (e *Engine) AddProgram(name string, prog *ir.Program, quota *Quota) *Handle {
	e.hMu.Lock()
	version := len(e.handles)
	e.hMu.Unlock()
	h := newHandle(e, name, version, prog, quota)
	e.hMu.Lock()
	// Re-read under the lock: concurrent AddProgram calls may have raced
	// the unlocked version draw above (versions stay unique either way).
	h.version = len(e.handles)
	e.handles = append(e.handles, h)
	if e.def == nil {
		e.def = h
	}
	e.hMu.Unlock()
	return h
}

// Default returns the default handle (the first program added; nil on an
// empty NewMulti engine).
func (e *Engine) Default() *Handle {
	e.hMu.Lock()
	defer e.hMu.Unlock()
	return e.def
}

// Handles snapshots the loaded handles in registration order (any
// goroutine).
func (e *Engine) Handles() []*Handle {
	e.hMu.Lock()
	defer e.hMu.Unlock()
	return append([]*Handle(nil), e.handles...)
}

// Run drives the whole trace through the default handle and blocks until
// every packet egressed (or the watchdog aborted a stall). The admitter
// runs on the calling goroutine: execute the resolution stages, resolve
// visits, issue tickets in arrival order, dispatch, and periodically remap.
// Run is the batch shorthand for Start + SubmitBatch + Drain.
func (e *Engine) Run(arrivals []core.Arrival) *Result {
	if e.cfg.RecordOutputs {
		// Sized by the trace so workers can record outputs without a lock;
		// workers see outs non-nil and skip their streaming maps.
		e.outs = make([][]int64, len(arrivals))
	}
	if len(arrivals) == 0 {
		return e.result(0, 0)
	}
	e.Start()
	e.SubmitBatch(arrivals, nil)
	return e.Drain()
}

// Start launches the worker topology and the liveness watchdog, switching
// the engine into open-ended ingestion mode: the caller becomes the serial
// admitter and feeds packets with Submit until Drain. Start must be called
// exactly once, and Submit only from one goroutine at a time (admission
// order is the correctness contract — C1 is defined by it).
func (e *Engine) Start() {
	if e.started {
		panic("dataplane: Engine.Start called twice (engines are single-use)")
	}
	e.started = true
	e.startT = time.Now()
	e.wg.Add(e.k)
	for _, w := range e.workers {
		go w.run()
	}
	e.wdStop = make(chan struct{})
	e.wdWg.Add(1)
	go e.watchdog(e.wdStop, &e.wdWg)
}

// Submit admits one packet on the default handle: block until the admission
// window has room (the live admission-control point), resolve and ticket
// the packet, and dispatch it to its first worker. Returns false when the
// engine aborted (watchdog stall) — the stream is dead and the caller
// should Drain. Admitter-serial: never call Submit concurrently.
func (e *Engine) Submit(a *core.Arrival) bool { return e.SubmitTo(e.def, a, nil) }

// SubmitTraced is Submit for a sampled packet: sp (started by the caller
// at decode — see Tracer.Sample) rides the packet and accrues
// window-wait, admit, crossbar, exec, ticket-wait, and egress segments
// until the tracer collects it at egress. A nil sp is a plain Submit.
func (e *Engine) SubmitTraced(a *core.Arrival, sp *Span) bool { return e.SubmitTo(e.def, a, sp) }

// SubmitTo admits one packet on handle h. On top of Submit's contract it
// enforces h's admission quota: when the tenant's tokens are exhausted the
// packet is shed — counted on the handle, no id consumed, the admit loop
// never blocked — and SubmitTo returns false. Admitter-serial.
func (e *Engine) SubmitTo(h *Handle, a *core.Arrival, sp *Span) bool {
	select {
	case <-e.abort:
		return false // dead engine: refuse before consuming an id
	default:
	}
	if h.quota != nil && h.quota.tryAcquire(1) == 0 {
		h.shed.Add(1)
		e.met.QuotaShed.Inc()
		return false
	}
	if e.acquireWindow(1) == 0 {
		if h.quota != nil {
			h.quota.release(1)
		}
		return false
	}
	id := e.submitted.Load()
	if sp != nil {
		sp.Advance(StageWindowWait, -1)
		sp.ID = id
	}
	p := e.prepare(h, id, a)
	e.submitted.Add(1)
	if sp != nil {
		sp.Advance(StageAdmit, -1)
		p.span = sp
	}
	for vi := range p.visits {
		for _, ref := range p.visits[vi].slots {
			ref.st.enqueue(id)
		}
	}
	if f := e.testAfterTicket; f != nil {
		f()
	}
	dest := e.destOf(p)
	// Deterministic abort check between ticketing and dispatch: without it
	// the dispatch select below could take the (closed) abort case even
	// with mailbox room, leaving this packet's tickets stranded at queue
	// heads forever — the ticket-leak bug. Either abort path retires the
	// packet: tickets cancelled, window token returned, packet recycled.
	select {
	case <-e.abort:
		e.retire(p)
		return false
	default:
	}
	select {
	case e.workers[dest].mailbox <- xbarMsg{p: p}:
	case <-e.abort:
		e.retire(p)
		return false
	}
	if n := e.submitted.Load(); e.cfg.RemapInterval > 0 && n%int64(e.cfg.RemapInterval) == 0 {
		e.remap()
	}
	return true
}

// SubmitBatch admits a run of packets on the default handle — see
// SubmitBatchTo.
func (e *Engine) SubmitBatch(arrs []core.Arrival, spans []*Span) int {
	return e.SubmitBatchTo(e.def, arrs, spans)
}

// SubmitBatchTo admits a run of packets on handle h, amortizing the
// per-packet costs of SubmitTo across the batch: one window acquisition per
// chunk, one ticket queue lock per touched slot per chunk, and one crossbar
// mailbox send per destination worker per chunk. Ticket order — hence C1 —
// is still exactly arrival order: packets are resolved serially in slice
// order, every ticket of the chunk is enqueued before any packet
// dispatches, and per-slot ticket runs flush in admission order.
//
// spans is either nil or parallel to arrs (nil entries for unsampled
// packets). Returns how many packets were admitted; fewer than len(arrs)
// means either the engine aborted (the run is dead) or h's quota ran out —
// in the quota case the entire unadmitted tail is shed (counted on the
// handle) rather than blocking the admit loop, so the admitted count is
// always a dense prefix of arrs. Admitter-serial, like Submit.
func (e *Engine) SubmitBatchTo(h *Handle, arrs []core.Arrival, spans []*Span) int {
	admitted := 0
	for admitted < len(arrs) {
		select {
		case <-e.abort:
			return admitted
		default:
		}
		base := e.submitted.Load()
		want := int64(len(arrs) - admitted)
		if iv := int64(e.cfg.RemapInterval); iv > 0 {
			// Chunks never straddle a remap boundary, so remap keeps its
			// every-RemapInterval-admissions cadence (and its chance to see
			// drained ticket queues) exactly as under per-packet Submit.
			if until := iv - base%iv; want > until {
				want = until
			}
		}
		if h.quota != nil {
			q := h.quota.tryAcquire(want)
			if q == 0 {
				// Quota exhausted: shed the whole remaining tail. Retrying
				// inside this call would either spin or block the (shared)
				// admit loop on one tenant — exactly what quotas exist to
				// prevent.
				shed := int64(len(arrs) - admitted)
				h.shed.Add(shed)
				e.met.QuotaShed.Add(shed)
				return admitted
			}
			want = q
		}
		got := int(e.acquireWindow(want))
		if got == 0 {
			if h.quota != nil {
				h.quota.release(want)
			}
			return admitted
		}
		if h.quota != nil && int64(got) < want {
			h.quota.release(want - int64(got))
		}
		for i := 0; i < got; i++ {
			a := &arrs[admitted+i]
			id := base + int64(i)
			var sp *Span
			if spans != nil {
				sp = spans[admitted+i]
			}
			if sp != nil {
				// Batch semantics: the window wait for the whole chunk was
				// paid up front, so later chunk members fold the queueing
				// behind their chunk-mates' admits into window_wait too.
				sp.Advance(StageWindowWait, -1)
				sp.ID = id
			}
			p := e.prepare(h, id, a)
			if sp != nil {
				sp.Advance(StageAdmit, -1)
				p.span = sp
			}
			// Buffer tickets chunk-locally (pend is admitter-owned); the
			// flush below takes each slot's lock once for the whole chunk.
			for vi := range p.visits {
				for _, ref := range p.visits[vi].slots {
					st := ref.st
					if len(st.pend) == 0 {
						e.tkSlots = append(e.tkSlots, st)
					}
					st.pend = append(st.pend, id)
				}
			}
			e.chunk = append(e.chunk, p)
		}
		e.submitted.Store(base + int64(got))
		// Flush every ticket of the chunk before any packet dispatches: a
		// dispatched packet must be able to find its own tickets (and park
		// behind earlier ones) the moment it reaches a worker.
		for _, st := range e.tkSlots {
			st.enqueueBatch(st.pend)
			st.pend = st.pend[:0]
		}
		e.tkSlots = e.tkSlots[:0]
		admitted += got
		if f := e.testAfterTicket; f != nil {
			f()
		}
		if !e.dispatchChunk() {
			return admitted
		}
		if iv := int64(e.cfg.RemapInterval); iv > 0 && (base+int64(got))%iv == 0 {
			e.remap()
		}
	}
	return admitted
}

// dispatchChunk coalesces the admitted chunk into at most one mailbox send
// per destination worker (admission order preserved within each batch) and
// clears the chunk. Returns false when the engine aborted mid-dispatch;
// undispatched packets are retired in place.
func (e *Engine) dispatchChunk() bool {
	for _, p := range e.chunk {
		dest := e.destOf(p)
		if e.xbuf[dest] == nil {
			e.xbuf[dest] = e.getBatch()
		}
		e.xbuf[dest].items = append(e.xbuf[dest].items, p)
	}
	e.chunk = e.chunk[:0]
	aborted := false
	select {
	case <-e.abort:
		aborted = true // deterministic pre-check, as in SubmitTo
	default:
	}
	for w := 0; w < e.k; w++ {
		b := e.xbuf[w]
		if b == nil {
			continue
		}
		e.xbuf[w] = nil
		if aborted {
			for _, p := range b.items {
				e.retire(p)
			}
			e.putBatch(b)
			continue
		}
		select {
		case e.workers[w].mailbox <- xbarMsg{batch: b}:
		case <-e.abort:
			aborted = true
			for _, p := range b.items {
				e.retire(p)
			}
			e.putBatch(b)
		}
	}
	return !aborted
}

// destOf returns the packet's first-hop worker: the owner of its first
// visit, or the D1 spray target for stateless packets (admitter-serial; the
// spray counter is shared across handles, keeping the stateless load
// uniform whatever the tenant mix).
func (e *Engine) destOf(p *packet) int {
	if len(p.visits) > 0 {
		return p.visits[0].pipe
	}
	d := int(e.spray % int64(e.k))
	e.spray++
	return d
}

// retire un-admits a packet on the abort path: cancel its tickets, return
// its window and quota tokens, and recycle it. The packet's id stays
// consumed (submitted is not rolled back — ids must stay dense) but it will
// never egress; that is fine because retire only runs on a dead engine,
// whose results are already discarded as Stalled/incomplete.
func (e *Engine) retire(p *packet) {
	for vi := range p.visits {
		for _, ref := range p.visits[vi].slots {
			ref.st.cancel(p.id)
		}
	}
	p.span = nil
	h := p.h
	h.putPacket(p)
	if h.quota != nil {
		h.quota.release(1)
	}
	e.releaseWindow()
}

// NextID returns the packet id the next Submit will assign (ids are dense
// across all handles, starting at 0). Admitter-serial, like Submit: callers
// that need to index per-packet bookkeeping before the packet can possibly
// egress read it immediately before the Submit it predicts.
func (e *Engine) NextID() int64 { return e.submitted.Load() }

// Drain ends admission and blocks until every in-flight packet egressed
// (or the watchdog aborted), then joins the workers and returns the run
// summary. After Drain the engine's post-run accessors are valid.
func (e *Engine) Drain() *Result {
	if !e.started {
		return e.result(0, 0)
	}
	submitted := e.submitted.Load()
	e.total.Store(submitted)
	if e.completed.Load() == submitted {
		e.closeDone()
	}
	select {
	case <-e.done:
	case <-e.abort:
	}
	close(e.wdStop)
	e.wdWg.Wait()
	close(e.quit)
	e.wg.Wait()
	e.mergeEgressOrder()
	return e.result(submitted, time.Since(e.startT))
}

// mergeEgressOrder stitches the per-worker (seq, id) egress records into
// the global wall-clock egress sequence. Runs after the workers joined —
// the Drain-time half of the sharded egress recording that replaced the
// old global egress mutex.
func (e *Engine) mergeEgressOrder() {
	if !e.cfg.RecordEgressOrder {
		return
	}
	n := 0
	for _, w := range e.workers {
		n += len(w.egRecs)
	}
	recs := make([]egRec, 0, n)
	for _, w := range e.workers {
		recs = append(recs, w.egRecs...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	e.egressOrder = make([]int64, len(recs))
	for i, r := range recs {
		e.egressOrder[i] = r.id
	}
}

// prepare readies one packet on the admitter: take a recycled packet from
// the handle's free list (or build one), reset its env for the new arrival,
// execute the handle's stateless resolution stages, and resolve every state
// access to a (stage, worker, slots) visit list. Ticket issue is the
// caller's job — SubmitTo enqueues directly, SubmitBatchTo buffers and
// flushes per chunk.
func (e *Engine) prepare(h *Handle, id int64, a *core.Arrival) *packet {
	p := h.getPacket()
	p.id = id
	p.env.ResetFor(a.Fields)
	p.visits = p.visits[:0]
	p.vi = 0
	p.span = nil
	p.start = time.Now()
	for si := 0; si < h.prog.ResolutionStages; si++ {
		if h.bc != nil {
			if err := h.admVM.ExecStage(&h.bc.Stages[si], p.env, h.admRegs); err != nil {
				panic("dataplane: " + err.Error()) // compiled code is never corrupt
			}
			continue
		}
		ir.ExecStage(&h.prog.Stages[si], p.env, h.admRegs)
	}
	p.nextStage = h.prog.ResolutionStages
	e.resolve(h, p)
	if h.record {
		h.idSeq = append(h.idSeq, id)
	}
	h.submitted.Add(1)
	e.met.Admitted.Inc()
	return p
}

// acquireWindow takes up to want admission-window tokens (at least one),
// blocking while the window is full. Returns the number taken, or 0 when
// the engine aborted. Admitter-serial — the single-acquirer assumption is
// what makes the CAS loop plus one-slot wakeup channel race-free.
func (e *Engine) acquireWindow(want int64) int64 {
	for {
		used := e.winUsed.Load()
		if free := e.winCap - used; free > 0 {
			n := want
			if n > free {
				n = free
			}
			if e.winUsed.CompareAndSwap(used, used+n) {
				return n
			}
			continue
		}
		select {
		case <-e.winAvail:
		case <-e.abort:
			return 0
		}
	}
}

// releaseWindow returns one token and wakes the admitter if it is waiting
// (worker-side, at egress or abort-retirement).
func (e *Engine) releaseWindow() {
	e.winUsed.Add(-1)
	select {
	case e.winAvail <- struct{}{}:
	default: // a wakeup is already pending; one is enough
	}
}

// getBatch/putBatch recycle the packet batches riding coalesced xbarMsg
// sends. A sync.Pool is fine here (unlike the per-handle packet free
// lists): losing a batch to GC costs one amortized allocation per chunk,
// not the packet zero-alloc guarantee.
func (e *Engine) getBatch() *pktBatch {
	if v := e.batchPool.Get(); v != nil {
		return v.(*pktBatch)
	}
	return &pktBatch{items: make([]*packet, 0, 64)}
}

func (e *Engine) putBatch(b *pktBatch) {
	for i := range b.items {
		b.items[i] = nil
	}
	b.items = b.items[:0]
	e.batchPool.Put(b)
}

// resolve performs preemptive address resolution (§3.3) against the
// handle's shard placement: evaluate resolvable predicates, clamp indices,
// look up slot owners, and build the visit list. Same-stage accesses form
// one visit and must co-locate (the code generator guarantees multi-array
// stages hold only unsharded, same-home arrays). Duplicate same-stage
// references to one slot collapse to a single ticket.
func (e *Engine) resolve(h *Handle, p *packet) {
	for stage, bucket := range h.accByStage {
		var v *visit
		for _, ai := range bucket {
			a := &h.prog.Accesses[ai]
			if a.PredResolvable && !a.Pred.IsNone() {
				truth := p.env.Load(a.Pred) != 0
				if truth == a.PredNeg {
					continue // resolved: this access will not happen
				}
			}
			sh := &h.shard[a.Reg]
			key := slotKey{a.Reg, -1}
			pos := 0
			if sh.sharded {
				key.idx = banzai.ClampIndex(int(p.env.Load(a.Idx)), sh.size)
				pos = key.idx
			}
			sh.count[pos]++
			dest := sh.owner[pos]
			if v == nil {
				// Extend in place when the recycled packet's visit array has
				// room: reslicing (rather than appending a fresh struct)
				// keeps each visit's slots capacity from previous lives.
				if n := len(p.visits); n < cap(p.visits) {
					p.visits = p.visits[:n+1]
					v = &p.visits[n]
					v.stage, v.pipe = stage, dest
					v.slots = v.slots[:0]
				} else {
					p.visits = append(p.visits, visit{stage: stage, pipe: dest})
					v = &p.visits[n]
				}
			} else if v.pipe != dest {
				panic("dataplane: co-located accesses resolved to different pipelines")
			}
			dup := false
			for _, ref := range v.slots {
				if ref.key == key {
					dup = true
					break
				}
			}
			if !dup {
				v.slots = append(v.slots, slotRef{key: key, st: h.slots[key]})
			}
		}
	}
}

// remap runs one Figure-6 iteration over every handle (admitter-only). The
// handle list is snapshotted under hMu so a concurrent AddProgram (hot
// swap) neither blocks admission nor tears the iteration.
func (e *Engine) remap() {
	e.hMu.Lock()
	e.hScratch = append(e.hScratch[:0], e.handles...)
	e.hMu.Unlock()
	for _, h := range e.hScratch {
		e.remapHandle(h)
	}
}

// remapHandle runs one Figure-6 iteration per sharded array of one handle:
// find the heaviest (H) and lightest (L) workers by windowed access count,
// pick the hottest index on H counting less than half the gap, and migrate
// it to L — but only if its ticket queue is empty, checked and copied under
// the slot mutex so no in-flight or future access can observe a torn value.
// Window counters reset afterwards.
func (e *Engine) remapHandle(h *Handle) {
	for reg := range h.shard {
		sh := &h.shard[reg]
		if !sh.sharded {
			continue
		}
		agg := e.remapAgg // admitter-only scratch; remap is admitter-only
		for i := range agg {
			agg[i] = 0
		}
		for i, o := range sh.owner {
			agg[o] += sh.count[i]
		}
		hi, lo := 0, 0
		for w := 1; w < e.k; w++ {
			if agg[w] > agg[hi] {
				hi = w
			}
			if agg[w] < agg[lo] {
				lo = w
			}
		}
		if hi != lo && agg[hi] != agg[lo] {
			c := (agg[hi] - agg[lo]) / 2
			best := -1
			for i, o := range sh.owner {
				if o != hi || sh.count[i] >= c || sh.count[i] == 0 {
					continue
				}
				if best < 0 || sh.count[i] > sh.count[best] {
					best = i
				}
			}
			if best >= 0 {
				st := h.slots[slotKey{reg, best}]
				st.mu.Lock()
				if st.head >= len(st.queue) {
					// No pending tickets: nobody is touching (or will
					// touch) the old copy, and the next ticket will be
					// issued after owner[] is updated below — the slot
					// mutex carries the value to the new owner. placeMu
					// publishes the new owner to ShardMap snapshots.
					h.wregs[lo].Array(reg)[best] = h.wregs[hi].Array(reg)[best]
					e.placeMu.Lock()
					sh.owner[best] = lo
					e.placeMu.Unlock()
					e.shardMoves++
					e.met.ShardMoves.Inc()
				}
				st.mu.Unlock()
			}
		}
		for i := range sh.count {
			sh.count[i] = 0
		}
	}
}

// watchdog aborts the run when no packet egresses for StallTimeout while
// packets are in flight, so a liveness bug fails tests loudly (Stalled)
// instead of hanging them. An idle stream (nothing in flight) is healthy,
// not stalled — essential in streaming mode, where traffic gaps of any
// length are normal.
func (e *Engine) watchdog(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	period := e.cfg.StallTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	last := e.completed.Load()
	lastChange := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-e.done:
			return
		case <-tick.C:
			cur := e.completed.Load()
			if cur != last || cur == e.submitted.Load() {
				last, lastChange = cur, time.Now()
				continue
			}
			if time.Since(lastChange) >= e.cfg.StallTimeout {
				e.stalled.Store(true)
				e.met.Stalls.Inc()
				e.abortOnce.Do(func() { close(e.abort) })
				return
			}
		}
	}
}

func (e *Engine) closeDone() {
	e.doneOnce.Do(func() { close(e.done) })
}

// result assembles the run summary after every worker joined.
func (e *Engine) result(injected int64, elapsed time.Duration) *Result {
	lat := stats.NewHistogram(latLo, latHi, latBuckets)
	for _, w := range e.workers {
		lat.Merge(w.lat)
	}
	res := &Result{
		Workers:    e.k,
		Injected:   injected,
		Completed:  e.completed.Load(),
		Steers:     e.steers.Load(),
		Parks:      e.parks.Load(),
		Wasted:     e.wasted.Load(),
		ShardMoves: e.shardMoves,
		Stalled:    e.stalled.Load(),
		Elapsed:    elapsed,
		Latency:    lat,
	}
	if e.cfg.RecordEgressOrder {
		res.Reordered = core.CountOvertakers(e.egressOrder)
	}
	if elapsed > 0 {
		res.PktsPerSec = float64(res.Completed) / elapsed.Seconds()
	}
	return res
}

// Outputs returns each completed packet's final header fields, keyed by
// global packet id — the shape equiv.CheckState consumes on a
// single-program engine (where global ids coincide with arrival indices).
// Only valid after Run/Drain, and only when Config.RecordOutputs was set.
// Streaming-mode outputs live in per-worker maps until this merge (no
// egress lock). Multi-program engines verify per handle with OutputsFor.
func (e *Engine) Outputs() map[int64][]int64 {
	if e.outs == nil {
		if !e.cfg.RecordOutputs {
			return nil
		}
		n := 0
		for _, w := range e.workers {
			n += len(w.outs)
		}
		out := make(map[int64][]int64, n)
		for _, w := range e.workers {
			for id, f := range w.outs {
				out[id] = f
			}
		}
		return out
	}
	out := make(map[int64][]int64, len(e.outs))
	for id, f := range e.outs {
		if f != nil {
			out[int64(id)] = f
		}
	}
	return out
}

// OutputsFor returns handle h's completed packets' final header fields,
// keyed by the handle's dense per-program arrival index (0..n-1 in h's
// admission order) — the shape the single-pipeline reference keys by, so
// each tenant verifies against its own independent reference. Only valid
// after Drain with Config.RecordOutputs set.
func (e *Engine) OutputsFor(h *Handle) map[int64][]int64 {
	all := e.Outputs()
	if all == nil {
		return nil
	}
	out := make(map[int64][]int64, len(h.idSeq))
	for i, gid := range h.idSeq {
		if f, ok := all[gid]; ok {
			out[int64(i)] = f
		}
	}
	return out
}

// FinalRegs returns the default handle's final register state — see
// FinalRegsFor. Only valid after Run/Drain.
func (e *Engine) FinalRegs() [][]int64 { return e.FinalRegsFor(e.def) }

// FinalRegsFor returns handle h's final register state, assembling each
// index from the worker register file owning its live copy. Only valid
// after Drain.
func (e *Engine) FinalRegsFor(h *Handle) [][]int64 {
	out := make([][]int64, len(h.shard))
	for r := range h.shard {
		sh := &h.shard[r]
		a := make([]int64, sh.size)
		if sh.sharded {
			for i := range a {
				a[i] = h.wregs[sh.owner[i]].Array(r)[i]
			}
		} else {
			copy(a, h.wregs[sh.owner[0]].Array(r))
		}
		out[r] = a
	}
	return out
}

// AccessOrders returns the default handle's per-slot effective access
// order in global packet ids, keyed like the simulator's EvAccess stream
// and banzai's indexed log ("r<reg>[<idx>]"). On a single-program engine
// global ids coincide with arrival indices, so this is directly comparable
// to equiv.ReferenceOrder. Only valid after Run/Drain, with
// Config.RecordAccessOrder set. Multi-program engines use AccessOrdersFor.
func (e *Engine) AccessOrders() map[string][]int64 {
	out := make(map[string][]int64)
	for key, st := range e.def.slots {
		for ci, seq := range st.log {
			out[banzai.AccessKey(key.reg, ci)] = seq
		}
	}
	return out
}

// AccessOrdersFor returns handle h's per-slot effective access order with
// every global packet id remapped to the handle's dense per-program arrival
// index — directly comparable to equiv.ReferenceOrder over the handle's own
// admission trace. Only valid after Drain, with Config.RecordAccessOrder
// set.
func (e *Engine) AccessOrdersFor(h *Handle) map[string][]int64 {
	idx := make(map[int64]int64, len(h.idSeq))
	for i, gid := range h.idSeq {
		idx[gid] = int64(i)
	}
	out := make(map[string][]int64)
	for key, st := range h.slots {
		for ci, seq := range st.log {
			m := make([]int64, len(seq))
			for j, gid := range seq {
				m[j] = idx[gid]
			}
			out[banzai.AccessKey(key.reg, ci)] = m
		}
	}
	return out
}

// EgressOrder returns the wall-clock egress sequence of packet ids (only
// recorded with Config.RecordEgressOrder).
func (e *Engine) EgressOrder() []int64 { return e.egressOrder }

// Stalled reports whether the liveness watchdog aborted the engine. Safe
// to call from any goroutine at any time — the health-probe hook.
func (e *Engine) Stalled() bool { return e.stalled.Load() }

// Workers returns the resolved worker count k.
func (e *Engine) Workers() int { return e.k }

// Submitted returns the number of packets admitted so far across all
// handles (any goroutine).
func (e *Engine) Submitted() int64 { return e.submitted.Load() }

// Completed returns the number of packets egressed so far (any goroutine).
func (e *Engine) Completed() int64 { return e.completed.Load() }

// InFlight returns the number of admitted-but-not-yet-egressed packets,
// bounded by Config.Window (any goroutine).
func (e *Engine) InFlight() int64 { return e.submitted.Load() - e.completed.Load() }

// WindowInUse returns the number of admission-window tokens currently held
// (in-flight packets), safe from any goroutine — the live admission-control
// gauge.
func (e *Engine) WindowInUse() int { return int(e.winUsed.Load()) }

// WindowCap returns the admission-window size.
func (e *Engine) WindowCap() int { return int(e.winCap) }

// WorkerStat is one worker's live occupancy/throughput view, in the shape
// the admin plane serves (/stats) and mp5top renders. Mailbox is the
// channel depth (queued crossbar handoffs), Parked the packets waiting on
// head tickets, Processed the process-loop invocations (mailbox receives +
// promotions), Egressed the packets completed on this worker, and BusyNs
// cumulative wall time spent inside the process loop — only accounted
// while a Tracer is attached, 0 otherwise.
type WorkerStat struct {
	ID         int   `json:"id"`
	Mailbox    int   `json:"mailbox"`
	MailboxCap int   `json:"mailbox_cap"`
	Parked     int64 `json:"parked"`
	Processed  int64 `json:"processed"`
	Egressed   int64 `json:"egressed"`
	BusyNs     int64 `json:"busy_ns"`
}

// WorkerStats snapshots every worker's live occupancy counters. Safe from
// any goroutine while the engine runs (all fields are atomics or channel
// lengths).
func (e *Engine) WorkerStats() []WorkerStat {
	out := make([]WorkerStat, e.k)
	for i, w := range e.workers {
		out[i] = WorkerStat{
			ID:         i,
			Mailbox:    len(w.mailbox),
			MailboxCap: cap(w.mailbox),
			Parked:     w.parkedN.Load(),
			Processed:  w.processedN.Load(),
			Egressed:   w.egressedN.Load(),
			BusyNs:     w.busyNs.Load(),
		}
	}
	return out
}

// TicketDepths sums the pending (issued-but-unretired) tickets across
// every slot queue of every handle and reports the deepest single queue —
// the live D4 backlog. It takes each slot's mutex briefly; meant for the
// admin plane's background sampler, not the per-packet path.
func (e *Engine) TicketDepths() (pending, maxDepth int64) {
	for _, h := range e.Handles() {
		p, m := e.ticketDepthsFor(h)
		pending += p
		if m > maxDepth {
			maxDepth = m
		}
	}
	return pending, maxDepth
}

func (e *Engine) ticketDepthsFor(h *Handle) (pending, maxDepth int64) {
	for _, st := range h.slots {
		st.mu.Lock()
		d := int64(len(st.queue) - st.head)
		st.mu.Unlock()
		pending += d
		if d > maxDepth {
			maxDepth = d
		}
	}
	return pending, maxDepth
}

// ShardEntry is one register array's live D2 placement, in the shape the
// admin plane serves as JSON.
type ShardEntry struct {
	Reg     int    `json:"reg"`
	Name    string `json:"name"`
	Sharded bool   `json:"sharded"`
	// Owners[i] is the worker holding the live copy of index i; an
	// unsharded array has a single element, the whole-array home.
	Owners []int `json:"owners"`
}

// ShardMap snapshots the default handle's live index→worker ownership —
// see ShardMapFor.
func (e *Engine) ShardMap() []ShardEntry { return e.ShardMapFor(e.def) }

// ShardMapFor snapshots the live index→worker ownership of every register
// array of handle h. Safe from any goroutine while the engine runs: remap
// publishes owner changes under the same lock the snapshot takes.
func (e *Engine) ShardMapFor(h *Handle) []ShardEntry {
	out := make([]ShardEntry, len(h.shard))
	e.placeMu.Lock()
	defer e.placeMu.Unlock()
	for r := range h.shard {
		out[r] = ShardEntry{
			Reg:     r,
			Name:    h.prog.Regs[r].Name,
			Sharded: h.shard[r].sharded,
			Owners:  append([]int(nil), h.shard[r].owner...),
		}
	}
	return out
}
