package dataplane

import (
	"sync"
	"sync/atomic"
	"time"

	"mp5/internal/banzai"
	"mp5/internal/core"
	"mp5/internal/ir"
	"mp5/internal/stats"
)

// regShard is the admitter's view of one register array's placement: which
// worker owns each index (the live copy) and how often each index was
// resolved in the current remap window. Owned exclusively by the admitter
// goroutine; workers learn placements only through resolved visits.
type regShard struct {
	sharded bool
	size    int
	// owner[i] is the worker holding the live copy of index i; unsharded
	// arrays use owner[0] as the whole-array home (stage mod k, so arrays
	// sharing a stage share a worker, as sharding.New does).
	owner []int
	// count[i] counts resolutions since the last remap (§3.4).
	count []int64
}

// Engine runs one compiled MP5 program over one arrival trace on a real
// goroutine topology (see the package comment for the architecture map).
// An Engine is single-use: construct with New, call Run exactly once, then
// read Outputs/FinalRegs/AccessOrders/EgressOrder.
type Engine struct {
	prog       *ir.Program
	cfg        Config
	k          int
	accByStage [][]int
	workers    []*worker
	// slots maps every placeable state unit to its ticket queue. Built in
	// New and never mutated afterwards, so workers may read it freely
	// (they reach slots through resolved visit references anyway).
	slots map[slotKey]*slotState
	shard []regShard
	// admRegs backs resolution-stage execution in the admitter: those
	// stages are stateless by construction (ir.Program.Validate), so only
	// its read-only match tables are ever consulted.
	admRegs *banzai.RegFile

	// window is the admission-control semaphore: one token per in-flight
	// packet. Because every in-flight packet occupies at most one mailbox
	// slot and mailboxes are sized to Window, crossbar sends can never
	// block — the window bound is what makes the topology deadlock-free.
	window chan struct{}
	quit   chan struct{} // closed by Run after the trace drains
	abort  chan struct{} // closed by the watchdog on a stall
	done   chan struct{} // closed when completed == injected

	doneOnce  sync.Once
	abortOnce sync.Once
	wg        sync.WaitGroup

	// total holds the final injected count, -1 while admission is still
	// running (workers poll it to detect the last egress).
	total     atomic.Int64
	completed atomic.Int64
	steers    atomic.Int64
	wasted    atomic.Int64
	parks     atomic.Int64
	stalled   atomic.Bool
	// shardMoves and spray are admitter-local (serial).
	shardMoves int64
	spray      int64

	// outs[id] is the packet's final header state, written once by the
	// egressing worker and read after all workers joined.
	outs        [][]int64
	egMu        sync.Mutex
	egressOrder []int64

	met *Metrics

	// testBeforeExec, when set, runs on the owning worker right before a
	// visit executes — the white-box hook the stall test uses to wedge a
	// packet and exercise the watchdog.
	testBeforeExec func(*packet)
}

// New builds an engine for prog. The program must carry MP5 resolution
// metadata (compile with TargetMP5): state accesses without resolution
// stages cannot be ticketed preemptively.
func New(prog *ir.Program, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if len(prog.Accesses) > 0 && prog.ResolutionStages == 0 {
		panic("dataplane: program has state accesses but no resolution stages (compile for TargetMP5)")
	}
	e := &Engine{
		prog:       prog,
		cfg:        cfg,
		k:          cfg.Workers,
		accByStage: prog.AccessesByStage(),
		slots:      make(map[slotKey]*slotState),
		admRegs:    banzai.NewRegFile(prog),
		window:     make(chan struct{}, cfg.Window),
		quit:       make(chan struct{}),
		abort:      make(chan struct{}),
		done:       make(chan struct{}),
		met:        cfg.Metrics,
	}
	e.total.Store(-1)
	if e.met == nil {
		e.met = &Metrics{} // all-nil counters: every update is a no-op
	}
	e.shard = make([]regShard, len(prog.Regs))
	for r := range prog.Regs {
		info := &prog.Regs[r]
		sh := &e.shard[r]
		sh.sharded = info.Sharded
		sh.size = info.Size
		if sh.sharded {
			sh.owner = make([]int, info.Size)
			sh.count = make([]int64, info.Size)
			for i := range sh.owner {
				sh.owner[i] = i % e.k // round-robin, like sharding.PolicyRoundRobin
			}
			for i := 0; i < info.Size; i++ {
				e.slots[slotKey{r, i}] = &slotState{}
			}
		} else {
			home := 0
			if info.Stage >= 0 {
				home = info.Stage % e.k
			}
			sh.owner = []int{home}
			sh.count = make([]int64, 1)
			e.slots[slotKey{r, -1}] = &slotState{}
		}
	}
	for i := 0; i < e.k; i++ {
		e.workers = append(e.workers, newWorker(e, i))
	}
	return e
}

// Run drives the whole trace through the topology and blocks until every
// packet egressed (or the watchdog aborted a stall). The admitter runs on
// the calling goroutine: execute the resolution stages, resolve visits,
// issue tickets in arrival order, dispatch, and periodically remap.
func (e *Engine) Run(arrivals []core.Arrival) *Result {
	start := time.Now()
	if e.cfg.RecordOutputs {
		e.outs = make([][]int64, len(arrivals))
	}
	if len(arrivals) == 0 {
		return e.result(0, time.Since(start))
	}
	e.wg.Add(e.k)
	for _, w := range e.workers {
		go w.run()
	}
	wdStop := make(chan struct{})
	var wdWg sync.WaitGroup
	wdWg.Add(1)
	go e.watchdog(wdStop, &wdWg)

	var admitted int64
admitLoop:
	for i := range arrivals {
		select {
		case e.window <- struct{}{}:
		case <-e.abort:
			break admitLoop
		}
		p := e.admit(int64(i), &arrivals[i])
		admitted++
		dest := 0
		if len(p.visits) > 0 {
			dest = p.visits[0].pipe
		} else {
			dest = int(e.spray % int64(e.k)) // D1: spray stateless packets
			e.spray++
		}
		select {
		case e.workers[dest].mailbox <- p:
		case <-e.abort:
			break admitLoop
		}
		if e.cfg.RemapInterval > 0 && admitted%int64(e.cfg.RemapInterval) == 0 {
			e.remap()
		}
	}
	e.total.Store(admitted)
	if e.completed.Load() == admitted {
		e.closeDone()
	}
	select {
	case <-e.done:
	case <-e.abort:
	}
	close(wdStop)
	wdWg.Wait()
	close(e.quit)
	e.wg.Wait()
	return e.result(admitted, time.Since(start))
}

// admit prepares one packet on the admitter: copy the header, execute the
// stateless resolution stages, resolve every state access to a (stage,
// worker, slots) visit list, and issue one ticket per visit slot — the D4
// phantom, enqueued in arrival order because the admitter is serial.
func (e *Engine) admit(id int64, a *core.Arrival) *packet {
	env := ir.NewEnv(e.prog)
	copy(env.Fields, a.Fields)
	p := &packet{id: id, env: env, start: time.Now()}
	for si := 0; si < e.prog.ResolutionStages; si++ {
		ir.ExecStage(&e.prog.Stages[si], env, e.admRegs)
	}
	p.nextStage = e.prog.ResolutionStages
	e.resolve(p)
	for vi := range p.visits {
		for _, ref := range p.visits[vi].slots {
			ref.st.enqueue(id)
		}
	}
	e.met.Admitted.Inc()
	return p
}

// resolve performs preemptive address resolution (§3.3): evaluate resolvable
// predicates, clamp indices, look up slot owners, and build the visit list.
// Same-stage accesses form one visit and must co-locate (the code generator
// guarantees multi-array stages hold only unsharded, same-home arrays).
// Duplicate same-stage references to one slot collapse to a single ticket.
func (e *Engine) resolve(p *packet) {
	for stage, bucket := range e.accByStage {
		var v *visit
		for _, ai := range bucket {
			a := &e.prog.Accesses[ai]
			if a.PredResolvable && !a.Pred.IsNone() {
				truth := p.env.Load(a.Pred) != 0
				if truth == a.PredNeg {
					continue // resolved: this access will not happen
				}
			}
			sh := &e.shard[a.Reg]
			key := slotKey{a.Reg, -1}
			pos := 0
			if sh.sharded {
				key.idx = banzai.ClampIndex(int(p.env.Load(a.Idx)), sh.size)
				pos = key.idx
			}
			sh.count[pos]++
			dest := sh.owner[pos]
			if v == nil {
				p.visits = append(p.visits, visit{stage: stage, pipe: dest})
				v = &p.visits[len(p.visits)-1]
			} else if v.pipe != dest {
				panic("dataplane: co-located accesses resolved to different pipelines")
			}
			dup := false
			for _, ref := range v.slots {
				if ref.key == key {
					dup = true
					break
				}
			}
			if !dup {
				v.slots = append(v.slots, slotRef{key: key, st: e.slots[key]})
			}
		}
	}
}

// remap runs one Figure-6 iteration per sharded array (admitter-only): find
// the heaviest (H) and lightest (L) workers by windowed access count, pick
// the hottest index on H counting less than half the gap, and migrate it to
// L — but only if its ticket queue is empty, checked and copied under the
// slot mutex so no in-flight or future access can observe a torn value.
// Window counters reset afterwards.
func (e *Engine) remap() {
	for reg := range e.shard {
		sh := &e.shard[reg]
		if !sh.sharded {
			continue
		}
		agg := make([]int64, e.k)
		for i, o := range sh.owner {
			agg[o] += sh.count[i]
		}
		h, l := 0, 0
		for w := 1; w < e.k; w++ {
			if agg[w] > agg[h] {
				h = w
			}
			if agg[w] < agg[l] {
				l = w
			}
		}
		if h != l && agg[h] != agg[l] {
			c := (agg[h] - agg[l]) / 2
			best := -1
			for i, o := range sh.owner {
				if o != h || sh.count[i] >= c || sh.count[i] == 0 {
					continue
				}
				if best < 0 || sh.count[i] > sh.count[best] {
					best = i
				}
			}
			if best >= 0 {
				st := e.slots[slotKey{reg, best}]
				st.mu.Lock()
				if st.head >= len(st.queue) {
					// No pending tickets: nobody is touching (or will
					// touch) the old copy, and the next ticket will be
					// issued after owner[] is updated below — the slot
					// mutex carries the value to the new owner.
					e.workers[l].regs.Array(reg)[best] = e.workers[h].regs.Array(reg)[best]
					sh.owner[best] = l
					e.shardMoves++
					e.met.ShardMoves.Inc()
				}
				st.mu.Unlock()
			}
		}
		for i := range sh.count {
			sh.count[i] = 0
		}
	}
}

// watchdog aborts the run when no packet egresses for StallTimeout while
// packets are in flight, so a liveness bug fails tests loudly (Stalled)
// instead of hanging them.
func (e *Engine) watchdog(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	period := e.cfg.StallTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	last := e.completed.Load()
	lastChange := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-e.done:
			return
		case <-tick.C:
			cur := e.completed.Load()
			if cur != last {
				last, lastChange = cur, time.Now()
				continue
			}
			if time.Since(lastChange) >= e.cfg.StallTimeout {
				e.stalled.Store(true)
				e.met.Stalls.Inc()
				e.abortOnce.Do(func() { close(e.abort) })
				return
			}
		}
	}
}

func (e *Engine) closeDone() {
	e.doneOnce.Do(func() { close(e.done) })
}

// result assembles the run summary after every worker joined.
func (e *Engine) result(injected int64, elapsed time.Duration) *Result {
	lat := stats.NewHistogram(latLo, latHi, latBuckets)
	for _, w := range e.workers {
		lat.Merge(w.lat)
	}
	res := &Result{
		Workers:    e.k,
		Injected:   injected,
		Completed:  e.completed.Load(),
		Steers:     e.steers.Load(),
		Parks:      e.parks.Load(),
		Wasted:     e.wasted.Load(),
		ShardMoves: e.shardMoves,
		Stalled:    e.stalled.Load(),
		Elapsed:    elapsed,
		Latency:    lat,
	}
	if e.cfg.RecordEgressOrder {
		res.Reordered = core.CountOvertakers(e.egressOrder)
	}
	if elapsed > 0 {
		res.PktsPerSec = float64(res.Completed) / elapsed.Seconds()
	}
	return res
}

// Outputs returns each completed packet's final header fields, keyed by
// packet id — the shape equiv.CheckState consumes. Only valid after Run,
// and only when Config.RecordOutputs was set.
func (e *Engine) Outputs() map[int64][]int64 {
	if e.outs == nil {
		return nil
	}
	out := make(map[int64][]int64, len(e.outs))
	for id, f := range e.outs {
		if f != nil {
			out[int64(id)] = f
		}
	}
	return out
}

// FinalRegs returns the final register state, assembling each index from
// the worker owning its live copy. Only valid after Run.
func (e *Engine) FinalRegs() [][]int64 {
	out := make([][]int64, len(e.shard))
	for r := range e.shard {
		sh := &e.shard[r]
		a := make([]int64, sh.size)
		if sh.sharded {
			for i := range a {
				a[i] = e.workers[sh.owner[i]].regs.Array(r)[i]
			}
		} else {
			copy(a, e.workers[sh.owner[0]].regs.Array(r))
		}
		out[r] = a
	}
	return out
}

// AccessOrders returns the per-slot effective access order, keyed like the
// simulator's EvAccess stream and banzai's indexed log ("r<reg>[<idx>]").
// Only valid after Run, with Config.RecordAccessOrder set.
func (e *Engine) AccessOrders() map[string][]int64 {
	out := make(map[string][]int64)
	for key, st := range e.slots {
		for ci, seq := range st.log {
			out[banzai.AccessKey(key.reg, ci)] = seq
		}
	}
	return out
}

// EgressOrder returns the wall-clock egress sequence of packet ids (only
// recorded with Config.RecordEgressOrder).
func (e *Engine) EgressOrder() []int64 { return e.egressOrder }
