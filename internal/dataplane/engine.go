package dataplane

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mp5/internal/banzai"
	"mp5/internal/core"
	"mp5/internal/ir"
	"mp5/internal/ir/bytecode"
	"mp5/internal/stats"
)

// regShard is the admitter's view of one register array's placement: which
// worker owns each index (the live copy) and how often each index was
// resolved in the current remap window. Owned exclusively by the admitter
// goroutine; workers learn placements only through resolved visits.
type regShard struct {
	sharded bool
	size    int
	// owner[i] is the worker holding the live copy of index i; unsharded
	// arrays use owner[0] as the whole-array home (stage mod k, so arrays
	// sharing a stage share a worker, as sharding.New does).
	owner []int
	// count[i] counts resolutions since the last remap (§3.4).
	count []int64
}

// Engine runs one compiled MP5 program on a real goroutine topology (see
// the package comment for the architecture map). It executes either a
// pre-materialized trace (Run) or an open-ended packet stream
// (Start/Submit/Drain — Run is implemented on top of the streaming mode).
// An Engine is single-use: construct with New, drive one trace or stream,
// then read Outputs/FinalRegs/AccessOrders/EgressOrder.
type Engine struct {
	prog       *ir.Program
	cfg        Config
	k          int
	accByStage [][]int
	workers    []*worker
	// slots maps every placeable state unit to its ticket queue. Built in
	// New and never mutated afterwards, so workers may read it freely
	// (they reach slots through resolved visit references anyway).
	slots map[slotKey]*slotState
	shard []regShard
	// admRegs backs resolution-stage execution in the admitter: those
	// stages are stateless by construction (ir.Program.Validate), so only
	// its read-only match tables are ever consulted.
	admRegs *banzai.RegFile
	// bc is the bytecode-compiled program shared by the admitter and
	// every worker (read-only after New); nil when cfg.Interpret pins the
	// tree-walking interpreter. admVM is the admitter goroutine's operand
	// stack — VMs are not goroutine-safe, so each worker carries its own.
	bc    *bytecode.Program
	admVM *bytecode.VM

	// window is the admission-control semaphore: one token per in-flight
	// packet. Because every in-flight packet occupies at most one mailbox
	// slot and mailboxes are sized to Window, crossbar sends can never
	// block — the window bound is what makes the topology deadlock-free.
	window chan struct{}
	quit   chan struct{} // closed by Run after the trace drains
	abort  chan struct{} // closed by the watchdog on a stall
	done   chan struct{} // closed when completed == injected

	doneOnce  sync.Once
	abortOnce sync.Once
	wg        sync.WaitGroup

	// started flips when Start launches the topology; startT anchors the
	// run's elapsed time. wdStop/wdWg manage the watchdog goroutine.
	started bool
	startT  time.Time
	wdStop  chan struct{}
	wdWg    sync.WaitGroup

	// total holds the final injected count, -1 while admission is still
	// running (workers poll it to detect the last egress).
	total     atomic.Int64
	completed atomic.Int64
	// submitted counts admissions. Written only by the (serial) admitter,
	// read atomically by the watchdog and health probes.
	submitted atomic.Int64
	steers    atomic.Int64
	wasted    atomic.Int64
	parks     atomic.Int64
	stalled   atomic.Bool
	// shardMoves and spray are admitter-local (serial).
	shardMoves int64
	spray      int64

	// placeMu guards cross-goroutine snapshots of the owner arrays
	// (ShardMap): remap's rare owner writes take it; the admitter's hot
	// owner reads do not need it (remap runs on the admitter goroutine).
	placeMu sync.Mutex

	// outs[id] is the packet's final header state, written once by the
	// egressing worker and read after all workers joined. Run preallocates
	// the slice from the trace length; the streaming mode, which cannot
	// size it up front, records into outsM under egMu instead.
	outs        [][]int64
	outsM       map[int64][]int64
	egMu        sync.Mutex
	egressOrder []int64

	met *Metrics
	trc *Tracer

	// testBeforeExec, when set, runs on the owning worker right before a
	// visit executes — the white-box hook the stall test uses to wedge a
	// packet and exercise the watchdog.
	testBeforeExec func(*packet)
}

// New builds an engine for prog. The program must carry MP5 resolution
// metadata (compile with TargetMP5): state accesses without resolution
// stages cannot be ticketed preemptively.
func New(prog *ir.Program, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if len(prog.Accesses) > 0 && prog.ResolutionStages == 0 {
		panic("dataplane: program has state accesses but no resolution stages (compile for TargetMP5)")
	}
	e := &Engine{
		prog:       prog,
		cfg:        cfg,
		k:          cfg.Workers,
		accByStage: prog.AccessesByStage(),
		slots:      make(map[slotKey]*slotState),
		admRegs:    banzai.NewRegFile(prog),
		window:     make(chan struct{}, cfg.Window),
		quit:       make(chan struct{}),
		abort:      make(chan struct{}),
		done:       make(chan struct{}),
		met:        cfg.Metrics,
		trc:        cfg.Tracer,
	}
	e.total.Store(-1)
	if e.met == nil {
		e.met = &Metrics{} // all-nil counters: every update is a no-op
	}
	if !cfg.Interpret {
		e.bc = bytecode.MustCompile(prog)
		e.admVM = bytecode.NewVM(e.bc)
	}
	// Seed != 0 selects the seeded placement policy: the balanced
	// round-robin assignment, deterministically shuffled per array. Same
	// seed, same placement; the default (0) keeps plain round-robin,
	// matching the simulator's MP5 default.
	var placeRng *rand.Rand
	if cfg.Seed != 0 {
		placeRng = rand.New(rand.NewSource(cfg.Seed))
	}
	e.shard = make([]regShard, len(prog.Regs))
	for r := range prog.Regs {
		info := &prog.Regs[r]
		sh := &e.shard[r]
		sh.sharded = info.Sharded
		sh.size = info.Size
		if sh.sharded {
			sh.owner = make([]int, info.Size)
			sh.count = make([]int64, info.Size)
			for i := range sh.owner {
				sh.owner[i] = i % e.k // round-robin, like sharding.PolicyRoundRobin
			}
			if placeRng != nil {
				placeRng.Shuffle(len(sh.owner), func(i, j int) {
					sh.owner[i], sh.owner[j] = sh.owner[j], sh.owner[i]
				})
			}
			for i := 0; i < info.Size; i++ {
				e.slots[slotKey{r, i}] = &slotState{}
			}
		} else {
			home := 0
			if info.Stage >= 0 {
				home = info.Stage % e.k
			}
			sh.owner = []int{home}
			sh.count = make([]int64, 1)
			e.slots[slotKey{r, -1}] = &slotState{}
		}
	}
	for i := 0; i < e.k; i++ {
		e.workers = append(e.workers, newWorker(e, i))
	}
	return e
}

// Run drives the whole trace through the topology and blocks until every
// packet egressed (or the watchdog aborted a stall). The admitter runs on
// the calling goroutine: execute the resolution stages, resolve visits,
// issue tickets in arrival order, dispatch, and periodically remap. Run is
// the batch shorthand for Start + Submit-per-arrival + Drain.
func (e *Engine) Run(arrivals []core.Arrival) *Result {
	if e.cfg.RecordOutputs {
		// Sized by the trace so workers can record outputs without a lock;
		// Start sees outs non-nil and skips the streaming map.
		e.outs = make([][]int64, len(arrivals))
	}
	if len(arrivals) == 0 {
		return e.result(0, 0)
	}
	e.Start()
	for i := range arrivals {
		if !e.Submit(&arrivals[i]) {
			break
		}
	}
	return e.Drain()
}

// Start launches the worker topology and the liveness watchdog, switching
// the engine into open-ended ingestion mode: the caller becomes the serial
// admitter and feeds packets with Submit until Drain. Start must be called
// exactly once, and Submit only from one goroutine at a time (admission
// order is the correctness contract — C1 is defined by it).
func (e *Engine) Start() {
	if e.started {
		panic("dataplane: Engine.Start called twice (engines are single-use)")
	}
	e.started = true
	e.startT = time.Now()
	if e.cfg.RecordOutputs && e.outs == nil {
		e.outsM = make(map[int64][]int64)
	}
	e.wg.Add(e.k)
	for _, w := range e.workers {
		go w.run()
	}
	e.wdStop = make(chan struct{})
	e.wdWg.Add(1)
	go e.watchdog(e.wdStop, &e.wdWg)
}

// Submit admits one packet: block until the admission window has room (the
// live admission-control point), resolve and ticket the packet, and
// dispatch it to its first worker. Returns false when the engine aborted
// (watchdog stall) — the stream is dead and the caller should Drain.
// Admitter-serial: never call Submit concurrently.
func (e *Engine) Submit(a *core.Arrival) bool { return e.SubmitTraced(a, nil) }

// SubmitTraced is Submit for a sampled packet: sp (started by the caller
// at decode — see Tracer.Sample) rides the packet and accrues
// window-wait, admit, crossbar, exec, ticket-wait, and egress segments
// until the tracer collects it at egress. A nil sp is a plain Submit.
func (e *Engine) SubmitTraced(a *core.Arrival, sp *Span) bool {
	select {
	case e.window <- struct{}{}:
	case <-e.abort:
		return false
	}
	if sp != nil {
		sp.Advance(StageWindowWait, -1)
		sp.ID = e.submitted.Load()
	}
	p := e.admit(e.submitted.Load(), a)
	e.submitted.Add(1)
	if sp != nil {
		sp.Advance(StageAdmit, -1)
		p.span = sp
	}
	dest := 0
	if len(p.visits) > 0 {
		dest = p.visits[0].pipe
	} else {
		dest = int(e.spray % int64(e.k)) // D1: spray stateless packets
		e.spray++
	}
	select {
	case e.workers[dest].mailbox <- p:
	case <-e.abort:
		return false
	}
	if n := e.submitted.Load(); e.cfg.RemapInterval > 0 && n%int64(e.cfg.RemapInterval) == 0 {
		e.remap()
	}
	return true
}

// NextID returns the packet id the next Submit will assign (ids are dense,
// starting at 0). Admitter-serial, like Submit: callers that need to index
// per-packet bookkeeping before the packet can possibly egress read it
// immediately before the Submit it predicts.
func (e *Engine) NextID() int64 { return e.submitted.Load() }

// Drain ends admission and blocks until every in-flight packet egressed
// (or the watchdog aborted), then joins the workers and returns the run
// summary. After Drain the engine's post-run accessors are valid.
func (e *Engine) Drain() *Result {
	if !e.started {
		return e.result(0, 0)
	}
	submitted := e.submitted.Load()
	e.total.Store(submitted)
	if e.completed.Load() == submitted {
		e.closeDone()
	}
	select {
	case <-e.done:
	case <-e.abort:
	}
	close(e.wdStop)
	e.wdWg.Wait()
	close(e.quit)
	e.wg.Wait()
	return e.result(submitted, time.Since(e.startT))
}

// admit prepares one packet on the admitter: copy the header, execute the
// stateless resolution stages, resolve every state access to a (stage,
// worker, slots) visit list, and issue one ticket per visit slot — the D4
// phantom, enqueued in arrival order because the admitter is serial.
func (e *Engine) admit(id int64, a *core.Arrival) *packet {
	env := ir.NewEnv(e.prog)
	copy(env.Fields, a.Fields)
	p := &packet{id: id, env: env, start: time.Now()}
	for si := 0; si < e.prog.ResolutionStages; si++ {
		if e.bc != nil {
			if err := e.admVM.ExecStage(&e.bc.Stages[si], env, e.admRegs); err != nil {
				panic("dataplane: " + err.Error()) // compiled code is never corrupt
			}
			continue
		}
		ir.ExecStage(&e.prog.Stages[si], env, e.admRegs)
	}
	p.nextStage = e.prog.ResolutionStages
	e.resolve(p)
	for vi := range p.visits {
		for _, ref := range p.visits[vi].slots {
			ref.st.enqueue(id)
		}
	}
	e.met.Admitted.Inc()
	return p
}

// resolve performs preemptive address resolution (§3.3): evaluate resolvable
// predicates, clamp indices, look up slot owners, and build the visit list.
// Same-stage accesses form one visit and must co-locate (the code generator
// guarantees multi-array stages hold only unsharded, same-home arrays).
// Duplicate same-stage references to one slot collapse to a single ticket.
func (e *Engine) resolve(p *packet) {
	for stage, bucket := range e.accByStage {
		var v *visit
		for _, ai := range bucket {
			a := &e.prog.Accesses[ai]
			if a.PredResolvable && !a.Pred.IsNone() {
				truth := p.env.Load(a.Pred) != 0
				if truth == a.PredNeg {
					continue // resolved: this access will not happen
				}
			}
			sh := &e.shard[a.Reg]
			key := slotKey{a.Reg, -1}
			pos := 0
			if sh.sharded {
				key.idx = banzai.ClampIndex(int(p.env.Load(a.Idx)), sh.size)
				pos = key.idx
			}
			sh.count[pos]++
			dest := sh.owner[pos]
			if v == nil {
				p.visits = append(p.visits, visit{stage: stage, pipe: dest})
				v = &p.visits[len(p.visits)-1]
			} else if v.pipe != dest {
				panic("dataplane: co-located accesses resolved to different pipelines")
			}
			dup := false
			for _, ref := range v.slots {
				if ref.key == key {
					dup = true
					break
				}
			}
			if !dup {
				v.slots = append(v.slots, slotRef{key: key, st: e.slots[key]})
			}
		}
	}
}

// remap runs one Figure-6 iteration per sharded array (admitter-only): find
// the heaviest (H) and lightest (L) workers by windowed access count, pick
// the hottest index on H counting less than half the gap, and migrate it to
// L — but only if its ticket queue is empty, checked and copied under the
// slot mutex so no in-flight or future access can observe a torn value.
// Window counters reset afterwards.
func (e *Engine) remap() {
	for reg := range e.shard {
		sh := &e.shard[reg]
		if !sh.sharded {
			continue
		}
		agg := make([]int64, e.k)
		for i, o := range sh.owner {
			agg[o] += sh.count[i]
		}
		h, l := 0, 0
		for w := 1; w < e.k; w++ {
			if agg[w] > agg[h] {
				h = w
			}
			if agg[w] < agg[l] {
				l = w
			}
		}
		if h != l && agg[h] != agg[l] {
			c := (agg[h] - agg[l]) / 2
			best := -1
			for i, o := range sh.owner {
				if o != h || sh.count[i] >= c || sh.count[i] == 0 {
					continue
				}
				if best < 0 || sh.count[i] > sh.count[best] {
					best = i
				}
			}
			if best >= 0 {
				st := e.slots[slotKey{reg, best}]
				st.mu.Lock()
				if st.head >= len(st.queue) {
					// No pending tickets: nobody is touching (or will
					// touch) the old copy, and the next ticket will be
					// issued after owner[] is updated below — the slot
					// mutex carries the value to the new owner. placeMu
					// publishes the new owner to ShardMap snapshots.
					e.workers[l].regs.Array(reg)[best] = e.workers[h].regs.Array(reg)[best]
					e.placeMu.Lock()
					sh.owner[best] = l
					e.placeMu.Unlock()
					e.shardMoves++
					e.met.ShardMoves.Inc()
				}
				st.mu.Unlock()
			}
		}
		for i := range sh.count {
			sh.count[i] = 0
		}
	}
}

// watchdog aborts the run when no packet egresses for StallTimeout while
// packets are in flight, so a liveness bug fails tests loudly (Stalled)
// instead of hanging them. An idle stream (nothing in flight) is healthy,
// not stalled — essential in streaming mode, where traffic gaps of any
// length are normal.
func (e *Engine) watchdog(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	period := e.cfg.StallTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	last := e.completed.Load()
	lastChange := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-e.done:
			return
		case <-tick.C:
			cur := e.completed.Load()
			if cur != last || cur == e.submitted.Load() {
				last, lastChange = cur, time.Now()
				continue
			}
			if time.Since(lastChange) >= e.cfg.StallTimeout {
				e.stalled.Store(true)
				e.met.Stalls.Inc()
				e.abortOnce.Do(func() { close(e.abort) })
				return
			}
		}
	}
}

func (e *Engine) closeDone() {
	e.doneOnce.Do(func() { close(e.done) })
}

// result assembles the run summary after every worker joined.
func (e *Engine) result(injected int64, elapsed time.Duration) *Result {
	lat := stats.NewHistogram(latLo, latHi, latBuckets)
	for _, w := range e.workers {
		lat.Merge(w.lat)
	}
	res := &Result{
		Workers:    e.k,
		Injected:   injected,
		Completed:  e.completed.Load(),
		Steers:     e.steers.Load(),
		Parks:      e.parks.Load(),
		Wasted:     e.wasted.Load(),
		ShardMoves: e.shardMoves,
		Stalled:    e.stalled.Load(),
		Elapsed:    elapsed,
		Latency:    lat,
	}
	if e.cfg.RecordEgressOrder {
		res.Reordered = core.CountOvertakers(e.egressOrder)
	}
	if elapsed > 0 {
		res.PktsPerSec = float64(res.Completed) / elapsed.Seconds()
	}
	return res
}

// Outputs returns each completed packet's final header fields, keyed by
// packet id — the shape equiv.CheckState consumes. Only valid after
// Run/Drain, and only when Config.RecordOutputs was set.
func (e *Engine) Outputs() map[int64][]int64 {
	if e.outs == nil {
		if e.outsM == nil {
			return nil
		}
		out := make(map[int64][]int64, len(e.outsM))
		for id, f := range e.outsM {
			out[id] = f
		}
		return out
	}
	out := make(map[int64][]int64, len(e.outs))
	for id, f := range e.outs {
		if f != nil {
			out[int64(id)] = f
		}
	}
	return out
}

// FinalRegs returns the final register state, assembling each index from
// the worker owning its live copy. Only valid after Run.
func (e *Engine) FinalRegs() [][]int64 {
	out := make([][]int64, len(e.shard))
	for r := range e.shard {
		sh := &e.shard[r]
		a := make([]int64, sh.size)
		if sh.sharded {
			for i := range a {
				a[i] = e.workers[sh.owner[i]].regs.Array(r)[i]
			}
		} else {
			copy(a, e.workers[sh.owner[0]].regs.Array(r))
		}
		out[r] = a
	}
	return out
}

// AccessOrders returns the per-slot effective access order, keyed like the
// simulator's EvAccess stream and banzai's indexed log ("r<reg>[<idx>]").
// Only valid after Run, with Config.RecordAccessOrder set.
func (e *Engine) AccessOrders() map[string][]int64 {
	out := make(map[string][]int64)
	for key, st := range e.slots {
		for ci, seq := range st.log {
			out[banzai.AccessKey(key.reg, ci)] = seq
		}
	}
	return out
}

// EgressOrder returns the wall-clock egress sequence of packet ids (only
// recorded with Config.RecordEgressOrder).
func (e *Engine) EgressOrder() []int64 { return e.egressOrder }

// Stalled reports whether the liveness watchdog aborted the engine. Safe
// to call from any goroutine at any time — the health-probe hook.
func (e *Engine) Stalled() bool { return e.stalled.Load() }

// Workers returns the resolved worker count k.
func (e *Engine) Workers() int { return e.k }

// Submitted returns the number of packets admitted so far (any goroutine).
func (e *Engine) Submitted() int64 { return e.submitted.Load() }

// Completed returns the number of packets egressed so far (any goroutine).
func (e *Engine) Completed() int64 { return e.completed.Load() }

// InFlight returns the number of admitted-but-not-yet-egressed packets,
// bounded by Config.Window (any goroutine).
func (e *Engine) InFlight() int64 { return e.submitted.Load() - e.completed.Load() }

// WindowInUse returns the number of admission-window tokens currently held
// (in-flight packets), safe from any goroutine — the live admission-control
// gauge.
func (e *Engine) WindowInUse() int { return len(e.window) }

// WindowCap returns the admission-window size.
func (e *Engine) WindowCap() int { return cap(e.window) }

// WorkerStat is one worker's live occupancy/throughput view, in the shape
// the admin plane serves (/stats) and mp5top renders. Mailbox is the
// channel depth (queued crossbar handoffs), Parked the packets waiting on
// head tickets, Processed the process-loop invocations (mailbox receives +
// promotions), Egressed the packets completed on this worker, and BusyNs
// cumulative wall time spent inside the process loop — only accounted
// while a Tracer is attached, 0 otherwise.
type WorkerStat struct {
	ID         int   `json:"id"`
	Mailbox    int   `json:"mailbox"`
	MailboxCap int   `json:"mailbox_cap"`
	Parked     int64 `json:"parked"`
	Processed  int64 `json:"processed"`
	Egressed   int64 `json:"egressed"`
	BusyNs     int64 `json:"busy_ns"`
}

// WorkerStats snapshots every worker's live occupancy counters. Safe from
// any goroutine while the engine runs (all fields are atomics or channel
// lengths).
func (e *Engine) WorkerStats() []WorkerStat {
	out := make([]WorkerStat, e.k)
	for i, w := range e.workers {
		out[i] = WorkerStat{
			ID:         i,
			Mailbox:    len(w.mailbox),
			MailboxCap: cap(w.mailbox),
			Parked:     w.parkedN.Load(),
			Processed:  w.processedN.Load(),
			Egressed:   w.egressedN.Load(),
			BusyNs:     w.busyNs.Load(),
		}
	}
	return out
}

// TicketDepths sums the pending (issued-but-unretired) tickets across
// every slot queue and reports the deepest single queue — the live D4
// backlog. It takes each slot's mutex briefly; meant for the admin plane's
// background sampler, not the per-packet path.
func (e *Engine) TicketDepths() (pending, maxDepth int64) {
	for _, st := range e.slots {
		st.mu.Lock()
		d := int64(len(st.queue) - st.head)
		st.mu.Unlock()
		pending += d
		if d > maxDepth {
			maxDepth = d
		}
	}
	return pending, maxDepth
}

// ShardEntry is one register array's live D2 placement, in the shape the
// admin plane serves as JSON.
type ShardEntry struct {
	Reg     int    `json:"reg"`
	Name    string `json:"name"`
	Sharded bool   `json:"sharded"`
	// Owners[i] is the worker holding the live copy of index i; an
	// unsharded array has a single element, the whole-array home.
	Owners []int `json:"owners"`
}

// ShardMap snapshots the live index→worker ownership of every register
// array. Safe from any goroutine while the engine runs: remap publishes
// owner changes under the same lock the snapshot takes.
func (e *Engine) ShardMap() []ShardEntry {
	out := make([]ShardEntry, len(e.shard))
	e.placeMu.Lock()
	defer e.placeMu.Unlock()
	for r := range e.shard {
		out[r] = ShardEntry{
			Reg:     r,
			Name:    e.prog.Regs[r].Name,
			Sharded: e.shard[r].sharded,
			Owners:  append([]int(nil), e.shard[r].owner...),
		}
	}
	return out
}
