package dataplane

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"mp5/internal/banzai"
	"mp5/internal/ir"
	"mp5/internal/ir/bytecode"
)

// Quota is a tenant-level admission token counter layered in front of the
// engine's (shared) window semaphore: the admitter takes quota tokens
// non-blocking *before* it blocks on the window, so a tenant that exhausted
// its quota sheds instead of stalling the serial admit loop — the
// noisy-neighbor isolation point. A Quota outlives any one program version:
// hot swap moves a tenant to a new Handle while in-flight packets of the old
// version still hold (and will return) the same quota's tokens.
//
// tryAcquire is admitter-serial; release runs on egressing workers — the CAS
// loop keeps the pair race-free without a lock on the egress path.
type Quota struct {
	cap  int64
	used atomic.Int64
}

// NewQuota builds a quota of n admission tokens. n <= 0 returns nil, the
// unlimited quota (every quota check is a nil test on the hot path).
func NewQuota(n int) *Quota {
	if n <= 0 {
		return nil
	}
	return &Quota{cap: int64(n)}
}

// tryAcquire takes up to want tokens without blocking and returns how many
// it got (0 = quota exhausted: the caller sheds).
func (q *Quota) tryAcquire(want int64) int64 {
	for {
		u := q.used.Load()
		free := q.cap - u
		if free <= 0 {
			return 0
		}
		n := want
		if n > free {
			n = free
		}
		if q.used.CompareAndSwap(u, u+n) {
			return n
		}
	}
}

// release returns n tokens (worker-side at egress, admitter-side at
// abort-retirement).
func (q *Quota) release(n int64) { q.used.Add(-n) }

// Cap returns the quota size.
func (q *Quota) Cap() int64 { return q.cap }

// InUse returns the tokens currently held (any goroutine).
func (q *Quota) InUse() int64 { return q.used.Load() }

// Handle is one loaded program's isolated runtime namespace on a shared
// engine: its compiled form, its ticket queues and shard placement, one
// private register file per worker, and its own packet/env frame pool (envs
// are program-shaped — ir.Env.ResetFor preserves seed-once frame pools — so
// packets are never recycled across programs). Every mutable structure the
// single-program engine used to hold globally lives here, keyed by
// (handle, register) instead of (register) — the multi-tenant refactor.
//
// A Handle is immutable after AddProgram publishes it except for the
// structures its own packets flow through, each with its existing ownership
// rule: slots (admitter enqueues / owning worker pops, under the slot
// mutex), shard counters and owner arrays (admitter-only, snapshots under
// placeMu), wregs (owning worker, plus remap's migrate under the slot
// mutex), the free list (its own mutex), and the atomics.
type Handle struct {
	e       *Engine
	name    string
	version int
	prog    *ir.Program

	accByStage [][]int
	// admRegs backs resolution-stage execution on the admitter (stateless
	// by construction, so only read-only match tables are consulted).
	admRegs *banzai.RegFile
	// bc/admVM are this program's compiled form and the admitter's operand
	// stack for it; wvms are the per-worker VMs (VMs are not
	// goroutine-safe). All nil under Config.Interpret.
	bc    *bytecode.Program
	admVM *bytecode.VM
	wvms  []*bytecode.VM
	// wregs[i] is worker i's private register file for this program — the
	// per-tenant register namespace. Only the indices the shard map assigns
	// to worker i hold the live copy.
	wregs []*banzai.RegFile

	slots map[slotKey]*slotState
	shard []regShard

	quota *Quota

	// free is this program's packet free list (same bounded mutex-stack
	// discipline as the old engine-global list; see Engine docs).
	freeMu sync.Mutex
	free   []*packet

	// record mirrors RecordOutputs||RecordAccessOrder: when set, idSeq
	// accumulates the global packet ids admitted through this handle, in
	// admission order. Per-handle verification (OutputsFor/AccessOrdersFor)
	// uses it to remap global ids to the dense per-handle arrival indices
	// 0..n-1 the single-pipeline reference keys by. Admitter-written, read
	// after Drain.
	record bool
	idSeq  []int64

	submitted atomic.Int64
	completed atomic.Int64
	shed      atomic.Int64
}

// newHandle builds (but does not publish) a handle for prog.
func newHandle(e *Engine, name string, version int, prog *ir.Program, quota *Quota) *Handle {
	if len(prog.Accesses) > 0 && prog.ResolutionStages == 0 {
		panic("dataplane: program has state accesses but no resolution stages (compile for TargetMP5)")
	}
	h := &Handle{
		e:          e,
		name:       name,
		version:    version,
		prog:       prog,
		accByStage: prog.AccessesByStage(),
		admRegs:    banzai.NewRegFile(prog),
		quota:      quota,
		record:     e.cfg.RecordOutputs || e.cfg.RecordAccessOrder,
	}
	h.free = make([]*packet, 0, e.cfg.Window)
	if !e.cfg.Interpret {
		h.bc = bytecode.MustCompile(prog)
		h.admVM = bytecode.NewVM(h.bc)
		h.wvms = make([]*bytecode.VM, e.k)
		for i := range h.wvms {
			h.wvms[i] = bytecode.NewVM(h.bc)
		}
	}
	h.wregs = make([]*banzai.RegFile, e.k)
	for i := range h.wregs {
		h.wregs[i] = banzai.NewRegFile(prog)
	}
	// Seed != 0 selects the seeded placement policy: the balanced
	// round-robin assignment, deterministically shuffled per array. The
	// version offset keeps every handle's placement deterministic while
	// still distinct across program versions; the first handle (version 0)
	// reproduces the single-program engine's placement exactly.
	var placeRng *rand.Rand
	if e.cfg.Seed != 0 {
		placeRng = rand.New(rand.NewSource(e.cfg.Seed + int64(version)))
	}
	h.slots = make(map[slotKey]*slotState)
	h.shard = make([]regShard, len(prog.Regs))
	for r := range prog.Regs {
		info := &prog.Regs[r]
		sh := &h.shard[r]
		sh.sharded = info.Sharded
		sh.size = info.Size
		if sh.sharded {
			sh.owner = make([]int, info.Size)
			sh.count = make([]int64, info.Size)
			for i := range sh.owner {
				sh.owner[i] = i % e.k // round-robin, like sharding.PolicyRoundRobin
			}
			if placeRng != nil {
				placeRng.Shuffle(len(sh.owner), func(i, j int) {
					sh.owner[i], sh.owner[j] = sh.owner[j], sh.owner[i]
				})
			}
			for i := 0; i < info.Size; i++ {
				h.slots[slotKey{r, i}] = &slotState{}
			}
		} else {
			home := 0
			if info.Stage >= 0 {
				home = info.Stage % e.k
			}
			sh.owner = []int{home}
			sh.count = make([]int64, 1)
			h.slots[slotKey{r, -1}] = &slotState{}
		}
	}
	return h
}

// Name returns the name the handle was registered under (the tenant name).
func (h *Handle) Name() string { return h.name }

// Version returns the handle's engine-wide registration sequence number.
func (h *Handle) Version() int { return h.version }

// Program returns the compiled program this handle runs.
func (h *Handle) Program() *ir.Program { return h.prog }

// Quota returns the handle's admission quota (nil = unlimited).
func (h *Handle) Quota() *Quota { return h.quota }

// HandleStats is one handle's live counters, in the shape the admin plane
// serves per tenant.
type HandleStats struct {
	Name      string `json:"name"`
	Version   int    `json:"version"`
	Submitted int64  `json:"submitted"`
	Completed int64  `json:"completed"`
	Shed      int64  `json:"quota_shed"`
	QuotaCap  int64  `json:"quota_cap"`   // 0 = unlimited
	QuotaUsed int64  `json:"quota_inuse"` // tokens held by in-flight packets
}

// Stats snapshots the handle's live counters (any goroutine).
func (h *Handle) Stats() HandleStats {
	st := HandleStats{
		Name:      h.name,
		Version:   h.version,
		Submitted: h.submitted.Load(),
		Completed: h.completed.Load(),
		Shed:      h.shed.Load(),
	}
	if h.quota != nil {
		st.QuotaCap = h.quota.Cap()
		st.QuotaUsed = h.quota.InUse()
	}
	return st
}

// getPacket pops a recycled packet off this handle's free list, or builds a
// fresh one shaped for this handle's program. Admitter-only.
func (h *Handle) getPacket() *packet {
	h.freeMu.Lock()
	if n := len(h.free); n > 0 {
		p := h.free[n-1]
		h.free[n-1] = nil
		h.free = h.free[:n-1]
		h.freeMu.Unlock()
		p.h = h // poison-on-free may have clobbered it
		return p
	}
	h.freeMu.Unlock()
	return &packet{h: h, env: ir.NewEnv(h.prog)}
}

// putPacket recycles a packet after its last observer is done with it
// (worker-side at egress, admitter-side at abort-retirement). poisonPacket
// is a no-op in release builds; under the mp5debug tag it clobbers the
// packet so any use-after-recycle fails loudly.
func (h *Handle) putPacket(p *packet) {
	poisonPacket(p)
	h.freeMu.Lock()
	h.free = append(h.free, p)
	h.freeMu.Unlock()
}
