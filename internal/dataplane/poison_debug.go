//go:build mp5debug

package dataplane

// poisonPacket clobbers a packet as it enters the free list so any code
// still holding a reference fails loudly instead of reading stale-but-
// plausible data: the id becomes -1 (which trips the pop "without holding
// the head ticket" panic and can never match a ticket), the visit plan is
// emptied, and fields/temps are filled with a sentinel that corrupts any
// output it leaks into — the differential oracles then flag the run.
//
// The frame headroom beyond Fields/Temps is deliberately NOT poisoned: it
// holds the bytecode VM's seed-once constant pools, which legitimately
// survive recycling (see ir.Env.ResetFor).
func poisonPacket(p *packet) {
	const sentinel = int64(-0x6b6b6b6b6b6b6b6b) // 0x9494...95 — "freed" junk
	p.id = -1
	p.vi = -1
	p.nextStage = -1
	p.span = nil
	for i := range p.env.Fields {
		p.env.Fields[i] = sentinel
	}
	for i := range p.env.Temps {
		p.env.Temps[i] = sentinel
	}
	p.visits = p.visits[:0]
}

// poisonEnabled reports whether this build poisons recycled packets.
const poisonEnabled = true
