//go:build !mp5debug

package dataplane

// poisonPacket is a no-op in release builds; build with -tags mp5debug to
// clobber recycled packets so any use-after-recycle fails loudly (see
// poison_debug.go).
func poisonPacket(*packet) {}

// poisonEnabled reports whether this build poisons recycled packets.
const poisonEnabled = false
