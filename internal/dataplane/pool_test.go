package dataplane

import (
	"reflect"
	"runtime/debug"
	"testing"
	"time"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/equiv"
	"mp5/internal/ir"
	"mp5/internal/workload"
)

// checkEquivalence holds an already-drained engine to the state and C1
// oracles (the post-run half of runChecked, for tests that drive admission
// themselves).
func checkEquivalence(t *testing.T, prog *ir.Program, e *Engine, arrivals []core.Arrival, workers int) {
	t.Helper()
	if rep := equiv.CheckState(prog, e.FinalRegs(), e.Outputs(), arrivals); !rep.Equivalent {
		t.Fatalf("workers=%d: not equivalent to reference:\n%s", workers, rep)
	}
	want := equiv.ReferenceOrder(prog, arrivals)
	if got := e.AccessOrders(); !reflect.DeepEqual(want, got) {
		t.Fatalf("workers=%d: access orders diverged from reference", workers)
	}
}

// TestSubmitSteadyStateAllocs is the zero-alloc acceptance criterion: once
// the free list and every scratch buffer warmed up, a Submit must perform
// zero heap allocations — on the admitter *and* on the workers, since
// AllocsPerRun counts process-wide mallocs.
func TestSubmitSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is meaningless under -race (the race runtime allocates)")
	}
	prog, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 2048, Pipelines: 2, Seed: 11}, 4, 64)
	e := New(prog, Config{Workers: 2, Window: 64})
	e.Start()
	// Warmup: populate the free list, grow every visit/slot/queue buffer to
	// its steady capacity, and cross a few remap boundaries.
	for i := range arrivals {
		if !e.Submit(&arrivals[i]) {
			t.Fatal("engine aborted during warmup")
		}
	}
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		if !e.Submit(&arrivals[i%len(arrivals)]) {
			t.Fatal("engine aborted mid-measurement")
		}
		i++
	})
	res := e.Drain()
	if res.Stalled {
		t.Fatalf("engine stalled: %d of %d completed", res.Completed, res.Injected)
	}
	if avg != 0 {
		t.Fatalf("steady-state Submit allocates %v per packet, want 0", avg)
	}
}

// TestSubmitBatchSteadyStateAllocs holds the coalesced path to (almost) the
// same bar: a whole SubmitBatch chunk must not allocate beyond the slack of
// its sync.Pool-backed batch carriers. GC is disabled during the
// measurement so a collection cannot drain the batch pool mid-run.
func TestSubmitBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is meaningless under -race (the race runtime allocates)")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	prog, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 2048, Pipelines: 2, Seed: 12}, 4, 64)
	e := New(prog, Config{Workers: 2, Window: 64})
	e.Start()
	const chunk = 128
	for off := 0; off+chunk <= len(arrivals); off += chunk {
		if e.SubmitBatch(arrivals[off:off+chunk], nil) != chunk {
			t.Fatal("engine aborted during warmup")
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if e.SubmitBatch(arrivals[:chunk], nil) != chunk {
			t.Fatal("engine aborted mid-measurement")
		}
	})
	res := e.Drain()
	if res.Stalled {
		t.Fatalf("engine stalled: %d of %d completed", res.Completed, res.Injected)
	}
	// One batch call covers `chunk` packets; allow a couple of stray
	// allocations per call (slot-queue growth on unlucky skew) without
	// letting a per-packet regression (≥ chunk allocs/call) through.
	if avg > 2 {
		t.Fatalf("steady-state SubmitBatch allocates %v per %d-packet batch, want ~0", avg, chunk)
	}
}

// TestRecyclingEquivalence forces heavy packet recycling — a window far
// smaller than the trace, so every packet struct and env is reused dozens
// of times — and holds the run to all three oracles. Under -tags mp5debug
// this doubles as the use-after-recycle detector: recycled packets are
// poisoned, so any stale reference corrupts an oracle loudly.
func TestRecyclingEquivalence(t *testing.T) {
	prog, err := apps.Synthetic(3, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 4000, Pipelines: 4, Seed: 13}, 3, 64)
	for _, workers := range workerCounts {
		runChecked(t, prog, arrivals, Config{Workers: workers, Window: 32})
	}
}

// TestSubmitBatchChunkedEquivalence drives the same trace through
// SubmitBatch at several chunk sizes (including chunk=1 and a chunk larger
// than the window) and checks bit-identical results against the reference —
// chunking must be invisible to all three oracles.
func TestSubmitBatchChunkedEquivalence(t *testing.T) {
	prog, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 1500, Pipelines: 4, Seed: 14}, 4, 64)
	for _, chunk := range []int{1, 3, 17, 256, 1024} {
		e := New(prog, Config{Workers: 4, Window: 128, RecordOutputs: true, RecordAccessOrder: true, RecordEgressOrder: true})
		e.Start()
		for off := 0; off < len(arrivals); off += chunk {
			end := off + chunk
			if end > len(arrivals) {
				end = len(arrivals)
			}
			if e.SubmitBatch(arrivals[off:end], nil) != end-off {
				t.Fatalf("chunk=%d: engine aborted at offset %d", chunk, off)
			}
		}
		res := e.Drain()
		if res.Stalled || res.Completed != int64(len(arrivals)) {
			t.Fatalf("chunk=%d: %d of %d completed (stalled=%v)", chunk, res.Completed, len(arrivals), res.Stalled)
		}
		checkEquivalence(t, prog, e, arrivals, 4)
	}
}

// TestSubmitAbortRetiresTickets is the regression test for the abort-path
// ticket leak: Submit used to enqueue tickets and then leave them stranded
// forever if the engine aborted before the crossbar dispatch. Now the
// abort path must cancel the tickets, return the window token, and recycle
// the packet.
func TestSubmitAbortRetiresTickets(t *testing.T) {
	prog, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 4, Pipelines: 2, Seed: 15}, 2, 16)
	e := New(prog, Config{Workers: 2, Window: 8})
	e.Start()
	// Kill the engine at the worst possible moment: after the packet's
	// tickets are enqueued, before it dispatches.
	e.testAfterTicket = func() {
		e.abortOnce.Do(func() { close(e.abort) })
	}
	if e.Submit(&arrivals[0]) {
		t.Fatal("Submit succeeded on an engine that aborted mid-admission")
	}
	if pend, _ := e.TicketDepths(); pend != 0 {
		t.Fatalf("aborted Submit leaked %d tickets", pend)
	}
	if got := e.WindowInUse(); got != 0 {
		t.Fatalf("aborted Submit leaked %d window tokens", got)
	}
	e.def.freeMu.Lock()
	freed := len(e.def.free)
	e.def.freeMu.Unlock()
	if freed != 1 {
		t.Fatalf("aborted Submit did not recycle the packet (free list has %d)", freed)
	}
	// A dead engine must refuse further admissions without consuming ids.
	before := e.Submitted()
	if e.Submit(&arrivals[1]) {
		t.Fatal("Submit succeeded on a dead engine")
	}
	if e.Submitted() != before {
		t.Fatal("dead-engine Submit consumed a packet id")
	}
	res := e.Drain()
	if res.Completed != 0 {
		t.Fatalf("retired packets egressed: completed=%d", res.Completed)
	}
}

// TestSubmitBatchAbortRetiresTickets is the batched twin: a chunk whose
// tickets are already flushed when the engine dies must be retired wholesale
// — no pending tickets, no held window tokens, every packet recycled.
func TestSubmitBatchAbortRetiresTickets(t *testing.T) {
	prog, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: n, Pipelines: 2, Seed: 16}, 2, 16)
	e := New(prog, Config{Workers: 2, Window: 16})
	e.Start()
	e.testAfterTicket = func() {
		e.abortOnce.Do(func() { close(e.abort) })
	}
	admitted := e.SubmitBatch(arrivals, nil)
	if admitted != n {
		t.Fatalf("SubmitBatch admitted %d of %d (ids must stay dense even on abort)", admitted, n)
	}
	if pend, _ := e.TicketDepths(); pend != 0 {
		t.Fatalf("aborted SubmitBatch leaked %d tickets", pend)
	}
	if got := e.WindowInUse(); got != 0 {
		t.Fatalf("aborted SubmitBatch leaked %d window tokens", got)
	}
	e.def.freeMu.Lock()
	freed := len(e.def.free)
	e.def.freeMu.Unlock()
	if freed != n {
		t.Fatalf("aborted SubmitBatch recycled %d of %d packets", freed, n)
	}
	res := e.Drain()
	if res.Completed != 0 {
		t.Fatalf("retired packets egressed: completed=%d", res.Completed)
	}
}

// TestPoisonOnFree checks the mp5debug build really clobbers recycled
// packets (and that release builds really don't pay for it).
func TestPoisonOnFree(t *testing.T) {
	if !poisonEnabled {
		t.Skip("poison-on-free is compiled out (build with -tags mp5debug)")
	}
	prog, err := apps.Synthetic(1, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, Config{Workers: 1})
	p := e.def.getPacket()
	p.id = 42
	p.env.Fields[0] = 7
	e.def.putPacket(p)
	if p.id != -1 {
		t.Fatalf("freed packet id = %d, want poisoned -1", p.id)
	}
	if p.env.Fields[0] == 7 {
		t.Fatal("freed packet fields survived poisoning")
	}
}

// TestRecycleHammer cycles Submit/Drain engines back to back under load —
// with -race this is the pooled-object lifecycle hammer: any packet or env
// observed after recycling shows up as a race or (under mp5debug) as an
// oracle mismatch in the equivalence suites.
func TestRecycleHammer(t *testing.T) {
	prog, err := apps.Synthetic(2, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 600, Pipelines: 2, Seed: 17}, 2, 32)
	for round := 0; round < 8; round++ {
		e := New(prog, Config{Workers: 2, Window: 16, StallTimeout: 10 * time.Second})
		e.Start()
		for i := range arrivals {
			if !e.Submit(&arrivals[i]) {
				t.Fatalf("round %d: engine aborted", round)
			}
		}
		res := e.Drain()
		if res.Stalled || res.Completed != int64(len(arrivals)) {
			t.Fatalf("round %d: %d of %d completed (stalled=%v)", round, res.Completed, len(arrivals), res.Stalled)
		}
	}
}
