//go:build race

package dataplane

// raceEnabled lets allocation-counting tests skip under -race: the race
// runtime instruments allocation itself, so AllocsPerRun is meaningless.
const raceEnabled = true
