package dataplane

import "sync"

// slotKey names one unit of state placement: a single index of a sharded
// register array, or a whole unsharded array (idx == -1), mirroring the
// array-level placement the sharding map uses for unsharded state.
type slotKey struct {
	reg int
	idx int
}

// slotState is the runtime ticket queue of one slot — the execution-engine
// form of the paper's phantom placeholders (D4). The serial admitter appends
// one ticket (the packet id) per resolved access in admission order; the
// owning worker retires tickets head-first when it performs the access.
//
// The mutex orders three parties: the admitter enqueueing tickets and
// checking emptiness during remap, and the owning worker testing/advancing
// the head. Worker-side park/promote decisions need no extra locking beyond
// this because every head test and every pop of a given slot happens on the
// one goroutine that owns the slot's pipeline (see worker.go).
type slotState struct {
	mu    sync.Mutex
	queue []int64
	head  int
	// log records the effective access order per concrete register index
	// (clamped), lazily allocated when the engine records access order.
	// For sharded slots it has a single key; an unsharded array-level slot
	// accumulates every index of the array here.
	log map[int][]int64
	// pend is the admitter's chunk-local ticket buffer for SubmitBatch:
	// tickets accumulate here lock-free (the admitter is serial and pend is
	// never touched by workers) and flush into queue with one mutex
	// acquisition per slot per chunk (see Engine.SubmitBatch).
	pend []int64
}

// enqueue appends a ticket for packet id (admitter only).
func (s *slotState) enqueue(id int64) {
	s.mu.Lock()
	s.compactLocked()
	s.queue = append(s.queue, id)
	s.mu.Unlock()
}

// enqueueBatch appends a run of tickets under one lock acquisition
// (admitter only; ids are already in admission order).
func (s *slotState) enqueueBatch(ids []int64) {
	s.mu.Lock()
	s.compactLocked()
	s.queue = append(s.queue, ids...)
	s.mu.Unlock()
}

// compactLocked drops the retired prefix once it dominates the backing
// array so a long run cannot grow the queue without bound. Caller holds mu.
func (s *slotState) compactLocked() {
	if s.head > 32 && s.head*2 >= len(s.queue) {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
}

// cancel removes packet id's pending ticket, scanning from the tail (the
// cancelled packet was admitted most recently). Abort-path only: it runs
// after the engine died, when workers are winding down, so removing a head
// ticket deliberately promotes nobody — there is no worker left to run a
// promoted packet, and the run is already failed (Stalled). Returns whether
// a ticket was found.
func (s *slotState) cancel(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.queue) - 1; i >= s.head; i-- {
		if s.queue[i] == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return true
		}
	}
	return false
}

// headIs reports whether packet id holds the slot's head ticket.
func (s *slotState) headIs(id int64) bool {
	s.mu.Lock()
	ok := s.head < len(s.queue) && s.queue[s.head] == id
	s.mu.Unlock()
	return ok
}

// pop retires packet id's head ticket after its access executed, logging the
// concrete indices it touched (when record is set), and returns the id now
// holding the head ticket, or -1 when the queue drained. The caller must own
// the head (it just executed the visit).
func (s *slotState) pop(touched []int, id int64, record bool) int64 {
	s.mu.Lock()
	if s.head >= len(s.queue) || s.queue[s.head] != id {
		s.mu.Unlock()
		panic("dataplane: pop without holding the head ticket")
	}
	if record && len(touched) > 0 {
		if s.log == nil {
			s.log = make(map[int][]int64)
		}
		for _, ci := range touched {
			s.log[ci] = append(s.log[ci], id)
		}
	}
	s.head++
	next := int64(-1)
	if s.head < len(s.queue) {
		next = s.queue[s.head]
	} else {
		// Drained: reset so the backing array is reusable and remap's
		// emptiness test stays O(1).
		s.queue = s.queue[:0]
		s.head = 0
	}
	s.mu.Unlock()
	return next
}

// empty reports whether no tickets are pending — the remap safety gate: an
// empty queue means no resolved-but-unperformed access targets this slot, so
// its value may migrate. Callers that migrate must do so under mu themselves
// (see Engine.remap, which uses lock/check/copy/unlock directly).
func (s *slotState) empty() bool {
	s.mu.Lock()
	ok := s.head >= len(s.queue)
	s.mu.Unlock()
	return ok
}
