package dataplane

import (
	"testing"
	"time"

	"mp5/internal/apps"
	"mp5/internal/workload"
)

// TestWatchdogDetectsStall wedges the first visit execution until the
// watchdog fires and checks the run aborts with Stalled instead of hanging:
// the liveness net every differential test implicitly relies on.
func TestWatchdogDetectsStall(t *testing.T) {
	prog, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 200, Pipelines: 2, Seed: 1}, 2, 16)
	e := New(prog, Config{Workers: 2, StallTimeout: 50 * time.Millisecond})
	// Block every visit until the watchdog aborts the run; no packet can
	// ever egress, which is exactly the no-progress condition it detects.
	e.testBeforeExec = func(*packet) { <-e.abort }
	done := make(chan *Result, 1)
	go func() { done <- e.Run(arrivals) }()
	select {
	case res := <-done:
		if !res.Stalled {
			t.Fatalf("wedged run did not report a stall: %+v", res)
		}
		// The worker wedged in the hook resumes when abort closes and may
		// finish the packet in hand; everything else must be cut short.
		if res.Completed >= res.Injected {
			t.Fatalf("stalled run completed %d of %d packets", res.Completed, res.Injected)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never aborted the wedged run")
	}
}
