package dataplane

import (
	"reflect"
	"testing"
	"time"

	"mp5/internal/apps"
	"mp5/internal/equiv"
	"mp5/internal/workload"
)

// TestStreamingEquivalence drives the engine through the open-ended
// Start/Submit/Drain path instead of Run and holds it to the same
// differential bar: state, outputs, and per-slot C1 access order must match
// the single-pipeline reference.
func TestStreamingEquivalence(t *testing.T) {
	prog, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{
		Packets: 3000, Pipelines: 4, Seed: 17, Pattern: workload.Skewed,
	}, 4, 64)
	for _, k := range workerCounts {
		t.Run(string(rune('0'+k)), func(t *testing.T) {
			e := New(prog, Config{
				Workers: k, RecordOutputs: true, RecordAccessOrder: true,
			})
			e.Start()
			for i := range arrivals {
				if e.NextID() != int64(i) {
					t.Fatalf("NextID %d before submitting packet %d", e.NextID(), i)
				}
				if !e.Submit(&arrivals[i]) {
					t.Fatalf("Submit of packet %d failed", i)
				}
			}
			res := e.Drain()
			if res.Stalled || res.Completed != int64(len(arrivals)) {
				t.Fatalf("stream: %d of %d completed (stalled=%v)", res.Completed, len(arrivals), res.Stalled)
			}
			if rep := equiv.CheckState(prog, e.FinalRegs(), e.Outputs(), arrivals); !rep.Equivalent {
				t.Fatalf("stream not equivalent to reference:\n%s", rep)
			}
			if !reflect.DeepEqual(equiv.ReferenceOrder(prog, arrivals), e.AccessOrders()) {
				t.Fatal("stream C1 access order diverges from the reference")
			}
		})
	}
}

// TestStreamingIdleIsNotStall checks the watchdog's streaming contract: a
// traffic gap longer than StallTimeout with nothing in flight must not trip
// the stall abort, and the stream must keep accepting packets afterwards.
func TestStreamingIdleIsNotStall(t *testing.T) {
	prog, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 200, Pipelines: 2, Seed: 3}, 2, 16)
	e := New(prog, Config{Workers: 2, StallTimeout: 20 * time.Millisecond, RecordOutputs: true})
	e.Start()
	half := len(arrivals) / 2
	for i := 0; i < half; i++ {
		if !e.Submit(&arrivals[i]) {
			t.Fatalf("Submit of packet %d failed", i)
		}
	}
	// Let the first half fully egress, then sit idle well past the stall
	// timeout: the watchdog must treat the empty stream as healthy.
	deadline := time.Now().Add(2 * time.Second)
	for e.Completed() != int64(half) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	if e.Stalled() {
		t.Fatal("watchdog declared an idle stream stalled")
	}
	for i := half; i < len(arrivals); i++ {
		if !e.Submit(&arrivals[i]) {
			t.Fatalf("Submit of packet %d after the idle gap failed", i)
		}
	}
	res := e.Drain()
	if res.Stalled || res.Completed != int64(len(arrivals)) {
		t.Fatalf("after idle gap: %d of %d completed (stalled=%v)", res.Completed, len(arrivals), res.Stalled)
	}
	if rep := equiv.CheckState(prog, e.FinalRegs(), e.Outputs(), arrivals); !rep.Equivalent {
		t.Fatalf("not equivalent after idle gap:\n%s", rep)
	}
}

// TestDrainWithoutStart covers the degenerate lifecycle: an engine that was
// never started drains to an empty result instead of hanging or panicking.
func TestDrainWithoutStart(t *testing.T) {
	prog, err := apps.Synthetic(1, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	res := New(prog, Config{Workers: 2}).Drain()
	if res.Injected != 0 || res.Completed != 0 || res.Stalled {
		t.Fatalf("unstarted drain: %+v", res)
	}
}

// seededOwners builds an engine with the given placement seed and returns
// the initial owner assignment of every sharded array.
func seededOwners(t *testing.T, seed int64, k int) [][]int {
	t.Helper()
	prog, err := apps.Synthetic(2, 64, 16) // 64 >= k*4 for k=4
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, Config{Workers: k, Seed: seed})
	var out [][]int
	for r := range e.def.shard {
		if e.def.shard[r].sharded {
			out = append(out, append([]int(nil), e.def.shard[r].owner...))
		}
	}
	if len(out) == 0 {
		t.Fatal("synthetic program has no sharded arrays")
	}
	return out
}

// TestSeededPlacementDeterminism wires Config.Seed: the same seed must
// reproduce the same initial placement, different seeds must produce
// different ones (size 64 >= k*4), seed 0 must keep plain round-robin, and
// every seeded placement must stay perfectly balanced.
func TestSeededPlacementDeterminism(t *testing.T) {
	const k = 4
	a1 := seededOwners(t, 42, k)
	a2 := seededOwners(t, 42, k)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same seed produced different placements:\n%v\n%v", a1, a2)
	}
	b := seededOwners(t, 43, k)
	if reflect.DeepEqual(a1, b) {
		t.Fatalf("seeds 42 and 43 produced identical placements: %v", a1)
	}
	rr := seededOwners(t, 0, k)
	for _, owners := range rr {
		for i, o := range owners {
			if o != i%k {
				t.Fatalf("seed 0 placement is not round-robin: owner[%d]=%d", i, o)
			}
		}
	}
	for _, owners := range a1 {
		perWorker := make([]int, k)
		for _, o := range owners {
			perWorker[o]++
		}
		for w := 1; w < k; w++ {
			if perWorker[w] != perWorker[0] {
				t.Fatalf("seeded placement unbalanced: %v", perWorker)
			}
		}
	}
}

// TestSeededPlacementEquivalence makes sure a seeded placement changes only
// the steering geometry, never the function: the differential bar holds.
func TestSeededPlacementEquivalence(t *testing.T) {
	prog, err := apps.Synthetic(2, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{
		Packets: 2000, Pipelines: 4, Seed: 5, Pattern: workload.Skewed,
	}, 2, 64)
	runChecked(t, prog, arrivals, Config{Workers: 4, Seed: 99})
}

// TestOnEgressHook checks the egress callback: every admitted id is
// reported exactly once, and the callback observes recorded outputs.
func TestOnEgressHook(t *testing.T) {
	prog, err := apps.Synthetic(2, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 1000, Pipelines: 4, Seed: 8}, 2, 32)
	seen := make([]int32, len(arrivals))
	cfg := Config{Workers: 4}
	cfg.OnEgress = func(id int64) { seen[id]++ }
	e := New(prog, cfg)
	res := e.Run(arrivals)
	if res.Completed != int64(len(arrivals)) {
		t.Fatalf("%d of %d completed", res.Completed, len(arrivals))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("packet %d egressed %d times", id, n)
		}
	}
}

// TestShardMapSnapshot exercises the live placement snapshot while the
// engine is running under churn-heavy remapping (the race detector guards
// the locking discipline) and validates its shape afterwards.
func TestShardMapSnapshot(t *testing.T) {
	prog, err := apps.Synthetic(2, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{
		Packets: 4000, Pipelines: 4, Seed: 5, Pattern: workload.Skewed, ChurnInterval: 64,
	}, 2, 64)
	e := New(prog, Config{Workers: 4, RemapInterval: 32})
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				e.ShardMap()
			}
		}
	}()
	res := e.Run(arrivals)
	close(stop)
	if res.Completed != int64(len(arrivals)) {
		t.Fatalf("%d of %d completed", res.Completed, len(arrivals))
	}
	sm := e.ShardMap()
	if len(sm) != len(prog.Regs) {
		t.Fatalf("shard map covers %d arrays, program has %d", len(sm), len(prog.Regs))
	}
	for _, ent := range sm {
		if ent.Sharded && len(ent.Owners) != prog.Regs[ent.Reg].Size {
			t.Fatalf("r%d: %d owners for size %d", ent.Reg, len(ent.Owners), prog.Regs[ent.Reg].Size)
		}
		if !ent.Sharded && len(ent.Owners) != 1 {
			t.Fatalf("unsharded r%d has %d owners", ent.Reg, len(ent.Owners))
		}
		for _, o := range ent.Owners {
			if o < 0 || o >= 4 {
				t.Fatalf("r%d owned by out-of-range worker %d", ent.Reg, o)
			}
		}
	}
}
