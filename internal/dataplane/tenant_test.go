package dataplane

import (
	"reflect"
	"testing"
	"time"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/equiv"
	"mp5/internal/ir"
	"mp5/internal/workload"
)

// checkHandle holds one handle of a drained multi-program engine to the
// state and C1 oracles against its own independent single-pipeline
// reference — tenant isolation means each program must behave exactly as
// if it ran alone.
func checkHandle(t *testing.T, e *Engine, h *Handle, prog *ir.Program, arrivals []core.Arrival) {
	t.Helper()
	if rep := equiv.CheckState(prog, e.FinalRegsFor(h), e.OutputsFor(h), arrivals); !rep.Equivalent {
		t.Fatalf("tenant %q: not equivalent to its reference:\n%s", h.Name(), rep)
	}
	want := equiv.ReferenceOrder(prog, arrivals)
	if got := e.AccessOrdersFor(h); !reflect.DeepEqual(want, got) {
		t.Fatalf("tenant %q: access orders diverged from reference", h.Name())
	}
}

// TestMultiTenantInterleaveEquivalence is the tenant-isolation oracle: two
// different programs interleaved packet by packet on one engine must each
// match their own single-pipeline reference exactly — final registers,
// outputs, and per-slot C1 access order.
func TestMultiTenantInterleaveEquivalence(t *testing.T) {
	progA, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := apps.Synthetic(3, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrsA := workload.Synthetic(progA, workload.Spec{Packets: 800, Pipelines: 4, Seed: 21}, 4, 64)
	arrsB := workload.Synthetic(progB, workload.Spec{Packets: 800, Pipelines: 4, Seed: 22}, 3, 32)
	for _, workers := range workerCounts {
		e := NewMulti(Config{Workers: workers, Window: 64, RecordOutputs: true, RecordAccessOrder: true})
		hA := e.AddProgram("alpha", progA, nil)
		hB := e.AddProgram("beta", progB, nil)
		e.Start()
		for i := 0; i < len(arrsA); i++ {
			if !e.SubmitTo(hA, &arrsA[i], nil) {
				t.Fatalf("workers=%d: alpha submit %d refused", workers, i)
			}
			if !e.SubmitTo(hB, &arrsB[i], nil) {
				t.Fatalf("workers=%d: beta submit %d refused", workers, i)
			}
		}
		res := e.Drain()
		if res.Stalled || res.Completed != int64(len(arrsA)+len(arrsB)) {
			t.Fatalf("workers=%d: %d of %d completed (stalled=%v)",
				workers, res.Completed, len(arrsA)+len(arrsB), res.Stalled)
		}
		checkHandle(t, e, hA, progA, arrsA)
		checkHandle(t, e, hB, progB, arrsB)
		if hA.Stats().Submitted != int64(len(arrsA)) || hB.Stats().Submitted != int64(len(arrsB)) {
			t.Fatalf("per-handle submit counters wrong: %+v / %+v", hA.Stats(), hB.Stats())
		}
	}
}

// TestMultiTenantBatchInterleave drives the same isolation oracle through
// SubmitBatchTo with alternating per-tenant chunks — the daemon's actual
// admission shape.
func TestMultiTenantBatchInterleave(t *testing.T) {
	progA, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrsA := workload.Synthetic(progA, workload.Spec{Packets: 900, Pipelines: 4, Seed: 23}, 4, 64)
	arrsB := workload.Synthetic(progB, workload.Spec{Packets: 600, Pipelines: 4, Seed: 24}, 2, 16)
	e := NewMulti(Config{Workers: 4, Window: 128, RecordOutputs: true, RecordAccessOrder: true})
	hA := e.AddProgram("alpha", progA, nil)
	hB := e.AddProgram("beta", progB, nil)
	e.Start()
	const chunk = 37
	offA, offB := 0, 0
	for offA < len(arrsA) || offB < len(arrsB) {
		if offA < len(arrsA) {
			end := min(offA+chunk, len(arrsA))
			if e.SubmitBatchTo(hA, arrsA[offA:end], nil) != end-offA {
				t.Fatal("alpha batch refused")
			}
			offA = end
		}
		if offB < len(arrsB) {
			end := min(offB+chunk, len(arrsB))
			if e.SubmitBatchTo(hB, arrsB[offB:end], nil) != end-offB {
				t.Fatal("beta batch refused")
			}
			offB = end
		}
	}
	res := e.Drain()
	if res.Stalled || res.Completed != int64(len(arrsA)+len(arrsB)) {
		t.Fatalf("%d of %d completed (stalled=%v)", res.Completed, len(arrsA)+len(arrsB), res.Stalled)
	}
	checkHandle(t, e, hA, progA, arrsA)
	checkHandle(t, e, hB, progB, arrsB)
}

// TestQuotaShedsWithoutBlocking pins the noisy-neighbor contract at the
// engine: a tenant whose quota is exhausted sheds the over-quota tail —
// counted, non-blocking, dense-prefix admitted count — while an unlimited
// tenant on the same engine is untouched.
func TestQuotaShedsWithoutBlocking(t *testing.T) {
	prog, err := apps.Synthetic(2, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrs := workload.Synthetic(prog, workload.Spec{Packets: 64, Pipelines: 2, Seed: 25}, 2, 32)
	e := NewMulti(Config{Workers: 2, Window: 256, RecordOutputs: true})
	// Quota smaller than the burst: the tail must shed, not block.
	q := NewQuota(8)
	hFlood := e.AddProgram("flood", prog, q)
	hGood := e.AddProgram("good", prog, nil)
	e.Start()
	// Wedge the flood tenant's quota by submitting its full burst in one
	// call: only 8 can hold tokens at once, and since workers drain them
	// concurrently the admitted count lands anywhere in [8, 64] — but any
	// refusal must be a shed, and admitted+shed must cover the burst.
	admitted := e.SubmitBatchTo(hFlood, arrs, nil)
	if admitted < 8 {
		t.Fatalf("flood admitted %d, want >= quota 8", admitted)
	}
	st := hFlood.Stats()
	if st.Submitted != int64(admitted) {
		t.Fatalf("flood submitted counter %d != admitted %d", st.Submitted, admitted)
	}
	if admitted < len(arrs) && st.Shed == 0 {
		t.Fatalf("flood refused %d packets but shed counter is 0", len(arrs)-admitted)
	}
	if st.Shed+st.Submitted < int64(len(arrs)) {
		t.Fatalf("admitted %d + shed %d < burst %d", st.Submitted, st.Shed, len(arrs))
	}
	// The well-behaved tenant admits its whole burst regardless.
	if got := e.SubmitBatchTo(hGood, arrs, nil); got != len(arrs) {
		t.Fatalf("good tenant admitted %d of %d behind a flooding neighbor", got, len(arrs))
	}
	res := e.Drain()
	if res.Stalled {
		t.Fatal("engine stalled")
	}
	if hGood.Stats().Completed != int64(len(arrs)) {
		t.Fatalf("good tenant completed %d of %d", hGood.Stats().Completed, len(arrs))
	}
	// Every quota token must come back once the flood's packets egressed.
	if got := q.InUse(); got != 0 {
		t.Fatalf("quota leaked %d tokens after drain", got)
	}
}

// TestHotAddUnderLoad is the engine half of the zero-downtime swap
// contract: AddProgram while traffic flows on an existing handle, then
// traffic on both — nothing drains, both tenants verify against their own
// references, and packets already in flight are untouched.
func TestHotAddUnderLoad(t *testing.T) {
	progA, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := apps.Synthetic(3, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrsA := workload.Synthetic(progA, workload.Spec{Packets: 1000, Pipelines: 4, Seed: 26}, 4, 64)
	arrsB := workload.Synthetic(progB, workload.Spec{Packets: 500, Pipelines: 4, Seed: 27}, 3, 32)
	e := NewMulti(Config{Workers: 4, Window: 64, RecordOutputs: true, RecordAccessOrder: true})
	hA := e.AddProgram("alpha", progA, nil)
	e.Start()
	// First half of alpha's traffic runs alone.
	half := len(arrsA) / 2
	if e.SubmitBatchTo(hA, arrsA[:half], nil) != half {
		t.Fatal("alpha first half refused")
	}
	// Hot-add beta mid-stream — no drain, no pause; the admitter keeps
	// alpha's packets flowing right after.
	hB := e.AddProgram("beta", progB, nil)
	if hB.Version() == hA.Version() {
		t.Fatal("hot-added handle shares a version with the live one")
	}
	offA, offB := half, 0
	for offA < len(arrsA) || offB < len(arrsB) {
		if offA < len(arrsA) {
			end := min(offA+29, len(arrsA))
			if e.SubmitBatchTo(hA, arrsA[offA:end], nil) != end-offA {
				t.Fatal("alpha tail refused")
			}
			offA = end
		}
		if offB < len(arrsB) {
			end := min(offB+29, len(arrsB))
			if e.SubmitBatchTo(hB, arrsB[offB:end], nil) != end-offB {
				t.Fatal("beta refused")
			}
			offB = end
		}
	}
	res := e.Drain()
	if res.Stalled || res.Completed != int64(len(arrsA)+len(arrsB)) {
		t.Fatalf("%d of %d completed (stalled=%v)", res.Completed, len(arrsA)+len(arrsB), res.Stalled)
	}
	checkHandle(t, e, hA, progA, arrsA)
	checkHandle(t, e, hB, progB, arrsB)
}

// TestMultiTenantAbortRetiresAcrossHandles extends the PR 8 abort-path
// regression across tenants: a batch whose tickets are flushed when the
// engine dies must retire cleanly on every handle — no pending tickets on
// either tenant's slots, no window tokens, no quota tokens, every packet
// back on its own handle's free list.
func TestMultiTenantAbortRetiresAcrossHandles(t *testing.T) {
	prog, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	arrs := workload.Synthetic(prog, workload.Spec{Packets: n, Pipelines: 2, Seed: 28}, 2, 16)
	e := NewMulti(Config{Workers: 2, Window: 32})
	q := NewQuota(16)
	hA := e.AddProgram("alpha", prog, q)
	hB := e.AddProgram("beta", prog, nil)
	e.Start()
	if e.SubmitBatchTo(hB, arrs, nil) != n {
		t.Fatal("beta warmup batch refused")
	}
	// Let beta's packets egress first: in-flight packets legitimately hold
	// tickets when an engine dies, and this test is about the *undispatched*
	// chunk's retirement.
	for hB.Stats().Completed != n {
		time.Sleep(time.Millisecond)
	}
	// Kill the engine after alpha's chunk tickets flush, before dispatch.
	e.testAfterTicket = func() {
		e.abortOnce.Do(func() { close(e.abort) })
	}
	admitted := e.SubmitBatchTo(hA, arrs, nil)
	if admitted != n {
		t.Fatalf("aborted batch admitted %d of %d (ids must stay dense)", admitted, n)
	}
	if pend, _ := e.TicketDepths(); pend != 0 {
		t.Fatalf("abort leaked %d tickets across handles", pend)
	}
	if got := e.WindowInUse(); got != 0 {
		t.Fatalf("abort leaked %d window tokens", got)
	}
	if got := q.InUse(); got != 0 {
		t.Fatalf("abort leaked %d quota tokens", got)
	}
	hA.freeMu.Lock()
	freed := len(hA.free)
	hA.freeMu.Unlock()
	if freed != n {
		t.Fatalf("abort recycled %d of %d alpha packets", freed, n)
	}
	e.Drain()
}
