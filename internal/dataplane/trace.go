package dataplane

// Wire-to-wire tracing: where does a live packet's time actually go?
//
// The paper's whole argument is about waiting — admission order (C1/D4),
// crossbar hops (D3), shard placement (D2) — but flat counters cannot say
// whether a daemon packet's round trip was spent in the ingress queue, the
// admission window, a ticket queue, or on a worker. This file adds a
// sampled per-packet span: the server stamps a packet at decode, every
// stage transition appends one duration record, and the finished span is
// handed to a collector goroutine off the hot path.
//
// Discipline (the PRECISION rule — do the expensive thing off the fast
// path, rarely):
//
//   - Sampling is decided once, at decode, with a single atomic counter;
//     an unsampled packet carries a nil span and every stamp site is a nil
//     check.
//   - A sampled packet's span travels *with* the packet, which is owned by
//     exactly one goroutine at a time (admitter, then whichever worker
//     holds it) — so stamping is lock-free by construction; channel
//     handoffs provide the happens-before edges.
//   - Finished spans are pushed to the collector over a buffered channel
//     with a non-blocking send: when the collector falls behind, spans are
//     dropped and counted, never back-pressured into the dataplane.
//
// The collector folds each span into per-stage latency histograms on the
// shared telemetry registry (served on /metrics and /stats) and optionally
// streams the raw span to a sink (mp5d's -trace-jsonl).

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mp5/internal/telemetry"
)

// TraceStage names one segment of a packet's wire-to-wire lifecycle.
type TraceStage uint8

const (
	// StageIngressWait is decode → admitter pickup: time spent queued in
	// the server's bounded ingress channel (stamped by the server).
	StageIngressWait TraceStage = iota
	// StageWindowWait is the admission-control wait: blocking on the
	// engine's window semaphore before a ticket can be issued.
	StageWindowWait
	// StageAdmit is admitter work: resolution-stage execution, preemptive
	// address resolution, and D4 ticket issue.
	StageAdmit
	// StageCrossbar is one mailbox transit — initial dispatch or a D3
	// steer — from the send decision to the receiving worker picking the
	// packet up. A packet records one crossbar segment per hop.
	StageCrossbar
	// StageExec is one on-worker execution segment (stage marching between
	// handoffs); the record's Pipe says which worker ran it.
	StageExec
	// StageTicketWait is time parked on the owning worker waiting to hold
	// the head ticket of every slot of a visit (D4 ordering wait).
	StageTicketWait
	// StageReplayWait is time a state-compute-replication worker
	// (internal/screp) spends waiting for earlier packets' write deltas to
	// be published before its own stateful span may run — the replication
	// engine's analogue of the D4 ticket wait. Never stamped by this
	// package's sharded engine.
	StageReplayWait
	// StageEgress is egress bookkeeping: output recording plus the
	// OnEgress hook (on the server path, the TCP ack enqueue).
	StageEgress

	numTraceStages
)

var stageNames = [numTraceStages]string{
	"ingress_wait", "window_wait", "admit", "crossbar", "exec", "ticket_wait", "replay_wait", "egress",
}

// String returns the stage's JSONL/metrics name.
func (st TraceStage) String() string {
	if int(st) < len(stageNames) {
		return stageNames[st]
	}
	return "unknown"
}

// StageRec is one recorded lifecycle segment of a sampled packet.
type StageRec struct {
	Stage string `json:"stage"`
	// Pipe is the worker the segment ran on (-1 for admitter/server-side
	// segments).
	Pipe int   `json:"pipe"`
	Ns   int64 `json:"ns"`

	code TraceStage // numeric stage for collector-side folding
}

// Span is one sampled packet's wire-to-wire lifecycle: a start stamp taken
// at server decode and an ordered list of stage segments whose durations
// sum to TotalNs (each Advance accrues exactly the time since the previous
// stamp). Spans are packet-owned while live — no locking — and immutable
// once handed to the collector.
type Span struct {
	Type    string     `json:"type"` // always "wire_span"
	ID      int64      `json:"pkt"`
	Proto   string     `json:"proto,omitempty"`
	StartNs int64      `json:"start_unix_ns"`
	TotalNs int64      `json:"total_ns"`
	Stages  []StageRec `json:"stages"`

	t0   time.Time
	last time.Duration
}

// Advance closes the current segment: it records the time elapsed since
// the previous stamp under the given stage. Nil-safe (unsampled packets
// carry a nil span).
func (sp *Span) Advance(st TraceStage, pipe int) {
	if sp == nil {
		return
	}
	now := time.Since(sp.t0)
	sp.Stages = append(sp.Stages, StageRec{Stage: st.String(), Pipe: pipe, Ns: int64(now - sp.last), code: st})
	sp.last = now
}

// StageTotals sums the span's segment durations per stage (and overall) —
// the folded view the collector feeds into histograms and checkers use to
// reconcile against TotalNs.
func (sp *Span) StageTotals() (per [numTraceStages]int64, sum int64) {
	for _, r := range sp.Stages {
		if int(r.code) < len(per) {
			per[r.code] += r.Ns
		}
		sum += r.Ns
	}
	return per, sum
}

// Trace histogram shape: microseconds at 1 µs resolution up to ~16 ms for
// stages, 4 µs resolution up to ~65 ms for the total (loopback RTTs sit
// near 1 ms; the windows keep tails visible without huge bucket arrays).
const (
	stageHistHi  = 1 << 14
	stageHistN   = 1 << 14
	totalHistHi  = 1 << 16
	totalHistN   = 1 << 14
	collectorCap = 4096
)

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// SampleEvery samples one packet of every SampleEvery decoded (1 =
	// every packet); <= 0 defaults to 1024.
	SampleEvery int
	// Sink, when non-nil, receives every collected span on the collector
	// goroutine (mp5d wires a JSONL writer here). The span is recycled the
	// moment Sink returns, so Sink must not retain sp or its Stages slice —
	// deep-copy anything it needs beyond the call.
	Sink func(sp *Span)
	// Registry receives the per-stage latency histograms and the
	// sampled/dropped counters; nil disables the metric surface (spans
	// still flow to Sink).
	Registry *telemetry.Registry
}

// Tracer owns the sampling decision and the off-hot-path collector. A nil
// *Tracer is the disabled state: Sample returns nil and every method is a
// no-op, so the dataplane and server pay only nil checks when tracing is
// off.
type Tracer struct {
	every int64
	tick  atomic.Int64

	ch   chan *Span
	sink func(sp *Span)

	stageH [numTraceStages]*telemetry.Histogram
	totalH *telemetry.Histogram

	sampled *telemetry.Counter
	dropped *telemetry.Counter
	// sampledN/droppedN shadow the counters so accounting works with a
	// nil registry too (bench runs).
	sampledN atomic.Int64
	droppedN atomic.Int64

	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup

	// pool recycles spans: Sample draws from it and the collector returns
	// each span after folding it (and after the sink, which must not retain
	// it, returned). Dropped spans are returned at the drop site.
	pool sync.Pool
}

// NewTracer builds and starts a tracer (collector goroutine included).
// Close it after the engine drained to flush the in-flight spans.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1024
	}
	t := &Tracer{
		every: int64(cfg.SampleEvery),
		ch:    make(chan *Span, collectorCap),
		sink:  cfg.Sink,
		stop:  make(chan struct{}),
	}
	if r := cfg.Registry; r != nil {
		for st := TraceStage(0); st < numTraceStages; st++ {
			t.stageH[st] = r.NewHistogram(
				"trace_"+st.String()+"_us",
				"sampled wire-span "+st.String()+" segment latency (µs)",
				0, stageHistHi, stageHistN)
		}
		t.totalH = r.NewHistogram("trace_total_us",
			"sampled wire-span decode-to-egress latency (µs)",
			0, totalHistHi, totalHistN)
		t.sampled = r.NewCounter("trace_spans_sampled_total", "packets sampled for wire-to-wire spans")
		t.dropped = r.NewCounter("trace_spans_dropped_total", "finished spans dropped at the full collector queue")
	}
	t.wg.Add(1)
	go t.collect()
	return t
}

// Sample decides, in one atomic increment, whether the packet being
// decoded is traced. It returns a started span (stamped now) for sampled
// packets and nil otherwise. Nil-safe: a nil tracer samples nothing.
func (t *Tracer) Sample() *Span {
	if t == nil {
		return nil
	}
	if t.tick.Add(1)%t.every != 0 {
		return nil
	}
	t.sampled.Inc()
	t.sampledN.Add(1)
	now := time.Now()
	if v := t.pool.Get(); v != nil {
		sp := v.(*Span)
		sp.ID, sp.Proto, sp.TotalNs = 0, "", 0
		sp.StartNs = now.UnixNano()
		sp.t0, sp.last = now, 0
		sp.Stages = sp.Stages[:0]
		return sp
	}
	return &Span{Type: "wire_span", StartNs: now.UnixNano(), t0: now, Stages: make([]StageRec, 0, 12)}
}

// finish seals the span and hands it to the collector without ever
// blocking the egressing worker: a full collector queue drops the span
// (counted), never back-pressures the dataplane.
func (t *Tracer) finish(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	sp.TotalNs = int64(time.Since(sp.t0))
	if t.closed.Load() {
		t.pool.Put(sp)
		return
	}
	select {
	case t.ch <- sp:
	default:
		t.dropped.Inc()
		t.droppedN.Add(1)
		t.pool.Put(sp)
	}
}

// Finish seals sp and hands it to the collector — the exported entry point
// for engines outside this package (internal/screp shares the tracer so
// both parallelization strategies feed one span pipeline). Never blocks;
// same drop-when-full contract as the internal finish.
func (t *Tracer) Finish(sp *Span) { t.finish(sp) }

// collect is the off-hot-path merge loop: fold each finished span into the
// per-stage histograms and stream it to the sink.
func (t *Tracer) collect() {
	defer t.wg.Done()
	for {
		select {
		case sp := <-t.ch:
			t.observe(sp)
		case <-t.stop:
			for {
				select {
				case sp := <-t.ch:
					t.observe(sp)
				default:
					return
				}
			}
		}
	}
}

func (t *Tracer) observe(sp *Span) {
	per, _ := sp.StageTotals()
	for st, ns := range per {
		if ns > 0 {
			t.stageH[st].Observe(float64(ns) / 1e3)
		}
	}
	t.totalH.Observe(float64(sp.TotalNs) / 1e3)
	if t.sink != nil {
		t.sink(sp)
	}
	t.pool.Put(sp) // sinks do not retain spans (see TracerConfig.Sink)
}

// Rotate starts a new histogram window on every stage histogram (the
// background sampler calls this so /metrics quantiles track the recent
// past instead of the whole run).
func (t *Tracer) Rotate() {
	if t == nil {
		return
	}
	for _, h := range t.stageH {
		h.Rotate()
	}
	t.totalH.Rotate()
}

// Close stops sampling, drains the collector queue, and joins the
// collector goroutine. Call after the engine drained (no finish may race a
// Close; late finishes after Close are dropped silently).
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	if t.closed.Swap(true) {
		return
	}
	close(t.stop)
	t.wg.Wait()
}

// Sampled returns the number of packets sampled so far.
func (t *Tracer) Sampled() int64 {
	if t == nil {
		return 0
	}
	return t.sampledN.Load()
}

// Dropped returns the number of finished spans shed at the collector.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.droppedN.Load()
}

// StageStat is the aggregate view of one stage's latency distribution, in
// the shape the admin plane serves (/stats) and mp5top renders.
type StageStat struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50us float64 `json:"p50_us"`
	P90us float64 `json:"p90_us"`
	P99us float64 `json:"p99_us"`
}

// StageStats snapshots every stage histogram (plus the "total" row last).
// Stages that never observed a sample are omitted; a nil or registry-less
// tracer returns nil.
func (t *Tracer) StageStats() []StageStat {
	if t == nil || t.totalH == nil {
		return nil
	}
	out := make([]StageStat, 0, numTraceStages+1)
	snap := func(name string, h *telemetry.Histogram) {
		n := h.Count()
		if n == 0 {
			return
		}
		// Quantile is NaN when both rotation windows drained (an idle
		// daemon); clamp to 0 so /stats stays valid JSON.
		q := func(p float64) float64 {
			v := h.Quantile(p)
			if math.IsNaN(v) {
				return 0
			}
			return v
		}
		out = append(out, StageStat{
			Stage: name, Count: n,
			P50us: q(0.5), P90us: q(0.9), P99us: q(0.99),
		})
	}
	for st := TraceStage(0); st < numTraceStages; st++ {
		snap(st.String(), t.stageH[st])
	}
	snap("total", t.totalH)
	return out
}
