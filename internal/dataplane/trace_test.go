package dataplane

import (
	"strings"
	"sync"
	"testing"

	"mp5/internal/apps"
	"mp5/internal/telemetry"
	"mp5/internal/workload"
)

// collectSpans runs trace through a traced engine (sampling 1/every) and
// returns the collected spans.
func collectSpans(t *testing.T, workers, every, packets int) ([]*Span, *Tracer, *telemetry.Registry) {
	t.Helper()
	prog, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: packets, Pipelines: 4, Seed: 11, Pattern: workload.Skewed,
	}, 4, 64)

	var mu sync.Mutex
	var got []*Span
	reg := telemetry.NewRegistry()
	trc := NewTracer(TracerConfig{
		SampleEvery: every,
		Registry:    reg,
		Sink: func(sp *Span) {
			// Spans are recycled after the sink returns: keep a deep copy.
			cp := *sp
			cp.Stages = append([]StageRec(nil), sp.Stages...)
			mu.Lock()
			got = append(got, &cp)
			mu.Unlock()
		},
	})
	e := New(prog, Config{Workers: workers, Window: 64, Tracer: trc})
	e.Start()
	for i := range trace {
		sp := trc.Sample()
		if !e.SubmitTraced(&trace[i], sp) {
			t.Fatal("engine aborted mid-stream")
		}
	}
	res := e.Drain()
	if res.Stalled || res.Completed != int64(len(trace)) {
		t.Fatalf("drain: %+v", res)
	}
	trc.Close()
	return got, trc, reg
}

// TestSpanStageSums checks the central span invariant: the per-stage
// segment durations of every collected span sum exactly to its TotalNs
// (modulo the sub-microsecond gap between the final stamp and the finish
// stamp), every segment is non-negative, and the lifecycle is complete —
// window_wait, admit, crossbar, exec, and egress all appear.
func TestSpanStageSums(t *testing.T) {
	spans, trc, _ := collectSpans(t, 4, 1, 600)
	if int64(len(spans))+trc.Dropped() != trc.Sampled() {
		t.Fatalf("collected %d + dropped %d != sampled %d", len(spans), trc.Dropped(), trc.Sampled())
	}
	if len(spans) == 0 {
		t.Fatal("no spans collected at sampling 1/1")
	}
	const slackNs = 1_000_000 // finish stamps TotalNs a hair after the last Advance
	seen := map[string]bool{}
	for _, sp := range spans {
		_, sum := sp.StageTotals()
		if d := sp.TotalNs - sum; d < 0 || d > slackNs {
			t.Fatalf("pkt %d: stage sum %d vs total %d (gap %d)", sp.ID, sum, sp.TotalNs, d)
		}
		for _, r := range sp.Stages {
			if r.Ns < 0 {
				t.Fatalf("pkt %d: negative %s segment %d", sp.ID, r.Stage, r.Ns)
			}
			seen[r.Stage] = true
		}
	}
	for _, want := range []string{"window_wait", "admit", "crossbar", "exec", "egress"} {
		if !seen[want] {
			t.Fatalf("stage %q never recorded across %d spans", want, len(spans))
		}
	}
}

// TestTracerSamplingRate checks the 1/N sampling contract: the atomic
// decision counter samples exactly floor(N/every) of N serial decodes.
func TestTracerSamplingRate(t *testing.T) {
	spans, trc, _ := collectSpans(t, 2, 8, 400)
	if want := int64(400 / 8); trc.Sampled() != want {
		t.Fatalf("sampled %d of 400 at 1/8 (want %d)", trc.Sampled(), want)
	}
	if int64(len(spans)) != trc.Sampled()-trc.Dropped() {
		t.Fatalf("sink saw %d spans, sampled %d dropped %d", len(spans), trc.Sampled(), trc.Dropped())
	}
}

// TestTracerRegistrySurface checks the collector fed the shared registry:
// stage histograms appear in the Prometheus snapshot with sample counts,
// and StageStats mirrors them (ending with the total row).
func TestTracerRegistrySurface(t *testing.T) {
	_, trc, reg := collectSpans(t, 2, 1, 300)
	prom := reg.PromString()
	for _, want := range []string{
		"# TYPE trace_exec_us summary",
		"# TYPE trace_total_us summary",
		"trace_spans_sampled_total 300",
		"trace_total_us_count 300",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics snapshot missing %q", want)
		}
	}
	st := trc.StageStats()
	if len(st) == 0 {
		t.Fatal("StageStats empty after a traced run")
	}
	last := st[len(st)-1]
	if last.Stage != "total" || last.Count != 300 {
		t.Fatalf("total row: %+v", last)
	}
	for _, s := range st {
		if s.P99us < s.P50us {
			t.Fatalf("%s: p99 %f < p50 %f", s.Stage, s.P99us, s.P50us)
		}
	}
}

// TestWorkerStatsAndDepths checks the live introspection accessors settle
// to a drained state: zero window in use, zero pending tickets, zero
// parked packets, and per-worker egress counts conserving the trace.
func TestWorkerStatsAndDepths(t *testing.T) {
	prog, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: 500, Pipelines: 4, Seed: 3,
	}, 4, 64)
	trc := NewTracer(TracerConfig{SampleEvery: 16})
	defer trc.Close()
	e := New(prog, Config{Workers: 3, Window: 32, Tracer: trc})
	res := e.Run(trace)
	if res.Stalled {
		t.Fatal("stalled")
	}
	if got := e.WindowInUse(); got != 0 {
		t.Fatalf("window in use after drain: %d", got)
	}
	if e.WindowCap() != 32 {
		t.Fatalf("window cap: %d", e.WindowCap())
	}
	pending, maxDepth := e.TicketDepths()
	if pending != 0 || maxDepth != 0 {
		t.Fatalf("tickets pending after drain: %d (max %d)", pending, maxDepth)
	}
	ws := e.WorkerStats()
	if len(ws) != 3 {
		t.Fatalf("worker stats: %d entries", len(ws))
	}
	var egressed, processed int64
	for _, w := range ws {
		if w.Parked != 0 || w.Mailbox != 0 {
			t.Fatalf("worker %d not drained: %+v", w.ID, w)
		}
		if w.MailboxCap != 32 {
			t.Fatalf("worker %d mailbox cap %d", w.ID, w.MailboxCap)
		}
		egressed += w.Egressed
		processed += w.Processed
	}
	if egressed != 500 {
		t.Fatalf("per-worker egress counts sum to %d of 500", egressed)
	}
	if processed < 500 {
		t.Fatalf("process invocations %d < packets", processed)
	}
}

// TestRunWithoutTracer pins the disabled path: a nil tracer must not
// change behavior, and the busy-time accounting must stay off.
func TestRunWithoutTracer(t *testing.T) {
	prog, err := apps.Synthetic(3, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{Packets: 200, Pipelines: 4, Seed: 5}, 3, 32)
	e := New(prog, Config{Workers: 2, Window: 16})
	res := e.Run(trace)
	if res.Stalled || res.Completed != 200 {
		t.Fatalf("untraced run: %+v", res)
	}
	for _, w := range e.WorkerStats() {
		if w.BusyNs != 0 {
			t.Fatalf("busy accounting ran without a tracer: %+v", w)
		}
	}
	var nilTrc *Tracer
	if sp := nilTrc.Sample(); sp != nil {
		t.Fatal("nil tracer sampled a packet")
	}
	nilTrc.Rotate()
	nilTrc.Close()
	if nilTrc.StageStats() != nil || nilTrc.Sampled() != 0 {
		t.Fatal("nil tracer not inert")
	}
}
