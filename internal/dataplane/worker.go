package dataplane

import (
	"fmt"
	"sync/atomic"
	"time"

	"mp5/internal/banzai"
	"mp5/internal/ir"
	"mp5/internal/ir/bytecode"
	"mp5/internal/stats"
)

// packet is one in-flight packet: its execution environment, its resolved
// visit plan, and its progress through the stage sequence. A packet is
// owned by exactly one goroutine at a time (the admitter, then whichever
// worker holds it), handed off over mailbox channels — so none of its
// fields need locking.
type packet struct {
	id  int64
	env *ir.Env
	// visits is the admission-time resolution of every stateful stage the
	// packet will visit; vi indexes the next unperformed one.
	visits []visit
	vi     int
	// nextStage is the next stage to execute (resolution stages already
	// ran on the admitter).
	nextStage int
	start     time.Time
	// span is the packet's wire-to-wire trace (nil for unsampled packets).
	// Packet-owned like every other field, so stamps never lock.
	span *Span
}

// visit is one resolved stateful stage visit: the stage, the worker owning
// every slot the stage may touch, and the slots' ticket queues.
type visit struct {
	stage int
	pipe  int
	slots []slotRef
}

// slotRef pairs a slot's identity with its ticket queue so workers never
// consult the (admitter-owned) placement tables.
type slotRef struct {
	key slotKey
	st  *slotState
}

// worker is one pipeline mapped onto one goroutine. It owns a full private
// register file — only the indices the sharding map assigns to it hold the
// live copy — plus the park bench for packets waiting on a head ticket.
// All pops and head tests of a slot happen on the slot's owning worker, so
// the park-or-proceed decision and the promotion after a pop are serialized
// on one goroutine and cannot lose a wakeup.
type worker struct {
	id   int
	e    *Engine
	regs *banzai.RegFile
	// vm is this worker's operand stack for the shared compiled program
	// e.bc (VMs are not goroutine-safe); nil under Config.Interpret.
	vm      *bytecode.VM
	mailbox chan *packet
	// parked holds packets that reached their visit before holding every
	// head ticket; runnable holds packets promoted by a pop and drained
	// before the next mailbox receive.
	parked   map[int64]*packet
	runnable []*packet
	// seen and touched are per-visit scratch (dedup of (reg, clamped idx)
	// within one stage execution, and the concrete indices touched per
	// visit slot).
	seen    map[[2]int]bool
	touched [][]int
	// lat is the worker-private latency histogram, merged by the engine
	// after the goroutine joins (the share-nothing stats.Histogram
	// pattern).
	lat *stats.Histogram
	// Live occupancy counters for WorkerStats: parked packets, process
	// invocations, egresses, and (tracer-gated) busy wall time.
	parkedN    atomic.Int64
	processedN atomic.Int64
	egressedN  atomic.Int64
	busyNs     atomic.Int64
}

func newWorker(e *Engine, id int) *worker {
	var vm *bytecode.VM
	if e.bc != nil {
		vm = bytecode.NewVM(e.bc)
	}
	return &worker{
		id:      id,
		e:       e,
		regs:    banzai.NewRegFile(e.prog),
		vm:      vm,
		mailbox: make(chan *packet, e.cfg.Window),
		parked:  make(map[int64]*packet),
		seen:    make(map[[2]int]bool),
		touched: make([][]int, len(e.prog.Accesses)),
		lat:     stats.NewHistogram(latLo, latHi, latBuckets),
	}
}

// run is the worker loop: drain promoted packets first, then block on the
// mailbox until the engine shuts down.
func (w *worker) run() {
	defer w.e.wg.Done()
	for {
		for n := len(w.runnable); n > 0; n = len(w.runnable) {
			p := w.runnable[n-1]
			w.runnable = w.runnable[:n-1]
			if p.span != nil {
				// A promoted packet was parked: the elapsed segment is
				// the D4 ordering wait.
				p.span.Advance(StageTicketWait, w.id)
			}
			w.process(p)
		}
		select {
		case p := <-w.mailbox:
			if p.span != nil {
				// The elapsed segment is the crossbar hop: mailbox
				// queueing plus transit (initial dispatch or a steer).
				p.span.Advance(StageCrossbar, w.id)
			}
			w.process(p)
		case <-w.e.quit:
			return
		case <-w.e.abort:
			return
		}
	}
}

// process advances the packet as far as it can go on this worker: stateless
// stages execute inline; a visit stage either steers the packet to the
// owning worker (D3), parks it until it holds every head ticket (D4), or
// executes. Reaching the last stage egresses the packet.
func (w *worker) process(p *packet) {
	e := w.e
	w.processedN.Add(1)
	if e.trc != nil {
		// Busy-time accounting rides the tracing switch: two time.Now
		// calls per process invocation are only paid when an operator
		// turned introspection on.
		t0 := time.Now()
		defer func() { w.busyNs.Add(time.Since(t0).Nanoseconds()) }()
	}
	for p.nextStage < len(e.prog.Stages) {
		var v *visit
		if p.vi < len(p.visits) && p.visits[p.vi].stage == p.nextStage {
			v = &p.visits[p.vi]
		}
		if v == nil {
			// No ticket here: any stateful instruction in this stage has a
			// (resolution-time) false predicate, so executing the stage
			// touches only the packet environment and read-only tables.
			if w.vm != nil {
				if err := w.vm.ExecStage(&e.bc.Stages[p.nextStage], p.env, w.regs); err != nil {
					panic("dataplane: " + err.Error()) // compiled code is never corrupt
				}
			} else {
				ir.ExecStage(&e.prog.Stages[p.nextStage], p.env, w.regs)
			}
			p.nextStage++
			continue
		}
		if v.pipe != w.id {
			e.steers.Add(1)
			e.met.Steers.Inc()
			if p.span != nil {
				// Close the exec segment before the handoff; the receiving
				// worker stamps the crossbar hop.
				p.span.Advance(StageExec, w.id)
			}
			select {
			case e.workers[v.pipe].mailbox <- p:
			case <-e.abort:
			}
			return
		}
		if !w.eligible(p, v) {
			w.parked[p.id] = p
			w.parkedN.Add(1)
			e.parks.Add(1)
			e.met.Parks.Inc()
			if p.span != nil {
				// Close the exec segment; the promotion stamp turns the
				// parked time into a ticket_wait segment.
				p.span.Advance(StageExec, w.id)
			}
			return
		}
		if f := e.testBeforeExec; f != nil {
			f(p)
		}
		w.execVisit(p, v)
		p.vi++
		p.nextStage++
	}
	w.egress(p)
}

// eligible reports whether p holds the head ticket of every slot of the
// visit. Safe only on the owning worker (w.id == v.pipe).
func (w *worker) eligible(p *packet, v *visit) bool {
	for _, ref := range v.slots {
		if !ref.st.headIs(p.id) {
			return false
		}
	}
	return true
}

// execVisit executes the visit's stage with the access observer attached,
// recording which concrete register indices each slot ticket actually
// covered (predicates evaluate live, so a conservative ticket may cover
// nothing — a wasted visit). It then retires one ticket per slot and
// promotes any parked packet that now holds a head ticket.
func (w *worker) execVisit(p *packet, v *visit) {
	e := w.e
	clear(w.seen)
	touched := w.touched[:len(v.slots)]
	for i := range touched {
		touched[i] = touched[i][:0]
	}
	obs := func(reg int, idx int64, write bool) {
		ci := banzai.ClampIndex(int(idx), e.prog.Regs[reg].Size)
		dk := [2]int{reg, ci}
		if w.seen[dk] {
			return
		}
		w.seen[dk] = true
		ri := -1
		for i, ref := range v.slots {
			if ref.key.reg == reg && (ref.key.idx == ci || ref.key.idx < 0) {
				ri = i
				break
			}
		}
		if ri < 0 {
			panic(fmt.Sprintf("dataplane: packet %d accessed r%d[%d] in stage %d without a ticket",
				p.id, reg, ci, v.stage))
		}
		touched[ri] = append(touched[ri], ci)
	}
	if w.vm != nil {
		if err := w.vm.ExecStageObserved(&e.bc.Stages[v.stage], p.env, w.regs, obs); err != nil {
			panic("dataplane: " + err.Error())
		}
	} else {
		ir.ExecStageObserved(&e.prog.Stages[v.stage], p.env, w.regs, obs)
	}
	record := e.cfg.RecordAccessOrder
	for i, ref := range v.slots {
		if len(touched[i]) == 0 {
			e.wasted.Add(1)
			e.met.Wasted.Inc()
		}
		next := ref.st.pop(touched[i], p.id, record)
		if next >= 0 {
			if q, ok := w.parked[next]; ok {
				delete(w.parked, next)
				w.parkedN.Add(-1)
				w.runnable = append(w.runnable, q)
			}
		}
	}
}

// egress completes the packet: record outputs and egress order, notify the
// OnEgress hook, release the window token, and close the engine's done gate
// on the last packet.
func (w *worker) egress(p *packet) {
	e := w.e
	if p.span != nil {
		// Close the final exec segment; everything from here to the
		// finish — output recording and the OnEgress hook (the TCP ack
		// enqueue on the server path) — is the egress segment.
		p.span.Advance(StageExec, w.id)
	}
	if e.outs != nil {
		e.outs[p.id] = append([]int64(nil), p.env.Fields...)
	} else if e.outsM != nil {
		// Streaming mode: no preallocated slice, so record under egMu.
		e.egMu.Lock()
		e.outsM[p.id] = append([]int64(nil), p.env.Fields...)
		e.egMu.Unlock()
	}
	if e.cfg.RecordEgressOrder {
		e.egMu.Lock()
		e.egressOrder = append(e.egressOrder, p.id)
		e.egMu.Unlock()
	}
	w.lat.Add(float64(time.Since(p.start).Microseconds()))
	w.egressedN.Add(1)
	e.met.Egressed.Inc()
	if f := e.cfg.OnEgress; f != nil {
		f(p.id)
	}
	if p.span != nil {
		p.span.Advance(StageEgress, w.id)
		e.trc.finish(p.span)
	}
	<-e.window
	c := e.completed.Add(1)
	if t := e.total.Load(); t >= 0 && c == t {
		e.closeDone()
	}
}
