package dataplane

import (
	"fmt"
	"sync/atomic"
	"time"

	"mp5/internal/banzai"
	"mp5/internal/ir"
	"mp5/internal/stats"
)

// packet is one in-flight packet: its execution environment, its resolved
// visit plan, and its progress through the stage sequence. A packet is
// owned by exactly one goroutine at a time (the admitter, then whichever
// worker holds it), handed off over mailbox channels — so none of its
// fields need locking.
type packet struct {
	id int64
	// h is the handle (program namespace) the packet was admitted under:
	// workers reach the program, its per-worker register files/VMs, and its
	// quota exclusively through the packet, so mixed-tenant traffic needs no
	// per-worker program lookup and the mailbox handoff publishes a
	// freshly-added handle to the worker (hot swap).
	h   *Handle
	env *ir.Env
	// visits is the admission-time resolution of every stateful stage the
	// packet will visit; vi indexes the next unperformed one.
	visits []visit
	vi     int
	// nextStage is the next stage to execute (resolution stages already
	// ran on the admitter).
	nextStage int
	start     time.Time
	// span is the packet's wire-to-wire trace (nil for unsampled packets).
	// Packet-owned like every other field, so stamps never lock.
	span *Span
}

// visit is one resolved stateful stage visit: the stage, the worker owning
// every slot the stage may touch, and the slots' ticket queues.
type visit struct {
	stage int
	pipe  int
	slots []slotRef
}

// slotRef pairs a slot's identity with its ticket queue so workers never
// consult the (admitter-owned) placement tables.
type slotRef struct {
	key slotKey
	st  *slotState
}

// xbarMsg is one crossbar mailbox transfer: a single packet (Submit's
// dispatch) or a coalesced batch — an admission chunk's per-worker run
// (SubmitBatch) or a worker's accumulated steers for one destination,
// flushed when its mailbox runs dry. A batch occupies one mailbox slot
// for many packets, so coalescing only strengthens the
// mailboxes-never-fill invariant.
type xbarMsg struct {
	p     *packet
	batch *pktBatch
}

// pktBatch is the recycled carrier behind coalesced sends (see
// Engine.getBatch/putBatch).
type pktBatch struct {
	items []*packet
}

// egRec is one worker-private egress record: seq is drawn from the
// engine's global atomic counter at egress time, so sorting the merged
// records by seq reconstructs the wall-clock egress order without a
// global lock on the egress path.
type egRec struct {
	seq int64
	id  int64
}

// worker is one pipeline mapped onto one goroutine. For every loaded
// handle it owns one private register file (h.wregs[w.id]) — only the
// indices the handle's sharding map assigns to it hold the live copy —
// plus the park bench for packets waiting on a head ticket. All pops and
// head tests of a slot happen on the slot's owning worker, so the
// park-or-proceed decision and the promotion after a pop are serialized on
// one goroutine and cannot lose a wakeup. Program state (stages, bytecode,
// VMs, register files) is reached through p.h, never stored on the worker:
// a worker is pure topology.
type worker struct {
	id      int
	e       *Engine
	mailbox chan xbarMsg
	// parked holds packets that reached their visit before holding every
	// head ticket; runnable holds packets promoted by a pop and drained
	// before the next mailbox receive.
	parked   map[int64]*packet
	runnable []*packet
	// xout accumulates outgoing steers per destination worker while this
	// worker drains its mailbox; xoutPend lists the dirty destinations in
	// first-touch order. Flushed (one batch send per destination) whenever
	// the mailbox runs dry — and always before blocking on it, so a
	// buffered packet another worker needs can never be stranded.
	xout     []*pktBatch
	xoutPend []int
	// outs collects streaming-mode egress outputs worker-privately (merged
	// by Engine.Outputs after the join); egRecs collects (seq, id) egress
	// records merged into the global order at Drain. Both replace the old
	// engine-wide egress mutex.
	outs   map[int64][]int64
	egRecs []egRec
	// seen and touched are per-visit scratch (dedup of (reg, clamped idx)
	// within one stage execution, and the concrete indices touched per
	// visit slot). touched grows on demand to the widest visit seen —
	// bounded by the largest per-stage slot count across loaded programs,
	// so it stops allocating after warmup.
	seen    map[[2]int]bool
	touched [][]int
	// obs is the access observer bound once at construction (a fresh
	// closure per visit would put one heap allocation back on the hot
	// path); obsP/obsV/obsT carry the current visit's context to it.
	obs  func(reg int, idx int64, write bool)
	obsP *packet
	obsV *visit
	obsT [][]int
	// lat is the worker-private latency histogram, merged by the engine
	// after the goroutine joins (the share-nothing stats.Histogram
	// pattern).
	lat *stats.Histogram
	// Live occupancy counters for WorkerStats: parked packets, process
	// invocations, egresses, and (tracer-gated) busy wall time.
	parkedN    atomic.Int64
	processedN atomic.Int64
	egressedN  atomic.Int64
	busyNs     atomic.Int64
}

func newWorker(e *Engine, id int) *worker {
	w := &worker{
		id:      id,
		e:       e,
		mailbox: make(chan xbarMsg, e.cfg.Window),
		xout:    make([]*pktBatch, e.cfg.Workers),
		parked:  make(map[int64]*packet),
		seen:    make(map[[2]int]bool),
		lat:     stats.NewHistogram(latLo, latHi, latBuckets),
	}
	if e.cfg.RecordOutputs {
		w.outs = make(map[int64][]int64) // streaming mode; unused when Run preallocates e.outs
	}
	w.obs = w.observe
	return w
}

// run is the worker loop: drain promoted packets first, then opportunistically
// drain the mailbox (coalescing outgoing steers per destination the whole
// while), and only after flushing those steers block on the mailbox until
// the engine shuts down.
func (w *worker) run() {
	defer w.e.wg.Done()
	for {
		for n := len(w.runnable); n > 0; n = len(w.runnable) {
			p := w.runnable[n-1]
			w.runnable = w.runnable[:n-1]
			if p.span != nil {
				// A promoted packet was parked: the elapsed segment is
				// the D4 ordering wait.
				p.span.Advance(StageTicketWait, w.id)
			}
			w.process(p)
		}
		// Opportunistic non-blocking receive: as long as work keeps
		// arriving, keep processing and let steers pile into xout. Total
		// undelivered messages are bounded by the window, so this cannot
		// starve the flush below.
		select {
		case m := <-w.mailbox:
			w.handle(m)
			continue
		default:
		}
		// Nothing runnable and the mailbox is dry: flush the coalesced
		// steers (their holders may be the only packets able to make
		// progress), then block.
		w.flushSteers()
		select {
		case m := <-w.mailbox:
			w.handle(m)
		case <-w.e.quit:
			return
		case <-w.e.abort:
			return
		}
	}
}

// handle processes one mailbox transfer: a coalesced batch in order (an
// admission chunk or another worker's steer flush), or a single packet.
// Promotions triggered by earlier batch members queue on runnable and
// drain before the next mailbox receive.
func (w *worker) handle(m xbarMsg) {
	if m.batch != nil {
		for _, p := range m.batch.items {
			if p.span != nil {
				p.span.Advance(StageCrossbar, w.id)
			}
			w.process(p)
		}
		w.e.putBatch(m.batch)
		return
	}
	if m.p.span != nil {
		// The elapsed segment is the crossbar hop: mailbox queueing plus
		// transit (initial dispatch or a steer).
		m.p.span.Advance(StageCrossbar, w.id)
	}
	w.process(m.p)
}

// bufferSteer parks an outgoing steer in the per-destination batch instead
// of paying a channel send (and a scheduler wakeup) per packet; flushSteers
// delivers every dirty destination's batch in one send each.
func (w *worker) bufferSteer(dest int, p *packet) {
	b := w.xout[dest]
	if b == nil {
		b = w.e.getBatch()
		w.xout[dest] = b
		w.xoutPend = append(w.xoutPend, dest)
	}
	b.items = append(b.items, p)
}

// flushSteers sends every buffered steer batch to its destination worker,
// in first-touch order. Called whenever the mailbox runs dry and always
// before blocking on it. On abort the engine is being torn down — the
// remaining batches are abandoned like any other in-flight packet.
func (w *worker) flushSteers() {
	if len(w.xoutPend) == 0 {
		return
	}
	for _, d := range w.xoutPend {
		b := w.xout[d]
		w.xout[d] = nil
		select {
		case w.e.workers[d].mailbox <- xbarMsg{batch: b}:
		case <-w.e.abort:
			return
		}
	}
	w.xoutPend = w.xoutPend[:0]
}

// process advances the packet as far as it can go on this worker: stateless
// stages execute inline; a visit stage either steers the packet to the
// owning worker (D3), parks it until it holds every head ticket (D4), or
// executes. Reaching the last stage egresses the packet.
func (w *worker) process(p *packet) {
	e := w.e
	w.processedN.Add(1)
	if e.trc != nil {
		// Busy-time accounting rides the tracing switch: two time.Now
		// calls per process invocation are only paid when an operator
		// turned introspection on.
		t0 := time.Now()
		defer func() { w.busyNs.Add(time.Since(t0).Nanoseconds()) }()
	}
	h := p.h
	regs := h.wregs[w.id]
	for p.nextStage < len(h.prog.Stages) {
		var v *visit
		if p.vi < len(p.visits) && p.visits[p.vi].stage == p.nextStage {
			v = &p.visits[p.vi]
		}
		if v == nil {
			// No ticket here: any stateful instruction in this stage has a
			// (resolution-time) false predicate, so executing the stage
			// touches only the packet environment and read-only tables.
			if h.bc != nil {
				if err := h.wvms[w.id].ExecStage(&h.bc.Stages[p.nextStage], p.env, regs); err != nil {
					panic("dataplane: " + err.Error()) // compiled code is never corrupt
				}
			} else {
				ir.ExecStage(&h.prog.Stages[p.nextStage], p.env, regs)
			}
			p.nextStage++
			continue
		}
		if v.pipe != w.id {
			e.steers.Add(1)
			e.met.Steers.Inc()
			if p.span != nil {
				// Close the exec segment before the handoff; the receiving
				// worker stamps the crossbar hop (which now includes any
				// time the packet waits in the coalescing buffer).
				p.span.Advance(StageExec, w.id)
			}
			w.bufferSteer(v.pipe, p)
			return
		}
		if !w.eligible(p, v) {
			w.parked[p.id] = p
			w.parkedN.Add(1)
			e.parks.Add(1)
			e.met.Parks.Inc()
			if p.span != nil {
				// Close the exec segment; the promotion stamp turns the
				// parked time into a ticket_wait segment.
				p.span.Advance(StageExec, w.id)
			}
			return
		}
		if f := e.testBeforeExec; f != nil {
			f(p)
		}
		w.execVisit(p, v)
		p.vi++
		p.nextStage++
	}
	w.egress(p)
}

// observe is the access observer execVisit attaches to stage execution
// (via the once-bound w.obs): it validates that every concrete register
// access was covered by a ticket and records which indices each slot
// ticket actually covered. Context arrives through obsP/obsV/obsT.
func (w *worker) observe(reg int, idx int64, write bool) {
	p, v, touched := w.obsP, w.obsV, w.obsT
	ci := banzai.ClampIndex(int(idx), p.h.prog.Regs[reg].Size)
	dk := [2]int{reg, ci}
	if w.seen[dk] {
		return
	}
	w.seen[dk] = true
	ri := -1
	for i, ref := range v.slots {
		if ref.key.reg == reg && (ref.key.idx == ci || ref.key.idx < 0) {
			ri = i
			break
		}
	}
	if ri < 0 {
		panic(fmt.Sprintf("dataplane: packet %d accessed r%d[%d] in stage %d without a ticket",
			p.id, reg, ci, v.stage))
	}
	touched[ri] = append(touched[ri], ci)
}

// eligible reports whether p holds the head ticket of every slot of the
// visit. Safe only on the owning worker (w.id == v.pipe).
func (w *worker) eligible(p *packet, v *visit) bool {
	for _, ref := range v.slots {
		if !ref.st.headIs(p.id) {
			return false
		}
	}
	return true
}

// execVisit executes the visit's stage with the access observer attached,
// recording which concrete register indices each slot ticket actually
// covered (predicates evaluate live, so a conservative ticket may cover
// nothing — a wasted visit). It then retires one ticket per slot and
// promotes any parked packet that now holds a head ticket.
func (w *worker) execVisit(p *packet, v *visit) {
	e := w.e
	h := p.h
	clear(w.seen)
	for len(w.touched) < len(v.slots) {
		w.touched = append(w.touched, nil)
	}
	touched := w.touched[:len(v.slots)]
	for i := range touched {
		touched[i] = touched[i][:0]
	}
	w.obsP, w.obsV, w.obsT = p, v, touched
	regs := h.wregs[w.id]
	if h.bc != nil {
		if err := h.wvms[w.id].ExecStageObserved(&h.bc.Stages[v.stage], p.env, regs, w.obs); err != nil {
			panic("dataplane: " + err.Error())
		}
	} else {
		ir.ExecStageObserved(&h.prog.Stages[v.stage], p.env, regs, w.obs)
	}
	w.obsP, w.obsV, w.obsT = nil, nil, nil
	record := e.cfg.RecordAccessOrder
	for i, ref := range v.slots {
		if len(touched[i]) == 0 {
			e.wasted.Add(1)
			e.met.Wasted.Inc()
		}
		next := ref.st.pop(touched[i], p.id, record)
		if next >= 0 {
			if q, ok := w.parked[next]; ok {
				delete(w.parked, next)
				w.parkedN.Add(-1)
				w.runnable = append(w.runnable, q)
			}
		}
	}
}

// egress completes the packet: record outputs and egress order (both into
// worker-private shards — no lock on the egress path), notify the OnEgress
// hook, recycle the packet, release the window token, and close the
// engine's done gate on the last packet.
func (w *worker) egress(p *packet) {
	e := w.e
	if p.span != nil {
		// Close the final exec segment; everything from here to the
		// finish — output recording and the OnEgress hook (the TCP ack
		// enqueue on the server path) — is the egress segment.
		p.span.Advance(StageExec, w.id)
	}
	if e.outs != nil {
		e.outs[p.id] = append([]int64(nil), p.env.Fields...)
	} else if w.outs != nil {
		// Streaming mode: worker-private map, merged by Engine.Outputs.
		w.outs[p.id] = append([]int64(nil), p.env.Fields...)
	}
	if e.cfg.RecordEgressOrder {
		w.egRecs = append(w.egRecs, egRec{seq: e.egSeq.Add(1), id: p.id})
	}
	w.lat.Add(float64(time.Since(p.start).Microseconds()))
	w.egressedN.Add(1)
	e.met.Egressed.Inc()
	if f := e.cfg.OnEgress; f != nil {
		f(p.id)
	}
	if p.span != nil {
		p.span.Advance(StageEgress, w.id)
		e.trc.finish(p.span)
		p.span = nil // the tracer owns (and recycles) the span now
	}
	// Every observer — outputs copy, access log (written at pop), egress
	// record, span, OnEgress — is done with the packet: recycle it, then
	// return the quota and window tokens so the admitter can only reuse the
	// id slot after the packet is safely on the free list.
	h := p.h
	h.putPacket(p)
	if h.quota != nil {
		h.quota.release(1)
	}
	h.completed.Add(1)
	e.releaseWindow()
	c := e.completed.Add(1)
	if t := e.total.Load(); t >= 0 && c == t {
		e.closeDone()
	}
}
