package domino

import (
	"fmt"
	"strings"
)

// File is a parsed Domino program: one packet struct, zero or more global
// register arrays, and one packet-processing function.
type File struct {
	PacketName string   // struct name, normally "Packet"
	FieldNames []string // declaration order
	Regs       []RegDecl
	Tables     []TableDecl
	FuncName   string
	ParamName  string // the packet parameter, e.g. "p"
	Body       []Stmt
}

// RegDecl declares one global register array: int name[size] = {init...}.
type RegDecl struct {
	Name string
	Size int
	Init []int64
	Pos  Pos
}

// TableDecl declares one control-plane match table:
// table name(keys) [= default];
type TableDecl struct {
	Name    string
	Keys    int
	Default int64
	Pos     Pos
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	String() string
}

// AssignStmt is `lvalue = expr;`. The lvalue is either a packet field or a
// register element.
type AssignStmt struct {
	LHS Expr // *FieldExpr or *RegExpr
	RHS Expr
	Pos Pos
}

// IfStmt is `if (cond) {...} [else {...}]`.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}

// String renders the assignment.
func (s *AssignStmt) String() string {
	return fmt.Sprintf("%s = %s;", s.LHS, s.RHS)
}

// String renders the conditional.
func (s *IfStmt) String() string {
	out := fmt.Sprintf("if (%s) { %s }", s.Cond, joinStmts(s.Then))
	if len(s.Else) > 0 {
		out += fmt.Sprintf(" else { %s }", joinStmts(s.Else))
	}
	return out
}

func joinStmts(ss []Stmt) string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	String() string
}

// NumExpr is an integer literal.
type NumExpr struct {
	Val int64
	Pos Pos
}

// FieldExpr is a packet field reference `p.name`.
type FieldExpr struct {
	Name string
	Pos  Pos
}

// RegExpr is a register element reference `reg[idx]`.
type RegExpr struct {
	Name string
	Idx  Expr
	Pos  Pos
}

// UnaryExpr is `!x` or `-x`.
type UnaryExpr struct {
	Op  TokKind // TokBang or TokMinus
	X   Expr
	Pos Pos
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   TokKind
	L, R Expr
	Pos  Pos
}

// CondExpr is the ternary `c ? t : f`.
type CondExpr struct {
	Cond, Then, Else Expr
	Pos              Pos
}

// CallExpr is a builtin call: hash2, hash3, max, min.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*NumExpr) exprNode()   {}
func (*FieldExpr) exprNode() {}
func (*RegExpr) exprNode()   {}
func (*UnaryExpr) exprNode() {}
func (*BinExpr) exprNode()   {}
func (*CondExpr) exprNode()  {}
func (*CallExpr) exprNode()  {}

// String renders the literal.
func (e *NumExpr) String() string { return fmt.Sprintf("%d", e.Val) }

// String renders the field reference.
func (e *FieldExpr) String() string { return "p." + e.Name }

// String renders the register reference.
func (e *RegExpr) String() string { return fmt.Sprintf("%s[%s]", e.Name, e.Idx) }

// String renders the unary expression.
func (e *UnaryExpr) String() string { return e.Op.String() + e.X.String() }

// String renders the binary expression.
func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// String renders the ternary expression.
func (e *CondExpr) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", e.Cond, e.Then, e.Else)
}

// String renders the call expression.
func (e *CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

// WalkExpr visits e and all sub-expressions in pre-order.
func WalkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *RegExpr:
		WalkExpr(x.Idx, visit)
	case *UnaryExpr:
		WalkExpr(x.X, visit)
	case *BinExpr:
		WalkExpr(x.L, visit)
		WalkExpr(x.R, visit)
	case *CondExpr:
		WalkExpr(x.Cond, visit)
		WalkExpr(x.Then, visit)
		WalkExpr(x.Else, visit)
	case *CallExpr:
		for _, a := range x.Args {
			WalkExpr(a, visit)
		}
	}
}

// WalkStmts visits every statement (recursing into if-branches) in order.
func WalkStmts(ss []Stmt, visit func(Stmt)) {
	for _, s := range ss {
		visit(s)
		if ifs, ok := s.(*IfStmt); ok {
			WalkStmts(ifs.Then, visit)
			WalkStmts(ifs.Else, visit)
		}
	}
}

// ExprUsesReg reports whether e reads any register element.
func ExprUsesReg(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if _, ok := x.(*RegExpr); ok {
			found = true
		}
	})
	return found
}
