// Package domino implements a frontend for the subset of the Domino
// packet-processing language used by the paper: a single struct Packet
// declaration, global register arrays, and one packet-processing function
// over C-like integer expressions (ternary, if/else, builtin hashes).
//
// The subset covers the paper's running example (Figure 3), all four
// evaluated applications (§4.4), and the published Domino example
// programs' style. Grammar:
//
//	program     = { declaration } ;
//	declaration = structDecl | regDecl | tableDecl | funcDecl ;
//
//	structDecl  = "struct" IDENT "{" { "int" IDENT ";" } "}" ";" ;
//	regDecl     = "int" IDENT "[" NUMBER "]" [ "=" "{" init { "," init } "}" ] ";" ;
//	tableDecl   = "table" IDENT "(" NUMBER ")" [ "=" init ] ";" ;
//	init        = [ "-" ] NUMBER ;
//	funcDecl    = "void" IDENT "(" "struct" IDENT IDENT ")" block ;
//
//	block       = "{" { statement } "}" ;
//	statement   = assign | ifStmt ;
//	assign      = lvalue "=" expr ";" ;
//	lvalue      = IDENT "." IDENT            (packet field)
//	            | IDENT "[" expr "]" ;       (register element)
//	ifStmt      = "if" "(" expr ")" branch [ "else" ( ifStmt | branch ) ] ;
//	branch      = block | statement ;
//
//	expr        = ternary ;
//	ternary     = or [ "?" expr ":" ternary ] ;
//	or .. mult  = C-style binary operator precedence:
//	              "||"  "&&"  "|"  "^"  "&"  "=="/"!="
//	              "<"/"<="/">"/">="  "<<"/">>"  "+"/"-"  "*"/"/"/"%"
//	unary       = { "!" | "-" } primary ;
//	primary     = NUMBER | "(" expr ")"
//	            | IDENT "." IDENT            (packet field)
//	            | IDENT "[" expr "]"         (register element)
//	            | IDENT "(" [ expr { "," expr } ] ")" ;   (builtin or table)
//
// Builtins: hash2(a,b), hash3(a,b,c) — deterministic non-negative 63-bit
// hashes — and max(a,b), min(a,b).
//
// Match tables (§2.1 of the paper): `table route(2) = 7;` declares an
// exact-match table over two keys with miss value 7. Tables are populated
// by the control plane before the run (ir.Program.InstallTable) and are
// read-only in the data plane; `route(p.dst, p.vlan)` matches and yields
// the installed value or the default.
//
// Lexical details: //-line and /* */ block comments; decimal and 0x hex
// integer literals; #define NAME VALUE object macros are substituted
// textually before lexing (other # lines are stripped).
//
// Semantics notes:
//   - all values are 64-bit signed integers; division and modulo by zero
//     yield zero; shift amounts clamp to [0, 63];
//   - && and || do not short-circuit (Banzai atoms evaluate both sides);
//   - register indices are reduced modulo the array size (non-negative),
//     so out-of-range accesses wrap rather than trap;
//   - a register array declared with a single initializer {v} fills every
//     entry with v (Domino's fill rule); longer lists leave the tail zero.
package domino
