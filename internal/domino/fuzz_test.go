package domino

import (
	"strings"
	"testing"
)

// FuzzParse: the parser must never panic, whatever the input; valid parses
// must re-validate under the semantic checker (Parse runs it), and the
// original sources of this repository's programs seed the corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		fig3Program,
		`struct Packet { int x; }; void f (struct Packet p) { p.x = 1; }`,
		`struct Packet { int a; int b; };
int r [4] = {1,2};
table t (2) = -1;
void f (struct Packet p) {
    if (p.a > 0) { r[p.a % 4] = t(p.a, p.b); } else { p.b = hash2(p.a, 3) % 7; }
}`,
		`#define N 8
struct Packet { int x; }; int r[N]; void f (struct Packet p) { r[p.x % N] = p.x; }`,
		`/* comment */ struct Packet { int x; }; // trailing`,
		`struct Packet { int x; }; void f (struct Packet p) { p.x = ((1 ? 2 : 3) << 4) | -5; }`,
		"struct Packet { int x; }; \x00\x01\x02",
		strings.Repeat("(", 50),
		// Shapes the differential-fuzzing generator (internal/fuzz) emits,
		// so parser fuzzing and differential fuzzing share seed coverage:
		// multi-register skeleton with guarded read-modify-write and else.
		`struct Packet { int f0; int f1; int f2; };
int r0 [64] = {3};
int r1 [4] = {0, 1};
table t0 (2) = 1;
void f (struct Packet p) {
    r0[p.f0 % 64] = r0[p.f0 % 64] + 1;
    p.f2 = r0[p.f0 % 64];
    if ((p.f1 < 9) || (p.f2 != 0)) {
        r1[p.f1 % 4] = max(r1[p.f1 % 4], p.f2);
        p.f0 = r1[p.f1 % 4];
    } else {
        r1[p.f1 % 4] = (p.f0 + 3);
    }
}`,
		// Every expression kind the generator draws from: ternary, hash2,
		// max/min, table call, the full binop set with clamped % and >>.
		`struct Packet { int f0; int f1; };
int r0 [16] = {0};
table t0 (2) = 1;
void f (struct Packet p) {
    p.f0 = (p.f1 > 5 ? hash2(p.f0, 7) : min(p.f1, 63));
    p.f1 = ((p.f0 * 3) & (p.f1 | 12)) ^ ((p.f0 >> 4) % 13);
    p.f0 = t0(p.f0, p.f1) - max(p.f0, 2);
    r0[(p.f0 + p.f1) % 16] = (r0[(p.f0 + p.f1) % 16] > 40 ? 0 : r0[(p.f0 + p.f1) % 16] + 1);
}`,
		// Blind write, constant index, saturating compare-and-reset.
		`struct Packet { int f0; };
int r0 [2] = {5, 5};
void f (struct Packet p) {
    r0[1] = (p.f0 + 60);
    r0[p.f0 % 2] = (r0[p.f0 % 2] > p.f0 ? 0 : r0[p.f0 % 2] + 1);
}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Deeply nested expressions legitimately exhaust the
		// recursive-descent stack; cap input size like any realistic
		// program source.
		if len(src) > 4096 {
			t.Skip()
		}
		file, err := Parse(src)
		if err != nil {
			return
		}
		// A successful parse must produce a structurally sound file.
		if file.PacketName == "" || file.FuncName == "" {
			t.Fatalf("parse accepted a file without required declarations: %+v", file)
		}
		for _, r := range file.Regs {
			if r.Size <= 0 || len(r.Init) > r.Size {
				t.Fatalf("bad register decl accepted: %+v", r)
			}
		}
		for _, tb := range file.Tables {
			if tb.Keys < 1 || tb.Keys > 3 {
				t.Fatalf("bad table decl accepted: %+v", tb)
			}
		}
	})
}

// FuzzLexer: tokenization never panics and always terminates with EOF.
func FuzzLexer(f *testing.F) {
	f.Add("int a [4] = {1, -2}; << >> <= >= == != && || 0x1f /* x */ // y")
	f.Add("@#$%^&*")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip()
		}
		toks, err := Tokenize(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("token stream does not end with EOF")
		}
	})
}
