// External test package: it imports internal/fuzz, which depends on the
// compiler and hence on this parser, so an in-package test would be an
// import cycle.
package domino_test

import (
	"strings"
	"testing"

	"mp5/internal/domino"
	"mp5/internal/fuzz"
)

// TestGeneratedProgramsParse couples the parser to the differential-fuzzing
// program generator: everything the generator emits must parse, and across
// a modest seed sweep the corpus must exercise every statement and
// expression kind the generator can produce — if a new construct is added
// to the generator without parser support (or vice versa), this fails.
func TestGeneratedProgramsParse(t *testing.T) {
	features := map[string]bool{
		"if (":    false, // guarded read-modify-write
		"else":    false,
		"?":       false, // ternary
		"hash2(":  false,
		"max(":    false,
		"min(":    false,
		"t0 (2)":  false, // table declaration
		"%":       false, // modular indices
		">>":      false,
		"&&":      false,
		"||":      false,
		"int r1 ": false, // multi-register programs
	}
	for seed := int64(0); seed < 300; seed++ {
		src := fuzz.Generate(seed, int(seed%8)+1)
		file, err := domino.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, src)
		}
		if len(file.Body) == 0 {
			t.Fatalf("seed %d: generated program parsed to an empty body", seed)
		}
		for f := range features {
			if strings.Contains(src, f) {
				features[f] = true
			}
		}
	}
	for f, seen := range features {
		if !seen {
			t.Errorf("300 generated programs never used %q; generator or seed sweep regressed", f)
		}
	}
}
