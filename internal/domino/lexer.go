package domino

import (
	"strconv"
	"strings"
)

// Lexer tokenizes Domino source. It supports //-line and /* */ block
// comments, decimal and hexadecimal integer literals, and the operator set
// declared in token.go.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errAt(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := l.off
		base := 10
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			base = 16
			for l.off < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		digits := text
		if base == 16 {
			digits = text[2:]
			if digits == "" {
				return Token{}, errAt(pos, "malformed hex literal %q", text)
			}
		}
		v, err := strconv.ParseInt(digits, base, 64)
		if err != nil {
			return Token{}, errAt(pos, "malformed integer literal %q", text)
		}
		return Token{Kind: TokNumber, Text: text, Val: v, Pos: pos}, nil
	}
	// operators and punctuation
	two := ""
	if l.off+1 < len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	twoKinds := map[string]TokKind{
		"<<": TokShl, ">>": TokShr, "==": TokEq, "!=": TokNe,
		"<=": TokLe, ">=": TokGe, "&&": TokAndAnd, "||": TokOrOr,
	}
	if k, ok := twoKinds[two]; ok {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: two, Pos: pos}, nil
	}
	oneKinds := map[byte]TokKind{
		'{': TokLBrace, '}': TokRBrace, '(': TokLParen, ')': TokRParen,
		'[': TokLBrack, ']': TokRBrack, ';': TokSemi, ',': TokComma,
		'.': TokDot, '=': TokAssign, '?': TokQuest, ':': TokColon,
		'+': TokPlus, '-': TokMinus, '*': TokStar, '/': TokSlash,
		'%': TokPercent, '&': TokAmp, '|': TokPipe, '^': TokCaret,
		'<': TokLt, '>': TokGt, '!': TokBang,
	}
	if k, ok := oneKinds[c]; ok {
		l.advance()
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	return Token{}, errAt(pos, "unexpected character %q", string(c))
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Tokenize scans the whole input and returns all tokens including a final
// EOF token.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

// stripPreprocessor removes #define-style lines, substituting simple object
// macros (NAME VALUE) into the source. Domino examples use #define for
// constants such as thresholds and array sizes.
func stripPreprocessor(src string) string {
	lines := strings.Split(src, "\n")
	macros := map[string]string{}
	var kept []string
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#define") {
			parts := strings.Fields(trimmed)
			if len(parts) >= 3 {
				macros[parts[1]] = strings.Join(parts[2:], " ")
			}
			kept = append(kept, "") // preserve line numbering
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			kept = append(kept, "")
			continue
		}
		kept = append(kept, line)
	}
	out := strings.Join(kept, "\n")
	// Longest-name-first substitution avoids prefix collisions.
	names := make([]string, 0, len(macros))
	for name := range macros {
		names = append(names, name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if len(names[j]) > len(names[i]) {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		out = replaceWord(out, name, macros[name])
	}
	return out
}

// replaceWord replaces whole-identifier occurrences of name with repl.
func replaceWord(src, name, repl string) string {
	var b strings.Builder
	for i := 0; i < len(src); {
		j := strings.Index(src[i:], name)
		if j < 0 {
			b.WriteString(src[i:])
			break
		}
		j += i
		before := byte(0)
		if j > 0 {
			before = src[j-1]
		}
		after := byte(0)
		if j+len(name) < len(src) {
			after = src[j+len(name)]
		}
		if !isIdentCont(before) && !isIdentCont(after) {
			b.WriteString(src[i:j])
			b.WriteString(repl)
		} else {
			b.WriteString(src[i : j+len(name)])
		}
		i = j + len(name)
	}
	return b.String()
}
