package domino

import "fmt"

// Builtins maps builtin function names to their arity.
var Builtins = map[string]int{
	"hash2": 2,
	"hash3": 3,
	"max":   2,
	"min":   2,
}

// Parser is a recursive-descent parser for the Domino subset.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses Domino source into a File. #define object macros are
// expanded before lexing.
func Parse(src string) (*File, error) {
	toks, err := Tokenize(stripPreprocessor(src))
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	f, err := p.parseFile()
	if err != nil {
		return nil, err
	}
	if err := checkSemantics(f); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errAt(t.Pos, "expected %s, found %s %q", k, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for p.cur().Kind != TokEOF {
		switch p.cur().Kind {
		case TokStruct:
			if f.PacketName != "" {
				return nil, errAt(p.cur().Pos, "duplicate struct declaration")
			}
			if err := p.parseStruct(f); err != nil {
				return nil, err
			}
		case TokInt:
			if err := p.parseRegDecl(f); err != nil {
				return nil, err
			}
		case TokTable:
			if err := p.parseTableDecl(f); err != nil {
				return nil, err
			}
		case TokVoid:
			if f.FuncName != "" {
				return nil, errAt(p.cur().Pos, "duplicate function declaration")
			}
			if err := p.parseFunc(f); err != nil {
				return nil, err
			}
		default:
			return nil, errAt(p.cur().Pos, "expected declaration, found %s %q", p.cur().Kind, p.cur().Text)
		}
	}
	if f.PacketName == "" {
		return nil, fmt.Errorf("domino: missing struct Packet declaration")
	}
	if f.FuncName == "" {
		return nil, fmt.Errorf("domino: missing packet-processing function")
	}
	return f, nil
}

// parseStruct parses `struct Name { int f1; int f2; ... };`.
func (p *Parser) parseStruct(f *File) error {
	p.next() // struct
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	f.PacketName = name.Text
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for !p.accept(TokRBrace) {
		if _, err := p.expect(TokInt); err != nil {
			return err
		}
		fld, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		f.FieldNames = append(f.FieldNames, fld.Text)
		if _, err := p.expect(TokSemi); err != nil {
			return err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	return nil
}

// parseRegDecl parses `int name[size] = {v, v, ...};` or `int name[size];`.
func (p *Parser) parseRegDecl(f *File) error {
	p.next() // int
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(TokLBrack); err != nil {
		return err
	}
	sizeTok, err := p.expect(TokNumber)
	if err != nil {
		return err
	}
	if sizeTok.Val <= 0 {
		return errAt(sizeTok.Pos, "register array %s must have positive size", name.Text)
	}
	if _, err := p.expect(TokRBrack); err != nil {
		return err
	}
	decl := RegDecl{Name: name.Text, Size: int(sizeTok.Val), Pos: name.Pos}
	if p.accept(TokAssign) {
		if _, err := p.expect(TokLBrace); err != nil {
			return err
		}
		for {
			neg := p.accept(TokMinus)
			v, err := p.expect(TokNumber)
			if err != nil {
				return err
			}
			val := v.Val
			if neg {
				val = -val
			}
			decl.Init = append(decl.Init, val)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return err
		}
		if len(decl.Init) > decl.Size {
			return errAt(name.Pos, "register array %s: %d initializers for size %d",
				name.Text, len(decl.Init), decl.Size)
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	f.Regs = append(f.Regs, decl)
	return nil
}

// parseTableDecl parses `table name(keys) [= default];` — an exact-match
// table with 1–3 match keys, populated by the control plane before the
// run, producing `default` on a miss.
func (p *Parser) parseTableDecl(f *File) error {
	p.next() // table
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	keys, err := p.expect(TokNumber)
	if err != nil {
		return err
	}
	if keys.Val < 1 || keys.Val > 3 {
		return errAt(keys.Pos, "table %s: key count must be 1–3, got %d", name.Text, keys.Val)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	decl := TableDecl{Name: name.Text, Keys: int(keys.Val), Pos: name.Pos}
	if p.accept(TokAssign) {
		neg := p.accept(TokMinus)
		v, err := p.expect(TokNumber)
		if err != nil {
			return err
		}
		decl.Default = v.Val
		if neg {
			decl.Default = -v.Val
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	f.Tables = append(f.Tables, decl)
	return nil
}

// parseFunc parses `void name(struct Packet p) { stmts }`.
func (p *Parser) parseFunc(f *File) error {
	p.next() // void
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	f.FuncName = name.Text
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	if _, err := p.expect(TokStruct); err != nil {
		return err
	}
	st, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if f.PacketName == "" {
		return errAt(st.Pos, "missing struct declaration before function %s", f.FuncName)
	}
	if st.Text != f.PacketName {
		return errAt(st.Pos, "parameter type struct %s does not match struct %s", st.Text, f.PacketName)
	}
	param, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	f.ParamName = param.Text
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	f.Body = body
	return nil
}

func (p *Parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.accept(TokRBrace) {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	if p.cur().Kind == TokIf {
		return p.parseIf()
	}
	pos := p.cur().Pos
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	switch lhs.(type) {
	case *FieldExpr, *RegExpr:
	default:
		return nil, errAt(pos, "assignment target must be a packet field or register element")
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// Domino examples sometimes omit the trailing semicolon on the last
	// statement of a block; require it strictly for clarity.
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lhs, RHS: rhs, Pos: pos}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	var then []Stmt
	if p.cur().Kind == TokLBrace {
		then, err = p.parseBlock()
	} else {
		var s Stmt
		s, err = p.parseStmt()
		then = []Stmt{s}
	}
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept(TokElse) {
		if p.cur().Kind == TokIf {
			s, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			els = []Stmt{s}
		} else if p.cur().Kind == TokLBrace {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		} else {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			els = []Stmt{s}
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}, nil
}

// Expression grammar (precedence climbing, lowest first):
//
//	ternary:  or ( '?' expr ':' ternary )?
//	or:       and ( '||' and )*
//	and:      bitor ( '&&' bitor )*
//	bitor:    bitxor ( '|' bitxor )*
//	bitxor:   bitand ( '^' bitand )*
//	bitand:   equality ( '&' equality )*
//	equality: relational ( ('=='|'!=') relational )*
//	relational: shift ( ('<'|'<='|'>'|'>=') shift )*
//	shift:    additive ( ('<<'|'>>') additive )*
//	additive: multiplicative ( ('+'|'-') multiplicative )*
//	multiplicative: unary ( ('*'|'/'|'%') unary )*
//	unary:    ('!'|'-')* primary
func (p *Parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(TokQuest) {
		return cond, nil
	}
	pos := p.cur().Pos
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els, Pos: pos}, nil
}

// binLevels orders binary operators from lowest to highest precedence.
var binLevels = [][]TokKind{
	{TokOrOr},
	{TokAndAnd},
	{TokPipe},
	{TokCaret},
	{TokAmp},
	{TokEq, TokNe},
	{TokLt, TokLe, TokGt, TokGe},
	{TokShl, TokShr},
	{TokPlus, TokMinus},
	{TokStar, TokSlash, TokPercent},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, k := range binLevels[level] {
			if p.cur().Kind == k {
				pos := p.next().Pos
				right, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				left = &BinExpr{Op: k, L: left, R: right, Pos: pos}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokBang:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: TokBang, X: x, Pos: pos}, nil
	case TokMinus:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := x.(*NumExpr); ok {
			return &NumExpr{Val: -n.Val, Pos: pos}, nil
		}
		return &UnaryExpr{Op: TokMinus, X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumExpr{Val: t.Val, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.next()
		switch p.cur().Kind {
		case TokDot:
			p.next()
			fld, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return &FieldExpr{Name: fld.Text, Pos: t.Pos}, nil
		case TokLBrack:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBrack); err != nil {
				return nil, err
			}
			return &RegExpr{Name: t.Text, Idx: idx, Pos: t.Pos}, nil
		case TokLParen:
			p.next()
			var args []Expr
			if p.cur().Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.Text, Args: args, Pos: t.Pos}, nil
		default:
			return nil, errAt(t.Pos, "bare identifier %q: expected p.field, reg[idx], or builtin call", t.Text)
		}
	}
	return nil, errAt(t.Pos, "expected expression, found %s %q", t.Kind, t.Text)
}

// checkSemantics validates name resolution and builtin arities.
func checkSemantics(f *File) error {
	fields := map[string]bool{}
	for _, name := range f.FieldNames {
		if fields[name] {
			return fmt.Errorf("domino: duplicate packet field %q", name)
		}
		fields[name] = true
	}
	regs := map[string]bool{}
	for _, r := range f.Regs {
		if regs[r.Name] {
			return errAt(r.Pos, "duplicate register array %q", r.Name)
		}
		if fields[r.Name] {
			return errAt(r.Pos, "register array %q collides with a packet field", r.Name)
		}
		regs[r.Name] = true
	}
	tables := map[string]int{}
	for _, tb := range f.Tables {
		if _, dup := tables[tb.Name]; dup {
			return errAt(tb.Pos, "duplicate table %q", tb.Name)
		}
		if regs[tb.Name] || fields[tb.Name] {
			return errAt(tb.Pos, "table %q collides with another declaration", tb.Name)
		}
		if _, isBuiltin := Builtins[tb.Name]; isBuiltin {
			return errAt(tb.Pos, "table %q shadows a builtin", tb.Name)
		}
		tables[tb.Name] = tb.Keys
	}
	var err error
	check := func(e Expr) {
		if err != nil {
			return
		}
		switch x := e.(type) {
		case *FieldExpr:
			if !fields[x.Name] {
				err = errAt(x.Pos, "unknown packet field %q", x.Name)
			}
		case *RegExpr:
			if !regs[x.Name] {
				err = errAt(x.Pos, "unknown register array %q", x.Name)
			}
		case *CallExpr:
			if keys, isTable := tables[x.Name]; isTable {
				if len(x.Args) != keys {
					err = errAt(x.Pos, "table %s matches %d keys, got %d", x.Name, keys, len(x.Args))
				}
				break
			}
			arity, ok := Builtins[x.Name]
			if !ok {
				err = errAt(x.Pos, "unknown builtin or table %q", x.Name)
			} else if len(x.Args) != arity {
				err = errAt(x.Pos, "builtin %s expects %d arguments, got %d", x.Name, arity, len(x.Args))
			}
		}
	}
	WalkStmts(f.Body, func(s Stmt) {
		switch st := s.(type) {
		case *AssignStmt:
			WalkExpr(st.LHS, check)
			WalkExpr(st.RHS, check)
		case *IfStmt:
			WalkExpr(st.Cond, check)
		}
	})
	return err
}
