package domino

import (
	"strings"
	"testing"
)

const fig3Program = `
struct Packet {
    int h1;
    int h2;
    int h3;
    int val;
    int mux;
};

int reg1 [4] = {2,4,8,16};
int reg2 [4] = {1,3,5,7};
int reg3 [4] = {0};

void func (struct Packet p) {
    p.val = (p.mux == 1)
        ? reg1[p.h1%4]
        : reg2[p.h2%4];

    reg3[p.h3%4] = (p.mux == 1)
        ? reg3[p.h3%4] * p.val
        : reg3[p.h3%4] + p.val;
}
`

func TestParseFig3(t *testing.T) {
	f, err := Parse(fig3Program)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.PacketName != "Packet" {
		t.Errorf("PacketName = %q, want Packet", f.PacketName)
	}
	wantFields := []string{"h1", "h2", "h3", "val", "mux"}
	if len(f.FieldNames) != len(wantFields) {
		t.Fatalf("fields = %v, want %v", f.FieldNames, wantFields)
	}
	for i, w := range wantFields {
		if f.FieldNames[i] != w {
			t.Errorf("field %d = %q, want %q", i, f.FieldNames[i], w)
		}
	}
	if len(f.Regs) != 3 {
		t.Fatalf("regs = %d, want 3", len(f.Regs))
	}
	if f.Regs[0].Name != "reg1" || f.Regs[0].Size != 4 {
		t.Errorf("reg1 = %+v", f.Regs[0])
	}
	if got := f.Regs[0].Init; len(got) != 4 || got[0] != 2 || got[3] != 16 {
		t.Errorf("reg1 init = %v", got)
	}
	if len(f.Regs[2].Init) != 1 || f.Regs[2].Init[0] != 0 {
		t.Errorf("reg3 init = %v", f.Regs[2].Init)
	}
	if f.FuncName != "func" || f.ParamName != "p" {
		t.Errorf("func = %q param = %q", f.FuncName, f.ParamName)
	}
	if len(f.Body) != 2 {
		t.Fatalf("body has %d statements, want 2", len(f.Body))
	}
}

func TestParseIfElse(t *testing.T) {
	src := `
struct Packet { int a; int b; };
int r[8] = {0};
void f(struct Packet p) {
    if (p.a > 3) {
        r[p.a % 8] = p.b;
    } else if (p.a == 0) {
        p.b = 1;
    } else {
        p.b = 2;
    }
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ifs, ok := f.Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("body[0] is %T, want *IfStmt", f.Body[0])
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Fatalf("then=%d else=%d", len(ifs.Then), len(ifs.Else))
	}
	inner, ok := ifs.Else[0].(*IfStmt)
	if !ok {
		t.Fatalf("else[0] is %T, want *IfStmt (else-if chain)", ifs.Else[0])
	}
	if len(inner.Else) != 1 {
		t.Fatalf("inner else = %d statements", len(inner.Else))
	}
}

func TestParseDefines(t *testing.T) {
	src := `
#define SIZE 16
#define THRESH 100
struct Packet { int x; };
int tbl[SIZE] = {0};
void f(struct Packet p) {
    if (p.x > THRESH) { tbl[p.x % SIZE] = p.x; }
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Regs[0].Size != 16 {
		t.Errorf("size = %d, want 16 (macro expansion)", f.Regs[0].Size)
	}
}

func TestParseBuiltins(t *testing.T) {
	src := `
struct Packet { int a; int b; int c; int out; };
void f(struct Packet p) {
    p.out = hash3(p.a, p.b, p.c) % 128;
    p.c = max(p.a, min(p.b, 7));
    p.b = hash2(p.a, 3);
}`
	if _, err := Parse(src); err != nil {
		t.Fatalf("Parse: %v", err)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `
struct Packet { int a; int b; int o; };
void f(struct Packet p) {
    p.o = p.a + p.b * 2 == p.a << 1 ? 1 : 0;
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	as := f.Body[0].(*AssignStmt)
	cond, ok := as.RHS.(*CondExpr)
	if !ok {
		t.Fatalf("rhs is %T, want ternary at lowest precedence", as.RHS)
	}
	eq, ok := cond.Cond.(*BinExpr)
	if !ok || eq.Op != TokEq {
		t.Fatalf("cond is %v, want ==", cond.Cond)
	}
	add, ok := eq.L.(*BinExpr)
	if !ok || add.Op != TokPlus {
		t.Fatalf("lhs of == is %v, want +", eq.L)
	}
	mul, ok := add.R.(*BinExpr)
	if !ok || mul.Op != TokStar {
		t.Fatalf("rhs of + is %v, want *", add.R)
	}
	shl, ok := eq.R.(*BinExpr)
	if !ok || shl.Op != TokShl {
		t.Fatalf("rhs of == is %v, want <<", eq.R)
	}
}

func TestParseHexAndComments(t *testing.T) {
	src := `
// line comment
struct Packet { int x; }; /* block
comment */
int r[2] = {0xff, -3};
void f(struct Packet p) { p.x = 0x10; }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Regs[0].Init[0] != 255 || f.Regs[0].Init[1] != -3 {
		t.Errorf("init = %v, want [255 -3]", f.Regs[0].Init)
	}
	if f.Body[0].(*AssignStmt).RHS.(*NumExpr).Val != 16 {
		t.Errorf("hex literal parsed wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing struct", `void f(struct Packet p) { p.x = 1; }`, "missing struct"},
		{"missing func", `struct Packet { int x; };`, "missing packet-processing function"},
		{"unknown field", `struct Packet { int x; }; void f(struct Packet p) { p.y = 1; }`, "unknown packet field"},
		{"unknown reg", `struct Packet { int x; }; void f(struct Packet p) { r[0] = 1; }`, "unknown register"},
		{"unknown builtin", `struct Packet { int x; }; void f(struct Packet p) { p.x = foo(1); }`, "unknown builtin"},
		{"bad arity", `struct Packet { int x; }; void f(struct Packet p) { p.x = hash2(1); }`, "expects 2 arguments"},
		{"dup field", `struct Packet { int x; int x; }; void f(struct Packet p) { p.x = 1; }`, "duplicate packet field"},
		{"dup reg", `struct Packet { int x; }; int r[2]; int r[4]; void f(struct Packet p) { p.x = 1; }`, "duplicate register"},
		{"neg size", `struct Packet { int x; }; int r[0]; void f(struct Packet p) { p.x = 1; }`, "positive size"},
		{"too many inits", `struct Packet { int x; }; int r[2] = {1,2,3}; void f(struct Packet p) { p.x = 1; }`, "initializers"},
		{"assign to expr", `struct Packet { int x; }; void f(struct Packet p) { 3 = p.x; }`, "assignment target"},
		{"unterminated comment", `struct Packet { int x; }; /* oops`, "unterminated"},
		{"stray char", `struct Packet { int x; }; @`, "unexpected character"},
		{"param type mismatch", `struct Packet { int x; }; void f(struct Other p) { p.x = 1; }`, "does not match"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want substring %q", err, c.want)
			}
		})
	}
}

func TestWalkAndStringRoundtrip(t *testing.T) {
	f, err := Parse(fig3Program)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var stmts, regReads int
	WalkStmts(f.Body, func(s Stmt) {
		stmts++
		if as, ok := s.(*AssignStmt); ok {
			WalkExpr(as.RHS, func(e Expr) {
				if _, ok := e.(*RegExpr); ok {
					regReads++
				}
			})
		}
	})
	if stmts != 2 {
		t.Errorf("walked %d statements, want 2", stmts)
	}
	if regReads != 4 {
		t.Errorf("walked %d register reads, want 4", regReads)
	}
	if !ExprUsesReg(f.Body[0].(*AssignStmt).RHS) {
		t.Error("ExprUsesReg = false for register-reading expression")
	}
	// String rendering of a re-parsed program must itself parse when
	// wrapped back into a function (smoke check of the printers).
	for _, s := range f.Body {
		if s.String() == "" {
			t.Error("empty statement rendering")
		}
	}
}

func TestReplaceWord(t *testing.T) {
	got := replaceWord("SIZE SIZES xSIZE SIZE", "SIZE", "16")
	want := "16 SIZES xSIZE 16"
	if got != want {
		t.Errorf("replaceWord = %q, want %q", got, want)
	}
}
