package domino

import "fmt"

// TokKind classifies lexical tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	// punctuation
	TokLBrace  // {
	TokRBrace  // }
	TokLParen  // (
	TokRParen  // )
	TokLBrack  // [
	TokRBrack  // ]
	TokSemi    // ;
	TokComma   // ,
	TokDot     // .
	TokAssign  // =
	TokQuest   // ?
	TokColon   // :
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokAmp     // &
	TokPipe    // |
	TokCaret   // ^
	TokShl     // <<
	TokShr     // >>
	TokEq      // ==
	TokNe      // !=
	TokLt      // <
	TokLe      // <=
	TokGt      // >
	TokGe      // >=
	TokAndAnd  // &&
	TokOrOr    // ||
	TokBang    // !
	// keywords
	TokStruct
	TokInt
	TokVoid
	TokIf
	TokElse
	TokTable
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokLBrace: "{", TokRBrace: "}", TokLParen: "(", TokRParen: ")",
	TokLBrack: "[", TokRBrack: "]", TokSemi: ";", TokComma: ",",
	TokDot: ".", TokAssign: "=", TokQuest: "?", TokColon: ":",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokAmp: "&", TokPipe: "|", TokCaret: "^",
	TokShl: "<<", TokShr: ">>", TokEq: "==", TokNe: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokBang: "!",
	TokStruct: "struct", TokInt: "int", TokVoid: "void",
	TokIf: "if", TokElse: "else", TokTable: "table",
}

// String renders the token kind.
func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"struct": TokStruct,
	"int":    TokInt,
	"void":   TokVoid,
	"if":     TokIf,
	"else":   TokElse,
	"table":  TokTable,
}

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  int64 // for TokNumber
	Pos  Pos
}

// Error is a frontend error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
