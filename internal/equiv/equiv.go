// Package equiv checks functional equivalence (§2.2.1) between a simulated
// multi-pipeline switch and the logical single-pipeline reference: starting
// from the same initial state and the same input packet stream, the final
// register state and every packet's final header contents must be
// identical.
package equiv

import (
	"fmt"
	"sort"
	"strings"

	"mp5/internal/banzai"
	"mp5/internal/core"
	"mp5/internal/ir"
)

// Mismatch describes one difference between the reference and the
// simulated switch.
type Mismatch struct {
	// Kind is "register" or "packet".
	Kind string
	// Reg/Idx locate a register mismatch.
	Reg, Idx int
	// PktID/Field locate a packet-state mismatch.
	PktID int64
	Field int
	// Want is the reference value; Got the simulated one.
	Want, Got int64
}

// String renders the mismatch.
func (m Mismatch) String() string {
	if m.Kind == "register" {
		return fmt.Sprintf("register r%d[%d]: reference=%d simulated=%d", m.Reg, m.Idx, m.Want, m.Got)
	}
	return fmt.Sprintf("packet %d field %d: reference=%d simulated=%d", m.PktID, m.Field, m.Want, m.Got)
}

// Report is the outcome of an equivalence check.
type Report struct {
	Equivalent bool
	// Mismatches lists up to Limit differences (register state first,
	// then packet state in ascending packet-id order — the listing is
	// deterministic for a given run).
	Mismatches []Mismatch
	// Total counts every mismatch found, including those beyond the
	// Limit cap on the recorded list.
	Total int
	// PacketsCompared counts packets whose outputs were checked.
	PacketsCompared int
}

// String renders the report in a stable, diff-friendly form: a verdict
// line, then one line per recorded mismatch, then an elision line when
// mismatches were dropped at the cap.
func (r *Report) String() string {
	var b strings.Builder
	if r.Equivalent {
		fmt.Fprintf(&b, "equivalent (%d packets compared)", r.PacketsCompared)
		return b.String()
	}
	fmt.Fprintf(&b, "NOT equivalent: %d mismatches (%d packets compared)", r.Total, r.PacketsCompared)
	for _, m := range r.Mismatches {
		b.WriteString("\n  ")
		b.WriteString(m.String())
	}
	if r.Total > len(r.Mismatches) {
		fmt.Fprintf(&b, "\n  ... and %d more", r.Total-len(r.Mismatches))
	}
	return b.String()
}

// Limit caps the number of recorded mismatches.
const Limit = 32

// Reference runs the single-pipeline reference executor over the arrival
// trace (in arrival order — the definition of the logical single-pipeline
// switch) and returns the final register snapshot and per-packet outputs.
// The reference machine is pinned to the tree-walking ir interpreter: with
// every engine defaulting to the bytecode VM, the interpreter stays the
// independent semantic ground truth the compiled path is differenced
// against (a miscompile cannot cancel out of the comparison).
func Reference(prog *ir.Program, arrivals []core.Arrival) (regs [][]int64, outputs map[int64][]int64) {
	m := banzai.NewMachine(prog)
	m.Interpret()
	outputs = make(map[int64][]int64, len(arrivals))
	for i := range arrivals {
		env := ir.NewEnv(prog)
		copy(env.Fields, arrivals[i].Fields)
		m.Process(int64(i), env)
		outputs[int64(i)] = append([]int64(nil), env.Fields...)
	}
	return m.Regs().Snapshot(), outputs
}

// Check compares a completed simulation against the reference execution of
// the same program and trace. The simulator must have been run with
// RecordOutputs; only packets that completed (not dropped) are compared,
// and register equivalence is only meaningful for loss-free runs (§3.5.1) —
// the caller should ensure no drops occurred before trusting it.
func Check(prog *ir.Program, sim *core.Simulator, arrivals []core.Arrival) *Report {
	return CheckState(prog, sim.FinalRegs(), sim.Outputs(), arrivals)
}

// CheckState is the engine-agnostic core of Check: it compares a final
// register snapshot and a per-packet output map — however they were produced
// (cycle simulator, concurrent dataplane, …) — against the single-pipeline
// reference execution of the same program and trace. outputs must be
// non-nil (the engine must have recorded per-packet final fields).
func CheckState(prog *ir.Program, simRegs [][]int64, simOut map[int64][]int64, arrivals []core.Arrival) *Report {
	refRegs, refOut := Reference(prog, arrivals)
	rep := &Report{Equivalent: true}
	// Every mismatch counts toward Total; only the first Limit are kept,
	// so one systematic divergence cannot hide the scale of the damage.
	add := func(m Mismatch) {
		rep.Equivalent = false
		rep.Total++
		if len(rep.Mismatches) < Limit {
			rep.Mismatches = append(rep.Mismatches, m)
		}
	}
	for r := range refRegs {
		for i := range refRegs[r] {
			if refRegs[r][i] != simRegs[r][i] {
				add(Mismatch{Kind: "register", Reg: r, Idx: i,
					Want: refRegs[r][i], Got: simRegs[r][i]})
			}
		}
	}
	if simOut == nil {
		panic("equiv: engine was not run with RecordOutputs")
	}
	// Iterate packets in ascending id order so the recorded mismatch list
	// (and therefore Report.String) is deterministic across runs.
	ids := make([]int64, 0, len(simOut))
	for id := range simOut {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		got := simOut[id]
		want := refOut[id]
		rep.PacketsCompared++
		for f := range want {
			if want[f] != got[f] {
				add(Mismatch{Kind: "packet", PktID: id, Field: f,
					Want: want[f], Got: got[f]})
			}
		}
	}
	return rep
}

// ReferenceOrder runs the single-pipeline reference over the arrival trace
// and returns the per-slot access order — for every individual register
// index, the sequence of packet ids that effectively accessed it (predicate
// held), keyed "r<reg>[<idx>]". On a single pipeline packets execute to
// completion in arrival order, so each sequence is strictly ascending; this
// is the order correctness condition C1 requires every implementation to
// reproduce.
func ReferenceOrder(prog *ir.Program, arrivals []core.Arrival) map[string][]int64 {
	// Pinned to the interpreter for the same oracle-independence reason as
	// Reference.
	m := banzai.NewMachine(prog)
	m.Interpret()
	m.RecordIndexedAccesses()
	for i := range arrivals {
		env := ir.NewEnv(prog)
		copy(env.Fields, arrivals[i].Fields)
		m.Process(int64(i), env)
	}
	return m.IndexedAccessLog()
}

// ViolationStats summarizes C1 bookkeeping for a run: the number of state
// access sequences inspected and how many packets jumped ahead of an
// earlier arrival on some shared state.
type ViolationStats struct {
	States     int
	Accesses   int64
	Violating  int64
	OfComplete float64
}

// Violations recomputes C1-violation statistics from a simulator run with
// RecordAccessOrder enabled.
func Violations(sim *core.Simulator, completed int64) ViolationStats {
	var st ViolationStats
	violators := map[int64]bool{}
	for _, seq := range sim.AccessOrders() {
		st.States++
		st.Accesses += int64(len(seq))
		minSuffix := int64(1<<63 - 1)
		for i := len(seq) - 1; i >= 0; i-- {
			if seq[i] > minSuffix {
				violators[seq[i]] = true
			}
			if seq[i] < minSuffix {
				minSuffix = seq[i]
			}
		}
	}
	st.Violating = int64(len(violators))
	if completed > 0 {
		st.OfComplete = float64(st.Violating) / float64(completed)
	}
	return st
}
