package equiv_test

import (
	"math/rand"
	"strings"
	"testing"

	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/equiv"
	"mp5/internal/ir"
)

const seqSrc = `
struct Packet { int seq; };
int count [1] = {0};
void counter (struct Packet p) {
    count[0] = count[0] + 1;
    p.seq = count[0];
}
`

func trace(prog *ir.Program, n, k int) []core.Arrival {
	arr := make([]core.Arrival, n)
	for i := range arr {
		arr[i] = core.Arrival{
			Cycle:  int64(i / k),
			Port:   i % 16,
			Size:   64,
			Fields: make([]int64, len(prog.Fields)),
		}
	}
	return arr
}

func TestReferenceSequencer(t *testing.T) {
	prog := compiler.MustCompile(seqSrc, compiler.Options{Target: compiler.TargetMP5})
	tr := trace(prog, 50, 4)
	regs, outs := equiv.Reference(prog, tr)
	if regs[0][0] != 50 {
		t.Fatalf("count = %d", regs[0][0])
	}
	seq := prog.FieldIndex("seq")
	for i := 0; i < 50; i++ {
		if outs[int64(i)][seq] != int64(i+1) {
			t.Fatalf("packet %d stamped %d", i, outs[int64(i)][seq])
		}
	}
}

func TestCheckDetectsEquivalence(t *testing.T) {
	prog := compiler.MustCompile(seqSrc, compiler.Options{Target: compiler.TargetMP5})
	tr := trace(prog, 200, 4)
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, RecordOutputs: true,
	})
	if res := sim.Run(tr); res.Completed != res.Injected {
		t.Fatalf("loss: %+v", res)
	}
	rep := equiv.Check(prog, sim, tr)
	if !rep.Equivalent {
		t.Fatalf("MP5 should be equivalent: %v", rep.Mismatches)
	}
	if rep.PacketsCompared != 200 {
		t.Errorf("compared %d packets", rep.PacketsCompared)
	}
}

// gateSeqSrc makes no-D4 misorderings observable: packets are delayed
// differently at the first stateful stage (64 gate counters spread across
// pipelines), so they reach the second stage's hot sequence counters out of
// arrival order, and the stamped sequence numbers expose it. A single
// shared state would not do: every packet funnels through one FIFO in
// arrival order, so no-D4 is accidentally order-correct there.
const gateSeqSrc = `
struct Packet { int a; int b; int seq; };
int gate [64] = {0};
int count [4] = {0};
void f (struct Packet p) {
    gate[p.a % 64] = gate[p.a % 64] + 1;
    count[p.b % 4] = count[p.b % 4] + 1;
    p.seq = count[p.b % 4];
}
`

func TestCheckDetectsViolation(t *testing.T) {
	// The no-D4 architecture on a sequencer-style program must produce
	// packet-state mismatches under contention.
	prog := compiler.MustCompile(gateSeqSrc, compiler.Options{Target: compiler.TargetMP5})
	tr := trace(prog, 8000, 4)
	rng := rand.New(rand.NewSource(3))
	for i := range tr {
		tr[i].Fields[prog.FieldIndex("a")] = int64(rng.Intn(1024))
		tr[i].Fields[prog.FieldIndex("b")] = int64(rng.Intn(1024))
	}
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5NoD4, Pipelines: 4, RecordOutputs: true, RecordAccessOrder: true,
	})
	res := sim.Run(tr)
	if res.Completed != res.Injected {
		t.Fatalf("loss: %+v", res)
	}
	rep := equiv.Check(prog, sim, tr)
	if rep.Equivalent {
		t.Fatal("no-D4 sequencer at 4x contention cannot be equivalent")
	}
	if len(rep.Mismatches) == 0 || len(rep.Mismatches) > equiv.Limit {
		t.Fatalf("mismatch recording broken: %d", len(rep.Mismatches))
	}
	if s := rep.Mismatches[0].String(); !strings.Contains(s, "reference=") {
		t.Errorf("mismatch rendering: %q", s)
	}
	vs := equiv.Violations(sim, res.Completed)
	if vs.Violating == 0 || vs.States == 0 {
		t.Errorf("violation stats empty: %+v", vs)
	}
	if vs.Violating != res.C1Violating {
		t.Errorf("equiv.Violations = %d, simulator counted %d", vs.Violating, res.C1Violating)
	}
}

// TestMismatchGolden pins the renderings of Mismatch and Report: failure
// output is parsed by eyeballs and scripts alike, so it must stay stable.
func TestMismatchGolden(t *testing.T) {
	reg := equiv.Mismatch{Kind: "register", Reg: 2, Idx: 7, Want: 5, Got: 9}
	if got, want := reg.String(), "register r2[7]: reference=5 simulated=9"; got != want {
		t.Errorf("register mismatch renders %q, want %q", got, want)
	}
	pkt := equiv.Mismatch{Kind: "packet", PktID: 31, Field: 1, Want: -4, Got: 0}
	if got, want := pkt.String(), "packet 31 field 1: reference=-4 simulated=0"; got != want {
		t.Errorf("packet mismatch renders %q, want %q", got, want)
	}

	ok := &equiv.Report{Equivalent: true, PacketsCompared: 12}
	if got, want := ok.String(), "equivalent (12 packets compared)"; got != want {
		t.Errorf("passing report renders %q, want %q", got, want)
	}
	bad := &equiv.Report{
		Mismatches:      []equiv.Mismatch{reg, pkt},
		Total:           40,
		PacketsCompared: 12,
	}
	want := "NOT equivalent: 40 mismatches (12 packets compared)\n" +
		"  register r2[7]: reference=5 simulated=9\n" +
		"  packet 31 field 1: reference=-4 simulated=0\n" +
		"  ... and 38 more"
	if got := bad.String(); got != want {
		t.Errorf("failing report renders:\n%q\nwant:\n%q", got, want)
	}
}

// TestForcedMismatchDetected guards against a silently-always-passing
// checker: corrupt one register after a clean run and Check must flag
// exactly that slot.
func TestForcedMismatchDetected(t *testing.T) {
	prog := compiler.MustCompile(seqSrc, compiler.Options{Target: compiler.TargetMP5})
	tr := trace(prog, 50, 4)
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 4, RecordOutputs: true,
	})
	if res := sim.Run(tr); res.Completed != res.Injected {
		t.Fatalf("loss: %+v", res)
	}
	if rep := equiv.Check(prog, sim, tr); !rep.Equivalent {
		t.Fatalf("clean run not equivalent: %v", rep.Mismatches)
	}
	seq := prog.FieldIndex("seq")
	sim.Outputs()[7][seq] += 100 // live storage: corrupt packet 7's stamp
	rep := equiv.Check(prog, sim, tr)
	if rep.Equivalent {
		t.Fatal("corrupted packet output passed the checker")
	}
	if rep.Total != 1 || len(rep.Mismatches) != 1 {
		t.Fatalf("expected exactly one mismatch, got total=%d recorded=%d", rep.Total, len(rep.Mismatches))
	}
	m := rep.Mismatches[0]
	if m.Kind != "packet" || m.PktID != 7 || m.Field != seq || m.Got != m.Want+100 {
		t.Fatalf("mismatch mislocated: %+v", m)
	}
}

// TestCheckReportsAllMismatchesUpToCap: a systematic divergence must be
// counted in full (Total) while the recorded list stops at Limit, in
// deterministic ascending packet order.
func TestCheckReportsAllMismatchesUpToCap(t *testing.T) {
	prog := compiler.MustCompile(gateSeqSrc, compiler.Options{Target: compiler.TargetMP5})
	tr := trace(prog, 8000, 4)
	rng := rand.New(rand.NewSource(3))
	for i := range tr {
		tr[i].Fields[prog.FieldIndex("a")] = int64(rng.Intn(1024))
		tr[i].Fields[prog.FieldIndex("b")] = int64(rng.Intn(1024))
	}
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5NoD4, Pipelines: 4, RecordOutputs: true,
	})
	if res := sim.Run(tr); res.Completed != res.Injected {
		t.Fatalf("loss: %+v", res)
	}
	rep := equiv.Check(prog, sim, tr)
	if rep.Equivalent {
		t.Fatal("no-D4 at 4x contention cannot be equivalent")
	}
	if len(rep.Mismatches) != equiv.Limit {
		t.Fatalf("recorded %d mismatches, want the cap %d", len(rep.Mismatches), equiv.Limit)
	}
	if rep.Total <= equiv.Limit {
		t.Fatalf("Total = %d, want more than the cap (mismatches beyond it must still count)", rep.Total)
	}
	// Determinism: recorded packet mismatches come in ascending id order,
	// and a re-run reproduces the identical report.
	lastID := int64(-1)
	for _, m := range rep.Mismatches {
		if m.Kind != "packet" {
			continue
		}
		if m.PktID < lastID {
			t.Fatalf("mismatch order not ascending: %d after %d", m.PktID, lastID)
		}
		lastID = m.PktID
	}
	again := equiv.Check(prog, sim, tr)
	if again.String() != rep.String() {
		t.Fatal("Check is not deterministic across runs")
	}
}

func TestCheckPanicsWithoutOutputs(t *testing.T) {
	prog := compiler.MustCompile(seqSrc, compiler.Options{Target: compiler.TargetMP5})
	tr := trace(prog, 10, 2)
	sim := core.NewSimulator(prog, core.Config{Arch: core.ArchMP5, Pipelines: 2})
	sim.Run(tr)
	defer func() {
		if recover() == nil {
			t.Fatal("Check must panic when outputs were not recorded")
		}
	}()
	equiv.Check(prog, sim, tr)
}
