package experiments

import (
	"fmt"

	"mp5/internal/apps"
	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/ir"
	"mp5/internal/stats"
	"mp5/internal/workload"
)

// The ablations quantify the design choices DESIGN.md calls out beyond the
// paper's own figures: the remap period, the FIFO sizing rule, the skew
// parameters, and the §3.4 mitigations (starvation guard, ECN marking,
// ordering stage).

// AblationRemapInterval sweeps the dynamic-sharding period (the paper
// fixes it at 100 cycles; §3.4 says "every few 100s of clock cycles").
func AblationRemapInterval(sc Scale) *Table {
	t := &Table{
		Title:  "Ablation: dynamic-sharding remap interval (paper default: 100 cycles)",
		Note:   "skewed pattern, default config",
		Header: []string{"interval", "tput", "moves/run"},
	}
	for _, iv := range []int64{25, 50, 100, 200, 400, 800, 1 << 40} {
		var tputs, moves []float64
		for seed := 0; seed < sc.Seeds; seed++ {
			prog := synthProgram(DefaultStatefulStages, DefaultRegSize)
			trace := workload.Synthetic(prog, workload.Spec{
				Packets: sc.Packets, Pipelines: DefaultPipelines,
				Pattern: workload.Skewed, Seed: int64(seed),
			}, DefaultStatefulStages, DefaultRegSize)
			sim := core.NewSimulator(prog, core.Config{
				Arch: core.ArchMP5, Pipelines: DefaultPipelines,
				Seed: int64(seed), RemapInterval: iv,
			})
			r := sim.Run(trace)
			noteRun(r)
			tputs = append(tputs, r.Throughput)
			moves = append(moves, float64(r.ShardMoves))
		}
		label := fmt.Sprint(iv)
		if iv > 1<<30 {
			label = "off"
		}
		t.Rows = append(t.Rows, []string{label, f3(stats.Mean(tputs)), f2(stats.Mean(moves))})
	}
	return t
}

// AblationFIFOCapacity sweeps the per-stage sub-FIFO depth. The paper
// sizes hardware FIFOs at 8 entries, "sufficient to avoid tail drops based
// on observations in §4.4" — this ablation verifies the sizing rule: no
// drops at depth 8 for the real applications, drops at line-rate-saturated
// synthetic loads regardless.
func AblationFIFOCapacity(sc Scale) *Table {
	t := &Table{
		Title:  "Ablation: per-stage FIFO capacity (paper hardware: 8 entries)",
		Header: []string{"capacity", "flowlet drops", "flowlet tput", "synthetic(skew) drops", "synthetic tput"},
	}
	app := apps.Flowlet()
	prog := app.MustCompile(compiler.TargetMP5)
	sprog := synthProgram(DefaultStatefulStages, DefaultRegSize)
	for _, cap := range []int{2, 4, 8, 16, 0} {
		var fd, ft, sd, st float64
		for seed := 0; seed < sc.Seeds; seed++ {
			ftrace := workload.Flows(prog, workload.FlowSpec{
				Packets: sc.Packets, Pipelines: DefaultPipelines, Seed: int64(seed),
			}, app.Bind)
			fsim := core.NewSimulator(prog, core.Config{
				Arch: core.ArchMP5, Pipelines: DefaultPipelines,
				Seed: int64(seed), FIFOCap: cap,
			})
			fr := fsim.Run(ftrace)
			noteRun(fr)
			fd += float64(fr.DroppedInsert + fr.DroppedPhantom)
			ft += fr.Throughput

			strace := workload.Synthetic(sprog, workload.Spec{
				Packets: sc.Packets, Pipelines: DefaultPipelines,
				Pattern: workload.Skewed, Seed: int64(seed),
			}, DefaultStatefulStages, DefaultRegSize)
			ssim := core.NewSimulator(sprog, core.Config{
				Arch: core.ArchMP5, Pipelines: DefaultPipelines,
				Seed: int64(seed), FIFOCap: cap,
			})
			sr := ssim.Run(strace)
			noteRun(sr)
			sd += float64(sr.DroppedInsert)
			st += sr.Throughput
		}
		n := float64(sc.Seeds)
		label := fmt.Sprint(cap)
		if cap == 0 {
			label = "unbounded"
		}
		t.Rows = append(t.Rows, []string{
			label, f2(fd / n), f3(ft / n), f2(sd / n), f3(st / n),
		})
	}
	return t
}

// AblationSkew sweeps the hot-set fraction at a fixed 95% hot weight,
// showing how concentration moves the dynamic-vs-static gap and the
// distance to ideal.
func AblationSkew(sc Scale) *Table {
	t := &Table{
		Title:  "Ablation: hot-set fraction (95% of packets on the hot set)",
		Header: []string{"hot fraction", "mp5", "static", "ideal", "dyn gain"},
	}
	for _, hf := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
		var mp, st, id []float64
		for seed := 0; seed < sc.Seeds; seed++ {
			prog := synthProgram(DefaultStatefulStages, DefaultRegSize)
			trace := workload.Synthetic(prog, workload.Spec{
				Packets: sc.Packets, Pipelines: DefaultPipelines,
				Pattern: workload.Skewed, HotFraction: hf, Seed: int64(seed),
			}, DefaultStatefulStages, DefaultRegSize)
			run := func(arch core.Arch) float64 {
				sim := core.NewSimulator(prog, core.Config{
					Arch: arch, Pipelines: DefaultPipelines, Seed: int64(seed),
				})
				r := sim.Run(trace)
				noteRun(r)
				return r.Throughput
			}
			mp = append(mp, run(core.ArchMP5))
			st = append(st, run(core.ArchStaticShard))
			id = append(id, run(core.ArchIdeal))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", hf),
			f3(stats.Mean(mp)), f3(stats.Mean(st)), f3(stats.Mean(id)),
			f2(stats.Mean(mp) / stats.Mean(st)),
		})
	}
	return t
}

// AblationMitigations exercises the §3.4 mitigation knobs on a NAT-like
// mixed stateless/stateful workload: the starvation guard bounds queueing
// by dropping stateless packets, ECN marking identifies back-pressure
// candidates, and the ordering stage removes per-flow reordering.
func AblationMitigations(sc Scale) *Table {
	t := &Table{
		Title: "Ablation: Sec 3.4 mitigations (50% stateless packets, hot counters)",
		Note: "'reordered' counts global cross-flow egress inversions; the ordering\n" +
			"stage guarantees zero *per-flow* reordering (what TCP cares about),\n" +
			"which the core test suite asserts directly.",
		Header: []string{"variant", "tput", "reordered", "starved drops", "ecn marked", "maxq"},
	}
	mk := func(guard bool) (*ir.Program, []core.Arrival) {
		prog, err := apps.Synthetic(1, 64, 16)
		if err != nil {
			panic(err)
		}
		if guard {
			if err := compiler.AddOrderingStage(prog, 256, "h0"); err != nil {
				panic(err)
			}
		}
		trace := workload.Synthetic(prog, workload.Spec{
			Packets: sc.Packets, Pipelines: DefaultPipelines,
			Pattern: workload.Skewed, StatelessFraction: 0.5, Seed: 1,
		}, 1, 64)
		return prog, trace
	}
	type variant struct {
		name  string
		guard bool
		cfg   core.Config
	}
	variants := []variant{
		{"baseline", false, core.Config{}},
		{"starve-guard(64)", false, core.Config{StarveThreshold: 64}},
		{"ecn(16)", false, core.Config{ECNThreshold: 16}},
		{"ordering-stage", true, core.Config{}},
	}
	for _, v := range variants {
		prog, trace := mk(v.guard)
		cfg := v.cfg
		cfg.Arch = core.ArchMP5
		cfg.Pipelines = DefaultPipelines
		cfg.Seed = 1
		sim := core.NewSimulator(prog, cfg)
		r := sim.Run(trace)
		noteRun(r)
		t.Rows = append(t.Rows, []string{
			v.name, f3(r.Throughput), fmt.Sprint(r.Reordered),
			fmt.Sprint(r.DroppedStarved), fmt.Sprint(r.MarkedECN),
			fmt.Sprint(r.MaxFIFODepth),
		})
	}
	return t
}

// AblationChiplet sweeps the inter-pipeline link latency, exploring the
// §3.5.3 chiplet-disaggregation question: what does MP5 cost when the
// crossbar spans chiplet boundaries? Functional equivalence holds at any
// latency (the phantom channel is pipelined to constant worst-case depth);
// the price is packet latency and, under contention, throughput.
func AblationChiplet(sc Scale) *Table {
	t := &Table{
		Title:  "Ablation: inter-pipeline (chiplet) link latency — Sec 3.5.3 exploration",
		Note:   "default config; latency 0 = paper's single-die design",
		Header: []string{"link cycles", "tput(unif)", "tput(skew)", "mean latency", "p99 latency"},
	}
	for _, lat := range []int64{0, 1, 2, 4, 8} {
		var tu, ts, ml, p99 []float64
		for seed := 0; seed < sc.Seeds; seed++ {
			for _, pat := range []workload.Pattern{workload.Uniform, workload.Skewed} {
				prog := synthProgram(DefaultStatefulStages, DefaultRegSize)
				trace := workload.Synthetic(prog, workload.Spec{
					Packets: sc.Packets, Pipelines: DefaultPipelines,
					Pattern: pat, Seed: int64(seed),
				}, DefaultStatefulStages, DefaultRegSize)
				sim := core.NewSimulator(prog, core.Config{
					Arch: core.ArchMP5, Pipelines: DefaultPipelines,
					Seed: int64(seed), CrossLatency: lat,
				})
				r := sim.Run(trace)
				noteRun(r)
				if pat == workload.Uniform {
					tu = append(tu, r.Throughput)
					ml = append(ml, r.MeanLatency)
					p99 = append(p99, float64(r.P99Latency))
				} else {
					ts = append(ts, r.Throughput)
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(lat), f3(stats.Mean(tu)), f3(stats.Mean(ts)),
			f2(stats.Mean(ml)), f2(stats.Mean(p99)),
		})
	}
	return t
}

// Atoms reports the Banzai atom templates every built-in application
// requires (the Domino paper's Table-4-style census for this suite).
func Atoms() *Table {
	t := &Table{
		Title:  "Banzai atom census for the Sec 4.4 applications",
		Header: []string{"app", "stage", "atom", "depth", "registers"},
	}
	for _, a := range apps.All() {
		prog := a.MustCompile(compiler.TargetMP5)
		for _, rep := range compiler.ClassifyAtoms(prog) {
			t.Rows = append(t.Rows, []string{
				a.Name, fmt.Sprint(rep.Stage), rep.Kind.String(),
				fmt.Sprint(rep.Depth), fmt.Sprint(rep.Regs),
			})
		}
	}
	return t
}

// Ablations bundles all extension tables.
func Ablations(sc Scale) []*Table {
	return []*Table{
		AblationRemapInterval(sc),
		AblationFIFOCapacity(sc),
		AblationSkew(sc),
		AblationMitigations(sc),
		AblationChiplet(sc),
		Atoms(),
	}
}
