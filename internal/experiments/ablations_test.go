package experiments

import (
	"strconv"
	"testing"
)

func TestAblationRemapIntervalShape(t *testing.T) {
	tab := AblationRemapInterval(tiny)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The "off" row must move nothing and do no better than the default.
	off := tab.Rows[len(tab.Rows)-1]
	if off[0] != "off" || off[2] != "0.00" {
		t.Fatalf("off row = %v", off)
	}
	def := cell(t, tab, 2, 1) // interval 100
	offT := cell(t, tab, len(tab.Rows)-1, 1)
	if offT > def+0.02 {
		t.Errorf("disabling remap (%.3f) should not beat the default interval (%.3f)", offT, def)
	}
}

func TestAblationFIFOCapacityShape(t *testing.T) {
	tab := AblationFIFOCapacity(tiny)
	rows := map[string][]string{}
	for _, r := range tab.Rows {
		rows[r[0]] = r
	}
	// Paper's sizing rule: depth 8 suffices for the real applications.
	if d, _ := strconv.ParseFloat(rows["8"][1], 64); d != 0 {
		t.Errorf("flowlet drops at depth 8: %v (paper: none)", d)
	}
	if d, _ := strconv.ParseFloat(rows["unbounded"][1], 64); d != 0 {
		t.Errorf("flowlet drops with unbounded FIFOs: %v", d)
	}
	// Tiny FIFOs drop on the saturated synthetic load.
	if d, _ := strconv.ParseFloat(rows["2"][3], 64); d == 0 {
		t.Error("no synthetic drops at depth 2 under saturation")
	}
}

func TestAblationSkewShape(t *testing.T) {
	tab := AblationSkew(tiny)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		gain, _ := strconv.ParseFloat(r[4], 64)
		// At a single tiny-scale seed, static can win a particular
		// draw; only a real collapse is a bug.
		if gain < 0.88 {
			t.Errorf("hot fraction %s: dynamic gain %.2f collapsed below static", r[0], gain)
		}
		ideal, _ := strconv.ParseFloat(r[3], 64)
		mp5v, _ := strconv.ParseFloat(r[1], 64)
		if ideal < mp5v-0.03 {
			t.Errorf("hot fraction %s: ideal %.3f below mp5 %.3f", r[0], ideal, mp5v)
		}
	}
}

func TestAblationMitigationsShape(t *testing.T) {
	tab := AblationMitigations(tiny)
	rows := map[string][]string{}
	for _, r := range tab.Rows {
		rows[r[0]] = r
	}
	if rows["baseline"][3] != "0" || rows["baseline"][4] != "0" {
		t.Errorf("baseline must not drop or mark: %v", rows["baseline"])
	}
	if rows["starve-guard(64)"][3] == "0" {
		t.Error("starvation guard never fired")
	}
	if rows["ecn(16)"][4] == "0" {
		t.Error("ECN never marked")
	}
	bq, _ := strconv.Atoi(rows["baseline"][5])
	gq, _ := strconv.Atoi(rows["starve-guard(64)"][5])
	if gq >= bq {
		t.Errorf("guard did not reduce max queue: %d vs %d", gq, bq)
	}
}

func TestAtomsCensus(t *testing.T) {
	tab := Atoms()
	apps := map[string]int{}
	pairSeen := false
	for _, r := range tab.Rows {
		apps[r[0]]++
		if r[0] == "conga" && r[2] == "Pairs" {
			pairSeen = true
		}
	}
	for _, name := range []string{"flowlet", "conga", "wfq", "sequencer"} {
		if apps[name] == 0 {
			t.Errorf("no atoms reported for %s", name)
		}
	}
	if apps["flowlet"] != 2 {
		t.Errorf("flowlet atoms = %d, want 2", apps["flowlet"])
	}
	if !pairSeen {
		t.Error("conga must need a Pairs atom")
	}
}
