// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Table 1 (area/clock), the §4.2 SRAM overhead, the
// §4.3.2 design-principle microbenchmarks (D2 dynamic sharding, D3
// steering vs recirculation, D4 order enforcement), the Figure-7
// sensitivity sweeps, and the Figure-8 real-application runs. The same
// entry points back the mp5bench command and the repository's Go
// benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"mp5/internal/apps"
	"mp5/internal/asic"
	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/ir"
	"mp5/internal/stats"
	"mp5/internal/telemetry"
	"mp5/internal/workload"
)

// Metrics aggregates counters over every simulation the harness runs
// (concurrently-safe; mp5bench snapshots it as Prometheus text with
// -metrics-out). noteRun must be called with each finished Result.
var (
	Metrics        = telemetry.NewRegistry()
	mSims          = Metrics.NewCounter("mp5bench_sims_total", "simulations executed by the experiment harness")
	mPktsInjected  = Metrics.NewCounter("mp5bench_packets_injected_total", "packets offered across all harness simulations")
	mPktsCompleted = Metrics.NewCounter("mp5bench_packets_completed_total", "packets completed across all harness simulations")
	mSimCycles     = Metrics.NewCounter("mp5bench_sim_cycles_total", "simulated cycles across all harness simulations")
	mShardMoves    = Metrics.NewCounter("mp5bench_shard_moves_total", "dynamic-sharding migrations across all harness simulations")
	mSimsByArch    = Metrics.NewCounterVec("mp5bench_sims_by_arch_total", "simulations by architecture", "arch")
)

// noteRun records one finished simulation into the harness metrics.
func noteRun(r *core.Result) {
	mSims.Inc()
	mPktsInjected.Add(r.Injected)
	mPktsCompleted.Add(r.Completed)
	mSimCycles.Add(r.Cycles)
	mShardMoves.Add(r.ShardMoves)
	mSimsByArch.Inc(r.Arch.String())
}

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Scale controls how much work the experiments do; the defaults keep a
// full regeneration under a few minutes, while -full in mp5bench matches
// the paper's ten seeds.
type Scale struct {
	Packets int
	Seeds   int
}

// DefaultScale is used by the Go benchmarks and quick CLI runs.
var DefaultScale = Scale{Packets: 20000, Seeds: 3}

// PaperScale matches §4.3's "ten independent input packet streams".
var PaperScale = Scale{Packets: 50000, Seeds: 10}

// Defaults shared by the sensitivity experiments (§4.3.1).
const (
	DefaultStatefulStages = 4
	DefaultRegSize        = 512
	DefaultPacketSize     = 64
	DefaultPipelines      = 4
	MaxStages             = 16
)

// synthRun compiles (cached, concurrency-safe) and runs one
// synthetic-program simulation.
type synthKey struct {
	stateful, regSize int
}

var (
	synthCacheMu sync.Mutex
	synthCache   = map[synthKey]*ir.Program{}
)

func synthProgram(stateful, regSize int) *ir.Program {
	synthCacheMu.Lock()
	defer synthCacheMu.Unlock()
	key := synthKey{stateful, regSize}
	if p, ok := synthCache[key]; ok {
		return p
	}
	p, err := apps.Synthetic(stateful, regSize, MaxStages)
	if err != nil {
		panic(fmt.Sprintf("experiments: synthetic compile: %v", err))
	}
	synthCache[key] = p
	return p
}

// SynthConfig describes one synthetic sensitivity run.
type SynthConfig struct {
	Arch       core.Arch
	Pipelines  int
	Stateful   int
	RegSize    int
	PacketSize int
	Pattern    workload.Pattern
	Packets    int
	Seed       int64
	Churn      int64
	Record     bool
}

// RunSynth executes one synthetic simulation and returns its result.
func RunSynth(c SynthConfig) *core.Result {
	if c.Pipelines == 0 {
		c.Pipelines = DefaultPipelines
	}
	if c.RegSize == 0 {
		c.RegSize = DefaultRegSize
	}
	if c.PacketSize == 0 {
		c.PacketSize = DefaultPacketSize
	}
	prog := synthProgram(c.Stateful, c.RegSize)
	trace := workload.Synthetic(prog, workload.Spec{
		Packets:       c.Packets,
		Pipelines:     c.Pipelines,
		PacketSize:    c.PacketSize,
		Pattern:       c.Pattern,
		ChurnInterval: c.Churn,
		Seed:          c.Seed,
	}, c.Stateful, c.RegSize)
	sim := core.NewSimulator(prog, core.Config{
		Arch:              c.Arch,
		Pipelines:         c.Pipelines,
		Seed:              c.Seed + 1000,
		RecordAccessOrder: c.Record,
	})
	r := sim.Run(trace)
	noteRun(r)
	return r
}

func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Table1 regenerates the paper's Table 1 from the ASIC cost model,
// alongside the published values.
func Table1() *Table {
	p := asic.DefaultParams()
	t := &Table{
		Title:  "Table 1: chip area and clock vs pipelines (k) and stages (s)",
		Note:   "analytic 15nm model calibrated to the paper's synthesis corners",
		Header: []string{"k", "s", "area mm^2", "paper mm^2", "clock GHz", ">=1GHz"},
	}
	for _, k := range []int{2, 4, 8} {
		for _, s := range []int{4, 8, 12, 16} {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(k), fmt.Sprint(s),
				f2(p.Area(k, s)), f2(asic.PaperTable1[k][s]),
				f2(p.ClockGHz(k, s)),
				fmt.Sprint(p.MeetsGigahertz(k, s)),
			})
		}
	}
	return t
}

// SRAM regenerates the §4.2 SRAM-overhead computation.
func SRAM() *Table {
	t := &Table{
		Title:  "SRAM overhead (Sec 4.2): 30 bits per register index",
		Note:   "pipeline#(6b) + access counter(16b) + in-flight counter(8b), per pipeline",
		Header: []string{"stateful stages", "entries/stage", "overhead KB"},
	}
	for _, cfg := range [][2]int{{4, 512}, {4, 1000}, {10, 1000}, {10, 4096}} {
		kb := float64(asic.SRAMOverheadBytes(cfg[0], cfg[1])) / 1024
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(cfg[0]), fmt.Sprint(cfg[1]), f2(kb),
		})
	}
	return t
}

// D2Sharding is the §4.3.2 dynamic-vs-static sharding microbenchmark:
// per-seed throughput of MP5 against frozen random sharding, for both
// access patterns (paper: 1–1.5x uniform, 1.1–3.3x skewed).
func D2Sharding(sc Scale) *Table {
	t := &Table{
		Title:  "D2: dynamically sharded shared memory (Sec 4.3.2)",
		Note:   fmt.Sprintf("default config, %d packets, %d seeds", sc.Packets, sc.Seeds),
		Header: []string{"pattern", "dyn tput", "static tput", "gain min", "gain mean", "gain max"},
	}
	type variant struct {
		label   string
		pattern workload.Pattern
		churn   int64
	}
	variants := []variant{
		{"uniform", workload.Uniform, 0},
		{"skewed", workload.Skewed, 0},
		// Hot-set churn models flows coming and going — the regime
		// where frozen placements age fastest.
		{"skewed+churn", workload.Skewed, 2000},
	}
	dyn := make([][]float64, len(variants))
	sta := make([][]float64, len(variants))
	var tasks []func()
	for vi, v := range variants {
		dyn[vi] = make([]float64, sc.Seeds)
		sta[vi] = make([]float64, sc.Seeds)
		for seed := 0; seed < sc.Seeds; seed++ {
			vi, v, seed := vi, v, seed
			tasks = append(tasks, func() {
				base := SynthConfig{
					Pipelines: DefaultPipelines, Stateful: DefaultStatefulStages,
					Pattern: v.pattern, Churn: v.churn,
					Packets: sc.Packets, Seed: int64(seed),
				}
				d := base
				d.Arch = core.ArchMP5
				s := base
				s.Arch = core.ArchStaticShard
				dyn[vi][seed] = RunSynth(d).Throughput
				sta[vi][seed] = RunSynth(s).Throughput
			})
		}
	}
	runAll(tasks)
	for vi, v := range variants {
		gains := stats.Summarize(stats.Ratios(dyn[vi], sta[vi]))
		t.Rows = append(t.Rows, []string{
			v.label, f3(stats.Mean(dyn[vi])), f3(stats.Mean(sta[vi])),
			f2(gains.Min), f2(gains.Mean), f2(gains.Max),
		})
	}
	return t
}

// D4Violations is the §4.3.2 order-enforcement microbenchmark: fraction of
// packets violating C1 with D4, without D4, and with recirculation
// (paper: 0%, 14–26%, 18–31%).
func D4Violations(sc Scale) *Table {
	t := &Table{
		Title:  "D4: preemptive state access order enforcement (Sec 4.3.2)",
		Note:   "fraction of packets violating C1 across seeds",
		Header: []string{"architecture", "viol min", "viol mean", "viol max"},
	}
	archs := []core.Arch{core.ArchMP5, core.ArchMP5NoD4, core.ArchRecirc}
	v := make([][]float64, len(archs))
	var tasks []func()
	for ai, arch := range archs {
		v[ai] = make([]float64, sc.Seeds)
		for seed := 0; seed < sc.Seeds; seed++ {
			ai, arch, seed := ai, arch, seed
			tasks = append(tasks, func() {
				r := RunSynth(SynthConfig{
					Arch: arch, Pipelines: DefaultPipelines,
					Stateful: DefaultStatefulStages, Pattern: workload.Uniform,
					Packets: sc.Packets, Seed: int64(seed), Record: true,
				})
				v[ai][seed] = r.ViolationFraction
			})
		}
	}
	runAll(tasks)
	for ai, arch := range archs {
		s := stats.Summarize(v[ai])
		t.Rows = append(t.Rows, []string{arch.String(), pct(s.Min), pct(s.Mean), pct(s.Max)})
	}
	return t
}

// D3Steering is the §4.3.2 steering-vs-recirculation microbenchmark:
// throughput loss of recirculation relative to MP5 (paper: 31–77%), the
// average recirculations per packet, and the crossover where recirculation
// underperforms even the naive single-pipeline-state design (when
// recirculations/packet exceed the pipeline count).
func D3Steering(sc Scale) *Table {
	t := &Table{
		Title:  "D3: inter-pipeline packet steering vs recirculation (Sec 4.3.2)",
		Header: []string{"config", "mp5 tput", "recirc tput", "naive tput", "loss vs mp5", "recircs/pkt", "recirc<naive"},
	}
	type row struct {
		label       string
		k, stateful int
	}
	rows := []row{
		{"light (k=4, 1 stateful)", DefaultPipelines, 1},
		{"moderate (k=4, 2 stateful)", DefaultPipelines, 2},
		{"default (k=4, 4 stateful)", DefaultPipelines, DefaultStatefulStages},
		{"crossover (k=2, 10 stateful)", 2, 10},
	}
	mp5T := make([][]float64, len(rows))
	recT := make([][]float64, len(rows))
	naiveT := make([][]float64, len(rows))
	rpp := make([][]float64, len(rows))
	var tasks []func()
	for ri, rw := range rows {
		mp5T[ri] = make([]float64, sc.Seeds)
		recT[ri] = make([]float64, sc.Seeds)
		naiveT[ri] = make([]float64, sc.Seeds)
		rpp[ri] = make([]float64, sc.Seeds)
		for seed := 0; seed < sc.Seeds; seed++ {
			ri, rw, seed := ri, rw, seed
			tasks = append(tasks, func() {
				base := SynthConfig{
					Pipelines: rw.k, Stateful: rw.stateful, Pattern: workload.Skewed,
					Packets: sc.Packets, Seed: int64(seed),
				}
				m := base
				m.Arch = core.ArchMP5
				r := base
				r.Arch = core.ArchRecirc
				n := base
				n.Arch = core.ArchNaive
				mres := RunSynth(m)
				rres := RunSynth(r)
				nres := RunSynth(n)
				mp5T[ri][seed] = mres.Throughput
				recT[ri][seed] = rres.Throughput
				naiveT[ri][seed] = nres.Throughput
				rpp[ri][seed] = float64(rres.Recirculations) / float64(rres.Completed)
			})
		}
	}
	runAll(tasks)
	for ri, rw := range rows {
		loss := 1 - stats.Mean(recT[ri])/stats.Mean(mp5T[ri])
		t.Rows = append(t.Rows, []string{
			rw.label, f3(stats.Mean(mp5T[ri])), f3(stats.Mean(recT[ri])), f3(stats.Mean(naiveT[ri])),
			pct(loss), f2(stats.Mean(rpp[ri])),
			fmt.Sprint(stats.Mean(recT[ri]) < stats.Mean(naiveT[ri])),
		})
	}
	return t
}

// fig7Sweep runs MP5 and Ideal across a swept parameter for both patterns.
func fig7Sweep(title, param string, values []int, sc Scale, mk func(base SynthConfig, v int) SynthConfig) *Table {
	t := &Table{
		Title: title,
		Note:  "normalized throughput, mean across seeds; ideal = no HOL blocking + LPT sharding",
		Header: []string{param,
			"mp5(unif)", "ideal(unif)", "mp5(skew)", "ideal(skew)"},
	}
	patterns := []workload.Pattern{workload.Uniform, workload.Skewed}
	archs := []core.Arch{core.ArchMP5, core.ArchIdeal}
	// results[value][pattern*2+arch][seed]
	results := make([][][]float64, len(values))
	var tasks []func()
	for vi, v := range values {
		results[vi] = make([][]float64, len(patterns)*len(archs))
		for pi, pat := range patterns {
			for ai, arch := range archs {
				col := pi*len(archs) + ai
				results[vi][col] = make([]float64, sc.Seeds)
				for seed := 0; seed < sc.Seeds; seed++ {
					vi, v, col, seed, pat, arch := vi, v, col, seed, pat, arch
					tasks = append(tasks, func() {
						cfg := mk(SynthConfig{
							Arch: arch, Pipelines: DefaultPipelines,
							Stateful: DefaultStatefulStages, Pattern: pat,
							Packets: sc.Packets, Seed: int64(seed),
						}, v)
						results[vi][col][seed] = RunSynth(cfg).Throughput
					})
				}
			}
		}
	}
	runAll(tasks)
	for vi, v := range values {
		row := []string{fmt.Sprint(v)}
		for col := range results[vi] {
			row = append(row, f3(stats.Mean(results[vi][col])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7a sweeps the number of pipelines (paper: gentle decay, ~25% from 1
// to 16 pipelines).
func Fig7a(sc Scale) *Table {
	return fig7Sweep("Figure 7a: throughput vs number of pipelines", "pipelines",
		[]int{1, 2, 4, 8, 12, 16}, sc,
		func(b SynthConfig, v int) SynthConfig { b.Pipelines = v; return b })
}

// Fig7b sweeps the number of stateful stages (paper: ~20% decay from 0 to
// 10 stateful stages).
func Fig7b(sc Scale) *Table {
	return fig7Sweep("Figure 7b: throughput vs stateful stages", "stateful",
		[]int{0, 1, 2, 4, 6, 8, 10}, sc,
		func(b SynthConfig, v int) SynthConfig { b.Stateful = v; return b })
}

// Fig7c sweeps the register array size (paper: steady increase from 1 to
// 4096 — tiny arrays cannot be sharded effectively).
func Fig7c(sc Scale) *Table {
	return fig7Sweep("Figure 7c: throughput vs register size", "regsize",
		[]int{1, 4, 16, 64, 256, 512, 1024, 4096}, sc,
		func(b SynthConfig, v int) SynthConfig { b.RegSize = v; return b })
}

// Fig7d sweeps the packet size (paper: line rate from 128 B up).
func Fig7d(sc Scale) *Table {
	return fig7Sweep("Figure 7d: throughput vs packet size", "bytes",
		[]int{64, 128, 256, 512, 1024, 1500}, sc,
		func(b SynthConfig, v int) SynthConfig { b.PacketSize = v; return b })
}

// Fig8 runs the four real applications with realistic packet/flow
// distributions across pipeline counts (paper: line rate everywhere;
// max per-stage queue 11/8/7/7 for flowlet/CONGA/WFQ/sequencer).
func Fig8(sc Scale) *Table {
	t := &Table{
		Title:  "Figure 8: real applications (web-search flows, bimodal packet sizes)",
		Note:   "normalized throughput (and max per-stage queue depth)",
		Header: []string{"pipelines", "flowlet", "conga", "wfq", "sequencer"},
	}
	appList := apps.All()
	progs := make([]*ir.Program, len(appList))
	for i, a := range appList {
		progs[i] = a.MustCompile(compiler.TargetMP5)
	}
	ks := []int{1, 2, 4, 8}
	tputs := make([][][]float64, len(ks))
	maxQs := make([][][]int, len(ks))
	var tasks []func()
	for ki, k := range ks {
		tputs[ki] = make([][]float64, len(appList))
		maxQs[ki] = make([][]int, len(appList))
		for i, a := range appList {
			tputs[ki][i] = make([]float64, sc.Seeds)
			maxQs[ki][i] = make([]int, sc.Seeds)
			for seed := 0; seed < sc.Seeds; seed++ {
				ki, k, i, a, seed := ki, k, i, a, seed
				tasks = append(tasks, func() {
					trace := workload.Flows(progs[i], workload.FlowSpec{
						Packets: sc.Packets, Pipelines: k, Seed: int64(100 + seed),
					}, a.Bind)
					sim := core.NewSimulator(progs[i], core.Config{
						Arch: core.ArchMP5, Pipelines: k, Seed: int64(seed),
					})
					r := sim.Run(trace)
					noteRun(r)
					tputs[ki][i][seed] = r.Throughput
					maxQs[ki][i][seed] = r.MaxFIFODepth
				})
			}
		}
	}
	runAll(tasks)
	for ki, k := range ks {
		row := []string{fmt.Sprint(k)}
		for i := range appList {
			maxQ := 0
			for _, q := range maxQs[ki][i] {
				if q > maxQ {
					maxQ = q
				}
			}
			row = append(row, fmt.Sprintf("%s (q=%d)", f3(stats.Mean(tputs[ki][i])), maxQ))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// All regenerates every table and figure at the given scale, in paper
// order.
func All(sc Scale) []*Table {
	return []*Table{
		Table1(),
		SRAM(),
		D2Sharding(sc),
		D4Violations(sc),
		D3Steering(sc),
		Fig7a(sc),
		Fig7b(sc),
		Fig7c(sc),
		Fig7d(sc),
		Fig8(sc),
	}
}
