package experiments

import (
	"strconv"
	"strings"
	"testing"

	"mp5/internal/core"
	"mp5/internal/workload"
)

// tiny keeps the experiment tests fast while still exercising the full
// table-generation paths.
var tiny = Scale{Packets: 4000, Seeds: 1}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Model vs paper within 12% per row.
	for i := range tab.Rows {
		model := cell(t, tab, i, 2)
		paper := cell(t, tab, i, 3)
		if rel := (model - paper) / paper; rel > 0.12 || rel < -0.12 {
			t.Errorf("row %v: model %0.2f vs paper %0.2f", tab.Rows[i][:2], model, paper)
		}
		if tab.Rows[i][5] != "true" {
			t.Errorf("row %v misses 1 GHz", tab.Rows[i])
		}
	}
	if !strings.Contains(tab.Format(), "Table 1") {
		t.Error("formatting lost the title")
	}
}

func TestSRAMShape(t *testing.T) {
	tab := SRAM()
	// The paper's example row: 10 stages x 1000 entries ≈ 36.6 KB.
	found := false
	for _, row := range tab.Rows {
		if row[0] == "10" && row[1] == "1000" {
			found = true
			if kb, _ := strconv.ParseFloat(row[2], 64); kb < 35 || kb > 38 {
				t.Errorf("SRAM overhead %s KB, paper says ~35 KB", row[2])
			}
		}
	}
	if !found {
		t.Fatal("missing the paper's example row")
	}
}

func TestD2ShardingShape(t *testing.T) {
	tab := D2Sharding(tiny)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d (uniform, skewed, skewed+churn)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		gainMean, _ := strconv.ParseFloat(row[4], 64)
		if gainMean < 1.0 {
			t.Errorf("%s: dynamic sharding mean gain %.2f < 1", row[0], gainMean)
		}
	}
}

func TestD4ViolationsShape(t *testing.T) {
	tab := D4Violations(tiny)
	if tab.Rows[0][0] != "mp5" || tab.Rows[0][2] != "0.0%" {
		t.Fatalf("MP5 row must show zero violations: %v", tab.Rows[0])
	}
	noD4 := cell(t, tab, 1, 2)
	recirc := cell(t, tab, 2, 2)
	if noD4 <= 0 || recirc <= 0 {
		t.Errorf("ablations show no violations: nod4=%v recirc=%v", noD4, recirc)
	}
}

func TestD3SteeringShape(t *testing.T) {
	tab := D3Steering(tiny)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Light row: recirculation beats naive; crossover row: it does not.
	if tab.Rows[0][6] != "false" {
		t.Errorf("light config should keep recirc above naive: %v", tab.Rows[0])
	}
	if tab.Rows[3][6] != "true" {
		t.Errorf("crossover config should drop recirc below naive: %v", tab.Rows[3])
	}
	// MP5 must beat recirculation everywhere.
	for _, row := range tab.Rows {
		mp5T, _ := strconv.ParseFloat(row[1], 64)
		recT, _ := strconv.ParseFloat(row[2], 64)
		if mp5T <= recT {
			t.Errorf("%s: mp5 %v <= recirc %v", row[0], mp5T, recT)
		}
	}
}

func TestFig7dLineRateAt128B(t *testing.T) {
	tab := Fig7d(tiny)
	for _, row := range tab.Rows {
		if row[0] == "64" {
			continue
		}
		for col := 1; col <= 4; col++ {
			v, _ := strconv.ParseFloat(row[col], 64)
			if v < 0.99 {
				t.Errorf("packet size %s col %d: %.3f below line rate", row[0], col, v)
			}
		}
	}
}

func TestFig7aMonotonicPressure(t *testing.T) {
	tab := Fig7a(tiny)
	first := cell(t, tab, 0, 1)
	last := cell(t, tab, len(tab.Rows)-1, 1)
	if first < 0.99 {
		t.Errorf("single pipeline must hit line rate, got %.3f", first)
	}
	if last >= first {
		t.Errorf("throughput should decay with pipeline count: %0.3f -> %0.3f", first, last)
	}
	if last < 0.5 {
		t.Errorf("decay too aggressive (paper: ~25%% from 1 to 16): %.3f", last)
	}
}

func TestRunSynthRecordsViolations(t *testing.T) {
	r := RunSynth(SynthConfig{
		Arch: core.ArchMP5NoD4, Pipelines: 4, Stateful: 2,
		Pattern: workload.Uniform, Packets: 4000, Seed: 1, Record: true,
	})
	if r.ViolationFraction <= 0 {
		t.Error("no violations recorded for no-D4")
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{
		Title:  "x",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell-value", "1"}},
	}
	out := tab.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Column 2 must start at the same offset in header and row.
	h, r := lines[1], lines[2]
	if strings.Index(h, "long-header") != strings.Index(r, "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}
