package experiments

import (
	"runtime"
	"sync"
)

// parallelFor runs body(i) for i in [0, n) across GOMAXPROCS workers.
// Bodies must be independent; each writes only its own result slot.
// Experiment tables stay deterministic because results are indexed, not
// appended.
func parallelFor(n int, body func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				body(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// runAll executes a batch of independent experiment cells in parallel.
func runAll(tasks []func()) {
	parallelFor(len(tasks), func(i int) { tasks[i]() })
}
