package fuzz

import (
	"fmt"
	"sort"
	"strings"

	"mp5/internal/banzai"
	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/equiv"
	"mp5/internal/ir"
	"mp5/internal/workload"
)

// OrderPreserving lists the architectures that must reproduce the
// single-pipeline access order exactly (C1): MP5 itself and the baselines
// that serialize per state. The D4 ablation and the recirculation baseline
// are excluded — violating C1 is their documented behaviour.
var OrderPreserving = []core.Arch{
	core.ArchMP5, core.ArchIdeal, core.ArchNaive, core.ArchStaticShard,
}

// Case is one differential-fuzzing input: a generated program plus the
// knobs that deterministically expand into a workload. Everything needed
// to reproduce a run is in the case (and serializes to JSON).
type Case struct {
	// ProgSeed/Size regenerate the program when Source is empty; after
	// shrinking, Source carries the minimized program verbatim.
	ProgSeed int64  `json:"prog_seed"`
	Size     int    `json:"size"`
	Source   string `json:"source,omitempty"`
	// Workload knobs.
	WorkSeed  int64 `json:"work_seed"`
	Packets   int   `json:"packets"`
	Pipelines int   `json:"pipelines"`
}

// SourceText returns the case's program source, generating it from
// (ProgSeed, Size) when no explicit source is pinned.
func (c *Case) SourceText() string {
	if c.Source != "" {
		return c.Source
	}
	return Generate(c.ProgSeed, c.Size)
}

// workSpec expands the workload knobs into a FuzzSpec: the seed draws the
// skew, burst and flow parameters so one int64 covers the whole workload
// shape space.
func (c *Case) workSpec() workload.FuzzSpec {
	s := c.WorkSeed
	pick := func(n int64) int64 { // successive deterministic draws
		s = int64(ir.Mix64(uint64(s)))
		v := s % n
		if v < 0 {
			v += n
		}
		return v
	}
	fs := workload.FuzzSpec{
		Spec: workload.Spec{
			Packets:   c.Packets,
			Pipelines: c.Pipelines,
			Seed:      c.WorkSeed,
		},
		Domain: []int{8, 64, 1024}[pick(3)],
	}
	if pick(2) == 0 {
		fs.Pattern = workload.Skewed
	}
	if pick(2) == 0 {
		fs.Flows = int(pick(7)) + 2
	}
	if pick(2) == 0 {
		fs.BurstProb = 0.1
		fs.BurstLen = int(pick(6)) + 2
	}
	return fs
}

// Arrivals expands the case into its deterministic arrival trace.
func (c *Case) Arrivals(prog *ir.Program) []core.Arrival {
	return workload.FuzzTrace(prog, c.workSpec())
}

// OrderDiv names one point where a state's observed access order diverged
// from the single-pipeline reference. Want/Got are packet ids; -1 marks a
// missing entry (sequences of different length).
type OrderDiv struct {
	State string `json:"state"`
	Pos   int    `json:"pos"`
	Want  int64  `json:"want"`
	Got   int64  `json:"got"`
}

func (d OrderDiv) String() string {
	return fmt.Sprintf("%s position %d: reference packet %d, observed %d",
		d.State, d.Pos, d.Want, d.Got)
}

// Failure is one architecture's divergence from the reference on one case.
type Failure struct {
	Arch core.Arch `json:"arch"`
	// Reason is "compile", "stall", "loss", "state" (equiv mismatch in
	// registers or packet outputs), or "order" (C1 violation).
	Reason string        `json:"reason"`
	Detail string        `json:"detail,omitempty"`
	Report *equiv.Report `json:"report,omitempty"`
	Order  []OrderDiv    `json:"order,omitempty"`
}

func (f *Failure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %s", f.Arch, f.Reason)
	if f.Detail != "" {
		fmt.Fprintf(&b, " (%s)", f.Detail)
	}
	for _, d := range f.Order {
		b.WriteString("\n  order: " + d.String())
	}
	if f.Report != nil && !f.Report.Equivalent {
		b.WriteString("\n  " + f.Report.String())
	}
	return b.String()
}

// maxOrderDivs caps the reported per-state divergences.
const maxOrderDivs = 8

// reference bundles the single-pipeline ground truth for one case so it is
// computed once and shared across all architecture runs.
type reference struct {
	prog     *ir.Program
	arrivals []core.Arrival
	order    map[string][]int64
	k        int
}

func newReference(prog *ir.Program, arrivals []core.Arrival, k int) *reference {
	return &reference{
		prog:     prog,
		arrivals: arrivals,
		order:    equiv.ReferenceOrder(prog, arrivals),
		k:        k,
	}
}

// runArch simulates the case on one architecture and compares against the
// reference. nil means the architecture matched on every oracle.
func (r *reference) runArch(arch core.Arch, seed int64) *Failure {
	got := map[string][]int64{}
	sim := core.NewSimulator(r.prog, core.Config{
		Arch: arch, Pipelines: r.k, Seed: seed,
		RecordOutputs: true,
		Trace: func(e core.Event) {
			if e.Kind == core.EvAccess {
				key := banzai.AccessKey(e.Reg, e.Idx)
				got[key] = append(got[key], e.PktID)
			}
		},
	})
	res := sim.Run(r.arrivals)
	if res.Stalled {
		return &Failure{Arch: arch, Reason: "stall",
			Detail: fmt.Sprintf("%d of %d completed after %d cycles", res.Completed, res.Injected, res.Cycles)}
	}
	if res.Completed != res.Injected {
		return &Failure{Arch: arch, Reason: "loss",
			Detail: fmt.Sprintf("%d of %d completed", res.Completed, res.Injected)}
	}
	if divs := diffOrders(r.order, got); len(divs) > 0 {
		return &Failure{Arch: arch, Reason: "order", Order: divs}
	}
	if rep := equiv.Check(r.prog, sim, r.arrivals); !rep.Equivalent {
		return &Failure{Arch: arch, Reason: "state", Report: rep}
	}
	return nil
}

// diffOrders compares every state's observed access sequence against the
// reference, returning the first divergence per state (capped). Keys are
// compared in both directions so spurious and missing states both surface.
func diffOrders(want, got map[string][]int64) []OrderDiv {
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var divs []OrderDiv
	for _, k := range keys {
		if len(divs) >= maxOrderDivs {
			break
		}
		w, g := want[k], got[k]
		n := len(w)
		if len(g) > n {
			n = len(g)
		}
		for i := 0; i < n; i++ {
			wv, gv := int64(-1), int64(-1)
			if i < len(w) {
				wv = w[i]
			}
			if i < len(g) {
				gv = g[i]
			}
			if wv != gv {
				divs = append(divs, OrderDiv{State: k, Pos: i, Want: wv, Got: gv})
				break // first divergence per state
			}
		}
	}
	return divs
}

// Run compiles the case and checks every architecture in archs against the
// single-pipeline reference, returning one Failure per diverging
// architecture. A compile error returns a single "compile" failure (the
// generator aims for 100% compilable output, so this is itself a finding).
func Run(c *Case, archs []core.Arch) []*Failure {
	if c.Pipelines <= 0 {
		c.Pipelines = core.DefaultPipelines
	}
	prog, err := compiler.Compile(c.SourceText(), compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		return []*Failure{{Reason: "compile", Detail: err.Error()}}
	}
	arrivals := c.Arrivals(prog)
	if len(arrivals) == 0 {
		return nil
	}
	ref := newReference(prog, arrivals, c.Pipelines)
	var fails []*Failure
	for _, a := range archs {
		if f := ref.runArch(a, c.WorkSeed); f != nil {
			fails = append(fails, f)
		}
	}
	return fails
}
