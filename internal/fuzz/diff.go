package fuzz

import (
	"fmt"
	"sort"
	"strings"

	"mp5/internal/banzai"
	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/equiv"
	"mp5/internal/ir"
	"mp5/internal/screp"
	"mp5/internal/workload"
)

// OrderPreserving lists the architectures that must reproduce the
// single-pipeline access order exactly (C1): MP5 itself and the baselines
// that serialize per state. The D4 ablation and the recirculation baseline
// are excluded — violating C1 is their documented behaviour.
var OrderPreserving = []core.Arch{
	core.ArchMP5, core.ArchIdeal, core.ArchNaive, core.ArchStaticShard,
}

// Engine names distinguish which execution engine produced a Failure: the
// event-driven simulator ("core", the default — old artifacts with no engine
// field decode to it), the simulator's legacy full-sweep scheduler
// ("core-sweep"), the concurrent goroutine dataplane ("dataplane"), or the
// direct bytecode-vs-interpreter differential on the serial single-pipeline
// machine ("bytecode").
const (
	EngineCore      = "core"
	EngineSweep     = "core-sweep"
	EngineDataplane = "dataplane"
	EngineBytecode  = "bytecode"
	// EngineMultiTenant is the multi-tenant dataplane differential: K
	// generated programs interleaved on ONE engine, each held to its own
	// independent single-pipeline reference — the tenant-isolation oracle.
	EngineMultiTenant = "dataplane-mt"
	// EngineScrep is the state-compute-replication engine (internal/screp):
	// full-state replicas with round-robin spray and sequenced write-delta
	// replay, held to the same three oracles as the sharded dataplane.
	EngineScrep = "screp"
)

// MultiTenantPrograms is how many programs the multi-tenant leg loads side
// by side: the case's own program plus derived-seed siblings.
const MultiTenantPrograms = 3

// mtPacketCap bounds each tenant's trace in the multi-tenant leg so the
// K-program run stays smoke-grade.
const mtPacketCap = 400

// Executor names select (Case.Executor) and record (Failure.Executor) which
// stage executor an engine ran: the compiled bytecode VM (the default) or
// the tree-walking ir interpreter that serves as the semantic oracle.
const (
	ExecBytecode = "bytecode"
	ExecInterp   = "interp"
)

// SubmitSingle marks a dataplane failure produced by the per-packet Submit
// admission path (Failure.Submit); empty means the batched path.
const SubmitSingle = "single"

// DataplaneWorkers are the worker counts Run sweeps the concurrent dataplane
// across: serial, minimal concurrency, and enough workers to exercise
// steering, parking and remapping on programs with several stateful stages.
var DataplaneWorkers = []int{1, 2, 4}

// Case is one differential-fuzzing input: a generated program plus the
// knobs that deterministically expand into a workload. Everything needed
// to reproduce a run is in the case (and serializes to JSON).
type Case struct {
	// ProgSeed/Size regenerate the program when Source is empty; after
	// shrinking, Source carries the minimized program verbatim.
	ProgSeed int64  `json:"prog_seed"`
	Size     int    `json:"size"`
	Source   string `json:"source,omitempty"`
	// Workload knobs.
	WorkSeed  int64 `json:"work_seed"`
	Packets   int   `json:"packets"`
	Pipelines int   `json:"pipelines"`
	// Executor forces the stage executor for the engine sweep: ExecInterp
	// pins the tree-walking interpreter, ExecBytecode (or empty) the
	// compiled bytecode VM. Run always adds one cross-executor engine run
	// and the direct bytecode-vs-interpreter differential on top.
	Executor string `json:"executor,omitempty"`
}

// SourceText returns the case's program source, generating it from
// (ProgSeed, Size) when no explicit source is pinned.
func (c *Case) SourceText() string {
	if c.Source != "" {
		return c.Source
	}
	return Generate(c.ProgSeed, c.Size)
}

// workSpec expands the workload knobs into a FuzzSpec: the seed draws the
// skew, burst and flow parameters so one int64 covers the whole workload
// shape space.
func (c *Case) workSpec() workload.FuzzSpec {
	s := c.WorkSeed
	pick := func(n int64) int64 { // successive deterministic draws
		s = int64(ir.Mix64(uint64(s)))
		v := s % n
		if v < 0 {
			v += n
		}
		return v
	}
	fs := workload.FuzzSpec{
		Spec: workload.Spec{
			Packets:   c.Packets,
			Pipelines: c.Pipelines,
			Seed:      c.WorkSeed,
		},
		Domain: []int{8, 64, 1024}[pick(3)],
	}
	if pick(2) == 0 {
		fs.Pattern = workload.Skewed
	}
	if pick(2) == 0 {
		fs.Flows = int(pick(7)) + 2
	}
	if pick(2) == 0 {
		fs.BurstProb = 0.1
		fs.BurstLen = int(pick(6)) + 2
	}
	return fs
}

// Arrivals expands the case into its deterministic arrival trace.
func (c *Case) Arrivals(prog *ir.Program) []core.Arrival {
	return workload.FuzzTrace(prog, c.workSpec())
}

// OrderDiv names one point where a state's observed access order diverged
// from the single-pipeline reference. Want/Got are packet ids; -1 marks a
// missing entry (sequences of different length).
type OrderDiv struct {
	State string `json:"state"`
	Pos   int    `json:"pos"`
	Want  int64  `json:"want"`
	Got   int64  `json:"got"`
}

func (d OrderDiv) String() string {
	return fmt.Sprintf("%s position %d: reference packet %d, observed %d",
		d.State, d.Pos, d.Want, d.Got)
}

// Failure is one engine configuration's divergence from the reference on one
// case.
type Failure struct {
	// Engine identifies the execution engine (EngineCore, EngineSweep or
	// EngineDataplane); empty means EngineCore for artifacts written before
	// the field existed. Arch is the simulated architecture for the core
	// engines (always ArchMP5 for sweep and dataplane); Workers is the
	// dataplane worker count (0 otherwise).
	Engine  string    `json:"engine,omitempty"`
	Arch    core.Arch `json:"arch"`
	Workers int       `json:"workers,omitempty"`
	// Executor records which stage executor the diverging engine ran
	// (ExecBytecode or ExecInterp); empty means ExecBytecode for artifacts
	// written before the field existed. A "bytecode"-engine failure means
	// the two executors disagreed outright on the serial machine.
	Executor string `json:"executor,omitempty"`
	// Submit records the dataplane admission path: SubmitSingle for the
	// per-packet Submit loop, empty for the default coalesced SubmitBatch
	// (which Run uses).
	Submit string `json:"submit,omitempty"`
	// Tenant names the diverging tenant of an EngineMultiTenant failure
	// ("t0" is the case's own program, "t1".. the derived siblings); empty
	// for single-program engines and for whole-engine failures (stall/loss).
	Tenant string `json:"tenant,omitempty"`
	// Reason is "compile", "stall", "loss", "state" (equiv mismatch in
	// registers or packet outputs), or "order" (C1 violation).
	Reason string        `json:"reason"`
	Detail string        `json:"detail,omitempty"`
	Report *equiv.Report `json:"report,omitempty"`
	Order  []OrderDiv    `json:"order,omitempty"`
}

func (f *Failure) String() string {
	var b strings.Builder
	switch f.Engine {
	case EngineDataplane:
		mode := ""
		if f.Submit == SubmitSingle {
			mode = ", submit=single"
		}
		fmt.Fprintf(&b, "dataplane(workers=%d%s): %s", f.Workers, mode, f.Reason)
	case EngineMultiTenant:
		who := "engine"
		if f.Tenant != "" {
			who = "tenant " + f.Tenant
		}
		fmt.Fprintf(&b, "dataplane-mt(workers=%d, %s): %s", f.Workers, who, f.Reason)
	case EngineScrep:
		mode := ""
		if f.Submit == SubmitSingle {
			mode = ", submit=single"
		}
		fmt.Fprintf(&b, "screp(workers=%d%s): %s", f.Workers, mode, f.Reason)
	case EngineSweep:
		fmt.Fprintf(&b, "%v (full-sweep): %s", f.Arch, f.Reason)
	case EngineBytecode:
		fmt.Fprintf(&b, "bytecode-vs-interpreter: %s", f.Reason)
	default:
		fmt.Fprintf(&b, "%v: %s", f.Arch, f.Reason)
	}
	if f.Executor == ExecInterp {
		b.WriteString(" [interp]")
	}
	if f.Detail != "" {
		fmt.Fprintf(&b, " (%s)", f.Detail)
	}
	for _, d := range f.Order {
		b.WriteString("\n  order: " + d.String())
	}
	if f.Report != nil && !f.Report.Equivalent {
		b.WriteString("\n  " + f.Report.String())
	}
	return b.String()
}

// maxOrderDivs caps the reported per-state divergences.
const maxOrderDivs = 8

// reference bundles the single-pipeline ground truth for one case so it is
// computed once and shared across all architecture runs.
type reference struct {
	prog     *ir.Program
	arrivals []core.Arrival
	order    map[string][]int64
	k        int
	// interp pins the engines under test to the tree-walking interpreter
	// (the reference itself always runs the interpreter, so an interp-pinned
	// sweep checks the engine logic alone, with the executor cancelled out).
	interp bool
}

// execName names the executor this reference's engine runs carry.
func (r *reference) execName() string {
	if r.interp {
		return ExecInterp
	}
	return ExecBytecode
}

func newReference(prog *ir.Program, arrivals []core.Arrival, k int) *reference {
	return &reference{
		prog:     prog,
		arrivals: arrivals,
		order:    equiv.ReferenceOrder(prog, arrivals),
		k:        k,
	}
}

// runCore simulates the case on one architecture of the cycle-accurate
// simulator and compares against the reference; fullSweep forces the legacy
// every-slot-every-cycle scheduler (always on ArchMP5). nil means the engine
// matched on every oracle.
func (r *reference) runCore(arch core.Arch, seed int64, fullSweep bool) *Failure {
	engine := EngineCore
	if fullSweep {
		engine, arch = EngineSweep, core.ArchMP5
	}
	got := map[string][]int64{}
	sim := core.NewSimulator(r.prog, core.Config{
		Arch: arch, Pipelines: r.k, Seed: seed,
		RecordOutputs: true,
		Interpret:     r.interp,
		Trace: func(e core.Event) {
			if e.Kind == core.EvAccess {
				key := banzai.AccessKey(e.Reg, e.Idx)
				got[key] = append(got[key], e.PktID)
			}
		},
	})
	sim.SetFullSweep(fullSweep)
	fail := &Failure{Engine: engine, Arch: arch, Executor: r.execName()}
	res := sim.Run(r.arrivals)
	if res.Stalled {
		fail.Reason = "stall"
		fail.Detail = fmt.Sprintf("%d of %d completed after %d cycles", res.Completed, res.Injected, res.Cycles)
		return fail
	}
	if res.Completed != res.Injected {
		fail.Reason = "loss"
		fail.Detail = fmt.Sprintf("%d of %d completed", res.Completed, res.Injected)
		return fail
	}
	if divs := diffOrders(r.order, got); len(divs) > 0 {
		fail.Reason = "order"
		fail.Order = divs
		return fail
	}
	if rep := equiv.Check(r.prog, sim, r.arrivals); !rep.Equivalent {
		fail.Reason = "state"
		fail.Report = rep
		return fail
	}
	return nil
}

// runBytecode differences the bytecode VM against the tree-walking
// interpreter in the tightest possible setting: the serial single-pipeline
// machine, same program, same arrival order — only the executor differs, so
// scheduling cannot mask (or manufacture) a miscompile. Oracles: per-slot
// C1 access order (the compiled observation hooks must fire identically)
// and final registers plus per-packet outputs.
func (r *reference) runBytecode() *Failure {
	fail := &Failure{Engine: EngineBytecode, Arch: core.ArchMP5, Executor: ExecBytecode}
	m := banzai.NewMachine(r.prog) // bytecode VM is the machine default
	m.RecordIndexedAccesses()
	outputs := make(map[int64][]int64, len(r.arrivals))
	for i := range r.arrivals {
		env := ir.NewEnv(r.prog)
		copy(env.Fields, r.arrivals[i].Fields)
		m.Process(int64(i), env)
		outputs[int64(i)] = append([]int64(nil), env.Fields...)
	}
	if divs := diffOrders(r.order, m.IndexedAccessLog()); len(divs) > 0 {
		fail.Reason = "order"
		fail.Order = divs
		return fail
	}
	if rep := equiv.CheckState(r.prog, m.Regs().Snapshot(), outputs, r.arrivals); !rep.Equivalent {
		fail.Reason = "state"
		fail.Report = rep
		return fail
	}
	return nil
}

// runDataplane executes the case on the concurrent goroutine dataplane with
// the given worker count and holds it to the same oracles as the simulator:
// liveness (no watchdog stall), loss-freedom, C1 per-slot access order, and
// final registers plus packet outputs. single selects the per-packet Submit
// admission path instead of Run's coalesced SubmitBatch, so both hot paths
// (and the packet recycling both share) stay differentially checked.
func (r *reference) runDataplane(workers int, single bool) *Failure {
	fail := &Failure{Engine: EngineDataplane, Arch: core.ArchMP5, Workers: workers, Executor: r.execName()}
	if single {
		fail.Submit = SubmitSingle
	}
	eng := dataplane.New(r.prog, dataplane.Config{
		Workers:           workers,
		RecordOutputs:     true,
		RecordAccessOrder: true,
		Interpret:         r.interp,
	})
	var res *dataplane.Result
	if single {
		eng.Start()
		for i := range r.arrivals {
			if !eng.Submit(&r.arrivals[i]) {
				break
			}
		}
		res = eng.Drain()
	} else {
		res = eng.Run(r.arrivals)
	}
	if res.Stalled {
		fail.Reason = "stall"
		fail.Detail = fmt.Sprintf("%d of %d completed before the watchdog fired", res.Completed, res.Injected)
		return fail
	}
	if res.Completed != res.Injected {
		fail.Reason = "loss"
		fail.Detail = fmt.Sprintf("%d of %d completed", res.Completed, res.Injected)
		return fail
	}
	if divs := diffOrders(r.order, eng.AccessOrders()); len(divs) > 0 {
		fail.Reason = "order"
		fail.Order = divs
		return fail
	}
	if rep := equiv.CheckState(r.prog, eng.FinalRegs(), eng.Outputs(), r.arrivals); !rep.Equivalent {
		fail.Reason = "state"
		fail.Report = rep
		return fail
	}
	return nil
}

// runScrep executes the case on the state-compute-replication engine with
// the given replica count and holds it to the same oracles as the sharded
// dataplane: liveness, loss-freedom, C1 per-slot access order, and final
// registers plus packet outputs. Since every replica holds the full state,
// an order or state divergence here means the delta replay chain broke —
// the exact failure mode replication trades the shard map away for.
func (r *reference) runScrep(workers int, single bool) *Failure {
	fail := &Failure{Engine: EngineScrep, Arch: core.ArchMP5, Workers: workers, Executor: r.execName()}
	if single {
		fail.Submit = SubmitSingle
	}
	eng := screp.New(r.prog, screp.Config{
		Workers:           workers,
		RecordOutputs:     true,
		RecordAccessOrder: true,
		Interpret:         r.interp,
	})
	var res *screp.Result
	if single {
		eng.Start()
		for i := range r.arrivals {
			if !eng.Submit(&r.arrivals[i]) {
				break
			}
		}
		res = eng.Drain()
	} else {
		res = eng.Run(r.arrivals)
	}
	if res.Stalled {
		fail.Reason = "stall"
		fail.Detail = fmt.Sprintf("%d of %d completed before the watchdog fired", res.Completed, res.Injected)
		return fail
	}
	if res.Completed != res.Injected {
		fail.Reason = "loss"
		fail.Detail = fmt.Sprintf("%d of %d completed", res.Completed, res.Injected)
		return fail
	}
	if divs := diffOrders(r.order, eng.AccessOrders()); len(divs) > 0 {
		fail.Reason = "order"
		fail.Order = divs
		return fail
	}
	if rep := equiv.CheckState(r.prog, eng.FinalRegs(), eng.Outputs(), r.arrivals); !rep.Equivalent {
		fail.Reason = "state"
		fail.Report = rep
		return fail
	}
	return nil
}

// mtTenant is one tenant of the multi-tenant differential leg: its own
// program, its own deterministic trace, and its own reference order.
type mtTenant struct {
	name  string
	prog  *ir.Program
	arrs  []core.Arrival
	order map[string][]int64
}

// multiTenantSetup expands the case into the K tenants the multi-tenant leg
// interleaves: tenant t0 runs the case's own program on (a capped prefix
// of) the case's workload knobs, t1.. run sibling programs generated from
// derived seeds with derived workloads. Fully deterministic in the case, so
// runLike reproduces the exact run.
func multiTenantSetup(c *Case) ([]mtTenant, *Failure) {
	tenants := make([]mtTenant, 0, MultiTenantPrograms)
	for i := 0; i < MultiTenantPrograms; i++ {
		name := fmt.Sprintf("t%d", i)
		sub := *c
		sub.WorkSeed = c.WorkSeed + int64(i)*7919
		if sub.Packets > mtPacketCap {
			sub.Packets = mtPacketCap
		}
		if i > 0 {
			sub.ProgSeed = c.ProgSeed + int64(i)*104729
			sub.Source = "" // siblings always regenerate from the derived seed
		}
		prog, err := compiler.Compile(sub.SourceText(), compiler.Options{Target: compiler.TargetMP5})
		if err != nil {
			return nil, &Failure{Engine: EngineMultiTenant, Arch: core.ArchMP5,
				Tenant: name, Reason: "compile", Detail: err.Error()}
		}
		arrs := sub.Arrivals(prog)
		if len(arrs) == 0 {
			continue
		}
		tenants = append(tenants, mtTenant{
			name:  name,
			prog:  prog,
			arrs:  arrs,
			order: equiv.ReferenceOrder(prog, arrs),
		})
	}
	return tenants, nil
}

// runMultiTenant interleaves the K tenant programs on one multi-program
// engine in round-robin batches and holds every tenant to its own
// single-pipeline reference: the engine as a whole must not stall or lose
// packets, and each tenant's namespace must match its reference on final
// registers, packet outputs, and per-slot C1 access order — exactly as if
// it had run alone.
func runMultiTenant(c *Case, workers int) []*Failure {
	tenants, cfail := multiTenantSetup(c)
	if cfail != nil {
		cfail.Workers = workers
		return []*Failure{cfail}
	}
	interp := c.Executor == ExecInterp
	exec := ExecBytecode
	if interp {
		exec = ExecInterp
	}
	eng := dataplane.NewMulti(dataplane.Config{
		Workers:           workers,
		RecordOutputs:     true,
		RecordAccessOrder: true,
		Interpret:         interp,
	})
	handles := make([]*dataplane.Handle, len(tenants))
	for i, tn := range tenants {
		handles[i] = eng.AddProgram(tn.name, tn.prog, nil)
	}
	eng.Start()
	total := 0
	offs := make([]int, len(tenants))
	const chunk = 61
	for {
		idle := true
		for i := range tenants {
			if offs[i] >= len(tenants[i].arrs) {
				continue
			}
			idle = false
			end := offs[i] + chunk
			if end > len(tenants[i].arrs) {
				end = len(tenants[i].arrs)
			}
			got := eng.SubmitBatchTo(handles[i], tenants[i].arrs[offs[i]:end], nil)
			offs[i] += got
			total += got
			if got == 0 { // unlimited tenants: a refusal means the engine died
				idle = true
				break
			}
		}
		if idle {
			break
		}
	}
	res := eng.Drain()
	fail := func(tenant string) *Failure {
		return &Failure{Engine: EngineMultiTenant, Arch: core.ArchMP5,
			Workers: workers, Executor: exec, Tenant: tenant}
	}
	if res.Stalled {
		f := fail("")
		f.Reason = "stall"
		f.Detail = fmt.Sprintf("%d of %d completed before the watchdog fired", res.Completed, res.Injected)
		return []*Failure{f}
	}
	if res.Completed != int64(total) || total != totalArrivals(tenants) {
		f := fail("")
		f.Reason = "loss"
		f.Detail = fmt.Sprintf("%d of %d completed (%d admitted)", res.Completed, totalArrivals(tenants), total)
		return []*Failure{f}
	}
	var fails []*Failure
	for i, tn := range tenants {
		if divs := diffOrders(tn.order, eng.AccessOrdersFor(handles[i])); len(divs) > 0 {
			f := fail(tn.name)
			f.Reason = "order"
			f.Order = divs
			fails = append(fails, f)
			continue
		}
		if rep := equiv.CheckState(tn.prog, eng.FinalRegsFor(handles[i]), eng.OutputsFor(handles[i]), tn.arrs); !rep.Equivalent {
			f := fail(tn.name)
			f.Reason = "state"
			f.Report = rep
			fails = append(fails, f)
		}
	}
	return fails
}

func totalArrivals(tenants []mtTenant) int {
	n := 0
	for _, tn := range tenants {
		n += len(tn.arrs)
	}
	return n
}

// diffOrders compares every state's observed access sequence against the
// reference, returning the first divergence per state (capped). Keys are
// compared in both directions so spurious and missing states both surface.
func diffOrders(want, got map[string][]int64) []OrderDiv {
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var divs []OrderDiv
	for _, k := range keys {
		if len(divs) >= maxOrderDivs {
			break
		}
		w, g := want[k], got[k]
		n := len(w)
		if len(g) > n {
			n = len(g)
		}
		for i := 0; i < n; i++ {
			wv, gv := int64(-1), int64(-1)
			if i < len(w) {
				wv = w[i]
			}
			if i < len(g) {
				gv = g[i]
			}
			if wv != gv {
				divs = append(divs, OrderDiv{State: k, Pos: i, Want: wv, Got: gv})
				break // first divergence per state
			}
		}
	}
	return divs
}

// Run compiles the case once and checks it against the single-pipeline
// reference on every engine configuration: the direct bytecode-vs-interpreter
// differential on the serial machine, each architecture in archs on the
// event-driven simulator, ArchMP5 on the simulator's legacy full-sweep
// scheduler, the concurrent goroutine dataplane and the state-compute-
// replication engine at every DataplaneWorkers count, and one cross-executor
// ArchMP5 run (the sweep's executor flipped) — so one seed cross-checks every
// engine and both stage executors. It returns one Failure per diverging
// configuration. A compile error returns a single "compile" failure (the
// generator aims for 100% compilable output, so this is itself a finding).
func Run(c *Case, archs []core.Arch) []*Failure {
	return RunEngines(c, archs, "")
}

// RunEngines is Run with an engine filter: only restricts the sweep to one
// engine family (an Engine* constant; EngineCore also keeps the per-arch
// sweep and the cross-executor run). Empty means everything. The filter is
// what -engine on mp5fuzz and MP5_FUZZ_ENGINE in the test harness plug
// into — a replication-only soak costs a fraction of the full sweep.
func RunEngines(c *Case, archs []core.Arch, only string) []*Failure {
	want := func(engine string) bool { return only == "" || only == engine }
	if c.Pipelines <= 0 {
		c.Pipelines = core.DefaultPipelines
	}
	prog, err := compiler.Compile(c.SourceText(), compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		return []*Failure{{Reason: "compile", Detail: err.Error()}}
	}
	arrivals := c.Arrivals(prog)
	if len(arrivals) == 0 {
		return nil
	}
	ref := newReference(prog, arrivals, c.Pipelines)
	ref.interp = c.Executor == ExecInterp
	var fails []*Failure
	if want(EngineBytecode) {
		if f := ref.runBytecode(); f != nil {
			fails = append(fails, f)
		}
	}
	if want(EngineCore) {
		for _, a := range archs {
			if f := ref.runCore(a, c.WorkSeed, false); f != nil {
				fails = append(fails, f)
			}
		}
	}
	if want(EngineSweep) {
		if f := ref.runCore(core.ArchMP5, c.WorkSeed, true); f != nil {
			fails = append(fails, f)
		}
	}
	if want(EngineDataplane) {
		for _, w := range DataplaneWorkers {
			if f := ref.runDataplane(w, false); f != nil {
				fails = append(fails, f)
			}
		}
		// One per-packet-Submit dataplane run: the sweep above exercises the
		// batched admission path, so this leg keeps the single-packet path
		// (and its distinct ticket/dispatch interleaving) under the same
		// three oracles.
		if f := ref.runDataplane(2, true); f != nil {
			fails = append(fails, f)
		}
	}
	if want(EngineScrep) {
		// Replication leg: same worker sweep and same oracles as the sharded
		// engine, plus one per-packet-Submit run — so both strategies answer
		// to the identical differential contract on every case.
		for _, w := range DataplaneWorkers {
			if f := ref.runScrep(w, false); f != nil {
				fails = append(fails, f)
			}
		}
		if f := ref.runScrep(2, true); f != nil {
			fails = append(fails, f)
		}
	}
	if want(EngineMultiTenant) {
		// Multi-tenant leg: the case's program plus derived siblings
		// interleaved on one engine, each tenant against its own reference.
		fails = append(fails, runMultiTenant(c, 4)...)
	}
	if want(EngineCore) {
		// Cross-executor run: whatever executor the sweep above used, run the
		// flagship architecture once with the other one, so both the compiled
		// path and the interpreter path stay exercised on every case.
		cross := *ref
		cross.interp = !ref.interp
		if f := cross.runCore(core.ArchMP5, c.WorkSeed, false); f != nil {
			fails = append(fails, f)
		}
	}
	return fails
}

// runLike reruns only the engine configuration that produced like, returning
// its failure if the case still diverges (or a "compile" failure). This is
// the shrink loop's reproduction predicate: matching on the originating
// engine keeps a minimization from being hijacked by an unrelated divergence
// on another engine, and skips the cost of the full three-engine sweep on
// every candidate.
func runLike(c *Case, like *Failure) *Failure {
	if c.Pipelines <= 0 {
		c.Pipelines = core.DefaultPipelines
	}
	prog, err := compiler.Compile(c.SourceText(), compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		return &Failure{Reason: "compile", Detail: err.Error()}
	}
	arrivals := c.Arrivals(prog)
	if len(arrivals) == 0 {
		return nil
	}
	ref := newReference(prog, arrivals, c.Pipelines)
	ref.interp = like.Executor == ExecInterp
	switch like.Engine {
	case EngineBytecode:
		return ref.runBytecode()
	case EngineSweep:
		return ref.runCore(core.ArchMP5, c.WorkSeed, true)
	case EngineDataplane:
		return ref.runDataplane(like.Workers, like.Submit == SubmitSingle)
	case EngineScrep:
		return ref.runScrep(like.Workers, like.Submit == SubmitSingle)
	case EngineMultiTenant:
		workers := like.Workers
		if workers <= 0 {
			workers = 4
		}
		fails := runMultiTenant(c, workers)
		for _, f := range fails {
			if f.Tenant == like.Tenant {
				return f
			}
		}
		if len(fails) > 0 {
			return fails[0]
		}
		return nil
	default:
		return ref.runCore(like.Arch, c.WorkSeed, false)
	}
}
