package fuzz

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"mp5/internal/compiler"
	"mp5/internal/core"
)

// TestGeneratorCompiles: every generated program must compile for the MP5
// target — the generator's contract. Doubles as a coverage check that the
// whole feature surface (guards, else branches, ternaries, builtins,
// tables, data-dependent indices) appears across seeds.
func TestGeneratorCompiles(t *testing.T) {
	features := map[string]bool{
		"if (": false, "else": false, "?": false, "hash2(": false,
		"max(": false, "min(": false, "t0 (2)": false, "%": false,
	}
	for seed := int64(0); seed < 300; seed++ {
		src := Generate(seed, int(seed%8)+1)
		if _, err := compiler.Compile(src, compiler.Options{Target: compiler.TargetMP5}); err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, src)
		}
		for f := range features {
			if strings.Contains(src, f) {
				features[f] = true
			}
		}
	}
	for f, seen := range features {
		if !seen {
			t.Errorf("no generated program used %q in 300 seeds", f)
		}
	}
}

// TestGeneratorDeterministic: same (seed, size) → same source.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		if Generate(seed, 3) != Generate(seed, 3) {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
}

// smokeCases returns the deterministic case list for the smoke run; the
// count is env-overridable so `make fuzz-smoke` can run a longer sweep
// without code changes, and MP5_FUZZ_EXECUTOR ("interp" or "bytecode")
// forces the engine sweep's stage executor so check.sh can pin the
// compiled path explicitly.
func smokeCases(t testing.TB) []*Case {
	n := 25
	if v := os.Getenv("MP5_FUZZ_CASES"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			t.Fatalf("bad MP5_FUZZ_CASES=%q", v)
		}
		n = p
	}
	executor := os.Getenv("MP5_FUZZ_EXECUTOR")
	switch executor {
	case "", ExecInterp, ExecBytecode:
	default:
		t.Fatalf("bad MP5_FUZZ_EXECUTOR=%q (want %q or %q)", executor, ExecInterp, ExecBytecode)
	}
	cases := make([]*Case, n)
	for i := range cases {
		s := int64(i)
		cases[i] = &Case{
			ProgSeed: s*7919 + 1, Size: i%8 + 1,
			WorkSeed: s*104729 + 3, Packets: 300 + i%5*100,
			Pipelines: []int{2, 4, 8}[i%3],
			Executor:  executor,
		}
	}
	return cases
}

// smokeEngine reads the MP5_FUZZ_ENGINE engine filter for the smoke gate:
// empty sweeps everything, an Engine* name restricts the run to that engine
// family (check.sh uses "screp" for the replication-only leg).
func smokeEngine(t testing.TB) string {
	engine := os.Getenv("MP5_FUZZ_ENGINE")
	switch engine {
	case "", EngineCore, EngineSweep, EngineBytecode,
		EngineDataplane, EngineMultiTenant, EngineScrep:
	default:
		t.Fatalf("bad MP5_FUZZ_ENGINE=%q", engine)
	}
	return engine
}

// TestDifferentialSmoke is the bounded deterministic gate wired into
// scripts/check.sh: every smoke case must match the single-pipeline
// reference on all order-preserving architectures, the full-sweep
// scheduler, and the concurrent dataplane and replication engines at every
// DataplaneWorkers count — on state, packet outputs, and C1 access order.
func TestDifferentialSmoke(t *testing.T) {
	engine := smokeEngine(t)
	for i, c := range smokeCases(t) {
		fails := RunEngines(c, OrderPreserving, engine)
		for _, f := range fails {
			t.Errorf("case %d (progSeed=%d workSeed=%d): %v", i, c.ProgSeed, c.WorkSeed, f)
		}
		if t.Failed() {
			t.Fatalf("program:\n%s", c.SourceText())
		}
	}
}

// TestHarnessDetectsNoD4: run the ablation that deliberately violates C1
// through the full pipeline — detect, shrink, and verify the minimized
// case still names the violated register and the order divergence. This is
// the harness's own falsifiability test: if it ever passes no-D4, the
// oracle has gone blind.
func TestHarnessDetectsNoD4(t *testing.T) {
	var c *Case
	var orig *Failure
	// Scan a few seeds for a case the ablation fails on; contention-heavy
	// workloads make this land within a handful of attempts.
	for s := int64(0); s < 30 && orig == nil; s++ {
		cand := &Case{
			ProgSeed: s + 1, Size: int(s%8) + 1,
			WorkSeed: s*31 + 7, Packets: 1500, Pipelines: 4,
		}
		for _, f := range Run(cand, []core.Arch{core.ArchMP5NoD4}) {
			if f.Reason == "order" {
				c, orig = cand, f
				break
			}
		}
	}
	if orig == nil {
		t.Fatal("no-D4 survived 30 generated cases; the order oracle is blind")
	}
	min, f := Shrink(c, core.ArchMP5NoD4, 80)
	if f == nil {
		t.Fatal("shrink lost the failure")
	}
	if min.Packets > c.Packets {
		t.Errorf("shrink grew the trace: %d > %d", min.Packets, c.Packets)
	}
	if min.Source == "" {
		t.Error("shrink did not pin the minimized program")
	}
	if f.Reason != "order" && f.Reason != "state" {
		t.Errorf("minimized failure reason %q", f.Reason)
	}
	if f.Reason == "order" {
		if len(f.Order) == 0 {
			t.Fatal("order failure carries no divergence")
		}
		d := f.Order[0]
		if !strings.HasPrefix(d.State, "r") || !strings.Contains(d.State, "[") {
			t.Errorf("divergence does not name a register slot: %q", d.State)
		}
		if d.Want == d.Got {
			t.Errorf("divergence %v is not a divergence", d)
		}
		if !strings.Contains(f.String(), d.State) {
			t.Errorf("failure rendering omits the register: %s", f)
		}
	}
	t.Logf("minimized: %d packets, program:\n%s\nfailure: %v", min.Packets, min.SourceText(), f)
}

// TestShrinkNonFailure: shrinking a passing case reports no failure and
// returns the case unchanged in essence.
func TestShrinkNonFailure(t *testing.T) {
	c := &Case{ProgSeed: 1, Size: 2, WorkSeed: 1, Packets: 200, Pipelines: 4}
	_, f := Shrink(c, core.ArchMP5, 10)
	if f != nil {
		t.Fatalf("MP5 failed a smoke-grade case during shrink: %v", f)
	}
}

// TestShrinkFailureNonCore: the engine-aware reproduction predicate routes
// to the right engine — shrinking against a full-sweep or dataplane-tagged
// failure on a passing case runs that engine and reports no failure.
func TestShrinkFailureNonCore(t *testing.T) {
	c := &Case{ProgSeed: 1, Size: 2, WorkSeed: 1, Packets: 200, Pipelines: 4}
	for _, like := range []*Failure{
		{Engine: EngineSweep, Arch: core.ArchMP5},
		{Engine: EngineDataplane, Arch: core.ArchMP5, Workers: 2},
		{Engine: EngineBytecode, Arch: core.ArchMP5},
		{Engine: EngineCore, Arch: core.ArchMP5, Executor: ExecInterp},
		{Engine: EngineMultiTenant, Arch: core.ArchMP5, Workers: 4, Tenant: "t1"},
		{Engine: EngineScrep, Arch: core.ArchMP5, Workers: 2},
		{Engine: EngineScrep, Arch: core.ArchMP5, Workers: 2, Submit: SubmitSingle},
	} {
		if _, f := ShrinkFailure(c, like, 6); f != nil {
			t.Fatalf("%s failed a smoke-grade case during shrink: %v", like.Engine, f)
		}
	}
}

// TestMultiTenantLeg pins the multi-tenant differential's own mechanics:
// the setup is deterministic (same case → same K programs and traces, so
// shrink reproduction is exact), tenant t0 is the case's own program, and a
// clean case passes the leg at several worker counts.
func TestMultiTenantLeg(t *testing.T) {
	c := &Case{ProgSeed: 5, Size: 4, WorkSeed: 9, Packets: 500, Pipelines: 4}
	a, fa := multiTenantSetup(c)
	b, fb := multiTenantSetup(c)
	if fa != nil || fb != nil {
		t.Fatalf("setup failed: %v / %v", fa, fb)
	}
	if len(a) != MultiTenantPrograms || len(b) != MultiTenantPrograms {
		t.Fatalf("setup built %d/%d tenants, want %d", len(a), len(b), MultiTenantPrograms)
	}
	for i := range a {
		if a[i].prog.Name != b[i].prog.Name || len(a[i].arrs) != len(b[i].arrs) {
			t.Fatalf("tenant %d not deterministic", i)
		}
		if len(a[i].arrs) > mtPacketCap {
			t.Fatalf("tenant %d trace %d exceeds the cap %d", i, len(a[i].arrs), mtPacketCap)
		}
	}
	if got := c.SourceText(); a[0].prog == nil || got == "" {
		t.Fatal("tenant t0 must be the case's own program")
	}
	if Generate(c.ProgSeed, c.Size) != c.SourceText() {
		t.Fatal("case source drifted")
	}
	for _, workers := range []int{1, 4} {
		for _, f := range runMultiTenant(c, workers) {
			t.Errorf("workers=%d: %v", workers, f)
		}
	}
}

// TestExecutorSweeps: the forced-executor smoke paths both pass — the whole
// engine sweep pinned to the interpreter, and pinned to the bytecode VM.
// Together with Run's built-in cross-executor run and the serial
// bytecode-vs-interpreter differential, this holds the two executors to
// identical behaviour on every oracle from both directions.
func TestExecutorSweeps(t *testing.T) {
	for _, exec := range []string{ExecInterp, ExecBytecode} {
		c := &Case{ProgSeed: 11, Size: 5, WorkSeed: 13, Packets: 400,
			Pipelines: 4, Executor: exec}
		for _, f := range Run(c, []core.Arch{core.ArchMP5}) {
			t.Errorf("executor %s: %v", exec, f)
		}
	}
}

// FuzzDifferential is the native fuzz target: the fuzzer explores the
// (program seed, workload seed, size, packets) space, and every input is
// checked against the single-pipeline reference on all order-preserving
// architectures, the full-sweep scheduler, and the concurrent dataplane
// (via Run's three-engine sweep). Run long with:
//
//	go test -run FuzzDifferential -fuzz=FuzzDifferential ./internal/fuzz
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), int64(1), uint8(2), uint8(3))
	f.Add(int64(42), int64(7), uint8(5), uint8(1))
	f.Add(int64(7919), int64(104729), uint8(8), uint8(0))
	f.Add(int64(-3), int64(999), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, progSeed, workSeed int64, size, pk uint8) {
		c := &Case{
			ProgSeed:  progSeed,
			Size:      int(size%8) + 1,
			WorkSeed:  workSeed,
			Packets:   100 + int(pk%8)*50, // 100..450
			Pipelines: []int{2, 4, 8}[int(uint64(workSeed)%3)],
		}
		fails := Run(c, OrderPreserving)
		if len(fails) == 0 {
			return
		}
		// A compile error is a generator bug, not an ordering bug — fail
		// loudly without shrinking.
		if fails[0].Reason == "compile" {
			t.Fatalf("generated program does not compile: %s\n%s",
				fails[0].Detail, c.SourceText())
		}
		min, mf := ShrinkFailure(c, fails[0], 60)
		if mf == nil {
			min, mf = c, fails[0]
		}
		t.Fatalf("differential failure (minimized to %d packets):\n%v\nprogram:\n%s\ncase: %+v",
			min.Packets, mf, min.SourceText(), min)
	})
}
