// Package fuzz is the differential fuzzing harness: it generates random
// Domino programs and random workloads, runs them through every switch
// architecture, and compares each run against the single-pipeline reference
// — final state, per-packet outputs, and the per-register access order that
// correctness condition C1 demands. Failing cases are minimized before
// being reported.
package fuzz

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"mp5/internal/compiler"
)

// Assign is one assignment statement of a generated program, pre-rendered
// as expression text ("lhs = rhs").
type Assign struct {
	LHS, RHS string
}

// Stmt is one top-level statement: a bare assignment, or a guarded block
// (if (Cond) { Assigns } else { Else }) when Cond is non-empty.
type Stmt struct {
	Cond    string
	Assigns []Assign
	Else    []Assign
}

// RegDecl declares one register array of a generated program.
type RegDecl struct {
	Name string
	Size int
	Init []int64
}

// Program is the generator's structured form of a Domino program. The
// shrinker edits it (dropping statements, flattening guards) and re-renders
// between attempts; Render produces parseable Domino source.
type Program struct {
	Fields []string
	Regs   []RegDecl
	Tables int // tables t0..tN-1, each 2 keys with a constant default
	Stmts  []Stmt
}

// Render produces Domino source for the program.
func (p *Program) Render() string {
	var b strings.Builder
	b.WriteString("struct Packet { ")
	for _, f := range p.Fields {
		fmt.Fprintf(&b, "int %s; ", f)
	}
	b.WriteString("};\n")
	for _, r := range p.Regs {
		fmt.Fprintf(&b, "int %s [%d] = {", r.Name, r.Size)
		for i, v := range r.Init {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteString("};\n")
	}
	for i := 0; i < p.Tables; i++ {
		fmt.Fprintf(&b, "table t%d (2) = %d;\n", i, i+1)
	}
	b.WriteString("void f (struct Packet p) {\n")
	for _, s := range p.Stmts {
		if s.Cond == "" {
			for _, a := range s.Assigns {
				fmt.Fprintf(&b, "    %s = %s;\n", a.LHS, a.RHS)
			}
			continue
		}
		fmt.Fprintf(&b, "    if (%s) {\n", s.Cond)
		for _, a := range s.Assigns {
			fmt.Fprintf(&b, "        %s = %s;\n", a.LHS, a.RHS)
		}
		b.WriteString("    }")
		if len(s.Else) > 0 {
			b.WriteString(" else {\n")
			for _, a := range s.Else {
				fmt.Fprintf(&b, "        %s = %s;\n", a.LHS, a.RHS)
			}
			b.WriteString("    }")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// regSizes are the array sizes the generator draws from: tiny arrays force
// index collisions (ordering pressure), larger ones exercise sharding.
var regSizes = []int{1, 2, 4, 8, 16, 64}

// generator carries the random state and declared names while building one
// program.
type generator struct {
	rng    *rand.Rand
	prog   *Program
	regRMW []bool // register already used in a read-modify-write
}

// Generate builds a random well-typed Domino program. size (≥ 1) scales
// the number of registers, statements and expression depth; the result is
// deterministic in (seed, size). Programs exercise the compiler's corners:
// multiple register arrays, data-dependent indices, branch-guarded
// read-modify-writes, stateless/stateful mixes, builtins and tables.
func Generate(seed int64, size int) string {
	return GenerateProgram(seed, size).Render()
}

// GenerateProgram is Generate returning the structured form (for the
// shrinker).
func GenerateProgram(seed int64, size int) *Program {
	if size < 1 {
		size = 1
	}
	if size > 8 {
		size = 8
	}
	rng := rand.New(rand.NewSource(seed))
	g := &generator{rng: rng, prog: &Program{}}

	nf := 2 + rng.Intn(2+size/2) // 2..5 fields
	for i := 0; i < nf; i++ {
		g.prog.Fields = append(g.prog.Fields, fmt.Sprintf("f%d", i))
	}
	nr := 1 + rng.Intn(min(4, 1+size)) // 1..4 registers
	for i := 0; i < nr; i++ {
		// The first register is wide (spreads packets across pipelines
		// with uneven queueing) and the second narrow (converges them on
		// hot slots) — the shape that makes ordering mistakes observable;
		// further registers are arbitrary.
		var sz int
		switch i {
		case 0:
			sz = []int{16, 64}[rng.Intn(2)]
		case 1:
			sz = []int{2, 4, 8}[rng.Intn(3)]
		default:
			sz = regSizes[rng.Intn(len(regSizes))]
		}
		r := RegDecl{Name: fmt.Sprintf("r%d", i), Size: sz}
		for j := 0; j < min(sz, 1+rng.Intn(3)); j++ {
			r.Init = append(r.Init, int64(rng.Intn(8)))
		}
		g.prog.Regs = append(g.prog.Regs, r)
	}
	g.regRMW = make([]bool, nr)
	if rng.Intn(5) == 0 {
		g.prog.Tables = 1
	}

	// Seed the body with one data-dependent read-modify-write per register
	// (up to three): the "gate then sequencer" shape where packets delay
	// differently at one array and converge on another is what makes
	// ordering mistakes observable, so every program gets that skeleton
	// before the random statements are layered on.
	for i := 0; i < nr && i < 3; i++ {
		reg := g.prog.Regs[i]
		// Index each skeleton register by its own field so the arrays'
		// access paths are independent: a packet delayed at r0's slot
		// still races others into r1's slot.
		idx := "0"
		if reg.Size > 1 {
			idx = fmt.Sprintf("p.%s %% %d", g.prog.Fields[i%nf], reg.Size)
		}
		slot := fmt.Sprintf("%s[%s]", reg.Name, idx)
		st := Stmt{Assigns: []Assign{{LHS: slot, RHS: g.rmwRHS(slot)}}}
		if rng.Intn(2) == 0 {
			// Stamp the value into the packet: misordered updates then
			// corrupt packet outputs, not just final state.
			st.Assigns = append(st.Assigns, Assign{LHS: g.field(), RHS: slot})
		}
		g.prog.Stmts = append(g.prog.Stmts, st)
	}

	ns := 2 + rng.Intn(2+size) // 2..9 further statements
	for i := 0; i < ns; i++ {
		g.prog.Stmts = append(g.prog.Stmts, g.stmt())
	}

	// Long dependency chains can pipeline into more stages than the target
	// has. That is resource exhaustion, not a generator bug, so trim
	// trailing statements until the program fits — any other compile error
	// must survive to the caller as a finding.
	for len(g.prog.Stmts) > 1 {
		_, err := compiler.Compile(g.prog.Render(), compiler.Options{Target: compiler.TargetMP5})
		if !errors.Is(err, compiler.ErrStageBudget) {
			break
		}
		g.prog.Stmts = g.prog.Stmts[:len(g.prog.Stmts)-1]
	}
	return g.prog
}

// field returns a random packet-field expression.
func (g *generator) field() string {
	return "p." + g.prog.Fields[g.rng.Intn(len(g.prog.Fields))]
}

// index returns a register-index expression for an array of the given
// size: constant, one field, or a small combination — all reduced mod the
// array size so the program is collision-prone but well-behaved.
func (g *generator) index(size int) string {
	if size == 1 {
		return "0"
	}
	switch g.rng.Intn(6) {
	case 0:
		// Constant indices make the slot a serialization barrier (every
		// packet funnels through one FIFO in order), which *hides*
		// downstream misordering — keep them rare.
		return fmt.Sprint(g.rng.Intn(size))
	case 1, 2, 3:
		return fmt.Sprintf("%s %% %d", g.field(), size)
	default:
		return fmt.Sprintf("(%s + %s) %% %d", g.field(), g.field(), size)
	}
}

// binOps are the binary operators the expression generator draws from;
// arithmetic dominates so register values keep evolving.
var binOps = []string{"+", "+", "-", "*", "&", "|", "^", ">>", "%"}

// expr returns a random packet-local expression of bounded depth (no
// register reads — those are placed deliberately by stmt so stateful
// clusters stay compilable).
func (g *generator) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return g.field()
		}
		return fmt.Sprint(g.rng.Intn(64))
	}
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s ? %s : %s)", g.cond(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 1:
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("hash2(%s, %s)", g.expr(depth-1), g.expr(depth-1))
		case 1:
			return fmt.Sprintf("max(%s, %s)", g.expr(depth-1), g.expr(depth-1))
		default:
			return fmt.Sprintf("min(%s, %s)", g.expr(depth-1), g.expr(depth-1))
		}
	case 2:
		if g.prog.Tables > 0 {
			return fmt.Sprintf("t%d(%s, %s)", g.rng.Intn(g.prog.Tables), g.expr(depth-1), g.expr(depth-1))
		}
		fallthrough
	default:
		op := binOps[g.rng.Intn(len(binOps))]
		rhs := g.expr(depth - 1)
		if op == "%" || op == ">>" {
			// Keep divisors positive and shifts small.
			rhs = fmt.Sprint(1 + g.rng.Intn(16))
		}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, rhs)
	}
}

// cond returns a random boolean-ish expression for guards and ternaries.
func (g *generator) cond(depth int) string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", g.expr(depth), ops[g.rng.Intn(len(ops))], g.expr(depth))
	if depth > 0 && g.rng.Intn(4) == 0 {
		join := "&&"
		if g.rng.Intn(2) == 0 {
			join = "||"
		}
		c = fmt.Sprintf("(%s) %s (%s)", c, join, g.cond(depth-1))
	}
	return c
}

// stmt returns one random statement layered on the stateful skeleton. The
// mix leans stateless/read-heavy: every extra unconditional write adds a
// serialization point that masks ordering bugs, so stateful writes stay a
// minority here (the skeleton already guarantees the interesting ones).
func (g *generator) stmt() Stmt {
	r := g.rng.Intn(10)
	switch {
	case r < 4: // stateless assignment
		return Stmt{Assigns: []Assign{{LHS: g.field(), RHS: g.expr(2)}}}
	case r < 7: // register read into a field
		reg := g.pickReg()
		rd := fmt.Sprintf("%s[%s]", reg.Name, g.index(reg.Size))
		return Stmt{Assigns: []Assign{{LHS: g.field(), RHS: rd}}}
	case r < 9: // read-modify-write, possibly guarded
		reg := g.pickReg()
		idx := g.index(reg.Size)
		slot := fmt.Sprintf("%s[%s]", reg.Name, idx)
		rhs := g.rmwRHS(slot)
		st := Stmt{Assigns: []Assign{{LHS: slot, RHS: rhs}}}
		if g.rng.Intn(3) == 0 {
			st.Cond = g.cond(1)
			if g.rng.Intn(3) == 0 {
				st.Else = []Assign{{LHS: slot, RHS: g.expr(1)}}
			}
		}
		if g.rng.Intn(3) == 0 {
			// Stamp the updated value into the packet so ordering
			// mistakes become visible in packet outputs too.
			st.Assigns = append(st.Assigns, Assign{LHS: g.field(), RHS: slot})
		}
		return st
	default: // blind register write
		reg := g.pickReg()
		slot := fmt.Sprintf("%s[%s]", reg.Name, g.index(reg.Size))
		return Stmt{Assigns: []Assign{{LHS: slot, RHS: g.expr(2)}}}
	}
}

// rmwRHS builds the right-hand side of a read-modify-write on slot.
func (g *generator) rmwRHS(slot string) string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s + 1", slot)
	case 1:
		return fmt.Sprintf("%s + %s", slot, g.expr(1))
	case 2:
		return fmt.Sprintf("max(%s, %s)", slot, g.expr(1))
	default:
		return fmt.Sprintf("(%s > %s ? 0 : %s + 1)", slot, g.expr(1), slot)
	}
}

func (g *generator) pickReg() RegDecl {
	return g.prog.Regs[g.rng.Intn(len(g.prog.Regs))]
}
