package fuzz

import (
	"strings"

	"mp5/internal/core"
)

// cloneProgram copies the program's statement list so a shrink trial can
// edit it without touching the original (statement structs are copied by
// value; their assign slices are never mutated in place).
func cloneProgram(p *Program) *Program {
	q := *p
	q.Stmts = append([]Stmt(nil), p.Stmts...)
	q.Regs = append([]RegDecl(nil), p.Regs...)
	q.Fields = append([]string(nil), p.Fields...)
	return &q
}

// pruneDecls drops register arrays, tables and packet fields the program
// text no longer references — cosmetic, but it makes minimized cases read
// like hand-written reproducers.
func pruneDecls(p *Program) *Program {
	var text strings.Builder
	for _, s := range p.Stmts {
		text.WriteString(s.Cond)
		for _, a := range s.Assigns {
			text.WriteString(a.LHS + " " + a.RHS + " ")
		}
		for _, a := range s.Else {
			text.WriteString(a.LHS + " " + a.RHS + " ")
		}
	}
	body := text.String()
	q := cloneProgram(p)
	q.Regs = q.Regs[:0]
	for _, r := range p.Regs {
		if strings.Contains(body, r.Name+"[") {
			q.Regs = append(q.Regs, r)
		}
	}
	// Keep at least one field: the struct may not be empty, and traces
	// need a field vector.
	q.Fields = q.Fields[:0]
	for _, f := range p.Fields {
		if strings.Contains(body, "p."+f) {
			q.Fields = append(q.Fields, f)
		}
	}
	if len(q.Fields) == 0 {
		q.Fields = p.Fields[:1]
	}
	if q.Tables > 0 && !strings.Contains(body, "t0(") {
		q.Tables = 0
	}
	return q
}

// Shrink minimizes a failing case against one core-simulator architecture.
// It is the historical entry point; ShrinkFailure generalizes it to any
// engine configuration.
func Shrink(c *Case, arch core.Arch, budget int) (*Case, *Failure) {
	return ShrinkFailure(c, &Failure{Engine: EngineCore, Arch: arch}, budget)
}

// ShrinkFailure minimizes a failing case against the engine configuration
// that produced like (core architecture, full-sweep scheduler, or dataplane
// at like.Workers): first the workload (halving the packet count while the
// failure reproduces), then the program (dropping statements, flattening
// guards, pruning unused declarations), re-running the differential check
// after every edit. budget caps the number of candidate runs. It returns the
// minimized case with its program pinned in Source, plus the failure the
// minimized case still produces — nil if the original case did not reproduce
// at all.
//
// Program-level shrinking needs the generator's structured form, so it is
// skipped when the case arrived with an explicit Source (e.g. replayed
// from an artifact); workload shrinking still applies.
func ShrinkFailure(c *Case, like *Failure, budget int) (*Case, *Failure) {
	cur := *c
	attempts := 0
	try := func(cand *Case) *Failure {
		if attempts >= budget {
			return nil
		}
		attempts++
		if f := runLike(cand, like); f != nil && f.Reason != "compile" {
			return f
		}
		return nil
	}

	best := try(&cur)
	if best == nil {
		return &cur, nil
	}

	// Phase 1: shrink the trace. Halve while the failure survives; most
	// ordering bugs reproduce with a few hundred packets.
	for cur.Packets > 8 && attempts < budget {
		cand := cur
		cand.Packets = cur.Packets / 2
		f := try(&cand)
		if f == nil {
			break
		}
		cur, best = cand, f
	}

	// Phase 2: shrink the program.
	var prog *Program
	if cur.Source == "" {
		prog = GenerateProgram(cur.ProgSeed, cur.Size)
	}
	if prog != nil {
		apply := func(trial *Program) bool {
			cand := cur
			cand.Source = trial.Render()
			if f := try(&cand); f != nil {
				prog, cur, best = trial, cand, f
				return true
			}
			return false
		}
		for changed := true; changed && attempts < budget; {
			changed = false
			// Drop whole statements, last to first (later statements
			// are more likely dead weight for an early-stage bug).
			for i := len(prog.Stmts) - 1; i >= 0 && attempts < budget; i-- {
				if len(prog.Stmts) == 1 {
					break
				}
				trial := cloneProgram(prog)
				trial.Stmts = append(trial.Stmts[:i:i], trial.Stmts[i+1:]...)
				if apply(trial) {
					changed = true
				}
			}
			// Flatten guards: an unconditional reproducer is simpler.
			for i := 0; i < len(prog.Stmts) && attempts < budget; i++ {
				if prog.Stmts[i].Cond == "" {
					continue
				}
				trial := cloneProgram(prog)
				trial.Stmts[i].Cond = ""
				trial.Stmts[i].Else = nil
				if apply(trial) {
					changed = true
				}
			}
			// Drop secondary assigns inside compound statements.
			for i := 0; i < len(prog.Stmts) && attempts < budget; i++ {
				if len(prog.Stmts[i].Assigns) < 2 {
					continue
				}
				trial := cloneProgram(prog)
				trial.Stmts[i].Assigns = trial.Stmts[i].Assigns[:1]
				if apply(trial) {
					changed = true
				}
			}
		}
		if attempts < budget {
			apply(pruneDecls(prog))
		}
		cur.Source = prog.Render()
	}
	return &cur, best
}
