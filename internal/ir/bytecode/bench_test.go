// Executor microbenchmarks: pure ExecStage throughput of the tree-walking
// interpreter vs the bytecode VM, without any simulator scheduling around
// them. `go test -bench Exec ./internal/ir/bytecode` is the first stop when
// the BENCH_core.json executor rows move.
package bytecode_test

import (
	"testing"

	"mp5/internal/apps"
	"mp5/internal/compiler"
	"mp5/internal/ir"
	"mp5/internal/ir/bytecode"
)

// benchStore is a flat in-memory RegStore (one array per register id).
type benchStore struct {
	regs [][]int64
}

func newBenchStore(p *ir.Program) *benchStore {
	s := &benchStore{regs: make([][]int64, len(p.Regs))}
	for i, r := range p.Regs {
		s.regs[i] = make([]int64, r.Size)
	}
	return s
}

func (s *benchStore) ReadReg(reg, idx int) int64 {
	a := s.regs[reg]
	if idx < 0 || idx >= len(a) {
		return 0
	}
	return a[idx]
}

func (s *benchStore) WriteReg(reg, idx int, v int64) {
	a := s.regs[reg]
	if idx < 0 || idx >= len(a) {
		return
	}
	a[idx] = v
}

func (s *benchStore) LookupTable(t int, k [3]int64) int64 { return k[0] ^ k[1] ^ k[2] }

func benchPrograms(b *testing.B) map[string]*ir.Program {
	b.Helper()
	out := map[string]*ir.Program{}
	for _, app := range apps.All() {
		out[app.Name] = app.MustCompile(compiler.TargetMP5)
	}
	synth, err := apps.Synthetic(4, 512, 16)
	if err != nil {
		b.Fatal(err)
	}
	out["synthetic"] = synth
	return out
}

func BenchmarkExecInterp(b *testing.B) {
	for name, prog := range benchPrograms(b) {
		b.Run(name, func(b *testing.B) {
			env := ir.NewEnv(prog)
			store := newBenchStore(prog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Fields[0] = int64(i)
				for si := range prog.Stages {
					ir.ExecStage(&prog.Stages[si], env, store)
				}
			}
		})
	}
}

func BenchmarkExecBytecode(b *testing.B) {
	for name, prog := range benchPrograms(b) {
		b.Run(name, func(b *testing.B) {
			bp := bytecode.MustCompile(prog)
			vm := bytecode.NewVM(bp)
			env := ir.NewEnv(prog)
			store := newBenchStore(prog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Fields[0] = int64(i)
				for si := range bp.Stages {
					if err := vm.ExecStage(&bp.Stages[si], env, store); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
