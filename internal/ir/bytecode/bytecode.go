// Package bytecode compiles PVSM stages (ir.Stage) into a flat bytecode
// form executed by a small operand-stack virtual machine. Every execution
// engine in this repository — the Banzai single-pipeline reference, the
// event-driven simulator core (and its legacy full-sweep scheduler), and
// the concurrent dataplane workers — runs packets through ir.ExecStage on
// its per-packet hot path; this package replaces that tree-walk with a
// one-time compilation to a dense byte stream plus a tight dispatch loop.
//
// Design points:
//
//   - One StageProgram per ir.Stage: a []byte code stream with inline
//     little-endian uint16 operands, a per-stage deduplicated constant
//     pool, and the compiler-computed maximum operand-stack depth.
//   - Operand kinds are resolved at compile time: the interpreter's
//     per-operand kind switch (const/field/temp) becomes distinct load
//     opcodes, and predicates become conditional forward jumps, so an
//     un-taken predicated instruction costs one load and one branch.
//   - Semantics are bit-identical to ir.ExecInstr: safe division and
//     modulo (x/0 == x%0 == 0), shift clamping to [0, 63], arithmetic
//     right shift, and Go's wrapping MinInt64 / -1. The differential
//     fuzz harness (internal/fuzz) holds the two executors to that
//     contract on every generated program.
//   - The C1 observation points survive compilation: ExecStageObserved
//     reports every executed register access (predicate already decided
//     by the jump, raw index on the stack) immediately before the access
//     happens, in instruction order — exactly like the interpreter's
//     ir.ExecStageObserved, so the order oracle needs no changes.
//
// A VM is a reusable operand stack; it is not goroutine-safe, so each
// engine goroutine owns one (dataplane workers each carry their own).
package bytecode

import (
	"fmt"

	"mp5/internal/ir"
)

// Bytecode opcodes. Loads push onto the operand stack, stores pop, binary
// operators pop two and push one. opLoadC, opLoadF, opLoadT, opStoreF,
// opStoreT, opJz, opJnz, opLookup, opRdReg and opWrReg carry one inline
// little-endian uint16 operand; all other opcodes are a single byte.
const (
	opInvalid byte = iota // never emitted: catches zeroed/corrupt code

	opLoadC  // push consts[arg]
	opLoadF  // push env.Fields[arg]
	opLoadT  // push env.Temps[arg]
	opStoreF // env.Fields[arg] = pop
	opStoreT // env.Temps[arg] = pop
	opDrop   // discard top of stack (ALU result with a None destination)

	opAdd // binary: b = pop, a = pop, push a OP b
	opSub
	opMul
	opDiv // safe: b == 0 yields 0
	opMod // safe: b == 0 yields 0
	opAnd
	opOr
	opXor
	opShl // b clamped to [0, 63]
	opShr // arithmetic; b clamped to [0, 63]
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opLAnd
	opLOr
	opMax
	opMin

	opNot // unary: a = pop, push a == 0
	opNeg // unary: a = pop, push -a

	opSelect // c = pop, b = pop, a = pop, push a != 0 ? b : c
	opHash2  // b = pop, a = pop, push ir.Hash2(a, b)
	opHash3  // c = pop, b = pop, a = pop, push ir.Hash3(a, b, c)

	opLookup // c = pop, b = pop, a = pop, push regs.LookupTable(arg, {a,b,c})
	opRdReg  // idx = pop, push regs.ReadReg(arg, idx)   (observation point)
	opWrReg  // idx = pop, v = pop, regs.WriteReg(arg, idx, v)  (observation point)

	opJz  // cond = pop, jump forward arg bytes when cond == 0
	opJnz // cond = pop, jump forward arg bytes when cond != 0

	opCount // number of defined opcodes (first invalid value)
)

// opNames renders mnemonics for the disassembler and error messages.
var opNames = [...]string{
	opInvalid: "invalid",
	opLoadC:   "loadc", opLoadF: "loadf", opLoadT: "loadt",
	opStoreF: "storef", opStoreT: "storet", opDrop: "drop",
	opAdd: "add", opSub: "sub", opMul: "mul", opDiv: "div", opMod: "mod",
	opAnd: "and", opOr: "or", opXor: "xor", opShl: "shl", opShr: "shr",
	opEq: "eq", opNe: "ne", opLt: "lt", opLe: "le", opGt: "gt", opGe: "ge",
	opLAnd: "land", opLOr: "lor", opMax: "max", opMin: "min",
	opNot: "not", opNeg: "neg",
	opSelect: "select", opHash2: "hash2", opHash3: "hash3",
	opLookup: "lookup", opRdReg: "rdreg", opWrReg: "wrreg",
	opJz: "jz", opJnz: "jnz",
}

// hasArg reports whether the opcode carries an inline uint16 operand.
func hasArg(op byte) bool {
	switch op {
	case opLoadC, opLoadF, opLoadT, opStoreF, opStoreT,
		opLookup, opRdReg, opWrReg, opJz, opJnz:
		return true
	}
	return false
}

// StageProgram is one compiled pipeline stage: flat code, its constant
// pool, and the compiler-computed operand-stack high-water mark. The zero
// value is an empty (no-op) stage.
type StageProgram struct {
	// Code is the bytecode stream: opcode bytes with inline little-endian
	// uint16 operands for the opcodes that take one.
	Code []byte
	// Consts is the stage's deduplicated constant pool, in first-use order.
	Consts []int64
	// MaxStack is the exact operand-stack high-water mark of Code; Exec
	// never pushes more than MaxStack values.
	MaxStack int
	// Stateful mirrors ir.Stage.Stateful for the compiled form.
	Stateful bool
	// micro is the quickened three-address form of Code (see micro.go).
	// Compile always populates it; the VM executes it when the env carries
	// a frame of at least frameLen slots and runs the canonical stack loop
	// otherwise (hand-built envs or code, tests).
	micro []microOp
	// frameLen is the full frame size the quickened form addresses
	// (fields, temps, scratch, and every stage's pool region); seedSlot
	// is the scratch slot guarding the one-time pool copy; pools is the
	// whole program's concatenated constant pools, shared by all of its
	// StagePrograms and copied to frame[seedSlot+1:] when seeding.
	frameLen int
	seedSlot int
	pools    []int64
}

// Program is a whole compiled program: one StageProgram per ir.Stage,
// sharing the source program's metadata. This is the handle every engine
// holds after load-time compilation.
type Program struct {
	// IR is the source program (register/table metadata, access sites).
	IR *ir.Program
	// Stages holds the compiled form of IR.Stages, index-aligned.
	Stages []StageProgram
	// MaxStack is the maximum MaxStack over all stages — the operand
	// stack capacity a VM needs to run any stage of the program.
	MaxStack int
}

// Stats summarizes a compiled program for reporting and tests.
type Stats struct {
	// CodeBytes is the total canonical stack-bytecode size.
	CodeBytes int
	// Consts is the total pool-slot count across stages.
	Consts int
	// MicroOps is the quickened instruction count after fusion.
	MicroOps int
	// FusedRMW counts read-modify-write superinstructions among MicroOps.
	FusedRMW int
}

// Stats reports aggregate compilation statistics for p.
func (p *Program) Stats() Stats {
	var s Stats
	for i := range p.Stages {
		sp := &p.Stages[i]
		s.CodeBytes += len(sp.Code)
		s.Consts += len(sp.Consts)
		s.MicroOps += len(sp.micro)
		for j := range sp.micro {
			if ir.Op(sp.micro[j].op) == opFusedRMW {
				s.FusedRMW++
			}
		}
	}
	return s
}

// VM is a reusable operand stack for executing compiled stages. A VM is
// not safe for concurrent use; every engine goroutine owns its own. (The
// quickened loop keeps all of its state in the env's frame; the stack
// only backs the canonical loop.)
type VM struct {
	stack []int64
}

// NewVM returns a VM sized for every stage of p.
func NewVM(p *Program) *VM {
	return &VM{stack: make([]int64, p.MaxStack)}
}

// newVMDepth returns a VM with an exact stack capacity (tests use it to
// prove the compiler's MaxStack bound is an upper bound).
func newVMDepth(depth int) *VM {
	return &VM{stack: make([]int64, depth)}
}

// errTruncated reports a bytecode stream that ends inside an instruction.
type errTruncated struct {
	pc int
	op byte
}

func (e errTruncated) Error() string {
	return fmt.Sprintf("bytecode: truncated %s operand at pc %d", opName(e.op), e.pc)
}

// errUnknownOp reports an undefined opcode byte.
type errUnknownOp struct {
	pc int
	op byte
}

func (e errUnknownOp) Error() string {
	return fmt.Sprintf("bytecode: unknown opcode %d at pc %d", e.op, e.pc)
}

func opName(op byte) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", op)
}

// ExecStage executes one compiled stage against env and regs, exactly like
// ir.ExecStage on the source stage. It returns a non-nil error only for
// corrupt bytecode (unknown or truncated opcode) — compiled programs never
// produce one.
func (vm *VM) ExecStage(sp *StageProgram, e *ir.Env, regs ir.RegStore) error {
	return vm.exec(sp, e, regs, nil)
}

// ExecStageObserved executes the stage like ExecStage but reports every
// executed register access (predicate already held, raw pre-clamp index)
// to obs immediately before the access happens — the same observation
// contract as ir.ExecStageObserved, which the C1 order oracle depends on.
func (vm *VM) ExecStageObserved(sp *StageProgram, e *ir.Env, regs ir.RegStore, obs ir.AccessObserver) error {
	return vm.exec(sp, e, regs, obs)
}

// exec routes to the quickened loop when the stage carries one (every
// Compile-produced stage does; quickened code is pre-validated and cannot
// fail) and the env's frame covers the stage's layout — envs from
// ir.NewEnv after compilation always do. Otherwise it runs the canonical
// stack loop over Code, which is also the path that detects corrupt
// bytecode and serves frame-less hand-built envs.
func (vm *VM) exec(sp *StageProgram, e *ir.Env, regs ir.RegStore, obs ir.AccessObserver) error {
	if sp.frameLen > 0 && len(e.Frame) >= sp.frameLen {
		vm.execMicro(sp, e, regs, obs)
		return nil
	}
	return vm.execCode(sp, e, regs, obs)
}

// execCode is the canonical stack-bytecode dispatch loop. Locals pin the
// hot state (code, pools, stack pointer, env slices) so the loop runs out
// of registers.
func (vm *VM) execCode(sp *StageProgram, e *ir.Env, regs ir.RegStore, obs ir.AccessObserver) error {
	code := sp.Code
	consts := sp.Consts
	stack := vm.stack
	fields := e.Fields
	temps := e.Temps
	top := 0 // operand-stack pointer: next free slot
	pc := 0
	for pc < len(code) {
		op := code[pc]
		pc++
		var arg int
		if hasArg(op) {
			if pc+2 > len(code) {
				return errTruncated{pc: pc - 1, op: op}
			}
			arg = int(code[pc]) | int(code[pc+1])<<8
			pc += 2
		}
		switch op {
		case opLoadC:
			stack[top] = consts[arg]
			top++
		case opLoadF:
			stack[top] = fields[arg]
			top++
		case opLoadT:
			stack[top] = temps[arg]
			top++
		case opStoreF:
			top--
			fields[arg] = stack[top]
		case opStoreT:
			top--
			temps[arg] = stack[top]
		case opDrop:
			top--
		case opAdd:
			top--
			stack[top-1] += stack[top]
		case opSub:
			top--
			stack[top-1] -= stack[top]
		case opMul:
			top--
			stack[top-1] *= stack[top]
		case opDiv:
			top--
			if b := stack[top]; b == 0 {
				stack[top-1] = 0
			} else {
				stack[top-1] /= b
			}
		case opMod:
			top--
			if b := stack[top]; b == 0 {
				stack[top-1] = 0
			} else {
				stack[top-1] %= b
			}
		case opAnd:
			top--
			stack[top-1] &= stack[top]
		case opOr:
			top--
			stack[top-1] |= stack[top]
		case opXor:
			top--
			stack[top-1] ^= stack[top]
		case opShl:
			top--
			stack[top-1] <<= clampShift(stack[top])
		case opShr:
			top--
			stack[top-1] >>= clampShift(stack[top])
		case opEq:
			top--
			stack[top-1] = b2i(stack[top-1] == stack[top])
		case opNe:
			top--
			stack[top-1] = b2i(stack[top-1] != stack[top])
		case opLt:
			top--
			stack[top-1] = b2i(stack[top-1] < stack[top])
		case opLe:
			top--
			stack[top-1] = b2i(stack[top-1] <= stack[top])
		case opGt:
			top--
			stack[top-1] = b2i(stack[top-1] > stack[top])
		case opGe:
			top--
			stack[top-1] = b2i(stack[top-1] >= stack[top])
		case opLAnd:
			top--
			stack[top-1] = b2i(stack[top-1] != 0 && stack[top] != 0)
		case opLOr:
			top--
			stack[top-1] = b2i(stack[top-1] != 0 || stack[top] != 0)
		case opMax:
			top--
			if stack[top] > stack[top-1] {
				stack[top-1] = stack[top]
			}
		case opMin:
			top--
			if stack[top] < stack[top-1] {
				stack[top-1] = stack[top]
			}
		case opNot:
			stack[top-1] = b2i(stack[top-1] == 0)
		case opNeg:
			stack[top-1] = -stack[top-1]
		case opSelect:
			top -= 2
			if stack[top-1] != 0 {
				stack[top-1] = stack[top]
			} else {
				stack[top-1] = stack[top+1]
			}
		case opHash2:
			top--
			stack[top-1] = ir.Hash2(stack[top-1], stack[top])
		case opHash3:
			top -= 2
			stack[top-1] = ir.Hash3(stack[top-1], stack[top], stack[top+1])
		case opLookup:
			top -= 2
			stack[top-1] = regs.LookupTable(arg, [3]int64{stack[top-1], stack[top], stack[top+1]})
		case opRdReg:
			idx := stack[top-1]
			if obs != nil {
				obs(arg, idx, false)
			}
			stack[top-1] = regs.ReadReg(arg, int(idx))
		case opWrReg:
			top -= 2
			idx := stack[top+1]
			if obs != nil {
				obs(arg, idx, true)
			}
			regs.WriteReg(arg, int(idx), stack[top])
		case opJz:
			top--
			if stack[top] == 0 {
				pc += arg
			}
		case opJnz:
			top--
			if stack[top] != 0 {
				pc += arg
			}
		default:
			return errUnknownOp{pc: pc - 1, op: op}
		}
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func clampShift(b int64) uint {
	if b < 0 {
		return 0
	}
	if b > 63 {
		return 63
	}
	return uint(b)
}
