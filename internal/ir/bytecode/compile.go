package bytecode

import (
	"fmt"
	"math"

	"mp5/internal/ir"
)

// Compile translates every stage of p into bytecode. The result shares p's
// metadata (register placement, access sites, tables) — only the stage
// bodies change representation. Compile is the one-time load-time step;
// engines keep the returned Program for the lifetime of the run.
//
// Compilation fails only on structural limits a Validate-clean program
// cannot hit (more than 65535 pool constants, fields, temps, or register
// arrays in one stage, or a predicate body longer than 64 KiB).
func Compile(p *ir.Program) (*Program, error) {
	out := &Program{IR: p, Stages: make([]StageProgram, len(p.Stages))}
	nf, nt := len(p.Fields), p.NumTemps
	poolBase := nf + nt + scratchSlots
	total := 0
	for si := range p.Stages {
		sp, err := compileStage(p, &p.Stages[si], poolBase+total)
		if err != nil {
			return nil, fmt.Errorf("stage %d: %w", si, err)
		}
		out.Stages[si] = sp
		if sp.MaxStack > out.MaxStack {
			out.MaxStack = sp.MaxStack
		}
		total += len(sp.Consts)
	}
	// Lay the per-stage pools out in one shared image and hand every stage
	// the frame geometry: disjoint pool regions are what lets an env be
	// seeded once and reused across all stages (see execMicro).
	pools := make([]int64, 0, total)
	for si := range out.Stages {
		pools = append(pools, out.Stages[si].Consts...)
	}
	for si := range out.Stages {
		out.Stages[si].frameLen = poolBase + total
		out.Stages[si].seedSlot = nf + nt + 2
		out.Stages[si].pools = pools
	}
	// Raise (never lower) the program's frame headroom so envs allocated
	// after this compile can take the quickened loop's absolute-offset
	// path. Monotonic, so compiling the same program from several engines
	// is idempotent; envs allocated before any compile simply fall back to
	// the canonical stack loop.
	if hint := scratchSlots + total; hint > p.FrameHint {
		p.FrameHint = hint
	}
	return out, nil
}

// MustCompile is Compile for programs already past ir.Program.Validate;
// it panics on the structural limits Compile can reject.
func MustCompile(p *ir.Program) *Program {
	bp, err := Compile(p)
	if err != nil {
		panic("bytecode: " + err.Error())
	}
	return bp
}

// asm assembles one stage, tracking the operand-stack depth of every emit
// so MaxStack is exact, and interning constants into the stage pool.
type asm struct {
	code     []byte
	consts   []int64
	constIdx map[int64]int
	depth    int
	maxDepth int
	micro    []microOp
}

func (a *asm) op(op byte, delta int) {
	a.code = append(a.code, op)
	a.bump(delta)
}

func (a *asm) opArg(op byte, arg int, delta int) error {
	if arg < 0 || arg > math.MaxUint16 {
		return fmt.Errorf("%s operand %d exceeds uint16", opName(op), arg)
	}
	a.code = append(a.code, op, byte(arg), byte(arg>>8))
	a.bump(delta)
	return nil
}

func (a *asm) bump(delta int) {
	a.depth += delta
	if a.depth > a.maxDepth {
		a.maxDepth = a.depth
	}
}

// intern returns the pool index of v, adding it on first use. Pools are
// deduplicated by value: every load of the same constant shares one slot.
func (a *asm) intern(v int64) int {
	if i, ok := a.constIdx[v]; ok {
		return i
	}
	i := len(a.consts)
	a.consts = append(a.consts, v)
	a.constIdx[v] = i
	return i
}

// load emits a push of operand o. A None operand loads 0, matching
// ir.Env.Load.
func (a *asm) load(o ir.Operand) error {
	switch o.Kind {
	case ir.KindConst:
		return a.opArg(opLoadC, a.intern(o.Val), +1)
	case ir.KindField:
		return a.opArg(opLoadF, o.ID, +1)
	case ir.KindTemp:
		return a.opArg(opLoadT, o.ID, +1)
	default:
		return a.opArg(opLoadC, a.intern(0), +1)
	}
}

// store emits a pop into destination o. None and Const destinations drop
// the value, matching ir.Env.Store's no-op semantics.
func (a *asm) store(o ir.Operand) error {
	switch o.Kind {
	case ir.KindField:
		return a.opArg(opStoreF, o.ID, -1)
	case ir.KindTemp:
		return a.opArg(opStoreT, o.ID, -1)
	default:
		a.op(opDrop, -1)
		return nil
	}
}

// binOps maps the two-source ALU opcodes onto their bytecode encoding.
var binOps = map[ir.Op]byte{
	ir.OpAdd: opAdd, ir.OpSub: opSub, ir.OpMul: opMul,
	ir.OpDiv: opDiv, ir.OpMod: opMod,
	ir.OpAnd: opAnd, ir.OpOr: opOr, ir.OpXor: opXor,
	ir.OpShl: opShl, ir.OpShr: opShr,
	ir.OpEq: opEq, ir.OpNe: opNe,
	ir.OpLt: opLt, ir.OpLe: opLe, ir.OpGt: opGt, ir.OpGe: opGe,
	ir.OpLAnd: opLAnd, ir.OpLOr: opLOr,
	ir.OpMax: opMax, ir.OpMin: opMin,
}

func compileStage(p *ir.Program, s *ir.Stage, constBase int) (StageProgram, error) {
	a := &asm{constIdx: make(map[int64]int)}
	for i := range s.Instrs {
		if err := a.instr(&s.Instrs[i]); err != nil {
			return StageProgram{}, fmt.Errorf("instr %d (%s): %w", i, &s.Instrs[i], err)
		}
		if a.depth != 0 {
			// Every IR instruction compiles to a self-contained sequence;
			// a non-zero depth here is a compiler bug, caught immediately
			// rather than as a misbehaving stack at run time.
			return StageProgram{}, fmt.Errorf("instr %d (%s): stack depth %d after instruction", i, &s.Instrs[i], a.depth)
		}
	}
	a.micro = fuseMicro(a.micro)
	if a.micro == nil {
		a.micro = []microOp{} // empty stages still take the quickened path
	}
	if err := a.finalize(len(p.Fields), p.NumTemps, constBase); err != nil {
		return StageProgram{}, err
	}
	return StageProgram{
		Code:     a.code,
		Consts:   a.consts,
		MaxStack: a.maxDepth,
		Stateful: s.Stateful(),
		micro:    a.micro,
	}, nil
}

// instr compiles one predicated TAC instruction. A predicate becomes a
// load plus a conditional forward jump over the body, so the body only
// executes (and a register access is only observed) when the predicate
// holds — the same gating ir.ExecInstr applies before doing anything.
func (a *asm) instr(in *ir.Instr) error {
	if in.Op == ir.OpNop {
		return nil // nothing to execute, predicated or not
	}
	patch := -1
	if !in.Pred.IsNone() {
		if err := a.load(in.Pred); err != nil {
			return err
		}
		// Pred truth must equal !PredNeg to execute: skip the body when
		// the load's truth matches PredNeg.
		jump := opJz
		if in.PredNeg {
			jump = opJnz
		}
		if err := a.opArg(jump, 0, -1); err != nil {
			return err
		}
		patch = len(a.code) - 2 // operand bytes to patch once body length is known
	}
	if err := a.body(in); err != nil {
		return err
	}
	if patch >= 0 {
		off := len(a.code) - (patch + 2)
		if off > math.MaxUint16 {
			return fmt.Errorf("predicated body of %d bytes exceeds jump range", off)
		}
		a.code[patch] = byte(off)
		a.code[patch+1] = byte(off >> 8)
	}
	// Quicken after the stack emission so any constant the micro-op needs
	// is already interned; the pool is identical with or without this.
	a.mkMicro(in)
	return nil
}

// body compiles the unpredicated core of one instruction.
func (a *asm) body(in *ir.Instr) error {
	loadAll := func(ops ...ir.Operand) error {
		for _, o := range ops {
			if err := a.load(o); err != nil {
				return err
			}
		}
		return nil
	}
	switch in.Op {
	case ir.OpMov:
		if err := a.load(in.A); err != nil {
			return err
		}
		return a.store(in.Dst)
	case ir.OpNot, ir.OpNeg:
		if err := a.load(in.A); err != nil {
			return err
		}
		if in.Op == ir.OpNot {
			a.op(opNot, 0)
		} else {
			a.op(opNeg, 0)
		}
		return a.store(in.Dst)
	case ir.OpSelect:
		if err := loadAll(in.A, in.B, in.C); err != nil {
			return err
		}
		a.op(opSelect, -2)
		return a.store(in.Dst)
	case ir.OpHash2:
		if err := loadAll(in.A, in.B); err != nil {
			return err
		}
		a.op(opHash2, -1)
		return a.store(in.Dst)
	case ir.OpHash3:
		if err := loadAll(in.A, in.B, in.C); err != nil {
			return err
		}
		a.op(opHash3, -2)
		return a.store(in.Dst)
	case ir.OpLookup:
		if err := loadAll(in.A, in.B, in.C); err != nil {
			return err
		}
		if err := a.opArg(opLookup, in.Reg, -2); err != nil {
			return err
		}
		return a.store(in.Dst)
	case ir.OpRdReg:
		if err := a.load(in.Idx); err != nil {
			return err
		}
		if err := a.opArg(opRdReg, in.Reg, 0); err != nil {
			return err
		}
		return a.store(in.Dst)
	case ir.OpWrReg:
		// Value first, index on top: the VM observes the raw index before
		// performing the write, like the interpreter.
		if err := loadAll(in.A, in.Idx); err != nil {
			return err
		}
		return a.opArg(opWrReg, in.Reg, -2)
	default:
		bc, ok := binOps[in.Op]
		if !ok {
			return fmt.Errorf("unknown opcode %s", in.Op)
		}
		if err := loadAll(in.A, in.B); err != nil {
			return err
		}
		a.op(bc, -1)
		return a.store(in.Dst)
	}
}
