package bytecode

import (
	"fmt"
	"strings"
)

// DisasmStage renders one compiled stage as a deterministic listing: a
// header with the pool and stack high-water mark, then one line per
// instruction ("pc: mnemonic operand  ; annotation"). Constant loads are
// annotated with the pooled value and jumps with their resolved target,
// so codegen changes are visible in golden-file diffs.
func DisasmStage(sp *StageProgram) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; %d bytes, %d consts, maxstack %d", len(sp.Code), len(sp.Consts), sp.MaxStack)
	if sp.Stateful {
		b.WriteString(", stateful")
	}
	b.WriteByte('\n')
	if len(sp.Consts) > 0 {
		b.WriteString("; pool:")
		for i, v := range sp.Consts {
			fmt.Fprintf(&b, " [%d]=%d", i, v)
		}
		b.WriteByte('\n')
	}
	pc := 0
	for pc < len(sp.Code) {
		op := sp.Code[pc]
		at := pc
		pc++
		if !hasArg(op) {
			fmt.Fprintf(&b, "%4d: %s\n", at, opName(op))
			continue
		}
		if pc+2 > len(sp.Code) {
			fmt.Fprintf(&b, "%4d: %s <truncated>\n", at, opName(op))
			break
		}
		arg := int(sp.Code[pc]) | int(sp.Code[pc+1])<<8
		pc += 2
		switch op {
		case opLoadC:
			if arg < len(sp.Consts) {
				fmt.Fprintf(&b, "%4d: %s %d\t; %d\n", at, opName(op), arg, sp.Consts[arg])
			} else {
				fmt.Fprintf(&b, "%4d: %s %d\t; <out of pool>\n", at, opName(op), arg)
			}
		case opJz, opJnz:
			fmt.Fprintf(&b, "%4d: %s %d\t; -> %d\n", at, opName(op), arg, pc+arg)
		default:
			fmt.Fprintf(&b, "%4d: %s %d\n", at, opName(op), arg)
		}
	}
	return b.String()
}

// Disasm renders every stage of a compiled program, separated by stage
// headers, for golden-file tests and debugging.
func Disasm(p *Program) string {
	var b strings.Builder
	for si := range p.Stages {
		fmt.Fprintf(&b, "== stage %d ==\n", si)
		b.WriteString(DisasmStage(&p.Stages[si]))
	}
	return b.String()
}
