// The golden tests live in an external test package: they compile Domino
// sources through internal/compiler (whose package graph reaches back to
// this package via the engines), which an in-package test would turn into
// an import cycle.
package bytecode_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mp5/internal/apps"
	"mp5/internal/compiler"
	"mp5/internal/ir"
	"mp5/internal/ir/bytecode"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// edgeSource is a hand-written stress program for codegen review: a
// guarded read-modify-write, a data-dependent register index computed
// from prior state, and a second guarded RMW keyed off the first — the
// three shapes most likely to regress in the predicate-to-jump and
// operand-ordering parts of the compiler.
const edgeSource = `
#define SLOTS 32

struct Packet {
    int key;
    int delta;
    int i;
    int cur;
    int j;
    int out;
};

int bucket [SLOTS] = {0};
int spill [SLOTS] = {0};

void edge (struct Packet p) {
    p.i = p.key % SLOTS;
    p.cur = bucket[p.i];
    if (p.cur + p.delta > 100) {
        bucket[p.i] = 0;
    } else {
        bucket[p.i] = p.cur + p.delta;
    }
    p.j = (p.cur + p.key) % SLOTS;
    if (p.cur != 0) {
        spill[p.j] = spill[p.j] + p.cur;
    }
    p.out = p.cur;
}
`

// goldenTargets lists every golden listing: the paper's four apps
// compiled for the MP5 multi-pipeline target, plus the edge-case program
// in both its MP5 form and its single-pipeline (recirculation) Banzai
// form, which keeps resolution and stateful code in one listing.
func goldenTargets(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, app := range apps.All() {
		out[app.Name+"_mp5.disasm"] = app.Source
	}
	out["edge_mp5.disasm"] = edgeSource
	return out
}

func TestGoldenDisasm(t *testing.T) {
	cases := goldenTargets(t)
	for name, src := range cases {
		target := compiler.TargetMP5
		t.Run(name, func(t *testing.T) {
			checkGolden(t, name, src, target)
		})
	}
	t.Run("edge_banzai.disasm", func(t *testing.T) {
		checkGolden(t, "edge_banzai.disasm", edgeSource, compiler.TargetBanzai)
	})
}

func checkGolden(t *testing.T, name, src string, target compiler.Target) {
	t.Helper()
	prog, err := compiler.Compile(src, compiler.Options{Target: target})
	if err != nil {
		t.Fatalf("compile source: %v", err)
	}
	bp, err := bytecode.Compile(prog)
	if err != nil {
		t.Fatalf("compile bytecode: %v", err)
	}
	got := bytecode.Disasm(bp)
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("disassembly drifted from %s (run with -update and review the diff):\n--- got ---\n%s", path, got)
	}
}

// TestEdgeProgramRuns sanity-checks that the edge-case program executes
// under the VM (both targets) without error and with the documented
// semantics: the guarded RMW only fires when its predicate holds.
func TestEdgeProgramRuns(t *testing.T) {
	for _, target := range []compiler.Target{compiler.TargetBanzai, compiler.TargetMP5} {
		prog, err := compiler.Compile(edgeSource, compiler.Options{Target: target})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		bp := bytecode.MustCompile(prog)
		vm := bytecode.NewVM(bp)
		env := ir.NewEnv(prog)
		env.Fields[prog.FieldIndex("key")] = 5
		env.Fields[prog.FieldIndex("delta")] = 3
		store := goldenStore{}
		for si := range bp.Stages {
			if err := vm.ExecStage(&bp.Stages[si], env, store); err != nil {
				t.Fatalf("stage %d: %v", si, err)
			}
		}
		if got := store[[2]int{0, 5}]; got != 3 {
			t.Errorf("target %v: bucket[5] = %d, want 3", target, got)
		}
	}
}

// goldenStore is a minimal ir.RegStore recording raw (reg, idx) writes.
type goldenStore map[[2]int]int64

func (s goldenStore) ReadReg(reg, idx int) int64          { return s[[2]int{reg, idx}] }
func (s goldenStore) WriteReg(reg, idx int, v int64)      { s[[2]int{reg, idx}] = v }
func (s goldenStore) LookupTable(t int, k [3]int64) int64 { return k[0] + k[1] }
