package bytecode

import (
	"fmt"
	"math"

	"mp5/internal/ir"
)

// Quickening: the portable stack bytecode in StageProgram.Code is the
// canonical compiled form (it is what the disassembler renders, what the
// golden files pin, and what MaxStack describes), but executing it costs
// several dispatches per source instruction. Compile therefore also emits a
// quickened micro-op stream — one fixed-width three-address micro-op per
// PVSM instruction. Assembly resolves every operand to a (bank, index)
// pair over the constant pool, header fields, and temps; after the fusion
// peephole, finalize flattens those pairs into absolute offsets over the
// env's unified frame
//
//	[ fields | temps | discard | zero | seeded | stage pools... ]
//
// so the hot loop performs exactly one indexed load per operand. The frame
// is the single buffer ir.NewEnv already allocates, extended by
// Program.FrameHint slots of headroom. Every stage owns a disjoint pool
// region, so the pools are copied in once per env — execMicro seeds them
// on first touch (the seeded slot, written by nothing else, flips from the
// fresh env's zero) and every later stage call on that env skips straight
// to the loop. The VM executes the quickened form when the env carries a
// large-enough frame and falls back to the stack loop otherwise
// (hand-built envs, hand-built or corrupt code), and the differential
// tests in vm_test.go run both forms against the tree-walking interpreter
// so the two encodings cannot drift apart.

// Operand banks — the assembly-time form, flattened away by finalize.
// Discarded destinations resolve to the frame's discard slot and None
// sources to its never-written-by-code zero slot, so the hot loop needs
// no operand-kind branches and quickening never perturbs the constant pool.
const (
	bankC byte = iota // stage constant pool
	bankF             // env.Fields
	bankT             // env.Temps
	bankS             // scratch: [0] discard target, [1] constant zero
)

// scratchSlots sit between the temps and the stage pools, shared by every
// stage: a discard slot absorbing dropped destinations, a zero slot
// feeding None sources (never written after allocation), and the seeded
// flag guarding the one-time pool copy.
const scratchSlots = 3

// pkNone marks an unpredicated micro-op; pkNeg flags an inverted predicate
// (if-else else-arms); pkPartial marks a fused RMW whose ALU runs
// regardless of the predicate (only the two register accesses are gated —
// the shape the compiler emits for guarded state updates). All three fit
// alongside the 2-bit bank in one byte; pkNone has every flag bit set, so
// flag tests must exclude it explicitly.
const (
	pkNone    byte = 0xff
	pkNeg     byte = 0x80
	pkPartial byte = 0x40
)

// opFusedRMW is the one superinstruction: a read-modify-write triple
//
//	t1 = reg[idx]; t2 = t1 ALU y; reg[idx] = t2
//
// under one shared predicate, collapsed to a single dispatch. The fused op
// still writes both intermediate destinations (t1, t2) — later uses see
// them — and still reports both C1 observations (read then write, around
// the ALU) exactly where the unfused sequence would. The ALU opcode rides
// in the x field. fuseMicro proves the pattern safe before fusing.
//
// The value extends ir's dense opcode range by one so the dispatch switch
// stays a jump table; a sparse outlier (say 255) would demote it to a
// comparison tree.
const opFusedRMW = ir.OpWrReg + 1

// microOp is one quickened instruction: 20 bytes against the interpreter's
// ~176-byte ir.Instr, so whole programs stay cache-resident. The bank
// bytes and the bank bits of pk exist only during assembly and fusion;
// finalize folds them into the index fields (absolute frame offsets) and
// the dispatch loop never reads them.
type microOp struct {
	op         byte // ir.Op, narrowed (or opFusedRMW)
	pk         byte // pkNeg|pkPartial flags (bank bits until finalize), or pkNone
	dk         byte // destination bank (bankF, bankT, or bankS)
	ak, bk, ck byte // source banks
	x          byte // fused-RMW ALU opcode
	reg        uint16
	pi, di     uint16
	ai, bi, ci uint16
}

// finalize flattens every micro-op's (bank, index) pairs into absolute
// offsets over the unified frame, leaving pk holding only its flag bits.
// constBase is the start of this stage's disjoint pool region (past the
// fields, temps, scratch slots, and every earlier stage's pool). It runs
// once per stage, after fusion (whose pattern matching compares bank-form
// operands). The only failure is structural: a frame too large for uint16
// addressing, which no Validate-clean program approaches.
func (a *asm) finalize(nf, nt, constBase int) error {
	discard := nf + nt
	zero := discard + 1
	if top := constBase + len(a.consts); top > math.MaxUint16+1 {
		return fmt.Errorf("frame of %d slots exceeds uint16 addressing", top)
	}
	abs := func(k byte, i uint16) uint16 {
		switch k & 3 {
		case bankF:
			return i
		case bankT:
			return uint16(nf) + i
		case bankC:
			return uint16(constBase) + i
		default: // bankS
			if i == 0 {
				return uint16(discard)
			}
			return uint16(zero)
		}
	}
	for j := range a.micro {
		m := &a.micro[j]
		m.ai = abs(m.ak, m.ai)
		m.bi = abs(m.bk, m.bi)
		m.ci = abs(m.ck, m.ci)
		m.di = abs(m.dk, m.di)
		if m.pk != pkNone {
			m.pi = abs(m.pk, m.pi)
			m.pk &= pkNeg | pkPartial
		}
	}
	return nil
}

// mkBank resolves a source operand to its bank and index. Constants reuse
// the pool slot the stack-code emission already interned for the same
// instruction, so quickening adds nothing to the pool; None sources read
// the scratch bank's permanent zero slot.
func (a *asm) mkBank(o ir.Operand) (byte, uint16) {
	switch o.Kind {
	case ir.KindConst:
		return bankC, uint16(a.intern(o.Val))
	case ir.KindField:
		return bankF, uint16(o.ID)
	case ir.KindTemp:
		return bankT, uint16(o.ID)
	}
	return bankS, 1
}

// mkDst resolves a destination operand; None and Const destinations land in
// the scratch bank's discard slot.
func mkDst(o ir.Operand) (byte, uint16) {
	switch o.Kind {
	case ir.KindField:
		return bankF, uint16(o.ID)
	case ir.KindTemp:
		return bankT, uint16(o.ID)
	}
	return bankS, 0
}

// mkMicro quickens one instruction, resolving exactly the operands its
// opcode reads (mirroring body's load order so constant interning is
// byte-for-byte identical to the stack emission). The stack emission has
// already range-checked every index via opArg, so the uint16 narrowing
// here cannot truncate. Unused source slots point at the scratch bank: the
// dispatch loop's unconditional A-read stays in bounds on every op.
func (a *asm) mkMicro(in *ir.Instr) {
	m := microOp{op: byte(in.Op), pk: pkNone, ak: bankS, bk: bankS, ck: bankS}
	if !in.Pred.IsNone() {
		m.pk, m.pi = a.mkBank(in.Pred)
		if in.PredNeg {
			m.pk |= pkNeg
		}
	}
	m.dk, m.di = mkDst(in.Dst)
	switch in.Op {
	case ir.OpMov, ir.OpNot, ir.OpNeg:
		m.ak, m.ai = a.mkBank(in.A)
	case ir.OpSelect, ir.OpHash3:
		m.ak, m.ai = a.mkBank(in.A)
		m.bk, m.bi = a.mkBank(in.B)
		m.ck, m.ci = a.mkBank(in.C)
	case ir.OpHash2:
		m.ak, m.ai = a.mkBank(in.A)
		m.bk, m.bi = a.mkBank(in.B)
	case ir.OpLookup:
		m.ak, m.ai = a.mkBank(in.A)
		m.bk, m.bi = a.mkBank(in.B)
		m.ck, m.ci = a.mkBank(in.C)
		m.reg = uint16(in.Reg)
	case ir.OpRdReg:
		// The register index rides in the (otherwise unused) C slot.
		m.ck, m.ci = a.mkBank(in.Idx)
		m.reg = uint16(in.Reg)
	case ir.OpWrReg:
		m.ak, m.ai = a.mkBank(in.A)
		m.ck, m.ci = a.mkBank(in.Idx)
		m.reg = uint16(in.Reg)
	default: // two-source ALU ops
		m.ak, m.ai = a.mkBank(in.A)
		m.bk, m.bi = a.mkBank(in.B)
	}
	a.micro = append(a.micro, m)
}

// canFuseRMW reports whether three consecutive micro-ops form a safely
// fusable read-modify-write: same predicate and register throughout, the
// ALU consuming the read's destination, the write storing the ALU's
// destination and indexing with the read's untouched index source.
func canFuseRMW(rd, alu, wr *microOp) bool {
	if ir.Op(rd.op) != ir.OpRdReg || ir.Op(wr.op) != ir.OpWrReg {
		return false
	}
	if _, ok := binOps[ir.Op(alu.op)]; !ok {
		return false
	}
	if rd.pk != wr.pk || rd.pi != wr.pi {
		return false
	}
	// Either all three share one predicate, or the ALU is unpredicated
	// between gated accesses (the partial variant, handled at exec time).
	if !(alu.pk == rd.pk && alu.pi == rd.pi) &&
		!(alu.pk == pkNone && rd.pk != pkNone) {
		return false
	}
	if rd.reg != wr.reg || rd.ck != wr.ck || rd.ci != wr.ci {
		return false
	}
	// t1 must feed the ALU's A slot and t2 must be the written value.
	// (Discarded destinations land in scratch slot 0, which no source
	// ever resolves to, so a dropped t1/t2 can never false-match here.)
	if alu.ak != rd.dk || alu.ai != rd.di {
		return false
	}
	if wr.ak != alu.dk || wr.ai != alu.di {
		return false
	}
	// Fusing evaluates the index and predicate once up front, so neither
	// may be clobbered by the two intermediate writes.
	for _, dst := range [2]microOp{*rd, *alu} {
		if dst.dk == rd.ck && dst.di == rd.ci {
			return false
		}
		if rd.pk != pkNone && dst.dk == rd.pk&3 && dst.di == rd.pi {
			return false
		}
	}
	return true
}

// fuseMicro runs the peephole pass over a stage's quickened stream,
// collapsing every provably safe read-modify-write triple into one
// opFusedRMW. The pass rewrites in place (the write cursor never passes
// the read cursor).
func fuseMicro(ops []microOp) []microOp {
	out := ops[:0]
	for j := 0; j < len(ops); j++ {
		if j+2 < len(ops) && canFuseRMW(&ops[j], &ops[j+1], &ops[j+2]) {
			m := ops[j] // keeps pk/pi, reg, and the index in ck/ci
			m.op = byte(opFusedRMW)
			m.x = ops[j+1].op
			m.ak, m.ai = ops[j].dk, ops[j].di     // t1 destination
			m.bk, m.bi = ops[j+1].bk, ops[j+1].bi // ALU's B source
			m.dk, m.di = ops[j+1].dk, ops[j+1].di // t2 destination
			if ops[j+1].pk == pkNone && m.pk != pkNone {
				// The ALU must run even when the accesses are gated:
				// opt out of the generic predicate skip and re-derive
				// the predicate inside the fused case.
				m.pk |= pkPartial
			}
			out = append(out, m)
			j += 2
			continue
		}
		out = append(out, ops[j])
	}
	return out
}

// execMicro runs the quickened form: one dispatch per source instruction,
// one indexed frame load per operand. The caller has already checked that
// the env's frame covers this stage's layout; compiled programs are fully
// validated, so this path has no error exits.
func (vm *VM) execMicro(sp *StageProgram, e *ir.Env, regs ir.RegStore, obs ir.AccessObserver) {
	frame := e.Frame
	// Seed the frame headroom with the whole program's stage pools on this
	// env's first stage call; nothing but this line writes the seeded slot,
	// so a fresh (zeroed) env seeds exactly once and every later stage
	// skips the copy with one load-and-compare.
	if frame[sp.seedSlot] == 0 {
		copy(frame[sp.seedSlot+1:], sp.pools)
		frame[sp.seedSlot] = 1
	}
	for i := range sp.micro {
		m := &sp.micro[i]
		if m.pk != pkNone && m.pk&pkPartial == 0 {
			if (frame[m.pi] != 0) == (m.pk&pkNeg != 0) {
				continue
			}
		}
		// Both ALU sources load unconditionally (unused slots point at
		// the zero slot), so the loads issue before the dispatch resolves.
		a := frame[m.ai]
		b := frame[m.bi]
		var v int64
		switch ir.Op(m.op) {
		case ir.OpMov:
			v = a
		case ir.OpAdd:
			v = a + b
		case ir.OpSub:
			v = a - b
		case ir.OpMul:
			v = a * b
		case ir.OpDiv:
			if b != 0 {
				v = a / b
			}
		case ir.OpMod:
			if b != 0 {
				v = a % b
			}
		case ir.OpAnd:
			v = a & b
		case ir.OpOr:
			v = a | b
		case ir.OpXor:
			v = a ^ b
		case ir.OpShl:
			v = a << clampShift(b)
		case ir.OpShr:
			v = a >> clampShift(b)
		case ir.OpEq:
			v = b2i(a == b)
		case ir.OpNe:
			v = b2i(a != b)
		case ir.OpLt:
			v = b2i(a < b)
		case ir.OpLe:
			v = b2i(a <= b)
		case ir.OpGt:
			v = b2i(a > b)
		case ir.OpGe:
			v = b2i(a >= b)
		case ir.OpLAnd:
			v = b2i(a != 0 && b != 0)
		case ir.OpLOr:
			v = b2i(a != 0 || b != 0)
		case ir.OpMax:
			v = a
			if b > v {
				v = b
			}
		case ir.OpMin:
			v = a
			if b < v {
				v = b
			}
		case ir.OpNot:
			v = b2i(a == 0)
		case ir.OpNeg:
			v = -a
		case ir.OpSelect:
			if a != 0 {
				v = b
			} else {
				v = frame[m.ci]
			}
		case ir.OpHash2:
			v = ir.Hash2(a, b)
		case ir.OpHash3:
			v = ir.Hash3(a, b, frame[m.ci])
		case ir.OpLookup:
			v = regs.LookupTable(int(m.reg), [3]int64{a, b, frame[m.ci]})
		case ir.OpRdReg:
			idx := frame[m.ci]
			if obs != nil {
				obs(int(m.reg), idx, false)
			}
			v = regs.ReadReg(int(m.reg), int(idx))
		case ir.OpWrReg:
			idx := frame[m.ci]
			if obs != nil {
				obs(int(m.reg), idx, true)
			}
			regs.WriteReg(int(m.reg), int(idx), a)
			continue // no destination
		case opFusedRMW:
			// In the partial variant the generic gate above passed
			// through; the accesses are gated here while the ALU (below)
			// always runs, exactly like the unfused sequence.
			held := true
			if m.pk != pkNone && m.pk&pkPartial != 0 {
				held = (frame[m.pi] != 0) != (m.pk&pkNeg != 0)
			}
			var v1 int64
			idx := frame[m.ci]
			if held {
				if obs != nil {
					obs(int(m.reg), idx, false)
				}
				v1 = regs.ReadReg(int(m.reg), int(idx))
				// t1 lands before the B source loads, so an ALU whose B
				// is t1 (or its own destination) sees the unfused values.
				frame[m.ai] = v1
			} else {
				v1 = frame[m.ai] // skipped read: ALU sees stale t1
			}
			y := frame[m.bi]
			var v2 int64
			switch ir.Op(m.x) {
			case ir.OpAdd:
				v2 = v1 + y
			case ir.OpSub:
				v2 = v1 - y
			case ir.OpMul:
				v2 = v1 * y
			case ir.OpDiv:
				if y != 0 {
					v2 = v1 / y
				}
			case ir.OpMod:
				if y != 0 {
					v2 = v1 % y
				}
			case ir.OpAnd:
				v2 = v1 & y
			case ir.OpOr:
				v2 = v1 | y
			case ir.OpXor:
				v2 = v1 ^ y
			case ir.OpShl:
				v2 = v1 << clampShift(y)
			case ir.OpShr:
				v2 = v1 >> clampShift(y)
			case ir.OpEq:
				v2 = b2i(v1 == y)
			case ir.OpNe:
				v2 = b2i(v1 != y)
			case ir.OpLt:
				v2 = b2i(v1 < y)
			case ir.OpLe:
				v2 = b2i(v1 <= y)
			case ir.OpGt:
				v2 = b2i(v1 > y)
			case ir.OpGe:
				v2 = b2i(v1 >= y)
			case ir.OpLAnd:
				v2 = b2i(v1 != 0 && y != 0)
			case ir.OpLOr:
				v2 = b2i(v1 != 0 || y != 0)
			case ir.OpMax:
				v2 = v1
				if y > v2 {
					v2 = y
				}
			case ir.OpMin:
				v2 = v1
				if y < v2 {
					v2 = y
				}
			}
			frame[m.di] = v2
			if held {
				if obs != nil {
					obs(int(m.reg), idx, true)
				}
				regs.WriteReg(int(m.reg), int(idx), v2)
			}
			continue // both destinations already written
		}
		frame[m.di] = v
	}
}
