package bytecode

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mp5/internal/ir"
)

// flatStore mirrors the interpreter tests' minimal RegStore: raw indices
// are recorded as given (no clamping), table lookups return key0+key1.
type flatStore map[[2]int]int64

func (s flatStore) ReadReg(reg, idx int) int64          { return s[[2]int{reg, idx}] }
func (s flatStore) WriteReg(reg, idx int, v int64)      { s[[2]int{reg, idx}] = v }
func (s flatStore) LookupTable(t int, k [3]int64) int64 { return k[0] + k[1] }

// access records one observed register access for order comparisons.
type access struct {
	Reg   int
	Idx   int64
	Write bool
}

// compileStageT compiles a single stage inside a program context of nf
// fields and nt temps (the frame layout needs both), failing on error.
// The returned program has FrameHint set, so ir.NewEnv on it yields
// frame-backed envs that take the quickened path.
func compileStageT(t *testing.T, st *ir.Stage, nf, nt int) (*ir.Program, StageProgram) {
	t.Helper()
	p := &ir.Program{Fields: make([]string, nf), NumTemps: nt, Stages: []ir.Stage{*st}}
	bp, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p, bp.Stages[0]
}

// sameVals compares slices by value, treating nil and empty as equal (a
// frame-backed env's Fields view is non-nil even when zero-length).
func sameVals(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runBoth executes st through the interpreter and the VM from identical
// environments and stores, returning both (env, store, observed accesses).
// The VM leg runs on a frame-backed env (the quickened micro-op loop); a
// third, frame-less leg runs the canonical stack loop and is asserted
// against the quickened leg in place, so every differential case pins all
// three executors to each other.
func runBoth(t *testing.T, st *ir.Stage, fields, temps []int64, seed flatStore) (ie, ve *ir.Env, is, vs flatStore, iobs, vobs []access) {
	t.Helper()
	prog, sp := compileStageT(t, st, len(fields), len(temps))
	ie = &ir.Env{Fields: append([]int64(nil), fields...), Temps: append([]int64(nil), temps...)}
	ve = ir.NewEnv(prog)
	copy(ve.Fields, fields)
	copy(ve.Temps, temps)
	ce := &ir.Env{Fields: append([]int64(nil), fields...), Temps: append([]int64(nil), temps...)}
	is, vs = flatStore{}, flatStore{}
	cs := flatStore{}
	for k, v := range seed {
		is[k] = v
		vs[k] = v
		cs[k] = v
	}
	ir.ExecStageObserved(st, ie, is, func(reg int, idx int64, write bool) {
		iobs = append(iobs, access{reg, idx, write})
	})
	vm := newVMDepth(sp.MaxStack)
	if err := vm.ExecStageObserved(&sp, ve, vs, func(reg int, idx int64, write bool) {
		vobs = append(vobs, access{reg, idx, write})
	}); err != nil {
		t.Fatalf("VM exec (quickened): %v", err)
	}
	var cobs []access
	if err := vm.ExecStageObserved(&sp, ce, cs, func(reg int, idx int64, write bool) {
		cobs = append(cobs, access{reg, idx, write})
	}); err != nil {
		t.Fatalf("VM exec (canonical): %v", err)
	}
	if !sameVals(ve.Fields, ce.Fields) || !sameVals(ve.Temps, ce.Temps) ||
		!reflect.DeepEqual(vs, cs) || !reflect.DeepEqual(vobs, cobs) {
		t.Errorf("quickened and canonical paths diverged:\nquick fields=%v temps=%v store=%v obs=%v\ncanon fields=%v temps=%v store=%v obs=%v",
			ve.Fields, ve.Temps, vs, vobs, ce.Fields, ce.Temps, cs, cobs)
	}
	return
}

// checkAgree asserts interpreter and VM ended in identical states.
func checkAgree(t *testing.T, st *ir.Stage, fields, temps []int64, seed flatStore) {
	t.Helper()
	ie, ve, is, vs, iobs, vobs := runBoth(t, st, fields, temps, seed)
	if !sameVals(ie.Fields, ve.Fields) || !sameVals(ie.Temps, ve.Temps) {
		t.Errorf("env diverged:\ninterp fields=%v temps=%v\nvm     fields=%v temps=%v",
			ie.Fields, ie.Temps, ve.Fields, ve.Temps)
	}
	if !reflect.DeepEqual(is, vs) {
		t.Errorf("store diverged:\ninterp %v\nvm     %v", is, vs)
	}
	if !reflect.DeepEqual(iobs, vobs) {
		t.Errorf("observed accesses diverged:\ninterp %v\nvm     %v", iobs, vobs)
	}
}

// TestDifferentialEdgeCases holds the two executors to identical behavior
// on the interpreter's defined-error paths: division and modulo by zero,
// the wrapping MinInt64 corner, and out-of-range register indices (passed
// raw to the RegStore by both sides — clamping belongs to the store).
func TestDifferentialEdgeCases(t *testing.T) {
	minI := int64(math.MinInt64)
	cases := []struct {
		name string
		st   ir.Stage
	}{
		{"div by zero", ir.Stage{Instrs: []ir.Instr{
			{Op: ir.OpDiv, Dst: ir.Temp(0), A: ir.Const(12), B: ir.Const(0), Reg: -1},
			{Op: ir.OpDiv, Dst: ir.Temp(1), A: ir.Temp(0), B: ir.Temp(0), Reg: -1},
		}}},
		{"mod by zero", ir.Stage{Instrs: []ir.Instr{
			{Op: ir.OpMod, Dst: ir.Temp(0), A: ir.Const(13), B: ir.Const(0), Reg: -1},
		}}},
		{"min int64 wrap", ir.Stage{Instrs: []ir.Instr{
			{Op: ir.OpDiv, Dst: ir.Temp(0), A: ir.Const(minI), B: ir.Const(-1), Reg: -1},
			{Op: ir.OpMod, Dst: ir.Temp(1), A: ir.Const(minI), B: ir.Const(-1), Reg: -1},
			{Op: ir.OpNeg, Dst: ir.Temp(2), A: ir.Const(minI), Reg: -1},
		}}},
		{"out of range index", ir.Stage{Instrs: []ir.Instr{
			{Op: ir.OpWrReg, Reg: 1, Idx: ir.Const(-7), A: ir.Const(5)},
			{Op: ir.OpRdReg, Dst: ir.Temp(0), Reg: 1, Idx: ir.Const(1 << 40)},
			{Op: ir.OpWrReg, Reg: 1, Idx: ir.Const(1 << 40), A: ir.Temp(0)},
		}}},
		{"shift clamps", ir.Stage{Instrs: []ir.Instr{
			{Op: ir.OpShl, Dst: ir.Temp(0), A: ir.Const(1), B: ir.Const(200), Reg: -1},
			{Op: ir.OpShr, Dst: ir.Temp(1), A: ir.Const(-8), B: ir.Const(1), Reg: -1},
			{Op: ir.OpShr, Dst: ir.Temp(2), A: ir.Const(5), B: ir.Const(-1), Reg: -1},
		}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkAgree(t, &c.st, nil, make([]int64, 3), nil)
		})
	}
}

// TestDifferentialAllOps sweeps every opcode with a mix of operand kinds
// and predicates through both executors.
func TestDifferentialAllOps(t *testing.T) {
	binary := []ir.Op{
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd,
		ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpEq, ir.OpNe,
		ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpLAnd, ir.OpLOr,
		ir.OpMax, ir.OpMin,
	}
	var instrs []ir.Instr
	for i, op := range binary {
		in := ir.Instr{Op: op, Dst: ir.Temp(i % 4), A: ir.Field(0), B: ir.Const(int64(i - 3)), Reg: -1}
		if i%3 == 1 {
			in.Pred = ir.Temp(3)
		}
		if i%3 == 2 {
			in.Pred, in.PredNeg = ir.Field(1), true
		}
		instrs = append(instrs, in)
	}
	instrs = append(instrs,
		ir.Instr{Op: ir.OpNop, Reg: -1},
		ir.Instr{Op: ir.OpMov, Dst: ir.Field(1), A: ir.Temp(2), Reg: -1},
		ir.Instr{Op: ir.OpMov, Dst: ir.None(), A: ir.Temp(2), Reg: -1}, // dropped store
		ir.Instr{Op: ir.OpMov, Dst: ir.Temp(0), A: ir.None(), Reg: -1}, // None loads 0
		ir.Instr{Op: ir.OpNot, Dst: ir.Temp(1), A: ir.Temp(0), Reg: -1},
		ir.Instr{Op: ir.OpNeg, Dst: ir.Temp(2), A: ir.Field(0), Reg: -1},
		ir.Instr{Op: ir.OpSelect, Dst: ir.Temp(0), A: ir.Temp(1), B: ir.Field(0), C: ir.Const(20), Reg: -1},
		ir.Instr{Op: ir.OpHash2, Dst: ir.Temp(1), A: ir.Field(0), B: ir.Const(7), Reg: -1},
		ir.Instr{Op: ir.OpHash3, Dst: ir.Temp(2), A: ir.Temp(1), B: ir.Field(1), C: ir.Const(9), Reg: -1},
		ir.Instr{Op: ir.OpLookup, Dst: ir.Temp(3), A: ir.Temp(2), B: ir.Const(1), C: ir.Const(0), Reg: 0},
		ir.Instr{Op: ir.OpWrReg, Reg: 2, Idx: ir.Temp(3), A: ir.Temp(1)},
		ir.Instr{Op: ir.OpRdReg, Dst: ir.Temp(0), Reg: 2, Idx: ir.Temp(3)},
		ir.Instr{Op: ir.OpWrReg, Reg: 2, Idx: ir.Temp(3), A: ir.Temp(0), Pred: ir.Temp(1)},
		ir.Instr{Op: ir.OpRdReg, Dst: ir.Temp(1), Reg: 2, Idx: ir.Const(0), Pred: ir.Temp(2), PredNeg: true},
	)
	st := &ir.Stage{Instrs: instrs}
	checkAgree(t, st, []int64{6, 0}, make([]int64, 4), flatStore{[2]int{2, 0}: 11})
	checkAgree(t, st, []int64{-3, 1}, []int64{1, 2, 3, 4}, nil)
}

// TestDifferentialQuick cross-checks randomized stages (operand kinds,
// predicates, register ops with data-dependent indices) between the two
// executors under testing/quick.
func TestDifferentialQuick(t *testing.T) {
	ops := []ir.Op{
		ir.OpMov, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpLt, ir.OpLAnd, ir.OpNot,
		ir.OpNeg, ir.OpSelect, ir.OpMax, ir.OpMin, ir.OpHash2,
		ir.OpHash3, ir.OpRdReg, ir.OpWrReg,
	}
	randOperand := func(r *rand.Rand) ir.Operand {
		switch r.Intn(4) {
		case 0:
			return ir.Const(int64(r.Intn(41) - 20))
		case 1:
			return ir.Field(r.Intn(3))
		case 2:
			return ir.Temp(r.Intn(4))
		default:
			return ir.None()
		}
	}
	prop := func(progSeed int64, f0, f1, f2 int64) bool {
		r := rand.New(rand.NewSource(progSeed))
		n := 1 + r.Intn(12)
		st := &ir.Stage{}
		for i := 0; i < n; i++ {
			in := ir.Instr{Op: ops[r.Intn(len(ops))], Reg: -1}
			in.Dst = ir.Temp(r.Intn(4))
			in.A = randOperand(r)
			in.B = randOperand(r)
			in.C = randOperand(r)
			if in.Op == ir.OpRdReg || in.Op == ir.OpWrReg {
				in.Reg = r.Intn(2)
				in.Idx = randOperand(r)
			}
			if r.Intn(3) == 0 {
				in.Pred = randOperand(r)
				in.PredNeg = r.Intn(2) == 0
			}
			st.Instrs = append(st.Instrs, in)
		}
		ie, ve, is, vs, iobs, vobs := runBoth(t, st, []int64{f0, f1, f2}, make([]int64, 4), nil)
		return sameVals(ie.Fields, ve.Fields) && sameVals(ie.Temps, ve.Temps) &&
			reflect.DeepEqual(is, vs) && reflect.DeepEqual(iobs, vobs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxStackIsExactBound runs randomized stages on a VM whose stack has
// exactly the compiler-computed capacity: any push past MaxStack would
// panic with an index out of range, so a passing run proves the bound.
// The generator biases toward deep expressions (Select/Hash3 chains).
func TestMaxStackIsExactBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		st := &ir.Stage{}
		n := 1 + r.Intn(10)
		for i := 0; i < n; i++ {
			var in ir.Instr
			switch r.Intn(5) {
			case 0:
				in = ir.Instr{Op: ir.OpSelect, Dst: ir.Temp(0), A: ir.Temp(1), B: ir.Temp(2), C: ir.Const(int64(i)), Reg: -1}
			case 1:
				in = ir.Instr{Op: ir.OpHash3, Dst: ir.Temp(1), A: ir.Temp(0), B: ir.Temp(2), C: ir.Temp(3), Reg: -1}
			case 2:
				in = ir.Instr{Op: ir.OpWrReg, Reg: 0, Idx: ir.Temp(0), A: ir.Temp(1)}
			case 3:
				in = ir.Instr{Op: ir.OpLookup, Dst: ir.Temp(2), A: ir.Temp(0), B: ir.Temp(1), C: ir.Temp(3), Reg: 0}
			default:
				in = ir.Instr{Op: ir.OpAdd, Dst: ir.Temp(3), A: ir.Temp(2), B: ir.Const(3), Reg: -1}
			}
			if r.Intn(2) == 0 {
				in.Pred = ir.Temp(r.Intn(4))
				in.PredNeg = r.Intn(2) == 0
			}
			st.Instrs = append(st.Instrs, in)
		}
		sp, err := compileStage(&ir.Program{NumTemps: 4}, st, 4+scratchSlots)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		vm := newVMDepth(sp.MaxStack) // exactly MaxStack: overflow panics
		// Frame-less env: forces the canonical stack loop, whose depth
		// MaxStack bounds (the quickened loop does not use the stack).
		env := &ir.Env{Temps: []int64{1, 2, 3, 4}}
		if err := vm.ExecStage(&sp, env, flatStore{}); err != nil {
			t.Fatalf("trial %d: exec: %v", trial, err)
		}
	}
}

// TestFusedRMW pins the read-modify-write superinstruction: which triples
// fuse, which must not, and the differential behaviour of both variants —
// shared predicate (including negated) and partial (ALU unpredicated
// between gated accesses, the shape the compiler emits for guarded state
// updates) — plus the aliasing case where the ALU's B source is t1 itself.
// checkAgree runs every case through the interpreter, the quickened loop,
// and the canonical stack loop, observations included.
func TestFusedRMW(t *testing.T) {
	rmw := func(pred, aluPred ir.Operand, neg bool, b ir.Operand, rdDst ir.Operand) *ir.Stage {
		return &ir.Stage{Instrs: []ir.Instr{
			{Op: ir.OpRdReg, Dst: rdDst, Reg: 0, Idx: ir.Temp(0), Pred: pred, PredNeg: neg},
			{Op: ir.OpAdd, Dst: ir.Temp(2), A: rdDst, B: b, Pred: aluPred, PredNeg: neg && !aluPred.IsNone(), Reg: -1},
			{Op: ir.OpWrReg, Reg: 0, Idx: ir.Temp(0), A: ir.Temp(2), Pred: pred, PredNeg: neg},
		}}
	}
	fused := func(st *ir.Stage) int {
		_, sp := compileStageT(t, st, 1, 4)
		n := 0
		for i := range sp.micro {
			if ir.Op(sp.micro[i].op) == opFusedRMW {
				n++
			}
		}
		return n
	}
	cases := []struct {
		name     string
		st       *ir.Stage
		wantFuse int
	}{
		{"unpredicated", rmw(ir.None(), ir.None(), false, ir.Const(1), ir.Temp(1)), 1},
		{"shared predicate", rmw(ir.Field(0), ir.Field(0), false, ir.Const(1), ir.Temp(1)), 1},
		{"shared negated", rmw(ir.Field(0), ir.Field(0), true, ir.Const(1), ir.Temp(1)), 1},
		{"partial (alu unpredicated)", rmw(ir.Field(0), ir.None(), false, ir.Const(1), ir.Temp(1)), 1},
		{"partial negated", rmw(ir.Field(0), ir.None(), true, ir.Const(1), ir.Temp(1)), 1},
		{"alu B aliases t1", rmw(ir.None(), ir.None(), false, ir.Temp(1), ir.Temp(1)), 1},
		// t1 landing in the index slot would clobber the write's index:
		// must stay unfused (and behave like the interpreter regardless).
		{"idx clobbered by t1", rmw(ir.None(), ir.None(), false, ir.Const(1), ir.Temp(0)), 0},
		// The write under a different predicate is not a fusable triple.
		{"mismatched predicates", &ir.Stage{Instrs: []ir.Instr{
			{Op: ir.OpRdReg, Dst: ir.Temp(1), Reg: 0, Idx: ir.Temp(0), Pred: ir.Field(0)},
			{Op: ir.OpAdd, Dst: ir.Temp(2), A: ir.Temp(1), B: ir.Const(1), Reg: -1},
			{Op: ir.OpWrReg, Reg: 0, Idx: ir.Temp(0), A: ir.Temp(2), Pred: ir.Temp(3)},
		}}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := fused(c.st); got != c.wantFuse {
				t.Fatalf("fused %d RMW triples, want %d", got, c.wantFuse)
			}
			for _, f0 := range []int64{0, 1} { // predicate false and true
				checkAgree(t, c.st, []int64{f0}, []int64{3, -1, -1, 1}, flatStore{[2]int{0, 3}: 10})
			}
		})
	}
}

// TestConstPoolDeduplicated: repeated constants share one pool slot.
func TestConstPoolDeduplicated(t *testing.T) {
	st := &ir.Stage{Instrs: []ir.Instr{
		{Op: ir.OpAdd, Dst: ir.Temp(0), A: ir.Const(42), B: ir.Const(42), Reg: -1},
		{Op: ir.OpMov, Dst: ir.Temp(1), A: ir.Const(42), Reg: -1},
		{Op: ir.OpMov, Dst: ir.Temp(1), A: ir.Const(7), Reg: -1},
		{Op: ir.OpMov, Dst: ir.Temp(1), A: ir.None(), Reg: -1}, // None loads pooled 0
		{Op: ir.OpMov, Dst: ir.Temp(1), A: ir.Const(0), Reg: -1},
	}}
	_, sp := compileStageT(t, st, 0, 2)
	want := []int64{42, 7, 0} // first-use order, each value once
	if !reflect.DeepEqual(sp.Consts, want) {
		t.Errorf("pool = %v, want %v", sp.Consts, want)
	}
	seen := map[int64]bool{}
	for _, v := range sp.Consts {
		if seen[v] {
			t.Errorf("pool has duplicate value %d", v)
		}
		seen[v] = true
	}
}

// TestCorruptBytecode: undefined and truncated opcodes return errors
// instead of panicking, and opInvalid (zeroed memory) is never legal.
func TestCorruptBytecode(t *testing.T) {
	env := &ir.Env{Temps: make([]int64, 1)}
	vm := newVMDepth(4)
	cases := []struct {
		name string
		code []byte
		want string
	}{
		{"unknown opcode", []byte{0xFF}, "unknown opcode 255 at pc 0"},
		{"invalid zero opcode", []byte{0x00}, "unknown opcode 0 at pc 0"},
		{"past opCount", []byte{byte(opCount)}, "unknown opcode"},
		{"truncated operand", []byte{opLoadC, 0x01}, "truncated loadc operand at pc 0"},
		{"truncated after instr", []byte{opLoadC, 0x00, 0x00, opStoreT}, "truncated storet operand at pc 3"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := &StageProgram{Code: c.code, Consts: []int64{0}, MaxStack: 4}
			err := vm.ExecStage(sp, env, flatStore{})
			if err == nil {
				t.Fatal("corrupt bytecode executed without error")
			}
			if got := err.Error(); !strings.Contains(got, c.want) {
				t.Errorf("error = %q, want substring %q", got, c.want)
			}
		})
	}
	var trunc errTruncated
	sp := &StageProgram{Code: []byte{opJz, 0x01}}
	if err := vm.ExecStage(sp, env, flatStore{}); !errors.As(err, &trunc) {
		t.Errorf("truncated jump error = %v, want errTruncated", err)
	}
}

// TestEmptyStage: the zero StageProgram executes as a no-op.
func TestEmptyStage(t *testing.T) {
	vm := newVMDepth(0)
	env := &ir.Env{Fields: []int64{1}, Temps: []int64{2}}
	if err := vm.ExecStage(&StageProgram{}, env, flatStore{}); err != nil {
		t.Fatal(err)
	}
	if env.Fields[0] != 1 || env.Temps[0] != 2 {
		t.Error("empty stage modified the environment")
	}
}

// TestObservationGating: a predicated-off register access is not observed,
// a predicated-on one is observed exactly once with the raw index — on
// both executors.
func TestObservationGating(t *testing.T) {
	st := &ir.Stage{Instrs: []ir.Instr{
		{Op: ir.OpWrReg, Reg: 0, Idx: ir.Const(-9), A: ir.Const(1), Pred: ir.Const(0)},
		{Op: ir.OpWrReg, Reg: 0, Idx: ir.Const(-9), A: ir.Const(1), Pred: ir.Const(1)},
		{Op: ir.OpRdReg, Dst: ir.Temp(0), Reg: 0, Idx: ir.Const(5), Pred: ir.Const(0), PredNeg: true},
	}}
	_, _, _, _, iobs, vobs := runBoth(t, st, nil, make([]int64, 1), nil)
	want := []access{{0, -9, true}, {0, 5, false}}
	if !reflect.DeepEqual(iobs, want) {
		t.Errorf("interpreter observations = %v, want %v", iobs, want)
	}
	if !reflect.DeepEqual(vobs, want) {
		t.Errorf("VM observations = %v, want %v", vobs, want)
	}
}
