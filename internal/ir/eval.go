package ir

// RegStore abstracts register-array and match-table storage so the
// single-pipeline reference executor (one flat store) and the MP5
// simulator (per-pipeline shards) can share the instruction interpreter.
type RegStore interface {
	// ReadReg returns the current value of register array reg at index idx.
	ReadReg(reg int, idx int) int64
	// WriteReg updates register array reg at index idx.
	WriteReg(reg int, idx int, v int64)
	// LookupTable matches keys against table tbl, returning the
	// installed value or the table's default on a miss. Tables are
	// read-only in the data plane.
	LookupTable(tbl int, keys [3]int64) int64
}

// Env is one packet's execution context: its header fields and its
// packet-local temporaries (PHV metadata).
type Env struct {
	Fields []int64
	Temps  []int64
	// Frame, when non-nil, is the single backing buffer behind Fields and
	// Temps plus the program's FrameHint slots of headroom. The bytecode
	// VM's quickened loop addresses every operand as an absolute offset
	// into this buffer, overlaying each stage's constant pool and scratch
	// slots onto the headroom (see internal/ir/bytecode). Envs built by
	// hand without a frame still execute through the canonical paths.
	Frame []int64
}

// NewEnv allocates an execution context sized for program p (fields,
// temps, and frame headroom share one backing allocation; the
// full-capacity slice expressions keep appends — which never happen —
// from aliasing).
func NewEnv(p *Program) *Env {
	nf, nt := len(p.Fields), p.NumTemps
	buf := make([]int64, nf+nt+p.FrameHint)
	return &Env{
		Fields: buf[:nf:nf],
		Temps:  buf[nf : nf+nt : nf+nt],
		Frame:  buf,
	}
}

// ResetFor re-initializes a recycled env for a new packet of the same
// program: arrival fields are copied in (missing trailing fields zeroed)
// and temps are cleared. The frame headroom beyond Fields+Temps is
// deliberately left intact — it holds the bytecode VM's seed-once stage
// pools and scratch slots, none of which carry packet state (the VM never
// reads the discard slot and never writes the zero slot; see
// internal/ir/bytecode) — so a recycled env also skips the pool reseed.
func (e *Env) ResetFor(fields []int64) {
	n := copy(e.Fields, fields)
	for i := n; i < len(e.Fields); i++ {
		e.Fields[i] = 0
	}
	for i := range e.Temps {
		e.Temps[i] = 0
	}
}

// Clone returns a deep copy of the environment, preserving the unified
// frame (and the Fields/Temps views into it) when present.
func (e *Env) Clone() *Env {
	nf, nt := len(e.Fields), len(e.Temps)
	n := nf + nt
	if len(e.Frame) > n {
		n = len(e.Frame)
	}
	buf := make([]int64, n)
	if e.Frame != nil {
		copy(buf, e.Frame)
	} else {
		copy(buf, e.Fields)
		copy(buf[nf:], e.Temps)
	}
	c := &Env{
		Fields: buf[:nf:nf],
		Temps:  buf[nf : nf+nt : nf+nt],
	}
	if e.Frame != nil {
		c.Frame = buf
	}
	return c
}

// Load reads an operand's value.
func (e *Env) Load(o Operand) int64 {
	switch o.Kind {
	case KindConst:
		return o.Val
	case KindField:
		return e.Fields[o.ID]
	case KindTemp:
		return e.Temps[o.ID]
	}
	return 0
}

// Store writes v to a field or temp destination. Storing to a None or Const
// destination is a no-op.
func (e *Env) Store(o Operand, v int64) {
	switch o.Kind {
	case KindField:
		e.Fields[o.ID] = v
	case KindTemp:
		e.Temps[o.ID] = v
	}
}

// Mix64 is the deterministic 64-bit finalizer (splitmix64) behind the hash
// builtins. Exposed so workload generators can derive the same indices a
// compiled program will compute.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 is the two-argument Domino hash builtin. The result is non-negative.
func Hash2(a, b int64) int64 {
	h := Mix64(Mix64(uint64(a)) ^ uint64(b))
	return int64(h >> 1)
}

// Hash3 is the three-argument Domino hash builtin. The result is
// non-negative.
func Hash3(a, b, c int64) int64 {
	h := Mix64(Mix64(Mix64(uint64(a))^uint64(b)) ^ uint64(c))
	return int64(h >> 1)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// predHolds reports whether the instruction's predicate allows execution.
func predHolds(in *Instr, e *Env) bool {
	if in.Pred.IsNone() {
		return true
	}
	truth := e.Load(in.Pred) != 0
	return truth != in.PredNeg
}

// ExecInstr executes one instruction against env and regs.
// Division and modulo by zero yield zero (safe dataplane semantics).
// Shift amounts are clamped to [0, 63].
func ExecInstr(in *Instr, e *Env, regs RegStore) {
	if !predHolds(in, e) {
		return
	}
	switch in.Op {
	case OpNop:
		return
	case OpRdReg:
		idx := e.Load(in.Idx)
		e.Store(in.Dst, regs.ReadReg(in.Reg, int(idx)))
		return
	case OpWrReg:
		idx := e.Load(in.Idx)
		regs.WriteReg(in.Reg, int(idx), e.Load(in.A))
		return
	case OpLookup:
		keys := [3]int64{e.Load(in.A), e.Load(in.B), e.Load(in.C)}
		e.Store(in.Dst, regs.LookupTable(in.Reg, keys))
		return
	}
	a := e.Load(in.A)
	var v int64
	switch in.Op {
	case OpMov:
		v = a
	case OpNot:
		v = b2i(a == 0)
	case OpNeg:
		v = -a
	case OpSelect:
		if a != 0 {
			v = e.Load(in.B)
		} else {
			v = e.Load(in.C)
		}
	case OpHash2:
		v = Hash2(a, e.Load(in.B))
	case OpHash3:
		v = Hash3(a, e.Load(in.B), e.Load(in.C))
	default:
		b := e.Load(in.B)
		switch in.Op {
		case OpAdd:
			v = a + b
		case OpSub:
			v = a - b
		case OpMul:
			v = a * b
		case OpDiv:
			if b == 0 {
				v = 0
			} else {
				v = a / b
			}
		case OpMod:
			if b == 0 {
				v = 0
			} else {
				v = a % b
			}
		case OpAnd:
			v = a & b
		case OpOr:
			v = a | b
		case OpXor:
			v = a ^ b
		case OpShl:
			v = a << clampShift(b)
		case OpShr:
			v = a >> clampShift(b)
		case OpEq:
			v = b2i(a == b)
		case OpNe:
			v = b2i(a != b)
		case OpLt:
			v = b2i(a < b)
		case OpLe:
			v = b2i(a <= b)
		case OpGt:
			v = b2i(a > b)
		case OpGe:
			v = b2i(a >= b)
		case OpLAnd:
			v = b2i(a != 0 && b != 0)
		case OpLOr:
			v = b2i(a != 0 || b != 0)
		case OpMax:
			if a > b {
				v = a
			} else {
				v = b
			}
		case OpMin:
			if a < b {
				v = a
			} else {
				v = b
			}
		default:
			panic("ir: unknown opcode " + in.Op.String())
		}
	}
	e.Store(in.Dst, v)
}

// ExecStage executes all instructions of one stage, in order.
func ExecStage(s *Stage, e *Env, regs RegStore) {
	for i := range s.Instrs {
		ExecInstr(&s.Instrs[i], e, regs)
	}
}

// AccessObserver receives every stateful instruction that actually executes
// (its predicate already evaluated against the live environment), with the
// raw register index it is about to use. write distinguishes OpWrReg from
// OpRdReg. Observers see the access immediately before it happens, so the
// sequence of observations across packets IS the state's access order.
type AccessObserver func(reg int, idx int64, write bool)

// ExecStageObserved executes the stage like ExecStage but reports each
// executed OpRdReg/OpWrReg to obs first. Because the predicate and index are
// evaluated at the same instant the interpreter evaluates them, the report
// is exact even when the index or predicate is computed earlier in the same
// stage (fused read-modify-write clusters).
func ExecStageObserved(s *Stage, e *Env, regs RegStore, obs AccessObserver) {
	for i := range s.Instrs {
		in := &s.Instrs[i]
		if obs != nil && in.Op.IsStateful() && predHolds(in, e) {
			obs(in.Reg, e.Load(in.Idx), in.Op == OpWrReg)
		}
		ExecInstr(in, e, regs)
	}
}

func clampShift(b int64) uint {
	if b < 0 {
		return 0
	}
	if b > 63 {
		return 63
	}
	return uint(b)
}
