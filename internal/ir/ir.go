// Package ir defines the intermediate representation shared by the Domino
// compiler, the Banzai single-pipeline reference executor, and the MP5
// multi-pipeline simulator.
//
// The representation is a predicated three-address code (TAC), grouped into
// pipeline stages. The un-resourced, staged form is the paper's PVSM
// (Pipelined Virtual Switch Machine); after code generation the same
// structures describe a concrete Banzai/MP5 pipeline configuration.
package ir

import "fmt"

// OperandKind identifies where an operand's value lives.
type OperandKind uint8

const (
	// KindNone marks an absent operand (e.g. unused source slots).
	KindNone OperandKind = iota
	// KindConst is an immediate signed integer constant.
	KindConst
	// KindField is a packet header field declared in struct Packet.
	KindField
	// KindTemp is a packet-local temporary (PHV metadata) created by the
	// compiler. Temps travel with the packet between stages.
	KindTemp
)

// Operand is a source or destination of an instruction. Register accesses
// are not operands; they are expressed by the OpRdReg/OpWrReg opcodes whose
// index is itself an Operand.
type Operand struct {
	Kind OperandKind
	// Val holds the constant value when Kind == KindConst.
	Val int64
	// ID is the field or temp index when Kind is KindField or KindTemp.
	ID int
}

// None is the absent operand.
func None() Operand { return Operand{Kind: KindNone} }

// Const returns a constant operand.
func Const(v int64) Operand { return Operand{Kind: KindConst, Val: v} }

// Field returns a packet-field operand.
func Field(id int) Operand { return Operand{Kind: KindField, ID: id} }

// Temp returns a temporary operand.
func Temp(id int) Operand { return Operand{Kind: KindTemp, ID: id} }

// IsNone reports whether the operand is absent.
func (o Operand) IsNone() bool { return o.Kind == KindNone }

// String renders the operand for diagnostics and config dumps.
func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return "_"
	case KindConst:
		return fmt.Sprintf("%d", o.Val)
	case KindField:
		return fmt.Sprintf("f%d", o.ID)
	case KindTemp:
		return fmt.Sprintf("t%d", o.ID)
	}
	return "?"
}

// Op is a three-address opcode.
type Op uint8

// Arithmetic, logical, comparison, selection, builtin, and register opcodes.
const (
	OpNop    Op = iota
	OpMov       // dst = a
	OpAdd       // dst = a + b
	OpSub       // dst = a - b
	OpMul       // dst = a * b
	OpDiv       // dst = a / b   (b==0 yields 0)
	OpMod       // dst = a % b   (b==0 yields 0)
	OpAnd       // dst = a & b
	OpOr        // dst = a | b
	OpXor       // dst = a ^ b
	OpShl       // dst = a << b  (b clamped to [0,63])
	OpShr       // dst = a >> b  (arithmetic; b clamped to [0,63])
	OpEq        // dst = a == b
	OpNe        // dst = a != b
	OpLt        // dst = a < b
	OpLe        // dst = a <= b
	OpGt        // dst = a > b
	OpGe        // dst = a >= b
	OpLAnd      // dst = (a != 0) && (b != 0)
	OpLOr       // dst = (a != 0) || (b != 0)
	OpNot       // dst = a == 0
	OpNeg       // dst = -a
	OpSelect    // dst = a != 0 ? b : c
	OpMax       // dst = max(a, b)
	OpMin       // dst = min(a, b)
	OpHash2     // dst = hash(a, b)        (deterministic 63-bit mix)
	OpHash3     // dst = hash(a, b, c)
	OpLookup    // dst = MatchTable(a, b, c)  (Reg holds the table id; read-only)
	OpRdReg     // dst = Reg[idx]
	OpWrReg     // Reg[idx] = a            (predicate-gated when Pred set)
)

var opNames = [...]string{
	OpNop: "nop", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpMod: "mod", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpEq: "eq", OpNe: "ne", OpLt: "lt",
	OpLe: "le", OpGt: "gt", OpGe: "ge", OpLAnd: "land", OpLOr: "lor",
	OpNot: "not", OpNeg: "neg", OpSelect: "select", OpMax: "max",
	OpMin: "min", OpHash2: "hash2", OpHash3: "hash3", OpLookup: "lookup",
	OpRdReg: "rdreg", OpWrReg: "wrreg",
}

// String renders the opcode mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsStateful reports whether the opcode touches register state.
func (op Op) IsStateful() bool { return op == OpRdReg || op == OpWrReg }

// Instr is one predicated three-address instruction.
//
// For OpRdReg: Dst = Reg[Idx].
// For OpWrReg: Reg[Idx] = A, executed only if the predicate holds.
// For all other ops: Dst = op(A, B, C); the predicate gates the write to Dst
// (an un-taken predicated ALU op leaves Dst unchanged).
type Instr struct {
	Op  Op
	Dst Operand
	A   Operand
	B   Operand
	C   Operand
	// Reg is the register-array id for OpRdReg/OpWrReg, the match-table
	// id for OpLookup, else -1.
	Reg int
	// Idx is the register index operand for OpRdReg/OpWrReg.
	Idx Operand
	// Pred, when not None, gates the instruction: it executes only when
	// the predicate value's truth equals !PredNeg.
	Pred    Operand
	PredNeg bool
}

// String renders the instruction for config dumps.
func (in Instr) String() string {
	var body string
	switch in.Op {
	case OpRdReg:
		body = fmt.Sprintf("%s = r%d[%s]", in.Dst, in.Reg, in.Idx)
	case OpWrReg:
		body = fmt.Sprintf("r%d[%s] = %s", in.Reg, in.Idx, in.A)
	case OpMov:
		body = fmt.Sprintf("%s = %s", in.Dst, in.A)
	case OpSelect:
		body = fmt.Sprintf("%s = %s ? %s : %s", in.Dst, in.A, in.B, in.C)
	case OpNot, OpNeg:
		body = fmt.Sprintf("%s = %s %s", in.Dst, in.Op, in.A)
	case OpHash3:
		body = fmt.Sprintf("%s = hash3(%s, %s, %s)", in.Dst, in.A, in.B, in.C)
	case OpHash2:
		body = fmt.Sprintf("%s = hash2(%s, %s)", in.Dst, in.A, in.B)
	case OpLookup:
		body = fmt.Sprintf("%s = tbl%d(%s, %s, %s)", in.Dst, in.Reg, in.A, in.B, in.C)
	default:
		body = fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
	if !in.Pred.IsNone() {
		neg := ""
		if in.PredNeg {
			neg = "!"
		}
		return fmt.Sprintf("[%s%s] %s", neg, in.Pred, body)
	}
	return body
}

// Stage is one pipeline stage: a list of instructions that execute, in
// order, on the packet currently occupying the stage. All state referenced
// by the stage is local to the stage (Banzai's "no state sharing across
// stages").
type Stage struct {
	Instrs []Instr
}

// Stateful reports whether any instruction in the stage touches a register.
func (s *Stage) Stateful() bool {
	for _, in := range s.Instrs {
		if in.Op.IsStateful() {
			return true
		}
	}
	return false
}

// RegsUsed returns the distinct register-array ids the stage touches,
// in first-use order.
func (s *Stage) RegsUsed() []int {
	var out []int
	seen := map[int]bool{}
	for _, in := range s.Instrs {
		if in.Op.IsStateful() && !seen[in.Reg] {
			seen[in.Reg] = true
			out = append(out, in.Reg)
		}
	}
	return out
}

// RegInfo describes one register array declared by the program.
type RegInfo struct {
	Name string
	ID   int
	Size int
	// Init holds the initial values; if shorter than Size the remaining
	// entries start at the last given value's fill rule: Domino-style
	// {v} fills all entries with v, otherwise missing entries are zero.
	Init []int64
	// Stage is the pipeline stage the array was placed in (post-codegen).
	Stage int
	// Sharded reports whether the array may be sharded across pipelines
	// (false when the index computation is itself stateful; §3.3).
	Sharded bool
}

// InitialValue returns the initial value of index i under Domino fill rules.
func (r *RegInfo) InitialValue(i int) int64 {
	switch {
	case i < len(r.Init):
		return r.Init[i]
	case len(r.Init) == 1:
		return r.Init[0]
	default:
		return 0
	}
}

// Access describes one preemptively-resolved state access site: which
// register a packet may touch, in which stage, and where the resolved index
// and predicate can be read once the resolution stages have executed.
type Access struct {
	// Reg is the register-array id.
	Reg int
	// Stage is the stage holding the register (post-transformation).
	Stage int
	// Idx is the operand holding the resolved register index; its value
	// is available after the resolution stages run (the MP5 transformer
	// hoists its backward slice there). Idx is None for unsharded
	// arrays, whose placement is array-level rather than per-index.
	Idx Operand
	// Pred is the access predicate, or None when the access is
	// unconditional. Only meaningful when PredResolvable is true.
	Pred Operand
	// PredNeg negates the predicate (else-branch accesses).
	PredNeg bool
	// PredResolvable reports whether the predicate could be evaluated
	// preemptively. When false, MP5 conservatively emits the phantom
	// regardless of the predicate (§3.3), costing a wasted cycle when
	// the predicate turns out false.
	PredResolvable bool
}

// Program is a compiled packet-processing program: a staged, predicated TAC
// plus the metadata MP5 needs for preemptive address resolution.
type Program struct {
	Name string
	// Fields names the packet header fields, in declaration order.
	// A packet's field i corresponds to Fields[i].
	Fields []string
	// NumTemps is the number of packet-local temporaries.
	NumTemps int
	// Regs describes the register arrays.
	Regs []RegInfo
	// Tables describes the match tables; TableEntries holds the
	// control-plane configuration installed before the run.
	Tables       []TableInfo
	TableEntries []TableEntry
	// Stages is the staged code. Stages[0..ResolutionStages-1] are the
	// stateless resolution stages added by the PVSM-to-PVSM transformer
	// (zero for a plain Banzai compilation).
	Stages []Stage
	// Accesses lists the state-access sites in stage order. Empty for
	// stateless programs.
	Accesses []Access
	// ResolutionStages counts the leading address-resolution stages.
	ResolutionStages int
	// StatefulPredicates reports whether any register operation is
	// guarded by a predicate that itself depends on register state
	// (the paper's "predicates which could not be resolved preemptively";
	// three of its four applications have them).
	StatefulPredicates bool
	// FrameHint is extra headroom NewEnv adds to the env's backing buffer
	// so compiled stages can overlay per-stage constants and scratch onto
	// it. bytecode.Compile raises it at load time; it stays zero for
	// interpreter-only runs and is derived state, never serialized intent.
	FrameHint int
}

// FieldIndex returns the index of the named header field, or -1.
func (p *Program) FieldIndex(name string) int {
	for i, f := range p.Fields {
		if f == name {
			return i
		}
	}
	return -1
}

// RegIndex returns the id of the named register array, or -1.
func (p *Program) RegIndex(name string) int {
	for i := range p.Regs {
		if p.Regs[i].Name == name {
			return i
		}
	}
	return -1
}

// NumStages returns the total pipeline depth of the program.
func (p *Program) NumStages() int { return len(p.Stages) }

// AccessesByStage groups the indices of p.Accesses by the stage they
// target (Accesses are already stage-sorted, so each bucket preserves
// declaration order). Execution engines use it to resolve one stage's
// access sites as a unit: every access of a stage forms one "visit" whose
// slots must co-locate on a single pipeline.
func (p *Program) AccessesByStage() [][]int {
	out := make([][]int, len(p.Stages))
	for i := range p.Accesses {
		s := p.Accesses[i].Stage
		out[s] = append(out[s], i)
	}
	return out
}

// StatefulStages returns the indices of stages that touch registers.
func (p *Program) StatefulStages() []int {
	var out []int
	for i := range p.Stages {
		if p.Stages[i].Stateful() {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural invariants the simulators rely on: operand ids
// in range, register placement consistent with stage use, and all accesses
// pointing at stateful stages after the resolution prefix. A stage may hold
// several register arrays (Banzai allows it); the MP5 code generator
// additionally guarantees that multi-array stages only hold unsharded,
// co-located arrays.
func (p *Program) Validate() error {
	checkOp := func(o Operand, where string) error {
		switch o.Kind {
		case KindField:
			if o.ID < 0 || o.ID >= len(p.Fields) {
				return fmt.Errorf("%s: field id %d out of range", where, o.ID)
			}
		case KindTemp:
			if o.ID < 0 || o.ID >= p.NumTemps {
				return fmt.Errorf("%s: temp id %d out of range", where, o.ID)
			}
		}
		return nil
	}
	for si := range p.Stages {
		for ii, in := range p.Stages[si].Instrs {
			where := fmt.Sprintf("stage %d instr %d (%s)", si, ii, in)
			for _, o := range []Operand{in.Dst, in.A, in.B, in.C, in.Idx, in.Pred} {
				if err := checkOp(o, where); err != nil {
					return err
				}
			}
			if in.Op == OpLookup {
				if in.Reg < 0 || in.Reg >= len(p.Tables) {
					return fmt.Errorf("%s: table id %d out of range", where, in.Reg)
				}
			}
			if in.Op.IsStateful() {
				if in.Reg < 0 || in.Reg >= len(p.Regs) {
					return fmt.Errorf("%s: register id %d out of range", where, in.Reg)
				}
				if p.Regs[in.Reg].Stage != si {
					return fmt.Errorf("%s: register %s placed in stage %d but used in stage %d",
						where, p.Regs[in.Reg].Name, p.Regs[in.Reg].Stage, si)
				}
				if si < p.ResolutionStages {
					return fmt.Errorf("%s: stateful op inside resolution stage", where)
				}
			} else if in.Dst.Kind == KindNone && in.Op != OpNop {
				return fmt.Errorf("%s: missing destination", where)
			}
		}
		if regs := p.Stages[si].RegsUsed(); len(regs) > 1 {
			for _, r := range regs {
				if p.Regs[r].Sharded {
					return fmt.Errorf("stage %d holds %d register arrays but %s is sharded; sharded arrays must be alone in their stage",
						si, len(regs), p.Regs[r].Name)
				}
			}
		}
	}
	for ai, a := range p.Accesses {
		if a.Reg < 0 || a.Reg >= len(p.Regs) {
			return fmt.Errorf("access %d: register id %d out of range", ai, a.Reg)
		}
		if a.Stage < p.ResolutionStages || a.Stage >= len(p.Stages) {
			return fmt.Errorf("access %d: stage %d outside stateful region", ai, a.Stage)
		}
		if err := checkOp(a.Idx, fmt.Sprintf("access %d index", ai)); err != nil {
			return err
		}
		if err := checkOp(a.Pred, fmt.Sprintf("access %d predicate", ai)); err != nil {
			return err
		}
		if p.Regs[a.Reg].Sharded && a.Idx.IsNone() {
			return fmt.Errorf("access %d: sharded register %s lacks a resolved index",
				ai, p.Regs[a.Reg].Name)
		}
	}
	for i := 1; i < len(p.Accesses); i++ {
		if p.Accesses[i].Stage < p.Accesses[i-1].Stage {
			return fmt.Errorf("accesses not in stage order: %d before %d",
				p.Accesses[i-1].Stage, p.Accesses[i].Stage)
		}
	}
	return nil
}

// Dump renders the staged program as text (one instruction per line).
func (p *Program) Dump() string {
	out := fmt.Sprintf("program %s: %d fields, %d temps, %d regs, %d stages (%d resolution)\n",
		p.Name, len(p.Fields), p.NumTemps, len(p.Regs), len(p.Stages), p.ResolutionStages)
	for i, r := range p.Regs {
		out += fmt.Sprintf("  reg r%d %s[%d] stage=%d sharded=%v\n", i, r.Name, r.Size, r.Stage, r.Sharded)
	}
	for i, tb := range p.Tables {
		n := 0
		for _, e := range p.TableEntries {
			if e.Table == i {
				n++
			}
		}
		out += fmt.Sprintf("  table tbl%d %s(%d keys) default=%d entries=%d\n",
			i, tb.Name, tb.Keys, tb.Default, n)
	}
	for si := range p.Stages {
		kind := "stateless"
		if p.Stages[si].Stateful() {
			kind = "stateful"
		}
		if si < p.ResolutionStages {
			kind = "resolution"
		}
		out += fmt.Sprintf("  stage %d (%s):\n", si, kind)
		for _, in := range p.Stages[si].Instrs {
			out += "    " + in.String() + "\n"
		}
	}
	for _, a := range p.Accesses {
		out += fmt.Sprintf("  access r%d stage=%d idx=%s pred=%s neg=%v resolvable=%v\n",
			a.Reg, a.Stage, a.Idx, a.Pred, a.PredNeg, a.PredResolvable)
	}
	return out
}
