package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// flatStore is a minimal RegStore for interpreter tests. Table lookups
// return key0+key1 so tests can verify operand plumbing.
type flatStore map[[2]int]int64

func (s flatStore) ReadReg(reg, idx int) int64          { return s[[2]int{reg, idx}] }
func (s flatStore) WriteReg(reg, idx int, v int64)      { s[[2]int{reg, idx}] = v }
func (s flatStore) LookupTable(t int, k [3]int64) int64 { return k[0] + k[1] }

func run(t *testing.T, in Instr, fields, temps []int64) *Env {
	t.Helper()
	e := &Env{Fields: fields, Temps: temps}
	ExecInstr(&in, e, flatStore{})
	return e
}

func TestExecArithmetic(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 3, 4, -1},
		{OpMul, 3, 4, 12},
		{OpDiv, 12, 4, 3},
		{OpDiv, 12, 0, 0}, // safe division
		{OpMod, 13, 4, 1},
		{OpMod, 13, 0, 0}, // safe modulo
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 3, 2, 12},
		{OpShr, -8, 1, -4},                    // arithmetic shift
		{OpShl, 1, 200, -9223372036854775808}, // clamp to 63: 1<<63 wraps negative
		{OpShr, 5, -1, 5},                     // negative shift clamps to 0
		{OpEq, 4, 4, 1},
		{OpNe, 4, 4, 0},
		{OpLt, 3, 4, 1},
		{OpLe, 4, 4, 1},
		{OpGt, 4, 3, 1},
		{OpGe, 3, 4, 0},
		{OpLAnd, 2, 3, 1},
		{OpLAnd, 2, 0, 0},
		{OpLOr, 0, 3, 1},
		{OpLOr, 0, 0, 0},
		{OpMax, -3, 4, 4},
		{OpMin, -3, 4, -3},
	}
	for _, c := range cases {
		e := run(t, Instr{Op: c.op, Dst: Temp(0), A: Const(c.a), B: Const(c.b)}, nil, []int64{0})
		if e.Temps[0] != c.want {
			t.Errorf("%v(%d, %d) = %d, want %d", c.op, c.a, c.b, e.Temps[0], c.want)
		}
	}
}

// TestExecDivModEdges pins the interpreter's defined-error semantics on
// the division paths: any divisor of zero yields zero (never a Go runtime
// panic), and the MinInt64 / -1 corner wraps like Go's quotient (Go spec:
// x / -1 == -x with wraparound, no panic). The bytecode VM is held to the
// exact same results by the differential tests in ir/bytecode.
func TestExecDivModEdges(t *testing.T) {
	const minI = int64(-1 << 63)
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpDiv, 0, 0, 0},
		{OpDiv, minI, 0, 0},
		{OpMod, minI, 0, 0},
		{OpDiv, minI, -1, minI}, // wraps, does not panic
		{OpMod, minI, -1, 0},
		{OpDiv, minI, 1, minI},
		{OpMod, -7, 3, -1}, // truncated toward zero, like Go
		{OpMod, 7, -3, 1},
	}
	for _, c := range cases {
		e := run(t, Instr{Op: c.op, Dst: Temp(0), A: Const(c.a), B: Const(c.b)}, nil, []int64{99})
		if e.Temps[0] != c.want {
			t.Errorf("%v(%d, %d) = %d, want %d", c.op, c.a, c.b, e.Temps[0], c.want)
		}
	}
}

// TestExecRegIndexOutOfRange: the interpreter passes register indices to
// the RegStore raw — negative, huge, whatever the program computed.
// Clamping into [0, size) is the store's job (banzai.ClampIndex), so a
// store that records raw indices must see them unmodified and in
// instruction order, reads and writes alike.
func TestExecRegIndexOutOfRange(t *testing.T) {
	s := flatStore{}
	var obs []int64
	st := Stage{Instrs: []Instr{
		{Op: OpWrReg, Reg: 0, Idx: Const(-5), A: Const(11)},
		{Op: OpRdReg, Dst: Temp(0), Reg: 0, Idx: Const(-5)},
		{Op: OpWrReg, Reg: 0, Idx: Const(1 << 40), A: Temp(0)},
		{Op: OpRdReg, Dst: Temp(1), Reg: 0, Idx: Const(1 << 40)},
	}}
	e := &Env{Temps: make([]int64, 2)}
	ExecStageObserved(&st, e, s, func(reg int, idx int64, write bool) {
		obs = append(obs, idx)
	})
	if s[[2]int{0, -5}] != 11 || e.Temps[0] != 11 {
		t.Errorf("negative index not passed raw: store=%v temps=%v", s, e.Temps)
	}
	if s[[2]int{0, 1 << 40}] != 11 || e.Temps[1] != 11 {
		t.Errorf("huge index not passed raw: store=%v temps=%v", s, e.Temps)
	}
	want := []int64{-5, -5, 1 << 40, 1 << 40}
	for i, w := range want {
		if i >= len(obs) || obs[i] != w {
			t.Fatalf("observed raw indices %v, want %v", obs, want)
		}
	}
}

func TestExecUnaryAndSelect(t *testing.T) {
	e := run(t, Instr{Op: OpNot, Dst: Temp(0), A: Const(0)}, nil, []int64{0})
	if e.Temps[0] != 1 {
		t.Errorf("not 0 = %d", e.Temps[0])
	}
	e = run(t, Instr{Op: OpNeg, Dst: Temp(0), A: Const(5)}, nil, []int64{0})
	if e.Temps[0] != -5 {
		t.Errorf("neg 5 = %d", e.Temps[0])
	}
	e = run(t, Instr{Op: OpSelect, Dst: Temp(0), A: Const(1), B: Const(10), C: Const(20)}, nil, []int64{0})
	if e.Temps[0] != 10 {
		t.Errorf("select true = %d", e.Temps[0])
	}
	e = run(t, Instr{Op: OpSelect, Dst: Temp(0), A: Const(0), B: Const(10), C: Const(20)}, nil, []int64{0})
	if e.Temps[0] != 20 {
		t.Errorf("select false = %d", e.Temps[0])
	}
}

func TestPredicateGating(t *testing.T) {
	// Pred false: destination untouched.
	e := run(t, Instr{Op: OpMov, Dst: Temp(0), A: Const(9), Pred: Const(0)}, nil, []int64{42})
	if e.Temps[0] != 42 {
		t.Errorf("predicated-off mov wrote %d", e.Temps[0])
	}
	// Negated pred false value → executes.
	e = run(t, Instr{Op: OpMov, Dst: Temp(0), A: Const(9), Pred: Const(0), PredNeg: true}, nil, []int64{42})
	if e.Temps[0] != 9 {
		t.Errorf("negated predicate did not execute: %d", e.Temps[0])
	}
}

func TestRegisterOps(t *testing.T) {
	s := flatStore{}
	e := &Env{Temps: []int64{0, 5}}
	wr := Instr{Op: OpWrReg, Reg: 2, Idx: Const(3), A: Temp(1)}
	ExecInstr(&wr, e, s)
	if s[[2]int{2, 3}] != 5 {
		t.Fatalf("write failed: %v", s)
	}
	rd := Instr{Op: OpRdReg, Reg: 2, Idx: Const(3), Dst: Temp(0)}
	ExecInstr(&rd, e, s)
	if e.Temps[0] != 5 {
		t.Fatalf("read = %d", e.Temps[0])
	}
	// Predicated-off write leaves state alone.
	wrOff := Instr{Op: OpWrReg, Reg: 2, Idx: Const(3), A: Const(99), Pred: Const(0)}
	ExecInstr(&wrOff, e, s)
	if s[[2]int{2, 3}] != 5 {
		t.Fatal("predicated-off write modified state")
	}
}

func TestHashDeterminismAndRange(t *testing.T) {
	prop := func(a, b, c int64) bool {
		h2a, h2b := Hash2(a, b), Hash2(a, b)
		h3a, h3b := Hash3(a, b, c), Hash3(a, b, c)
		return h2a == h2b && h3a == h3b && h2a >= 0 && h3a >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if Hash2(1, 2) == Hash2(2, 1) {
		t.Error("hash2 should not be trivially symmetric")
	}
}

func TestEnvCloneIsDeep(t *testing.T) {
	e := &Env{Fields: []int64{1, 2}, Temps: []int64{3}}
	c := e.Clone()
	c.Fields[0] = 100
	c.Temps[0] = 100
	if e.Fields[0] != 1 || e.Temps[0] != 3 {
		t.Error("clone aliases the original")
	}
}

func TestRegInfoInitialValue(t *testing.T) {
	// Domino fill rule: {v} fills everything; longer lists leave the
	// tail zero.
	r := RegInfo{Size: 4, Init: []int64{7}}
	for i := 0; i < 4; i++ {
		if r.InitialValue(i) != 7 {
			t.Errorf("fill rule broken at %d", i)
		}
	}
	r = RegInfo{Size: 4, Init: []int64{1, 2}}
	want := []int64{1, 2, 0, 0}
	for i, w := range want {
		if r.InitialValue(i) != w {
			t.Errorf("init[%d] = %d, want %d", i, r.InitialValue(i), w)
		}
	}
}

func validProgram() *Program {
	return &Program{
		Name:     "t",
		Fields:   []string{"a", "b"},
		NumTemps: 2,
		Regs: []ir_RegInfoAlias{
			{Name: "r", Size: 4, Stage: 1, Sharded: true},
		},
		Stages: []Stage{
			{Instrs: []Instr{{Op: OpMov, Dst: Temp(0), A: Field(0), Reg: -1}}},
			{Instrs: []Instr{
				{Op: OpRdReg, Dst: Temp(1), Reg: 0, Idx: Temp(0)},
				{Op: OpWrReg, Reg: 0, Idx: Temp(0), A: Temp(1)},
			}},
		},
		Accesses:         []Access{{Reg: 0, Stage: 1, Idx: Temp(0), PredResolvable: true}},
		ResolutionStages: 1,
	}
}

// ir_RegInfoAlias exists so the literal above stays readable.
type ir_RegInfoAlias = RegInfo

func TestValidateAcceptsGoodProgram(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
		want   string
	}{
		{"field out of range", func(p *Program) {
			p.Stages[0].Instrs[0].A = Field(9)
		}, "field id 9 out of range"},
		{"temp out of range", func(p *Program) {
			p.Stages[0].Instrs[0].Dst = Temp(7)
		}, "temp id 7 out of range"},
		{"reg out of range", func(p *Program) {
			p.Stages[1].Instrs[0].Reg = 3
		}, "register id 3 out of range"},
		{"reg placed elsewhere", func(p *Program) {
			p.Regs[0].Stage = 0
		}, "placed in stage 0 but used in stage 1"},
		{"stateful in resolution", func(p *Program) {
			p.ResolutionStages = 2
			p.Accesses = nil
		}, "stateful op inside resolution stage"},
		{"access stage range", func(p *Program) {
			p.Accesses[0].Stage = 0
		}, "outside stateful region"},
		{"sharded access without index", func(p *Program) {
			p.Accesses[0].Idx = None()
		}, "lacks a resolved index"},
		{"accesses out of order", func(p *Program) {
			p.Stages = append(p.Stages, Stage{Instrs: []Instr{
				{Op: OpMov, Dst: Temp(0), A: Const(1), Reg: -1},
			}})
			p.Accesses = append(p.Accesses, Access{Reg: 0, Stage: 2, Idx: Temp(0)})
			p.Accesses[0], p.Accesses[1] = p.Accesses[1], p.Accesses[0]
		}, "not in stage order"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := validProgram()
			c.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a broken program")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want substring %q", err, c.want)
			}
		})
	}
}

func TestStageHelpers(t *testing.T) {
	p := validProgram()
	if p.FieldIndex("b") != 1 || p.FieldIndex("zz") != -1 {
		t.Error("FieldIndex broken")
	}
	if p.RegIndex("r") != 0 || p.RegIndex("zz") != -1 {
		t.Error("RegIndex broken")
	}
	if got := p.StatefulStages(); len(got) != 1 || got[0] != 1 {
		t.Errorf("StatefulStages = %v", got)
	}
	if regs := p.Stages[1].RegsUsed(); len(regs) != 1 || regs[0] != 0 {
		t.Errorf("RegsUsed = %v", regs)
	}
	if p.Stages[0].Stateful() || !p.Stages[1].Stateful() {
		t.Error("Stateful misreports")
	}
}

func TestDumpAndStrings(t *testing.T) {
	p := validProgram()
	d := p.Dump()
	for _, want := range []string{"program t", "reg r0 r[4]", "resolution", "stateful", "access r0"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump lacks %q:\n%s", want, d)
		}
	}
	in := Instr{Op: OpSelect, Dst: Temp(0), A: Temp(1), B: Const(1), C: Const(2), Pred: Temp(1), PredNeg: true}
	if got := in.String(); !strings.Contains(got, "?") || !strings.Contains(got, "[!t1]") {
		t.Errorf("instr string = %q", got)
	}
	for op := OpNop; op <= OpWrReg; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

// TestExecStagePropertyDeterminism: executing a stage twice from the same
// environment and store state yields identical results.
func TestExecStagePropertyDeterminism(t *testing.T) {
	prop := func(a, b int64, sel bool) bool {
		st := Stage{Instrs: []Instr{
			{Op: OpAdd, Dst: Temp(0), A: Const(a), B: Const(b), Reg: -1},
			{Op: OpSelect, Dst: Temp(1), A: boolConst(sel), B: Temp(0), C: Const(0), Reg: -1},
			{Op: OpHash2, Dst: Temp(2), A: Temp(1), B: Const(b), Reg: -1},
		}}
		e1 := &Env{Temps: make([]int64, 3)}
		e2 := &Env{Temps: make([]int64, 3)}
		ExecStage(&st, e1, flatStore{})
		ExecStage(&st, e2, flatStore{})
		for i := range e1.Temps {
			if e1.Temps[i] != e2.Temps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func boolConst(b bool) Operand {
	if b {
		return Const(1)
	}
	return Const(0)
}
