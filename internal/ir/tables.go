package ir

import "fmt"

// TableInfo describes one match table declared by the program (§2.1's
// first pipeline component). Match tables are populated by the control
// plane before the run and are read-only in the data plane, so — per the
// paper's functional-equivalence assumptions (§2.2.1) — their contents are
// identical on the single- and multi-pipelined switch, and MP5 replicates
// them in every pipeline for contention-free line-rate matching (§3.3 uses
// the same argument for the index-to-pipeline map).
type TableInfo struct {
	Name string
	ID   int
	// Keys is the number of match-key operands (1–3).
	Keys int
	// Default is the value produced on a miss.
	Default int64
}

// TableEntry is one control-plane-installed exact-match entry. Unused key
// slots are zero.
type TableEntry struct {
	Table int
	Keys  [3]int64
	Value int64
}

// InstallTable adds an exact-match entry to the named table. Entries are
// part of the program instance (the control-plane configuration the paper
// assumes is applied identically to both switches before the run); every
// register file built from the program replicates them.
func (p *Program) InstallTable(name string, value int64, keys ...int64) error {
	id := -1
	for i := range p.Tables {
		if p.Tables[i].Name == name {
			id = i
			break
		}
	}
	if id < 0 {
		return fmt.Errorf("ir: unknown table %q", name)
	}
	if len(keys) != p.Tables[id].Keys {
		return fmt.Errorf("ir: table %s takes %d keys, got %d", name, p.Tables[id].Keys, len(keys))
	}
	var k [3]int64
	copy(k[:], keys)
	p.TableEntries = append(p.TableEntries, TableEntry{Table: id, Keys: k, Value: value})
	return nil
}

// TableIndex returns the id of the named table, or -1.
func (p *Program) TableIndex(name string) int {
	for i := range p.Tables {
		if p.Tables[i].Name == name {
			return i
		}
	}
	return -1
}
