package screp

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mp5/internal/banzai"
	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/ir"
	"mp5/internal/ir/bytecode"
)

// Engine runs compiled MP5 programs under state-compute replication (see
// the package comment for the model). It intentionally mirrors the
// dataplane engine's surface — Start/Submit/SubmitBatch/Drain plus the
// post-run accessors — so callers (the fuzz driver, mp5sim, mp5bench) can
// swap parallelization strategies behind one shape. An Engine is
// single-use: construct with New, drive one trace or stream, then read
// the post-run accessors.
//
// Unlike the sharded engine, screp needs no resolution metadata: with no
// preemptive address resolution there is nothing to resolve at admission,
// so any compiled program runs (TargetMP5 or not).
type Engine struct {
	cfg  Config
	k    int
	prog *ir.Program
	// bc is the shared compiled program (nil under Config.Interpret);
	// every worker owns a private VM over it.
	bc *bytecode.Program

	// stateful[si] marks stages with register accesses; first/lastStateful
	// bound the serialized span (-1/-1 on stateless programs, which spray
	// with no replay or publication at all).
	stateful      []bool
	firstStateful int
	lastStateful  int

	workers []*worker
	ring    *deltaLog

	// orders is the shared C1 access-order log, keyed (reg, clamped idx).
	// It needs no lock: appends happen only inside a packet's stateful
	// span, and spans are globally serialized by the publish/replay stamp
	// chain (each release-store of a stamp happens-before the next span's
	// acquire-load), so writes are totally ordered with happens-before
	// edges the race detector also sees. Nil unless RecordAccessOrder.
	orders map[[2]int][]int64

	// winCap/winUsed/winAvail form the admission-control semaphore,
	// identical in discipline to the sharded engine's: the serial admitter
	// is the only acquirer (CAS loop), egressing workers release with an
	// atomic decrement plus a non-blocking wakeup. Mailboxes are sized to
	// Window and every in-flight packet occupies at most one mailbox slot,
	// so dispatch sends never block.
	winCap   int64
	winUsed  atomic.Int64
	winAvail chan struct{}

	quit  chan struct{} // closed by Drain after the stream ends
	abort chan struct{} // closed by the watchdog on a stall
	done  chan struct{} // closed when completed == injected

	doneOnce  sync.Once
	abortOnce sync.Once
	wg        sync.WaitGroup

	started bool
	startT  time.Time
	wdStop  chan struct{}
	wdWg    sync.WaitGroup

	// total holds the final injected count, -1 while admission runs.
	total     atomic.Int64
	completed atomic.Int64
	submitted atomic.Int64
	stalled   atomic.Bool
	// frontier is the count of published deltas (highest published seq+1)
	// — with per-worker applied counters it yields the live replication
	// lag gauges.
	frontier atomic.Int64

	// outs[id] is the packet's final header state (Run preallocates;
	// streaming mode records into per-worker maps merged by Outputs).
	outs [][]int64
	// egSeq/egressOrder: sharded egress recording, merged at Drain.
	egSeq       atomic.Int64
	egressOrder []int64

	// free is the packet free list (envs are program-shaped, so one
	// engine-wide list suffices — screp is single-program).
	freeMu sync.Mutex
	free   []*packet

	// chunk/xbuf are admitter-only scratch for SubmitBatch; batchPool
	// recycles the coalesced dispatch carriers.
	chunk     []*packet
	xbuf      []*pktBatch
	batchPool sync.Pool

	met *Metrics
	trc *dataplane.Tracer

	// testBeforeReplay, when set, runs on the executing worker right
	// before it replays up to its packet's sequence number — the
	// white-box hook the stall test uses to wedge a replica.
	testBeforeReplay func(*packet)
}

// New builds a replication engine for prog.
func New(prog *ir.Program, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:           cfg,
		k:             cfg.Workers,
		prog:          prog,
		firstStateful: -1,
		lastStateful:  -1,
		winCap:        int64(cfg.Window),
		winAvail:      make(chan struct{}, 1),
		quit:          make(chan struct{}),
		abort:         make(chan struct{}),
		done:          make(chan struct{}),
		met:           cfg.Metrics,
		trc:           cfg.Tracer,
	}
	e.stateful = make([]bool, len(prog.Stages))
	for i := range prog.Stages {
		if prog.Stages[i].Stateful() {
			e.stateful[i] = true
			if e.firstStateful < 0 {
				e.firstStateful = i
			}
			e.lastStateful = i
		}
	}
	if !cfg.Interpret {
		e.bc = bytecode.MustCompile(prog)
	}
	if cfg.RecordAccessOrder {
		e.orders = make(map[[2]int][]int64)
	}
	e.ring = newDeltaLog(e.k)
	e.chunk = make([]*packet, 0, cfg.Window)
	e.xbuf = make([]*pktBatch, e.k)
	e.free = make([]*packet, 0, cfg.Window)
	e.total.Store(-1)
	if e.met == nil {
		e.met = &Metrics{} // all-nil counters: every update is a no-op
	}
	for i := 0; i < e.k; i++ {
		e.workers = append(e.workers, newWorker(e, i))
	}
	return e
}

// Run drives the whole trace and blocks until every packet egressed (or
// the watchdog aborted a stall) — the batch shorthand for
// Start + SubmitBatch + Drain.
func (e *Engine) Run(arrivals []core.Arrival) *Result {
	if e.cfg.RecordOutputs {
		e.outs = make([][]int64, len(arrivals))
	}
	if len(arrivals) == 0 {
		return e.result(0, 0)
	}
	e.Start()
	e.SubmitBatch(arrivals, nil)
	return e.Drain()
}

// Start launches the replica workers and the liveness watchdog, switching
// the engine into open-ended ingestion mode. Start must be called exactly
// once, and Submit only from one goroutine at a time — admission order
// assigns the global sequence numbers that define C1.
func (e *Engine) Start() {
	if e.started {
		panic("screp: Engine.Start called twice (engines are single-use)")
	}
	e.started = true
	e.startT = time.Now()
	e.wg.Add(e.k)
	for _, w := range e.workers {
		go w.run()
	}
	e.wdStop = make(chan struct{})
	e.wdWg.Add(1)
	go e.watchdog(e.wdStop, &e.wdWg)
}

// Submit admits one packet: block until the admission window has room,
// assign the next sequence number, and spray it to worker seq mod k — no
// resolution stages, no tickets, no steering decision. Returns false when
// the engine aborted. Admitter-serial.
func (e *Engine) Submit(a *core.Arrival) bool { return e.SubmitTraced(a, nil) }

// SubmitTraced is Submit for a sampled packet: sp rides the packet and
// accrues window-wait, admit, crossbar, exec, replay-wait, and egress
// segments until the tracer collects it at egress. A nil sp is a plain
// Submit.
func (e *Engine) SubmitTraced(a *core.Arrival, sp *dataplane.Span) bool {
	select {
	case <-e.abort:
		return false // dead engine: refuse before consuming a sequence number
	default:
	}
	if e.acquireWindow(1) == 0 {
		return false
	}
	id := e.submitted.Load()
	if sp != nil {
		sp.Advance(dataplane.StageWindowWait, -1)
		sp.ID = id
	}
	p := e.prepare(id, a)
	e.submitted.Add(1)
	if sp != nil {
		sp.Advance(dataplane.StageAdmit, -1)
		p.span = sp
	}
	// Deterministic abort check between sequencing and dispatch, then the
	// guarded send — either abort path retires the packet (window token
	// returned, packet recycled). The sequence chain tolerates the gap:
	// retirement only happens on a dead engine whose replicas are exiting.
	select {
	case <-e.abort:
		e.retire(p)
		return false
	default:
	}
	select {
	case e.workers[id%int64(e.k)].mailbox <- xbarMsg{p: p}:
	case <-e.abort:
		e.retire(p)
		return false
	}
	return true
}

// SubmitBatch admits a run of packets, amortizing the per-packet costs:
// one window acquisition per chunk and one mailbox send per destination
// worker per chunk (round-robin spray keeps each worker's members in
// sequence order inside its batch). spans is either nil or parallel to
// arrs. Returns how many packets were admitted; fewer than len(arrs)
// means the engine aborted. Admitter-serial, like Submit.
func (e *Engine) SubmitBatch(arrs []core.Arrival, spans []*dataplane.Span) int {
	admitted := 0
	for admitted < len(arrs) {
		select {
		case <-e.abort:
			return admitted
		default:
		}
		base := e.submitted.Load()
		got := int(e.acquireWindow(int64(len(arrs) - admitted)))
		if got == 0 {
			return admitted
		}
		for i := 0; i < got; i++ {
			a := &arrs[admitted+i]
			id := base + int64(i)
			var sp *dataplane.Span
			if spans != nil {
				sp = spans[admitted+i]
			}
			if sp != nil {
				sp.Advance(dataplane.StageWindowWait, -1)
				sp.ID = id
			}
			p := e.prepare(id, a)
			if sp != nil {
				sp.Advance(dataplane.StageAdmit, -1)
				p.span = sp
			}
			e.chunk = append(e.chunk, p)
		}
		e.submitted.Store(base + int64(got))
		admitted += got
		if !e.dispatchChunk() {
			return admitted
		}
	}
	return admitted
}

// dispatchChunk coalesces the admitted chunk into at most one mailbox
// send per destination worker and clears the chunk. Returns false when
// the engine aborted mid-dispatch; undispatched packets are retired.
func (e *Engine) dispatchChunk() bool {
	for _, p := range e.chunk {
		dest := int(p.id % int64(e.k))
		if e.xbuf[dest] == nil {
			e.xbuf[dest] = e.getBatch()
		}
		e.xbuf[dest].items = append(e.xbuf[dest].items, p)
	}
	e.chunk = e.chunk[:0]
	aborted := false
	select {
	case <-e.abort:
		aborted = true
	default:
	}
	for w := 0; w < e.k; w++ {
		b := e.xbuf[w]
		if b == nil {
			continue
		}
		e.xbuf[w] = nil
		if aborted {
			for _, p := range b.items {
				e.retire(p)
			}
			e.putBatch(b)
			continue
		}
		select {
		case e.workers[w].mailbox <- xbarMsg{batch: b}:
		case <-e.abort:
			aborted = true
			for _, p := range b.items {
				e.retire(p)
			}
			e.putBatch(b)
		}
	}
	return !aborted
}

// retire un-admits a packet on the abort path: return its window token
// and recycle it. Only ever runs on a dead engine.
func (e *Engine) retire(p *packet) {
	p.span = nil
	e.putPacket(p)
	e.releaseWindow()
}

// prepare readies one packet on the admitter: recycle or build a packet
// and reset its env. The whole admission cost — no resolution stages, no
// ticket issue — which is the replication strategy's selling point.
func (e *Engine) prepare(id int64, a *core.Arrival) *packet {
	p := e.getPacket()
	p.id = id
	p.env.ResetFor(a.Fields)
	p.span = nil
	p.start = time.Now()
	e.met.Admitted.Inc()
	return p
}

// NextID returns the sequence number the next Submit will assign.
// Admitter-serial, like Submit.
func (e *Engine) NextID() int64 { return e.submitted.Load() }

// Drain ends admission and blocks until every in-flight packet egressed
// (or the watchdog aborted), joins the workers, then converges every
// replica to the final sequence number so all register files are
// bit-identical. After Drain the post-run accessors are valid.
func (e *Engine) Drain() *Result {
	if !e.started {
		return e.result(0, 0)
	}
	submitted := e.submitted.Load()
	e.total.Store(submitted)
	if e.completed.Load() == submitted {
		e.closeDone()
	}
	select {
	case <-e.done:
	case <-e.abort:
	}
	close(e.wdStop)
	e.wdWg.Wait()
	close(e.quit)
	e.wg.Wait()
	if !e.stalled.Load() {
		e.converge(submitted)
	}
	e.mergeEgressOrder()
	return e.result(submitted, time.Since(e.startT))
}

// converge replays every replica to the final sequence number, after the
// workers joined. Safe without waiting: every packet egressed, so every
// delta up to total is published, and the ring still holds every entry a
// lagging replica needs — a worker's last executed packet had a sequence
// number within k of total (round-robin), so its replay frontier is
// already past total-k, and entries are only overwritten a full ring lap
// (cap > k+1) later.
func (e *Engine) converge(total int64) {
	if e.lastStateful < 0 {
		return // stateless program: replicas never diverged
	}
	for _, w := range e.workers {
		w.replayTo(total)
	}
}

// mergeEgressOrder stitches the per-worker (seq, id) egress records into
// the global wall-clock egress sequence (Drain-time, workers joined).
func (e *Engine) mergeEgressOrder() {
	if !e.cfg.RecordEgressOrder {
		return
	}
	n := 0
	for _, w := range e.workers {
		n += len(w.egRecs)
	}
	recs := make([]egRec, 0, n)
	for _, w := range e.workers {
		recs = append(recs, w.egRecs...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	e.egressOrder = make([]int64, len(recs))
	for i, r := range recs {
		e.egressOrder[i] = r.id
	}
}

// acquireWindow takes up to want admission-window tokens (at least one),
// blocking while the window is full. Returns the number taken, or 0 when
// the engine aborted. Admitter-serial.
func (e *Engine) acquireWindow(want int64) int64 {
	for {
		used := e.winUsed.Load()
		if free := e.winCap - used; free > 0 {
			n := want
			if n > free {
				n = free
			}
			if e.winUsed.CompareAndSwap(used, used+n) {
				return n
			}
			continue
		}
		select {
		case <-e.winAvail:
		case <-e.abort:
			return 0
		}
	}
}

// releaseWindow returns one token and wakes the admitter if it is waiting.
func (e *Engine) releaseWindow() {
	e.winUsed.Add(-1)
	select {
	case e.winAvail <- struct{}{}:
	default: // a wakeup is already pending; one is enough
	}
}

// getPacket/putPacket recycle packets through the engine's free list.
func (e *Engine) getPacket() *packet {
	e.freeMu.Lock()
	if n := len(e.free); n > 0 {
		p := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.freeMu.Unlock()
		return p
	}
	e.freeMu.Unlock()
	return &packet{env: ir.NewEnv(e.prog)}
}

func (e *Engine) putPacket(p *packet) {
	e.freeMu.Lock()
	e.free = append(e.free, p)
	e.freeMu.Unlock()
}

// getBatch/putBatch recycle the coalesced dispatch carriers.
func (e *Engine) getBatch() *pktBatch {
	if v := e.batchPool.Get(); v != nil {
		return v.(*pktBatch)
	}
	return &pktBatch{items: make([]*packet, 0, 64)}
}

func (e *Engine) putBatch(b *pktBatch) {
	for i := range b.items {
		b.items[i] = nil
	}
	b.items = b.items[:0]
	e.batchPool.Put(b)
}

// watchdog aborts the run when no packet egresses for StallTimeout while
// packets are in flight — the liveness backstop behind the replay spin
// (an idle stream is healthy, not stalled).
func (e *Engine) watchdog(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	period := e.cfg.StallTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	last := e.completed.Load()
	lastChange := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-e.done:
			return
		case <-tick.C:
			cur := e.completed.Load()
			if cur != last || cur == e.submitted.Load() {
				last, lastChange = cur, time.Now()
				continue
			}
			if time.Since(lastChange) >= e.cfg.StallTimeout {
				e.stalled.Store(true)
				e.met.Stalls.Inc()
				e.abortOnce.Do(func() { close(e.abort) })
				return
			}
		}
	}
}

func (e *Engine) closeDone() {
	e.doneOnce.Do(func() { close(e.done) })
}

// result assembles the run summary after every worker joined.
func (e *Engine) result(injected int64, elapsed time.Duration) *Result {
	lat := newHistogram()
	var deltas, replayed int64
	for _, w := range e.workers {
		lat.Merge(w.lat)
		deltas += w.deltasN
		replayed += w.replayedN
	}
	res := &Result{
		Workers:         e.k,
		Injected:        injected,
		Completed:       e.completed.Load(),
		DeltasPublished: deltas,
		WritesReplayed:  replayed,
		Stalled:         e.stalled.Load(),
		Elapsed:         elapsed,
		Latency:         lat,
	}
	if e.cfg.RecordEgressOrder {
		res.Reordered = core.CountOvertakers(e.egressOrder)
	}
	if elapsed > 0 {
		res.PktsPerSec = float64(res.Completed) / elapsed.Seconds()
	}
	return res
}

// Outputs returns each completed packet's final header fields, keyed by
// packet id — the shape equiv.CheckState consumes. Only valid after
// Run/Drain with Config.RecordOutputs set.
func (e *Engine) Outputs() map[int64][]int64 {
	if e.outs == nil {
		if !e.cfg.RecordOutputs {
			return nil
		}
		n := 0
		for _, w := range e.workers {
			n += len(w.outs)
		}
		out := make(map[int64][]int64, n)
		for _, w := range e.workers {
			for id, f := range w.outs {
				out[id] = f
			}
		}
		return out
	}
	out := make(map[int64][]int64, len(e.outs))
	for id, f := range e.outs {
		if f != nil {
			out[int64(id)] = f
		}
	}
	return out
}

// FinalRegs returns the final register state. After a clean Drain every
// replica has converged to bit-identical state, so replica 0's register
// file is THE final state (ReplicaRegs exposes the others; the
// convergence test asserts they agree).
func (e *Engine) FinalRegs() [][]int64 { return e.workers[0].regs.Snapshot() }

// ReplicaRegs returns worker i's private register file snapshot — equal
// across i after a clean Drain, which is exactly what the replica-
// convergence test asserts. Only valid after Drain.
func (e *Engine) ReplicaRegs(i int) [][]int64 { return e.workers[i].regs.Snapshot() }

// AccessOrders returns the per-slot effective access order in packet ids,
// keyed like the simulator's EvAccess stream and banzai's indexed log
// ("r<reg>[<idx>]") — directly comparable to equiv.ReferenceOrder. Only
// valid after Run/Drain, with Config.RecordAccessOrder set.
func (e *Engine) AccessOrders() map[string][]int64 {
	out := make(map[string][]int64, len(e.orders))
	for dk, seq := range e.orders {
		out[banzai.AccessKey(dk[0], dk[1])] = seq
	}
	return out
}

// EgressOrder returns the wall-clock egress sequence of packet ids (only
// recorded with Config.RecordEgressOrder).
func (e *Engine) EgressOrder() []int64 { return e.egressOrder }

// Stalled reports whether the liveness watchdog aborted the engine (any
// goroutine, any time).
func (e *Engine) Stalled() bool { return e.stalled.Load() }

// Workers returns the resolved replica count k.
func (e *Engine) Workers() int { return e.k }

// Submitted returns the number of packets admitted so far (any goroutine).
func (e *Engine) Submitted() int64 { return e.submitted.Load() }

// Completed returns the number of packets egressed so far (any goroutine).
func (e *Engine) Completed() int64 { return e.completed.Load() }

// InFlight returns the number of admitted-but-not-yet-egressed packets,
// bounded by Config.Window (any goroutine).
func (e *Engine) InFlight() int64 { return e.submitted.Load() - e.completed.Load() }

// WindowInUse returns the number of admission-window tokens currently held.
func (e *Engine) WindowInUse() int { return int(e.winUsed.Load()) }

// WindowCap returns the admission-window size.
func (e *Engine) WindowCap() int { return int(e.winCap) }

// ReplicaStats snapshots every replica's live replication gauges: how far
// each has executed and applied, how many published deltas it still has
// to replay (Lag — the pending replay depth), and its cumulative replay
// wait. Safe from any goroutine while the engine runs.
func (e *Engine) ReplicaStats() []ReplicaStat {
	front := e.frontier.Load()
	out := make([]ReplicaStat, e.k)
	for i, w := range e.workers {
		ap := w.appliedA.Load()
		lag := front - ap
		if lag < 0 {
			lag = 0
		}
		out[i] = ReplicaStat{
			ID:           i,
			Executed:     w.executedN.Load(),
			Applied:      ap,
			Lag:          lag,
			ReplayWaitNs: w.replayWaitNs.Load(),
		}
	}
	return out
}
