package screp

import (
	"runtime"
	"sync/atomic"
	"time"
)

// regWrite is one replayed register store: the final value packet seq left
// in slot (reg, idx) after its last stateful stage. Replaying final values
// is state-equivalent to replaying the packet's individual read-modify-
// writes — no other packet's stateful span can interleave (publication is
// globally serialized), so intermediate values are unobservable.
type regWrite struct {
	reg int
	idx int
	val int64
}

// deltaEntry is one ring slot: the write delta of sequence number seq is
// published by storing stamp = seq+1 (0 marks never-published) AFTER the
// writes slice is filled. The atomic stamp is the publication fence: the
// publisher's plain writes to the slice happen-before any replayer that
// acquire-loads the expected stamp, and the slice is reused in place on
// the ring's next lap — safe because the capacity proof below shows every
// replica finished reading an entry before it can be overwritten.
type deltaEntry struct {
	stamp  atomic.Int64
	writes []regWrite
}

// deltaLog is the sequence-indexed replay ring shared by all replicas.
//
// Capacity argument (why a fixed ring cannot overrun): publishing sequence
// u requires every sequence below u to be published, and a worker only
// publishes its own sequence after replaying everything below it. Round-
// robin assignment puts exactly one of any k consecutive sequence numbers
// on each worker, so when u publishes, every worker has replayed past
// u-k — the entry u-cap that u's publication overwrites (cap > k+1) was
// last needed strictly earlier on every replica, with the happens-before
// chain of stamps ordering those reads before the overwrite. replayTo
// still checks for a stamp from a later lap and panics loudly: an overrun
// would mean the invariant (hence C1) is broken, never silent corruption.
type deltaLog struct {
	entries []deltaEntry
	mask    int64
}

// newDeltaLog sizes the ring: a power of two at least max(256, 4k).
func newDeltaLog(k int) *deltaLog {
	need := 4 * k
	if need < 256 {
		need = 256
	}
	capPow := 1
	for capPow < need {
		capPow <<= 1
	}
	return &deltaLog{entries: make([]deltaEntry, capPow), mask: int64(capPow - 1)}
}

// publish places seq's write delta on the ring. Called only by the worker
// that executed seq, after it replayed every earlier delta — the global
// serialization point.
func (l *deltaLog) publish(seq int64, writes []regWrite) {
	en := &l.entries[seq&l.mask]
	en.writes = append(en.writes[:0], writes...)
	en.stamp.Store(seq + 1)
}

// replaySpins is how many failed stamp polls a replayer tolerates between
// abort checks; past replaySleepAfter it backs off with a short sleep so a
// wedged publisher (or a watchdog-bound stall) does not burn a core.
const (
	replaySpins      = 1 << 10
	replaySleepAfter = 1 << 16
)

// waitFor blocks until seq's delta is published, returning its entry, or
// nil when the engine aborted while waiting. waitedNs accrues the wall
// time actually spent spinning (zero-cost when the delta was already
// there).
func (l *deltaLog) waitFor(seq int64, abort <-chan struct{}, waitedNs *int64) *deltaEntry {
	en := &l.entries[seq&l.mask]
	want := seq + 1
	if st := en.stamp.Load(); st == want {
		return en
	} else if st > want {
		panic("screp: delta log overrun (ring capacity invariant broken)")
	}
	t0 := time.Now()
	defer func() { *waitedNs += time.Since(t0).Nanoseconds() }()
	for spins := 1; ; spins++ {
		st := en.stamp.Load()
		if st == want {
			return en
		}
		if st > want {
			panic("screp: delta log overrun (ring capacity invariant broken)")
		}
		if spins%replaySpins == 0 {
			select {
			case <-abort:
				return nil
			default:
			}
			if spins >= replaySleepAfter {
				time.Sleep(50 * time.Microsecond)
				continue
			}
		}
		runtime.Gosched()
	}
}
