// Package screp executes compiled MP5 programs under State-Compute
// Replication (arXiv 2309.14647) — the competing answer to stateful
// multi-pipeline scaling that internal/dataplane's D2 index sharding
// reproduces from the source paper. Where the sharded engine partitions
// every register index across workers and steers packets to the owner,
// this engine replicates: every worker owns a full private copy of ALL
// register state, packets are sprayed round-robin with no address
// resolution, no shard map, and no crossbar steering, and state coherence
// is restored by replaying a compact per-packet write log.
//
// The mechanism:
//
//   - The packet's arrival id IS its global sequence number; packet s
//     executes on worker s mod k. Admission is therefore trivial — no
//     resolution stages run on the admitter, no tickets are issued.
//   - Every worker executes the full stage program against its own
//     replica. Before a packet's first stateful stage may run, the worker
//     replays the write deltas of every earlier sequence number it has not
//     yet applied (spinning until they are published); after its last
//     stateful stage it publishes its own delta — the final values of the
//     register slots the packet wrote — into a fixed-size sequence-indexed
//     ring, then runs the remaining stateless stages and egresses.
//   - Publication order is therefore exactly arrival order: publishing
//     sequence s requires every delta below s to be applied first, so the
//     stateful span of packet s happens strictly before the stateful span
//     of packet s+1, whichever workers run them. That global serialization
//     of stateful spans gives condition C1 — every register slot observes
//     accesses in arrival order — by construction, verified differentially
//     against equiv.ReferenceOrder in this package's tests and as a fourth
//     engine leg in internal/fuzz.
//
// The trade against sharding is the honest one the benchmarks measure
// (cmd/mp5bench -dataplane-bench, DESIGN.md §18): replication pays
// nothing at admission and nothing for steering — stateless and
// read-mostly programs spray perfectly — but every written slot is
// re-applied by all k replicas, so write-heavy state costs k times the
// stores and the serialized stateful span bounds the parallel section.
package screp

import (
	"runtime"
	"time"

	"mp5/internal/dataplane"
	"mp5/internal/stats"
	"mp5/internal/telemetry"
)

// Latency histogram shape, matching internal/dataplane so merged results
// are comparable side by side: microseconds in [0, 65536) at 8 µs
// resolution.
const (
	latLo      = 0
	latHi      = 1 << 16
	latBuckets = 1 << 13
)

// Config parameterizes an Engine. It is deliberately a subset of
// dataplane.Config — replication has no shard placement to seed and no
// remap cadence to tune.
type Config struct {
	// Workers is the number of replica workers k (one goroutine each, each
	// holding a full private register file); 0 defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// Window bounds the number of in-flight packets (admitted but not yet
	// egressed); 0 defaults to 256. As in the sharded engine, mailboxes
	// are sized to the window so crossbar sends never block.
	Window int
	// Interpret forces stage execution through the tree-walking ir
	// interpreter instead of the compiled bytecode VM (the differential
	// oracle switch, identical to dataplane.Config.Interpret).
	Interpret bool
	// RecordOutputs retains each packet's final header fields (required
	// for equivalence checking via equiv.CheckState).
	RecordOutputs bool
	// RecordAccessOrder logs the per-slot effective access order, keyed
	// like the simulator's EvAccess stream (required for C1 checking).
	// The log is written inside the globally-serialized stateful span, so
	// it needs no lock.
	RecordAccessOrder bool
	// RecordEgressOrder retains the wall-clock egress sequence so Result
	// can report Reordered.
	RecordEgressOrder bool
	// StallTimeout aborts the run when no packet egresses for this long
	// while packets are in flight; 0 defaults to 10s. The watchdog is the
	// liveness backstop behind the replay spin loop.
	StallTimeout time.Duration
	// Metrics, when non-nil, receives concurrent counter updates (nil
	// disables with zero overhead).
	Metrics *Metrics
	// Tracer, when non-nil, receives sampled wire-to-wire spans. The
	// tracer is shared with internal/dataplane — screp stamps the same
	// window_wait/admit/crossbar/exec/egress segments plus its own
	// replay_wait stage, so one span pipeline serves both strategies.
	Tracer *dataplane.Tracer
	// OnEgress, when non-nil, runs on the egressing worker's goroutine
	// after outputs are recorded and before the window token is released
	// (same contract as dataplane.Config.OnEgress).
	OnEgress func(id int64)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 10 * time.Second
	}
	return c
}

// Metrics is the engine's telemetry surface: plain registry counters,
// updated concurrently by the admitter and all workers.
type Metrics struct {
	Admitted *telemetry.Counter
	Egressed *telemetry.Counter
	// Deltas counts published per-packet write deltas (one per packet on
	// stateful programs, including empty deltas that only advance the
	// sequence chain); ReplayedWrites counts individual register stores
	// re-applied on non-executing replicas — the replication overhead.
	Deltas         *telemetry.Counter
	ReplayedWrites *telemetry.Counter
	Stalls         *telemetry.Counter
}

// NewMetrics registers the engine's counters on r (nil r yields all-nil
// counters, the disabled state).
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Admitted:       r.NewCounter("screp_admitted_total", "packets admitted into the replication engine"),
		Egressed:       r.NewCounter("screp_egressed_total", "packets that completed all stages"),
		Deltas:         r.NewCounter("screp_deltas_total", "per-packet write deltas published to the replay ring"),
		ReplayedWrites: r.NewCounter("screp_replayed_writes_total", "register stores re-applied on non-executing replicas"),
		Stalls:         r.NewCounter("screp_stalls_total", "runs aborted by the liveness watchdog"),
	}
}

// Result summarizes one Engine.Run.
type Result struct {
	Workers   int
	Injected  int64
	Completed int64
	// DeltasPublished counts per-packet write deltas placed on the replay
	// ring; WritesReplayed counts the individual register stores other
	// replicas re-applied — the price of replication, the analogue of the
	// sharded engine's Steers/Parks columns.
	DeltasPublished int64
	WritesReplayed  int64
	// Reordered counts packets that egressed after a later-arriving packet
	// (only populated with Config.RecordEgressOrder).
	Reordered int64
	// Stalled reports a watchdog abort.
	Stalled bool
	// Elapsed is the wall-clock run time; PktsPerSec = Completed/Elapsed.
	Elapsed    time.Duration
	PktsPerSec float64
	// Latency is the merged per-worker admission-to-egress latency
	// histogram in microseconds (same shape as the sharded engine's).
	Latency *stats.Histogram
}

// ReplicaStat is one worker's live replication view, in the shape the
// admin plane serves (/stats) and mp5top renders: Executed counts packets
// this replica ran itself, Applied is its replay frontier (sequence
// numbers whose deltas it has applied), Lag is the published-but-unapplied
// delta count (pending replay depth), and ReplayWaitNs is cumulative wall
// time spent spinning for unpublished deltas.
type ReplicaStat struct {
	ID           int   `json:"id"`
	Executed     int64 `json:"executed"`
	Applied      int64 `json:"applied"`
	Lag          int64 `json:"lag"`
	ReplayWaitNs int64 `json:"replay_wait_ns"`
}

func newHistogram() *stats.Histogram {
	return stats.NewHistogram(latLo, latHi, latBuckets)
}
