package screp

import (
	"reflect"
	"testing"
	"time"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/equiv"
	"mp5/internal/ir"
	"mp5/internal/telemetry"
	"mp5/internal/workload"
)

// workerCounts are the replica topologies every equivalence test sweeps —
// the acceptance criterion requires {1, 2, 4}.
var workerCounts = []int{1, 2, 4}

// runChecked drives the engine over the trace and fails the test unless
// the run is loss-free and matches the single-pipeline reference on
// outputs, final registers, and per-slot access order (C1) — the same
// three oracles the sharded engine is held to.
func runChecked(t *testing.T, prog *ir.Program, arrivals []core.Arrival, cfg Config) (*Engine, *Result) {
	t.Helper()
	cfg.RecordOutputs = true
	cfg.RecordAccessOrder = true
	cfg.RecordEgressOrder = true
	e := New(prog, cfg)
	res := e.Run(arrivals)
	checkResult(t, e, res, prog, arrivals, cfg.Workers)
	return e, res
}

func checkResult(t *testing.T, e *Engine, res *Result, prog *ir.Program, arrivals []core.Arrival, workers int) {
	t.Helper()
	if res.Stalled {
		t.Fatalf("workers=%d: engine stalled (%d of %d completed)", workers, res.Completed, res.Injected)
	}
	if res.Completed != res.Injected || res.Injected != int64(len(arrivals)) {
		t.Fatalf("workers=%d: %d of %d completed (trace %d)", workers, res.Completed, res.Injected, len(arrivals))
	}
	if rep := equiv.CheckState(prog, e.FinalRegs(), e.Outputs(), arrivals); !rep.Equivalent {
		t.Fatalf("workers=%d: not equivalent to reference:\n%s", workers, rep)
	}
	want := equiv.ReferenceOrder(prog, arrivals)
	got := e.AccessOrders()
	if !reflect.DeepEqual(want, got) {
		for k, w := range want {
			if !reflect.DeepEqual(w, got[k]) {
				t.Fatalf("workers=%d: access order of %s diverged:\nwant %v\ngot  %v", workers, k, w, got[k])
			}
		}
		for k := range got {
			if _, ok := want[k]; !ok {
				t.Fatalf("workers=%d: spurious access sequence for %s: %v", workers, k, got[k])
			}
		}
		t.Fatalf("workers=%d: access orders diverged", workers)
	}
}

func TestSyntheticEquivalence(t *testing.T) {
	prog, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []workload.Pattern{workload.Uniform, workload.Skewed} {
		for _, k := range workerCounts {
			t.Run(pattern.String()+"/"+string(rune('0'+k)), func(t *testing.T) {
				arrivals := workload.Synthetic(prog, workload.Spec{
					Packets: 3000, Pipelines: 4, Seed: 7, Pattern: pattern,
				}, 4, 64)
				runChecked(t, prog, arrivals, Config{Workers: k})
			})
		}
	}
}

// TestAppEquivalence checks every bundled application — including the
// ones with stateful predicates and data-dependent indices, which the
// replication model handles with no resolution at all (the dirty set is
// captured live, inside the serialized span).
func TestAppEquivalence(t *testing.T) {
	for _, app := range apps.All() {
		prog := app.MP5()
		arrivals := workload.RandomFields(prog, workload.Spec{
			Packets: 2000, Pipelines: 4, Seed: 11,
		})
		for _, k := range workerCounts {
			t.Run(app.Name+"/"+string(rune('0'+k)), func(t *testing.T) {
				runChecked(t, prog, arrivals, Config{Workers: k})
			})
		}
	}
}

// TestInterpretEquivalence pins the tree-walking interpreter path — the
// executor the differential fuzz harness flips — on a multi-replica run.
func TestInterpretEquivalence(t *testing.T) {
	prog, err := apps.Synthetic(3, 32, 12)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 1500, Pipelines: 4, Seed: 17}, 3, 32)
	runChecked(t, prog, arrivals, Config{Workers: 4, Interpret: true})
}

// TestStatelessSpray runs a register-free program: a pure round-robin
// spray with no deltas published and no writes replayed.
func TestStatelessSpray(t *testing.T) {
	prog, err := apps.Synthetic(0, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Accesses) != 0 {
		t.Fatalf("expected a stateless program, got %d accesses", len(prog.Accesses))
	}
	arrivals := workload.RandomFields(prog, workload.Spec{Packets: 1000, Pipelines: 4, Seed: 3})
	_, res := runChecked(t, prog, arrivals, Config{Workers: 4})
	if res.DeltasPublished != 0 || res.WritesReplayed != 0 {
		t.Fatalf("stateless run published %d deltas / replayed %d writes", res.DeltasPublished, res.WritesReplayed)
	}
}

// TestSingleSubmitStream drives the per-packet Submit path (the daemon's
// streaming shape) instead of Run's coalesced SubmitBatch.
func TestSingleSubmitStream(t *testing.T) {
	prog, err := apps.Synthetic(2, 32, 12)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 1200, Pipelines: 4, Seed: 19}, 2, 32)
	for _, k := range workerCounts {
		e := New(prog, Config{Workers: k, RecordOutputs: true, RecordAccessOrder: true})
		e.Start()
		for i := range arrivals {
			if !e.Submit(&arrivals[i]) {
				t.Fatalf("workers=%d: Submit refused packet %d", k, i)
			}
		}
		res := e.Drain()
		checkResult(t, e, res, prog, arrivals, k)
	}
}

// TestReplicaConvergence is the replication model's own invariant: after
// a clean Drain every worker's private register file must be
// bit-identical — each replica replayed every delta it did not produce.
func TestReplicaConvergence(t *testing.T) {
	prog, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{
		Packets: 2500, Pipelines: 4, Seed: 23, Pattern: workload.Skewed,
	}, 4, 64)
	e, res := runChecked(t, prog, arrivals, Config{Workers: 4})
	if res.DeltasPublished != res.Completed {
		t.Fatalf("published %d deltas for %d completions (the sequence chain must be dense)",
			res.DeltasPublished, res.Completed)
	}
	ref := e.ReplicaRegs(0)
	for i := 1; i < e.Workers(); i++ {
		if got := e.ReplicaRegs(i); !reflect.DeepEqual(ref, got) {
			t.Fatalf("replica %d diverged from replica 0 after converge:\nr0: %v\nr%d: %v", i, ref, i, got)
		}
	}
}

// TestReplicaStats checks the live gauges after a drained run: every
// replica's frontier reached the final sequence number, the executed
// counts partition the trace round-robin, and lag is zero at rest.
func TestReplicaStats(t *testing.T) {
	prog, err := apps.Synthetic(2, 32, 12)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 1000, Pipelines: 4, Seed: 29}, 2, 32)
	e, res := runChecked(t, prog, arrivals, Config{Workers: 4})
	var executed int64
	for _, st := range e.ReplicaStats() {
		executed += st.Executed
		if st.Applied != res.Injected {
			t.Fatalf("replica %d applied %d of %d after converge", st.ID, st.Applied, res.Injected)
		}
		if st.Lag != 0 {
			t.Fatalf("replica %d reports lag %d at rest", st.ID, st.Lag)
		}
	}
	if executed != res.Injected {
		t.Fatalf("executed counts sum to %d, want %d", executed, res.Injected)
	}
}

// TestWindowOne serializes the whole engine through a single in-flight
// packet — the degenerate topology that shakes out window accounting (and
// here also guarantees replay never waits).
func TestWindowOne(t *testing.T) {
	prog, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 500, Pipelines: 2, Seed: 9}, 2, 16)
	runChecked(t, prog, arrivals, Config{Workers: 2, Window: 1})
}

func TestEmptyTrace(t *testing.T) {
	prog, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, Config{Workers: 2, RecordOutputs: true})
	res := e.Run(nil)
	if res.Injected != 0 || res.Completed != 0 || res.Stalled {
		t.Fatalf("empty trace: %+v", res)
	}
	if len(e.Outputs()) != 0 {
		t.Fatal("empty trace produced outputs")
	}
}

// TestMetrics reconciles the engine's telemetry counters with its Result.
func TestMetrics(t *testing.T) {
	prog, err := apps.Synthetic(2, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 1500, Pipelines: 4, Seed: 13}, 2, 32)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	_, res := runChecked(t, prog, arrivals, Config{Workers: 4, Metrics: m})
	if m.Admitted.Value() != res.Injected {
		t.Fatalf("admitted counter %d != injected %d", m.Admitted.Value(), res.Injected)
	}
	if m.Egressed.Value() != res.Completed {
		t.Fatalf("egressed counter %d != completed %d", m.Egressed.Value(), res.Completed)
	}
	if m.Deltas.Value() != res.DeltasPublished || m.ReplayedWrites.Value() != res.WritesReplayed {
		t.Fatalf("counters diverge from result: deltas %d/%d, replayed %d/%d",
			m.Deltas.Value(), res.DeltasPublished, m.ReplayedWrites.Value(), res.WritesReplayed)
	}
	if res.DeltasPublished != res.Completed {
		t.Fatalf("published %d deltas for %d completions", res.DeltasPublished, res.Completed)
	}
	if res.Latency.Total() != int(res.Completed) {
		t.Fatalf("latency histogram holds %d samples for %d completions", res.Latency.Total(), res.Completed)
	}
}

// TestStallWatchdog wedges one replica right before its replay (the
// white-box hook), starving every other replica of that sequence number's
// delta: the watchdog must abort the run as Stalled instead of hanging,
// and the spinning replicas must observe the abort and exit.
func TestStallWatchdog(t *testing.T) {
	prog, err := apps.Synthetic(2, 32, 12)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 400, Pipelines: 4, Seed: 31}, 2, 32)
	e := New(prog, Config{Workers: 4, StallTimeout: 100 * time.Millisecond})
	e.testBeforeReplay = func(p *packet) {
		if p.id == 0 {
			<-e.abort // hold sequence 0 hostage until the watchdog fires
		}
	}
	res := e.Run(arrivals)
	if !res.Stalled {
		t.Fatalf("wedged run did not stall: %+v", res)
	}
	if !e.Stalled() {
		t.Fatal("Stalled accessor disagrees with result")
	}
	// The wedge releases when abort fires, so completion may catch up —
	// but the admitter must have been cut off at the window cap, well
	// short of the full trace.
	if res.Injected >= int64(len(arrivals)) {
		t.Fatalf("stalled run still admitted the whole trace (%d)", res.Injected)
	}
}

// TestTracedRun attaches a sample-everything tracer: every span must be
// collected (or counted as dropped), and the replay_wait stage must be
// known to the span pipeline.
func TestTracedRun(t *testing.T) {
	prog, err := apps.Synthetic(2, 32, 12)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Synthetic(prog, workload.Spec{Packets: 600, Pipelines: 4, Seed: 37}, 2, 32)
	reg := telemetry.NewRegistry()
	trc := dataplane.NewTracer(dataplane.TracerConfig{SampleEvery: 1, Registry: reg})
	e := New(prog, Config{Workers: 4, RecordOutputs: true, Tracer: trc})
	e.Start()
	for i := range arrivals {
		if !e.SubmitTraced(&arrivals[i], trc.Sample()) {
			t.Fatalf("SubmitTraced refused packet %d", i)
		}
	}
	res := e.Drain()
	trc.Close()
	if res.Stalled || res.Completed != int64(len(arrivals)) {
		t.Fatalf("traced run: %+v", res)
	}
	if trc.Sampled() != int64(len(arrivals)) {
		t.Fatalf("sampled %d of %d", trc.Sampled(), len(arrivals))
	}
	if dataplane.StageReplayWait.String() != "replay_wait" {
		t.Fatalf("replay_wait stage renders as %q", dataplane.StageReplayWait.String())
	}
	stages := trc.StageStats()
	if len(stages) == 0 {
		t.Fatal("no stage stats collected from a sample-everything run")
	}
}

// TestLatencyMergeAcrossWorkers checks the per-worker histogram drain.
func TestLatencyMergeAcrossWorkers(t *testing.T) {
	prog, err := apps.Synthetic(0, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.RandomFields(prog, workload.Spec{Packets: 800, Pipelines: 4, Seed: 21})
	e := New(prog, Config{Workers: 4, RecordOutputs: true})
	res := e.Run(arrivals)
	if res.Latency.Total() != len(arrivals) {
		t.Fatalf("merged latency total %d, want %d", res.Latency.Total(), len(arrivals))
	}
	perWorker := 0
	for _, w := range e.workers {
		perWorker += w.lat.Total()
	}
	if perWorker != len(arrivals) {
		t.Fatalf("per-worker totals sum to %d, want %d", perWorker, len(arrivals))
	}
}
