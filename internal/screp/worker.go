package screp

import (
	"sync/atomic"
	"time"

	"mp5/internal/banzai"
	"mp5/internal/dataplane"
	"mp5/internal/ir"
	"mp5/internal/ir/bytecode"
	"mp5/internal/stats"
)

// packet is one in-flight packet. Owned by exactly one goroutine at a
// time (the admitter, then its executing replica), handed off over the
// mailbox channel — so none of its fields need locking.
type packet struct {
	id    int64 // the global sequence number; executor = id mod k
	env   *ir.Env
	start time.Time
	span  *dataplane.Span // nil for unsampled packets
}

// xbarMsg is one mailbox transfer: a single packet (Submit) or a
// coalesced batch (SubmitBatch's per-worker chunk run, in sequence order).
type xbarMsg struct {
	p     *packet
	batch *pktBatch
}

// pktBatch is the recycled carrier behind coalesced dispatch sends.
type pktBatch struct {
	items []*packet
}

// egRec is one worker-private egress record (seq drawn from the engine's
// global atomic counter at egress time; merged and sorted at Drain).
type egRec struct {
	seq int64
	id  int64
}

// worker is one replica mapped onto one goroutine: a full private
// register file, a private VM, and a replay frontier. It executes the
// packets whose sequence number is congruent to its id mod k and replays
// everyone else's write deltas in sequence order.
type worker struct {
	id      int
	e       *Engine
	mailbox chan xbarMsg
	// regs is this replica's full private copy of all register state; vm
	// its private bytecode VM (nil under Config.Interpret).
	regs *banzai.RegFile
	vm   *bytecode.VM
	// applied is the replay frontier: every delta below it has been
	// applied to regs (private; appliedA mirrors it for gauges).
	applied int64
	// seen dedups the order log per (reg, clamped idx) per stage — the
	// same granularity the banzai reference and the sharded engine use.
	// dirtySeen/dirty accumulate the packet's written slots across its
	// whole stateful span (the delta to publish). obsID carries the
	// current packet's id to the bound observer.
	seen      map[[2]int]bool
	dirtySeen map[[2]int]bool
	dirty     [][2]int
	writeBuf  []regWrite
	obsID     int64
	obs       func(reg int, idx int64, write bool)
	// outs collects streaming-mode egress outputs worker-privately;
	// egRecs the (seq, id) egress records; lat the private latency
	// histogram — all merged engine-side after the join.
	outs   map[int64][]int64
	egRecs []egRec
	lat    *stats.Histogram
	// deltasN/replayedN/waitNs are worker-local run counters (summed at
	// result time); the atomics mirror the live values for ReplicaStats.
	deltasN      int64
	replayedN    int64
	waitNs       int64
	executedN    atomic.Int64
	appliedA     atomic.Int64
	replayWaitNs atomic.Int64
}

func newWorker(e *Engine, id int) *worker {
	w := &worker{
		id:        id,
		e:         e,
		mailbox:   make(chan xbarMsg, e.cfg.Window),
		regs:      banzai.NewRegFile(e.prog),
		seen:      make(map[[2]int]bool),
		dirtySeen: make(map[[2]int]bool),
		lat:       newHistogram(),
	}
	if e.bc != nil {
		w.vm = bytecode.NewVM(e.bc)
	}
	if e.cfg.RecordOutputs {
		w.outs = make(map[int64][]int64) // streaming mode; unused when Run preallocates e.outs
	}
	w.obs = w.observe
	return w
}

// run is the replica loop: drain the mailbox (opportunistically first),
// process each packet to completion, and exit on quit (drained stream) or
// abort (watchdog). Packets arrive in sequence order per worker — the
// admitter is serial and the channel is FIFO — which the replay frontier
// relies on.
func (w *worker) run() {
	defer w.e.wg.Done()
	for {
		select {
		case m := <-w.mailbox:
			if !w.handle(m) {
				return
			}
			continue
		default:
		}
		select {
		case m := <-w.mailbox:
			if !w.handle(m) {
				return
			}
		case <-w.e.quit:
			return
		case <-w.e.abort:
			return
		}
	}
}

// handle processes one mailbox transfer; false means the engine aborted
// mid-packet (a replay wait observed the abort) and the loop should exit.
func (w *worker) handle(m xbarMsg) bool {
	if m.batch != nil {
		for _, p := range m.batch.items {
			if p.span != nil {
				p.span.Advance(dataplane.StageCrossbar, w.id)
			}
			if !w.process(p) {
				return false // dying engine: remaining packets are abandoned
			}
		}
		w.e.putBatch(m.batch)
		return true
	}
	if m.p.span != nil {
		m.p.span.Advance(dataplane.StageCrossbar, w.id)
	}
	return w.process(m.p)
}

// process runs one packet through the full stage program on this replica:
// the stateless head executes immediately, the stateful span waits for
// (and applies) every earlier packet's delta, executes with the access
// observer bound, publishes its own delta, and the stateless tail runs
// after — outside the serialized region. Returns false when the engine
// aborted during the replay wait.
func (w *worker) process(p *packet) bool {
	e := w.e
	w.executedN.Add(1)
	first, last := e.firstStateful, e.lastStateful
	if last < 0 {
		// Stateless program: a pure round-robin spray — no replay, no
		// publication, replicas never diverge.
		for si := range e.prog.Stages {
			w.execStage(si, p.env)
		}
		w.egress(p)
		return true
	}
	for si := 0; si < first; si++ {
		w.execStage(si, p.env)
	}
	if p.span != nil {
		p.span.Advance(dataplane.StageExec, w.id)
	}
	if f := e.testBeforeReplay; f != nil {
		f(p)
	}
	if !w.replayTo(p.id) {
		return false // abort while waiting on an unpublished delta
	}
	if p.span != nil {
		p.span.Advance(dataplane.StageReplayWait, w.id)
	}
	// The serialized stateful span: every delta below p.id is applied, so
	// this replica's register state is exactly the single-pipeline state
	// at p.id's arrival. Stages execute with the observer attached on
	// stateful stages (order log + dirty-slot capture); interleaved
	// stateless stages run plain.
	w.obsID = p.id
	clear(w.dirtySeen)
	w.dirty = w.dirty[:0]
	for si := first; si <= last; si++ {
		if e.stateful[si] {
			clear(w.seen)
			w.execStageObserved(si, p.env)
		} else {
			w.execStage(si, p.env)
		}
	}
	// Publish the delta: the final value of every slot the packet wrote.
	// Packets that wrote nothing (false predicates) publish an empty
	// delta — the sequence chain must stay dense.
	w.writeBuf = w.writeBuf[:0]
	for _, dk := range w.dirty {
		w.writeBuf = append(w.writeBuf, regWrite{reg: dk[0], idx: dk[1], val: w.regs.Array(dk[0])[dk[1]]})
	}
	e.ring.publish(p.id, w.writeBuf)
	e.frontier.Store(p.id + 1)
	w.applied = p.id + 1 // own writes are already in the replica
	w.appliedA.Store(w.applied)
	w.deltasN++
	e.met.Deltas.Inc()
	for si := last + 1; si < len(e.prog.Stages); si++ {
		w.execStage(si, p.env)
	}
	w.egress(p)
	return true
}

// replayTo applies every published delta below seq to this replica,
// waiting (via the ring) for any not yet published. Returns false when
// the engine aborted during a wait.
func (w *worker) replayTo(seq int64) bool {
	applied := w.applied
	if applied >= seq {
		return true
	}
	var replayed int64
	for t := applied; t < seq; t++ {
		en := w.e.ring.waitFor(t, w.e.abort, &w.waitNs)
		if en == nil {
			w.replayWaitNs.Store(w.waitNs)
			return false
		}
		for _, wr := range en.writes {
			w.regs.Array(wr.reg)[wr.idx] = wr.val
		}
		replayed += int64(len(en.writes))
	}
	w.applied = seq
	w.appliedA.Store(seq)
	w.replayWaitNs.Store(w.waitNs)
	if replayed > 0 {
		w.replayedN += replayed
		w.e.met.ReplayedWrites.Add(replayed)
	}
	return true
}

// observe is the access observer bound once at construction: it runs for
// every effectively-executed stateful instruction (predicate already
// true) inside the serialized span. Reads and writes feed the shared C1
// order log (deduped per slot per stage, matching the reference);
// writes additionally mark the slot dirty for the packet's delta.
func (w *worker) observe(reg int, idx int64, write bool) {
	ci := banzai.ClampIndex(int(idx), w.e.prog.Regs[reg].Size)
	dk := [2]int{reg, ci}
	if write && !w.dirtySeen[dk] {
		w.dirtySeen[dk] = true
		w.dirty = append(w.dirty, dk)
	}
	if w.e.orders == nil || w.seen[dk] {
		return
	}
	w.seen[dk] = true
	w.e.orders[dk] = append(w.e.orders[dk], w.obsID)
}

// execStage runs stage si through the active executor.
func (w *worker) execStage(si int, env *ir.Env) {
	if w.vm != nil {
		if err := w.vm.ExecStage(&w.e.bc.Stages[si], env, w.regs); err != nil {
			panic("screp: " + err.Error()) // compiled code is never corrupt
		}
		return
	}
	ir.ExecStage(&w.e.prog.Stages[si], env, w.regs)
}

// execStageObserved runs stage si with the C1 access observer attached.
func (w *worker) execStageObserved(si int, env *ir.Env) {
	if w.vm != nil {
		if err := w.vm.ExecStageObserved(&w.e.bc.Stages[si], env, w.regs, w.obs); err != nil {
			panic("screp: " + err.Error())
		}
		return
	}
	ir.ExecStageObserved(&w.e.prog.Stages[si], env, w.regs, w.obs)
}

// egress completes the packet: record outputs and egress order into
// worker-private shards, notify the OnEgress hook, recycle the packet,
// release the window token, and close the engine's done gate on the last
// packet.
func (w *worker) egress(p *packet) {
	e := w.e
	if p.span != nil {
		p.span.Advance(dataplane.StageExec, w.id)
	}
	if e.outs != nil {
		e.outs[p.id] = append([]int64(nil), p.env.Fields...)
	} else if w.outs != nil {
		w.outs[p.id] = append([]int64(nil), p.env.Fields...)
	}
	if e.cfg.RecordEgressOrder {
		w.egRecs = append(w.egRecs, egRec{seq: e.egSeq.Add(1), id: p.id})
	}
	w.lat.Add(float64(time.Since(p.start).Microseconds()))
	e.met.Egressed.Inc()
	if f := e.cfg.OnEgress; f != nil {
		f(p.id)
	}
	if p.span != nil {
		p.span.Advance(dataplane.StageEgress, w.id)
		e.trc.Finish(p.span)
		p.span = nil // the tracer owns (and recycles) the span now
	}
	e.putPacket(p)
	e.releaseWindow()
	c := e.completed.Add(1)
	if t := e.total.Load(); t >= 0 && c == t {
		e.closeDone()
	}
}
