package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// healthz is the /healthz response body. Status is "ok" while the engine
// makes progress (or sits idle) and "stalled" after a watchdog abort — the
// same liveness signal that fails tests loudly, surfaced to operators.
type healthz struct {
	Status       string `json:"status"`
	Workers      int    `json:"workers"`
	Submitted    int64  `json:"submitted"`
	Completed    int64  `json:"completed"`
	InFlight     int64  `json:"in_flight"`
	Dropped      int64  `json:"ingress_dropped"`
	Acks         int64  `json:"acks"`
	DecodeErrors int64  `json:"decode_errors"`
}

// adminMux builds the admin-plane handler:
//
//	/metrics   Prometheus text from the shared registry
//	/healthz   watchdog-backed liveness (503 + Retry-After when stalled)
//	/shardmap  live D2 index→pipeline ownership as JSON
//	/stats     the full StatsSnapshot (mp5top's poll target)
//	/debug/pprof/*  the standard Go profiler surface
func (s *Server) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.cfg.Registry.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := healthz{
			Status:       "ok",
			Workers:      s.eng.Workers(),
			Submitted:    s.eng.Submitted(),
			Completed:    s.eng.Completed(),
			InFlight:     s.eng.InFlight(),
			Dropped:      s.Dropped(),
			Acks:         s.met.acks.Value(),
			DecodeErrors: s.met.decodeErr.Value(),
		}
		w.Header().Set("Content-Type", "application/json")
		if s.eng.Stalled() {
			h.Status = "stalled"
			// A stall never self-heals (the engine aborted); Retry-After
			// still gives pollers a civilized backoff instead of a tight
			// 503 loop while the operator collects state and restarts.
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/shardmap", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.eng.ShardMap())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.statsSnapshot())
	})
	// The net/http/pprof handlers normally self-register on
	// http.DefaultServeMux; mount them explicitly so the daemon's private
	// mux (and only the admin listener) serves them.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
