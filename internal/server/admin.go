package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"

	"mp5/internal/compiler"
)

// healthz is the /healthz response body. Status is "ok" while the engine
// makes progress (or sits idle) and "stalled" after a watchdog abort — the
// same liveness signal that fails tests loudly, surfaced to operators.
type healthz struct {
	Status       string `json:"status"`
	Workers      int    `json:"workers"`
	Submitted    int64  `json:"submitted"`
	Completed    int64  `json:"completed"`
	InFlight     int64  `json:"in_flight"`
	Dropped      int64  `json:"ingress_dropped"`
	Acks         int64  `json:"acks"`
	DecodeErrors int64  `json:"decode_errors"`
}

// adminMux builds the admin-plane handler:
//
//	/metrics   Prometheus text from the shared registry
//	/healthz   watchdog-backed liveness (503 + Retry-After when stalled)
//	/shardmap  live D2 index→pipeline ownership as JSON
//	           (?tenant=NAME selects a tenant's active version; default is
//	           the first tenant's)
//	/stats     the full StatsSnapshot (mp5top's poll target), including the
//	           per-tenant section
//	/programs  GET lists tenants and their active versions;
//	/programs/{tenant}  POST hot-swaps that tenant to the Domino program in
//	           the request body — zero downtime, C1-preserving (see
//	           internal/tenant)
//	/debug/pprof/*  the standard Go profiler surface
func (s *Server) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.cfg.Registry.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := healthz{
			Status:       "ok",
			Workers:      s.eng.Workers(),
			Submitted:    s.eng.Submitted(),
			Completed:    s.eng.Completed(),
			InFlight:     s.eng.InFlight(),
			Dropped:      s.Dropped(),
			Acks:         s.met.acks.Value(),
			DecodeErrors: s.met.decodeErr.Value(),
		}
		w.Header().Set("Content-Type", "application/json")
		if s.eng.Stalled() {
			h.Status = "stalled"
			// A stall never self-heals (the engine aborted); Retry-After
			// still gives pollers a civilized backoff instead of a tight
			// 503 loop while the operator collects state and restarts.
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/shardmap", func(w http.ResponseWriter, r *http.Request) {
		h := s.eng.Default()
		if name := r.URL.Query().Get("tenant"); name != "" {
			tn := s.reg.ByName(name)
			if tn == nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf("unknown tenant %q", name)})
				return
			}
			h = tn.Active().Handle
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.eng.ShardMapFor(h))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.statsSnapshot())
	})
	mux.HandleFunc("/programs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.tenantStats())
	})
	mux.HandleFunc("/programs/", s.swapHandler)
	// The net/http/pprof handlers normally self-register on
	// http.DefaultServeMux; mount them explicitly so the daemon's private
	// mux (and only the admin listener) serves them.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// swapResult is the POST /programs/{tenant} response body.
type swapResult struct {
	Tenant  string `json:"tenant"`
	Version int    `json:"version"`
	Program string `json:"program"`
}

// swapHandler serves POST /programs/{tenant}: compile the Domino source in
// the request body for MP5 and hot-swap the named tenant to it. The swap is
// zero-downtime — the new version is fully built and registered on the live
// engine before the tenant's active pointer flips; packets admitted before
// the flip finish on the old version, packets after start on the new one,
// and no traffic is drained (see internal/tenant).
func (s *Server) swapHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fail := func(code int, format string, args ...any) {
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
	}
	name := strings.TrimPrefix(r.URL.Path, "/programs/")
	if name == "" || strings.Contains(name, "/") {
		fail(http.StatusNotFound, "want /programs/{tenant}")
		return
	}
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "hot swap is POST /programs/{tenant} with the Domino source as the body")
		return
	}
	src, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		fail(http.StatusBadRequest, "reading program body: %v", err)
		return
	}
	prog, err := compiler.Compile(string(src), compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		fail(http.StatusUnprocessableEntity, "compile: %v", err)
		return
	}
	v, err := s.reg.Swap(name, prog)
	if err != nil {
		code := http.StatusConflict
		if strings.Contains(err.Error(), "unknown tenant") {
			code = http.StatusNotFound
		}
		fail(code, "%v", err)
		return
	}
	json.NewEncoder(w).Encode(swapResult{Tenant: name, Version: v.Seq, Program: prog.Name})
}
