package server

import (
	"encoding/json"
	"net/http"
)

// healthz is the /healthz response body. Status is "ok" while the engine
// makes progress (or sits idle) and "stalled" after a watchdog abort — the
// same liveness signal that fails tests loudly, surfaced to operators.
type healthz struct {
	Status    string `json:"status"`
	Workers   int    `json:"workers"`
	Submitted int64  `json:"submitted"`
	Completed int64  `json:"completed"`
	InFlight  int64  `json:"in_flight"`
	Dropped   int64  `json:"ingress_dropped"`
}

// adminMux builds the admin-plane handler: /metrics (Prometheus text from
// the shared registry), /healthz (watchdog-backed, 503 when stalled), and
// /shardmap (the live D2 index→pipeline ownership as JSON).
func (s *Server) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.cfg.Registry.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := healthz{
			Status:    "ok",
			Workers:   s.eng.Workers(),
			Submitted: s.eng.Submitted(),
			Completed: s.eng.Completed(),
			InFlight:  s.eng.InFlight(),
			Dropped:   s.Dropped(),
		}
		w.Header().Set("Content-Type", "application/json")
		if s.eng.Stalled() {
			h.Status = "stalled"
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/shardmap", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.eng.ShardMap())
	})
	return mux
}
