package server

import (
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mp5/internal/dataplane"
	"mp5/internal/screp"
	"mp5/internal/telemetry"
)

// TestAdminObservability exercises the introspection surface end to end
// against a live daemon: /metrics serves the Prometheus content type with
// HELP/TYPE lines for the new gauges, /stats decodes into a sane
// StatsSnapshot, unknown paths 404, and the pprof surface is mounted.
func TestAdminObservability(t *testing.T) {
	prog, trace := soakProgram(t)
	reg := telemetry.NewRegistry()
	trc := dataplane.NewTracer(dataplane.TracerConfig{SampleEvery: 4, Registry: reg})
	defer trc.Close()
	s, err := New(prog, Config{
		Engine:         dataplane.Config{Workers: 2, Window: 64},
		TCPAddr:        "127.0.0.1:0",
		AdminAddr:      "127.0.0.1:0",
		Registry:       reg,
		Tracer:         trc,
		SampleInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	c, err := Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(trace[:800], LoadOptions{Window: 32}); err != nil {
		t.Fatal(err)
	}
	// Let the background sampler take at least one tick so the pps gauges
	// and occupancy vecs exist with values.
	time.Sleep(30 * time.Millisecond)
	base := "http://" + s.AdminAddr()

	// /metrics: content type and the satellite gauges, with HELP/TYPE.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("/metrics content type %q", ct)
	}
	metrics := readAll(t, resp)
	resp.Body.Close()
	for _, want := range []string{
		"# HELP server_uptime_seconds ",
		"# TYPE server_uptime_seconds gauge",
		"# HELP dataplane_window_inuse ",
		"# TYPE dataplane_window_inuse gauge",
		"server_ingress_queue_depth",
		`dataplane_mailbox_depth{worker="0"}`,
		`dataplane_ticket_queue_depth{agg="pending"}`,
		"server_rx_pps",
		"trace_spans_sampled_total",
		"# TYPE trace_total_us summary",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /stats: a full snapshot that reconciles with the traffic just sent.
	var st StatsSnapshot
	getJSON(t, base+"/stats", &st)
	if st.Status != "ok" || st.Workers != 2 || st.Program == "" {
		t.Fatalf("/stats header fields: %+v", st)
	}
	if st.UptimeSec <= 0 || st.NowUnixNs == 0 {
		t.Fatalf("/stats clock fields: uptime %f now %d", st.UptimeSec, st.NowUnixNs)
	}
	if st.Submitted != 800 || st.Completed != 800 || st.InFlight != 0 {
		t.Fatalf("/stats engine counters after 800 acked: %+v", st)
	}
	if st.RxTCP != 800 || st.Acks != 800 {
		t.Fatalf("/stats server counters: rx_tcp %d acks %d", st.RxTCP, st.Acks)
	}
	if st.Ingress.Cap != 1024 || st.Window.Cap != 64 || st.Window.Depth != 0 {
		t.Fatalf("/stats queues: %+v %+v", st.Ingress, st.Window)
	}
	if len(st.WorkerStats) != 2 {
		t.Fatalf("/stats worker detail: %d entries", len(st.WorkerStats))
	}
	if st.TraceSampled != 800/4 {
		t.Fatalf("/stats trace_sampled %d (want %d)", st.TraceSampled, 800/4)
	}
	if len(st.Stages) == 0 || st.Stages[len(st.Stages)-1].Stage != "total" {
		t.Fatalf("/stats stages: %+v", st.Stages)
	}
	// The sharded daemon has no ReplicationStats hook: the snapshot omits
	// the section and no replication gauges exist on the registry.
	if len(st.Replication) != 0 {
		t.Fatalf("/stats replication section on a sharded daemon: %+v", st.Replication)
	}
	if strings.Contains(metrics, "screp_replication_lag") {
		t.Fatal("/metrics exposes replication gauges on a sharded daemon")
	}

	// Unknown paths 404 (the mux has no catch-all handler).
	resp, err = http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: %d", resp.StatusCode)
	}

	// pprof: the index and a goroutine dump answer 200 on the admin mux.
	idx := httpGet(t, base+"/debug/pprof/")
	if !strings.Contains(idx, "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
	dump := httpGet(t, base+"/debug/pprof/goroutine?debug=1")
	if !strings.Contains(dump, "goroutine profile") {
		t.Fatal("goroutine profile empty")
	}
}

// TestHealthzReportsAcksAndErrors pins the extended health body: acks and
// decode_errors ride along with the liveness fields.
func TestHealthzReportsAcksAndErrors(t *testing.T) {
	prog, trace := soakProgram(t)
	s, err := New(prog, Config{
		Engine:    dataplane.Config{Workers: 2},
		TCPAddr:   "127.0.0.1:0",
		AdminAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	c, err := Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(trace[:300], LoadOptions{Window: 16}); err != nil {
		t.Fatal(err)
	}
	var h healthz
	getJSON(t, "http://"+s.AdminAddr()+"/healthz", &h)
	if h.Acks != 300 {
		t.Fatalf("healthz acks %d after 300 acked packets", h.Acks)
	}
	if h.DecodeErrors != 0 {
		t.Fatalf("healthz decode_errors %d on clean traffic", h.DecodeErrors)
	}
}

// TestTracedSoakTCP is the tracing acceptance soak: a traced daemon serves
// the full loopback TCP workload, and the sampled spans must reconcile —
// sink count against the sampling accounting, per-stage sums against each
// span's own total, full lifecycle stages present, and span totals bounded
// by the client-measured RTT distribution (a span is the server-side slice
// of a round trip, so it can never exceed the wire-measured maximum).
func TestTracedSoakTCP(t *testing.T) {
	prog, trace := soakProgram(t)
	var mu sync.Mutex
	var spans []*dataplane.Span
	reg := telemetry.NewRegistry()
	trc := dataplane.NewTracer(dataplane.TracerConfig{
		SampleEvery: 8,
		Registry:    reg,
		Sink: func(sp *dataplane.Span) {
			// Spans are recycled after the sink returns: keep a deep copy.
			cp := *sp
			cp.Stages = append([]dataplane.StageRec(nil), sp.Stages...)
			mu.Lock()
			spans = append(spans, &cp)
			mu.Unlock()
		},
	})
	s, err := New(prog, Config{
		Engine:   dataplane.Config{Workers: 4, Window: 128},
		TCPAddr:  "127.0.0.1:0",
		Registry: reg,
		Tracer:   trc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(trace, LoadOptions{Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acked != int64(len(trace)) {
		t.Fatalf("acked %d of %d", rep.Acked, len(trace))
	}
	res := s.Shutdown()
	if res.Stalled {
		t.Fatal("traced soak stalled")
	}
	trc.Close()

	want := int64(len(trace) / 8)
	if trc.Sampled() != want {
		t.Fatalf("sampled %d of %d at 1/8 (want %d)", trc.Sampled(), len(trace), want)
	}
	if int64(len(spans))+trc.Dropped() != trc.Sampled() {
		t.Fatalf("sink %d + dropped %d != sampled %d", len(spans), trc.Dropped(), trc.Sampled())
	}
	if len(spans) == 0 {
		t.Fatal("no spans reached the sink")
	}

	const slackNs = 1_000_000
	totals := make([]int64, 0, len(spans))
	for _, sp := range spans {
		if sp.Proto != "tcp" {
			t.Fatalf("pkt %d: proto %q", sp.ID, sp.Proto)
		}
		_, sum := sp.StageTotals()
		if d := sp.TotalNs - sum; d < 0 || d > slackNs {
			t.Fatalf("pkt %d: stage sum %d vs total %d", sp.ID, sum, sp.TotalNs)
		}
		stages := map[string]bool{}
		for _, r := range sp.Stages {
			stages[r.Stage] = true
		}
		for _, must := range []string{"ingress_wait", "window_wait", "admit", "crossbar", "exec", "egress"} {
			if !stages[must] {
				t.Fatalf("pkt %d missing stage %q: %+v", sp.ID, must, sp.Stages)
			}
		}
		totals = append(totals, sp.TotalNs)
	}

	// RTT reconciliation: the median server-side span must sit inside the
	// client's RTT distribution (each span is a strict slice of one round
	// trip). The RTT histogram is in µs; allow a bucket of slack.
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	medianNs := totals[len(totals)/2]
	maxRTTNs := int64(rep.Latency.Quantile(1)*1e3) + slackNs
	if medianNs > maxRTTNs {
		t.Fatalf("median span total %dns exceeds max client RTT %dns", medianNs, maxRTTNs)
	}
}

// TestReplicationStatsSurface wires a real state-compute-replication engine
// into the daemon's ReplicationStats hook and checks both introspection
// surfaces: /stats grows a per-replica section, and the sampler registers
// (and feeds) the replication-lag gauges — neither of which exists on the
// sharded daemon (asserted in TestAdminObservability above).
func TestReplicationStatsSurface(t *testing.T) {
	prog, trace := soakProgram(t)

	// Drive a replicated engine to a converged drain so the hook serves
	// non-trivial numbers.
	rep := screp.New(prog, screp.Config{Workers: 2})
	if res := rep.Run(trace[:600]); res.Stalled || res.Completed != 600 {
		t.Fatalf("screp warmup run: %+v", res)
	}

	reg := telemetry.NewRegistry()
	s, err := New(prog, Config{
		Engine:           dataplane.Config{Workers: 2, Window: 64},
		TCPAddr:          "127.0.0.1:0",
		AdminAddr:        "127.0.0.1:0",
		Registry:         reg,
		SampleInterval:   10 * time.Millisecond,
		ReplicationStats: rep.ReplicaStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	time.Sleep(30 * time.Millisecond) // at least one sampler tick
	base := "http://" + s.AdminAddr()

	var st StatsSnapshot
	getJSON(t, base+"/stats", &st)
	if len(st.Replication) != 2 {
		t.Fatalf("/stats replication section: %+v", st.Replication)
	}
	var executed int64
	for i, rs := range st.Replication {
		if rs.ID != i {
			t.Fatalf("replica %d reports id %d", i, rs.ID)
		}
		if rs.Applied != 600 {
			t.Fatalf("replica %d applied %d of 600 after converge", i, rs.Applied)
		}
		if rs.Lag != 0 {
			t.Fatalf("replica %d lag %d at rest", i, rs.Lag)
		}
		executed += rs.Executed
	}
	if executed != 600 {
		t.Fatalf("executed counts sum to %d, want 600", executed)
	}

	metrics := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"# TYPE screp_replication_lag gauge",
		`screp_replication_lag{replica="0"}`,
		`screp_replay_wait_ns{replica="1"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
