package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mp5/internal/core"
	"mp5/internal/stats"
)

// RTT histogram shape: microseconds in [0, ~1.05 s) at 32 µs resolution.
const (
	rttLo      = 0
	rttHi      = 1 << 20
	rttBuckets = 1 << 15
)

// Client drives a daemon over the wire — the load-generator side of the
// codec. One Client owns one connection; Run may be called once.
type Client struct {
	conn net.Conn
	udp  bool
}

// Dial connects to a daemon. network is "tcp" (lossless, acked) or "udp"
// (open-loop, ackless).
func Dial(network, addr string) (*Client, error) {
	switch network {
	case "tcp", "udp":
	default:
		return nil, fmt.Errorf("server: Dial network %q (want tcp or udp)", network)
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, udp: network == "udp"}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// LoadOptions shapes a Run.
type LoadOptions struct {
	// Tenant is the wire id stamped on every frame (0 = the daemon's
	// first/default tenant).
	Tenant uint16
	// Window caps outstanding unacked packets on TCP — the closed-loop
	// knob (default 256). Ignored on UDP.
	Window int
	// RatePPS paces sends to a target rate — the open-loop knob; 0 sends
	// as fast as the transport admits.
	RatePPS float64
	// AckTimeout bounds the wait for each next ack after sending finished
	// (default 10s); expiry reports the missing acks as loss.
	AckTimeout time.Duration
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Window <= 0 {
		o.Window = 256
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 10 * time.Second
	}
	return o
}

// LoadReport summarizes one Run.
type LoadReport struct {
	Sent  int64
	Acked int64 // TCP only; UDP reports 0
	// Elapsed spans first send to last ack (TCP) or last send (UDP).
	Elapsed time.Duration
	// PktsPerSec is the achieved end-to-end rate: acked/elapsed on TCP,
	// sent/elapsed on UDP.
	PktsPerSec float64
	// Latency is the send→egress-ack round-trip distribution in
	// microseconds (TCP only; empty on UDP).
	Latency *stats.Histogram
}

// Run pushes the arrival trace through the connection and reports the
// achieved rate. On TCP it runs the closed loop: at most Window packets
// outstanding, each ack retiring one and recording its RTT; it returns an
// error if the daemon acks fewer packets than were sent. On UDP it is a
// pure open-loop blaster.
func (c *Client) Run(arrivals []core.Arrival, opt LoadOptions) (*LoadReport, error) {
	opt = opt.withDefaults()
	if c.udp {
		return c.runUDP(arrivals, opt)
	}
	return c.runTCP(arrivals, opt)
}

func (c *Client) runUDP(arrivals []core.Arrival, opt LoadOptions) (*LoadReport, error) {
	rep := &LoadReport{Latency: stats.NewHistogram(rttLo, rttHi, rttBuckets)}
	buf := make([]byte, 0, frameHeader+maxPayload)
	start := time.Now()
	for i := range arrivals {
		c.pace(start, int64(i), opt.RatePPS)
		buf = appendFrame(buf[:0], uint32(i), opt.Tenant, &arrivals[i])
		if _, err := c.conn.Write(buf); err != nil {
			rep.finish(start)
			return rep, err
		}
		rep.Sent++
	}
	rep.finish(start)
	return rep, nil
}

func (c *Client) runTCP(arrivals []core.Arrival, opt LoadOptions) (*LoadReport, error) {
	rep := &LoadReport{Latency: stats.NewHistogram(rttLo, rttHi, rttBuckets)}
	tokens := make(chan struct{}, opt.Window)

	var (
		mu    sync.Mutex
		times = make(map[uint32]time.Time, opt.Window)
		acked atomic.Int64
	)
	total := int64(len(arrivals))
	readerDone := make(chan struct{})
	var readerErr error
	go func() {
		defer close(readerDone)
		var a [ackBytes]byte
		for acked.Load() < total {
			c.conn.SetReadDeadline(time.Now().Add(opt.AckTimeout))
			if _, err := io.ReadFull(c.conn, a[:]); err != nil {
				readerErr = err
				return
			}
			seq := binary.BigEndian.Uint32(a[:])
			mu.Lock()
			t, ok := times[seq]
			if ok {
				delete(times, seq)
			}
			mu.Unlock()
			if ok {
				rep.Latency.Add(float64(time.Since(t).Microseconds()))
			}
			acked.Add(1)
			<-tokens
		}
	}()

	buf := make([]byte, 0, frameHeader+maxPayload)
	start := time.Now()
	var sendErr error
send:
	for i := range arrivals {
		select {
		case tokens <- struct{}{}:
		case <-readerDone:
			// The ack stream died; sending more would only fill kernel
			// buffers against a wedged daemon.
			break send
		}
		c.pace(start, int64(i), opt.RatePPS)
		seq := uint32(i)
		mu.Lock()
		times[seq] = time.Now()
		mu.Unlock()
		buf = appendFrame(buf[:0], seq, opt.Tenant, &arrivals[i])
		if _, err := c.conn.Write(buf); err != nil {
			sendErr = err
			break send
		}
		rep.Sent++
	}
	if rep.Sent < total {
		// Short send: stop the reader's wait-for-everything loop early.
		c.conn.SetReadDeadline(time.Now())
	}
	<-readerDone
	rep.Acked = acked.Load()
	rep.finish(start)
	if sendErr != nil {
		return rep, sendErr
	}
	if rep.Acked < rep.Sent {
		if readerErr != nil {
			return rep, fmt.Errorf("server: %d of %d packets acked: %w", rep.Acked, rep.Sent, readerErr)
		}
		return rep, fmt.Errorf("server: %d of %d packets acked", rep.Acked, rep.Sent)
	}
	return rep, nil
}

// pace sleeps until packet i's open-loop departure time (no-op at rate 0).
func (c *Client) pace(start time.Time, i int64, rate float64) {
	if rate <= 0 {
		return
	}
	target := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
	if d := time.Until(target); d > 0 {
		time.Sleep(d)
	}
}

func (r *LoadReport) finish(start time.Time) {
	r.Elapsed = time.Since(start)
	n := r.Acked
	if n == 0 {
		n = r.Sent
	}
	if r.Elapsed > 0 {
		r.PktsPerSec = float64(n) / r.Elapsed.Seconds()
	}
}
