package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mp5/internal/core"
)

// Wire format. Every packet travels as one length-prefixed frame — the
// prefix delimits frames on the TCP byte stream and doubles as an integrity
// check on UDP, where one datagram carries exactly one frame:
//
//	uint32  payload length (big-endian, excludes the prefix itself)
//	uint32  seq      client-chosen sequence number, echoed in the ack
//	uint16  tenant   tenant wire id (0 = the first/default tenant)
//	uint16  port     input port (bookkeeping only)
//	uint16  size     wire size in bytes (bookkeeping only)
//	uint16  nfields  header field count — must match the daemon's program
//	int64×nfields    header field values (big-endian two's complement)
//
// Acks (TCP lossless mode only) are raw big-endian uint32 sequence numbers
// written back on the same connection when the packet egresses the engine.
const (
	frameHeader  = 4
	payloadFixed = 4 + 2 + 2 + 2 + 2
	// maxFields bounds a frame's field count so a corrupt or hostile
	// length prefix cannot make the server allocate unboundedly.
	maxFields  = 1 << 12
	maxPayload = payloadFixed + 8*maxFields
	ackBytes   = 4
)

var (
	errShortFrame = errors.New("server: frame shorter than the fixed payload header")
	errBadLength  = errors.New("server: frame length disagrees with its field count")
)

// appendFrame encodes one arrival as a length-prefixed frame onto dst.
func appendFrame(dst []byte, seq uint32, tenant uint16, a *core.Arrival) []byte {
	n := len(a.Fields)
	dst = binary.BigEndian.AppendUint32(dst, uint32(payloadFixed+8*n))
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint16(dst, tenant)
	dst = binary.BigEndian.AppendUint16(dst, uint16(a.Port))
	dst = binary.BigEndian.AppendUint16(dst, uint16(a.Size))
	dst = binary.BigEndian.AppendUint16(dst, uint16(n))
	for _, f := range a.Fields {
		dst = binary.BigEndian.AppendUint64(dst, uint64(f))
	}
	return dst
}

// decodePayload decodes the frame payload (everything after the length
// prefix) into an arrival. The arrival's Cycle is left zero — arrival order
// is assigned by the admitter, not carried on the wire.
func decodePayload(p []byte) (seq uint32, tenant uint16, a core.Arrival, err error) {
	if len(p) < payloadFixed {
		return 0, 0, a, errShortFrame
	}
	seq = binary.BigEndian.Uint32(p)
	tenant = binary.BigEndian.Uint16(p[4:])
	a.Port = int(binary.BigEndian.Uint16(p[6:]))
	a.Size = int(binary.BigEndian.Uint16(p[8:]))
	n := int(binary.BigEndian.Uint16(p[10:]))
	if n > maxFields {
		return 0, 0, a, fmt.Errorf("server: frame claims %d fields (max %d)", n, maxFields)
	}
	if len(p) != payloadFixed+8*n {
		return 0, 0, a, errBadLength
	}
	a.Fields = make([]int64, n)
	for i := range a.Fields {
		a.Fields[i] = int64(binary.BigEndian.Uint64(p[payloadFixed+8*i:]))
	}
	return seq, tenant, a, nil
}

// readFrame reads one length-prefixed frame from a TCP byte stream. An
// io.EOF on the length prefix is a clean half-close; any other error (or a
// hostile length) poisons the stream — the caller must drop the connection
// because frame boundaries are lost.
func readFrame(r io.Reader) (seq uint32, tenant uint16, a core.Arrival, err error) {
	var hdr [frameHeader]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, a, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < payloadFixed || n > maxPayload {
		return 0, 0, a, fmt.Errorf("server: frame length %d out of range", n)
	}
	p := make([]byte, n)
	if _, err = io.ReadFull(r, p); err != nil {
		return 0, 0, a, err
	}
	return decodePayload(p)
}

// decodeDatagram decodes one UDP datagram, which must hold exactly one
// frame — a truncated or coalesced datagram is a decode error, not a
// resynchronization problem.
func decodeDatagram(b []byte) (seq uint32, tenant uint16, a core.Arrival, err error) {
	if len(b) < frameHeader {
		return 0, 0, a, errShortFrame
	}
	if int(binary.BigEndian.Uint32(b)) != len(b)-frameHeader {
		return 0, 0, a, errBadLength
	}
	return decodePayload(b[frameHeader:])
}
