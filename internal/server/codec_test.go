package server

import (
	"bytes"
	"reflect"
	"testing"

	"mp5/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	arrs := []core.Arrival{
		{Port: 3, Size: 64, Fields: []int64{1, -2, 1 << 40, 0}},
		{Port: 0, Size: 1400, Fields: nil},
		{Port: 65535, Size: 0, Fields: []int64{-1}},
	}
	var wire []byte
	for i := range arrs {
		wire = appendFrame(wire, uint32(100+i), uint16(i%3), &arrs[i])
	}
	r := bytes.NewReader(wire)
	for i := range arrs {
		seq, tenant, got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != uint32(100+i) {
			t.Fatalf("frame %d: seq %d", i, seq)
		}
		if tenant != uint16(i%3) {
			t.Fatalf("frame %d: tenant %d", i, tenant)
		}
		if got.Port != arrs[i].Port || got.Size != arrs[i].Size {
			t.Fatalf("frame %d: port/size %d/%d", i, got.Port, got.Size)
		}
		if len(got.Fields) != len(arrs[i].Fields) {
			t.Fatalf("frame %d: %d fields", i, len(got.Fields))
		}
		if len(got.Fields) > 0 && !reflect.DeepEqual(got.Fields, arrs[i].Fields) {
			t.Fatalf("frame %d: fields %v != %v", i, got.Fields, arrs[i].Fields)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes", r.Len())
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	a := core.Arrival{Port: 2, Size: 200, Fields: []int64{7, 8, 9}}
	dg := appendFrame(nil, 55, 7, &a)
	seq, tenant, got, err := decodeDatagram(dg)
	if err != nil || seq != 55 || tenant != 7 || !reflect.DeepEqual(got.Fields, a.Fields) {
		t.Fatalf("seq=%d tenant=%d got=%+v err=%v", seq, tenant, got, err)
	}
}

// TestDatagramBufferReuse is the UDP read-buffer aliasing regression test:
// udpLoop reuses one buffer across ReadFrom calls, so a decoded arrival
// must own its field storage outright — overwriting the buffer with the
// next datagram (as the kernel effectively does) must not corrupt arrivals
// already decoded, even while they sit in the ingress queue.
func TestDatagramBufferReuse(t *testing.T) {
	buf := make([]byte, frameHeader+maxPayload)
	decodeInto := func(a *core.Arrival) (core.Arrival, uint32) {
		wire := appendFrame(nil, 9, 0, a)
		n := copy(buf, wire)
		seq, _, got, err := decodeDatagram(buf[:n])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return got, seq
	}
	first := core.Arrival{Port: 1, Size: 100, Fields: []int64{11, 22, 33}}
	second := core.Arrival{Port: 2, Size: 200, Fields: []int64{-7, -8, -9}}
	gotFirst, _ := decodeInto(&first)
	gotSecond, _ := decodeInto(&second) // clobbers buf where first decoded from
	for i := range buf {
		buf[i] = 0xFF // and then the next ReadFrom scribbles over everything
	}
	if !reflect.DeepEqual(gotFirst.Fields, first.Fields) {
		t.Fatalf("earlier arrival corrupted by buffer reuse: %v != %v", gotFirst.Fields, first.Fields)
	}
	if !reflect.DeepEqual(gotSecond.Fields, second.Fields) {
		t.Fatalf("arrival corrupted by buffer scribble: %v != %v", gotSecond.Fields, second.Fields)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	a := core.Arrival{Fields: []int64{1, 2}}
	dg := appendFrame(nil, 1, 0, &a)
	cases := map[string][]byte{
		"truncated datagram":  dg[:len(dg)-3],
		"short header":        dg[:2],
		"length mismatch":     append(append([]byte(nil), dg...), 0xff),
		"field count too big": {0, 0, 0, 12, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xff, 0xff},
	}
	for name, b := range cases {
		if _, _, _, err := decodeDatagram(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Hostile stream length: must refuse before allocating.
	bad := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, _, err := readFrame(bytes.NewReader(bad)); err == nil {
		t.Error("oversized frame length accepted")
	}
}
