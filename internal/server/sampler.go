package server

import (
	"strconv"
	"time"

	"mp5/internal/dataplane"
	"mp5/internal/screp"
	"mp5/internal/telemetry"
)

// The live-introspection half of the admin plane: a handful of callback
// gauges that are always current (uptime, window in use, ingress depth —
// evaluated at scrape time, so /metrics is non-trivial even on an idle
// daemon), plus a background sampler that periodically snapshots the
// quantities worth history but too hot to compute per packet: per-worker
// mailbox occupancy and park counts, the aggregate D4 ticket backlog, and
// pps rates derived from counter deltas. The sampler also rotates the
// tracer's stage-histogram windows so /metrics quantiles track the recent
// past rather than the whole run.

// rotateTicks is how many sampler ticks between trace-histogram window
// rotations (40 × the 250ms default interval = 10s windows).
const rotateTicks = 40

// registerGauges wires the scrape-time gauges (r is never nil here:
// Config.withDefaults creates a private registry).
func (s *Server) registerGauges(r *telemetry.Registry) {
	r.NewGaugeFunc("server_uptime_seconds", "seconds since the daemon started serving", func() float64 {
		t0 := s.startNs.Load()
		if t0 == 0 {
			return 0
		}
		return float64(time.Now().UnixNano()-t0) / 1e9
	})
	r.NewGaugeFunc("dataplane_window_inuse", "admission-window tokens held (in-flight packets)", func() float64 {
		return float64(s.eng.WindowInUse())
	})
	r.NewGaugeFunc("server_ingress_queue_depth", "packets queued between the decoders and the serial admitter", func() float64 {
		return float64(len(s.ingress))
	})
	s.mailboxG = r.NewGaugeVec("dataplane_mailbox_depth", "crossbar mailbox occupancy per worker", "worker")
	s.parkedG = r.NewGaugeVec("dataplane_parked_packets", "packets parked waiting for head tickets, per worker", "worker")
	s.ticketG = r.NewGaugeVec("dataplane_ticket_queue_depth", "issued-but-unretired D4 tickets (pending = sum over slots, max = deepest slot)", "agg")
	s.tenantSubG = r.NewGaugeVec("tenant_submitted_packets", "packets admitted per tenant, summed over its versions", "tenant")
	s.tenantDoneG = r.NewGaugeVec("tenant_completed_packets", "packets egressed per tenant, summed over its versions", "tenant")
	s.tenantShedG = r.NewGaugeVec("tenant_quota_shed_packets", "packets shed per tenant because its admission quota was exhausted", "tenant")
	s.tenantQG = r.NewGaugeVec("tenant_quota_inuse", "admission-quota tokens held per tenant (0 for unlimited tenants)", "tenant")
	s.rxPPS = r.NewGauge("server_rx_pps", "decoded frames per second over the last sampler interval")
	s.ackPPS = r.NewGauge("server_ack_pps", "egress acks per second over the last sampler interval")
	s.egPPS = r.NewGauge("dataplane_egress_pps", "packets egressed per second over the last sampler interval")
	if s.cfg.ReplicationStats != nil {
		// Replication gauges exist only when a state-compute-replication
		// engine is wired in; the sharded daemon registers nothing.
		s.replLagG = r.NewGaugeVec("screp_replication_lag", "published-but-unapplied write deltas per replica (pending replay depth)", "replica")
		s.replWaitG = r.NewGaugeVec("screp_replay_wait_ns", "cumulative wall time per replica spent waiting for unpublished deltas", "replica")
	}
}

// samplerLoop is the background sampler goroutine (Start → Shutdown).
func (s *Server) samplerLoop() {
	defer s.samplerWg.Done()
	tick := time.NewTicker(s.cfg.SampleInterval)
	defer tick.Stop()
	var (
		lastT  = time.Now()
		lastRx = s.met.rx.Total()
		lastAk = s.met.acks.Value()
		lastEg = s.eng.Completed()
		ticks  = 0
	)
	for {
		select {
		case <-s.samplerStop:
			return
		case now := <-tick.C:
			dt := now.Sub(lastT).Seconds()
			if dt <= 0 {
				continue
			}
			rx, ak, eg := s.met.rx.Total(), s.met.acks.Value(), s.eng.Completed()
			s.rxPPS.Set(float64(rx-lastRx) / dt)
			s.ackPPS.Set(float64(ak-lastAk) / dt)
			s.egPPS.Set(float64(eg-lastEg) / dt)
			lastT, lastRx, lastAk, lastEg = now, rx, ak, eg

			for _, w := range s.eng.WorkerStats() {
				lbl := strconv.Itoa(w.ID)
				s.mailboxG.Set(float64(w.Mailbox), lbl)
				s.parkedG.Set(float64(w.Parked), lbl)
			}
			pending, maxDepth := s.eng.TicketDepths()
			s.ticketG.Set(float64(pending), "pending")
			s.ticketG.Set(float64(maxDepth), "max")

			if f := s.cfg.ReplicationStats; f != nil {
				for _, rs := range f() {
					lbl := strconv.Itoa(rs.ID)
					s.replLagG.Set(float64(rs.Lag), lbl)
					s.replWaitG.Set(float64(rs.ReplayWaitNs), lbl)
				}
			}

			for _, ts := range s.tenantStats() {
				s.tenantSubG.Set(float64(ts.Submitted), ts.Name)
				s.tenantDoneG.Set(float64(ts.Completed), ts.Name)
				s.tenantShedG.Set(float64(ts.QuotaShed), ts.Name)
				s.tenantQG.Set(float64(ts.QuotaInUse), ts.Name)
			}

			if ticks++; ticks%rotateTicks == 0 {
				s.trc.Rotate()
			}
		}
	}
}

// QueueStat is one bounded queue's live occupancy.
type QueueStat struct {
	Depth int `json:"depth"`
	Cap   int `json:"cap"`
}

// TenantStat is one tenant's live view in /stats and /programs: identity,
// quota occupancy, counters summed across versions, and the per-version
// handle stats (superseded versions stay listed while they drain and after
// — their final counters are part of the run's story).
type TenantStat struct {
	Name          string `json:"name"`
	ID            uint16 `json:"id"`
	ActiveVersion int    `json:"active_version"`
	ActiveProgram string `json:"active_program"`

	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	QuotaShed  int64 `json:"quota_shed"`
	QuotaCap   int64 `json:"quota_cap"` // 0 = unlimited
	QuotaInUse int64 `json:"quota_inuse"`

	Versions []dataplane.HandleStats `json:"versions"`
}

// tenantStats assembles the per-tenant section — every source is an atomic
// or a copy-on-write snapshot, safe at any point in the daemon's life.
func (s *Server) tenantStats() []TenantStat {
	tns := s.reg.Tenants()
	out := make([]TenantStat, 0, len(tns))
	for _, tn := range tns {
		av := tn.Active()
		ts := TenantStat{
			Name:          tn.Name(),
			ID:            tn.ID(),
			ActiveVersion: av.Seq,
			ActiveProgram: av.Prog.Name,
		}
		if q := tn.Quota(); q != nil {
			ts.QuotaCap = q.Cap()
			ts.QuotaInUse = q.InUse()
		}
		for _, v := range tn.Versions() {
			hs := v.Handle.Stats()
			ts.Submitted += hs.Submitted
			ts.Completed += hs.Completed
			ts.QuotaShed += hs.Shed
			ts.Versions = append(ts.Versions, hs)
		}
		out = append(out, ts)
	}
	return out
}

// StatsSnapshot is the /stats response: one JSON object holding every
// live-introspection quantity the daemon knows — counters, rates, queue
// depths, per-worker occupancy, and (when tracing is on) the sampled
// stage-latency quantiles. mp5top polls and renders it.
type StatsSnapshot struct {
	NowUnixNs int64   `json:"now_unix_ns"`
	UptimeSec float64 `json:"uptime_sec"`
	Status    string  `json:"status"`
	Program   string  `json:"program"`
	Workers   int     `json:"workers"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	InFlight  int64 `json:"in_flight"`

	RxTCP          int64 `json:"rx_tcp"`
	RxUDP          int64 `json:"rx_udp"`
	Acks           int64 `json:"acks"`
	IngressDropped int64 `json:"ingress_dropped"`
	DecodeErrors   int64 `json:"decode_errors"`
	SubmitAborts   int64 `json:"submit_aborts"`
	Conns          int64 `json:"conns"`

	Steers     int64 `json:"steers"`
	Parks      int64 `json:"parks"`
	Wasted     int64 `json:"wasted_visits"`
	ShardMoves int64 `json:"shard_moves"`

	RxPPS     float64 `json:"rx_pps"`
	AckPPS    float64 `json:"ack_pps"`
	EgressPPS float64 `json:"egress_pps"`

	Ingress        QueueStat `json:"ingress"`
	Window         QueueStat `json:"window"`
	TicketsPending int64     `json:"tickets_pending"`
	TicketsMax     int64     `json:"tickets_max"`

	WorkerStats []dataplane.WorkerStat `json:"worker_stats"`
	Stages      []dataplane.StageStat  `json:"stages"`
	Tenants     []TenantStat           `json:"tenants"`
	// Replication is the per-replica view of a state-compute-replication
	// engine (replay frontier, pending replay depth, cumulative replay
	// wait); absent entirely on the sharded daemon (Config.ReplicationStats
	// nil — the JSON carries no key, old mp5top decodes unchanged).
	Replication []screp.ReplicaStat `json:"replication,omitempty"`

	TraceSampled int64 `json:"trace_sampled"`
	TraceDropped int64 `json:"trace_dropped"`
}

// statsSnapshot assembles the /stats view. Every source is an atomic, a
// channel length, or a briefly-locked accessor — safe at any point in the
// daemon's life.
func (s *Server) statsSnapshot() StatsSnapshot {
	eng := s.eng
	snap := StatsSnapshot{
		NowUnixNs: time.Now().UnixNano(),
		Status:    "ok",
		Program:   s.prog.Name,
		Workers:   eng.Workers(),

		Submitted: eng.Submitted(),
		Completed: eng.Completed(),
		InFlight:  eng.InFlight(),

		RxTCP:          s.met.rx.Value("tcp"),
		RxUDP:          s.met.rx.Value("udp"),
		Acks:           s.met.acks.Value(),
		IngressDropped: s.met.dropped.Value(),
		DecodeErrors:   s.met.decodeErr.Value(),
		SubmitAborts:   s.met.submitFail.Value(),
		Conns:          s.met.conns.Value(),

		Steers:     s.engMet.Steers.Value(),
		Parks:      s.engMet.Parks.Value(),
		Wasted:     s.engMet.Wasted.Value(),
		ShardMoves: s.engMet.ShardMoves.Value(),

		RxPPS:     s.rxPPS.Value(),
		AckPPS:    s.ackPPS.Value(),
		EgressPPS: s.egPPS.Value(),

		Ingress: QueueStat{Depth: len(s.ingress), Cap: cap(s.ingress)},
		Window:  QueueStat{Depth: eng.WindowInUse(), Cap: eng.WindowCap()},

		WorkerStats: eng.WorkerStats(),
		Stages:      s.trc.StageStats(),
		Tenants:     s.tenantStats(),

		TraceSampled: s.trc.Sampled(),
		TraceDropped: s.trc.Dropped(),
	}
	if f := s.cfg.ReplicationStats; f != nil {
		snap.Replication = f()
	}
	if t0 := s.startNs.Load(); t0 != 0 {
		snap.UptimeSec = float64(snap.NowUnixNs-t0) / 1e9
	}
	if eng.Stalled() {
		snap.Status = "stalled"
	}
	snap.TicketsPending, snap.TicketsMax = eng.TicketDepths()
	return snap
}
