// Package server wraps the concurrent dataplane (internal/dataplane) in an
// always-on network daemon — the runtime half of the paper's system: a
// compiled MP5 program plus an engine that admits an unbounded packet
// stream, with the D2 remap heuristic running against live access counters
// while operators observe it.
//
// Topology:
//
//	UDP datagrams ─┐                                  ┌─ worker 0
//	               ├─ decode ─→ ingress queue ─→ admit ├─ worker 1   (dataplane)
//	TCP streams  ──┘  (per-conn goroutines)  (serial)  └─ worker k-1
//
// The bounded ingress queue is the explicit backpressure point in front of
// the engine's admission window: UDP producers either drop at the queue
// (PolicyDrop — overload sheds load, never stalls) or block the reader
// (PolicyBlock); TCP producers always block, which propagates backpressure
// to the client through TCP flow control — the lossless mode. A single
// admit goroutine consumes the queue, preserving the serial-admitter
// contract that defines C1 order, and the engine's window semaphore is the
// live admission-control gate in front of D4 ticketing.
//
// An HTTP admin plane serves /metrics (Prometheus text), /healthz
// (watchdog-backed), and /shardmap (live D2 index→pipeline ownership).
// Shutdown drains gracefully: stop ingesting, let every in-flight packet
// egress, deliver trailing acks, then join.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/equiv"
	"mp5/internal/ir"
	"mp5/internal/screp"
	"mp5/internal/telemetry"
	"mp5/internal/tenant"
)

// Policy selects what a UDP producer does when the ingress queue is full.
type Policy int

const (
	// PolicyDrop sheds load at the ingress queue: the datagram is counted
	// (server_ingress_dropped_total) and discarded, and the reader keeps
	// consuming — overload can never stall the daemon. The UDP default.
	PolicyDrop Policy = iota
	// PolicyBlock parks the UDP reader until the queue has room, trading
	// kernel-socket-buffer loss for ingress-queue pressure.
	PolicyBlock
)

// ParsePolicy maps the CLI spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "drop":
		return PolicyDrop, nil
	case "block":
		return PolicyBlock, nil
	}
	return 0, fmt.Errorf("server: unknown backpressure policy %q (want drop or block)", s)
}

// Config parameterizes a Server.
type Config struct {
	// Engine configures the wrapped dataplane (workers, window, remap
	// interval, placement seed). OnEgress is owned by the server.
	Engine dataplane.Config
	// TCPAddr/UDPAddr are the data-plane listen addresses; "" disables
	// that listener (at least one must be set).
	TCPAddr string
	UDPAddr string
	// AdminAddr is the HTTP admin-plane listen address; "" disables it.
	AdminAddr string
	// IngressCap bounds the ingress queue between the decode goroutines
	// and the serial admitter (default 1024).
	IngressCap int
	// Policy is the UDP overflow behavior (TCP always blocks).
	Policy Policy
	// Verify records the admitted arrival order and turns on the engine's
	// output/access-order recording, so VerifyRecorded can hold the
	// network path to the differential bar after Shutdown. Costs memory
	// proportional to the packet count — a soak/debug mode, not a
	// production default.
	Verify bool
	// Registry receives the server's and engine's metrics; nil creates a
	// private registry (the admin plane always has something to serve).
	Registry *telemetry.Registry
	// Tracer, when non-nil, turns on wire-to-wire span sampling: the
	// decode goroutines take the sampling decision per frame, the server
	// stamps the ingress-queue wait, and the engine stamps everything from
	// the admission window to egress. Nil disables tracing (the hot path
	// pays only nil checks).
	Tracer *dataplane.Tracer
	// SampleInterval is the background gauge sampler's period (queue
	// depths, per-worker occupancy, pps rates, histogram-window rotation);
	// 0 defaults to 250ms.
	SampleInterval time.Duration
	// ReplicationStats, when non-nil, is polled by the sampler and /stats
	// for per-replica replication gauges (replay lag, pending replay depth,
	// cumulative replay wait) — set by embedders that drive a state-compute-
	// replication engine (internal/screp) alongside or instead of the
	// sharded one. Nil — the daemon's own sharded engine — is fully inert:
	// no gauges registered, no snapshot section emitted.
	ReplicationStats func() []screp.ReplicaStat
}

func (c Config) withDefaults() Config {
	if c.IngressCap <= 0 {
		c.IngressCap = 1024
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 250 * time.Millisecond
	}
	return c
}

// srvMetrics is the server-level telemetry surface (the engine's own
// counters register alongside it on the same registry).
type srvMetrics struct {
	rx         *telemetry.CounterVec
	decodeErr  *telemetry.Counter
	dropped    *telemetry.Counter
	acks       *telemetry.Counter
	submitFail *telemetry.Counter
	conns      *telemetry.Counter
}

func newSrvMetrics(r *telemetry.Registry) *srvMetrics {
	return &srvMetrics{
		rx:         r.NewCounterVec("server_rx_frames_total", "frames decoded from the network", "proto"),
		decodeErr:  r.NewCounter("server_decode_errors_total", "frames rejected by the codec or field-count check"),
		dropped:    r.NewCounter("server_ingress_dropped_total", "packets shed at the full ingress queue (PolicyDrop)"),
		acks:       r.NewCounter("server_acks_total", "egress acks sent to TCP clients"),
		submitFail: r.NewCounter("server_submit_aborts_total", "admissions refused by an aborted engine"),
		conns:      r.NewCounter("server_conns_total", "TCP connections accepted"),
	}
}

// item is one decoded packet queued for admission; c is nil for UDP, sp is
// nil for unsampled packets. tn is the tenant the frame addressed —
// resolved at decode time, so the admitter never touches the registry's
// name table.
type item struct {
	arr core.Arrival
	tn  *tenant.Tenant
	c   *tcpConn
	seq uint32
	sp  *dataplane.Span
}

// pendingAck remembers where packet id's egress ack goes.
type pendingAck struct {
	c   *tcpConn
	seq uint32
}

// Server is the network daemon: listeners, bounded ingress, the serial
// admitter, the wrapped engine, and the admin plane. Lifecycle: New →
// Start → (serve traffic) → Shutdown, each exactly once.
type Server struct {
	cfg    Config
	prog   *ir.Program // the first tenant's boot program (single-tenant surface)
	eng    *dataplane.Engine
	reg    *tenant.Registry
	met    *srvMetrics
	engMet *dataplane.Metrics
	trc    *dataplane.Tracer

	// startNs anchors uptime reporting (set by Start; 0 before).
	startNs atomic.Int64
	// Background gauge sampler (sampler.go): per-worker occupancy vecs,
	// ticket-queue depths, and pps rates derived from counter deltas.
	mailboxG    *telemetry.GaugeVec
	parkedG     *telemetry.GaugeVec
	ticketG     *telemetry.GaugeVec
	tenantSubG  *telemetry.GaugeVec
	tenantDoneG *telemetry.GaugeVec
	tenantShedG *telemetry.GaugeVec
	tenantQG    *telemetry.GaugeVec
	rxPPS       *telemetry.Gauge
	ackPPS      *telemetry.Gauge
	egPPS       *telemetry.Gauge
	// Replication gauges (nil unless Config.ReplicationStats is set).
	replLagG    *telemetry.GaugeVec
	replWaitG   *telemetry.GaugeVec
	samplerStop chan struct{}
	samplerWg   sync.WaitGroup

	ingress chan item
	closed  chan struct{}

	tcpLn   net.Listener
	udpConn net.PacketConn
	adminLn net.Listener
	admin   *http.Server

	connMu sync.Mutex
	conns  map[*tcpConn]struct{}

	pendMu  sync.Mutex
	pending map[int64]pendingAck

	// verify holds the per-version recorded admission-order traces (Verify
	// only); admitter-owned during the run, read after Shutdown joins it.
	// verifySeen lists the versions in first-traffic order so reports come
	// out deterministically.
	verify     map[*tenant.Version][]core.Arrival
	verifySeen []*tenant.Version

	readerWg sync.WaitGroup // accept loop, per-conn readers, UDP reader
	writerWg sync.WaitGroup // per-conn ack writers
	admitWg  sync.WaitGroup
	adminWg  sync.WaitGroup
	shutOnce sync.Once
	res      *dataplane.Result
}

// TenantProgram is one tenant's boot configuration for NewMulti: a
// compiled program (TargetMP5) plus an optional admission quota in
// in-flight packets (0 = unlimited).
type TenantProgram struct {
	Name  string
	Prog  *ir.Program
	Quota int
}

// New builds a single-tenant server for prog (compiled for TargetMP5, like
// any dataplane program): one tenant named "default" with wire id 0 and no
// quota — clients that never set the frame's tenant field land on it, so
// the pre-multi-tenant wire behavior is preserved. Nothing is bound until
// Start.
func New(prog *ir.Program, cfg Config) (*Server, error) {
	return NewMulti([]TenantProgram{{Name: "default", Prog: prog}}, cfg)
}

// NewMulti builds a multi-tenant server: every tenant gets its own isolated
// program namespace on one shared engine, addressed by the codec frame's
// tenant field (wire ids are assigned in slice order, starting at 0).
// Nothing is bound until Start.
func NewMulti(tenants []TenantProgram, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.TCPAddr == "" && cfg.UDPAddr == "" {
		return nil, fmt.Errorf("server: no data-plane listener configured (set TCPAddr and/or UDPAddr)")
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("server: no tenant programs configured")
	}
	s := &Server{
		cfg:     cfg,
		prog:    tenants[0].Prog,
		met:     newSrvMetrics(cfg.Registry),
		trc:     cfg.Tracer,
		ingress: make(chan item, cfg.IngressCap),
		closed:  make(chan struct{}),
		conns:   make(map[*tcpConn]struct{}),
		pending: make(map[int64]pendingAck),
		verify:  make(map[*tenant.Version][]core.Arrival),
	}
	engCfg := cfg.Engine
	if cfg.Verify {
		engCfg.RecordOutputs = true
		engCfg.RecordAccessOrder = true
	}
	if engCfg.Metrics == nil {
		engCfg.Metrics = dataplane.NewMetrics(cfg.Registry)
	}
	s.engMet = engCfg.Metrics
	if engCfg.Tracer == nil {
		engCfg.Tracer = cfg.Tracer
	}
	engCfg.OnEgress = s.onEgress
	s.eng = dataplane.NewMulti(engCfg)
	s.reg = tenant.NewRegistry(s.eng)
	for _, tp := range tenants {
		if _, err := s.reg.Add(tp.Name, tp.Prog, tp.Quota); err != nil {
			return nil, err
		}
	}
	s.registerGauges(cfg.Registry)
	return s, nil
}

// Start binds the listeners, launches the engine topology, and begins
// serving. On error every partially bound listener is closed.
func (s *Server) Start() error {
	if s.cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.TCPAddr)
		if err != nil {
			return err
		}
		s.tcpLn = ln
	}
	if s.cfg.UDPAddr != "" {
		pc, err := net.ListenPacket("udp", s.cfg.UDPAddr)
		if err != nil {
			s.closeListeners()
			return err
		}
		s.udpConn = pc
	}
	if s.cfg.AdminAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.AdminAddr)
		if err != nil {
			s.closeListeners()
			return err
		}
		s.adminLn = ln
		s.admin = &http.Server{Handler: s.adminMux()}
	}

	s.startNs.Store(time.Now().UnixNano())
	s.eng.Start()
	s.samplerStop = make(chan struct{})
	s.samplerWg.Add(1)
	go s.samplerLoop()
	s.admitWg.Add(1)
	go s.admitLoop()
	if s.tcpLn != nil {
		s.readerWg.Add(1)
		go s.acceptLoop()
	}
	if s.udpConn != nil {
		s.readerWg.Add(1)
		go s.udpLoop()
	}
	if s.admin != nil {
		s.adminWg.Add(1)
		go func() {
			defer s.adminWg.Done()
			s.admin.Serve(s.adminLn)
		}()
	}
	return nil
}

func (s *Server) closeListeners() {
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	if s.udpConn != nil {
		s.udpConn.Close()
	}
	if s.adminLn != nil {
		s.adminLn.Close()
	}
}

// TCPAddr returns the bound TCP data-plane address ("" when disabled) —
// the actual port, so ":0" configs are test- and script-friendly.
func (s *Server) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

// UDPAddr returns the bound UDP data-plane address ("" when disabled).
func (s *Server) UDPAddr() string {
	if s.udpConn == nil {
		return ""
	}
	return s.udpConn.LocalAddr().String()
}

// AdminAddr returns the bound admin-plane address ("" when disabled).
func (s *Server) AdminAddr() string {
	if s.adminLn == nil {
		return ""
	}
	return s.adminLn.Addr().String()
}

// admitLoop is the serial admitter: the single goroutine that feeds the
// engine, so admission order — the order C1 is defined by — is exactly the
// ingress-queue order. It registers the egress-ack target under the id the
// engine will assign *before* submitting, closing the race with a packet
// that egresses while Submit is still returning.
func (s *Server) admitLoop() {
	defer s.admitWg.Done()
	// Batch buffers, reused across rounds: one blocking receive starts a
	// round, then whatever else is already queued (up to admitBatch) is
	// drained non-blocking and submitted through the engine's amortized
	// SubmitBatch path — one window acquisition, one ticket-queue lock per
	// slot, one crossbar send per worker for the whole run.
	const admitBatch = 256
	items := make([]item, 0, admitBatch)
	arrs := make([]core.Arrival, 0, admitBatch)
	spans := make([]*dataplane.Span, 0, admitBatch)
	for {
		it, ok := <-s.ingress
		if !ok {
			return
		}
		items = append(items[:0], it)
		closing := false
		for len(items) < admitBatch {
			select {
			case it2, ok2 := <-s.ingress:
				if !ok2 {
					closing = true
				} else {
					items = append(items, it2)
					continue
				}
			default:
			}
			break
		}
		// Split the drained batch into consecutive same-tenant runs: each
		// run admits on one version snapshot, so the per-tenant ticket
		// order — hence C1 within a version — is exactly ingress order.
		for lo := 0; lo < len(items); {
			hi := lo + 1
			for hi < len(items) && items[hi].tn == items[lo].tn {
				hi++
			}
			s.admitItems(items[lo:hi], arrs[:0], spans[:0])
			lo = hi
		}
		if closing {
			return
		}
	}
}

// admitItems submits one coalesced same-tenant run: snapshots the tenant's
// active version ONCE — the swap epoch; everything in this run is admitted
// on that version even if a hot swap lands mid-run — registers every
// packet's ack target under the dense ids the engine will assign *before*
// submitting (closing the race with a packet that egresses while
// SubmitBatch is still returning), then unregisters the tail the engine
// refused. A refusal is either an engine abort (watchdog stall, counted as
// a submit abort) or a tenant-quota shed (counted by the engine); either
// way a refused TCP frame is never acked — the client's ack timeout is the
// shed signal in lossless mode.
func (s *Server) admitItems(items []item, arrs []core.Arrival, spans []*dataplane.Span) {
	v := items[0].tn.Active()
	id0 := s.eng.NextID()
	s.pendMu.Lock()
	for i := range items {
		// Close the sampled packet's first segment: everything since the
		// decode stamp was time queued in the ingress channel.
		items[i].sp.Advance(dataplane.StageIngressWait, -1)
		if items[i].c != nil {
			s.pending[id0+int64(i)] = pendingAck{items[i].c, items[i].seq}
		}
		arrs = append(arrs, items[i].arr)
		spans = append(spans, items[i].sp)
	}
	s.pendMu.Unlock()
	n := s.eng.SubmitBatchTo(v.Handle, arrs, spans)
	if n < len(items) {
		s.pendMu.Lock()
		for i := n; i < len(items); i++ {
			if items[i].c != nil {
				delete(s.pending, id0+int64(i))
			}
		}
		s.pendMu.Unlock()
		if s.eng.Stalled() {
			s.met.submitFail.Add(int64(len(items) - n))
		}
	}
	if s.cfg.Verify {
		trace, seen := s.verify[v]
		if !seen {
			s.verifySeen = append(s.verifySeen, v)
		}
		for i := 0; i < n; i++ {
			a := items[i].arr
			a.Cycle = int64(len(trace))
			trace = append(trace, a)
		}
		s.verify[v] = trace
	}
}

// onEgress runs on the egressing worker: look up the packet's ack target
// and hand the ack to that connection's writer.
func (s *Server) onEgress(id int64) {
	s.pendMu.Lock()
	pa, ok := s.pending[id]
	if ok {
		delete(s.pending, id)
	}
	s.pendMu.Unlock()
	if ok {
		pa.c.ack(pa.seq)
		s.met.acks.Inc()
	}
}

// udpLoop decodes datagrams and applies the backpressure policy at the
// ingress queue. Drop mode never blocks: overload sheds load here, visibly
// (server_ingress_dropped_total), and nowhere else.
func (s *Server) udpLoop() {
	defer s.readerWg.Done()
	buf := make([]byte, frameHeader+maxPayload)
	for {
		n, _, err := s.udpConn.ReadFrom(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			// Transient datagram errors (e.g. oversized) are countable;
			// anything after Close ends the loop above.
			s.met.decodeErr.Inc()
			continue
		}
		seq, tid, arr, err := decodeDatagram(buf[:n])
		if err != nil {
			s.met.decodeErr.Inc()
			continue
		}
		tn := s.reg.ByID(tid)
		if tn == nil || len(arr.Fields) != len(tn.Active().Prog.Fields) {
			s.met.decodeErr.Inc()
			continue
		}
		_ = seq // UDP is ackless; seq is carried for symmetry only
		s.met.rx.Inc("udp")
		it := item{arr: arr, tn: tn}
		if sp := s.trc.Sample(); sp != nil {
			sp.Proto = "udp"
			it.sp = sp
		}
		if s.cfg.Policy == PolicyDrop {
			select {
			case s.ingress <- it:
			default:
				s.met.dropped.Inc()
			}
		} else {
			select {
			case s.ingress <- it:
			case <-s.closed:
				return
			}
		}
	}
}

// acceptLoop accepts TCP connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.readerWg.Done()
	for {
		c, err := s.tcpLn.Accept()
		if err != nil {
			return
		}
		s.met.conns.Inc()
		tc := newTCPConn(c)
		s.connMu.Lock()
		s.conns[tc] = struct{}{}
		s.connMu.Unlock()
		s.writerWg.Add(1)
		go s.writeLoop(tc)
		s.readerWg.Add(1)
		go s.readLoop(tc)
	}
}

// readLoop decodes frames off one TCP connection and feeds the ingress
// queue, blocking when it is full — that block, propagated by TCP flow
// control, is the lossless backpressure path. A clean client half-close
// (EOF) ends reading but keeps the connection and its ack writer alive, so
// trailing acks for in-flight packets still reach the client.
func (s *Server) readLoop(tc *tcpConn) {
	defer s.readerWg.Done()
	br := bufio.NewReaderSize(tc.c, 1<<16)
	for {
		seq, tid, arr, err := readFrame(br)
		if err != nil {
			return
		}
		tn := s.reg.ByID(tid)
		if tn == nil || len(arr.Fields) != len(tn.Active().Prog.Fields) {
			s.met.decodeErr.Inc()
			continue
		}
		s.met.rx.Inc("tcp")
		it := item{arr: arr, tn: tn, c: tc, seq: seq}
		if sp := s.trc.Sample(); sp != nil {
			sp.Proto = "tcp"
			it.sp = sp
		}
		// Plain send: the admitter consumes until the queue closes, which
		// happens only after this goroutine exits (Shutdown ordering).
		s.ingress <- it
	}
}

// writeLoop delivers egress acks for one connection, batching flushes when
// the ack channel runs dry. A write error retires the connection: the
// stream is broken, so readers and pending acks for it are abandoned.
func (s *Server) writeLoop(tc *tcpConn) {
	defer s.writerWg.Done()
	bw := bufio.NewWriterSize(tc.c, 1<<12)
	var buf [ackBytes]byte
	write := func(seq uint32) bool {
		binary.BigEndian.PutUint32(buf[:], seq)
		if _, err := bw.Write(buf[:]); err != nil {
			return false
		}
		if len(tc.acks) == 0 {
			return bw.Flush() == nil
		}
		return true
	}
	for {
		select {
		case seq := <-tc.acks:
			if !write(seq) {
				tc.shutdown()
				s.dropConn(tc)
				return
			}
		case <-tc.done:
			for {
				select {
				case seq := <-tc.acks:
					if !write(seq) {
						return
					}
				default:
					bw.Flush()
					return
				}
			}
		}
	}
}

func (s *Server) dropConn(tc *tcpConn) {
	s.connMu.Lock()
	delete(s.conns, tc)
	s.connMu.Unlock()
}

// Shutdown drains the daemon gracefully and returns the engine's run
// summary: stop ingesting (close listeners, abort connection reads), let
// the admitter finish the queued backlog, drain every in-flight packet out
// of the engine, flush trailing acks, then stop the admin plane. Safe to
// call once; SIGTERM handling in cmd/mp5d is a thin wrapper around it.
func (s *Server) Shutdown() *dataplane.Result {
	s.shutOnce.Do(func() {
		close(s.closed)
		s.closeListeners()
		// Abort in-progress reads without closing the connections: the
		// write half stays up for trailing acks.
		s.connMu.Lock()
		for tc := range s.conns {
			tc.c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.readerWg.Wait()
		close(s.ingress)
		s.admitWg.Wait()
		s.res = s.eng.Drain()
		// All egresses (and their acks) have been issued; let the writers
		// flush and close the connections.
		s.connMu.Lock()
		conns := make([]*tcpConn, 0, len(s.conns))
		for tc := range s.conns {
			conns = append(conns, tc)
		}
		s.connMu.Unlock()
		for _, tc := range conns {
			tc.shutdown()
		}
		s.writerWg.Wait()
		if s.admin != nil {
			s.admin.Close()
			s.adminWg.Wait()
		}
		if s.samplerStop != nil {
			close(s.samplerStop)
			s.samplerWg.Wait()
		}
	})
	return s.res
}

// Admitted returns the recorded admission-order trace of the first
// tenant's boot version (Verify mode only; valid after Shutdown) — the
// whole trace on a single-tenant daemon that never swapped.
func (s *Server) Admitted() []core.Arrival {
	if t := s.reg.ByID(0); t != nil {
		if vs := t.Versions(); len(vs) > 0 {
			return s.verify[vs[0]]
		}
	}
	return nil
}

// TenantVerify is one program version's wire-differential verdict: its
// recorded admission trace replayed through the single-pipeline reference
// against what the engine actually did on that version's namespace.
type TenantVerify struct {
	Tenant  string
	Version int
	Packets int
	Report  *equiv.Report
	OrderOK bool
}

// VerifyTenants holds every program version that saw traffic to the
// differential bar, independently: per-version final registers, per-packet
// outputs, and per-slot C1 access order, each against the version's own
// reference — the tenant-isolation and hot-swap correctness oracle. Valid
// after Shutdown of a Verify-mode server.
func (s *Server) VerifyTenants() ([]TenantVerify, error) {
	if !s.cfg.Verify {
		return nil, fmt.Errorf("server: not started in Verify mode")
	}
	if s.res == nil {
		return nil, fmt.Errorf("server: VerifyTenants before Shutdown")
	}
	// Versions carry no back-pointer to their tenant; resolve owner names
	// through the registry so reports say "alpha v2", not the internal
	// handle name "alpha@v2".
	owner := make(map[*tenant.Version]string)
	for _, tn := range s.reg.Tenants() {
		for _, v := range tn.Versions() {
			owner[v] = tn.Name()
		}
	}
	out := make([]TenantVerify, 0, len(s.verifySeen))
	for _, v := range s.verifySeen {
		trace := s.verify[v]
		name := owner[v]
		if name == "" {
			name = v.Handle.Name()
		}
		tv := TenantVerify{
			Tenant:  name,
			Version: v.Seq,
			Packets: len(trace),
			Report:  equiv.CheckState(v.Prog, s.eng.FinalRegsFor(v.Handle), s.eng.OutputsFor(v.Handle), trace),
		}
		tv.OrderOK = reflect.DeepEqual(equiv.ReferenceOrder(v.Prog, trace), s.eng.AccessOrdersFor(v.Handle))
		out = append(out, tv)
	}
	return out, nil
}

// VerifyRecorded is the aggregate differential verdict across every
// version that saw traffic: the first failing version's report (or the
// last report when all pass), plus whether every version's C1 access order
// matched its reference. On a single-tenant daemon that never swapped this
// is exactly the pre-multi-tenant behavior. Valid after Shutdown of a
// Verify-mode server.
func (s *Server) VerifyRecorded() (*equiv.Report, bool, error) {
	tvs, err := s.VerifyTenants()
	if err != nil {
		return nil, false, err
	}
	if len(tvs) == 0 {
		// No traffic: trivially equivalent against an empty trace.
		rep := equiv.CheckState(s.prog, s.eng.FinalRegs(), s.eng.Outputs(), nil)
		return rep, true, nil
	}
	rep, orderOK := tvs[len(tvs)-1].Report, true
	for _, tv := range tvs {
		if !tv.Report.Equivalent {
			rep = tv.Report
		}
		orderOK = orderOK && tv.OrderOK
	}
	return rep, orderOK, nil
}

// Engine exposes the wrapped dataplane engine (health probes, shard map).
func (s *Server) Engine() *dataplane.Engine { return s.eng }

// Tenants exposes the tenant registry (admin plane, hot swap, tests).
func (s *Server) Tenants() *tenant.Registry { return s.reg }

// Dropped returns the ingress-queue drop count (the PolicyDrop counter).
func (s *Server) Dropped() int64 { return s.met.dropped.Value() }

// tcpConn pairs a TCP connection with its ack channel. The buffered
// channel decouples egressing workers from the socket; when it fills (a
// client that stopped reading acks), ack() blocks the worker — which is
// the lossless mode's backpressure, ending in a watchdog abort if the
// client never recovers.
type tcpConn struct {
	c         net.Conn
	acks      chan uint32
	done      chan struct{}
	closeOnce sync.Once
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{c: c, acks: make(chan uint32, 4096), done: make(chan struct{})}
}

// ack enqueues one egress ack; after shutdown it is a no-op.
func (tc *tcpConn) ack(seq uint32) {
	select {
	case tc.acks <- seq:
	case <-tc.done:
	}
}

func (tc *tcpConn) shutdown() {
	tc.closeOnce.Do(func() {
		close(tc.done)
		tc.c.Close()
	})
}
