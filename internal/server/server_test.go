package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/ir"
	"mp5/internal/telemetry"
	"mp5/internal/workload"
)

// soakProgram compiles the synthetic 4-stage program the soak suite runs.
func soakProgram(t *testing.T) (*ir.Program, []core.Arrival) {
	t.Helper()
	prog, err := apps.Synthetic(4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: 3000, Pipelines: 4, Seed: 21, Pattern: workload.Skewed,
	}, 4, 64)
	return prog, trace
}

// TestLoopbackSoakTCP is the acceptance soak: mp5load's client drives the
// daemon over loopback TCP with a seeded workload, every packet must be
// acked (zero loss — lossless mode), and the server-side recorded
// admission order replayed through the single-pipeline reference must
// match the engine on state, outputs, and per-slot C1 access order.
func TestLoopbackSoakTCP(t *testing.T) {
	prog, trace := soakProgram(t)
	reg := telemetry.NewRegistry()
	s, err := New(prog, Config{
		Engine:   dataplane.Config{Workers: 4, Window: 128},
		TCPAddr:  "127.0.0.1:0",
		UDPAddr:  "127.0.0.1:0",
		Verify:   true,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(trace, LoadOptions{Window: 64})
	if err != nil {
		t.Fatalf("load run: %v", err)
	}
	if rep.Sent != int64(len(trace)) || rep.Acked != rep.Sent {
		t.Fatalf("loss in lossless mode: sent %d acked %d", rep.Sent, rep.Acked)
	}
	if rep.Latency.Total() != len(trace) {
		t.Fatalf("latency histogram holds %d of %d RTTs", rep.Latency.Total(), len(trace))
	}
	res := s.Shutdown()
	if res.Stalled {
		t.Fatal("engine stalled during the soak")
	}
	if res.Injected != int64(len(trace)) || res.Completed != res.Injected {
		t.Fatalf("server completed %d of %d (sent %d)", res.Completed, res.Injected, rep.Sent)
	}
	eqRep, orderOK, err := s.VerifyRecorded()
	if err != nil {
		t.Fatal(err)
	}
	if !eqRep.Equivalent {
		t.Fatalf("network path not equivalent to reference:\n%s", eqRep)
	}
	if !orderOK {
		t.Fatal("network path violated C1: per-slot access order diverges from the reference")
	}
}

// TestUDPOverloadShedsAtIngress drives far more UDP datagrams than a tiny
// ingress queue in front of a serialized engine can admit: overload must
// shed load only at the ingress queue (counted, visible in /metrics),
// never stall, and still drain cleanly on shutdown.
func TestUDPOverloadShedsAtIngress(t *testing.T) {
	prog, trace := soakProgram(t)
	reg := telemetry.NewRegistry()
	s, err := New(prog, Config{
		Engine:     dataplane.Config{Workers: 1, Window: 1},
		UDPAddr:    "127.0.0.1:0",
		AdminAddr:  "127.0.0.1:0",
		IngressCap: 4,
		Policy:     PolicyDrop,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := Dial("udp", s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(trace, LoadOptions{})
	if err != nil {
		t.Fatalf("udp blast: %v", err)
	}
	if rep.Sent != int64(len(trace)) {
		t.Fatalf("sent %d of %d", rep.Sent, len(trace))
	}
	// The daemon must stay live under overload: the health probe answers
	// 200 while the blast's backlog drains.
	var h healthz
	getJSON(t, "http://"+s.AdminAddr()+"/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("health under overload: %+v", h)
	}
	body := httpGet(t, "http://"+s.AdminAddr()+"/metrics")
	res := s.Shutdown()
	if res.Stalled {
		t.Fatal("UDP overload stalled the engine")
	}
	if s.Dropped() == 0 {
		t.Fatal("no ingress drops despite a 4-deep queue and a serialized engine")
	}
	if res.Completed != res.Injected {
		t.Fatalf("drained %d of %d admitted", res.Completed, res.Injected)
	}
	if s.Dropped()+res.Injected > int64(len(trace)) {
		t.Fatalf("dropped %d + admitted %d exceeds sent %d", s.Dropped(), res.Injected, len(trace))
	}
	if !strings.Contains(body, "server_ingress_dropped_total") {
		t.Fatal("/metrics does not expose the ingress drop counter")
	}
}

// TestAdminPlane checks the three admin endpoints against a running
// daemon: /healthz reports ok, /metrics carries both server and engine
// counters with values reconciling to the traffic, and /shardmap serves
// the live placement with every index owned by a real worker.
func TestAdminPlane(t *testing.T) {
	prog, trace := soakProgram(t)
	reg := telemetry.NewRegistry()
	s, err := New(prog, Config{
		Engine:    dataplane.Config{Workers: 2, Seed: 7},
		TCPAddr:   "127.0.0.1:0",
		AdminAddr: "127.0.0.1:0",
		Registry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	c, err := Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(trace[:500], LoadOptions{Window: 32}); err != nil {
		t.Fatal(err)
	}

	var h healthz
	getJSON(t, "http://"+s.AdminAddr()+"/healthz", &h)
	if h.Status != "ok" || h.Workers != 2 {
		t.Fatalf("healthz: %+v", h)
	}
	if h.Submitted != 500 || h.Completed != 500 || h.InFlight != 0 {
		t.Fatalf("healthz counters after 500 acked packets: %+v", h)
	}

	metrics := httpGet(t, "http://"+s.AdminAddr()+"/metrics")
	for _, want := range []string{
		`server_rx_frames_total{proto="tcp"} 500`,
		"server_acks_total 500",
		"dataplane_admitted_total 500",
		"dataplane_egressed_total 500",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var sm []dataplane.ShardEntry
	getJSON(t, "http://"+s.AdminAddr()+"/shardmap", &sm)
	if len(sm) != len(prog.Regs) {
		t.Fatalf("/shardmap covers %d arrays, program has %d", len(sm), len(prog.Regs))
	}
	for _, ent := range sm {
		if ent.Sharded && len(ent.Owners) != prog.Regs[ent.Reg].Size {
			t.Fatalf("r%d: %d owners for size %d", ent.Reg, len(ent.Owners), prog.Regs[ent.Reg].Size)
		}
		for _, o := range ent.Owners {
			if o < 0 || o >= 2 {
				t.Fatalf("r%d owned by worker %d", ent.Reg, o)
			}
		}
	}
}

// TestGarbageFramesCounted feeds the daemon undecodable TCP and UDP input
// and checks it survives, counts decode errors, and keeps serving.
func TestGarbageFramesCounted(t *testing.T) {
	prog, trace := soakProgram(t)
	s, err := New(prog, Config{
		Engine:  dataplane.Config{Workers: 2},
		TCPAddr: "127.0.0.1:0",
		UDPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// UDP: a truncated datagram.
	uc, err := net.Dial("udp", s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	uc.Write([]byte{1, 2, 3})
	uc.Close()
	// TCP: a hostile length prefix kills that connection but not the
	// daemon.
	tc, err := net.Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	tc.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	tc.Close()
	// The daemon still serves real traffic afterwards.
	c, err := Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(trace[:100], LoadOptions{Window: 16}); err != nil {
		t.Fatalf("daemon unusable after garbage input: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.met.decodeErr.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.met.decodeErr.Value() == 0 {
		t.Fatal("garbage input not counted as decode errors")
	}
	res := s.Shutdown()
	if res.Stalled || res.Completed != 100 {
		t.Fatalf("after garbage: %+v", res)
	}
}

// TestSeededPlacementOverAdmin ties the Config.Seed satellite to the admin
// plane: two daemons with different seeds publish different /shardmap
// placements, and the same seed reproduces the same one.
func TestSeededPlacementOverAdmin(t *testing.T) {
	prog, _ := soakProgram(t)
	shardmap := func(seed int64) string {
		s, err := New(prog, Config{
			Engine:    dataplane.Config{Workers: 4, Seed: seed},
			TCPAddr:   "127.0.0.1:0",
			AdminAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		return httpGet(t, "http://"+s.AdminAddr()+"/shardmap")
	}
	a, b, c := shardmap(5), shardmap(5), shardmap(6)
	if a != b {
		t.Fatal("same placement seed served different shard maps")
	}
	if a == c {
		t.Fatal("different placement seeds served identical shard maps")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, b.String())
	}
	return b.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
