package server

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mp5/internal/apps"
	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/dataplane"
	"mp5/internal/ir"
	"mp5/internal/workload"
)

// congaWide is CongaSource with a wider best-path table: same header
// fields (the wire contract), different register shape — a legal hot swap.
const congaWide = `
#define NUM_DSTS 512

struct Packet {
    int dst;
    int util;
    int path_id;
};

int best_path_util [NUM_DSTS] = {100};
int best_path [NUM_DSTS] = {0};

void conga_wide (struct Packet p) {
    if (p.util < best_path_util[p.dst % NUM_DSTS]) {
        best_path_util[p.dst % NUM_DSTS] = p.util;
        best_path[p.dst % NUM_DSTS] = p.path_id;
    } else if (p.path_id == best_path[p.dst % NUM_DSTS]) {
        best_path_util[p.dst % NUM_DSTS] = p.util;
    }
}
`

func compileMP5(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := compiler.Compile(src, compiler.Options{Target: compiler.TargetMP5})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// twoTenantServer boots a Verify-mode daemon with two tenants: alpha runs
// the synthetic soak program, beta runs CONGA.
func twoTenantServer(t *testing.T, quotaBeta int) (*Server, *ir.Program, *ir.Program) {
	t.Helper()
	progA, _ := soakProgram(t)
	progB := compileMP5(t, apps.CongaSource)
	s, err := NewMulti([]TenantProgram{
		{Name: "alpha", Prog: progA},
		{Name: "beta", Prog: progB, Quota: quotaBeta},
	}, Config{
		Engine:    dataplane.Config{Workers: 4, Window: 128},
		TCPAddr:   "127.0.0.1:0",
		AdminAddr: "127.0.0.1:0",
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s, progA, progB
}

// TestMultiTenantWireIsolation is the wire-level tenant-isolation oracle:
// two tenants driven concurrently over loopback TCP by clients stamping
// different wire ids must see zero loss, and each tenant's recorded
// admission trace must match its own single-pipeline reference on state,
// outputs, and C1 access order.
func TestMultiTenantWireIsolation(t *testing.T) {
	s, progA, progB := twoTenantServer(t, 0)
	traceA := workload.Synthetic(progA, workload.Spec{Packets: 2000, Pipelines: 4, Seed: 41, Pattern: workload.Skewed}, 4, 64)
	traceB := workload.RandomFields(progB, workload.Spec{Packets: 2000, Pipelines: 4, Seed: 42})
	var wg sync.WaitGroup
	run := func(tenant uint16, trace []core.Arrival) {
		defer wg.Done()
		c, err := Dial("tcp", s.TCPAddr())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		rep, err := c.Run(trace, LoadOptions{Tenant: tenant, Window: 64})
		if err != nil {
			t.Errorf("tenant %d run: %v", tenant, err)
			return
		}
		if rep.Acked != int64(len(trace)) {
			t.Errorf("tenant %d: acked %d of %d", tenant, rep.Acked, len(trace))
		}
	}
	wg.Add(2)
	go run(0, traceA)
	go run(1, traceB)
	wg.Wait()
	res := s.Shutdown()
	if res.Stalled || res.Completed != int64(len(traceA)+len(traceB)) {
		t.Fatalf("completed %d of %d (stalled=%v)", res.Completed, len(traceA)+len(traceB), res.Stalled)
	}
	tvs, err := s.VerifyTenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(tvs) != 2 {
		t.Fatalf("verified %d versions, want 2: %+v", len(tvs), tvs)
	}
	for _, tv := range tvs {
		if !tv.Report.Equivalent {
			t.Fatalf("tenant %s v%d not equivalent:\n%s", tv.Tenant, tv.Version, tv.Report)
		}
		if !tv.OrderOK {
			t.Fatalf("tenant %s v%d violated C1", tv.Tenant, tv.Version)
		}
		if tv.Packets != 2000 {
			t.Fatalf("tenant %s v%d verified %d packets, want 2000", tv.Tenant, tv.Version, tv.Packets)
		}
	}
}

// TestHotSwapZeroLoss is the acceptance bar for the swap protocol on the
// wire: POST /programs/{tenant} while a TCP client streams traffic — no
// packet is lost across the flip, both versions see traffic, and each
// version independently passes the wire differential (state + C1 order).
func TestHotSwapZeroLoss(t *testing.T) {
	progV1 := compileMP5(t, apps.CongaSource)
	s, err := NewMulti([]TenantProgram{{Name: "alpha", Prog: progV1}}, Config{
		Engine:    dataplane.Config{Workers: 4, Window: 64},
		TCPAddr:   "127.0.0.1:0",
		AdminAddr: "127.0.0.1:0",
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	trace1 := workload.RandomFields(progV1, workload.Spec{Packets: 3000, Pipelines: 4, Seed: 43})
	c, err := Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *LoadReport, 1)
	go func() {
		rep, err := c.Run(trace1, LoadOptions{Window: 32})
		if err != nil {
			t.Errorf("phase-1 run: %v", err)
		}
		done <- rep
	}()
	// Swap mid-stream: wait until the engine has demonstrably processed
	// part of phase 1, then flip. Packets admitted before the flip finish
	// on v1; anything after starts on v2.
	for s.eng.Completed() < 500 {
		time.Sleep(time.Millisecond)
	}
	body := httpPost(t, "http://"+s.AdminAddr()+"/programs/alpha", congaWide)
	if !strings.Contains(body, `"version":2`) {
		t.Fatalf("swap response: %s", body)
	}
	rep1 := <-done
	c.Close()
	if rep1 == nil || rep1.Acked != int64(len(trace1)) {
		t.Fatalf("phase 1 lost packets across the swap: %+v", rep1)
	}
	// Phase 2 traffic is guaranteed post-flip: a fresh client, same wire id
	// (the tenant id is stable across versions).
	progV2 := compileMP5(t, congaWide)
	trace2 := workload.RandomFields(progV2, workload.Spec{Packets: 1500, Pipelines: 4, Seed: 44})
	c2, err := Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rep2, err := c2.Run(trace2, LoadOptions{Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Acked != int64(len(trace2)) {
		t.Fatalf("phase 2 acked %d of %d", rep2.Acked, len(trace2))
	}
	res := s.Shutdown()
	if res.Stalled {
		t.Fatal("stalled across a hot swap")
	}
	tvs, err := s.VerifyTenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(tvs) != 2 || tvs[0].Version != 1 || tvs[1].Version != 2 {
		t.Fatalf("expected both versions to see traffic: %+v", tvs)
	}
	for _, tv := range tvs {
		if tv.Packets == 0 {
			t.Fatalf("version %d verified 0 packets", tv.Version)
		}
		if !tv.Report.Equivalent {
			t.Fatalf("version %d not equivalent after the swap:\n%s", tv.Version, tv.Report)
		}
		if !tv.OrderOK {
			t.Fatalf("version %d violated C1 across the swap", tv.Version)
		}
	}
	if tvs[0].Packets+tvs[1].Packets != len(trace1)+len(trace2) {
		t.Fatalf("versions verified %d+%d packets, want %d total",
			tvs[0].Packets, tvs[1].Packets, len(trace1)+len(trace2))
	}
}

// TestShutdownMidHotSwap extends the abort/drain regression suite across a
// swap: SIGTERM (Shutdown is exactly what mp5d's SIGTERM handler calls)
// lands right after a hot swap while both versions still have packets in
// flight. The drain must join in order (readers → admitter → engine →
// writers), flush trailing acks for everything admitted, and leak nothing:
// no tickets, no window tokens, no quota tokens.
func TestShutdownMidHotSwap(t *testing.T) {
	progV1 := compileMP5(t, apps.CongaSource)
	s, err := NewMulti([]TenantProgram{{Name: "alpha", Prog: progV1, Quota: 32}}, Config{
		Engine:    dataplane.Config{Workers: 2, Window: 64},
		TCPAddr:   "127.0.0.1:0",
		AdminAddr: "127.0.0.1:0",
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	trace := workload.RandomFields(progV1, workload.Spec{Packets: 4000, Pipelines: 2, Seed: 45})
	c, err := Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var rep *LoadReport
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The run races the shutdown: an error (connection closed mid-send)
		// is expected; the report still counts trailing acks received.
		rep, _ = c.Run(trace, LoadOptions{Window: 32, AckTimeout: 2 * time.Second})
	}()
	for s.eng.Completed() < 300 {
		time.Sleep(time.Millisecond)
	}
	httpPost(t, "http://"+s.AdminAddr()+"/programs/alpha", congaWide)
	// SIGTERM mid-swap: both versions have in-flight packets right now.
	res := s.Shutdown()
	<-done
	if res.Stalled {
		t.Fatal("drain stalled mid-swap")
	}
	if res.Completed != res.Injected {
		t.Fatalf("drained %d of %d admitted (ticket leak?)", res.Completed, res.Injected)
	}
	// Trailing acks: every admitted packet was acked before the writers
	// closed — the client saw at least as many acks as the server admitted
	// minus nothing (admitted ⇒ acked in lossless mode).
	if rep == nil || rep.Acked < res.Injected {
		t.Fatalf("trailing acks lost: client acked %v, server admitted %d", rep, res.Injected)
	}
	if pend, _ := s.eng.TicketDepths(); pend != 0 {
		t.Fatalf("shutdown mid-swap leaked %d tickets", pend)
	}
	if got := s.eng.WindowInUse(); got != 0 {
		t.Fatalf("shutdown mid-swap leaked %d window tokens", got)
	}
	tn := s.Tenants().ByName("alpha")
	if got := tn.Quota().InUse(); got != 0 {
		t.Fatalf("shutdown mid-swap leaked %d quota tokens", got)
	}
	if vs := tn.Versions(); len(vs) != 2 {
		t.Fatalf("swap did not land before shutdown: %d versions", len(vs))
	}
	// Both versions' admitted traffic still verifies after the interrupted
	// run — the drain retired everything in admission order.
	tvs, err := s.VerifyTenants()
	if err != nil {
		t.Fatal(err)
	}
	for _, tv := range tvs {
		if !tv.Report.Equivalent || !tv.OrderOK {
			t.Fatalf("version %d failed the differential after mid-swap shutdown: %+v", tv.Version, tv)
		}
	}
}

// TestAdminContentTypeJSON pins the admin-plane content type: every JSON
// endpoint — /stats, /shardmap (with and without ?tenant=), /programs, and
// swap errors — declares application/json.
func TestAdminContentTypeJSON(t *testing.T) {
	s, _, _ := twoTenantServer(t, 0)
	defer s.Shutdown()
	base := "http://" + s.AdminAddr()
	for _, path := range []string{"/stats", "/shardmap", "/shardmap?tenant=beta", "/programs"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s content type %q, want application/json", path, ct)
		}
	}
	// Error responses carry the content type too.
	resp, err := http.Get(base + "/shardmap?tenant=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("GET /shardmap?tenant=ghost: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
}

// TestTenantAdminSurfaces covers the rest of the tenant admin plane: the
// per-tenant /stats section, per-tenant /metrics gauges, tenant-selected
// shard maps, and every swap-endpoint error path.
func TestTenantAdminSurfaces(t *testing.T) {
	s, progA, _ := twoTenantServer(t, 48)
	defer s.Shutdown()
	base := "http://" + s.AdminAddr()
	traceA := workload.Synthetic(progA, workload.Spec{Packets: 400, Pipelines: 4, Seed: 46}, 4, 64)
	c, err := Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(traceA, LoadOptions{Tenant: 0, Window: 32}); err != nil {
		t.Fatal(err)
	}

	var st StatsSnapshot
	getJSON(t, base+"/stats", &st)
	if len(st.Tenants) != 2 {
		t.Fatalf("/stats tenants: %+v", st.Tenants)
	}
	alpha, beta := st.Tenants[0], st.Tenants[1]
	if alpha.Name != "alpha" || alpha.ID != 0 || alpha.ActiveVersion != 1 {
		t.Fatalf("alpha stat: %+v", alpha)
	}
	if alpha.Submitted != 400 || alpha.Completed != 400 {
		t.Fatalf("alpha counters after 400 acked: %+v", alpha)
	}
	if beta.Name != "beta" || beta.ID != 1 || beta.QuotaCap != 48 || beta.Submitted != 0 {
		t.Fatalf("beta stat: %+v", beta)
	}
	if len(alpha.Versions) != 1 || alpha.Versions[0].Submitted != 400 {
		t.Fatalf("alpha version detail: %+v", alpha.Versions)
	}

	// Per-tenant shard maps differ by program shape: alpha's synthetic
	// program has 4 register arrays, beta's CONGA has 2.
	var smA, smB []dataplane.ShardEntry
	getJSON(t, base+"/shardmap?tenant=alpha", &smA)
	getJSON(t, base+"/shardmap?tenant=beta", &smB)
	if len(smA) != len(progA.Regs) {
		t.Fatalf("alpha shardmap covers %d arrays, program has %d", len(smA), len(progA.Regs))
	}
	if len(smB) == len(smA) {
		t.Fatalf("tenant shard maps not distinguished: both cover %d arrays", len(smA))
	}

	// The sampler publishes the per-tenant gauges once it ticks.
	deadline := time.Now().Add(2 * time.Second)
	for {
		metrics := httpGet(t, base+"/metrics")
		if strings.Contains(metrics, `tenant_submitted_packets{tenant="alpha"} 400`) &&
			strings.Contains(metrics, `tenant_quota_inuse{tenant="beta"} 0`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics missing tenant gauges:\n%s", metrics)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Swap endpoint error paths, one status per failure mode.
	for _, tc := range []struct {
		method, path, body string
		code               int
		want               string
	}{
		{"POST", "/programs/ghost", apps.CongaSource, http.StatusNotFound, "unknown tenant"},
		{"GET", "/programs/alpha", "", http.StatusMethodNotAllowed, "POST"},
		{"POST", "/programs/alpha", "int x[4] = {", http.StatusUnprocessableEntity, "compile"},
		{"POST", "/programs/beta", apps.SequencerSource, http.StatusConflict, "field count"},
		{"POST", "/programs/", "", http.StatusNotFound, "want /programs/{tenant}"},
	} {
		req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != tc.code || !strings.Contains(body, tc.want) {
			t.Fatalf("%s %s: %d %q (want %d containing %q)",
				tc.method, tc.path, resp.StatusCode, body, tc.code, tc.want)
		}
	}
}

func httpPost(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d: %s", url, resp.StatusCode, out)
	}
	return out
}
