// Package sharding implements MP5's dynamically sharded shared memory (D2):
// the index-to-pipeline map, the per-index access and in-flight counters,
// the Figure-6 remap heuristic, and the LPT rebalancer used by the paper's
// "ideal" baseline (optimal bin packing stand-in).
package sharding

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mp5/internal/ir"
)

// Policy selects the initial index-to-pipeline assignment.
type Policy int

const (
	// PolicyRoundRobin assigns index i of every sharded array to
	// pipeline i mod k.
	PolicyRoundRobin Policy = iota
	// PolicyRandom assigns each index to a uniformly random pipeline
	// (the paper's static-sharding baseline: "sharded randomly across
	// pipelines at compile time").
	PolicyRandom
	// PolicySinglePipe homes every index and every array in pipeline 0
	// (the naive all-state-in-one-pipeline design from D1).
	PolicySinglePipe
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyRandom:
		return "random"
	case PolicySinglePipe:
		return "single-pipe"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Move records one register-entry migration between pipelines. The caller
// copies the register value from From to To when applying the move.
type Move struct {
	Reg  int
	Idx  int
	From int
	To   int
}

// regShard is the runtime state of one register array.
type regShard struct {
	sharded bool
	size    int
	// pipeOf[i] is the pipeline whose copy of index i is active.
	// Unsharded arrays use pipeOf[0] as the whole-array home.
	pipeOf []int
	// access[i] counts resolutions since the last remap (§3.4).
	access []int64
	// total[i] counts resolutions over the whole run (never reset) —
	// the source for hot-index telemetry reports.
	total []int64
	// ewma[i] smooths access counts across remap windows; the LPT
	// rebalancer uses it so single-window noise does not cause
	// pointless mass migrations.
	ewma []float64
	// inflight[i] counts packets resolved to index i that have not yet
	// performed the access; a remap may only move index i when zero.
	inflight []int64
}

func (r *regShard) slot(idx int) int {
	if !r.sharded {
		return 0
	}
	if idx < 0 || idx >= r.size {
		panic(fmt.Sprintf("sharding: index %d out of range [0,%d)", idx, r.size))
	}
	return idx
}

// Map is the index-to-pipeline map for one program instance. The paper
// replicates it read-only in every pipeline and updates it atomically from
// the background remap process; a single authoritative copy models that
// exactly in a simulator.
type Map struct {
	k     int
	regs  []regShard
	moves int64
}

// New builds the map for program p over k pipelines. Unsharded arrays are
// homed so that arrays sharing a stage share a pipeline (they may be
// accessed by one packet in one stage visit); the home is stage mod k to
// spread pinned state across pipelines. seed drives PolicyRandom.
func New(p *ir.Program, k int, policy Policy, seed int64) *Map {
	if k <= 0 {
		panic("sharding: need at least one pipeline")
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Map{k: k, regs: make([]regShard, len(p.Regs))}
	for i := range p.Regs {
		info := &p.Regs[i]
		rs := &m.regs[i]
		rs.sharded = info.Sharded && policy != PolicySinglePipe
		rs.size = info.Size
		n := 1
		if rs.sharded {
			n = info.Size
		}
		rs.pipeOf = make([]int, n)
		rs.access = make([]int64, n)
		rs.total = make([]int64, n)
		rs.ewma = make([]float64, n)
		rs.inflight = make([]int64, n)
		switch {
		case policy == PolicySinglePipe:
			// all zeros
		case rs.sharded && policy == PolicyRandom:
			for j := range rs.pipeOf {
				rs.pipeOf[j] = rng.Intn(k)
			}
		case rs.sharded: // round robin
			for j := range rs.pipeOf {
				rs.pipeOf[j] = j % k
			}
		default:
			// Unsharded: home by stage so same-stage arrays
			// co-locate.
			home := 0
			if info.Stage >= 0 {
				home = info.Stage % k
			}
			rs.pipeOf[0] = home
		}
	}
	return m
}

// K returns the number of pipelines.
func (m *Map) K() int { return m.k }

// Sharded reports whether register array reg is sharded per-index.
func (m *Map) Sharded(reg int) bool { return m.regs[reg].sharded }

// PipeOf returns the pipeline holding the active copy of reg[idx].
// For unsharded arrays idx is ignored.
func (m *Map) PipeOf(reg, idx int) int {
	rs := &m.regs[reg]
	return rs.pipeOf[rs.slot(idx)]
}

// NoteResolved records that a packet has been resolved to access reg[idx]:
// it bumps the access counter and the in-flight counter.
func (m *Map) NoteResolved(reg, idx int) {
	rs := &m.regs[reg]
	s := rs.slot(idx)
	rs.access[s]++
	rs.total[s]++
	rs.inflight[s]++
}

// NoteDone records that a resolved packet has performed (or abandoned, for
// drops) its access to reg[idx].
func (m *Map) NoteDone(reg, idx int) {
	rs := &m.regs[reg]
	s := rs.slot(idx)
	if rs.inflight[s] <= 0 {
		panic("sharding: in-flight counter underflow")
	}
	rs.inflight[s]--
}

// Inflight returns the current in-flight count for reg[idx].
func (m *Map) Inflight(reg, idx int) int64 {
	rs := &m.regs[reg]
	return rs.inflight[rs.slot(idx)]
}

// Moves returns the total number of entry migrations applied so far.
func (m *Map) Moves() int64 { return m.moves }

// Remap runs one iteration of the paper's Figure-6 heuristic for every
// sharded register array and resets the access counters. It returns the
// moves to apply; the caller must copy register values accordingly (the
// map is already updated).
func (m *Map) Remap() []Move {
	var moves []Move
	for reg := range m.regs {
		rs := &m.regs[reg]
		if !rs.sharded {
			continue
		}
		if mv, ok := m.remapOne(reg, rs); ok {
			moves = append(moves, mv)
		}
		for i := range rs.access {
			rs.access[i] = 0
		}
	}
	return moves
}

// remapOne applies Figure 6 to one register array:
//
//	find pipelines H and L with the highest (cmax) and lowest (cmin)
//	aggregate access counts; let C = (cmax-cmin)/2; move the index in H
//	with the largest count < C (and zero in-flight packets) to L.
func (m *Map) remapOne(reg int, rs *regShard) (Move, bool) {
	agg := make([]int64, m.k)
	for i, pipe := range rs.pipeOf {
		agg[pipe] += rs.access[i]
	}
	h, l := 0, 0
	for p := 1; p < m.k; p++ {
		if agg[p] > agg[h] {
			h = p
		}
		if agg[p] < agg[l] {
			l = p
		}
	}
	if h == l || agg[h] == agg[l] {
		return Move{}, false
	}
	c := (agg[h] - agg[l]) / 2
	best := -1
	for i, pipe := range rs.pipeOf {
		if pipe != h || rs.inflight[i] != 0 {
			continue
		}
		if rs.access[i] >= c || rs.access[i] == 0 {
			continue
		}
		if best < 0 || rs.access[i] > rs.access[best] {
			best = i
		}
	}
	if best < 0 {
		return Move{}, false
	}
	rs.pipeOf[best] = l
	m.moves++
	return Move{Reg: reg, Idx: best, From: h, To: l}, true
}

// RemapLPT rebalances every sharded array towards the bin-packing optimum,
// the stand-in for the paper's "optimal bin packing for dynamic state
// sharding" in the ideal baseline. It iterates best-fit moves from the
// heaviest to the lightest pipeline until the load gap closes (within the
// sampling noise of the measurement window), working on EWMA-smoothed
// access counts. The incremental form is deliberately sticky: unlike a
// from-scratch re-pack it never migrates state that is not part of the
// imbalance, so measurement noise cannot thrash placements. Indexes with
// in-flight packets stay put. Access counters reset afterwards.
func (m *Map) RemapLPT() []Move {
	var moves []Move
	for reg := range m.regs {
		rs := &m.regs[reg]
		if !rs.sharded {
			continue
		}
		var total float64
		for i := range rs.ewma {
			rs.ewma[i] = 0.5*rs.ewma[i] + float64(rs.access[i])
			total += rs.ewma[i]
		}
		if total > 0 {
			mean := total / float64(m.k)
			// Stop once the heaviest-lightest gap is within the
			// window's sampling noise.
			margin := 0.05 * mean
			if noise := 2 * math.Sqrt(mean); noise > margin {
				margin = noise
			}
			load := make([]float64, m.k)
			for i, pipe := range rs.pipeOf {
				load[pipe] += rs.ewma[i]
			}
			for step := 0; step < rs.size; step++ {
				h, l := 0, 0
				for p := 1; p < m.k; p++ {
					if load[p] > load[h] {
						h = p
					}
					if load[p] < load[l] {
						l = p
					}
				}
				gap := load[h] - load[l]
				if gap <= margin {
					break
				}
				// Best fit: the movable index on h whose load
				// is closest to half the gap (and below it, so
				// the move strictly shrinks the gap).
				best, bestGain := -1, 0.0
				for i, pipe := range rs.pipeOf {
					if pipe != h || rs.inflight[i] != 0 {
						continue
					}
					e := rs.ewma[i]
					if e <= 0 || e >= gap {
						continue
					}
					gain := e
					if e > gap/2 {
						gain = gap - e
					}
					if gain > bestGain {
						best, bestGain = i, gain
					}
				}
				if best < 0 {
					break
				}
				rs.pipeOf[best] = l
				load[h] -= rs.ewma[best]
				load[l] += rs.ewma[best]
				m.moves++
				moves = append(moves, Move{Reg: reg, Idx: best, From: h, To: l})
			}
		}
		for i := range rs.access {
			rs.access[i] = 0
		}
	}
	return moves
}

// HotIndex is one entry of the hot-key report: a register index, its
// current home pipeline, and its cumulative resolution count.
type HotIndex struct {
	Reg   int
	Idx   int
	Pipe  int
	Count int64
}

// TopIndices returns the n most-resolved (register, index) slots across
// every array, hottest first (ties broken by register then index, so the
// report is deterministic). Unsharded arrays report as a single slot with
// Idx -1. Slots never resolved are omitted.
func (m *Map) TopIndices(n int) []HotIndex {
	var all []HotIndex
	for reg := range m.regs {
		rs := &m.regs[reg]
		if !rs.sharded {
			var sum int64
			for _, c := range rs.total {
				sum += c
			}
			if sum > 0 {
				all = append(all, HotIndex{Reg: reg, Idx: -1, Pipe: rs.pipeOf[0], Count: sum})
			}
			continue
		}
		for i, c := range rs.total {
			if c == 0 {
				continue
			}
			all = append(all, HotIndex{Reg: reg, Idx: i, Pipe: rs.pipeOf[i], Count: c})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		x, y := all[a], all[b]
		if x.Count != y.Count {
			return x.Count > y.Count
		}
		if x.Reg != y.Reg {
			return x.Reg < y.Reg
		}
		return x.Idx < y.Idx
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// AggregateLoad returns the per-pipeline sum of access counters for one
// register array under the current mapping (for tests and diagnostics).
func (m *Map) AggregateLoad(reg int) []int64 {
	rs := &m.regs[reg]
	agg := make([]int64, m.k)
	for i, pipe := range rs.pipeOf {
		agg[pipe] += rs.access[i]
	}
	return agg
}
