package sharding

import (
	"testing"
	"testing/quick"

	"mp5/internal/ir"
)

func prog2regs() *ir.Program {
	return &ir.Program{
		Fields: []string{"x"},
		Regs: []ir.RegInfo{
			{Name: "s", Size: 16, Sharded: true, Stage: 2},
			{Name: "p", Size: 8, Sharded: false, Stage: 3},
		},
	}
}

func TestInitialPolicies(t *testing.T) {
	p := prog2regs()
	rr := New(p, 4, PolicyRoundRobin, 1)
	for i := 0; i < 16; i++ {
		if rr.PipeOf(0, i) != i%4 {
			t.Fatalf("round robin broken at %d", i)
		}
	}
	// Unsharded array homes at stage mod k regardless of policy.
	if rr.PipeOf(1, 0) != 3%4 {
		t.Errorf("unsharded home = %d, want 3", rr.PipeOf(1, 0))
	}
	single := New(p, 4, PolicySinglePipe, 1)
	for i := 0; i < 16; i++ {
		if single.PipeOf(0, i) != 0 {
			t.Fatal("single-pipe policy leaked")
		}
	}
	if single.Sharded(0) {
		t.Error("single-pipe policy must unshard everything")
	}
	rnd := New(p, 4, PolicyRandom, 7)
	counts := map[int]int{}
	for i := 0; i < 16; i++ {
		pipe := rnd.PipeOf(0, i)
		if pipe < 0 || pipe >= 4 {
			t.Fatalf("random pipe %d out of range", pipe)
		}
		counts[pipe]++
	}
	if len(counts) < 2 {
		t.Error("random placement suspiciously degenerate")
	}
}

func TestCountersAndInflightGate(t *testing.T) {
	m := New(prog2regs(), 2, PolicyRoundRobin, 1)
	// Load index 1 heavily on its pipe, keep it in flight.
	for i := 0; i < 100; i++ {
		m.NoteResolved(0, 1)
	}
	for i := 0; i < 99; i++ {
		m.NoteDone(0, 1)
	}
	if m.Inflight(0, 1) != 1 {
		t.Fatalf("inflight = %d", m.Inflight(0, 1))
	}
	// Figure-6 wants to move something off pipe 1 (the hot one), but the
	// only loaded index is in flight and the rest have zero counters, so
	// no move may happen.
	moves := m.Remap()
	for _, mv := range moves {
		if mv.Idx == 1 && mv.Reg == 0 {
			t.Fatalf("moved an in-flight index: %+v", mv)
		}
	}
}

func TestRemapHeuristicBalances(t *testing.T) {
	m := New(prog2regs(), 2, PolicyRoundRobin, 1)
	// Indexes 0,2,4,6 on pipe 0; 1,3,5,7 on pipe 1 (round robin).
	// Load pipe 0 with 40 accesses spread over its indexes; pipe 1 zero.
	for _, idx := range []int{0, 2, 4, 6} {
		for i := 0; i < 10; i++ {
			m.NoteResolved(0, idx)
			m.NoteDone(0, idx)
		}
	}
	moves := m.Remap()
	if len(moves) != 1 {
		t.Fatalf("moves = %v, want exactly one per register per interval (Figure 6)", moves)
	}
	mv := moves[0]
	if mv.From != 0 || mv.To != 1 {
		t.Fatalf("move direction %+v, want hot→cold", mv)
	}
	// The moved index's counter (10) must be under C = (40-0)/2 = 20.
	if m.PipeOf(0, mv.Idx) != 1 {
		t.Error("map not updated")
	}
}

func TestRemapNoImbalanceNoMove(t *testing.T) {
	m := New(prog2regs(), 2, PolicyRoundRobin, 1)
	for idx := 0; idx < 16; idx++ {
		m.NoteResolved(0, idx)
		m.NoteDone(0, idx)
	}
	if moves := m.Remap(); len(moves) != 0 {
		t.Fatalf("balanced load still moved: %v", moves)
	}
}

func TestRemapLPTConverges(t *testing.T) {
	m := New(prog2regs(), 4, PolicySinglePipe, 1)
	_ = m
	// Single-pipe policy unshards; build a fresh map where everything
	// starts on pipe 0 via a skewed random... instead: round robin, then
	// overload one pipe artificially.
	m2 := New(prog2regs(), 4, PolicyRoundRobin, 1)
	// Heavy load on pipe 0's indexes only.
	for _, idx := range []int{0, 4, 8, 12} {
		for i := 0; i < 50; i++ {
			m2.NoteResolved(0, idx)
			m2.NoteDone(0, idx)
		}
	}
	moves := m2.RemapLPT()
	if len(moves) == 0 {
		t.Fatal("LPT made no moves under 4x imbalance")
	}
	// After the rebalance the EWMA loads must be near-equal.
	load := m2.AggregateLoad(0)
	// Counters were reset; recompute from placements: each hot index
	// carries equal weight, so they should now be spread across pipes.
	hot := map[int]int{}
	for _, idx := range []int{0, 4, 8, 12} {
		hot[m2.PipeOf(0, idx)]++
	}
	if len(hot) < 3 {
		t.Errorf("hot indexes still clustered: %v (loads %v)", hot, load)
	}
}

func TestRemapLPTRespectsInflight(t *testing.T) {
	m := New(prog2regs(), 4, PolicyRoundRobin, 1)
	for i := 0; i < 100; i++ {
		m.NoteResolved(0, 0) // stays in flight
	}
	for _, mv := range m.RemapLPT() {
		if mv.Reg == 0 && mv.Idx == 0 {
			t.Fatalf("LPT moved in-flight index: %+v", mv)
		}
	}
	for i := 0; i < 100; i++ {
		m.NoteDone(0, 0)
	}
}

func TestUnshardedNeverMoves(t *testing.T) {
	m := New(prog2regs(), 4, PolicyRoundRobin, 1)
	for i := 0; i < 1000; i++ {
		m.NoteResolved(1, -1)
		m.NoteDone(1, -1)
	}
	for _, mv := range append(m.Remap(), m.RemapLPT()...) {
		if mv.Reg == 1 {
			t.Fatalf("unsharded array moved: %+v", mv)
		}
	}
}

func TestNoteDoneUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on underflow")
		}
	}()
	m := New(prog2regs(), 2, PolicyRoundRobin, 1)
	m.NoteDone(0, 0)
}

// TestInvariantOneActivePipePerIndex: after arbitrary remap sequences every
// index maps to exactly one valid pipeline (testing/quick over random load
// patterns).
func TestInvariantOneActivePipePerIndex(t *testing.T) {
	prop := func(loads []uint8, seed int64) bool {
		m := New(prog2regs(), 4, PolicyRandom, seed)
		for i, l := range loads {
			idx := i % 16
			for j := 0; j < int(l%32); j++ {
				m.NoteResolved(0, idx)
				m.NoteDone(0, idx)
			}
			if i%3 == 0 {
				m.Remap()
			} else if i%7 == 0 {
				m.RemapLPT()
			}
		}
		for idx := 0; idx < 16; idx++ {
			p := m.PipeOf(0, idx)
			if p < 0 || p >= 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMovesCounter(t *testing.T) {
	m := New(prog2regs(), 2, PolicyRoundRobin, 1)
	for _, idx := range []int{0, 2, 4, 6} {
		for i := 0; i < 10; i++ {
			m.NoteResolved(0, idx)
			m.NoteDone(0, idx)
		}
	}
	n := len(m.Remap())
	if m.Moves() != int64(n) {
		t.Fatalf("Moves() = %d, want %d", m.Moves(), n)
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{PolicyRoundRobin, PolicyRandom, PolicySinglePipe} {
		if p.String() == "" {
			t.Error("empty policy name")
		}
	}
}

func TestTopIndices(t *testing.T) {
	m := New(prog2regs(), 4, PolicyRoundRobin, 1)
	for i := 0; i < 7; i++ {
		m.NoteResolved(0, 3)
	}
	for i := 0; i < 2; i++ {
		m.NoteResolved(0, 9)
	}
	m.NoteResolved(0, 12)
	// Unsharded register: accesses aggregate into one Idx=-1 slot.
	for i := 0; i < 4; i++ {
		m.NoteResolved(1, i%8)
	}
	hot := m.TopIndices(3)
	if len(hot) != 3 {
		t.Fatalf("got %d entries, want 3", len(hot))
	}
	want := []HotIndex{
		{Reg: 0, Idx: 3, Pipe: 3, Count: 7},
		{Reg: 1, Idx: -1, Pipe: 3 % 4, Count: 4},
		{Reg: 0, Idx: 9, Pipe: 1, Count: 2},
	}
	for i, w := range want {
		if hot[i] != w {
			t.Errorf("entry %d = %+v, want %+v", i, hot[i], w)
		}
	}
	// Unlimited n returns every touched slot, still sorted.
	all := m.TopIndices(0)
	if len(all) != 4 {
		t.Fatalf("got %d entries, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Count > all[i-1].Count {
			t.Fatal("not sorted by count")
		}
	}
}
