package stats

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramConcurrentMerge exercises the documented share-nothing
// concurrency pattern: N goroutines each fill a private histogram and one
// goroutine merges them at drain time. The merged result must be exactly
// the histogram a single serial recorder would have produced — same
// totals, same buckets, same quantiles.
func TestHistogramConcurrentMerge(t *testing.T) {
	const (
		workers = 8
		perW    = 10000
	)
	parts := make([]*Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		parts[w] = NewHistogram(0, 1000, 250)
		wg.Add(1)
		go func(w int, h *Histogram) {
			defer wg.Done()
			// Deterministic per-worker value stream, including
			// out-of-range observations for the Under/Over counters.
			for i := 0; i < perW; i++ {
				h.Add(float64((w*perW+i)*7%1100) - 50)
			}
		}(w, parts[w])
	}
	wg.Wait()

	merged := NewHistogram(0, 1000, 250)
	for _, p := range parts {
		merged.Merge(p)
	}

	serial := NewHistogram(0, 1000, 250)
	for w := 0; w < workers; w++ {
		for i := 0; i < perW; i++ {
			serial.Add(float64((w*perW+i)*7%1100) - 50)
		}
	}

	if merged.Total() != workers*perW || merged.Total() != serial.Total() {
		t.Fatalf("merged total %d, serial %d, want %d", merged.Total(), serial.Total(), workers*perW)
	}
	if merged.Under != serial.Under || merged.Over != serial.Over {
		t.Fatalf("out-of-range counts diverge: merged %d/%d serial %d/%d",
			merged.Under, merged.Over, serial.Under, serial.Over)
	}
	for i := range merged.Buckets {
		if merged.Buckets[i] != serial.Buckets[i] {
			t.Fatalf("bucket %d: merged %d serial %d", i, merged.Buckets[i], serial.Buckets[i])
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if m, s := merged.Quantile(q), serial.Quantile(q); math.Abs(m-s) > 1e-9 {
			t.Fatalf("q%.2f: merged %g serial %g", q, m, s)
		}
	}
}
