// Package stats provides the small statistical helpers the experiment
// harness uses to aggregate multi-seed runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary; an empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String renders mean ± std (min–max).
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (%.3f–%.3f)", s.Mean, s.Std, s.Min, s.Max)
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Ratios divides a by b element-wise (for per-seed speedup reporting).
func Ratios(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("stats: ratio length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		if b[i] == 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = a[i] / b[i]
	}
	return out
}

// Histogram counts values into fixed-width buckets spanning [lo, hi).
//
// A Histogram is NOT safe for concurrent use: Add, Merge, Quantile and
// Total all touch the bucket counts without synchronization. Concurrent
// recorders should use the share-nothing pattern the dataplane's latency
// path uses — each goroutine Adds into its own Histogram and a single
// goroutine Merges them after the workers have joined (or behind a lock).
// Merging N identically-bucketed histograms is exact: every observation
// lands in the same bucket it would have landed in on a shared instance.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Under   int
	Over    int
}

// NewHistogram builds a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: bad histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i == len(h.Buckets) {
			i--
		}
		h.Buckets[i]++
	}
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// Merge adds another histogram's counts into h. Both must share bounds and
// bucket count.
func (h *Histogram) Merge(o *Histogram) {
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Buckets) != len(h.Buckets) {
		panic("stats: merging histograms with different bucketing")
	}
	h.Under += o.Under
	h.Over += o.Over
	for i, b := range o.Buckets {
		h.Buckets[i] += b
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the recorded sample,
// linearly interpolating within the containing bucket: the rank
// r = q*(Total-1) is located in the cumulative counts, and the returned
// value is the bucket's lower edge plus a midpoint-spread offset — so a
// bucket holding c observations maps them to evenly spaced positions inside
// the bucket rather than all to one edge. Unit-width buckets therefore
// reproduce exact order statistics (the value floors to the right integer).
// Under-range observations clamp to Lo, over-range ones to Hi. An empty
// histogram returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total-1)
	cum := float64(h.Under)
	if rank < cum {
		return h.Lo
	}
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if rank < cum+float64(c) {
			lo := h.Lo + float64(i)*width
			frac := (rank - cum + 0.5) / float64(c)
			return lo + width*frac
		}
		cum += float64(c)
	}
	return h.Hi
}
