package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-1.2909944) > 1e-6 {
		t.Errorf("std = %f", s.Std)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %f", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	single := Summarize([]float64{7})
	if single.Std != 0 || single.Median != 7 {
		t.Errorf("single summary = %+v", single)
	}
	if s.String() == "" {
		t.Error("empty render")
	}
}

func TestSummarizeProperties(t *testing.T) {
	prop := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
			// Keep magnitudes sane so the sum cannot overflow.
			xs[i] = math.Mod(xs[i], 1e12)
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatios(t *testing.T) {
	r := Ratios([]float64{2, 9, 5}, []float64{1, 3, 0})
	if r[0] != 2 || r[1] != 3 || !math.IsInf(r[2], 1) {
		t.Fatalf("ratios = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	Ratios([]float64{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[4] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad bounds must panic")
		}
	}()
	NewHistogram(5, 5, 3)
}
