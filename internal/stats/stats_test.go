package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-1.2909944) > 1e-6 {
		t.Errorf("std = %f", s.Std)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %f", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	single := Summarize([]float64{7})
	if single.Std != 0 || single.Median != 7 {
		t.Errorf("single summary = %+v", single)
	}
	if s.String() == "" {
		t.Error("empty render")
	}
}

func TestSummarizeProperties(t *testing.T) {
	prop := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
			// Keep magnitudes sane so the sum cannot overflow.
			xs[i] = math.Mod(xs[i], 1e12)
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatios(t *testing.T) {
	r := Ratios([]float64{2, 9, 5}, []float64{1, 3, 0})
	if r[0] != 2 || r[1] != 3 || !math.IsInf(r[2], 1) {
		t.Fatalf("ratios = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	Ratios([]float64{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[4] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad bounds must panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

// TestHistogramQuantileExact: unit-width buckets reproduce exact order
// statistics — the value floors to the right integer.
func TestHistogramQuantileExact(t *testing.T) {
	h := NewHistogram(0, 101, 101)
	for v := 1; v <= 100; v++ {
		h.Add(float64(v))
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0, 1}, {0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100},
	} {
		got := int64(h.Quantile(tc.q))
		// rank q*(n-1) can land exactly on a bucket edge; accept the
		// neighbouring order statistic there.
		if got != tc.want && got != tc.want+1 {
			t.Errorf("q=%.2f: got %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileSingleValue(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(5)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 5 || got >= 6 {
			t.Errorf("q=%.2f: got %g, want within [5,6)", q, got)
		}
	}
}

// TestHistogramQuantileInterpolation: observations inside one bucket spread
// to evenly spaced positions rather than collapsing onto an edge.
func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram(0, 10, 1) // one bucket of width 10
	for i := 0; i < 4; i++ {
		h.Add(1)
	}
	// Ranks 0..3 map to (rank+0.5)/4 * 10 = 1.25, 3.75, 6.25, 8.75.
	if got := h.Quantile(0); got != 1.25 {
		t.Errorf("q=0: got %g, want 1.25", got)
	}
	if got := h.Quantile(1); got != 8.75 {
		t.Errorf("q=1: got %g, want 8.75", got)
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-3) // under
	h.Add(99) // over
	if got := h.Quantile(0); got != 0 {
		t.Errorf("under-range should clamp to Lo, got %g", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("over-range should clamp to Hi, got %g", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(0, 100, 20)
	for i := 0; i < 500; i++ {
		h.Add(float64(i%97) + 0.5)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%.2f: %g < %g", q, v, prev)
		}
		prev = v
	}
}

// TestHistogramQuantileMatchesSortProperty: on random samples with
// unit-width buckets, Quantile must land within one bucket width of the
// exact order statistic, stay inside [Lo, Hi], and be monotone in q.
func TestHistogramQuantileMatchesSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		h := NewHistogram(0, 64, 64)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(64)) + rng.Float64()
			h.Add(xs[i])
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			got := h.Quantile(q)
			if got < 0 || got > 64 {
				t.Fatalf("trial %d q=%.2f: %g outside [0,64]", trial, q, got)
			}
			if got < prev {
				t.Fatalf("trial %d: quantile not monotone at q=%.2f", trial, q)
			}
			prev = got
			// The rank q*(n-1) is fractional: the estimate may land
			// anywhere between the neighbouring order statistics, plus one
			// bucket width of quantization error on either side.
			rank := q * float64(n-1)
			flo, fhi := xs[int(rank)], xs[int(math.Ceil(rank))]
			if got < flo-1-1e-9 || got > fhi+1+1e-9 {
				t.Fatalf("trial %d q=%.2f n=%d: got %g outside order-statistic bracket [%g, %g]",
					trial, q, n, got, flo, fhi)
			}
		}
	}
}

// TestHistogramSingleBucket: the degenerate one-bucket histogram must still
// satisfy every quantile invariant (everything interpolates inside [Lo, Hi)).
func TestHistogramSingleBucket(t *testing.T) {
	h := NewHistogram(3, 7, 1)
	h.Add(3)
	if got := h.Quantile(0.5); got < 3 || got >= 7 {
		t.Fatalf("single observation in single bucket: %g outside [3,7)", got)
	}
	for i := 0; i < 99; i++ {
		h.Add(5)
	}
	if lo, hi := h.Quantile(0), h.Quantile(1); lo >= hi+1e-9 || lo < 3 || hi >= 7 {
		t.Fatalf("single-bucket quantile range [%g, %g] escapes [3,7)", lo, hi)
	}
}

// TestHistogramMergeDisjointProperty: merging histograms whose samples
// occupy disjoint value ranges must be indistinguishable from one histogram
// fed the pooled observations — bucket by bucket and quantile by quantile.
func TestHistogramMergeDisjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		lo, hi := NewHistogram(0, 100, 25), NewHistogram(0, 100, 25)
		pooled := NewHistogram(0, 100, 25)
		for i := 0; i < 200; i++ {
			x := rng.Float64() * 50 // disjoint: lo takes [0,50)...
			lo.Add(x)
			pooled.Add(x)
			y := 50 + rng.Float64()*50 // ...hi takes [50,100)
			hi.Add(y)
			pooled.Add(y)
		}
		lo.Merge(hi)
		if lo.Total() != pooled.Total() || lo.Under != pooled.Under || lo.Over != pooled.Over {
			t.Fatalf("trial %d: merged totals diverge from pooled", trial)
		}
		for i := range lo.Buckets {
			if lo.Buckets[i] != pooled.Buckets[i] {
				t.Fatalf("trial %d bucket %d: merged %d, pooled %d",
					trial, i, lo.Buckets[i], pooled.Buckets[i])
			}
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			if a, b := lo.Quantile(q), pooled.Quantile(q); a != b {
				t.Fatalf("trial %d q=%.2f: merged %g, pooled %g", trial, q, a, b)
			}
		}
	}
}

// TestHistogramMergeEmpty: merging an empty histogram is the identity, and
// merging into an empty one copies the counts; neither disturbs quantiles.
func TestHistogramMergeEmpty(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	for i := 0; i < 7; i++ {
		a.Add(float64(i))
	}
	before := a.Quantile(0.5)
	a.Merge(NewHistogram(0, 10, 10))
	if a.Total() != 7 || a.Quantile(0.5) != before {
		t.Fatal("merging an empty histogram changed the sample")
	}
	empty := NewHistogram(0, 10, 10)
	empty.Merge(a)
	if empty.Total() != 7 || empty.Quantile(0.5) != before {
		t.Fatal("merging into an empty histogram lost observations")
	}
	if !math.IsNaN(NewHistogram(0, 10, 10).Quantile(0.5)) {
		t.Fatal("empty histogram quantile must stay NaN")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		a.Add(float64(i))
		b.Add(float64(i + 5))
	}
	b.Add(-1)
	b.Add(11)
	a.Merge(b)
	if a.Total() != 12 || a.Under != 1 || a.Over != 1 {
		t.Fatalf("merge totals wrong: total=%d under=%d over=%d", a.Total(), a.Under, a.Over)
	}
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched bucketing should panic")
		}
	}()
	a.Merge(NewHistogram(0, 10, 5))
}
