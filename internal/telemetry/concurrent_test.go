package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"mp5/internal/core"
)

// TestConcurrentWriters hammers every telemetry surface the concurrent
// dataplane touches — JSONL sinks, the sampler, the span builder, and the
// registry metrics — from many goroutines at once. Run under -race this
// fails on any unsynchronized path (it did before the sinks grew mutexes);
// the line-integrity check below additionally catches torn JSONL writes
// even without the race detector.
func TestConcurrentWriters(t *testing.T) {
	const (
		goroutines = 8
		perG       = 500
	)
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	sampler := NewSampler(100, 4, j.SampleSink())
	spans := NewSpanBuilder(j.SpanSink())
	reg := NewRegistry()
	ctr := reg.NewCounter("hammer_total", "concurrent counter")
	gauge := reg.NewGauge("hammer_gauge", "concurrent gauge")
	hist := reg.NewHistogram("hammer_hist", "concurrent histogram", 0, 1000, 100)
	vec := reg.NewCounterVec("hammer_vec_total", "concurrent counter vec", "lane")

	eventHook := j.EventHook()
	samplerHook := sampler.Hook()
	spanHook := spans.Hook()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := int64(g*perG + i)
				// Admit/egress pairs keep the span builder busy on both
				// the map-insert and map-delete paths. All events use
				// cycle 0: concurrent emitters have no shared clock, and
				// the sampler only requires nondecreasing cycles.
				adm := core.Event{Kind: core.EvAdmit, PktID: id}
				egr := core.Event{Kind: core.EvEgress, PktID: id}
				for _, e := range []core.Event{adm, egr} {
					eventHook(e)
					samplerHook(e)
					spanHook(e)
				}
				ctr.Inc()
				gauge.Set(float64(i))
				hist.Observe(float64(i % 1000))
				vec.Inc([]string{"a", "b", "c"}[g%3])
				if i%100 == 0 {
					_ = spans.Live()
					_ = reg.PromString()
					_ = hist.Quantile(0.5)
				}
			}
		}(g)
	}
	wg.Wait()
	sampler.Close()
	if err := j.Flush(); err != nil {
		t.Fatalf("jsonl flush: %v", err)
	}

	total := int64(goroutines * perG)
	if got := ctr.Value(); got != total {
		t.Fatalf("counter lost updates: %d of %d", got, total)
	}
	if got := vec.Total(); got != total {
		t.Fatalf("counter vec lost updates: %d of %d", got, total)
	}
	if got := hist.Count(); got != total {
		t.Fatalf("histogram lost observations: %d of %d", got, total)
	}
	if s := spans.Summary(); s.Completed != total {
		t.Fatalf("span builder lost packets: %d of %d completed", s.Completed, total)
	}
	if live := spans.Live(); live != 0 {
		t.Fatalf("%d spans leaked in-flight", live)
	}
	// Every emitted line must be a standalone JSON object: interleaved
	// writes from unsynchronized encoders would tear lines apart.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < int(2*total) {
		t.Fatalf("expected at least %d JSONL lines, got %d", 2*total, len(lines))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON (%v): %q", i, err, line)
		}
	}
}
