package telemetry_test

import (
	"bytes"
	"testing"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/telemetry"
	"mp5/internal/workload"
)

// TestSamplerCycleJumps: the event-driven simulator core fast-forwards the
// clock across idle gaps, so consecutive trace events can be thousands of
// cycles apart. The sampler must still emit one sample per interval — the
// skipped intervals appear as explicit empty points, never as a gap or a
// panic.
func TestSamplerCycleJumps(t *testing.T) {
	var samples []telemetry.Sample
	s := telemetry.NewSampler(100, 4, func(x telemetry.Sample) { samples = append(samples, x) })
	hook := s.Hook()
	hook(core.Event{Cycle: 5, Kind: core.EvAdmit, PktID: 0})
	hook(core.Event{Cycle: 1005, Kind: core.EvEgress, PktID: 0}) // 10-interval jump
	s.Close()
	if len(samples) != 11 {
		t.Fatalf("got %d samples, want 11 (no gaps across the jump)", len(samples))
	}
	for i, smp := range samples {
		if smp.Cycle != int64(i*100) {
			t.Fatalf("sample %d starts at cycle %d, want %d", i, smp.Cycle, i*100)
		}
	}
	if samples[0].Admitted != 1 || samples[10].Egressed != 1 {
		t.Fatalf("edge intervals miscounted: %+v / %+v", samples[0], samples[10])
	}
	for _, smp := range samples[1:10] {
		if smp.Admitted != 0 || smp.Egressed != 0 || smp.Execs != 0 {
			t.Fatalf("interval at cycle %d not empty: %+v", smp.Cycle, smp)
		}
	}
}

// TestSameSeedTelemetryIdentical: back-to-back runs of one seed must
// produce byte-identical telemetry JSONL (events and samples). This pins
// the pendingInserts retry-order determinism fix — with CrossLatency > 0
// and contended FIFOs the retry order is visible in same-cycle event
// interleavings, and it used to follow Go map iteration order.
func TestSameSeedTelemetryIdentical(t *testing.T) {
	prog, err := apps.Synthetic(3, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: 2500, Pipelines: 4, Pattern: workload.Skewed, Seed: 23,
	}, 3, 16)
	snapshot := func() []byte {
		var buf bytes.Buffer
		j := telemetry.NewJSONL(&buf)
		sampler := telemetry.NewSampler(50, 4, j.SampleSink())
		sim := core.NewSimulator(prog, core.Config{
			Arch: core.ArchMP5, Pipelines: 4, Seed: 3,
			CrossLatency: 4, FIFOCap: 3, ECNThreshold: 2,
			Trace: telemetry.Tee(j.EventHook(), sampler.Hook()),
		})
		res := sim.Run(trace)
		sampler.Close()
		j.Object(res)
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := snapshot()
	for run := 0; run < 3; run++ {
		if b := snapshot(); !bytes.Equal(a, b) {
			t.Fatalf("run %d: telemetry snapshot diverged (%d vs %d bytes)", run, len(a), len(b))
		}
	}
}
