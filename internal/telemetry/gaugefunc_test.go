package telemetry

import (
	"strings"
	"testing"
)

// TestGaugeFunc checks the callback gauge: the closure is evaluated at
// scrape time (no Set calls anywhere), renders as a gauge with HELP/TYPE
// lines, and the nil-registry constructor stays inert.
func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	x := 1.5
	g := r.NewGaugeFunc("up_seconds", "time since start", func() float64 { return x })
	if g.Value() != 1.5 {
		t.Fatalf("Value: %f", g.Value())
	}
	x = 3
	out := r.PromString()
	for _, want := range []string{
		"# HELP up_seconds time since start",
		"# TYPE up_seconds gauge",
		"up_seconds 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q in:\n%s", want, out)
		}
	}

	var nilReg *Registry
	ng := nilReg.NewGaugeFunc("x", "y", func() float64 { panic("must never run") })
	if ng != nil || ng.Value() != 0 {
		t.Fatal("nil-registry GaugeFunc not inert")
	}
}

// TestHistogramSumMax checks the cumulative Sum/Max accessors survive
// window rotation (rotation only affects quantiles).
func TestHistogramSumMax(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_us", "latency", 0, 100, 10)
	for _, v := range []float64{5, 15, 95} {
		h.Observe(v)
	}
	h.Rotate()
	h.Rotate()
	if h.Sum() != 115 || h.Max() != 95 || h.Count() != 3 {
		t.Fatalf("sum %f max %f count %d", h.Sum(), h.Max(), h.Count())
	}
	var nilH *Histogram
	if nilH.Sum() != 0 || nilH.Max() != 0 {
		t.Fatal("nil histogram accessors not inert")
	}
}
