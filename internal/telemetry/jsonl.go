package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"mp5/internal/banzai"
	"mp5/internal/core"
)

// EventRecord is the JSONL rendering of one trace event. Kind and cause
// use their string names so the stream is self-describing; Stage/Pipe keep
// the -1 "not applicable" convention of core.Event.
type EventRecord struct {
	Type  string `json:"type"` // always "event"
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	Pkt   int64  `json:"pkt"`
	Stage int    `json:"stage"`
	Pipe  int    `json:"pipe"`
	Cause string `json:"cause,omitempty"`
	// State names the register slot of an "access" event as "rN[i]"
	// (matching the differential harness's order-oracle keys); absent for
	// every other kind.
	State string `json:"state,omitempty"`
}

// JSONL writes telemetry records — events, samples, spans, and arbitrary
// tagged summary objects — as one JSON object per line. Safe for concurrent
// use: records from many goroutines (the concurrent dataplane's workers, or
// several simulators sharing one sink) serialize on an internal mutex, so
// lines never interleave mid-record.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL wraps w in a buffered JSONL encoder. Call Flush when done.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

func (j *JSONL) write(v any) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(v)
	}
	j.mu.Unlock()
}

// EventHook returns a trace consumer streaming every event as JSONL.
func (j *JSONL) EventHook() func(core.Event) {
	return func(e core.Event) {
		rec := EventRecord{
			Type: "event", Cycle: e.Cycle, Kind: e.Kind.String(),
			Pkt: e.PktID, Stage: e.Stage, Pipe: e.Pipe,
			Cause: e.Cause.String(),
		}
		if e.Kind == core.EvAccess {
			rec.State = banzai.AccessKey(e.Reg, e.Idx)
		}
		j.write(rec)
	}
}

// SampleSink returns a Sampler sink writing each interval as JSONL.
func (j *JSONL) SampleSink() func(Sample) {
	return func(s Sample) { j.write(s) }
}

// SpanSink returns a SpanBuilder sink writing each finished span as JSONL.
func (j *JSONL) SpanSink() func(Span) {
	return func(s Span) { j.write(s) }
}

// Object writes one arbitrary record (e.g. a tagged end-of-run summary).
func (j *JSONL) Object(v any) { j.write(v) }

// Flush drains the buffer and reports the first error encountered on any
// write.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.bw.Flush()
}
